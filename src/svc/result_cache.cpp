#include "svc/result_cache.hpp"

namespace ecsim::svc {

namespace {
std::size_t entry_bytes(const std::string& key, const std::string& payload) {
  return key.size() + payload.size();
}
}  // namespace

ResultCache::ResultCache(std::size_t capacity_bytes,
                         obs::MetricsRegistry* metrics)
    : capacity_(capacity_bytes) {
  if (metrics != nullptr) {
    hit_ctr_ = &metrics->counter("svc.cache.hits");
    miss_ctr_ = &metrics->counter("svc.cache.misses");
    evict_ctr_ = &metrics->counter("svc.cache.evictions");
    bytes_gauge_ = &metrics->gauge("svc.cache.bytes");
  }
}

bool ResultCache::get(const std::string& key, std::string& payload) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    if (miss_ctr_ != nullptr) miss_ctr_->add();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  payload = it->second->payload;
  ++hits_;
  if (hit_ctr_ != nullptr) hit_ctr_->add();
  return true;
}

void ResultCache::put(const std::string& key, const std::string& payload) {
  const std::size_t incoming = entry_bytes(key, payload);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Determinism makes a same-key overwrite byte-identical in practice, but
    // honor it anyway: refresh recency and the byte accounting.
    bytes_ -= entry_bytes(it->second->key, it->second->payload);
    if (incoming > capacity_) {
      // Can never fit, even alone: drop the entry rather than retain a
      // payload that would pin the cache over budget.
      lru_.erase(it->second);
      index_.erase(it);
    } else {
      lru_.splice(lru_.begin(), lru_, it->second);
      it->second->payload = payload;
      bytes_ += incoming;
      // An enlarged overwrite can push the cache over budget; evict from
      // the LRU tail. The refreshed entry sits at the front and fits on its
      // own, so it is never its own victim.
      evict_to_fit(0);
    }
  } else {
    if (incoming > capacity_) {
      if (bytes_gauge_ != nullptr) {
        bytes_gauge_->set(static_cast<double>(bytes_));
      }
      return;  // would evict everything and still not fit
    }
    evict_to_fit(incoming);
    lru_.push_front(Entry{key, payload});
    index_.emplace(key, lru_.begin());
    bytes_ += incoming;
  }
  if (bytes_gauge_ != nullptr) bytes_gauge_->set(static_cast<double>(bytes_));
}

void ResultCache::evict_to_fit(std::size_t incoming_bytes) {
  while (!lru_.empty() && bytes_ + incoming_bytes > capacity_) {
    const Entry& victim = lru_.back();
    bytes_ -= entry_bytes(victim.key, victim.payload);
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    if (evict_ctr_ != nullptr) evict_ctr_->add();
  }
}

}  // namespace ecsim::svc
