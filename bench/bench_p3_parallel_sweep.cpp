// EXP-P3: scaling of the parallel design-space exploration engine. One
// latency×jitter timing grid (the EXP-C1 workload, longer horizon) is swept
// at 1/2/4/8 worker threads, interleaved best-of-7 so machine noise hits
// every configuration equally. Two claims are measured:
//   (1) determinism — every run, at every thread count, produces cells
//       bit-identical to the serial reference (hard failure if not);
//   (2) scaling — on a machine with >= 8 hardware threads, 8 workers must
//       reach >= 4x over serial (checked only there: on smaller hosts the
//       curve is recorded but the guard is skipped).
#include <chrono>
#include <cstring>

#include "bench_common.hpp"
#include "par/sweep.hpp"

using namespace ecsim;

namespace {

constexpr std::size_t kReps = 7;
const std::size_t kThreadCounts[] = {1, 2, 4, 8};

sweep::TimingGrid workload() {
  sweep::TimingGrid grid;
  grid.loop = bench::servo_loop(0.01, 0.6);
  grid.latency_fracs = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
  grid.jitter_fracs = {0.0, 0.1, 0.2, 0.3, 0.5};
  return grid;
}

bool cells_equal(const std::vector<sweep::SweepCell>& a,
                 const std::vector<sweep::SweepCell>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const sweep::SweepCell& x = a[i];
    const sweep::SweepCell& y = b[i];
    if (x.la_frac != y.la_frac || x.jitter_frac != y.jitter_frac ||
        x.iae != y.iae || x.ise != y.ise || x.itae != y.itae ||
        x.cost != y.cost || x.overshoot_pct != y.overshoot_pct ||
        x.act_latency_mean != y.act_latency_mean ||
        x.act_jitter != y.act_jitter || x.stable != y.stable) {
      return false;
    }
  }
  return true;
}

int experiment() {
  bench::banner("EXP-P3", "DESIGN.md §3.3",
                "Work-stealing sweep engine: thread-count scaling and "
                "serial-identical determinism on the EXP-C1 timing grid.");
  const sweep::TimingGrid grid = workload();
  const std::size_t hw = std::thread::hardware_concurrency();
  std::printf("grid: %zu cells, horizon %.2g s, hardware threads: %zu\n\n",
              grid.latency_fracs.size() * grid.jitter_fracs.size(),
              grid.loop.t_end, hw);

  const std::size_t n_configs = std::size(kThreadCounts);
  std::vector<double> best_ms(n_configs, 1e300);
  bool all_identical = true;

  // Serial reference once, outside timing: every timed run is compared
  // against it.
  std::vector<sweep::SweepCell> reference;
  {
    par::BatchOptions opts;
    opts.threads = 1;
    reference = sweep::SweepRunner(opts).run(grid);
  }

  // Interleaved best-of-7: rep-major so thermal/scheduler drift spreads
  // across all thread counts instead of biasing the later ones.
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    for (std::size_t c = 0; c < n_configs; ++c) {
      par::BatchOptions opts;
      opts.threads = kThreadCounts[c];
      const sweep::SweepRunner runner(opts);
      const auto t0 = std::chrono::steady_clock::now();
      const std::vector<sweep::SweepCell> cells = runner.run(grid);
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      best_ms[c] = std::min(best_ms[c], ms);
      if (!cells_equal(reference, cells)) {
        all_identical = false;
        std::printf("** DETERMINISM VIOLATION at threads=%zu rep=%zu **\n",
                    kThreadCounts[c], rep);
      }
    }
  }

  std::printf("%10s %12s %10s\n", "threads", "best [ms]", "speedup");
  bench::JsonReport report("EXP-P3");
  report.model_ir_hash("servo_loop",
                       ir::hash_hex(translate::loop_ir(grid.loop)));
  report.begin_array("scaling");
  for (std::size_t c = 0; c < n_configs; ++c) {
    const double speedup = best_ms[0] / best_ms[c];
    std::printf("%10zu %12.2f %10.2f\n", kThreadCounts[c], best_ms[c],
                speedup);
    report.begin_object();
    report.field("threads", kThreadCounts[c]);
    report.field("best_ms", best_ms[c]);
    report.field("speedup", speedup);
    report.end_object();
  }
  report.end_array();
  report.begin_array("checks");
  report.begin_object();
  report.field("bit_identical_all_runs",
               std::string(all_identical ? "true" : "false"));
  report.field("reps", kReps);
  report.field("speedup_guard",
               std::string(hw >= 8 ? "enforced" : "skipped (host has fewer "
                                                  "than 8 hardware threads)"));
  report.end_object();
  report.end_array();
  report.write("BENCH_p3.json");

  std::printf("bit-identical across all runs and thread counts: %s\n",
              all_identical ? "yes" : "NO");
  if (!all_identical) return 1;
  if (hw >= 8) {
    const double s8 = best_ms[0] / best_ms[n_configs - 1];
    std::printf("speedup guard (>= 4x at 8 threads on %zu-way host): %.2fx "
                "-> %s\n",
                hw, s8, s8 >= 4.0 ? "pass" : "FAIL");
    if (s8 < 4.0) return 1;
  } else {
    std::printf("speedup guard skipped (%zu hardware threads < 8); scaling "
                "curve recorded for reference only\n",
                hw);
  }
  std::printf("\n");
  return 0;
}

void BM_SweepSerial(benchmark::State& state) {
  sweep::TimingGrid grid = workload();
  grid.loop.t_end = 0.2;
  par::BatchOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(0));
  const sweep::SweepRunner runner(opts);
  for (auto _ : state) {
    auto cells = runner.run(grid);
    benchmark::DoNotOptimize(cells);
  }
}
BENCHMARK(BM_SweepSerial)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const int rc = experiment();
  if (rc != 0) return rc;
  return bench::run_benchmarks(argc, argv);
}
