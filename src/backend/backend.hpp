// Backend dispatcher (DESIGN.md §3.6): one entry point that runs a model on
// the requested backend and *always* produces a result. A native request
// degrades gracefully to the interpreter — never an abort — whenever the
// model or environment cannot take the codegen path, and the result records
// why (also counted as backend.fallback.<category> in a MetricsRegistry).
//
// Fallback categories:
//  - legacy_baseline: a legacy_* A/B cost model was requested;
//  - disabled: ECSIM_NATIVE_DISABLE is set;
//  - opaque: the model is not fully described (user closures in the IR);
//  - codegen: the generator rejected the IR;
//  - toolchain: compile/dlopen/ABI-verify failed (compiler missing, ...).
// Model-semantic errors (e.g. max_events exceeded) are NOT fallbacks: both
// backends throw them identically.
//
// Observability no longer falls back (ABI v2): an attached sim Tracer /
// MetricsRegistry is bridged into the generated module through the
// NativeObsTable callback table (backend/obs_abi.hpp), and the instrumented
// native run produces the same sim-domain trace records and metrics values
// as the instrumented interpreter.
//
// Every run — either backend, fallback or not — appends a record to the
// process run ledger (obs::Ledger::global(); obs/ledger.hpp): IR hash,
// backend requested/used, fallback reason, seed, fault-plan hash, thread
// count, wall time, events/s and a metrics snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "backend/kind.hpp"
#include "ir/ir.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace ecsim::backend {

struct RunOptions {
  sim::SimOptions sim;
  Kind kind = Kind::kInterp;
  /// Dispatcher-level metrics (fallback counters, backend.<kind>.runs).
  /// Distinct from sim.metrics (which instruments the run itself, on either
  /// backend). Borrowed, may be null.
  obs::MetricsRegistry* metrics = nullptr;
  /// Ledger annotations (obs/ledger.hpp): context the dispatcher cannot
  /// derive on its own, stamped verbatim into the run's ledger record.
  std::string model_name;             ///< label, e.g. the loop/scenario name
  std::uint64_t fault_plan_hash = 0;  ///< fault::hash of the active plan
  unsigned threads = 1;               ///< batch fan-out this run is part of
};

struct RunResult {
  sim::Trace trace;
  std::size_t events_dispatched = 0;
  /// The backend that actually ran (== requested unless a fallback fired).
  Kind used = Kind::kInterp;
  /// Empty when the requested backend ran; otherwise
  /// "<category>: <detail>" explaining the interpreter fallback.
  std::string fallback_reason;
};

/// Runs `model` on the requested backend. The model must stay alive and
/// structurally unchanged for the duration of the call.
RunResult run(sim::Model& model, const RunOptions& opts);

/// Same, from an already-finalized IR (the model half of the pipeline is
/// regenerated with blocks::to_model for the interpreter path).
RunResult run_ir(const ir::Model& irm, const RunOptions& opts);

}  // namespace ecsim::backend
