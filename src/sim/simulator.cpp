#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ecsim::sim {

// ---- Context methods (declared in block.hpp) --------------------------------

std::span<const double> Context::input(std::size_t port) const {
  return host_->ctx_input(block_, port);
}

std::span<double> Context::output(std::size_t port) {
  return host_->ctx_output(block_, port);
}

std::span<const double> Context::state() const {
  return host_->ctx_state(block_);
}

std::span<double> Context::state_mut() { return host_->ctx_state_mut(block_); }

void Context::emit(std::size_t event_out, Time delay) {
  if (!in_event_) {
    throw std::logic_error(
        "Context::emit: events may only be emitted from initialize()/on_event()");
  }
  if (delay < 0.0) throw std::invalid_argument("Context::emit: negative delay");
  host_->ctx_emit(block_, event_out, time_ + delay);
}

void Context::schedule_self(std::size_t event_in, Time delay) {
  if (!in_event_) {
    throw std::logic_error(
        "Context::schedule_self: only from initialize()/on_event()");
  }
  if (delay < 0.0) {
    throw std::invalid_argument("Context::schedule_self: negative delay");
  }
  host_->ctx_schedule_self(block_, event_in, time_ + delay);
}

math::Rng& Context::rng() { return host_->ctx_rng(); }

Trace& Context::trace() { return host_->ctx_trace(); }

// ---- Simulator ---------------------------------------------------------------

namespace {

// Wrap the compile in a wall-clock span (the span closes after the compile
// artifact is constructed, before the delegated constructor runs).
CompiledModel compile_traced(Model& model, const SimOptions& opts) {
  obs::ScopedSpan span(opts.tracer, "sim.compile", obs::Domain::kWall,
                       "runtime/sim");
  return CompiledModel(model);
}

}  // namespace

Simulator::Simulator(Model& model, SimOptions opts)
    : Simulator(compile_traced(model, opts), opts) {}

Simulator::Simulator(CompiledModel compiled, SimOptions opts)
    : compiled_(std::move(compiled)),
      model_(compiled_.model()),
      opts_(opts),
      rng_(opts.seed),
      arena_(compiled_.arena_size(), 0.0) {
  trace_.register_block_names(compiled_.block_names());
  init_obs();
}

void Simulator::init_obs() {
#ifdef ECSIM_OBS_DISABLED
  return;
#else
  if (obs::Tracer* t = opts_.tracer; t != nullptr) {
    obs_.trk_runtime = t->track("runtime/sim", obs::Domain::kWall);
    obs_.trk_events = t->track("sim/events", obs::Domain::kSim);
    obs_.n_run = t->intern("sim.run");
    obs_.n_integrate = t->intern("sim.integrate");
    obs_.n_cone = t->intern("sim.cone_refresh");
    obs_.a_cone_size = t->intern("cone_size");
    obs_.a_port = t->intern("event_in");
    obs_.block_names.reserve(compiled_.num_blocks());
    for (const std::string& name : compiled_.block_names()) {
      obs_.block_names.push_back(t->intern(name));
    }
  }
  if (obs::MetricsRegistry* m = opts_.metrics; m != nullptr) {
    obs_.events = &m->counter("sim.events_dispatched");
    obs_.evals = &m->counter("sim.eval_calls");
    obs_.queue_hwm = &m->gauge("sim.queue_high_water");
    obs_.cone_sizes = &m->histogram("sim.cone_refresh_size");
    obs_.evals_per_block = &m->histogram("sim.eval_calls_per_block");
    obs_.per_block_evals.assign(compiled_.num_blocks(), 0);
  }
#endif
}

std::span<const double> Simulator::ctx_input(std::size_t block,
                                             std::size_t port) const {
  const ArenaSlice s = compiled_.input_slice(block, port);
  return std::span<const double>(arena_.data() + s.offset, s.width);
}

std::span<double> Simulator::ctx_output(std::size_t block, std::size_t port) {
  const ArenaSlice s = compiled_.output_slice(block, port);
  return std::span<double>(arena_.data() + s.offset, s.width);
}

std::span<const double> Simulator::ctx_state(std::size_t block) const {
  return std::span<const double>(active_x_ + compiled_.state_offset(block),
                                 model_.block(block).continuous_state_size());
}

std::span<double> Simulator::ctx_state_mut(std::size_t block) {
  if (in_integration_) {
    throw std::logic_error(
        "Context::state_mut: continuous state is read-only during integration");
  }
  return std::span<double>(x_.data() + compiled_.state_offset(block),
                           model_.block(block).continuous_state_size());
}

void Simulator::ctx_emit(std::size_t block, std::size_t event_out, Time at) {
  if (lane_active_ && at == time_) {
    for (const PortRef& sink : compiled_.event_sinks(block, event_out)) {
      lane_.push_back(ScheduledEvent{at, 0, sink.block, sink.port});
    }
    return;
  }
  for (const PortRef& sink : compiled_.event_sinks(block, event_out)) {
    queue_.push(at, sink.block, sink.port);
  }
}

void Simulator::ctx_schedule_self(std::size_t block, std::size_t event_in,
                                  Time at) {
  if (event_in >= model_.block(block).num_event_inputs()) {
    throw std::out_of_range("schedule_self: event input out of range");
  }
  if (lane_active_ && at == time_) {
    lane_.push_back(ScheduledEvent{at, 0, block, event_in});
    return;
  }
  queue_.push(at, block, event_in);
}

void Simulator::refresh_blocks(std::span<const std::size_t> order, Time t) {
  for (std::size_t b : order) {
    Context ctx(this, b, t, /*in_event=*/false);
    model_.block(b).compute_outputs(ctx);
  }
  if (obs_.evals != nullptr) {
    obs_.evals->add(order.size());
    for (std::size_t b : order) ++obs_.per_block_evals[b];
  }
}

void Simulator::refresh_dynamic(Time t) {
  refresh_blocks(
      opts_.full_refresh ? compiled_.eval_order() : compiled_.dynamic_cone(),
      t);
}

void Simulator::evaluate_derivatives(Time t, const std::vector<double>& x,
                                     std::vector<double>& dx) {
  active_x_ = x.data();
  refresh_dynamic(t);
  std::fill(dx.begin(), dx.end(), 0.0);
  for (std::size_t b : compiled_.stateful_blocks()) {
    Block& blk = model_.block(b);
    Context ctx(this, b, t, /*in_event=*/false);
    blk.derivatives(ctx,
                    std::span<double>(dx.data() + compiled_.state_offset(b),
                                      blk.continuous_state_size()));
  }
}

Trace& Simulator::run() {
  // Latch tracing for this run: one branch on the hot paths from here on.
  obs_.tracing = obs::active(opts_.tracer);
  obs::ScopedSpan run_span(obs_.tracing ? opts_.tracer : nullptr, obs_.n_run,
                           obs_.trk_runtime);

  // Reset run state (including the RNG: same seed => same realization).
  rng_ = math::Rng(opts_.seed);
  time_ = 0.0;
  x_.assign(compiled_.total_state(), 0.0);
  active_x_ = x_.data();
  queue_.clear();
  lane_.clear();
  lane_active_ = false;
  queue_.set_impl(opts_.legacy_event_queue ? EventQueue::Impl::kLegacyBinary
                                           : EventQueue::Impl::kQuad);
  if (opts_.reserve_queue > 0) queue_.reserve(opts_.reserve_queue);
  iws_.resize(compiled_.total_state());
  trace_.clear();
  trace_.reserve(opts_.reserve_events, opts_.reserve_signals);
  events_dispatched_ = 0;
  std::fill(arena_.begin(), arena_.end(), 0.0);

  // Initialize every block (may write state/outputs and schedule events),
  // then establish output consistency with one full sweep. From here on the
  // incremental path refreshes exactly the blocks whose value sources
  // (time, continuous state, discrete activations) changed.
  for (std::size_t b = 0; b < model_.num_blocks(); ++b) {
    Context ctx(this, b, 0.0, /*in_event=*/true);
    model_.block(b).initialize(ctx);
  }
  refresh_blocks(compiled_.eval_order(), 0.0);

  const Time t_end = opts_.end_time;
  // Loop-invariant dispatch state, hoisted into locals: the per-event path
  // must not re-read anything through `this` that the compiler cannot prove
  // unchanged across the indirect on_event/compute_outputs calls.
  const bool tracing = obs_.tracing;
  const bool full_refresh = opts_.full_refresh;
  const bool legacy_queue = opts_.legacy_event_queue;
  const std::size_t max_events = opts_.max_events;
  obs::Gauge* const queue_hwm = obs_.queue_hwm;
  obs::Counter* const ev_counter = obs_.events;
  obs::Histogram* const cone_sizes = obs_.cone_sizes;
  while (true) {
    Time t_next = t_end;
    bool have_event = false;
    if (!queue_.empty() && queue_.next_time() <= t_end) {
      t_next = queue_.next_time();
      have_event = true;
    }
    if (t_next > time_) {
      if (compiled_.total_state() > 0) {
        const double span_t0 =
            obs_.tracing ? opts_.tracer->now_us() : 0.0;
        in_integration_ = true;
        if (opts_.legacy_integrator_alloc) {
          // Bench baseline: std::function built per interval, per-call stage
          // buffers inside — the pre-workspace cost model.
          const DerivFn deriv = [this](Time t, const std::vector<double>& x,
                                       std::vector<double>& dx) {
            evaluate_derivatives(t, x, dx);
          };
          integrate_legacy_alloc(opts_.integrator, deriv, time_, t_next, x_);
        } else {
          integrate(
              opts_.integrator,
              [this](Time t, const std::vector<double>& x,
                     std::vector<double>& dx) {
                evaluate_derivatives(t, x, dx);
              },
              time_, t_next, x_, iws_);
        }
        in_integration_ = false;
        active_x_ = x_.data();
        if (obs_.tracing) {
          opts_.tracer->span(obs_.n_integrate, obs_.trk_runtime, span_t0,
                             opts_.tracer->now_us());
        }
      }
      time_ = t_next;
      refresh_dynamic(time_);
    }
    if (!have_event) break;
    if (queue_hwm != nullptr) {
      queue_hwm->max_of(static_cast<double>(queue_.size()));
    }
    batch_.clear();
    if (legacy_queue) {
      // Pre-PR-4 cost model: one event per main-loop pass, re-comparing the
      // heap top (and re-taking every branch above) for each tie. Dispatch
      // order is identical — only the per-event overhead differs.
      batch_.push_back(queue_.pop());
    } else {
      // Drain every event tied at this instant in one batched pop instead of
      // re-comparing the heap top per event. Dispatch order is unchanged:
      // ties pop in FIFO seq order, and zero-delay emissions made *during*
      // this batch carry higher seq values, so they form the next batch —
      // exactly where one-at-a-time popping would have placed them.
      queue_.pop_simultaneous(batch_);
    }
    const auto dispatch_one = [&](const ScheduledEvent& e) {
      trace_.record_event(e.time, e.block, e.event_in);
      if (tracing) {
        opts_.tracer->instant(obs_.block_names[e.block], obs_.trk_events,
                              obs::sim_us(e.time), obs_.a_port,
                              static_cast<double>(e.event_in));
      }
      if (ev_counter != nullptr) ev_counter->add();
      {
        Context ctx(this, e.block, e.time, /*in_event=*/true);
        model_.block(e.block).on_event(ctx, e.event_in);
      }
      const std::span<const std::size_t> cone =
          full_refresh ? std::span<const std::size_t>(compiled_.eval_order())
                       : compiled_.cone(e.block);
      if (tracing) {
        const double span_t0 = opts_.tracer->now_us();
        refresh_blocks(cone, time_);
        opts_.tracer->span(obs_.n_cone, obs_.trk_runtime, span_t0,
                           opts_.tracer->now_us(), obs_.a_cone_size,
                           static_cast<double>(cone.size()));
      } else if (!cone.empty() || legacy_queue) {
        // Empty cones (pure event-plumbing blocks) skip the call outright —
        // observably identical, and most events in delay-chain workloads
        // have nothing to refresh. The legacy cost model keeps the seed's
        // unconditional call.
        refresh_blocks(cone, time_);
      }
      if (cone_sizes != nullptr) {
        cone_sizes->observe(static_cast<double>(cone.size()));
      }
      if (++events_dispatched_ > max_events) {
        throw std::runtime_error(
            "Simulator: max_events exceeded (runaway loop?)");
      }
    };
    lane_active_ = !legacy_queue;
    for (const ScheduledEvent& e : batch_) dispatch_one(e);
    // Zero-delay cascades landed in the lane instead of the heap (the
    // heap's ties at this instant are already drained, so append order is
    // exactly the seq order they would have popped in). Index loop: a
    // dispatch may append — and reallocate — while we drain.
    for (std::size_t i = 0; i < lane_.size(); ++i) {
      const ScheduledEvent e = lane_[i];
      dispatch_one(e);
    }
    lane_.clear();
    lane_active_ = false;
  }
  if (obs_.evals_per_block != nullptr) {
    // Distribution of eval calls across blocks for this run (hot blocks sit
    // in the top buckets); per-run counts then reset.
    for (std::uint64_t& n : obs_.per_block_evals) {
      if (n > 0) obs_.evals_per_block->observe(static_cast<double>(n));
      n = 0;
    }
  }
  return trace_;
}

double Simulator::output_value(const Block& b, std::size_t port,
                               std::size_t lane) const {
  const std::size_t idx = model_.index_of(b);
  const ArenaSlice s = compiled_.output_slice(idx, port);
  if (lane >= s.width) {
    throw std::out_of_range("Simulator::output_value: lane out of range");
  }
  return arena_[s.offset + lane];
}

}  // namespace ecsim::sim
