// Bounded LRU result cache of the sweep service (DESIGN.md §3.9): canonical
// unit key -> bit-exact encoded result payload. Soundness rests on the
// determinism contracts of PRs 3/5/8 — a key's payload is THE result, not a
// sample of it — so a hit is byte-identical to a recompute and serving from
// cache cannot change any answer, only its latency.
//
// The byte budget covers keys + payloads; insertion evicts least-recently-
// used entries until the new entry fits. Hit/miss/eviction counters are
// mirrored into an obs::MetricsRegistry when one is attached
// (svc.cache.hits / svc.cache.misses / svc.cache.evictions, plus the
// svc.cache.bytes gauge) so `ecsim_flow serve` telemetry rides the standard
// metrics pipeline.
#pragma once

#include <cstddef>
#include <list>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace ecsim::svc {

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity_bytes,
                       obs::MetricsRegistry* metrics = nullptr);

  /// True + copies the payload on a hit (the entry becomes most recent).
  bool get(const std::string& key, std::string& payload);

  /// Insert/overwrite. An entry larger than the whole budget is simply not
  /// retained (it still counted as a miss on the failed get).
  void put(const std::string& key, const std::string& payload);

  std::size_t size() const { return index_.size(); }
  std::size_t bytes() const { return bytes_; }
  std::size_t capacity_bytes() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    std::string key;
    std::string payload;
  };
  using Lru = std::list<Entry>;

  void evict_to_fit(std::size_t incoming_bytes);

  std::size_t capacity_;
  std::size_t bytes_ = 0;
  Lru lru_;  // front = most recently used
  std::unordered_map<std::string, Lru::iterator> index_;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
  obs::Counter* hit_ctr_ = nullptr;
  obs::Counter* miss_ctr_ = nullptr;
  obs::Counter* evict_ctr_ = nullptr;
  obs::Gauge* bytes_gauge_ = nullptr;
};

}  // namespace ecsim::svc
