// pack<W>: a fixed-width bundle of W doubles advanced by one instruction
// stream (DESIGN.md §3.8). Three backends, chosen at configure time by
// -DECSIM_SIMD=avx2|sse2|scalar (CMakeLists.txt):
//   avx2   — pack<4> on one __m256d, pack<8> on two;
//   sse2   — pack<2> on one __m128d;
//   scalar — plain arrays the autovectorizer may or may not vectorize.
// All backends are element-wise IEEE-identical: no fused multiply-add, no
// reassociation (the build also forces -ffp-contract=off), which is what lets
// the batched Monte Carlo engine promise bit-equality with the scalar
// Simulator on every lane.
//
// The stage kernels at the bottom (axpy_stage, rk4_combine) mirror the exact
// operand grouping of sim/integrator.cpp's rk4_step so a lockstep batched RK4
// step commits the same bits as W scalar steps.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(ECSIM_SIMD_AVX2) && defined(__AVX2__)
#include <immintrin.h>
#define ECSIM_SIMD_ISA_AVX2 1
#elif defined(ECSIM_SIMD_SSE2) && (defined(__SSE2__) || defined(_M_X64))
#include <emmintrin.h>
#define ECSIM_SIMD_ISA_SSE2 1
#endif

namespace ecsim::simd {

/// Name of the ISA this translation unit was compiled for — stamped into
/// BENCH_*.json (bench_common.hpp JsonReport) so figures are comparable
/// across hosts.
constexpr const char* isa_name() {
#if defined(ECSIM_SIMD_ISA_AVX2)
  return "avx2";
#elif defined(ECSIM_SIMD_ISA_SSE2)
  return "sse2";
#else
  return "scalar";
#endif
}

/// Generic portable pack: W doubles in an array. Specializations below map
/// the same interface onto vector registers.
template <std::size_t W>
struct pack {
  double v[W];

  static pack load(const double* p) {
    pack r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = p[i];
    return r;
  }
  void store(double* p) const {
    for (std::size_t i = 0; i < W; ++i) p[i] = v[i];
  }
  static pack broadcast(double x) {
    pack r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = x;
    return r;
  }
  friend pack operator+(pack a, pack b) {
    pack r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  friend pack operator-(pack a, pack b) {
    pack r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = a.v[i] - b.v[i];
    return r;
  }
  friend pack operator*(pack a, pack b) {
    pack r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = a.v[i] * b.v[i];
    return r;
  }
  friend pack operator/(pack a, pack b) {
    pack r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = a.v[i] / b.v[i];
    return r;
  }
};

#if defined(ECSIM_SIMD_ISA_AVX2)

template <>
struct pack<4> {
  __m256d v;

  static pack load(const double* p) { return {_mm256_loadu_pd(p)}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  static pack broadcast(double x) { return {_mm256_set1_pd(x)}; }
  friend pack operator+(pack a, pack b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend pack operator-(pack a, pack b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend pack operator*(pack a, pack b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend pack operator/(pack a, pack b) { return {_mm256_div_pd(a.v, b.v)}; }
};

template <>
struct pack<8> {
  __m256d lo, hi;

  static pack load(const double* p) {
    return {_mm256_loadu_pd(p), _mm256_loadu_pd(p + 4)};
  }
  void store(double* p) const {
    _mm256_storeu_pd(p, lo);
    _mm256_storeu_pd(p + 4, hi);
  }
  static pack broadcast(double x) {
    return {_mm256_set1_pd(x), _mm256_set1_pd(x)};
  }
  friend pack operator+(pack a, pack b) {
    return {_mm256_add_pd(a.lo, b.lo), _mm256_add_pd(a.hi, b.hi)};
  }
  friend pack operator-(pack a, pack b) {
    return {_mm256_sub_pd(a.lo, b.lo), _mm256_sub_pd(a.hi, b.hi)};
  }
  friend pack operator*(pack a, pack b) {
    return {_mm256_mul_pd(a.lo, b.lo), _mm256_mul_pd(a.hi, b.hi)};
  }
  friend pack operator/(pack a, pack b) {
    return {_mm256_div_pd(a.lo, b.lo), _mm256_div_pd(a.hi, b.hi)};
  }
};

inline constexpr std::size_t kNativeWidth = 4;

#elif defined(ECSIM_SIMD_ISA_SSE2)

template <>
struct pack<2> {
  __m128d v;

  static pack load(const double* p) { return {_mm_loadu_pd(p)}; }
  void store(double* p) const { _mm_storeu_pd(p, v); }
  static pack broadcast(double x) { return {_mm_set1_pd(x)}; }
  friend pack operator+(pack a, pack b) { return {_mm_add_pd(a.v, b.v)}; }
  friend pack operator-(pack a, pack b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend pack operator*(pack a, pack b) { return {_mm_mul_pd(a.v, b.v)}; }
  friend pack operator/(pack a, pack b) { return {_mm_div_pd(a.v, b.v)}; }
};

inline constexpr std::size_t kNativeWidth = 2;

#else

inline constexpr std::size_t kNativeWidth = 4;

#endif

/// Default batch width for the lockstep Monte Carlo engine ("auto" in the
/// CLI). Wider than one register on purpose: the win comes from amortising
/// the event-queue/dispatch machinery across lanes — two registers in
/// flight per stage is the sweet spot. Hard-capped at 8 regardless of ISA:
/// BENCH_p8 showed throughput collapsing at W >= 16 when the per-lane
/// CompiledModel arenas outgrow L2, so "auto" must never follow a wider
/// vector unit past that cliff (pinned by tests/simd/test_pack.cpp).
constexpr std::size_t preferred_batch_width() {
  constexpr std::size_t two_registers = kNativeWidth * 2;
  return two_registers < 8 ? two_registers : 8;
}

// ---- stage kernels ----------------------------------------------------------
// dst[i] = x[i] + a * k[i] — the RK4 stage-advance shape. Operand grouping
// matches integrator.cpp exactly: `a` is the pre-folded scalar (0.5*h or h),
// multiplied into k[i] first, then added to x[i].
inline void axpy_stage(double* dst, const double* x, double a, const double* k,
                       std::size_t n) {
  using P = pack<kNativeWidth>;
  const P pa = P::broadcast(a);
  std::size_t i = 0;
  for (; i + kNativeWidth <= n; i += kNativeWidth)
    (P::load(x + i) + pa * P::load(k + i)).store(dst + i);
  for (; i < n; ++i) dst[i] = x[i] + a * k[i];
}

/// x[i] += h6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i]), h6 = h/6 pre-folded.
/// The sum associates left-to-right, matching integrator.cpp's final combine.
inline void rk4_combine(double* x, double h6, const double* k1,
                        const double* k2, const double* k3, const double* k4,
                        std::size_t n) {
  using P = pack<kNativeWidth>;
  const P ph6 = P::broadcast(h6);
  const P two = P::broadcast(2.0);
  std::size_t i = 0;
  for (; i + kNativeWidth <= n; i += kNativeWidth) {
    const P s = ((P::load(k1 + i) + two * P::load(k2 + i)) +
                 two * P::load(k3 + i)) +
                P::load(k4 + i);
    (P::load(x + i) + ph6 * s).store(x + i);
  }
  for (; i < n; ++i)
    x[i] += h6 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
}

}  // namespace ecsim::simd
