// State-space system descriptions used by the control-design layer.
#pragma once

#include "mathlib/matrix.hpp"

namespace ecsim::control {

using math::Matrix;

/// LTI system x' = Ax + Bu, y = Cx + Du (continuous) or
/// x+ = Ax + Bu, y = Cx + Du (discrete with sampling period ts).
struct StateSpace {
  Matrix a, b, c, d;
  bool discrete = false;
  double ts = 0.0;  // sampling period; meaningful iff discrete

  std::size_t order() const { return a.rows(); }
  std::size_t num_inputs() const { return b.cols(); }
  std::size_t num_outputs() const { return c.rows(); }

  /// Dimension consistency check; throws std::invalid_argument on violation.
  void validate() const;

  /// True if the autonomous system is asymptotically stable
  /// (eigs in open left half-plane / open unit disk).
  bool is_stable() const;
};

/// Full-state-output helper: C = I, D = 0.
StateSpace make_state_system(Matrix a, Matrix b);

/// Continuous SISO transfer function -> controllable canonical state space.
/// Coefficients highest power first.
StateSpace tf2ss(const std::vector<double>& num, const std::vector<double>& den);

/// Controllability matrix [B AB ... A^{n-1}B].
Matrix controllability_matrix(const StateSpace& sys);
/// Rank of a matrix by Gaussian elimination with pivot tolerance.
std::size_t rank(const Matrix& m, double tol = 1e-9);
bool is_controllable(const StateSpace& sys, double tol = 1e-9);
bool is_observable(const StateSpace& sys, double tol = 1e-9);

}  // namespace ecsim::control
