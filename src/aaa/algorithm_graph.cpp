#include "aaa/algorithm_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecsim::aaa {

Time Operation::wcet_on(const std::string& proc_type) const {
  if (!is_conditional()) {
    const auto it = wcet.find(proc_type);
    if (it == wcet.end()) {
      throw std::invalid_argument("Operation '" + name +
                                  "' cannot run on type '" + proc_type + "'");
    }
    return it->second;
  }
  Time best = -1.0;
  for (const Branch& br : branches) {
    const auto it = br.wcet.find(proc_type);
    if (it == br.wcet.end()) {
      throw std::invalid_argument("Branch '" + br.name + "' of '" + name +
                                  "' cannot run on type '" + proc_type + "'");
    }
    best = std::max(best, it->second);
  }
  return best;
}

bool Operation::runs_on(const std::string& proc_type) const {
  if (!is_conditional()) return wcet.count(proc_type) > 0;
  return std::all_of(branches.begin(), branches.end(), [&](const Branch& br) {
    return br.wcet.count(proc_type) > 0;
  });
}

OpId AlgorithmGraph::add_operation(Operation op) {
  if (op.name.empty()) {
    throw std::invalid_argument("add_operation: operation needs a name");
  }
  for (const Operation& existing : ops_) {
    if (existing.name == op.name) {
      throw std::invalid_argument("add_operation: duplicate name '" + op.name +
                                  "'");
    }
  }
  if (op.wcet.empty() && op.branches.empty()) {
    throw std::invalid_argument("add_operation: '" + op.name +
                                "' has no WCET entry");
  }
  for (const auto& [type, t] : op.wcet) {
    if (t < 0.0) throw std::invalid_argument("add_operation: negative WCET");
  }
  for (const Branch& br : op.branches) {
    for (const auto& [type, t] : br.wcet) {
      if (t < 0.0) throw std::invalid_argument("add_operation: negative WCET");
    }
  }
  ops_.push_back(std::move(op));
  return ops_.size() - 1;
}

OpId AlgorithmGraph::add_simple(std::string name, OpKind kind, Time wcet,
                                std::optional<std::string> bound_processor) {
  Operation op;
  op.name = std::move(name);
  op.kind = kind;
  op.wcet["cpu"] = wcet;
  op.bound_processor = std::move(bound_processor);
  return add_operation(std::move(op));
}

void AlgorithmGraph::add_dependency(OpId from, OpId to, double size,
                                    std::size_t priority) {
  if (from >= ops_.size() || to >= ops_.size()) {
    throw std::out_of_range("add_dependency: op id out of range");
  }
  if (from == to) throw std::invalid_argument("add_dependency: self-loop");
  if (size < 0.0) throw std::invalid_argument("add_dependency: negative size");
  deps_.push_back(DataDep{from, to, size, priority});
}

std::size_t AlgorithmGraph::dep_priority(std::size_t dep_index) const {
  const DataDep& d = deps_.at(dep_index);
  return d.priority != kNone ? d.priority : dep_index;
}

std::vector<OpId> AlgorithmGraph::predecessors(OpId id) const {
  std::vector<OpId> out;
  for (const DataDep& d : deps_) {
    if (d.to == id) out.push_back(d.from);
  }
  return out;
}

std::vector<OpId> AlgorithmGraph::successors(OpId id) const {
  std::vector<OpId> out;
  for (const DataDep& d : deps_) {
    if (d.from == id) out.push_back(d.to);
  }
  return out;
}

std::vector<OpId> AlgorithmGraph::sensors() const {
  std::vector<OpId> out;
  for (OpId i = 0; i < ops_.size(); ++i) {
    if (ops_[i].kind == OpKind::kSensor) out.push_back(i);
  }
  return out;
}

std::vector<OpId> AlgorithmGraph::actuators() const {
  std::vector<OpId> out;
  for (OpId i = 0; i < ops_.size(); ++i) {
    if (ops_[i].kind == OpKind::kActuator) out.push_back(i);
  }
  return out;
}

std::vector<OpId> AlgorithmGraph::topological_order() const {
  const std::size_t n = ops_.size();
  std::vector<std::size_t> indeg(n, 0);
  for (const DataDep& d : deps_) ++indeg[d.to];
  std::vector<OpId> order;
  order.reserve(n);
  std::vector<OpId> ready;
  for (OpId i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    const OpId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (const DataDep& d : deps_) {
      if (d.from == id && --indeg[d.to] == 0) ready.push_back(d.to);
    }
  }
  if (order.size() != n) {
    throw std::runtime_error("AlgorithmGraph: cycle detected in '" + name_ + "'");
  }
  return order;
}

OpId AlgorithmGraph::find(const std::string& name) const {
  for (OpId i = 0; i < ops_.size(); ++i) {
    if (ops_[i].name == name) return i;
  }
  throw std::out_of_range("AlgorithmGraph::find: no op named '" + name + "'");
}

std::vector<Time> AlgorithmGraph::tail_levels(double comm_weight) const {
  // max WCET across all processor types an op supports.
  auto max_wcet = [](const Operation& op) {
    Time best = 0.0;
    if (!op.is_conditional()) {
      for (const auto& [type, t] : op.wcet) best = std::max(best, t);
    } else {
      for (const Branch& br : op.branches) {
        for (const auto& [type, t] : br.wcet) best = std::max(best, t);
      }
    }
    return best;
  };
  const std::vector<OpId> order = topological_order();
  std::vector<Time> level(ops_.size(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const OpId id = *it;
    Time tail = 0.0;
    for (const DataDep& d : deps_) {
      if (d.from == id) {
        tail = std::max(tail, level[d.to] + comm_weight * d.size);
      }
    }
    level[id] = max_wcet(ops_[id]) + tail;
  }
  return level;
}

}  // namespace ecsim::aaa
