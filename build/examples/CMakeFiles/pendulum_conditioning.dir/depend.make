# Empty dependencies file for pendulum_conditioning.
# This may be replaced when dependencies are built.
