#include "aaa/schedule.hpp"

#include <gtest/gtest.h>

#include "aaa/adequation.hpp"

namespace ecsim::aaa {
namespace {

struct Fixture {
  AlgorithmGraph alg{"chain", 0.01};
  ArchitectureGraph arch{ArchitectureGraph::bus_architecture(2, 1e4, 1e-5)};
  OpId s, c, a;

  Fixture() {
    s = alg.add_simple("sense", OpKind::kSensor, 1e-4);
    c = alg.add_simple("ctrl", OpKind::kCompute, 5e-4);
    a = alg.add_simple("act", OpKind::kActuator, 1e-4);
    alg.add_dependency(s, c, 8.0);
    alg.add_dependency(c, a, 8.0);
  }
};

TEST(Schedule, AddOpValidation) {
  Schedule sched(2, 1);
  EXPECT_THROW(sched.add_op(ScheduledOp{0, 0, 1.0, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(sched.add_op(ScheduledOp{0, 5, 0.0, 1.0}), std::out_of_range);
  sched.add_op(ScheduledOp{0, 1, 0.0, 1.0});
  EXPECT_EQ(sched.ops_on(1).size(), 1u);
  EXPECT_TRUE(sched.has_op(0));
  EXPECT_FALSE(sched.has_op(3));
  EXPECT_THROW(sched.of_op(3), std::out_of_range);
}

TEST(Schedule, MakespanOverOpsAndComms) {
  Schedule sched(1, 1);
  sched.add_op(ScheduledOp{0, 0, 0.0, 1.0});
  sched.add_comm(ScheduledComm{0, Hop{0, 0, 0}, 0, 1.0, 2.5});
  EXPECT_DOUBLE_EQ(sched.makespan(), 2.5);
}

TEST(ScheduleValidate, AcceptsAdequationOutput) {
  Fixture f;
  const Schedule sched = adequate(f.alg, f.arch);
  EXPECT_NO_THROW(sched.validate(f.alg, f.arch));
}

TEST(ScheduleValidate, CatchesMissingOp) {
  Fixture f;
  Schedule sched(2, 1);
  sched.add_op(ScheduledOp{f.s, 0, 0.0, 1e-4});
  EXPECT_THROW(sched.validate(f.alg, f.arch), std::runtime_error);
}

TEST(ScheduleValidate, CatchesProcessorOverlap) {
  Fixture f;
  Schedule sched(2, 1);
  sched.add_op(ScheduledOp{f.s, 0, 0.0, 2e-4});
  sched.add_op(ScheduledOp{f.c, 0, 1e-4, 6e-4});  // overlaps sense
  sched.add_op(ScheduledOp{f.a, 0, 6e-4, 7e-4});
  EXPECT_THROW(sched.validate(f.alg, f.arch), std::runtime_error);
}

TEST(ScheduleValidate, CatchesDependencyViolation) {
  Fixture f;
  Schedule sched(2, 1);
  // ctrl before sense on the same processor.
  sched.add_op(ScheduledOp{f.c, 0, 0.0, 5e-4});
  sched.add_op(ScheduledOp{f.s, 0, 5e-4, 6e-4});
  sched.add_op(ScheduledOp{f.a, 0, 6e-4, 7e-4});
  EXPECT_THROW(sched.validate(f.alg, f.arch), std::runtime_error);
}

TEST(ScheduleValidate, CatchesMissingCommunication) {
  Fixture f;
  Schedule sched(2, 1);
  // sense on P0, ctrl on P1 with no bus transfer scheduled.
  sched.add_op(ScheduledOp{f.s, 0, 0.0, 1e-4});
  sched.add_op(ScheduledOp{f.c, 1, 2e-4, 7e-4});
  sched.add_op(ScheduledOp{f.a, 1, 7e-4, 8e-4});
  EXPECT_THROW(sched.validate(f.alg, f.arch), std::runtime_error);
}

TEST(ScheduleValidate, CatchesLateDataArrival) {
  Fixture f;
  Schedule sched(2, 1);
  sched.add_op(ScheduledOp{f.s, 0, 0.0, 1e-4});
  // Transfer completes after ctrl starts.
  sched.add_comm(ScheduledComm{0, Hop{0, 0, 1}, 0, 1e-4, 9e-4});
  sched.add_op(ScheduledOp{f.c, 1, 2e-4, 7e-4});
  sched.add_op(ScheduledOp{f.a, 1, 7e-4, 8e-4});
  EXPECT_THROW(sched.validate(f.alg, f.arch), std::runtime_error);
}

TEST(ScheduleValidate, CatchesIncompatiblePlacement) {
  Fixture f;
  f.alg.op(f.s).bound_processor = "P1";
  Schedule sched(2, 1);
  sched.add_op(ScheduledOp{f.s, 0, 0.0, 1e-4});  // violates binding
  sched.add_op(ScheduledOp{f.c, 0, 1e-4, 6e-4});
  sched.add_op(ScheduledOp{f.a, 0, 6e-4, 7e-4});
  EXPECT_THROW(sched.validate(f.alg, f.arch), std::runtime_error);
}

TEST(Schedule, ToStringListsAllComponents) {
  Fixture f;
  const Schedule sched = adequate(f.alg, f.arch);
  const std::string text = sched.to_string(f.alg, f.arch);
  EXPECT_NE(text.find("P0"), std::string::npos);
  EXPECT_NE(text.find("sense"), std::string::npos);
  EXPECT_NE(text.find("makespan"), std::string::npos);
}

}  // namespace
}  // namespace ecsim::aaa
