file(REMOVE_RECURSE
  "CMakeFiles/networked_observer.dir/networked_observer.cpp.o"
  "CMakeFiles/networked_observer.dir/networked_observer.cpp.o.d"
  "networked_observer"
  "networked_observer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/networked_observer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
