// Backend selector shared by the dispatcher, the CLI (--backend=...) and the
// benches. Header-only so callers that only name a backend don't link the
// native toolchain machinery.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace ecsim::backend {

/// How a model is executed:
///  - kInterp: the in-process interpreting sim::Simulator (always available);
///  - kNative: C++ specialized from the IR, compiled with the host toolchain
///    into a shared object and dlopen()ed. Falls back to kInterp with a
///    recorded reason whenever generation, compilation or loading is not
///    possible (DESIGN.md §3.6).
enum class Kind { kInterp, kNative };

inline std::string_view to_string(Kind k) {
  return k == Kind::kNative ? "native" : "interp";
}

inline Kind parse_kind(std::string_view s) {
  if (s == "interp" || s == "interpreter") return Kind::kInterp;
  if (s == "native" || s == "codegen") return Kind::kNative;
  throw std::invalid_argument("backend: unknown kind '" + std::string(s) +
                              "' (expected interp|native)");
}

}  // namespace ecsim::backend
