#include "aaa/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ecsim::aaa {

namespace {
constexpr double kTimeEps = 1e-9;
}

namespace {

/// Insert `index` into `order` keeping it sorted by start time (stable for
/// equal starts). Gap-aware adequation commits out of chronological order,
/// but the per-component lists must reflect execution order.
template <typename Items>
void insert_by_start(std::vector<std::size_t>& order, const Items& items,
                     std::size_t index, double start) {
  auto pos = order.end();
  for (auto it = order.begin(); it != order.end(); ++it) {
    if (items[*it].start > start) {
      pos = it;
      break;
    }
  }
  order.insert(pos, index);
}

}  // namespace

std::size_t Schedule::add_op(ScheduledOp so) {
  if (so.end < so.start) throw std::invalid_argument("add_op: end < start");
  if (so.proc >= proc_order_.size()) {
    throw std::out_of_range("add_op: processor out of range");
  }
  ops_.push_back(so);
  insert_by_start(proc_order_[so.proc], ops_, ops_.size() - 1, so.start);
  return ops_.size() - 1;
}

std::size_t Schedule::add_comm(ScheduledComm sc) {
  if (sc.end < sc.start) throw std::invalid_argument("add_comm: end < start");
  if (sc.hop.medium >= medium_order_.size()) {
    throw std::out_of_range("add_comm: medium out of range");
  }
  comms_.push_back(sc);
  insert_by_start(medium_order_[sc.hop.medium], comms_, comms_.size() - 1,
                  sc.start);
  return comms_.size() - 1;
}

const ScheduledOp& Schedule::of_op(OpId id) const {
  for (const ScheduledOp& so : ops_) {
    if (so.op == id) return so;
  }
  throw std::out_of_range("Schedule::of_op: operation not scheduled");
}

bool Schedule::has_op(OpId id) const {
  return std::any_of(ops_.begin(), ops_.end(),
                     [id](const ScheduledOp& so) { return so.op == id; });
}

Time Schedule::makespan() const {
  Time end = 0.0;
  for (const ScheduledOp& so : ops_) end = std::max(end, so.end);
  for (const ScheduledComm& sc : comms_) end = std::max(end, sc.end);
  return end;
}

void Schedule::validate(const AlgorithmGraph& alg,
                        const ArchitectureGraph& arch) const {
  // Each op scheduled exactly once, on a compatible processor.
  std::vector<std::size_t> seen(alg.num_operations(), 0);
  for (const ScheduledOp& so : ops_) {
    ++seen.at(so.op);
    const Operation& op = alg.op(so.op);
    const Processor& proc = arch.processor(so.proc);
    if (!op.runs_on(proc.type)) {
      throw std::runtime_error("Schedule: op '" + op.name +
                               "' on incompatible processor '" + proc.name + "'");
    }
    if (op.bound_processor && *op.bound_processor != proc.name) {
      throw std::runtime_error("Schedule: op '" + op.name +
                               "' violates placement constraint");
    }
  }
  for (OpId i = 0; i < alg.num_operations(); ++i) {
    if (seen[i] != 1) {
      throw std::runtime_error("Schedule: op '" + alg.op(i).name +
                               "' scheduled " + std::to_string(seen[i]) +
                               " times");
    }
  }
  // Per-component order and non-overlap.
  for (ProcId p = 0; p < proc_order_.size(); ++p) {
    Time prev_end = -1.0;
    for (std::size_t idx : proc_order_[p]) {
      const ScheduledOp& so = ops_[idx];
      if (so.start + kTimeEps < prev_end) {
        throw std::runtime_error("Schedule: overlap on processor '" +
                                 arch.processor(p).name + "'");
      }
      prev_end = so.end;
    }
  }
  for (MediumId m = 0; m < medium_order_.size(); ++m) {
    Time prev_end = -1.0;
    for (std::size_t idx : medium_order_[m]) {
      const ScheduledComm& sc = comms_[idx];
      if (sc.start + kTimeEps < prev_end) {
        throw std::runtime_error("Schedule: overlap on medium '" +
                                 arch.medium(m).name + "'");
      }
      prev_end = sc.end;
    }
  }
  // Dependency satisfaction.
  const auto& deps = alg.dependencies();
  for (std::size_t di = 0; di < deps.size(); ++di) {
    const DataDep& dep = deps[di];
    const ScheduledOp& prod = of_op(dep.from);
    const ScheduledOp& cons = of_op(dep.to);
    if (prod.proc == cons.proc) {
      if (cons.start + kTimeEps < prod.end) {
        throw std::runtime_error("Schedule: dependency '" +
                                 alg.op(dep.from).name + "' -> '" +
                                 alg.op(dep.to).name + "' violated");
      }
      continue;
    }
    // Cross-processor: collect this dep's hops in hop order.
    std::vector<const ScheduledComm*> hops;
    for (const ScheduledComm& sc : comms_) {
      if (sc.dep_index == di) hops.push_back(&sc);
    }
    if (hops.empty()) {
      throw std::runtime_error("Schedule: missing communication for '" +
                               alg.op(dep.from).name + "' -> '" +
                               alg.op(dep.to).name + "'");
    }
    std::sort(hops.begin(), hops.end(),
              [](const ScheduledComm* a, const ScheduledComm* b) {
                return a->hop_index < b->hop_index;
              });
    Time ready = prod.end;
    ProcId at = prod.proc;
    for (const ScheduledComm* sc : hops) {
      if (sc->hop.from_proc != at) {
        throw std::runtime_error("Schedule: broken route for dependency '" +
                                 alg.op(dep.from).name + "' -> '" +
                                 alg.op(dep.to).name + "'");
      }
      if (sc->start + kTimeEps < ready) {
        throw std::runtime_error("Schedule: hop starts before data ready for '" +
                                 alg.op(dep.from).name + "'");
      }
      ready = sc->end;
      at = sc->hop.to_proc;
    }
    if (at != cons.proc || cons.start + kTimeEps < ready) {
      throw std::runtime_error("Schedule: data arrives late for '" +
                               alg.op(dep.to).name + "'");
    }
  }
}

std::string Schedule::to_string(const AlgorithmGraph& alg,
                                const ArchitectureGraph& arch) const {
  std::ostringstream os;
  os << "schedule makespan=" << makespan() << "\n";
  for (ProcId p = 0; p < proc_order_.size(); ++p) {
    os << "  " << arch.processor(p).name << ":";
    for (std::size_t idx : proc_order_[p]) {
      const ScheduledOp& so = ops_[idx];
      os << "  " << alg.op(so.op).name << "[" << so.start << "," << so.end
         << ")";
    }
    os << "\n";
  }
  for (MediumId m = 0; m < medium_order_.size(); ++m) {
    os << "  " << arch.medium(m).name << ":";
    for (std::size_t idx : medium_order_[m]) {
      const ScheduledComm& sc = comms_[idx];
      const DataDep& dep = alg.dependencies()[sc.dep_index];
      os << "  " << alg.op(dep.from).name << ">" << alg.op(dep.to).name << "["
         << sc.start << "," << sc.end << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ecsim::aaa
