#include "par/monte_carlo.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "exec/executive_vm.hpp"
#include "latency/latency.hpp"
#include "simd/pack.hpp"

namespace ecsim::sweep {

namespace {

/// Everything one trial contributes to the reduction.
struct TrialOutcome {
  bool deadlock = false;
  double makespan = 0.0;
  // Parallel to the io-op list: per-trial mean / max / p2p latency.
  std::vector<double> mean_latency;
  std::vector<double> max_latency;
  std::vector<double> jitter;
};

}  // namespace

MonteCarloResult run_monte_carlo(const aaa::AlgorithmGraph& alg,
                                 const aaa::ArchitectureGraph& arch,
                                 const aaa::Schedule& sched,
                                 const aaa::GeneratedCode& code,
                                 const MonteCarloSpec& spec,
                                 const par::BatchOptions& batch) {
  std::vector<aaa::OpId> io_ops;
  for (aaa::OpId op = 0; op < alg.num_operations(); ++op) {
    if (alg.op(op).kind != aaa::OpKind::kCompute) io_ops.push_back(op);
  }
  const aaa::Time period =
      spec.period > 0.0
          ? spec.period
          : (alg.period() > 0.0 ? alg.period() : sched.makespan());

  // Per-trial seeds drawn up front from the same stream family the runner
  // would hand a one-trial-per-task batch: seeds[i] is bit-identical to the
  // pre-batching `ctx.rng.next_u64()` of trial i, so any batch width (and
  // any thread count) reproduces the same trial realizations.
  std::vector<std::uint64_t> seeds(spec.trials);
  {
    std::vector<math::Rng> streams = math::Rng(batch.seed).split(spec.trials);
    math::fill_lanes_u64(streams, seeds);
  }
  const std::size_t width =
      spec.batch_width > 0 ? spec.batch_width : simd::preferred_batch_width();
  const std::size_t tasks = (spec.trials + width - 1) / width;

  par::BatchRunner runner(batch);
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<std::vector<TrialOutcome>> shards =
      runner.map<std::vector<TrialOutcome>>(tasks, [&](par::TaskContext& ctx) {
        const std::size_t begin = ctx.index * width;
        const std::size_t end = std::min(begin + width, spec.trials);
        std::vector<TrialOutcome> outs;
        outs.reserve(end - begin);
        for (std::size_t trial = begin; trial < end; ++trial) {
          exec::VmOptions vm;
          vm.iterations = spec.iterations;
          vm.period = period;
          // Decorrelated per-trial stream: the trial's draw sequence
          // depends only on (batch.seed, trial index).
          vm.seed = seeds[trial];
          vm.exec_time = exec::uniform_fraction_exec_time(spec.bcet_fraction);
          vm.branch_chooser = spec.random_branches
                                  ? exec::uniform_branch_chooser()
                                  : exec::worst_case_branch_chooser();
          vm.tracer = ctx.tracer;
          vm.metrics = ctx.metrics;
          vm.track_prefix = "trial" + std::to_string(trial) + "/";
          const exec::VmResult run =
              exec::run_executives(alg, arch, sched, code, vm);

          TrialOutcome out;
          out.deadlock = run.deadlock;
          if (!run.deadlock) {
            for (const exec::OpInstance& inst : run.ops) {
              out.makespan = std::max(out.makespan, inst.end);
            }
            for (const aaa::OpId op : io_ops) {
              const latency::LatencySeries series = latency::analyze_instants(
                  alg.op(op).name, run.completions(op), period);
              out.mean_latency.push_back(series.summary.mean);
              out.max_latency.push_back(series.summary.max);
              out.jitter.push_back(series.jitter);
            }
          }
          outs.push_back(std::move(out));
        }
        return outs;
      });
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<TrialOutcome> trials;
  trials.reserve(spec.trials);
  for (const std::vector<TrialOutcome>& shard : shards) {
    for (const TrialOutcome& t : shard) trials.push_back(t);
  }

  MonteCarloResult result;
  result.trials = spec.trials;
  result.batch_width = width;
  result.wall_s = wall_s;
  result.trials_per_s =
      wall_s > 0.0 ? static_cast<double>(spec.trials) / wall_s : 0.0;
  std::vector<double> makespans;
  std::vector<std::vector<double>> means(io_ops.size()), maxs(io_ops.size()),
      jitters(io_ops.size());
  for (const TrialOutcome& t : trials) {
    if (t.deadlock) {
      ++result.deadlocks;
      continue;
    }
    makespans.push_back(t.makespan);
    for (std::size_t k = 0; k < io_ops.size(); ++k) {
      means[k].push_back(t.mean_latency[k]);
      maxs[k].push_back(t.max_latency[k]);
      jitters[k].push_back(t.jitter[k]);
    }
  }
  result.makespan = math::summarize(makespans);
  for (std::size_t k = 0; k < io_ops.size(); ++k) {
    MonteCarloOpStats stats;
    stats.op = io_ops[k];
    stats.name = alg.op(io_ops[k]).name;
    stats.sensor = alg.op(io_ops[k]).kind == aaa::OpKind::kSensor;
    stats.mean_latency = math::summarize(means[k]);
    stats.max_latency = math::summarize(maxs[k]);
    stats.jitter = math::summarize(jitters[k]);
    result.io_ops.push_back(std::move(stats));
  }
  return result;
}

std::string to_string(const MonteCarloResult& result) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%zu trials (%zu deadlocked), makespan mean=%.6g p95=%.6g "
                "max=%.6g\n",
                result.trials, result.deadlocks, result.makespan.mean,
                result.makespan.p95, result.makespan.max);
  std::string out = buf;
  std::snprintf(buf, sizeof buf,
                "%-12s %-9s %12s %12s %12s %12s\n", "operation", "kind",
                "mean(La/Ls)", "p95(mean)", "max(max)", "p95(jitter)");
  out += buf;
  for (const MonteCarloOpStats& s : result.io_ops) {
    std::snprintf(buf, sizeof buf, "%-12s %-9s %12.6f %12.6f %12.6f %12.6f\n",
                  s.name.c_str(), s.sensor ? "sampling" : "actuation",
                  s.mean_latency.mean, s.mean_latency.p95, s.max_latency.max,
                  s.jitter.p95);
    out += buf;
  }
  return out;
}

}  // namespace ecsim::sweep
