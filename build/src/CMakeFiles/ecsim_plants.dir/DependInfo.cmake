
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plants/coupled_tanks.cpp" "src/CMakeFiles/ecsim_plants.dir/plants/coupled_tanks.cpp.o" "gcc" "src/CMakeFiles/ecsim_plants.dir/plants/coupled_tanks.cpp.o.d"
  "/root/repo/src/plants/dc_servo.cpp" "src/CMakeFiles/ecsim_plants.dir/plants/dc_servo.cpp.o" "gcc" "src/CMakeFiles/ecsim_plants.dir/plants/dc_servo.cpp.o.d"
  "/root/repo/src/plants/inverted_pendulum.cpp" "src/CMakeFiles/ecsim_plants.dir/plants/inverted_pendulum.cpp.o" "gcc" "src/CMakeFiles/ecsim_plants.dir/plants/inverted_pendulum.cpp.o.d"
  "/root/repo/src/plants/quarter_car.cpp" "src/CMakeFiles/ecsim_plants.dir/plants/quarter_car.cpp.o" "gcc" "src/CMakeFiles/ecsim_plants.dir/plants/quarter_car.cpp.o.d"
  "/root/repo/src/plants/two_mass.cpp" "src/CMakeFiles/ecsim_plants.dir/plants/two_mass.cpp.o" "gcc" "src/CMakeFiles/ecsim_plants.dir/plants/two_mass.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ecsim_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_mathlib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
