file(REMOVE_RECURSE
  "CMakeFiles/ecsim_io.dir/io/csv.cpp.o"
  "CMakeFiles/ecsim_io.dir/io/csv.cpp.o.d"
  "CMakeFiles/ecsim_io.dir/io/dot.cpp.o"
  "CMakeFiles/ecsim_io.dir/io/dot.cpp.o.d"
  "CMakeFiles/ecsim_io.dir/io/spec.cpp.o"
  "CMakeFiles/ecsim_io.dir/io/spec.cpp.o.d"
  "libecsim_io.a"
  "libecsim_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecsim_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
