#include "mathlib/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ecsim::math {

Summary summarize(const std::vector<double>& sample) {
  Summary s;
  s.count = sample.size();
  if (sample.empty()) return s;
  double sum = 0.0;
  s.min = sample.front();
  s.max = sample.front();
  for (double v : sample) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(sample.size());
  if (sample.size() > 1) {
    double ss = 0.0;
    for (double v : sample) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(sample.size() - 1));
  }
  s.median = quantile(sample, 0.5);
  s.p95 = quantile(sample, 0.95);
  return s;
}

double quantile(std::vector<double> sample, double q) {
  if (sample.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of range");
  std::sort(sample.begin(), sample.end());
  const double pos = q * static_cast<double>(sample.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double peak_to_peak(const std::vector<double>& sample) {
  if (sample.empty()) return 0.0;
  const auto [mn, mx] = std::minmax_element(sample.begin(), sample.end());
  return *mx - *mn;
}

std::vector<std::size_t> histogram(const std::vector<double>& sample, double lo,
                                   double hi, std::size_t bins) {
  if (bins == 0 || hi <= lo) throw std::invalid_argument("histogram: bad range");
  std::vector<std::size_t> h(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : sample) {
    auto idx = static_cast<long>((v - lo) / width);
    idx = std::clamp(idx, 0L, static_cast<long>(bins) - 1);
    ++h[static_cast<std::size_t>(idx)];
  }
  return h;
}

}  // namespace ecsim::math
