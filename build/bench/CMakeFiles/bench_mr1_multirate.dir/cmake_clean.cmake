file(REMOVE_RECURSE
  "CMakeFiles/bench_mr1_multirate.dir/bench_mr1_multirate.cpp.o"
  "CMakeFiles/bench_mr1_multirate.dir/bench_mr1_multirate.cpp.o.d"
  "bench_mr1_multirate"
  "bench_mr1_multirate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mr1_multirate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
