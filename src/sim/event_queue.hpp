// Time-ordered event queue. Ties at the same instant are broken by insertion
// sequence number, which makes simultaneous-event processing deterministic
// and causally ordered (an event emitted with zero delay during dispatch is
// processed after the events already pending at that instant).
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/trace.hpp"

namespace ecsim::sim {

struct ScheduledEvent {
  Time time = 0.0;
  std::uint64_t seq = 0;      // tie-break: FIFO among simultaneous events
  std::size_t block = 0;      // destination block index
  std::size_t event_in = 0;   // destination event input port
};

class EventQueue {
 public:
  void push(Time t, std::size_t block, std::size_t event_in);
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  /// Earliest pending event time; queue must be non-empty.
  Time next_time() const;
  /// Remove and return the earliest event (FIFO among ties).
  ScheduledEvent pop();
  void clear();

 private:
  struct Later {
    bool operator()(const ScheduledEvent& a, const ScheduledEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<ScheduledEvent, std::vector<ScheduledEvent>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ecsim::sim
