#include "sim/event_queue.hpp"

#include <stdexcept>

namespace ecsim::sim {

void EventQueue::push(Time t, std::size_t block, std::size_t event_in) {
  heap_.push(ScheduledEvent{t, next_seq_++, block, event_in});
}

Time EventQueue::next_time() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty");
  return heap_.top().time;
}

ScheduledEvent EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty");
  ScheduledEvent e = heap_.top();
  heap_.pop();
  return e;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  next_seq_ = 0;
}

}  // namespace ecsim::sim
