# Empty compiler generated dependencies file for bench_mr1_multirate.
# This may be replaced when dependencies are built.
