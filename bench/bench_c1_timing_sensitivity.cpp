// EXP-C1 (background, paper ref [2] — Cervin et al., "How does control
// timing affect performance?"): quantify the sensitivity of the DC-servo
// loop to (a) constant input-output latency and (b) actuation jitter.
// Expected shape: cost grows with latency (sharply as it approaches Ts);
// jitter degrades performance relative to a constant delay of equal mean.
#include "bench_common.hpp"

using namespace ecsim;

namespace {

void experiment() {
  bench::banner("EXP-C1", "ref [2] (Cervin et al. 2003)",
                "Control performance vs constant latency and vs jitter for "
                "the DC servo, Ts = 10 ms.");
  const translate::LoopSpec spec = bench::servo_loop();
  const translate::CosimOutcome ideal = translate::run_ideal_loop(spec);

  // Both sweeps run as grids on the parallel exploration engine; the cells
  // are bit-identical to the former one-at-a-time run_latency_loop calls.
  const sweep::SweepRunner runner;

  std::printf("(a) constant actuation latency sweep\n");
  std::printf("%12s %10s %12s %12s\n", "La/Ts", "IAE", "IAE/ideal",
              "overshoot%");
  std::printf("%12.2f %10.5f %12.3f %12.2f\n", 0.0, ideal.iae, 1.0,
              ideal.step.overshoot_pct);
  sweep::TimingGrid latency_grid;
  latency_grid.loop = spec;
  latency_grid.latency_fracs = {0.1, 0.2, 0.4, 0.6, 0.8, 0.95};
  latency_grid.jitter_fracs = {0.0};
  for (const sweep::SweepCell& c : runner.run(latency_grid)) {
    std::printf("%12.2f %s %s %s\n", c.la_frac, bench::metric(c.iae).c_str(),
                bench::metric(c.iae / ideal.iae, "%12.3f").c_str(),
                bench::metric(c.overshoot_pct, "%12.2f").c_str());
  }

  // Mean latency 0.3 Ts: stressed but stable, so the jitter effect is not
  // drowned by marginal-stability oscillations.
  std::printf("\n(b) actuation jitter sweep (mean latency fixed at 0.3 Ts)\n");
  std::printf("%14s %10s %12s\n", "jitter p2p/Ts", "IAE", "IAE/ideal");
  sweep::TimingGrid jitter_grid;
  jitter_grid.loop = spec;
  jitter_grid.latency_fracs = {0.3};
  jitter_grid.jitter_fracs = {0.0, 0.1, 0.2, 0.3, 0.5};
  for (const sweep::SweepCell& c : runner.run(jitter_grid)) {
    std::printf("%14.2f %s %s\n", c.jitter_frac,
                bench::metric(c.iae).c_str(),
                bench::metric(c.iae / ideal.iae, "%12.3f").c_str());
  }

  std::printf("\n(c) sampling-period / latency trade-off (constant latency "
              "3 ms)\n");
  std::printf("%10s %10s %12s\n", "Ts [ms]", "IAE", "latency/Ts");
  // Each cell builds a loop at a different Ts, which TimingGrid cannot
  // express — this one goes straight to the batch runner.
  const std::vector<double> periods = {0.004, 0.006, 0.01, 0.02, 0.04};
  par::BatchRunner batch{par::BatchOptions{}};
  const std::vector<translate::CosimOutcome> outs =
      batch.map<translate::CosimOutcome>(
          periods.size(), [&](par::TaskContext& ctx) {
            const translate::LoopSpec s = bench::servo_loop(periods[ctx.index]);
            return translate::run_latency_loop(
                s, 0.0, std::min(0.003, 0.95 * s.ts));
          });
  for (std::size_t i = 0; i < periods.size(); ++i) {
    const double la = std::min(0.003, 0.95 * periods[i]);
    std::printf("%10.1f %s %12.2f\n", 1e3 * periods[i],
                bench::metric(outs[i].iae).c_str(), la / periods[i]);
  }
  std::printf("\n");
}

void BM_LatencyLoop(benchmark::State& state) {
  const translate::LoopSpec spec = bench::servo_loop(0.01, 0.5);
  const double la = static_cast<double>(state.range(0)) * 1e-3;
  for (auto _ : state) {
    auto out = translate::run_latency_loop(spec, 0.0, la);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_LatencyLoop)->Arg(1)->Arg(5)->Arg(9)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  experiment();
  return bench::run_benchmarks(argc, argv);
}
