#include "svc/server.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "backend/kind.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "par/batch_runner.hpp"
#include "par/fault_sweep.hpp"
#include "par/monte_carlo.hpp"
#include "par/sweep.hpp"
#include "svc/cache_key.hpp"
#include "svc/result_cache.hpp"

namespace ecsim::svc {

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_stop_signal(int) { g_stop = 1; }

/// In-flight frames per worker pipe. Bounds kernel buffer usage so a
/// blocking write can never deadlock against a worker blocked on its own
/// replies; replies are drained one-for-one once the window fills.
constexpr std::size_t kWindow = 64;

}  // namespace

// ---- unit evaluation (workers, fallback path and tests) --------------------

std::string evaluate_unit(const Request& req, std::size_t unit,
                          WarmCache& warm) {
  if (unit >= req.units()) {
    throw std::out_of_range("evaluate_unit: unit beyond request");
  }
  // threads=1 short-circuits BatchRunner to the serial path, so a worker's
  // unit is computed by the exact code a serial in-process run uses.
  par::BatchOptions batch;
  batch.threads = 1;
  const backend::Kind bk = backend::parse_kind(req.backend);
  switch (req.verb) {
    case Verb::kSweepTiming: {
      sweep::TimingGrid grid;
      grid.loop = warm.loop(req.ts, req.t_end, req.seed).loop;
      grid.loop.backend = bk;
      grid.latency_fracs = {req.rows[unit / req.cols.size()]};
      grid.jitter_fracs = {req.cols[unit % req.cols.size()]};
      return encode_cell(sweep::SweepRunner(batch).run(grid)[0]);
    }
    case Verb::kSweepArch: {
      sweep::ArchitectureGrid grid;
      grid.loop = warm.loop(req.ts, req.t_end, req.seed).loop;
      grid.loop.backend = bk;
      grid.dist.bind_ctrl = "P1";  // controller across the bus (CLI contract)
      grid.bus_bandwidths = {req.rows[unit / req.cols.size()]};
      grid.wcet_scales = {req.cols[unit % req.cols.size()]};
      return encode_cell(sweep::SweepRunner(batch).run(grid)[0]);
    }
    case Verb::kSweepNetwork: {
      // The canonical EXP-N1 grid shape (network_servo_grid) restricted to
      // this unit's (bus load, scenario) coordinate; the warm loop replaces
      // the grid's own so the IR hash and seed match the request.
      sweep::NetworkGrid grid = sweep::network_servo_grid(req.ts, req.t_end);
      grid.loop = warm.loop(req.ts, req.t_end, req.seed).loop;
      grid.loop.backend = bk;
      grid.bus_loads = {req.rows[unit / req.cols.size()]};
      grid.scenarios = {
          sweep::scenario_of_code(req.cols[unit % req.cols.size()])};
      return encode_cell(sweep::run_network_sweep(grid, batch)[0]);
    }
    case Verb::kFaultSweep: {
      sweep::FaultGrid grid;
      // CLI convention: --seed seeds the FAULT stream; the loop keeps its
      // default seed so fault grids compare against the same plant noise.
      grid.loop = warm.loop(req.ts, req.t_end, 1).loop;
      grid.loop.backend = bk;
      grid.dist.bind_ctrl = "P1";
      grid.loss_rates = {req.rows[unit / req.cols.size()]};
      grid.delays = {req.cols[unit % req.cols.size()]};
      grid.fault_seed = req.seed;
      return encode_cell(sweep::run_fault_sweep(grid, batch)[0]);
    }
    case Verb::kFaultMc: {
      sweep::FaultMonteCarloSpec spec;
      spec.loop = warm.loop(req.ts, req.t_end, 1).loop;
      spec.loop.backend = bk;
      spec.dist.bind_ctrl = "P1";
      spec.loss_rate = req.loss;
      spec.trials = 1;
      // Trial `unit` of base seed b is trial 0 of base seed b+unit — the
      // identity the cache key relies on (svc/cache_key.cpp).
      spec.base_seed = req.seed + static_cast<std::uint64_t>(unit);
      spec.batch_width = 1;
      return encode_cell(sweep::run_fault_monte_carlo(spec, batch).cells[0]);
    }
    case Verb::kVmMc: {
      const WarmSpec& w = warm.spec(req.spec_text);
      sweep::MonteCarloSpec spec;
      spec.trials = req.trials;
      spec.iterations = req.iterations;
      batch.seed = req.seed;
      return encode_mc(sweep::run_monte_carlo(w.spec.algorithm,
                                              w.spec.architecture, w.sched,
                                              w.code, spec, batch));
    }
    default:
      throw std::invalid_argument("evaluate_unit: verb has no work units");
  }
}

// ---- worker processes ------------------------------------------------------

namespace {

[[noreturn]] void worker_loop(int fd) {
  // Workers exit on pipe EOF, never on the drain signals the master owns.
  std::signal(SIGINT, SIG_IGN);
  std::signal(SIGTERM, SIG_IGN);
  std::signal(SIGPIPE, SIG_IGN);
  WarmCache warm;
  std::string in;
  while (read_frame(fd, in)) {
    Fields f;
    if (!Fields::parse(in, f)) break;
    if (const std::string* op = f.get("op"); op != nullptr && *op == "die") {
      ::_exit(137);  // test aid: simulated crash, no reply
    }
    Fields reply;
    Request req;
    std::string err;
    std::uint64_t unit = 0;
    if (!Request::from_fields(f, req, err) || !f.get_u64("unit", unit)) {
      reply.set("status", "error");
      reply.set("error", err.empty() ? "malformed unit frame" : err);
    } else {
      try {
        std::string payload = evaluate_unit(req, unit, warm);
        reply.set("status", "ok");
        reply.set("payload", std::move(payload));
      } catch (const std::exception& e) {
        reply.set("status", "error");
        reply.set("error", e.what());
      }
    }
    if (!write_frame(fd, reply.serialize())) break;
  }
  ::_exit(0);
}

struct Worker {
  pid_t pid = -1;
  int fd = -1;  // master side of the socketpair
  bool alive = false;
};

struct ServerCtx {
  ServeOptions opts;
  int listen_fd = -1;
  int client_fd = -1;  // live connection, for fd hygiene in forked children
  std::vector<Worker> workers;
  WarmCache* warm = nullptr;
  ResultCache* cache = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  obs::Ledger* ledger = nullptr;
  std::uint64_t requests = 0;
  std::uint64_t redispatched_units = 0;
};

bool spawn_worker(ServerCtx& ctx, std::size_t idx) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return false;
  }
  if (pid == 0) {
    // Drop every master-side fd so EOF semantics stay exact: a worker must
    // not keep a sibling's pipe (or the listen/client socket) open.
    ::close(sv[0]);
    if (ctx.listen_fd >= 0) ::close(ctx.listen_fd);
    if (ctx.client_fd >= 0) ::close(ctx.client_fd);
    for (const Worker& w : ctx.workers) {
      if (w.fd >= 0) ::close(w.fd);
    }
    worker_loop(sv[1]);
  }
  ::close(sv[1]);
  ctx.workers[idx].pid = pid;
  ctx.workers[idx].fd = sv[0];
  ctx.workers[idx].alive = true;
  return true;
}

void retire_worker(ServerCtx& ctx, std::size_t idx) {
  Worker& w = ctx.workers[idx];
  if (w.fd >= 0) ::close(w.fd);
  w.fd = -1;
  w.alive = false;
  if (w.pid > 0) ::waitpid(w.pid, nullptr, 0);
  w.pid = -1;
}

/// One unit frame: the full request plus the unit index.
std::string unit_frame(const Fields& req_fields, std::size_t unit) {
  Fields f = req_fields;
  f.set_u64("unit", unit);
  return f.serialize();
}

/// Read one reply from worker `w`. Returns false on transport failure
/// (crash); an application-level error lands in `err` with `true`.
bool read_reply(Worker& w, std::string& payload, std::string& err) {
  std::string in;
  if (!read_frame(w.fd, in)) return false;
  Fields f;
  if (!Fields::parse(in, f)) return false;
  const std::string* status = f.get("status");
  if (status != nullptr && *status == "ok") {
    const std::string* p = f.get("payload");
    if (p == nullptr) return false;
    payload = *p;
    err.clear();
    return true;
  }
  const std::string* e = f.get("error");
  err = e != nullptr ? *e : "worker error";
  return true;
}

/// Windowed round-robin pump of `units` across the live workers. Completed
/// payloads land in `payloads[unit]`. A worker that dies mid-request is
/// replaced and its incomplete units are re-dispatched ONCE to a live
/// worker; a second transport failure (or any evaluation error) fails the
/// request. Returns true on success, false with `err` set otherwise.
bool dispatch_units(ServerCtx& ctx, const Fields& req_fields,
                    const std::vector<std::size_t>& units,
                    std::vector<std::string>& payloads, std::size_t& redispatch,
                    std::string& err) {
  struct Lane {
    std::size_t worker = 0;              // index into ctx.workers
    std::vector<std::size_t> queue;      // unit indices, send order
    std::size_t sent = 0, received = 0;  // frame cursors into `queue`
    bool failed = false;
  };
  std::vector<Lane> lanes;
  for (std::size_t i = 0; i < ctx.workers.size(); ++i) {
    if (ctx.workers[i].alive) lanes.push_back(Lane{i, {}, 0, 0, false});
  }
  if (lanes.empty()) {
    err = "no live workers";
    return false;
  }
  for (std::size_t i = 0; i < units.size(); ++i) {
    lanes[i % lanes.size()].queue.push_back(units[i]);
  }

  std::vector<std::size_t> recovery;  // units lost to a crashed worker
  const auto pump_lane = [&](Lane& lane) {
    Worker& w = ctx.workers[lane.worker];
    while (lane.sent < lane.queue.size() &&
           lane.sent - lane.received < kWindow) {
      if (!write_frame(w.fd, unit_frame(req_fields, lane.queue[lane.sent]))) {
        return false;
      }
      ++lane.sent;
    }
    return true;
  };
  const auto fail_lane = [&](Lane& lane) {
    // Everything not yet answered must be recomputed: replies arrive in
    // send order, so the incomplete tail starts at the receive cursor.
    for (std::size_t i = lane.received; i < lane.queue.size(); ++i) {
      recovery.push_back(lane.queue[i]);
    }
    lane.failed = true;
    retire_worker(ctx, lane.worker);
    spawn_worker(ctx, lane.worker);  // replacement for subsequent requests
  };
  // Failing the request while other lanes still have in-flight frames would
  // leave stale replies in their pipes, to be misread as answers for the
  // NEXT request's units. Consume every outstanding reply first; a worker
  // that cannot be drained is retired and replaced, which empties its pipe
  // the hard way.
  const auto drain_all = [&]() {
    for (Lane& lane : lanes) {
      if (lane.failed) continue;
      while (lane.received < lane.sent) {
        std::string payload, unit_err;
        if (!read_reply(ctx.workers[lane.worker], payload, unit_err)) {
          lane.failed = true;
          retire_worker(ctx, lane.worker);
          spawn_worker(ctx, lane.worker);
          break;
        }
        ++lane.received;
      }
    }
  };

  for (Lane& lane : lanes) {
    if (!pump_lane(lane)) fail_lane(lane);
  }
  bool outstanding = true;
  while (outstanding) {
    outstanding = false;
    for (Lane& lane : lanes) {
      if (lane.failed || lane.received >= lane.queue.size()) continue;
      std::string payload, unit_err;
      if (!read_reply(ctx.workers[lane.worker], payload, unit_err)) {
        fail_lane(lane);
        continue;
      }
      if (!unit_err.empty()) {
        err = unit_err;
        ++lane.received;  // the errored reply itself is consumed
        drain_all();
        return false;
      }
      payloads[lane.queue[lane.received]] = std::move(payload);
      ++lane.received;
      if (!pump_lane(lane)) {
        fail_lane(lane);
        continue;
      }
      if (lane.received < lane.queue.size()) outstanding = true;
    }
  }

  // Single re-dispatch of crash-lost units, serially, to any live worker.
  for (const std::size_t unit : recovery) {
    Worker* target = nullptr;
    for (Worker& w : ctx.workers) {
      if (w.alive) {
        target = &w;
        break;
      }
    }
    if (target == nullptr) {
      err = "worker crashed and no replacement is live";
      return false;
    }
    std::string payload, unit_err;
    if (!write_frame(target->fd, unit_frame(req_fields, unit)) ||
        !read_reply(*target, payload, unit_err)) {
      const std::size_t idx =
          static_cast<std::size_t>(target - ctx.workers.data());
      retire_worker(ctx, idx);
      spawn_worker(ctx, idx);
      err = "re-dispatched unit failed twice";
      return false;
    }
    if (!unit_err.empty()) {
      err = unit_err;
      return false;
    }
    payloads[unit] = std::move(payload);
    ++redispatch;
  }
  return true;
}

void stamp_ledger(ServerCtx& ctx, const Request& req,
                  const ResponseMeta& meta, double wall_s) {
  obs::LedgerRecord r;
  r.ir_hash = meta.model_hash.rfind("0x", 0) == 0 ? meta.model_hash : "";
  r.model = std::string("svc/") + to_string(req.verb);
  r.backend_requested = req.backend;
  r.backend_used = req.backend;
  r.seed = req.seed;
  r.threads = static_cast<unsigned>(ctx.opts.workers);
  r.wall_s = wall_s;
  r.served_from_cache = meta.served_from_cache ? 1 : 0;
  r.metrics_json = "{}";
  ctx.ledger->append(r);
}

/// Handle one request frame; the reply frame goes out on `cfd`.
void handle_request(ServerCtx& ctx, int cfd, const Fields& f) {
  Fields reply;
  ResponseMeta meta;
  Request req;
  std::string err;
  if (!Request::from_fields(f, req, err)) {
    meta.error = err;
    meta_to_fields(meta, reply);
    write_frame(cfd, reply.serialize());
    return;
  }
  if (req.verb == Verb::kPing) {
    meta.ok = true;
    meta_to_fields(meta, reply);
    write_frame(cfd, reply.serialize());
    return;
  }
  if (req.verb == Verb::kStats) {
    meta.ok = true;
    meta_to_fields(meta, reply);
    reply.set_u64("requests", ctx.requests);
    reply.set_u64("hits", ctx.cache->hits());
    reply.set_u64("misses", ctx.cache->misses());
    reply.set_u64("evictions", ctx.cache->evictions());
    reply.set_u64("bytes", ctx.cache->bytes());
    reply.set_u64("entries", ctx.cache->size());
    reply.set_u64("warm_hits", ctx.warm->hits());
    reply.set_u64("warm_misses", ctx.warm->misses());
    reply.set_u64("redispatched_units", ctx.redispatched_units);
    std::uint64_t alive = 0;
    for (const Worker& w : ctx.workers) alive += w.alive ? 1 : 0;
    reply.set_u64("workers", alive);
    write_frame(cfd, reply.serialize());
    return;
  }
  if (req.verb == Verb::kKillWorker) {
    // Crash the highest-index live worker: a later request exercises the
    // EOF-detection + re-dispatch path for real.
    meta.error = "no live worker to kill";
    for (std::size_t i = ctx.workers.size(); i-- > 0;) {
      if (!ctx.workers[i].alive) continue;
      Fields die;
      die.set("op", "die");
      write_frame(ctx.workers[i].fd, die.serialize());
      meta.ok = true;
      meta.error.clear();
      break;
    }
    meta_to_fields(meta, reply);
    write_frame(cfd, reply.serialize());
    return;
  }

  const auto t0 = std::chrono::steady_clock::now();
  ++ctx.requests;
  try {
    meta.model_hash = req.verb == Verb::kVmMc
                          ? spec_content_hash(req.spec_text)
                          : ctx.warm
                                ->loop(req.ts, req.t_end,
                                       req.verb == Verb::kFaultSweep ||
                                               req.verb == Verb::kFaultMc
                                           ? 1
                                           : req.seed)
                                .ir_hash;
    const std::size_t n = req.units();
    std::vector<std::string> keys(n), payloads(n);
    std::vector<std::size_t> misses;
    for (std::size_t u = 0; u < n; ++u) {
      keys[u] = unit_key(req, meta.model_hash, u).canonical();
      if (ctx.cache->get(keys[u], payloads[u])) {
        ++meta.cache_hits;
      } else {
        misses.push_back(u);
      }
    }
    meta.cache_units = n;
    if (!misses.empty()) {
      const Fields req_fields = req.to_fields();
      if (!dispatch_units(ctx, req_fields, misses, payloads,
                          meta.redispatches, err)) {
        throw std::runtime_error(err);
      }
      for (const std::size_t u : misses) {
        ctx.cache->put(keys[u], payloads[u]);
      }
    }
    ctx.redispatched_units += meta.redispatches;
    meta.served_from_cache = meta.cache_hits == n;
    meta.ok = true;
    meta_to_fields(meta, reply);
    reply.set("units", encode_blob_list(payloads));
  } catch (const std::exception& e) {
    meta.ok = false;
    meta.error = e.what();
    Fields fail;
    meta_to_fields(meta, fail);
    reply = std::move(fail);
  }
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  stamp_ledger(ctx, req, meta, wall_s);
  if (ctx.opts.verbose) {
    std::fprintf(stderr,
                 "svc: %s units=%zu hits=%zu redispatch=%zu %s%.1f ms\n",
                 to_string(req.verb), meta.cache_units, meta.cache_hits,
                 meta.redispatches, meta.ok ? "" : "ERROR ",
                 wall_s * 1e3);
  }
  write_frame(cfd, reply.serialize());
}

}  // namespace

// ---- daemon ----------------------------------------------------------------

int run_server(const ServeOptions& opts) {
  if (opts.socket_path.empty() || opts.workers == 0) {
    std::fprintf(stderr, "svc: serve needs --socket=PATH and --workers>=1\n");
    return 2;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts.socket_path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "svc: socket path too long: %s\n",
                 opts.socket_path.c_str());
    return 2;
  }
  std::memcpy(addr.sun_path, opts.socket_path.c_str(),
              opts.socket_path.size() + 1);

  ServerCtx ctx;
  ctx.opts = opts;
  ctx.listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ctx.listen_fd < 0) {
    std::perror("svc: socket");
    return 1;
  }
  ::unlink(opts.socket_path.c_str());
  if (::bind(ctx.listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(ctx.listen_fd, 16) != 0) {
    std::perror("svc: bind/listen");
    ::close(ctx.listen_fd);
    return 1;
  }

  g_stop = 0;
  struct sigaction sa{};
  sa.sa_handler = on_stop_signal;  // no SA_RESTART: poll returns EINTR
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  obs::MetricsRegistry metrics;
  WarmCache warm(&metrics);
  ResultCache cache(opts.cache_mb << 20, &metrics);
  obs::Ledger local_ledger(opts.ledger_path);
  ctx.warm = &warm;
  ctx.cache = &cache;
  ctx.metrics = &metrics;
  ctx.ledger = opts.ledger_path.empty() ? &obs::Ledger::global()
                                        : &local_ledger;
  ctx.workers.resize(opts.workers);
  for (std::size_t i = 0; i < opts.workers; ++i) {
    if (!spawn_worker(ctx, i)) {
      std::fprintf(stderr, "svc: cannot fork worker %zu\n", i);
      for (std::size_t k = 0; k < i; ++k) retire_worker(ctx, k);
      ::close(ctx.listen_fd);
      ::unlink(opts.socket_path.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "svc: serving on %s (%zu workers, %zu MB cache)\n",
               opts.socket_path.c_str(), opts.workers, opts.cache_mb);

  while (g_stop == 0) {
    pollfd pfd{ctx.listen_fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 200);
    if (pr <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int cfd = ::accept(ctx.listen_fd, nullptr, nullptr);
    if (cfd < 0) continue;
    ctx.client_fd = cfd;
    std::string in;
    while (g_stop == 0) {
      pollfd cpfd{cfd, POLLIN, 0};
      const int cpr = ::poll(&cpfd, 1, 200);
      if (cpr <= 0) continue;  // idle connection: keep watching the flag
      if (!read_frame(cfd, in)) break;  // client closed
      Fields f;
      if (!Fields::parse(in, f)) break;
      handle_request(ctx, cfd, f);
    }
    ::close(cfd);
    ctx.client_fd = -1;
  }

  // Drain: closing the pipes is the workers' exit signal.
  for (std::size_t i = 0; i < ctx.workers.size(); ++i) retire_worker(ctx, i);
  ::close(ctx.listen_fd);
  ::unlink(opts.socket_path.c_str());
  std::fprintf(stderr,
               "svc: drained (%llu requests, %llu cache hits / %llu misses, "
               "%llu evictions)\n",
               static_cast<unsigned long long>(ctx.requests),
               static_cast<unsigned long long>(cache.hits()),
               static_cast<unsigned long long>(cache.misses()),
               static_cast<unsigned long long>(cache.evictions()));
  return 0;
}

}  // namespace ecsim::svc
