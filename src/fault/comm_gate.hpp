// CommGate: the describable residue of an ArmedFaultPlan for ONE scheduled
// transfer. PR 6 note (DESIGN.md §3.6): the graph-of-delays translation used
// to hand EventFault an opaque closure capturing the whole armed plan, which
// made every fault-injected model unregenerable from IR. A CommGate is pure
// data — the plan seed, the nominal period, the transfer's schedule comm
// index and duration, and the resolved message-fault entries that apply to
// it — and comm_gate_decide() replays ArmedFaultPlan::comm_effect()
// bit-exactly from that data alone, so the IR can serialize it and the
// native code generator can re-emit it.
//
// Deliberately free of any dependency beyond mathlib: the native-backend
// runtime archive compiles this file without dragging in the AAA layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace ecsim::fault {

/// One message fault applicable to the gated transfer, with its target
/// already resolved. `fault` keeps the FaultPlan index because it is a
/// coordinate of the injection-decision hash — renumbering would change
/// which iterations fault.
struct CommGateEntry {
  enum class Kind { kLoss = 0, kDelay = 1, kDuplicate = 2 };
  std::size_t fault = 0;
  Kind kind = Kind::kLoss;
  double probability = 1.0;
  double delay = 0.0;           // kDelay: extra delivery latency
  std::size_t extra_copies = 0;  // kDuplicate
  double t_start = 0.0;
  double t_stop = std::numeric_limits<double>::infinity();
};

struct CommGate {
  std::uint64_t seed = 0;    // plan seed (decision coordinate)
  double period = 0.0;       // nominal iteration length (window checks)
  std::size_t comm_index = 0;  // schedule comm index (decision coordinate)
  double transfer_duration = 0.0;  // one copy's medium occupancy
  std::vector<CommGateEntry> entries;  // in FaultPlan order
};

/// What the gate does to activation number `k` (== iteration index).
struct CommGateAction {
  bool drop = false;
  double defer = 0.0;
};

/// Pure function of (gate, k): replays the armed plan's comm_effect for
/// this transfer — first triggered loss wins; triggered delays sum;
/// triggered duplicates defer by extra copies of the transfer duration.
CommGateAction comm_gate_decide(const CommGate& gate, std::size_t k);

}  // namespace ecsim::fault
