// EXP-A1 (Section 1: "best matching ... exploring the possible
// implementations"): quality of the adequation heuristic. (a) Makespan and
// speedup vs processor count on parallel workloads; (b) ablation of the
// communication-aware selection metric on communication-heavy workloads.
// Expected shape: speedup > 1 until comm-bound; comm-aware dominates
// comm-blind.
#include <cmath>
#include <vector>

#include "aaa/adequation.hpp"
#include "bench_common.hpp"
#include "mathlib/rng.hpp"

using namespace ecsim;

namespace {

/// Layered fork-join workload: `width` parallel pipelines of `depth` stages
/// between one sensor and one actuator.
aaa::AlgorithmGraph fork_join(std::size_t width, std::size_t depth,
                              double wcet, double data_size) {
  aaa::AlgorithmGraph alg("forkjoin", 1.0);
  const aaa::OpId src = alg.add_simple("src", aaa::OpKind::kSensor, wcet / 10.0);
  const aaa::OpId sink =
      alg.add_simple("sink", aaa::OpKind::kActuator, wcet / 10.0);
  for (std::size_t w = 0; w < width; ++w) {
    aaa::OpId prev = src;
    for (std::size_t d = 0; d < depth; ++d) {
      const aaa::OpId op = alg.add_simple(
          "f" + std::to_string(w) + "_" + std::to_string(d),
          aaa::OpKind::kCompute, wcet);
      alg.add_dependency(prev, op, data_size);
      prev = op;
    }
    alg.add_dependency(prev, sink, data_size);
  }
  return alg;
}

void experiment() {
  bench::banner("EXP-A1", "Section 1 (adequation)",
                "Adequation quality: speedup vs processor count and the "
                "comm-aware vs comm-blind ablation.");
  std::printf("(a) fork-join workload (8 pipelines x 3 stages, cheap comms)\n");
  std::printf("%8s %14s %10s %12s\n", "procs", "makespan [ms]", "speedup",
              "efficiency");
  const aaa::AlgorithmGraph wide = fork_join(8, 3, 1e-3, 1.0);
  double m1 = 0.0;
  for (const std::size_t n : {1u, 2u, 3u, 4u, 6u, 8u}) {
    const auto arch = aaa::ArchitectureGraph::bus_architecture(n, 1e6, 1e-6);
    const double ms = aaa::adequate(wide, arch).makespan();
    if (n == 1) m1 = ms;
    std::printf("%8zu %14.3f %10.2f %12.2f\n", n, 1e3 * ms, m1 / ms,
                m1 / ms / static_cast<double>(n));
  }

  std::printf("\n(b) same workload, expensive comms (comm-bound regime)\n");
  std::printf("%8s %14s %10s\n", "procs", "makespan [ms]", "speedup");
  for (const std::size_t n : {1u, 2u, 4u, 8u}) {
    const auto arch = aaa::ArchitectureGraph::bus_architecture(n, 2e3, 5e-4);
    const double ms = aaa::adequate(wide, arch).makespan();
    std::printf("%8zu %14.3f %10.2f\n", n, 1e3 * ms, m1 / ms);
  }

  std::printf("\n(c) ablation: comm-aware vs comm-blind selection metric\n");
  std::printf("%10s %18s %18s %10s\n", "seed", "aware makespan", "blind makespan",
              "blind/aware");
  math::Rng rng(1234);
  double worst = 1.0, geo = 0.0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    // Comm-heavy random fan-out graph.
    aaa::AlgorithmGraph alg("fan", 1.0);
    const aaa::OpId src = alg.add_simple("src", aaa::OpKind::kSensor, 1e-4);
    const int n_tasks = 10;
    for (int i = 0; i < n_tasks; ++i) {
      const aaa::OpId f = alg.add_simple("f" + std::to_string(i),
                                         aaa::OpKind::kCompute,
                                         rng.uniform(1e-4, 8e-4));
      alg.add_dependency(src, f, rng.uniform(10.0, 80.0));
    }
    const auto arch = aaa::ArchitectureGraph::bus_architecture(4, 1e5, 2e-4);
    const double aware =
        aaa::adequate(alg, arch, {.comm_aware = true}).makespan();
    const double blind =
        aaa::adequate(alg, arch, {.comm_aware = false}).makespan();
    std::printf("%10d %18.4f %18.4f %10.3f\n", t, 1e3 * aware, 1e3 * blind,
                blind / aware);
    worst = std::max(worst, blind / aware);
    geo += std::log(blind / aware);
  }
  std::printf("geometric mean blind/aware = %.3f, worst = %.3f\n\n",
              std::exp(geo / trials), worst);

  std::printf("(d) selection-rule ablation: schedule pressure vs greedy EFT\n");
  std::printf("%10s %18s %18s %14s\n", "seed", "pressure makespan",
              "greedy makespan", "greedy/press");
  math::Rng rng2(777);
  for (int t = 0; t < 6; ++t) {
    aaa::AlgorithmGraph alg("mix", 1.0);
    const aaa::OpId src = alg.add_simple("src", aaa::OpKind::kSensor, 1e-4);
    aaa::OpId prev = src;
    for (int i = 0; i < 5; ++i) {  // a critical chain
      const aaa::OpId op = alg.add_simple(
          "c" + std::to_string(i), aaa::OpKind::kCompute,
          rng2.uniform(5e-4, 2e-3));
      alg.add_dependency(prev, op, 1.0);
      prev = op;
    }
    for (int i = 0; i < 8; ++i) {  // independent filler
      alg.add_simple("s" + std::to_string(i), aaa::OpKind::kCompute,
                     rng2.uniform(1e-4, 4e-4));
    }
    aaa::AdequationOptions greedy;
    greedy.rule = aaa::SelectionRule::kEarliestFinish;
    const auto arch = aaa::ArchitectureGraph::bus_architecture(2, 1e6, 1e-6);
    const double mp = aaa::adequate(alg, arch).makespan();
    const double mg = aaa::adequate(alg, arch, greedy).makespan();
    std::printf("%10d %18.4f %18.4f %14.3f\n", t, 1e3 * mp, 1e3 * mg, mg / mp);
  }

  std::printf("\n(e) TDMA bus vs immediate arbitration (fork-join, 4 procs)\n");
  std::printf("%16s %16s\n", "slot [ms]", "makespan [ms]");
  const aaa::AlgorithmGraph fj = fork_join(6, 2, 1e-3, 8.0);
  {
    const auto arch = aaa::ArchitectureGraph::bus_architecture(4, 1e4, 1e-5);
    std::printf("%16s %16.3f\n", "immediate",
                1e3 * aaa::adequate(fj, arch).makespan());
  }
  for (const double slot_ms : {0.25, 0.5, 1.0, 2.0}) {
    auto arch = aaa::ArchitectureGraph::bus_architecture(4, 1e4, 1e-5);
    arch.set_tdma(0, slot_ms * 1e-3);
    std::printf("%16.2f %16.3f\n", slot_ms,
                1e3 * aaa::adequate(fj, arch).makespan());
  }
  std::printf("\nCoarser TDMA slots add waiting before every transfer and "
              "stretch the schedule; a fine grid can occasionally steer the "
              "greedy placement to a different (even slightly better) "
              "mapping, which is itself an argument for exploring "
              "arbitration policies during the adequation.\n\n");
}

void BM_Adequation(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  const aaa::AlgorithmGraph alg = fork_join(width, 3, 1e-3, 4.0);
  const auto arch = aaa::ArchitectureGraph::bus_architecture(4, 1e5, 1e-5);
  for (auto _ : state) {
    auto sched = aaa::adequate(alg, arch);
    benchmark::DoNotOptimize(sched);
  }
  state.SetComplexityN(static_cast<int64_t>(width * 3 + 2));
}
BENCHMARK(BM_Adequation)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  experiment();
  return bench::run_benchmarks(argc, argv);
}
