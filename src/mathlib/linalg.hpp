// Direct dense linear algebra: LU with partial pivoting, solve, inverse,
// determinant, and eigenvalue machinery (QR algorithm on the Hessenberg form)
// used for closed-loop stability checks.
#pragma once

#include <complex>
#include <vector>

#include "mathlib/matrix.hpp"

namespace ecsim::math {

/// LU decomposition with partial pivoting (PA = LU packed in-place).
/// Factorization tolerates singular input (zero pivots are kept); solve()
/// throws std::runtime_error when the matrix is singular, determinant()
/// correctly returns 0.
class Lu {
 public:
  explicit Lu(Matrix a);

  bool singular() const { return singular_; }

  /// Solve A x = b for one right-hand side.
  std::vector<double> solve(const std::vector<double>& b) const;
  /// Solve A X = B column-by-column.
  Matrix solve(const Matrix& b) const;

  double determinant() const;
  std::size_t dim() const { return lu_.rows(); }

 private:
  Matrix lu_;                 // packed L (unit lower) and U
  std::vector<std::size_t> perm_;  // row permutation
  int sign_ = 1;              // permutation parity for determinant
  bool singular_ = false;
};

/// Solve A x = b. Convenience wrapper around Lu.
std::vector<double> solve(const Matrix& a, const std::vector<double>& b);
/// Solve A X = B.
Matrix solve(const Matrix& a, const Matrix& b);
/// Matrix inverse via LU. Prefer solve() when possible.
Matrix inverse(const Matrix& a);
double determinant(const Matrix& a);

/// All eigenvalues of a real square matrix via the shifted QR algorithm
/// applied to the Hessenberg form. Suitable for the small matrices used in
/// control design (n <= ~30).
std::vector<std::complex<double>> eigenvalues(const Matrix& a);

/// Largest |lambda| over eigenvalues: the spectral radius. A discrete-time
/// system is asymptotically stable iff this is < 1.
double spectral_radius(const Matrix& a);

/// Max real part over eigenvalues: continuous-time stability iff < 0.
double spectral_abscissa(const Matrix& a);

}  // namespace ecsim::math
