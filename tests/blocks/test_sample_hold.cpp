#include "blocks/sample_hold.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "blocks/sources.hpp"
#include "sim/simulator.hpp"

namespace ecsim::blocks {
namespace {

using sim::Model;
using sim::SimOptions;
using sim::Simulator;

TEST(SampleHold, Validation) {
  EXPECT_THROW(SampleHold("sh", 0), std::invalid_argument);
  EXPECT_THROW(SampleHold("sh", 2, {1.0}), std::invalid_argument);
}

TEST(SampleHold, InitialValueHeldBeforeFirstEvent) {
  Model m;
  auto& src = m.add<Constant>("src", 7.0);
  auto& sh = m.add<SampleHold>("sh", 1, std::vector<double>{-3.0});
  m.connect(src, 0, sh, 0);
  // No event source wired: output must stay at the initial value.
  Simulator s(m, SimOptions{.end_time = 1.0});
  s.run();
  EXPECT_DOUBLE_EQ(s.output_value(sh, 0), -3.0);
}

TEST(SampleHold, SamplesAtEventInstants) {
  Model m;
  auto& src = m.add<Sine>("src", 1.0, 1.0);
  auto& clk = m.add<Clock>("clk", 0.2);
  auto& sh = m.add<SampleHold>("sh", 1);
  m.connect(src, 0, sh, 0);
  m.connect_event(clk, 0, sh, sh.event_in());
  Simulator s(m, SimOptions{.end_time = 0.5});
  s.run();
  // Last sample at t = 0.4.
  EXPECT_NEAR(s.output_value(sh, 0),
              std::sin(2.0 * std::numbers::pi * 0.4), 1e-9);
}

TEST(SampleHold, VectorLanesCopiedTogether) {
  Model m;
  auto& src = m.add<Constant>("src", std::vector<double>{1.0, 2.0, 3.0});
  auto& clk = m.add<Clock>("clk", 1.0);
  auto& sh = m.add<SampleHold>("sh", 3);
  m.connect(src, 0, sh, 0);
  m.connect_event(clk, 0, sh, sh.event_in());
  Simulator s(m, SimOptions{.end_time = 0.1});
  s.run();
  EXPECT_DOUBLE_EQ(s.output_value(sh, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(s.output_value(sh, 0, 2), 3.0);
}

TEST(SampleHold, DoneEventChainsImmediately) {
  Model m;
  auto& clk = m.add<Clock>("clk", 1.0);
  auto& sh1 = m.add<SampleHold>("sh1", 1);
  auto& sh2 = m.add<SampleHold>("sh2", 1);
  auto& src = m.add<Sine>("src", 1.0, 0.1);
  m.connect(src, 0, sh1, 0);
  m.connect(sh1, 0, sh2, 0);
  m.connect_event(clk, 0, sh1, sh1.event_in());
  m.connect_event(sh1, sh1.done_event_out(), sh2, sh2.event_in());
  Simulator s(m, SimOptions{.end_time = 0.0});
  s.run();
  // Both fired at t = 0 in causal order.
  EXPECT_EQ(s.trace().activation_times_by_name("sh1").size(), 1u);
  EXPECT_EQ(s.trace().activation_times_by_name("sh2").size(), 1u);
}

}  // namespace
}  // namespace ecsim::blocks
