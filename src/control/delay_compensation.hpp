// Delay-aware controller redesign — the "calibration" step the paper's
// methodology moves from hardware testing into early co-simulation (EXP-M1).
#pragma once

#include "control/lqr.hpp"
#include "control/state_space.hpp"

namespace ecsim::control {

/// Delay-aware LQR: design state feedback for a plant whose control input is
/// applied `tau` after the sampling instant (0 <= tau <= ts). Internally
/// designs on the delay-augmented discretization z = [x; u_prev] so the
/// controller explicitly accounts for the actuation latency.
/// Returns the gain on the augmented state: u = -K [x; u_prev] (+ Nbar r).
struct DelayLqrResult {
  Matrix k;                // 1 x (n+m) gain on [x; u_prev]
  StateSpace augmented;    // the augmented design model
  double nbar = 0.0;       // reference feedforward for SISO tracking
};

DelayLqrResult dlqr_with_input_delay(const StateSpace& cont_plant, double ts,
                                     double tau, const Matrix& q_aug,
                                     const Matrix& r);

/// Convenience: build Q for the augmented system from a Q on the physical
/// state (zero weight on the stored input).
Matrix augment_q(const Matrix& q, std::size_t n_inputs);

/// Realize static state feedback u = -K x + nbar * r as a (stateless)
/// discrete system with input [x; r].
StateSpace state_feedback_controller(const Matrix& k, double nbar, double ts);

/// Realize delay-aware feedback u_k = -Kx x_k - Ku u_{k-1} + nbar * r as a
/// discrete system with one state (the previous control) and input [x; r].
/// `k_aug` is the 1 x (n+1) gain on [x; u_prev] from dlqr_with_input_delay.
StateSpace delayed_feedback_controller(const Matrix& k_aug, double nbar,
                                       double ts);

}  // namespace ecsim::control
