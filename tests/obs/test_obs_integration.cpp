// Integration of the obs layer with the simulation engine: the tracer's
// sim-domain instants and the metrics counters must agree exactly with the
// simulator's own event accounting, and attaching observability must not
// change the simulated behaviour (trace-identity oracle).
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "blocks/discrete.hpp"
#include "blocks/event_blocks.hpp"
#include "blocks/sources.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/compiled_model.hpp"
#include "sim/simulator.hpp"

namespace ecsim {
namespace {

sim::Model small_chain() {
  sim::Model m;
  auto& clk = m.add<blocks::Clock>("clk", 0.01);
  auto& d = m.add<blocks::EventDelay>("d", 0.001);
  auto& n = m.add<blocks::EventCounter>("n");
  m.connect_event(clk, 0, d, d.event_in());
  m.connect_event(d, d.event_out(), n, 0);
  return m;
}

TEST(ObsIntegration, InstantsAndCountersMatchDispatchCount) {
  sim::Model m = small_chain();
  obs::Tracer tracer(1u << 14);
  tracer.set_enabled(true);
  obs::MetricsRegistry metrics;
  sim::SimOptions opts{.end_time = 0.1};
  opts.tracer = &tracer;
  opts.metrics = &metrics;
  sim::Simulator s(sim::CompiledModel(m), opts);
  s.run();
  ASSERT_GT(s.events_dispatched(), 0u);
  ASSERT_EQ(tracer.dropped(), 0u);  // ring sized for the run

  const auto snap = tracer.snapshot();
  std::size_t instants = 0, spans = 0;
  const std::uint32_t trk_events = tracer.track("sim/events", obs::Domain::kSim);
  for (const obs::TraceEvent& e : snap) {
    if (e.phase == obs::Phase::kInstant && e.track == trk_events) ++instants;
    if (e.phase == obs::Phase::kSpan) ++spans;
  }
  // One sim-time instant per dispatched event.
  EXPECT_EQ(instants, s.events_dispatched());
  // Wall spans: sim.run plus one cone refresh per event (integration spans
  // only appear for stateful models).
  EXPECT_GE(spans, 1u + s.events_dispatched());
  // The run span exists by name.
  const std::uint32_t n_run = tracer.intern("sim.run");
  EXPECT_TRUE(std::any_of(snap.begin(), snap.end(), [&](const auto& e) {
    return e.phase == obs::Phase::kSpan && e.name == n_run;
  }));

  EXPECT_EQ(metrics.counter("sim.events_dispatched").value(),
            s.events_dispatched());
  EXPECT_EQ(metrics.histogram("sim.cone_refresh_size").count(),
            s.events_dispatched());
  EXPECT_GT(metrics.counter("sim.eval_calls").value(), 0u);
  EXPECT_GT(metrics.gauge("sim.queue_high_water").value(), 0.0);
  EXPECT_GT(metrics.histogram("sim.eval_calls_per_block").count(), 0u);
}

TEST(ObsIntegration, ObservedRunIsBehaviorallyIdentical) {
  sim::Model m = small_chain();
  sim::SimOptions plain{.end_time = 0.1};
  sim::Simulator bare(sim::CompiledModel(m), plain);
  const sim::Trace baseline = bare.run();

  sim::Model m2 = small_chain();
  obs::Tracer tracer;
  tracer.set_enabled(true);
  obs::MetricsRegistry metrics;
  sim::SimOptions observed = plain;
  observed.tracer = &tracer;
  observed.metrics = &metrics;
  observed.reserve_events = 256;
  observed.reserve_signals = 16;
  sim::Simulator traced(sim::CompiledModel(m2), observed);
  EXPECT_TRUE(traced.run() == baseline);
}

TEST(ObsIntegration, AttachedButDisabledTracerRecordsNothing) {
  sim::Model m = small_chain();
  obs::Tracer tracer;  // enabled == false
  sim::SimOptions opts{.end_time = 0.1};
  opts.tracer = &tracer;
  sim::Simulator s(sim::CompiledModel(m), opts);
  s.run();
  EXPECT_GT(s.events_dispatched(), 0u);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(ObsIntegration, ModelCtorTracesCompileSpan) {
  sim::Model m = small_chain();
  obs::Tracer tracer;
  tracer.set_enabled(true);
  sim::SimOptions opts{.end_time = 0.01};
  opts.tracer = &tracer;
  sim::Simulator s(m, opts);  // Model overload runs the traced compile
  const std::uint32_t n_compile = tracer.intern("sim.compile");
  const auto snap = tracer.snapshot();
  EXPECT_TRUE(std::any_of(snap.begin(), snap.end(), [&](const auto& e) {
    return e.phase == obs::Phase::kSpan && e.name == n_compile;
  }));
}

}  // namespace
}  // namespace ecsim
