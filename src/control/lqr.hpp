// Discrete-time LQR synthesis via the algebraic Riccati equation.
#pragma once

#include "control/state_space.hpp"

namespace ecsim::control {

struct LqrResult {
  Matrix k;  // optimal state-feedback gain: u = -K x
  Matrix p;  // Riccati solution (cost-to-go: J* = x0' P x0)
};

/// Infinite-horizon discrete LQR minimizing sum x'Qx + u'Ru.
LqrResult dlqr(const Matrix& a, const Matrix& b, const Matrix& q,
               const Matrix& r);

/// Convenience overload on a discrete StateSpace.
LqrResult dlqr(const StateSpace& sys, const Matrix& q, const Matrix& r);

/// Closed-loop matrix A - B K.
Matrix closed_loop(const Matrix& a, const Matrix& b, const Matrix& k);

/// Feedforward gain Nbar so that y tracks a constant reference r under
/// u = -K x + Nbar r (SISO output). Throws if the closed-loop DC gain is
/// singular.
double reference_gain(const StateSpace& sys, const Matrix& k);

}  // namespace ecsim::control
