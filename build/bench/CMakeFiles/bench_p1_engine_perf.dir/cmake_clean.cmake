file(REMOVE_RECURSE
  "CMakeFiles/bench_p1_engine_perf.dir/bench_p1_engine_perf.cpp.o"
  "CMakeFiles/bench_p1_engine_perf.dir/bench_p1_engine_perf.cpp.o.d"
  "bench_p1_engine_perf"
  "bench_p1_engine_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p1_engine_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
