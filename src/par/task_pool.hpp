// Work-stealing thread pool for the design-space exploration layer
// (DESIGN.md §3.3). Tasks are submitted as whole batches — "run body(i) for
// every i in [0, n)" — which is exactly the shape of a parameter sweep, a
// Monte Carlo trial set, or one frontier of adequation candidates.
//
// Scheduling: a sharded task queue. Each worker owns a deque seeded
// round-robin with the batch's task indices; it pops from the front of its
// own shard and, when empty, steals from the back of the busiest sibling.
// Shards are mutex-protected — tasks here are coarse (an entire simulation
// or VM run, microseconds to milliseconds), so queue overhead is noise and
// the simple locking discipline keeps the pool trivially TSan-clean.
//
// Determinism contract: the pool schedules *independent* tasks. It promises
// nothing about execution order; callers that need serial-identical results
// write each task's output into a pre-sized slot indexed by task id and
// reduce in submission order afterwards (par::BatchRunner packages that
// pattern, including RNG stream splitting and observability shard merging).
//
// Exceptions: the batch always drains; the pending exception of the
// *lowest-indexed* failing task is rethrown to the submitter afterwards, so
// even error reporting is independent of thread interleaving.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ecsim::par {

class TaskPool {
 public:
  /// `threads == 0` resolves to default_threads(). The workers are created
  /// once and persist for the pool's lifetime (batch submission only pays a
  /// wake-up, not thread creation).
  explicit TaskPool(std::size_t threads = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Number of worker threads actually created (after the `threads == 0`
  /// and ECSIM_THREADS resolution) — the exclusive bound on the worker
  /// index passed to for_each bodies.
  std::size_t num_workers() const { return workers_.size(); }

  /// Execute body(task, worker) for every task in [0, n); worker is the
  /// index (< num_workers()) of the executing worker — callers use it for
  /// per-worker scratch. Blocks until the batch drains, then rethrows the
  /// lowest-indexed task exception if any task threw.
  ///
  /// Reentrancy: calling for_each from inside a task body runs the nested
  /// batch inline on the calling worker (worker index 0 for the nested
  /// tasks) instead of deadlocking on the pool's own capacity.
  ///
  /// One batch at a time per pool: for_each is not itself thread-safe —
  /// concurrent submitters must use separate pools.
  void for_each(std::size_t n,
                const std::function<void(std::size_t, std::size_t)>& body);

  /// std::thread::hardware_concurrency(), overridable by the ECSIM_THREADS
  /// environment variable (useful for pinning CI and benchmarks); at least 1.
  static std::size_t default_threads();

 private:
  struct Shard {
    std::mutex mu;
    std::deque<std::size_t> tasks;
  };

  void worker_loop(std::size_t worker);
  bool pop_task(std::size_t worker, std::size_t& task);
  void execute(std::size_t task, std::size_t worker);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;

  // Batch state, guarded by batch_mu_ (generation / body handoff) and an
  // atomic-free remaining counter folded into the same mutex for simplicity:
  // batches are coarse, contention on batch_mu_ is negligible.
  std::mutex batch_mu_;
  std::condition_variable work_cv_;   // workers wait here between batches
  std::condition_variable done_cv_;   // submitter waits here
  const std::function<void(std::size_t, std::size_t)>* body_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t remaining_ = 0;
  bool stop_ = false;
  /// Gate between shard filling and batch activation: a worker lingering
  /// from the previous batch must not pop freshly-filled tasks before
  /// body_/remaining_ are armed under batch_mu_.
  std::atomic<bool> armed_{false};

  std::mutex error_mu_;
  std::exception_ptr first_error_;
  std::size_t first_error_task_ = 0;
};

}  // namespace ecsim::par
