#include "control/state_space.hpp"

#include <cmath>
#include <stdexcept>

#include "mathlib/linalg.hpp"

namespace ecsim::control {

void StateSpace::validate() const {
  const std::size_t n = a.rows();
  if (!a.is_square()) throw std::invalid_argument("StateSpace: A not square");
  if (b.rows() != n) throw std::invalid_argument("StateSpace: B row mismatch");
  if (c.cols() != n) throw std::invalid_argument("StateSpace: C col mismatch");
  if (d.rows() != c.rows() || d.cols() != b.cols()) {
    throw std::invalid_argument("StateSpace: D shape mismatch");
  }
  if (discrete && ts <= 0.0) {
    throw std::invalid_argument("StateSpace: discrete system needs ts > 0");
  }
}

bool StateSpace::is_stable() const {
  if (discrete) return math::spectral_radius(a) < 1.0;
  return math::spectral_abscissa(a) < 0.0;
}

StateSpace make_state_system(Matrix a, Matrix b) {
  const std::size_t n = a.rows();
  const std::size_t m = b.cols();
  StateSpace sys{std::move(a), std::move(b), Matrix::identity(n),
                 Matrix::zeros(n, m), false, 0.0};
  sys.validate();
  return sys;
}

StateSpace tf2ss(const std::vector<double>& num,
                 const std::vector<double>& den) {
  if (den.empty() || den.front() == 0.0) {
    throw std::invalid_argument("tf2ss: bad denominator");
  }
  if (num.size() > den.size()) throw std::invalid_argument("tf2ss: improper");
  const std::size_t n = den.size() - 1;
  std::vector<double> a_coef(den.begin() + 1, den.end());
  for (double& v : a_coef) v /= den.front();
  std::vector<double> b_coef(den.size(), 0.0);
  std::copy(num.begin(), num.end(),
            b_coef.begin() + static_cast<long>(den.size() - num.size()));
  for (double& v : b_coef) v /= den.front();

  StateSpace sys;
  sys.a = Matrix(n, n);
  sys.b = Matrix(n, 1);
  sys.c = Matrix(1, n);
  sys.d = Matrix{{b_coef[0]}};
  for (std::size_t i = 0; i + 1 < n; ++i) sys.a(i, i + 1) = 1.0;
  for (std::size_t i = 0; i < n; ++i) sys.a(n - 1, i) = -a_coef[n - 1 - i];
  if (n > 0) sys.b(n - 1, 0) = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    sys.c(0, i) = b_coef[n - i] - a_coef[n - 1 - i] * b_coef[0];
  }
  sys.validate();
  return sys;
}

Matrix controllability_matrix(const StateSpace& sys) {
  const std::size_t n = sys.order();
  Matrix result = sys.b;
  Matrix term = sys.b;
  for (std::size_t i = 1; i < n; ++i) {
    term = sys.a * term;
    result = math::hcat(result, term);
  }
  return result;
}

std::size_t rank(const Matrix& m, double tol) {
  Matrix w = m;
  const std::size_t rows = w.rows(), cols = w.cols();
  std::size_t r = 0;
  for (std::size_t c = 0; c < cols && r < rows; ++c) {
    std::size_t piv = r;
    double best = std::abs(w(r, c));
    for (std::size_t i = r + 1; i < rows; ++i) {
      if (std::abs(w(i, c)) > best) {
        best = std::abs(w(i, c));
        piv = i;
      }
    }
    if (best <= tol) continue;
    if (piv != r) {
      for (std::size_t j = 0; j < cols; ++j) std::swap(w(r, j), w(piv, j));
    }
    for (std::size_t i = r + 1; i < rows; ++i) {
      const double f = w(i, c) / w(r, c);
      for (std::size_t j = c; j < cols; ++j) w(i, j) -= f * w(r, j);
    }
    ++r;
  }
  return r;
}

bool is_controllable(const StateSpace& sys, double tol) {
  return rank(controllability_matrix(sys), tol) == sys.order();
}

bool is_observable(const StateSpace& sys, double tol) {
  StateSpace dual = sys;
  dual.a = sys.a.transpose();
  dual.b = sys.c.transpose();
  dual.c = sys.b.transpose();
  dual.d = sys.d.transpose();
  return rank(controllability_matrix(dual), tol) == sys.order();
}

}  // namespace ecsim::control
