// Scicos -> SynDEx direction of the ECLIPSE translator: extract the discrete
// control part of a simulation model (samplers, computations, actuators and
// the data flow between them) into an AAA algorithm graph, attaching the
// designer-supplied timing characterization (WCETs, data sizes, I/O
// bindings) that Scicos blocks do not carry.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "aaa/algorithm_graph.hpp"
#include "sim/model.hpp"

namespace ecsim::translate {

/// Designer-supplied timing/placement characterization, keyed by block name.
struct TimingAnnotations {
  /// Block -> processor type -> WCET. A block absent here gets kDefaultWcet
  /// on type "cpu".
  std::map<std::string, std::map<std::string, aaa::Time>> wcet;
  /// Block -> size of the data it produces (default 1.0).
  std::map<std::string, double> out_size;
  /// Block -> processor-name binding (sensors/actuators are wired to I/O).
  std::map<std::string, std::string> binding;

  static constexpr aaa::Time kDefaultWcet = 1e-4;
};

/// Extract an algorithm graph from `model`. `samplers`, `computes` and
/// `actuators` name the blocks that become kSensor / kCompute / kActuator
/// operations. Data dependencies are discovered by following data wires,
/// transitively through blocks that are not part of the extracted set
/// (e.g. a Sum junction between sampler and controller).
aaa::AlgorithmGraph extract_algorithm(const sim::Model& model,
                                      const std::vector<std::string>& samplers,
                                      const std::vector<std::string>& computes,
                                      const std::vector<std::string>& actuators,
                                      const TimingAnnotations& annotations,
                                      aaa::Time period);

}  // namespace ecsim::translate
