#include "exec/conformance.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace ecsim::exec {

ConformanceReport check_wcet_conformance(const AlgorithmGraph& alg,
                                         const ArchitectureGraph& arch,
                                         const Schedule& sched,
                                         const VmResult& vm, Time period,
                                         double tol) {
  (void)arch;
  ConformanceReport rep;
  std::ostringstream bad;
  if (vm.deadlock) {
    rep.ok = false;
    bad << "deadlock: " << vm.deadlock_info << "; ";
  }
  for (const OpInstance& oi : vm.ops) {
    const aaa::ScheduledOp& so = sched.of_op(oi.op);
    const Time expect_start =
        so.start + static_cast<Time>(oi.iteration) * period;
    const Time expect_end = so.end + static_cast<Time>(oi.iteration) * period;
    const double err = std::max(std::abs(oi.start - expect_start),
                                std::abs(oi.end - expect_end));
    rep.max_time_error = std::max(rep.max_time_error, err);
    ++rep.checked_instances;
    if (err > tol) {
      rep.ok = false;
      bad << "op '" << alg.op(oi.op).name << "' iter " << oi.iteration
          << " at [" << oi.start << "," << oi.end << ") expected ["
          << expect_start << "," << expect_end << "); ";
    }
  }
  rep.violations = bad.str();
  return rep;
}

ConformanceReport check_order_preservation(const AlgorithmGraph& alg,
                                           const ArchitectureGraph& arch,
                                           const Schedule& sched,
                                           const VmResult& vm, double tol) {
  ConformanceReport rep;
  std::ostringstream bad;
  if (vm.deadlock) {
    rep.ok = false;
    bad << "deadlock: " << vm.deadlock_info << "; ";
  }
  // Schedule position of each op on its processor.
  std::map<aaa::OpId, std::pair<ProcId, std::size_t>> position;
  for (ProcId p = 0; p < sched.num_procs(); ++p) {
    const auto& order = sched.ops_on(p);
    for (std::size_t i = 0; i < order.size(); ++i) {
      position[sched.ops()[order[i]].op] = {p, i};
    }
  }
  // Group instances per processor, sort by start, verify they appear in
  // (iteration, schedule-position) lexicographic order and do not overlap.
  std::vector<std::vector<OpInstance>> per_proc(arch.num_processors());
  for (const OpInstance& oi : vm.ops) per_proc.at(oi.proc).push_back(oi);
  for (ProcId p = 0; p < per_proc.size(); ++p) {
    auto& v = per_proc[p];
    std::sort(v.begin(), v.end(), [](const OpInstance& a, const OpInstance& b) {
      if (a.start != b.start) return a.start < b.start;
      return a.iteration < b.iteration;
    });
    for (std::size_t i = 0; i < v.size(); ++i) {
      ++rep.checked_instances;
      const auto [proc, pos] = position.at(v[i].op);
      if (proc != p) {
        rep.ok = false;
        bad << "op '" << alg.op(v[i].op).name << "' ran on wrong processor; ";
      }
      if (i == 0) continue;
      const auto [prev_proc, prev_pos] = position.at(v[i - 1].op);
      const bool order_ok =
          v[i - 1].iteration < v[i].iteration ||
          (v[i - 1].iteration == v[i].iteration && prev_pos < pos);
      if (!order_ok) {
        rep.ok = false;
        bad << "order violation on processor " << arch.processor(p).name
            << ": '" << alg.op(v[i - 1].op).name << "' iter "
            << v[i - 1].iteration << " vs '" << alg.op(v[i].op).name
            << "' iter " << v[i].iteration << "; ";
      }
      if (v[i].start + tol < v[i - 1].end) {
        rep.ok = false;
        bad << "overlap on processor " << arch.processor(p).name << "; ";
      }
    }
  }
  rep.violations = bad.str();
  return rep;
}

DeadlineReport check_deadlines(const AlgorithmGraph& alg, const VmResult& vm,
                               Time period) {
  DeadlineReport rep;
  std::ostringstream details;
  int reported = 0;
  for (const OpInstance& oi : vm.ops) {
    ++rep.checked_instances;
    const Time deadline = static_cast<Time>(oi.iteration + 1) * period;
    if (oi.end > deadline + 1e-12) {
      ++rep.misses;
      rep.worst_overrun = std::max(rep.worst_overrun, oi.end - deadline);
      if (reported < 5) {
        details << alg.op(oi.op).name << " iter " << oi.iteration
                << " finished " << oi.end - deadline << " late; ";
        ++reported;
      }
    }
  }
  rep.details = details.str();
  return rep;
}

}  // namespace ecsim::exec
