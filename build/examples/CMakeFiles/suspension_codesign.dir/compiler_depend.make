# Empty compiler generated dependencies file for suspension_codesign.
# This may be replaced when dependencies are built.
