#include "translate/cosim.hpp"

#include <gtest/gtest.h>

#include "control/c2d.hpp"
#include "control/delay_compensation.hpp"
#include "control/kalman.hpp"
#include "control/lqr.hpp"
#include "plants/dc_servo.hpp"

namespace ecsim::translate {
namespace {

// State-feedback LQR loop on the DC servo (Cervin benchmark plant).
LoopSpec servo_spec(double ts = 0.01) {
  const control::StateSpace servo_ct = [] {
    control::StateSpace s = plants::dc_servo();
    s.c = math::Matrix::identity(2);  // expose full state to the sampler
    s.d = math::Matrix::zeros(2, 1);
    return s;
  }();
  const control::StateSpace servo_dt = control::c2d(servo_ct, ts);
  const control::LqrResult lqr = control::dlqr(
      servo_dt, math::Matrix::diag({100.0, 0.01}), math::Matrix{{1e-3}});
  control::StateSpace tracking = servo_dt;
  tracking.c = math::Matrix{{1.0, 0.0}};
  tracking.d = math::Matrix{{0.0}};
  const double nbar = control::reference_gain(tracking, lqr.k);

  LoopSpec spec;
  spec.plant = servo_ct;
  spec.controller = control::state_feedback_controller(lqr.k, nbar, ts);
  spec.ts = ts;
  spec.t_end = 1.0;
  spec.ref = 1.0;
  spec.input = translate::ControllerInput::kStateRef;
  spec.output_index = 0;
  return spec;
}

TEST(CosimIdeal, ServoTracksStep) {
  const CosimOutcome out = run_ideal_loop(servo_spec());
  EXPECT_LT(out.step.steady_state_error, 0.02);
  EXPECT_GE(out.step.settling_time, 0.0);
  EXPECT_LT(out.step.settling_time, 0.9);
  // Stroboscopic model: zero latencies by construction (eq. 1-2 with
  // I(k) = O(k) = kTs).
  EXPECT_NEAR(out.sense_latency.summary.max, 0.0, 1e-12);
  EXPECT_NEAR(out.act_latency.summary.max, 0.0, 1e-12);
  EXPECT_GT(out.y.size(), 100u);
}

TEST(CosimLatency, ConstantLatencyShowsUpInSeries) {
  const CosimOutcome out = run_latency_loop(servo_spec(), 0.001, 0.006);
  EXPECT_NEAR(out.sense_latency.summary.mean, 0.001, 1e-12);
  EXPECT_NEAR(out.act_latency.summary.mean, 0.006, 1e-12);
  EXPECT_NEAR(out.act_latency.jitter, 0.0, 1e-12);
}

TEST(CosimLatency, LatencyDegradesPerformance) {
  const CosimOutcome ideal = run_ideal_loop(servo_spec());
  const CosimOutcome delayed = run_latency_loop(servo_spec(), 0.0, 0.009);
  EXPECT_GT(delayed.iae, ideal.iae);
}

TEST(CosimLatency, JitterAddsSpread) {
  const CosimOutcome out = run_latency_loop(servo_spec(), 0.0, 0.005, 0.004);
  EXPECT_GT(out.act_latency.jitter, 0.001);
  EXPECT_THROW(run_latency_loop(servo_spec(), 0.005, 0.001),
               std::invalid_argument);
}

TEST(CosimDistributed, RunsAndReportsLatencies) {
  LoopSpec spec = servo_spec();
  DistributedSpec dist;
  dist.arch = aaa::ArchitectureGraph::bus_architecture(2, 1e5, 1e-4);
  dist.bind_sense = "P0";
  dist.bind_ctrl = "P1";
  dist.bind_act = "P0";
  const CosimOutcome out = run_distributed_loop(spec, dist);
  EXPECT_GT(out.makespan, 0.0);
  EXPECT_LT(out.makespan, spec.ts);
  EXPECT_FALSE(out.schedule_text.empty());
  // Sampling happens strictly after the period start, actuation after that.
  EXPECT_GT(out.sense_latency.summary.mean, 0.0);
  EXPECT_GT(out.act_latency.summary.mean, out.sense_latency.summary.mean);
  EXPECT_LT(out.step.steady_state_error, 0.05);
}

TEST(CosimDistributed, IdealVsImplementationGap) {
  LoopSpec spec = servo_spec();
  DistributedSpec dist;
  dist.arch = aaa::ArchitectureGraph::bus_architecture(2, 2e4, 5e-4);
  dist.wcet_ctrl = 4e-3;
  dist.bind_sense = "P0";
  dist.bind_ctrl = "P1";
  dist.bind_act = "P0";
  const CosimOutcome ideal = run_ideal_loop(spec);
  const CosimOutcome impl = run_distributed_loop(spec, dist);
  // The implementation-aware co-simulation must reveal degradation.
  EXPECT_GT(impl.iae, ideal.iae * 1.02);
}

TEST(CosimDistributed, MakeLoopAlgorithmShape) {
  LoopSpec spec = servo_spec();
  DistributedSpec dist;
  dist.ctrl_branch_wcets = {1e-4, 2e-3};
  const aaa::AlgorithmGraph alg = make_loop_algorithm(spec, dist);
  EXPECT_EQ(alg.num_operations(), 3u);
  EXPECT_TRUE(alg.op(alg.find("ctrl")).is_conditional());
  EXPECT_DOUBLE_EQ(alg.period(), spec.ts);
  EXPECT_EQ(alg.dependencies().size(), 2u);
}

TEST(Cosim, InputValidation) {
  LoopSpec spec = servo_spec();
  spec.plant.discrete = true;
  spec.plant.ts = 0.01;
  EXPECT_THROW(run_ideal_loop(spec), std::invalid_argument);

  LoopSpec spec2 = servo_spec();
  spec2.output_index = 7;
  EXPECT_THROW(run_ideal_loop(spec2), std::invalid_argument);

  LoopSpec spec3 = servo_spec();
  spec3.input = translate::ControllerInput::kError;  // controller expects [x; r], mismatch
  EXPECT_THROW(run_ideal_loop(spec3), std::invalid_argument);
}

TEST(CosimOutputFeedback, ObserverCompensatorClosesTheLoop) {
  // kOutputRef mode: controller input [y; r] — observer-based compensator.
  const double ts = 0.01;
  control::StateSpace servo = plants::dc_servo();  // C = [1 0]
  const control::StateSpace servo_d = control::c2d(servo, ts);
  const control::LqrResult lqr = control::dlqr(
      servo_d, math::Matrix::diag({100.0, 0.01}), math::Matrix{{1e-3}});
  const control::KalmanResult kal = control::dkalman(
      servo_d.a, servo_d.c, math::Matrix::diag({1e-4, 1.0}),
      math::Matrix{{1e-6}});
  const double nbar = control::reference_gain(servo_d, lqr.k);

  LoopSpec spec;
  spec.plant = servo;
  spec.controller =
      control::observer_tracking_compensator(servo_d, lqr.k, kal.l, nbar);
  spec.ts = ts;
  spec.t_end = 1.5;
  spec.ref = 1.0;
  spec.input = ControllerInput::kOutputRef;
  const CosimOutcome out = run_ideal_loop(spec);
  EXPECT_LT(out.step.steady_state_error, 0.02);
  EXPECT_GE(out.step.settling_time, 0.0);

  // Wrong input width rejected.
  LoopSpec bad = spec;
  bad.controller = servo_spec().controller;  // expects [x; r] (width 3)
  EXPECT_THROW(run_ideal_loop(bad), std::invalid_argument);
}

TEST(CosimM1, DelayAwareRedesignRecoversPerformance) {
  // The methodology loop of EXP-M1 in miniature: naive design degraded by
  // actuation latency; latency-aware LQR recovers most of it.
  LoopSpec naive = servo_spec();
  const double tau = 0.008;
  const CosimOutcome degraded = run_latency_loop(naive, 0.0, tau);

  // Redesign on the delay-augmented model; controller input [x; u_prev
  // internal; r] realized by delayed_feedback_controller.
  const control::StateSpace servo_ct = naive.plant;
  const math::Matrix q =
      control::augment_q(math::Matrix::diag({100.0, 0.01}), 1);
  const control::DelayLqrResult redesign = control::dlqr_with_input_delay(
      [&] {
        control::StateSpace s = servo_ct;
        s.c = math::Matrix{{1.0, 0.0}};
        s.d = math::Matrix{{0.0}};
        return s;
      }(),
      naive.ts, tau, q, math::Matrix{{1e-3}});
  LoopSpec aware = naive;
  aware.controller = control::delayed_feedback_controller(
      redesign.k, redesign.nbar, naive.ts);
  const CosimOutcome recovered = run_latency_loop(aware, 0.0, tau);
  EXPECT_LT(recovered.iae, degraded.iae);
}

}  // namespace
}  // namespace ecsim::translate
