file(REMOVE_RECURSE
  "libecsim_plants.a"
)
