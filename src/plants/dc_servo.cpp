#include "plants/dc_servo.hpp"

#include <stdexcept>

namespace ecsim::plants {

control::StateSpace dc_servo(const DcServoParams& p) {
  if (p.tau <= 0.0) throw std::invalid_argument("dc_servo: tau must be > 0");
  control::StateSpace sys;
  // G(s) = k/(s(tau s + 1)):  x1' = x2, x2' = (-x2 + k u)/tau, y = x1.
  sys.a = control::Matrix{{0.0, 1.0}, {0.0, -1.0 / p.tau}};
  sys.b = control::Matrix{{0.0}, {p.gain / p.tau}};
  sys.c = control::Matrix{{1.0, 0.0}};
  sys.d = control::Matrix{{0.0}};
  sys.validate();
  return sys;
}

}  // namespace ecsim::plants
