// Property: the incremental re-evaluation strategy (refresh only the
// dispatched block's feedthrough cone after an event, only the dynamic cone
// on time advance) is observationally equivalent to re-sweeping the entire
// network at every refresh point. For random hybrid diagrams — mixing
// time-varying sources, continuous feedback, event-delay chains, sampled
// noise and both probe modes — the two paths must produce bit-identical
// traces: same events in the same order, same probed values to the last ulp.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>

#include "random_graphs.hpp"
#include "sim/compiled_model.hpp"
#include "sim/simulator.hpp"

namespace ecsim::sim {
namespace {

Trace run_with(CompiledModel compiled, SimOptions opts, bool full_refresh) {
  opts.full_refresh = full_refresh;
  Simulator s(std::move(compiled), opts);
  return s.run();
}

/// Locate the first differing record so a failure names the spot instead of
/// just "traces differ".
std::string describe_divergence(const Trace& incr, const Trace& full) {
  std::ostringstream os;
  os << "incremental vs full_refresh traces diverged: ";
  const auto& ie = incr.events();
  const auto& fe = full.events();
  for (std::size_t i = 0; i < ie.size() && i < fe.size(); ++i) {
    if (!(ie[i] == fe[i])) {
      os << "event[" << i << "] incr=(t=" << ie[i].time << ", "
         << incr.block_name(ie[i].block) << "#" << ie[i].event_in
         << ") full=(t=" << fe[i].time << ", " << full.block_name(fe[i].block)
         << "#" << fe[i].event_in << ")";
      return os.str();
    }
  }
  if (ie.size() != fe.size()) {
    os << "event count " << ie.size() << " vs " << fe.size();
    return os.str();
  }
  const auto& is = incr.signals();
  const auto& fs = full.signals();
  for (std::size_t i = 0; i < is.size() && i < fs.size(); ++i) {
    if (!(is[i] == fs[i])) {
      os << "signal[" << i << "] block " << is[i].block << " at t=("
         << is[i].time << " vs " << fs[i].time << ") first lane=("
         << (is[i].values.empty() ? 0.0 : is[i].values[0]) << " vs "
         << (fs[i].values.empty() ? 0.0 : fs[i].values[0]) << ")";
      return os.str();
    }
  }
  os << "signal count " << is.size() << " vs " << fs.size();
  return os.str();
}

class SimEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimEquivalence, ConeRefreshTraceBitIdenticalToFullSweep) {
  math::Rng rng(GetParam());
  for (int trial = 0; trial < 3; ++trial) {
    Model m = ecsim::testing::random_block_model(rng);
    const CompiledModel compiled(m);

    SimOptions opts;
    opts.end_time = 0.8;
    opts.seed = GetParam() * 131 + static_cast<std::uint64_t>(trial);
    if (trial == 1) {
      opts.integrator.kind = IntegratorKind::kRkf45;
      opts.integrator.max_step = 5e-3;
    }

    const Trace full = run_with(compiled, opts, /*full_refresh=*/true);
    const Trace incr = run_with(compiled, opts, /*full_refresh=*/false);

    // The generated diagrams must actually exercise the engine: clocks and
    // delay chains produce events, probes produce samples.
    ASSERT_FALSE(full.events().empty());
    ASSERT_FALSE(full.signals().empty());
    EXPECT_TRUE(incr == full)
        << describe_divergence(incr, full) << " (seed " << GetParam()
        << ", trial " << trial << ")";
  }
}

TEST_P(SimEquivalence, RepeatedRunsOfOneSimulatorAreBitIdentical) {
  // run() promises a clean restart: block re-initialization plus the arena
  // reset must erase all history, including held outputs and RNG draws.
  math::Rng rng(GetParam() * 7 + 1);
  Model m = ecsim::testing::random_block_model(rng);
  SimOptions opts;
  opts.end_time = 0.5;
  Simulator s(m, opts);
  const Trace first = s.run();
  const Trace second = s.run();
  EXPECT_TRUE(first == second) << describe_divergence(second, first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimEquivalence,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u, 26u, 27u,
                                           28u));

}  // namespace
}  // namespace ecsim::sim
