// Property tests for the result-cache key canonicalization (ISSUE PR-9):
// memoization is only sound if (a) a key is STABLE — the canonical string a
// client-side request produces is bit-identical after any number of
// serialize/parse round-trips through the wire format — and (b) the
// fault_hash component actually separates plans — two different fault plans
// must not collide, or the cache would serve one plan's cells for the other.
#include "svc/cache_key.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "mathlib/rng.hpp"
#include "svc/protocol.hpp"

namespace ecsim::svc {
namespace {

/// Random but VALID work request: awkward axis values (subnormal-ish
/// magnitudes, negated zeros) are exactly what hexfloat rendering must
/// carry through the wire unchanged.
Request random_request(math::Rng& rng) {
  Request r;
  const Verb verbs[] = {Verb::kSweepTiming, Verb::kSweepArch, Verb::kFaultSweep,
                        Verb::kFaultMc, Verb::kVmMc};
  r.verb = verbs[rng.uniform_int(0, 4)];
  r.backend = rng.bernoulli(0.5) ? "interp" : "native";
  r.ts = std::ldexp(1.0 + rng.uniform(), -static_cast<int>(rng.uniform_int(4, 10)));
  r.t_end = rng.uniform(0.1, 2.0);
  r.seed = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
  const auto axis = [&](std::size_t n) {
    std::vector<double> v;
    for (std::size_t i = 0; i < n; ++i) {
      v.push_back(rng.bernoulli(0.1)
                      ? 0.0
                      : std::ldexp(rng.uniform(0.0, 1.0),
                                   static_cast<int>(rng.uniform_int(-60, 4))));
    }
    return v;
  };
  r.rows = axis(1 + static_cast<std::size_t>(rng.uniform_int(0, 4)));
  r.cols = axis(1 + static_cast<std::size_t>(rng.uniform_int(0, 3)));
  r.loss = rng.uniform(0.0, 0.5);
  r.trials = 1 + static_cast<std::size_t>(rng.uniform_int(0, 16));
  r.iterations = 1 + static_cast<std::size_t>(rng.uniform_int(0, 100));
  r.spec_text = "[algorithm]\nseed " + std::to_string(r.seed) + "\n";
  return r;
}

std::string model_hash_for(const Request& r) {
  return r.verb == Verb::kVmMc ? spec_content_hash(r.spec_text)
                               : "0x00c0ffee00c0ffee";
}

TEST(CacheKeyProperty, CanonicalFormSurvivesWireRoundTrips) {
  math::Rng rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    const Request orig = random_request(rng);
    // Two full wire round-trips: client -> daemon -> (hypothetical relay).
    Request once, twice;
    std::string err;
    ASSERT_TRUE(Request::from_fields(orig.to_fields(), once, err)) << err;
    Fields refields;
    ASSERT_TRUE(Fields::parse(once.to_fields().serialize(), refields));
    ASSERT_TRUE(Request::from_fields(refields, twice, err)) << err;
    const std::string hash = model_hash_for(orig);
    ASSERT_EQ(orig.units(), twice.units());
    for (std::size_t u = 0; u < orig.units(); ++u) {
      const ResultKey a = unit_key(orig, hash, u);
      const ResultKey b = unit_key(once, hash, u);
      const ResultKey c = unit_key(twice, hash, u);
      EXPECT_EQ(a.canonical(), b.canonical()) << "trial " << trial;
      EXPECT_EQ(a.canonical(), c.canonical()) << "trial " << trial;
      EXPECT_TRUE(a == c);
    }
  }
}

TEST(CacheKeyProperty, UnitsOfOneRequestNeverCollide) {
  math::Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    Request r = random_request(rng);
    // Distinct axis values are a precondition for distinct cell keys; the
    // random axis draws above collide with probability ~0 but make it sure.
    for (std::size_t i = 0; i < r.rows.size(); ++i) r.rows[i] += double(i);
    for (std::size_t i = 0; i < r.cols.size(); ++i) r.cols[i] += double(i);
    std::set<std::string> keys;
    const std::string hash = model_hash_for(r);
    for (std::size_t u = 0; u < r.units(); ++u) {
      keys.insert(unit_key(r, hash, u).canonical());
    }
    EXPECT_EQ(keys.size(), r.units()) << "trial " << trial;
  }
}

TEST(CacheKeyProperty, RandomizedDifferingFaultPlansNeverCollideOnHash) {
  // 400 structurally random plans, each guaranteed different from every
  // other by a unique seed AND a unique probability perturbation. One shared
  // hash would mean the ledger's fault_plan_hash (and the cache key built on
  // it) can confuse two different injected-degradation schedules.
  math::Rng rng(99);
  std::set<std::uint64_t> hashes;
  std::vector<fault::FaultPlan> plans;
  for (int i = 0; i < 400; ++i) {
    fault::FaultPlan plan;
    plan.seed = static_cast<std::uint64_t>(i + 1);
    const double p = (i + 1) / 1024.0 + rng.uniform() / 4096.0;
    switch (rng.uniform_int(0, 3)) {
      case 0:
        plan.message_loss("bus", p);
        break;
      case 1:
        plan.message_delay("bus", p, rng.uniform(1e-6, 1e-3));
        break;
      case 2:
        plan.op_overrun("ctrl", p, 1.0 + rng.uniform());
        break;
      default:
        plan.node_stop("P1", rng.uniform(0.0, 0.5), 0.5 + rng.uniform());
        break;
    }
    if (rng.bernoulli(0.3)) plan.window(0.0, rng.uniform(0.5, 2.0));
    plans.push_back(plan);
    hashes.insert(fault::hash(plan));
  }
  EXPECT_EQ(hashes.size(), plans.size());
  // The empty plan is pinned to 0 (the ledger's fault-free marker) and no
  // non-empty plan may alias it.
  EXPECT_EQ(fault::hash(fault::FaultPlan{}), 0u);
  EXPECT_EQ(hashes.count(0), 0u);
}

TEST(CacheKeyProperty, HashSeparatesSinglePerturbations) {
  fault::FaultPlan base;
  base.seed = 42;
  base.message_loss("bus", 0.125);
  const std::uint64_t h = fault::hash(base);

  fault::FaultPlan seed_bump = base;
  seed_bump.seed = 43;
  EXPECT_NE(fault::hash(seed_bump), h);

  fault::FaultPlan prob_ulp = base;
  prob_ulp.faults[0].probability =
      std::nextafter(0.125, 1.0);  // one ulp — hexfloat must still separate
  EXPECT_NE(fault::hash(prob_ulp), h);

  fault::FaultPlan other_target = base;
  other_target.faults[0].target = "bus2";
  EXPECT_NE(fault::hash(other_target), h);
}

TEST(CacheKeyProperty, FaultMcTrialsAliasAcrossOverlappingSeedRanges) {
  // Trial t of base seed b IS trial 0 of base seed b+t — the aliasing the
  // daemon exploits so overlapping Monte Carlo ranges share cache entries.
  Request lo;
  lo.verb = Verb::kFaultMc;
  lo.seed = 100;
  lo.trials = 8;
  lo.loss = 0.1;
  Request hi = lo;
  hi.seed = 105;
  const std::string hash = "0x00c0ffee00c0ffee";
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(unit_key(lo, hash, 5 + t).canonical(),
              unit_key(hi, hash, t).canonical());
  }
  EXPECT_NE(unit_key(lo, hash, 0).canonical(),
            unit_key(hi, hash, 0).canonical());
}

TEST(CacheKeyProperty, KeySeparatesBackendModelAndVerb) {
  Request r;
  r.verb = Verb::kSweepTiming;
  r.rows = {0.1};
  r.cols = {0.2};
  const ResultKey base = unit_key(r, "0xaaaa", 0);

  Request native = r;
  native.backend = "native";
  EXPECT_NE(unit_key(native, "0xaaaa", 0).canonical(), base.canonical());
  EXPECT_NE(unit_key(r, "0xbbbb", 0).canonical(), base.canonical());

  Request arch = r;  // same coordinates, different verb => different axes
  arch.verb = Verb::kSweepArch;
  EXPECT_NE(unit_key(arch, "0xaaaa", 0).canonical(), base.canonical());

  Request ping;  // units() == 0: no work unit exists to key
  EXPECT_THROW(unit_key(ping, "0xaaaa", 0), std::out_of_range);
  EXPECT_THROW(unit_key(r, "0xaaaa", 1), std::out_of_range);
}

TEST(CacheKeyProperty, SweepNetworkUnitsKeyOnLoadAndScenario) {
  Request r;
  r.verb = Verb::kSweepNetwork;
  r.rows = {0.0, 0.4};   // background loads
  r.cols = {0.0, 1.0};   // scenario codes
  const std::string hash = "0x00c0ffee00c0ffee";
  std::set<std::string> keys;
  for (std::size_t u = 0; u < r.units(); ++u) {
    const std::string k = unit_key(r, hash, u).canonical();
    keys.insert(k);
    // The verb's coordinate labels are part of the canonical form, so
    // sweep_network cells can never alias another verb's cells.
    EXPECT_NE(k.find("load"), std::string::npos) << k;
    EXPECT_NE(k.find("scen"), std::string::npos) << k;
  }
  EXPECT_EQ(keys.size(), 4u);

  Request timing = r;  // identical coordinates under a different verb
  timing.verb = Verb::kSweepTiming;
  EXPECT_NE(unit_key(timing, hash, 0).canonical(),
            unit_key(r, hash, 0).canonical());
}

}  // namespace
}  // namespace ecsim::svc
