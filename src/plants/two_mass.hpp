// Two-mass flexible servo drive: motor inertia coupled to a load inertia
// through a compliant shaft — classic resonant mechatronic plant.
#pragma once

#include "control/state_space.hpp"

namespace ecsim::plants {

struct TwoMassParams {
  double motor_inertia = 0.0023;  // J1 [kg m^2]
  double load_inertia = 0.0023;   // J2 [kg m^2]
  double stiffness = 2.8;         // k [N m/rad]
  double damping = 0.0022;        // c [N m s/rad]
  double motor_friction = 0.001;  // viscous friction at the motor
};

/// States: [theta1, omega1, theta2, omega2]; input: motor torque;
/// outputs: [load angle theta2, motor speed omega1].
control::StateSpace two_mass(const TwoMassParams& p = {});

}  // namespace ecsim::plants
