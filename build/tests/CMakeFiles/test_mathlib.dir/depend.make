# Empty dependencies file for test_mathlib.
# This may be replaced when dependencies are built.
