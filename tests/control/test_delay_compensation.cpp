#include "control/delay_compensation.hpp"

#include <gtest/gtest.h>

#include "control/c2d.hpp"
#include "mathlib/linalg.hpp"
#include "plants/dc_servo.hpp"

namespace ecsim::control {
namespace {

TEST(AugmentQ, EmbedsAndZeroPads) {
  const Matrix q = augment_q(Matrix::diag({2.0, 3.0}), 1);
  EXPECT_EQ(q.rows(), 3u);
  EXPECT_DOUBLE_EQ(q(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(q(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(q(2, 2), 0.0);
}

TEST(DlqrWithInputDelay, StabilizesAugmentedSystem) {
  const StateSpace servo = plants::dc_servo();
  const double ts = 0.01, tau = 0.006;
  const Matrix q = augment_q(Matrix::diag({100.0, 0.01}), 1);
  const DelayLqrResult r = dlqr_with_input_delay(servo, ts, tau, q,
                                                 Matrix{{1e-4}});
  EXPECT_EQ(r.k.cols(), 3u);
  const Matrix acl = r.augmented.a - r.augmented.b * r.k;
  EXPECT_LT(math::spectral_radius(acl), 1.0);
  EXPECT_NE(r.nbar, 0.0);
}

TEST(DlqrWithInputDelay, ZeroDelayGainMatchesPlainDlqrOnPhysicalStates) {
  const StateSpace servo = plants::dc_servo();
  const double ts = 0.01;
  const Matrix q2 = Matrix::diag({100.0, 0.01});
  const Matrix r{{1e-4}};
  const LqrResult plain = dlqr(c2d(servo, ts), q2, r);
  const DelayLqrResult aug =
      dlqr_with_input_delay(servo, ts, 0.0, augment_q(q2, 1), r);
  // With tau = 0 the augmented state u_prev is irrelevant: its gain column
  // must vanish and the physical gains must coincide.
  EXPECT_NEAR(aug.k(0, 2), 0.0, 1e-6);
  EXPECT_NEAR(aug.k(0, 0), plain.k(0, 0), 1e-5);
  EXPECT_NEAR(aug.k(0, 1), plain.k(0, 1), 1e-5);
}

TEST(DlqrWithInputDelay, RejectsDiscretePlant) {
  const StateSpace dt = c2d(plants::dc_servo(), 0.01);
  EXPECT_THROW(dlqr_with_input_delay(dt, 0.01, 0.005,
                                     augment_q(Matrix::identity(2), 1),
                                     Matrix{{1.0}}),
               std::invalid_argument);
}

TEST(StateFeedbackController, RealizesGainAsFeedthrough) {
  const Matrix k{{2.0, 3.0}};
  const StateSpace c = state_feedback_controller(k, 1.5, 0.01);
  EXPECT_EQ(c.order(), 0u);
  EXPECT_EQ(c.num_inputs(), 3u);  // [x1 x2 r]
  EXPECT_DOUBLE_EQ(c.d(0, 0), -2.0);
  EXPECT_DOUBLE_EQ(c.d(0, 1), -3.0);
  EXPECT_DOUBLE_EQ(c.d(0, 2), 1.5);
  EXPECT_THROW(state_feedback_controller(Matrix(2, 2), 1.0, 0.01),
               std::invalid_argument);
}

TEST(DelayedFeedbackController, TracksPreviousControl) {
  // u_k = -2 x - 0.5 u_{k-1} + r. Iterate manually with x = 1, r = 0.
  const Matrix k_aug{{2.0, 0.5}};
  const StateSpace c = delayed_feedback_controller(k_aug, 1.0, 0.01);
  EXPECT_EQ(c.order(), 1u);
  double state = 0.0;  // u_prev
  double u_expected = 0.0;
  for (int i = 0; i < 4; ++i) {
    const double u = c.c(0, 0) * state + c.d(0, 0) * 1.0 + c.d(0, 1) * 0.0;
    u_expected = -2.0 * 1.0 - 0.5 * u_expected;
    // On the first iteration u_prev = 0 so both match; thereafter the
    // recurrence must be reproduced exactly.
    EXPECT_NEAR(u, u_expected, 1e-12);
    state = c.a(0, 0) * state + c.b(0, 0) * 1.0 + c.b(0, 1) * 0.0;
  }
  EXPECT_THROW(delayed_feedback_controller(Matrix{{1.0}}, 1.0, 0.01),
               std::invalid_argument);
}

}  // namespace
}  // namespace ecsim::control
