// Shared runtime for generated model modules (DESIGN.md §3.6). A generated
// .cpp defines a `Program` — per-block parameters/state as members, the
// layout tables from ir::LayoutIr as static constexpr arrays, and four
// specialized entry points (init / compute / on_event / derivatives with
// literal arena offsets) — and instantiates Engine<Program>.
//
// Engine::run() is a line-by-line port of sim::Simulator::run() with the
// observability hooks and the legacy_* bench baselines removed (the
// dispatcher falls back to the interpreter whenever those are requested).
// Everything order-sensitive is either shared (the same same-instant lane,
// the same sim::integrate() stepping the same workspace, the same math::Rng
// and the same sim::Trace recording — unity-compiled into the module from
// the interpreter's own sources) or order-equivalent by construction: the
// event queue is the LaneQueue below, which pops the identical strict
// (time, seq) total order sim::EventQueue pops, just without the heap. A
// native run is therefore bit-identical to an interpreter run of the same
// IR: identical event sequences, identical RNG draw order, identical
// doubles in the trace (asserted by the interp-vs-native property suite).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "backend/native_abi.hpp"
#include "mathlib/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/integrator.hpp"
#include "sim/trace.hpp"

namespace ecsim::backend::rt {

/// Event queue specialized for generated modules. Engine::emit/schedule_self
/// compute an event's time as `eval_time_ + delay` where eval_time_ never
/// decreases across pushes and each call site's delay is (nearly) constant,
/// so the push stream decomposes into a handful of non-decreasing runs. The
/// queue exploits that: it keeps a few FIFO lanes, appends each push to the
/// first lane whose tail is not later than the new event (patience-style run
/// decomposition — every lane stays sorted in (time, seq) by construction,
/// no matter how call-site delays round), and pops the minimum among the
/// lane heads: O(lanes) push and pop with no sifting and no element
/// movement. A push older than every lane tail opens a new lane; past
/// kMaxLanes it falls to a conventional binary-heap side channel, so the
/// structure is exact for arbitrary models, merely fastest for the common
/// monotone case.
///
/// Pop order is bitwise identical to sim::EventQueue's: seq numbers are
/// assigned in the same global push order, each lane head is its lane's
/// (time, seq) minimum by the monotone-append invariant, the heap top is the
/// side channel's minimum, and every pop takes the global minimum across
/// those candidates — the same strict total order on (time, seq) the 4-ary
/// heap pops in. The interp-vs-native property suite asserts this trace
/// identity on every scenario it generates.
class LaneQueue {
 public:
  static constexpr std::size_t kMaxLanes = 16;

  void clear() {
    // Lanes persist across runs (delay classes are structural, buffers keep
    // their capacity); only the contents and the FIFO counter reset.
    for (Lane& l : lanes_) {
      l.buf.clear();
      l.head = 0;
    }
    heap_.clear();
    next_seq_ = 0;
    live_ = 0;
  }
  void reserve(std::size_t n) { heap_.reserve(n); }
  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Hot path, forced inline into the generated emit/on_event code: scan the
  /// (few) lanes for one whose tail is not later than the new event — a
  /// drained lane accepts anything — and append. Lane creation and overflow
  /// drop to the cold out-of-line push_slow, keeping the inlined footprint
  /// small enough that the generated switch bodies stay in the I-cache. The
  /// new event carries the largest seq so far, so "tail not later" reduces
  /// to a tail-time comparison and the appended lane stays (time, seq)
  /// sorted.
  [[gnu::always_inline]] inline void push(sim::Time at, std::size_t block,
                                          std::size_t event_in) {
    const sim::ScheduledEvent ev{at, next_seq_++, block, event_in};
    ++live_;
    for (Lane& l : lanes_) {
      if (l.head == l.buf.size()) {
        l.buf.clear();  // window fully drained: restart the ring
        l.head = 0;
      } else if (later(l.buf.back(), ev)) {
        continue;  // appending here would break the lane's sortedness
      }
      l.buf.push_back(ev);
      return;
    }
    push_slow(ev);
  }

  /// Earliest pending event time; queue must be non-empty.
  sim::Time next_time() const {
    const sim::ScheduledEvent* best = nullptr;
    for (const Lane& l : lanes_) {
      if (l.head < l.buf.size()) {
        const sim::ScheduledEvent* h = &l.buf[l.head];
        if (best == nullptr || later(*best, *h)) best = h;
      }
    }
    if (!heap_.empty()) {
      const sim::ScheduledEvent* h = &heap_.front();
      if (best == nullptr || later(*best, *h)) best = h;
    }
    if (best == nullptr) throw std::logic_error("LaneQueue::next_time: empty");
    return best->time;
  }

  /// Remove the earliest pending event if its time is exactly `t`; one
  /// argmin scan, no element movement. The engine drains one instant by
  /// calling this in a loop and dispatching each event as it pops — the
  /// same (time, seq) sequence sim::EventQueue::pop_simultaneous batches
  /// up, minus the copy into a batch vector. An event pushed mid-drain
  /// with a different time fails the exact == t check and waits for the
  /// next outer engine iteration, exactly as it would miss the batch.
  bool pop_next_at(sim::Time t, sim::ScheduledEvent& out) {
    Lane* best_lane = nullptr;
    const sim::ScheduledEvent* best = nullptr;
    for (Lane& l : lanes_) {
      if (l.head < l.buf.size()) {
        const sim::ScheduledEvent* h = &l.buf[l.head];
        if (best == nullptr || later(*best, *h)) {
          best = h;
          best_lane = &l;
        }
      }
    }
    if (!heap_.empty() &&
        (best == nullptr || later(*best, heap_.front()))) [[unlikely]] {
      if (heap_.front().time != t) return false;
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      out = heap_.back();
      heap_.pop_back();
      --live_;
      return true;
    }
    if (best == nullptr || best->time != t) return false;
    out = *best;
    ++best_lane->head;
    --live_;
    return true;
  }

 private:
  struct Lane {
    std::size_t head = 0;  // buf[head..) is the live FIFO window
    std::vector<sim::ScheduledEvent> buf;
  };

  /// a should pop after b.
  static bool later(const sim::ScheduledEvent& a, const sim::ScheduledEvent& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
  struct Later {
    bool operator()(const sim::ScheduledEvent& a,
                    const sim::ScheduledEvent& b) const {
      return later(a, b);
    }
  };

  [[gnu::noinline]] void heap_push(const sim::ScheduledEvent& ev) {
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Cold: the event predates every lane tail — open a new run (or overflow
  /// to the heap past kMaxLanes).
  [[gnu::noinline]] void push_slow(const sim::ScheduledEvent& ev) {
    if (lanes_.size() < kMaxLanes) {
      lanes_.emplace_back();
      lanes_.back().buf.reserve(64);
      lanes_.back().buf.push_back(ev);
      return;
    }
    heap_push(ev);
  }

  std::vector<Lane> lanes_;
  std::vector<sim::ScheduledEvent> heap_;  // Later{} min-heap side channel
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

template <class Program>
class Engine {
 public:
  Engine() : arena_(Program::kArenaSize, 0.0) {}

  /// The trace to record into (borrowed; typically the host's). run()
  /// clears it (names survive) and fills it exactly as the interpreter
  /// would.
  void bind_trace(sim::Trace* t) { trace_ = t; }

  void run(const NativeRunOptions& o) {
    // Reset run state (including the RNG: same seed => same realization).
    rng_ = math::Rng(o.seed);
    time_ = 0.0;
    x_.assign(Program::kTotalState, 0.0);
    active_x_ = x_.data();
    queue_.clear();
    lane_.clear();
    lane_active_ = false;
    if (o.reserve_queue > 0) queue_.reserve(o.reserve_queue);
    iws_.resize(Program::kTotalState);
    trace_->clear();
    trace_->reserve(o.reserve_events, o.reserve_signals);
    events_dispatched_ = 0;
    std::fill(arena_.begin(), arena_.end(), 0.0);
    full_refresh_ = o.full_refresh != 0;

    sim::IntegratorOptions integ;
    integ.kind = static_cast<sim::IntegratorKind>(o.integrator_kind);
    integ.max_step = o.max_step;
    integ.rel_tol = o.rel_tol;
    integ.abs_tol = o.abs_tol;
    integ.min_step = o.min_step;

    // Initialize every block (may write state/outputs and schedule events),
    // then establish output consistency with one full sweep.
    eval_time_ = 0.0;
    prog_.init(*this);
    refresh_blocks(order_span(Program::kEvalOrder), 0.0);

    const double t_end = o.end_time;
    const std::size_t max_events = o.max_events;
    while (true) {
      double t_next = t_end;
      bool have_event = false;
      if (!queue_.empty() && queue_.next_time() <= t_end) {
        t_next = queue_.next_time();
        have_event = true;
      }
      if (t_next > time_) {
        if constexpr (Program::kTotalState > 0) {
          sim::integrate(
              integ,
              [this](double t, const std::vector<double>& x,
                     std::vector<double>& dx) {
                evaluate_derivatives(t, x, dx);
              },
              time_, t_next, x_, iws_);
          active_x_ = x_.data();
        }
        time_ = t_next;
        refresh_dynamic(time_);
      }
      if (!have_event) break;
      lane_active_ = true;
      // Drain the instant pop-by-pop: same (time, seq) order the
      // interpreter's batched pop_simultaneous dispatches in, without
      // copying the tie set into a batch vector first. Same-instant
      // cascades emitted during dispatch land in lane_, never the queue,
      // so the == time_ drain sees exactly the original tie set.
      sim::ScheduledEvent ev;
      while (queue_.pop_next_at(time_, ev)) {
        dispatch_one(ev, max_events);
      }
      // Zero-delay cascades landed in the lane instead of the heap; index
      // loop because a dispatch may append (and reallocate) while we drain.
      for (std::size_t i = 0; i < lane_.size(); ++i) {
        const sim::ScheduledEvent e = lane_[i];
        dispatch_one(e, max_events);
      }
      lane_.clear();
      lane_active_ = false;
    }
  }

  std::size_t events_dispatched() const { return events_dispatched_; }

  // ---- services for generated kernels (the Context replacements) ----------

  double* arena() { return arena_.data(); }
  double time() const { return eval_time_; }
  math::Rng& rng() { return rng_; }
  sim::Trace& trace() { return *trace_; }
  const double* state(std::size_t offset) const { return active_x_ + offset; }
  double* state_mut(std::size_t offset) { return x_.data() + offset; }

  void emit(std::size_t block, std::size_t event_out, double delay) {
    const double at = eval_time_ + delay;
    const std::size_t slot = Program::kSinkBase[block] + event_out;
    const std::size_t lo = Program::kSinkPtr[slot];
    const std::size_t hi = Program::kSinkPtr[slot + 1];
    if (lane_active_ && at == time_) {
      for (std::size_t s = lo; s < hi; ++s) {
        lane_.push_back(sim::ScheduledEvent{at, 0, Program::kSinkBlock[s],
                                            Program::kSinkPort[s]});
      }
      return;
    }
    for (std::size_t s = lo; s < hi; ++s) {
      queue_.push(at, Program::kSinkBlock[s], Program::kSinkPort[s]);
    }
  }

  void schedule_self(std::size_t block, std::size_t event_in, double delay) {
    const double at = eval_time_ + delay;
    if (lane_active_ && at == time_) {
      lane_.push_back(sim::ScheduledEvent{at, 0, block, event_in});
      return;
    }
    queue_.push(at, block, event_in);
  }

 private:
  template <class Arr>
  static std::span<const std::size_t> order_span(const Arr& a) {
    return std::span<const std::size_t>(a.data(), a.size());
  }

  std::span<const std::size_t> cone(std::size_t block) const {
    return {Program::kConeBlocks.data() + Program::kConeBase[block],
            Program::kConeBase[block + 1] - Program::kConeBase[block]};
  }

  void refresh_blocks(std::span<const std::size_t> order, double t) {
    eval_time_ = t;
    for (std::size_t b : order) prog_.compute(*this, b);
  }

  void refresh_dynamic(double t) {
    refresh_blocks(full_refresh_ ? order_span(Program::kEvalOrder)
                                 : order_span(Program::kDynamicCone),
                   t);
  }

  void evaluate_derivatives(double t, const std::vector<double>& x,
                            std::vector<double>& dx) {
    active_x_ = x.data();
    refresh_dynamic(t);
    std::fill(dx.begin(), dx.end(), 0.0);
    for (std::size_t b : Program::kStatefulBlocks) {
      prog_.derivatives(*this, b, dx.data() + Program::kStateOffset[b]);
    }
  }

  void dispatch_one(const sim::ScheduledEvent& e, std::size_t max_events) {
    trace_->record_event(e.time, e.block, e.event_in);
    eval_time_ = e.time;
    prog_.on_event(*this, e.block, e.event_in);
    const std::span<const std::size_t> c =
        full_refresh_ ? order_span(Program::kEvalOrder) : cone(e.block);
    // Empty cones (pure event-plumbing blocks) skip the refresh outright —
    // same condition as the interpreter's non-traced hot path.
    if (!c.empty()) refresh_blocks(c, time_);
    if (++events_dispatched_ > max_events) {
      throw std::runtime_error(
          "Simulator: max_events exceeded (runaway loop?)");
    }
  }

  Program prog_;
  math::Rng rng_{1};
  sim::Trace* trace_ = nullptr;
  LaneQueue queue_;
  sim::IntegratorWorkspace iws_;
  std::vector<sim::ScheduledEvent> lane_;
  bool lane_active_ = false;
  bool full_refresh_ = false;

  std::vector<double> arena_;
  double time_ = 0.0;
  double eval_time_ = 0.0;
  std::vector<double> x_;
  const double* active_x_ = nullptr;
  std::size_t events_dispatched_ = 0;
};

}  // namespace ecsim::backend::rt
