#!/usr/bin/env bash
# Build a dedicated ThreadSanitizer tree and run the concurrency-sensitive
# suites against it: the task pool / batch runner unit tests, the parallel
# adequation tests, the obs shard-merge tests, and the parallel-batch
# determinism property. TSan and ASan cannot be combined, hence the separate
# tree (build-tsan) and the separate script.
#
# Usage: scripts/run_par_tsan.sh [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-tsan"

cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DECSIM_TSAN=ON
cmake --build "${build_dir}" -j "$(nproc)" \
  --target test_par test_aaa test_obs test_properties

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

"${build_dir}/tests/test_par"
"${build_dir}/tests/test_aaa" --gtest_filter='AdequationParallel.*'
"${build_dir}/tests/test_obs" --gtest_filter='MetricsMerge.*:TracerAppend.*'
"${build_dir}/tests/test_properties" --gtest_filter='ParallelSimBatch.*'
