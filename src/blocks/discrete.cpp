#include "blocks/discrete.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecsim::blocks {

StateSpaceDisc::StateSpaceDisc(std::string name, math::Matrix a, math::Matrix b,
                               math::Matrix c, math::Matrix d,
                               std::vector<double> x0)
    : Block(std::move(name)),
      a_(std::move(a)),
      b_(std::move(b)),
      c_(std::move(c)),
      d_(std::move(d)),
      x0_(std::move(x0)) {
  const std::size_t n = a_.rows();
  if (!a_.is_square() || b_.rows() != n || c_.cols() != n ||
      d_.rows() != c_.rows() || d_.cols() != b_.cols()) {
    throw std::invalid_argument("StateSpaceDisc: inconsistent matrix shapes");
  }
  if (x0_.empty()) x0_.assign(n, 0.0);
  if (x0_.size() != n) throw std::invalid_argument("StateSpaceDisc: x0 size");
  add_input(b_.cols());
  add_output(c_.rows());
  add_event_input();
  add_event_output();  // done
}

void StateSpaceDisc::initialize(Context& ctx) {
  x_ = x0_;
  next_.resize(x_.size());  // per-activation scratch, sized once per run
  auto y = ctx.output(0);
  std::fill(y.begin(), y.end(), 0.0);
}

void StateSpaceDisc::on_event(Context& ctx, std::size_t) {
  auto u = ctx.input(0);
  // Same accumulation order as the old fused loops (C/A terms then D/B
  // terms into one per-row accumulator); the next-state vector is a member
  // scratch swapped into place, so a steady-state activation is heap-free.
  math::multiply_into(ctx.output(0), c_, x_);
  math::multiply_add_into(ctx.output(0), d_, u);
  math::multiply_into(next_, a_, x_);
  math::multiply_add_into(next_, b_, u);
  std::swap(x_, next_);
  ctx.emit(0, 0.0);
}

PidDiscrete::PidDiscrete(std::string name, Params p)
    : Block(std::move(name)), p_(p) {
  if (p_.ts <= 0.0) throw std::invalid_argument("PidDiscrete: ts must be > 0");
  if (p_.u_max < p_.u_min) throw std::invalid_argument("PidDiscrete: bad clamp");
  add_input(1);
  add_output(1);
  add_event_input();
  add_event_output();  // done
}

void PidDiscrete::initialize(Context& ctx) {
  integral_ = 0.0;
  deriv_ = 0.0;
  prev_error_ = 0.0;
  ctx.set_out1(0, 0.0);
}

void PidDiscrete::on_event(Context& ctx, std::size_t) {
  const double e = ctx.in1(0);
  deriv_ = (p_.kd * p_.n * (e - prev_error_) + deriv_) / (1.0 + p_.n * p_.ts);
  double u = p_.kp * e + integral_ + deriv_;
  const double u_clamped = std::clamp(u, p_.u_min, p_.u_max);
  // Conditional integration anti-windup: only integrate when not saturated
  // in the direction of the error.
  const bool saturating =
      (u > u_clamped && e > 0.0) || (u < u_clamped && e < 0.0);
  if (!saturating) integral_ += p_.ki * p_.ts * e;
  prev_error_ = e;
  ctx.set_out1(0, u_clamped);
  ctx.emit(0, 0.0);
}

UnitDelay::UnitDelay(std::string name, std::vector<double> init)
    : Block(std::move(name)), init_(std::move(init)) {
  if (init_.empty()) throw std::invalid_argument("UnitDelay: empty init");
  add_input(init_.size());
  add_output(init_.size());
  add_event_input();
  add_event_output();  // done
}

void UnitDelay::initialize(Context& ctx) {
  stored_ = init_;
  auto y = ctx.output(0);
  std::copy(stored_.begin(), stored_.end(), y.begin());
}

void UnitDelay::on_event(Context& ctx, std::size_t) {
  auto u = ctx.input(0);
  auto y = ctx.output(0);
  std::copy(stored_.begin(), stored_.end(), y.begin());
  stored_.assign(u.begin(), u.end());
  ctx.emit(0, 0.0);
}

EventCounter::EventCounter(std::string name) : Block(std::move(name)) {
  add_output(1);
  add_event_input();
}

void EventCounter::initialize(Context& ctx) {
  count_ = 0;
  ctx.set_out1(0, 0.0);
}

void EventCounter::on_event(Context& ctx, std::size_t) {
  ++count_;
  ctx.set_out1(0, static_cast<double>(count_));
}


namespace {

ir::Attr matrix_attr(std::string key, const math::Matrix& m) {
  return ir::Attr::of_matrix(
      std::move(key), m.rows(), m.cols(),
      std::vector<double>(m.data(), m.data() + m.size()));
}

}  // namespace

void StateSpaceDisc::describe(ir::BlockIr& out) const {
  out.kind = "StateSpaceDisc";
  out.attrs.push_back(matrix_attr("a", a_));
  out.attrs.push_back(matrix_attr("b", b_));
  out.attrs.push_back(matrix_attr("c", c_));
  out.attrs.push_back(matrix_attr("d", d_));
  out.attrs.push_back(ir::Attr::of_vec("x0", x0_));
}

void PidDiscrete::describe(ir::BlockIr& out) const {
  out.kind = "PidDiscrete";
  out.attrs.push_back(ir::Attr::of_real("kp", p_.kp));
  out.attrs.push_back(ir::Attr::of_real("ki", p_.ki));
  out.attrs.push_back(ir::Attr::of_real("kd", p_.kd));
  out.attrs.push_back(ir::Attr::of_real("ts", p_.ts));
  out.attrs.push_back(ir::Attr::of_real("n", p_.n));
  out.attrs.push_back(ir::Attr::of_real("u_min", p_.u_min));
  out.attrs.push_back(ir::Attr::of_real("u_max", p_.u_max));
}

void UnitDelay::describe(ir::BlockIr& out) const {
  out.kind = "UnitDelay";
  out.attrs.push_back(ir::Attr::of_vec("init", init_));
}

void EventCounter::describe(ir::BlockIr& out) const {
  out.kind = "EventCounter";
}

}  // namespace ecsim::blocks
