// Output-feedback over a network: only the servo position is measurable and
// the measurement is noisy, so the controller is an observer-based
// compensator (steady-state Kalman filter + LQR, assembled by
// observer_tracking_compensator). The loop is then deployed on a 2-processor
// architecture and co-simulated with its graph of delays — showing that the
// methodology applies unchanged to dynamic output-feedback controllers, not
// just static state feedback.
#include <cstdio>

#include "control/c2d.hpp"
#include "control/kalman.hpp"
#include "control/lqr.hpp"
#include "plants/dc_servo.hpp"
#include "translate/cosim.hpp"

using namespace ecsim;

int main() {
  const double ts = 0.01;

  // Plant: DC servo with only the position measurable.
  control::StateSpace servo = plants::dc_servo();  // C = [1 0] already
  const control::StateSpace servo_d = control::c2d(servo, ts);

  // LQR on the full state + steady-state Kalman observer from position.
  const control::LqrResult lqr = control::dlqr(
      servo_d, math::Matrix::diag({100.0, 0.01}), math::Matrix{{1e-3}});
  const control::KalmanResult kal =
      control::dkalman(servo_d.a, servo_d.c, math::Matrix::diag({1e-4, 1.0}),
                       math::Matrix{{1e-6}});
  const double nbar = control::reference_gain(servo_d, lqr.k);
  const control::StateSpace compensator =
      control::observer_tracking_compensator(servo_d, lqr.k, kal.l, nbar);

  translate::LoopSpec spec;
  spec.plant = servo;
  spec.controller = compensator;
  spec.ts = ts;
  spec.t_end = 2.0;
  spec.ref = 1.0;
  spec.input = translate::ControllerInput::kOutputRef;  // [y; r]
  spec.measurement_noise_std = 0.002;                   // noisy encoder

  const translate::CosimOutcome ideal = translate::run_ideal_loop(spec);

  translate::DistributedSpec dist;
  dist.arch = aaa::ArchitectureGraph::bus_architecture(2, 4e4, 3e-4);
  dist.wcet_sense = 2e-4;
  dist.wcet_ctrl = 2e-3;  // observer update is the heavy part
  dist.wcet_act = 2e-4;
  dist.bind_sense = "P0";
  dist.bind_act = "P0";
  dist.bind_ctrl = "P1";
  const translate::CosimOutcome impl =
      translate::run_distributed_loop(spec, dist);

  std::printf("== observer-based output feedback over a network ==\n\n");
  std::printf("%s\n", impl.schedule_text.c_str());
  std::printf("%-28s %12s %14s\n", "metric", "ideal", "implementation");
  std::printf("%-28s %12.5f %14.5f\n", "IAE", ideal.iae, impl.iae);
  std::printf("%-28s %12.2f %14.2f\n", "overshoot [%]",
              ideal.step.overshoot_pct, impl.step.overshoot_pct);
  std::printf("%-28s %12.4f %14.4f\n", "settling [s]",
              ideal.step.settling_time, impl.step.settling_time);
  std::printf("%-28s %12.3f %14.3f\n", "La mean [ms]",
              1e3 * ideal.act_latency.summary.mean,
              1e3 * impl.act_latency.summary.mean);
  std::printf("%-28s %12.3f %14.3f\n", "u RMS", control::rms(ideal.u),
              control::rms(impl.u));
  std::printf("\nThe observer keeps filtering the noisy measurement; the "
              "co-simulation additionally exposes the %.1f ms network-induced "
              "actuation latency and its %.1f%% IAE cost.\n",
              1e3 * impl.act_latency.summary.mean,
              100.0 * (impl.iae - ideal.iae) / ideal.iae);
  return 0;
}
