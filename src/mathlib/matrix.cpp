#include "mathlib/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace ecsim::math {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 0.0);
}

Matrix Matrix::ones(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 1.0);
}

Matrix Matrix::diag(const std::vector<double>& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::operator()");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::operator()");
  return data_[r * cols_ + c];
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (!same_shape(rhs)) throw std::invalid_argument("Matrix +=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (!same_shape(rhs)) throw std::invalid_argument("Matrix -=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::operator/=(double s) {
  for (double& v : data_) v /= s;
  return *this;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  transpose_into(t);
  return t;
}

void Matrix::transpose_into(Matrix& dst) const {
  dst.resize(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) dst(c, r) = (*this)(r, c);
}

double Matrix::trace() const {
  if (!is_square()) throw std::invalid_argument("trace: non-square matrix");
  double s = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) s += (*this)(i, i);
  return s;
}

double Matrix::norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::norm_inf() const {
  double best = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += std::abs((*this)(r, c));
    best = std::max(best, s);
  }
  return best;
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  if (r0 + nr > rows_ || c0 + nc > cols_) {
    throw std::out_of_range("Matrix::block: out of range");
  }
  Matrix b(nr, nc);
  for (std::size_t r = 0; r < nr; ++r)
    for (std::size_t c = 0; c < nc; ++c) b(r, c) = (*this)(r0 + r, c0 + c);
  return b;
}

void Matrix::set_block(std::size_t r0, std::size_t c0, const Matrix& m) {
  if (r0 + m.rows() > rows_ || c0 + m.cols() > cols_) {
    throw std::out_of_range("Matrix::set_block: out of range");
  }
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) (*this)(r0 + r, c0 + c) = m(r, c);
}

std::vector<double> Matrix::col(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("Matrix::col");
  std::vector<double> v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

std::vector<double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  std::vector<double> v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);  // vector::resize keeps capacity when shrinking
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      os << (*this)(r, c);
      if (c + 1 < cols_) os << ", ";
    }
    os << (r + 1 == rows_ ? "]" : ";\n");
  }
  return os.str();
}

Matrix operator+(Matrix lhs, const Matrix& rhs) {
  lhs += rhs;
  return lhs;
}

Matrix operator-(Matrix lhs, const Matrix& rhs) {
  lhs -= rhs;
  return lhs;
}

Matrix operator*(const Matrix& lhs, const Matrix& rhs) {
  if (lhs.cols() != rhs.rows()) {
    throw std::invalid_argument("Matrix *: inner dimension mismatch");
  }
  Matrix out(lhs.rows(), rhs.cols());
  for (std::size_t r = 0; r < lhs.rows(); ++r) {
    for (std::size_t k = 0; k < lhs.cols(); ++k) {
      const double a = lhs(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols(); ++c) out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

Matrix operator*(double s, Matrix m) {
  m *= s;
  return m;
}

Matrix operator*(Matrix m, double s) {
  m *= s;
  return m;
}

Matrix operator-(Matrix m) {
  m *= -1.0;
  return m;
}

std::vector<double> operator*(const Matrix& m, const std::vector<double>& v) {
  std::vector<double> out(m.rows(), 0.0);
  multiply_into(out, m, v);
  return out;
}

void multiply_into(std::span<double> dst, const Matrix& m,
                   std::span<const double> v) {
  if (m.cols() != v.size()) {
    throw std::invalid_argument("multiply_into: dimension mismatch");
  }
  if (dst.size() != m.rows()) {
    throw std::invalid_argument("multiply_into: dst size mismatch");
  }
  const double* a = m.data();
  const std::size_t cols = m.cols();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    // Per-row accumulator in ascending column order: the exact summation
    // sequence of the allocating operator* and of the fused loops the
    // state-space blocks used before — bit-identical on purpose.
    double s = 0.0;
    const double* row = a + r * cols;
    for (std::size_t c = 0; c < cols; ++c) s += row[c] * v[c];
    dst[r] = s;
  }
}

void multiply_add_into(std::span<double> dst, const Matrix& m,
                       std::span<const double> v) {
  if (m.cols() != v.size()) {
    throw std::invalid_argument("multiply_add_into: dimension mismatch");
  }
  if (dst.size() != m.rows()) {
    throw std::invalid_argument("multiply_add_into: dst size mismatch");
  }
  const double* a = m.data();
  const std::size_t cols = m.cols();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double s = dst[r];
    const double* row = a + r * cols;
    for (std::size_t c = 0; c < cols; ++c) s += row[c] * v[c];
    dst[r] = s;
  }
}

void multiply_into(Matrix& dst, const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("multiply_into: inner dimension mismatch");
  }
  dst.resize(a.rows(), b.cols());
  double* out = dst.data();
  std::fill(out, out + dst.size(), 0.0);
  // Same loop nest (and zero-skip) as operator*(Matrix, Matrix) for
  // bit-identical accumulation order.
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double av = a(r, k);
      if (av == 0.0) continue;
      double* out_row = out + r * b.cols();
      const double* b_row = b.data() + k * b.cols();
      for (std::size_t c = 0; c < b.cols(); ++c) out_row[c] += av * b_row[c];
    }
  }
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (!a.same_shape(b)) return false;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      if (std::abs(a(r, c) - b(r, c)) > tol) return false;
  return true;
}

Matrix hcat(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("hcat: row mismatch");
  Matrix out(a.rows(), a.cols() + b.cols());
  out.set_block(0, 0, a);
  out.set_block(0, a.cols(), b);
  return out;
}

Matrix vcat(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) throw std::invalid_argument("vcat: col mismatch");
  Matrix out(a.rows() + b.rows(), a.cols());
  out.set_block(0, 0, a);
  out.set_block(a.rows(), 0, b);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  return os << m.to_string();
}

std::vector<double> vec_add(const std::vector<double>& a,
                            const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("vec_add: size mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> vec_sub(const std::vector<double>& a,
                            const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("vec_sub: size mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> vec_scale(double s, const std::vector<double>& a) {
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = s * a[i];
  return out;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double vec_norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

double quad_form(const Matrix& m, const std::vector<double>& x) {
  return dot(x, m * x);
}

double quad_form(const Matrix& m, const std::vector<double>& x,
                 std::vector<double>& scratch) {
  scratch.resize(m.rows());
  multiply_into(scratch, m, x);
  return dot(x, scratch);
}

}  // namespace ecsim::math
