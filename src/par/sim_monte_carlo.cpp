#include "par/sim_monte_carlo.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <span>

#include "ir/ir.hpp"
#include "obs/ledger.hpp"
#include "simd/pack.hpp"

namespace ecsim::sweep {

namespace {

/// What one task (one batch of trials) contributes to the reduction.
struct ShardOutcome {
  std::vector<std::uint64_t> digests;  // trial order within the shard
  std::vector<std::size_t> events;     // parallel to digests
  std::size_t evictions = 0;
};

/// Per-worker engine, built lazily on first use and reused across every
/// batch that worker executes — trial N+1 pays zero compile/allocation
/// cost. Safe without locks: a worker runs its tasks sequentially.
struct WorkerEngine {
  std::unique_ptr<sim::BatchedSim> batched;
  std::unique_ptr<sim::Model> scalar_model;  // keeps the Simulator's model alive
  std::unique_ptr<sim::Simulator> scalar;
};

}  // namespace

SimMonteCarloResult run_sim_monte_carlo(
    const sim::BatchedSim::ModelFactory& factory,
    const SimMonteCarloSpec& spec, const par::BatchOptions& batch) {
  const std::size_t width = spec.batch_width > 0
                                ? spec.batch_width
                                : simd::preferred_batch_width();
  // Per-trial seeds, a pure function of (batch.seed, trial index): any
  // batch width and thread count replays the same trial realizations.
  std::vector<std::uint64_t> seeds(spec.trials);
  {
    std::vector<math::Rng> streams = math::Rng(batch.seed).split(spec.trials);
    math::fill_lanes_u64(streams, seeds);
  }
  // Trial options: per-trial observability shards are not wired through the
  // lanes — traces and digests are the outputs of this sweep.
  sim::SimOptions base = spec.sim;
  base.tracer = nullptr;
  base.metrics = nullptr;

  SimMonteCarloResult result;
  result.trials = spec.trials;
  result.batch_width = width;

  // The model identity the ledger and BENCH reports key throughput on.
  {
    const std::unique_ptr<sim::Model> probe = factory();
    sim::CompiledModel cm(*probe);
    result.ir_hash = ir::hash_hex(cm.ir());
  }

  par::BatchRunner runner(batch);
  result.threads = runner.threads();
  std::vector<WorkerEngine> engines(runner.threads());
  const std::size_t tasks = (spec.trials + width - 1) / width;

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<ShardOutcome> shards =
      runner.map<ShardOutcome>(tasks, [&](par::TaskContext& ctx) {
        const std::size_t begin = ctx.index * width;
        const std::size_t end = std::min(begin + width, spec.trials);
        WorkerEngine& eng = engines[ctx.worker];
        ShardOutcome out;
        out.digests.reserve(end - begin);
        out.events.reserve(end - begin);
        if (width == 1) {
          // Scalar baseline: one reused Simulator, reseeded per trial.
          if (eng.scalar == nullptr) {
            eng.scalar_model = factory();
            eng.scalar =
                std::make_unique<sim::Simulator>(*eng.scalar_model, base);
          }
          for (std::size_t trial = begin; trial < end; ++trial) {
            eng.scalar->set_seed(seeds[trial]);
            const sim::Trace& tr = eng.scalar->run();
            out.digests.push_back(sim::trace_digest(tr));
            out.events.push_back(eng.scalar->events_dispatched());
          }
          return out;
        }
        if (eng.batched == nullptr) {
          eng.batched = std::make_unique<sim::BatchedSim>(
              factory, sim::BatchedOptions{base, width});
        }
        eng.batched->run(
            std::span<const std::uint64_t>(seeds.data() + begin, end - begin));
        for (std::size_t l = 0; l < end - begin; ++l) {
          out.digests.push_back(sim::trace_digest(eng.batched->trace(l)));
          out.events.push_back(eng.batched->events_dispatched(l));
        }
        out.evictions = eng.batched->evictions();
        return out;
      });
  result.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.trials_per_s =
      result.wall_s > 0.0
          ? static_cast<double>(spec.trials) / result.wall_s
          : 0.0;

  result.digests.reserve(spec.trials);
  for (const ShardOutcome& s : shards) {
    result.evictions += s.evictions;
    for (std::size_t i = 0; i < s.digests.size(); ++i) {
      result.digests.push_back(s.digests[i]);
      result.events += s.events[i];
    }
  }

  if (!spec.model.empty()) {
    obs::LedgerRecord rec;
    rec.ir_hash = result.ir_hash;
    rec.model = spec.model;
    rec.backend_requested = width > 1 ? "simd" : "interp";
    rec.backend_used = rec.backend_requested;
    rec.seed = batch.seed;
    rec.threads = static_cast<unsigned>(result.threads);
    rec.wall_s = result.wall_s;
    rec.events = result.events;
    // events_per_s stays 0: this is a trial-throughput record, and it must
    // not satisfy the single-run events/s gate of `ledger diff`.
    rec.trials_per_s = result.trials_per_s;
    obs::Ledger::global().append(rec);
  }
  return result;
}

std::string to_string(const SimMonteCarloResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%zu trials, batch width %zu, %zu thread%s, %zu eviction%s, "
                "%llu events, %.3g s (%.4g trials/s)",
                r.trials, r.batch_width, r.threads, r.threads == 1 ? "" : "s",
                r.evictions, r.evictions == 1 ? "" : "s",
                static_cast<unsigned long long>(r.events), r.wall_s,
                r.trials_per_s);
  return buf;
}

}  // namespace ecsim::sweep
