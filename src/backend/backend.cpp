#include "backend/backend.hpp"

#include <optional>
#include <stdexcept>
#include <utility>

#include "backend/native_abi.hpp"
#include "backend/native_backend.hpp"
#include "backend/native_codegen.hpp"
#include "blocks/to_model.hpp"
#include "sim/build_ir.hpp"

namespace ecsim::backend {

namespace {

void count(obs::MetricsRegistry* m, const std::string& name) {
  if (m != nullptr) m->counter(name).add();
}

RunResult run_interp(sim::Model& model, const RunOptions& o) {
  sim::Simulator s(model, o.sim);
  s.run();
  RunResult r;
  r.trace = std::move(s.trace());
  r.events_dispatched = s.events_dispatched();
  r.used = Kind::kInterp;
  count(o.metrics, "backend.interp.runs");
  return r;
}

RunResult run_native_module(const NativeModule& mod, const RunOptions& o) {
  NativeRunOptions n;
  n.end_time = o.sim.end_time;
  n.integrator_kind = static_cast<int>(o.sim.integrator.kind);
  n.max_step = o.sim.integrator.max_step;
  n.rel_tol = o.sim.integrator.rel_tol;
  n.abs_tol = o.sim.integrator.abs_tol;
  n.min_step = o.sim.integrator.min_step;
  n.seed = o.sim.seed;
  n.max_events = o.sim.max_events;
  n.full_refresh = o.sim.full_refresh ? 1 : 0;
  n.reserve_events = o.sim.reserve_events;
  n.reserve_signals = o.sim.reserve_signals;
  n.reserve_queue = o.sim.reserve_queue;

  RunResult r;
  std::size_t events = 0;
  char err[1024] = {0};
  const int rc = mod.run(&n, &r.trace, &events, err, sizeof err);
  if (rc != 0) {
    // A loaded module failing is a model-semantic error (max_events, a
    // sampler misbehaving, ...) that the interpreter would throw too.
    throw std::runtime_error(err[0] != '\0' ? err
                                            : "native model: run failed");
  }
  r.events_dispatched = events;
  r.used = Kind::kNative;
  count(o.metrics, "backend.native.runs");
  return r;
}

/// The native attempt, shared by run() and run_ir(). Returns the result on
/// success; on any non-semantic obstacle sets `reason` and returns nothing.
template <class MakeIr>
std::optional<RunResult> try_native(MakeIr&& make_ir, const RunOptions& o,
                                    std::string& reason) {
  if (o.sim.tracer != nullptr || o.sim.metrics != nullptr) {
    reason = "observability: tracer/metrics attached to sim options";
    return std::nullopt;
  }
  if (o.sim.legacy_integrator_alloc || o.sim.legacy_event_queue) {
    reason = "legacy_baseline: legacy_* cost model requested";
    return std::nullopt;
  }
  if (native_disabled()) {
    reason = "disabled: ECSIM_NATIVE_DISABLE is set";
    return std::nullopt;
  }
  const ir::Model* irm = nullptr;
  try {
    irm = make_ir();
  } catch (const std::exception& ex) {
    reason = std::string("codegen: lowering to IR failed: ") + ex.what();
    return std::nullopt;
  }
  if (!ir::fully_described(*irm)) {
    reason = "opaque: model contains blocks the IR cannot regenerate";
    return std::nullopt;
  }
  std::string source;
  try {
    source = generate_native_source(*irm);
  } catch (const std::exception& ex) {
    reason = std::string("codegen: ") + ex.what();
    return std::nullopt;
  }
  const NativeModule* mod = nullptr;
  try {
    mod = &load_native_module(*irm, source);
  } catch (const std::exception& ex) {
    reason = std::string("toolchain: ") + ex.what();
    return std::nullopt;
  }
  return run_native_module(*mod, o);
}

std::string category_of(const std::string& reason) {
  const auto colon = reason.find(':');
  return colon == std::string::npos ? reason : reason.substr(0, colon);
}

}  // namespace

RunResult run(sim::Model& model, const RunOptions& opts) {
  if (opts.kind == Kind::kInterp) return run_interp(model, opts);
  std::string reason;
  ir::Model irm;
  auto make_ir = [&]() -> const ir::Model* {
    irm = sim::build_ir(model);
    return &irm;
  };
  if (auto r = try_native(make_ir, opts, reason)) return std::move(*r);
  count(opts.metrics, "backend.fallback." + category_of(reason));
  RunResult r = run_interp(model, opts);
  r.fallback_reason = reason;
  return r;
}

RunResult run_ir(const ir::Model& irm, const RunOptions& opts) {
  std::string reason;
  if (opts.kind == Kind::kNative) {
    auto make_ir = [&]() -> const ir::Model* { return &irm; };
    if (auto r = try_native(make_ir, opts, reason)) return std::move(*r);
    count(opts.metrics, "backend.fallback." + category_of(reason));
  }
  sim::Model model = blocks::to_model(irm);
  RunResult r = run_interp(model, opts);
  r.fallback_reason = reason;
  return r;
}

}  // namespace ecsim::backend
