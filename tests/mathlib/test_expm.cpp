#include "mathlib/expm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathlib/linalg.hpp"
#include "mathlib/rng.hpp"

namespace ecsim::math {
namespace {

TEST(Expm, ZeroMatrixGivesIdentity) {
  EXPECT_TRUE(approx_equal(expm(Matrix::zeros(3, 3)), Matrix::identity(3)));
}

TEST(Expm, DiagonalMatrix) {
  const Matrix e = expm(Matrix::diag({1.0, -2.0}));
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-12);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-14);
}

TEST(Expm, NilpotentClosedForm) {
  // exp([[0,1],[0,0]]) = [[1,1],[0,1]]
  Matrix n{{0.0, 1.0}, {0.0, 0.0}};
  EXPECT_TRUE(approx_equal(expm(n), Matrix{{1.0, 1.0}, {0.0, 1.0}}, 1e-13));
}

TEST(Expm, RotationMatrix) {
  // exp([[0,-t],[t,0]]) = [[cos t, -sin t],[sin t, cos t]]
  const double t = 1.3;
  Matrix a{{0.0, -t}, {t, 0.0}};
  const Matrix e = expm(a);
  EXPECT_NEAR(e(0, 0), std::cos(t), 1e-12);
  EXPECT_NEAR(e(0, 1), -std::sin(t), 1e-12);
  EXPECT_NEAR(e(1, 0), std::sin(t), 1e-12);
}

TEST(Expm, LargeNormUsesScaling) {
  Matrix a{{0.0, -10.0}, {10.0, 0.0}};
  const Matrix e = expm(a);
  EXPECT_NEAR(e(0, 0), std::cos(10.0), 1e-9);
  EXPECT_NEAR(e(1, 0), std::sin(10.0), 1e-9);
}

TEST(Expm, SemigroupProperty) {
  // e^{A} * e^{A} == e^{2A}
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    Matrix a(3, 3);
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    const Matrix e1 = expm(a);
    const Matrix e2 = expm(a * 2.0);
    EXPECT_TRUE(approx_equal(e1 * e1, e2, 1e-9));
  }
}

TEST(Expm, InverseIsExpOfNegation) {
  Matrix a{{-0.5, 1.0}, {0.2, -1.5}};
  const Matrix prod = expm(a) * expm(-a);
  EXPECT_TRUE(approx_equal(prod, Matrix::identity(2), 1e-12));
}

TEST(Expm, NonSquareThrows) {
  EXPECT_THROW(expm(Matrix(2, 3)), std::invalid_argument);
}

}  // namespace
}  // namespace ecsim::math
