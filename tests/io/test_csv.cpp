#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace ecsim::io {
namespace {

TEST(Csv, SingleSeries) {
  const control::Series s{{0.0, 1.0}, {0.5, 2.0}};
  const std::string csv = series_csv(s, "pos");
  EXPECT_NE(csv.find("t,pos\n"), std::string::npos);
  EXPECT_NE(csv.find("0,1\n"), std::string::npos);
  EXPECT_NE(csv.find("0.5,2\n"), std::string::npos);
}

TEST(Csv, MultiSeriesPadsShorter) {
  const control::Series y{{0.0, 1.0}, {1.0, 2.0}, {2.0, 3.0}};
  const control::Series u{{0.0, -1.0}};
  const std::string csv = multi_series_csv({y, u}, {"y", "u"});
  EXPECT_NE(csv.find("t,y,u\n"), std::string::npos);
  EXPECT_NE(csv.find("0,1,-1\n"), std::string::npos);
  EXPECT_NE(csv.find("2,3,\n"), std::string::npos);  // padded cell
  // Note the explicit vectors: braced arguments would otherwise resolve to
  // the single-series overload through string's iterator-pair constructor.
  EXPECT_THROW(multi_series_csv(std::vector<control::Series>{y},
                          std::vector<std::string>{"a", "b"}),
               std::invalid_argument);
}

TEST(Csv, LatencySeries) {
  latency::LatencySeries s =
      latency::analyze_instants("act", {0.002, 0.012}, 0.01);
  const std::string csv = latency_csv(s);
  EXPECT_NE(csv.find("k,instant,latency\n"), std::string::npos);
  EXPECT_NE(csv.find("0,0.002,0.002\n"), std::string::npos);
  EXPECT_NE(csv.find("1,0.012,0.002"), std::string::npos);
}

TEST(Csv, SaveTextRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ecsim_csv_test.csv";
  ASSERT_TRUE(save_text(path, "hello,1\n"));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "hello,1");
  std::remove(path.c_str());
  EXPECT_FALSE(save_text("/nonexistent-dir/x/y.csv", "x"));
}

}  // namespace
}  // namespace ecsim::io
