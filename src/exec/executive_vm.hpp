// Executive VM: executes the generated distributed executives (per-processor
// instruction sequences + per-medium communicator sequences) with
// *actual* execution times that may be below WCET and with run-time branch
// choices for conditional operations. Used to validate the claims the paper
// makes about generated code (deadlock freedom, preserved total order) and
// to produce the sampling/actuation instants that exhibit jitter.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "aaa/codegen.hpp"
#include "fault/fault_plan.hpp"
#include "mathlib/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace ecsim::exec {

using aaa::AlgorithmGraph;
using aaa::ArchitectureGraph;
using aaa::GeneratedCode;
using aaa::kNone;
using aaa::Operation;
using aaa::OpId;
using aaa::ProcId;
using aaa::Schedule;
using aaa::Time;

/// Actual execution time of one operation instance given its WCET on the
/// host processor. Default: exactly WCET.
using ExecTimeFn =
    std::function<Time(const Operation&, Time wcet, math::Rng&)>;
/// Branch selector for conditional operations (per iteration).
using BranchFn =
    std::function<std::size_t(const Operation&, std::size_t iter, math::Rng&)>;

struct VmOptions {
  /// Number of schedule iterations (periods) to execute.
  std::size_t iterations = 1;
  /// Sensor release period: a sensor op of iteration k cannot start before
  /// k * period. 0 disables periodic release (free-running).
  Time period = 0.0;
  /// Seed of the run's math::Rng (execution-time and branch draws).
  std::uint64_t seed = 1;
  ExecTimeFn exec_time;     ///< null => exactly WCET
  BranchFn branch_chooser;  ///< null => always branch 0
  /// Declarative fault schedule (DESIGN.md §3.5). Empty = fault-free and
  /// bit-identical to a run without a plan. Faults apply at comm/op
  /// dispatch: message loss/delay/duplication on the media, transient
  /// execution-time overruns, node stop/restart windows. Every injection
  /// decision is a pure function of (plan seed, fault, entity, iteration),
  /// so replays with the same seed produce bit-identical traces.
  fault::FaultPlan fault_plan;
  /// What a Recv does when its message is lost: proceed on the held sample
  /// at the would-be delivery instant (kHoldLastSample), or skip the rest of
  /// the iteration's computations (kSkipCycle). Either way the executive
  /// stays live — lost messages never deadlock the VM.
  fault::DegradationPolicy fault_policy =
      fault::DegradationPolicy::kHoldLastSample;
  /// Observability (borrowed, may be null). The tracer receives every
  /// operation instance as a sim-time span on its processor's track and
  /// every communication on its medium's track, plus a wall-clock "vm.run"
  /// span; the registry receives exec.ops_executed / exec.comms_executed /
  /// exec.wcet_lookups counters.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Prepended to "proc/..." and "medium/..." track names so several VM
  /// runs (e.g. a WCET run and an actual-times run) can share one trace
  /// file without their tracks colliding.
  std::string track_prefix;
};

struct OpInstance {
  OpId op = 0;
  std::size_t iteration = 0;
  ProcId proc = 0;
  Time start = 0.0;
  Time end = 0.0;
  std::size_t branch = kNone;  // taken branch for conditional ops
};

struct CommInstance {
  std::size_t comm = 0;  // index into Schedule::comms()
  std::size_t iteration = 0;
  Time start = 0.0;
  Time end = 0.0;
};

struct VmResult {
  std::vector<OpInstance> ops;
  std::vector<CommInstance> comms;
  bool deadlock = false;
  std::string deadlock_info;

  /// Every applied fault, sorted by (iteration, at, kind, comm, op) so the
  /// report order is independent of the interpreter interleaving.
  std::vector<fault::Injection> injections;
  std::size_t messages_lost = 0;        ///< transfers dropped
  std::size_t messages_delayed = 0;     ///< transfers with extra latency
  std::size_t messages_duplicated = 0;  ///< transfers retransmitted
  std::size_t op_overruns = 0;          ///< op instances with inflated time
  std::size_t node_stalls = 0;          ///< op starts deferred past an outage
  std::size_t stale_reads = 0;          ///< Recvs that held the last sample
  std::size_t cycles_skipped = 0;       ///< iterations abandoned (kSkipCycle)

  /// Completion instants of one operation, ordered by iteration.
  std::vector<Time> completions(OpId op) const;
  /// Start instants of one operation, ordered by iteration.
  std::vector<Time> starts(OpId op) const;
};

/// Run the executives. Never throws on deadlock — reports it in the result
/// so tests and experiments can assert on it.
VmResult run_executives(const AlgorithmGraph& alg,
                        const ArchitectureGraph& arch, const Schedule& sched,
                        const GeneratedCode& code, const VmOptions& opts);

/// WCET-fraction sampler: actual = wcet * uniform(lo_frac, 1.0).
ExecTimeFn uniform_fraction_exec_time(double lo_frac);
/// Uniformly random branch.
BranchFn uniform_branch_chooser();
/// Always the branch with the largest WCET — what the static schedule
/// reserves; use for exact-WCET conformance runs of conditional algorithms.
BranchFn worst_case_branch_chooser();

}  // namespace ecsim::exec
