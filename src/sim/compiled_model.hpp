// CompiledModel: the immutable compile artifact sitting between the
// structural Model and the executing Simulator. Compilation flattens the
// diagram into index tables so the simulation hot path is all contiguous
// loads:
//  - one output arena layout: every (block, output port) owns a contiguous
//    [offset, offset+width) slice of a single double array (the Simulator
//    allocates the array; a zero prefix backs unconnected inputs);
//  - an input-span table: every (block, input port) resolves to the
//    producer's arena slice (or the zero prefix) in one indexed load;
//  - packed continuous-state offsets and the list of stateful blocks;
//  - flattened event fan-out (CSR over event wires);
//  - the feedthrough topological order, plus — the semantic core — per-block
//    *feedthrough cones*: for each block b, the topologically ordered
//    downstream direct-feedthrough closure of b (b included). After an event
//    is dispatched on b only cone(b) needs re-evaluation; between events only
//    the *dynamic cone* (union of the cones of blocks whose outputs drift
//    with time or continuous state) needs re-evaluation. This is what turns
//    per-event refresh cost from O(model) into O(affected blocks).
//
// Since PR 6 the layout derivation itself lives in ir::finalize (DESIGN.md
// §3.6): compiling a model means lowering it to ir::Model (sim::build_ir)
// and *adopting* the finalized layout tables. CompiledModel keeps the IR it
// was built from, so the interpreter and the native code generator provably
// execute the same artifact (same hash, same tables).
//
// A CompiledModel is immutable after construction and holds no run state, so
// one compile can back any number of Simulator runs. The Model must outlive
// it and must not be structurally modified afterwards.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "sim/model.hpp"
#include "sim/port.hpp"

namespace ecsim::sim {

/// Addresses one contiguous slice of the output arena.
struct ArenaSlice {
  std::size_t offset = 0;
  std::size_t width = 0;
};

class CompiledModel {
 public:
  /// Compiles `model` through the IR pipeline: sim::build_ir lowers and
  /// ir::finalize derives the layout (throws std::invalid_argument naming
  /// the offending blocks on wire width mismatches, std::runtime_error on
  /// algebraic loops); the finalized tables are adopted verbatim.
  explicit CompiledModel(Model& model);

  /// Adopts an already-finalized IR of the same model (compile once, share
  /// between backends). Throws std::invalid_argument if `irm` does not
  /// structurally match `model`.
  CompiledModel(Model& model, ir::Model irm);

  Model& model() const { return model_; }
  std::size_t num_blocks() const { return num_blocks_; }

  /// The finalized IR this compile adopted its layout from.
  const ir::Model& ir() const { return *ir_; }
  const std::shared_ptr<const ir::Model>& ir_ptr() const { return ir_; }

  /// Block-index -> name table, interned once at compile. The Simulator
  /// installs it into the Trace so event records carry only indices and
  /// names are resolved on demand.
  const std::vector<std::string>& block_names() const { return block_names_; }

  // --- flat arena layout ----------------------------------------------------

  /// Total arena length in doubles (zero prefix + all output slices).
  std::size_t arena_size() const { return arena_size_; }

  ArenaSlice output_slice(std::size_t block, std::size_t port) const {
    bounds_check(port, out_base_[block + 1] - out_base_[block],
                 "CompiledModel: output port out of range");
    return out_slices_[out_base_[block] + port];
  }

  /// The arena slice a data input reads: its producer's output slice, or a
  /// slice of the never-written zero prefix when unconnected.
  ArenaSlice input_slice(std::size_t block, std::size_t port) const {
    bounds_check(port, in_base_[block + 1] - in_base_[block],
                 "CompiledModel: input port out of range");
    return in_slices_[in_base_[block] + port];
  }

  // --- packed continuous state ----------------------------------------------

  std::size_t state_offset(std::size_t block) const {
    return state_offset_[block];
  }
  std::size_t total_state() const { return total_state_; }
  /// Blocks with continuous_state_size() > 0, in block-index order.
  const std::vector<std::size_t>& stateful_blocks() const {
    return stateful_blocks_;
  }

  // --- evaluation orders ----------------------------------------------------

  /// All blocks in feedthrough-topological order (the full-network sweep).
  const std::vector<std::size_t>& eval_order() const { return eval_order_; }

  /// Downstream direct-feedthrough closure of `block` (itself included),
  /// topologically ordered. Refreshing exactly these blocks restores output
  /// consistency after `block`'s outputs or discrete state changed.
  std::span<const std::size_t> cone(std::size_t block) const {
    return {cone_blocks_.data() + cone_base_[block],
            cone_base_[block + 1] - cone_base_[block]};
  }

  /// Union of the cones of every block whose outputs drift between events —
  /// blocks with continuous state and blocks declaring
  /// output_depends_on_time() — topologically ordered. Refreshing exactly
  /// these blocks restores consistency after time advances or the continuous
  /// state moves (integration stages included).
  const std::vector<std::size_t>& dynamic_cone() const { return dynamic_cone_; }

  // --- event fan-out --------------------------------------------------------

  /// Destinations wired to (block, event_out).
  std::span<const PortRef> event_sinks(std::size_t block,
                                       std::size_t event_out) const {
    bounds_check(event_out, sink_base_[block + 1] - sink_base_[block],
                 "CompiledModel: event output out of range");
    const std::size_t slot = sink_base_[block] + event_out;
    return {event_sinks_.data() + sink_ptr_[slot],
            sink_ptr_[slot + 1] - sink_ptr_[slot]};
  }

 private:
  static void bounds_check(std::size_t index, std::size_t count,
                           const char* what);

  /// Copies the finalized layout tables out of *ir_ into the flat members
  /// the hot path reads.
  void adopt();

  Model& model_;
  std::shared_ptr<const ir::Model> ir_;
  std::size_t num_blocks_ = 0;
  std::vector<std::string> block_names_;

  std::size_t arena_size_ = 0;
  std::vector<std::size_t> out_base_;   // [num_blocks + 1]
  std::vector<ArenaSlice> out_slices_;  // out_base_[b] + port
  std::vector<std::size_t> in_base_;    // [num_blocks + 1]
  std::vector<ArenaSlice> in_slices_;   // in_base_[b] + port

  std::vector<std::size_t> state_offset_;  // [num_blocks]
  std::size_t total_state_ = 0;
  std::vector<std::size_t> stateful_blocks_;

  std::vector<std::size_t> eval_order_;  // full feedthrough topo order
  std::vector<std::size_t> topo_pos_;    // inverse of eval_order_
  std::vector<std::size_t> cone_base_;   // [num_blocks + 1]
  std::vector<std::size_t> cone_blocks_;
  std::vector<std::size_t> dynamic_cone_;

  std::vector<std::size_t> sink_base_;  // [num_blocks + 1]
  std::vector<std::size_t> sink_ptr_;   // CSR over event_sinks_
  std::vector<PortRef> event_sinks_;
};

}  // namespace ecsim::sim
