// Toolchain half of the native backend (DESIGN.md §3.6): compile a generated
// translation unit with the host C++ compiler into a shared object, cache it
// keyed on (IR hash, ABI version, toolchain fingerprint), dlopen it and
// resolve the C ABI of native_abi.hpp. Modules stay loaded for the process
// lifetime (generated code may be referenced by traces; dlclose buys
// nothing and invites stale-pointer bugs).
//
// Environment knobs:
//  - ECSIM_NATIVE_CXX     overrides the compiler baked in at build time;
//  - ECSIM_NATIVE_CACHE   overrides the .so cache directory;
//  - ECSIM_NATIVE_DISABLE nonempty forces the dispatcher's interpreter
//    fallback without ever invoking the toolchain.
#pragma once

#include <string>

#include "backend/native_abi.hpp"
#include "ir/ir.hpp"

namespace ecsim::backend {

/// A loaded model module: resolved entry points plus the artifact path
/// (useful in tests and diagnostics).
struct NativeModule {
  EcsimNativeAbiFn abi = nullptr;
  EcsimNativeHashFn hash = nullptr;
  EcsimNativeRunFn run = nullptr;
  std::string so_path;
};

/// True when ECSIM_NATIVE_DISABLE is set non-empty: the dispatcher must not
/// attempt generation or compilation at all.
bool native_disabled();

/// Compiles `source` (the output of generate_native_source(m)) and loads it.
/// Hits the cache when an artifact for this (IR hash, ABI, toolchain) tuple
/// already exists. Throws std::runtime_error with a one-line reason on any
/// failure: compiler missing or erroring (the tail of its log is included),
/// dlopen/dlsym failure, or an ABI/hash mismatch in the loaded module.
/// The returned reference stays valid for the process lifetime.
const NativeModule& load_native_module(const ir::Model& m,
                                       const std::string& source);

}  // namespace ecsim::backend
