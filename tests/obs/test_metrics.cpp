#include "obs/metrics.hpp"

#include <gtest/gtest.h>

namespace ecsim::obs {
namespace {

TEST(Metrics, CounterAddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeMaxOfRatchetsUpward) {
  Gauge g;
  g.max_of(3.0);
  g.max_of(1.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.max_of(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.set(2.0);  // plain set overrides
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Metrics, HistogramPowerOfTwoBuckets) {
  Histogram h;
  h.observe(1.0);   // bucket 0 (<= 1)
  h.observe(2.0);   // bucket 1 ((1, 2])
  h.observe(3.0);   // bucket 2 ((2, 4])
  h.observe(4.0);   // bucket 2
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(3), 8.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST(Metrics, RegistryReturnsStableInstruments) {
  MetricsRegistry r;
  Counter& a = r.counter("sim.events_dispatched");
  a.add(5);
  // Same name -> same instrument; address stability is the hot-path contract.
  EXPECT_EQ(&r.counter("sim.events_dispatched"), &a);
  EXPECT_EQ(r.counter("sim.events_dispatched").value(), 5u);
  Gauge& g = r.gauge("sim.queue_high_water");
  EXPECT_EQ(&r.gauge("sim.queue_high_water"), &g);
  Histogram& h = r.histogram("sim.cone_refresh_size");
  EXPECT_EQ(&r.histogram("sim.cone_refresh_size"), &h);
}

TEST(Metrics, JsonSnapshotShape) {
  MetricsRegistry r;
  r.counter("ev").add(3);
  r.gauge("hwm").max_of(9.0);
  r.histogram("sizes").observe(2.0);
  const std::string j = r.to_json();
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"ev\": 3"), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"hwm\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("\"sizes\""), std::string::npos);
  EXPECT_NE(j.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(j.find("\"le\""), std::string::npos);
}

TEST(Metrics, CsvSnapshotShape) {
  MetricsRegistry r;
  r.counter("ev").add(3);
  r.histogram("sizes").observe(2.0);
  const std::string csv = r.to_csv();
  EXPECT_NE(csv.find("kind,name,count,sum,min,max,mean"), std::string::npos);
  EXPECT_NE(csv.find("counter,ev,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,sizes,1,"), std::string::npos);
}

TEST(Metrics, ResetZeroesButKeepsRegistration) {
  MetricsRegistry r;
  Counter& c = r.counter("n");
  c.add(10);
  r.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&r.counter("n"), &c);
}

}  // namespace
}  // namespace ecsim::obs
