// Deterministic parallel batch execution (DESIGN.md §3.3): run n independent
// jobs on a TaskPool and produce results that are bit-identical to the
// serial run, regardless of thread count or scheduling.
//
// The determinism recipe, applied uniformly to every consumer (sweeps,
// Monte Carlo trials, adequation candidate scoring):
//  1. each task builds its own Model/Simulator/ExecutiveVm — no shared
//     mutable state between tasks;
//  2. each task draws from its own decorrelated math::Rng stream, derived
//     from the batch seed by xoshiro256** jumps indexed by *task id*, never
//     by worker or arrival order;
//  3. each task writes into a per-task obs::MetricsRegistry / obs::Tracer
//     shard; the shards are merged into the caller's aggregates in
//     task-index order after the batch drains;
//  4. results land in a pre-sized slot vector indexed by task id — the
//     reduction is the submission order, not the completion order.
//
// threads == 1 short-circuits to a plain serial loop over the same
// machinery, which doubles as the reference path for the bit-equality
// property tests and benches.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mathlib/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "par/task_pool.hpp"

namespace ecsim::par {

/// Everything a task may use without touching shared state.
struct TaskContext {
  std::size_t index = 0;   // task id == result slot == reduction position
  std::size_t worker = 0;  // executing worker (scratch only — NOT for RNG!)
  math::Rng rng;           // decorrelated stream for this task
  /// Per-task observability shards; null unless the batch has a merge
  /// destination attached in BatchOptions.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

struct BatchOptions {
  /// Worker threads; 0 = TaskPool::default_threads()
  /// (hardware_concurrency, ECSIM_THREADS env override), 1 = serial.
  std::size_t threads = 0;
  /// Root seed for the per-task stream family.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  /// Merge destinations (borrowed, may be null). When set, every task gets
  /// a private shard and the shards are merged here in task-index order.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  /// Ring capacity of each per-task tracer shard (56 B/slot; keep modest
  /// for large batches).
  std::size_t tracer_capacity = 1u << 10;
  /// Reuse an existing pool instead of creating one per runner. Borrowed;
  /// `threads` is ignored when set (the pool's worker count wins).
  TaskPool* pool = nullptr;
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions opts = {});

  /// Worker threads the batch will actually use.
  std::size_t threads() const { return threads_; }

  /// Run fn over [0, n) and collect its returns in task-index order.
  /// R must be default-constructible and movable. Rethrows the
  /// lowest-indexed task exception after the batch drains (obs shards of
  /// completed tasks are still merged).
  template <typename R>
  std::vector<R> map(std::size_t n,
                     const std::function<R(TaskContext&)>& fn) {
    std::vector<R> results(n);
    run(n, [&](TaskContext& ctx) { results[ctx.index] = fn(ctx); });
    return results;
  }

  /// Void flavour of map: fn writes its output through TaskContext/capture.
  void run(std::size_t n, const std::function<void(TaskContext&)>& fn);

 private:
  BatchOptions opts_;
  std::size_t threads_ = 1;
  std::unique_ptr<TaskPool> owned_pool_;
  TaskPool* pool_ = nullptr;  // null in serial mode
};

}  // namespace ecsim::par
