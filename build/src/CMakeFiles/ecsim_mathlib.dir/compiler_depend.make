# Empty compiler generated dependencies file for ecsim_mathlib.
# This may be replaced when dependencies are built.
