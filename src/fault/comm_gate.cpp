#include "fault/comm_gate.hpp"

#include "mathlib/rng.hpp"

namespace ecsim::fault {

namespace {

// splitmix64 finalizer — must stay bit-identical to fault_plan.cpp's mix()
// (the decision streams of the VM, the interpreter and the native backend
// all hash the same coordinates).
std::uint64_t gate_mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

CommGateAction comm_gate_decide(const CommGate& gate, std::size_t k) {
  bool lost = false;
  double extra_delay = 0.0;
  std::size_t extra_copies = 0;
  const double nominal = static_cast<double>(k) * gate.period;
  for (const CommGateEntry& e : gate.entries) {
    if (nominal < e.t_start || nominal >= e.t_stop) continue;
    math::Rng rng(gate_mix(gate.seed ^ gate_mix(0x6661756c74ULL + e.fault) ^
                           gate_mix(0x656e74ULL + gate.comm_index) ^
                           gate_mix(k)));
    if (rng.uniform() >= e.probability) continue;
    switch (e.kind) {
      case CommGateEntry::Kind::kLoss:
        lost = true;
        break;
      case CommGateEntry::Kind::kDelay:
        extra_delay += e.delay;
        break;
      case CommGateEntry::Kind::kDuplicate:
        extra_copies += e.extra_copies;
        break;
    }
  }
  if (lost) return {true, 0.0};
  return {false, extra_delay + static_cast<double>(extra_copies) *
                                   gate.transfer_duration};
}

}  // namespace ecsim::fault
