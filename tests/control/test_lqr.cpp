#include "control/lqr.hpp"

#include <gtest/gtest.h>

#include "control/c2d.hpp"
#include "mathlib/linalg.hpp"

namespace ecsim::control {
namespace {

TEST(Dlqr, StabilizesDoubleIntegrator) {
  const StateSpace ct = make_state_system(Matrix{{0.0, 1.0}, {0.0, 0.0}},
                                          Matrix{{0.0}, {1.0}});
  const StateSpace dt = c2d(ct, 0.1);
  const LqrResult r = dlqr(dt, Matrix::identity(2), Matrix{{1.0}});
  EXPECT_LT(math::spectral_radius(closed_loop(dt.a, dt.b, r.k)), 1.0);
}

TEST(Dlqr, GainSatisfiesOptimalityCondition) {
  const StateSpace ct = make_state_system(
      Matrix{{0.0, 1.0}, {-1.0, -0.2}}, Matrix{{0.0}, {1.0}});
  const StateSpace dt = c2d(ct, 0.05);
  const Matrix q = Matrix::diag({10.0, 1.0});
  const Matrix r{{0.5}};
  const LqrResult res = dlqr(dt, q, r);
  // K = (R + B'PB)^-1 B'PA  <=>  (R + B'PB) K = B'PA
  const Matrix lhs = (r + dt.b.transpose() * res.p * dt.b) * res.k;
  const Matrix rhs = dt.b.transpose() * res.p * dt.a;
  EXPECT_TRUE(math::approx_equal(lhs, rhs, 1e-9));
}

TEST(Dlqr, HigherStateWeightGivesFasterClosedLoop) {
  const StateSpace ct = make_state_system(Matrix{{0.0, 1.0}, {0.0, -1.0}},
                                          Matrix{{0.0}, {1.0}});
  const StateSpace dt = c2d(ct, 0.02);
  const LqrResult cheap = dlqr(dt, Matrix::identity(2), Matrix{{10.0}});
  const LqrResult aggressive = dlqr(dt, 100.0 * Matrix::identity(2),
                                    Matrix{{0.01}});
  const double rho_cheap =
      math::spectral_radius(closed_loop(dt.a, dt.b, cheap.k));
  const double rho_aggr =
      math::spectral_radius(closed_loop(dt.a, dt.b, aggressive.k));
  EXPECT_LT(rho_aggr, rho_cheap);
}

TEST(Dlqr, RejectsContinuousSystem) {
  const StateSpace ct = make_state_system(Matrix{{0.0}}, Matrix{{1.0}});
  EXPECT_THROW(dlqr(ct, Matrix{{1.0}}, Matrix{{1.0}}), std::invalid_argument);
}

TEST(ReferenceGain, UnitDcGainAchieved) {
  StateSpace ct = make_state_system(Matrix{{0.0, 1.0}, {0.0, -1.0}},
                                    Matrix{{0.0}, {1.0}});
  ct.c = Matrix{{1.0, 0.0}};
  ct.d = Matrix{{0.0}};
  const StateSpace dt = c2d(ct, 0.05);
  const LqrResult r = dlqr(dt, Matrix::diag({10.0, 0.1}), Matrix{{0.1}});
  const double nbar = reference_gain(dt, r.k);
  // Steady state: x = (I - Acl)^-1 B nbar, y = C x must equal 1.
  const Matrix acl = closed_loop(dt.a, dt.b, r.k);
  const Matrix x_ss =
      math::solve(Matrix::identity(2) - acl, dt.b * Matrix{{nbar}});
  EXPECT_NEAR((dt.c * x_ss)(0, 0), 1.0, 1e-9);
}

TEST(ReferenceGain, RequiresSiso) {
  StateSpace dt = make_state_system(Matrix{{0.5, 0.0}, {0.0, 0.5}},
                                    Matrix{{1.0, 0.0}, {0.0, 1.0}});
  dt.discrete = true;
  dt.ts = 0.1;
  EXPECT_THROW(reference_gain(dt, Matrix::zeros(2, 2)), std::invalid_argument);
}

}  // namespace
}  // namespace ecsim::control
