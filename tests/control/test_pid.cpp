#include "control/pid.hpp"

#include <gtest/gtest.h>

#include "mathlib/linalg.hpp"
#include "mathlib/riccati.hpp"

namespace ecsim::control {
namespace {

TEST(ZieglerNichols, ClassicRatios) {
  const PidGains g = ziegler_nichols(10.0, 2.0);
  EXPECT_DOUBLE_EQ(g.kp, 6.0);
  EXPECT_DOUBLE_EQ(g.ki, 6.0);
  EXPECT_DOUBLE_EQ(g.kd, 1.5);
  EXPECT_THROW(ziegler_nichols(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ziegler_nichols(1.0, -1.0), std::invalid_argument);
}

TEST(ImcPid, LongerLambdaGivesSmallerGain) {
  const PidGains fast = imc_pid(2.0, 5.0, 0.5, 1.0);
  const PidGains slow = imc_pid(2.0, 5.0, 0.5, 5.0);
  EXPECT_GT(fast.kp, slow.kp);
  EXPECT_THROW(imc_pid(0.0, 1.0, 0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(imc_pid(1.0, 1.0, 0.1, 0.0), std::invalid_argument);
}

TEST(PidToSs, ProportionalOnlyIsPureFeedthrough) {
  PidGains g;
  g.kp = 4.0;
  g.ki = 0.0;
  g.kd = 0.0;
  const StateSpace sys = pid_to_ss(g, 0.01);
  // No derivative term: D reduces to kp; integrator state never fed.
  EXPECT_NEAR(sys.d(0, 0), 4.0, 1e-12);
  EXPECT_NEAR(sys.b(0, 0), 0.0, 1e-12);
}

TEST(PidToSs, IntegratorRampsLikeTheRecurrence) {
  PidGains g;
  g.kp = 0.0;
  g.ki = 2.0;
  g.kd = 0.0;
  const double ts = 0.1;
  const StateSpace sys = pid_to_ss(g, ts);
  // Iterate x+ = Ax + B e, u = Cx + D e with e = 1 for 5 steps; compare to
  // the recurrence u_k = ki*ts*k (integral before current step).
  std::vector<double> x(sys.order(), 0.0);
  for (int k = 0; k < 5; ++k) {
    const double u = math::dot(sys.c.row(0), x) + sys.d(0, 0);
    EXPECT_NEAR(u, 2.0 * ts * k, 1e-12);
    std::vector<double> xn(sys.order(), 0.0);
    for (std::size_t i = 0; i < sys.order(); ++i) {
      xn[i] = math::dot(sys.a.row(i), x) + sys.b(i, 0);
    }
    x = xn;
  }
}

TEST(PidToSs, DerivativeFilterDecays) {
  PidGains g;
  g.kp = 0.0;
  g.ki = 0.0;
  g.kd = 1.0;
  g.n = 10.0;
  const StateSpace sys = pid_to_ss(g, 0.01);
  // Filtered-derivative pole alpha = 1/(1 + n ts) in (0,1). The realization
  // also carries the (unused here) integrator state at exactly 1, so the
  // spectral radius is 1, not less.
  const double alpha = 1.0 / (1.0 + g.n * 0.01);
  EXPECT_NEAR(sys.a(1, 1), alpha, 1e-12);
  EXPECT_NEAR(math::spectral_radius(sys.a), 1.0, 1e-12);
}

TEST(PidToSs, Validation) {
  EXPECT_THROW(pid_to_ss(PidGains{}, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace ecsim::control
