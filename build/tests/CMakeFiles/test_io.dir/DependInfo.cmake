
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/io/test_csv.cpp" "tests/CMakeFiles/test_io.dir/io/test_csv.cpp.o" "gcc" "tests/CMakeFiles/test_io.dir/io/test_csv.cpp.o.d"
  "/root/repo/tests/io/test_dot.cpp" "tests/CMakeFiles/test_io.dir/io/test_dot.cpp.o" "gcc" "tests/CMakeFiles/test_io.dir/io/test_dot.cpp.o.d"
  "/root/repo/tests/io/test_spec.cpp" "tests/CMakeFiles/test_io.dir/io/test_spec.cpp.o" "gcc" "tests/CMakeFiles/test_io.dir/io/test_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ecsim_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_blocks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_plants.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_aaa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_latency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_mathlib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
