#include <gtest/gtest.h>

#include "control/c2d.hpp"
#include "control/lqr.hpp"
#include "mathlib/linalg.hpp"
#include "plants/coupled_tanks.hpp"
#include "plants/dc_servo.hpp"
#include "plants/inverted_pendulum.hpp"
#include "plants/quarter_car.hpp"
#include "plants/two_mass.hpp"

namespace ecsim::plants {
namespace {

using control::is_controllable;
using control::is_observable;
using control::StateSpace;

TEST(DcServo, MatchesTransferFunction) {
  const StateSpace s = dc_servo();
  EXPECT_EQ(s.order(), 2u);
  // Poles at 0 and -1/tau.
  const auto eigs = math::eigenvalues(s.a);
  double min_re = 0.0, max_re = -10.0;
  for (const auto& l : eigs) {
    min_re = std::min(min_re, l.real());
    max_re = std::max(max_re, l.real());
  }
  EXPECT_NEAR(max_re, 0.0, 1e-12);
  EXPECT_NEAR(min_re, -1.0, 1e-12);
  EXPECT_TRUE(is_controllable(s));
  EXPECT_TRUE(is_observable(s));
  EXPECT_THROW(dc_servo({.gain = 1.0, .tau = 0.0}), std::invalid_argument);
}

TEST(InvertedPendulum, UnstableButStabilizable) {
  const StateSpace s = inverted_pendulum();
  EXPECT_EQ(s.order(), 4u);
  EXPECT_FALSE(s.is_stable());  // upright equilibrium is unstable
  EXPECT_TRUE(is_controllable(s));
  // LQR on the discretized model must stabilize it.
  const StateSpace dt = control::c2d(s, 0.01);
  const auto lqr = control::dlqr(dt, math::Matrix::identity(4),
                                 math::Matrix{{1.0}});
  EXPECT_LT(math::spectral_radius(control::closed_loop(dt.a, dt.b, lqr.k)),
            1.0);
  EXPECT_THROW(inverted_pendulum({.cart_mass = 0.0}), std::invalid_argument);
}

TEST(QuarterCar, StableWithRealisticDamping) {
  const StateSpace s = quarter_car();
  EXPECT_EQ(s.order(), 4u);
  EXPECT_EQ(s.num_inputs(), 2u);   // force + road
  EXPECT_EQ(s.num_outputs(), 2u);  // body disp + suspension deflection
  EXPECT_TRUE(s.is_stable());
  EXPECT_THROW(quarter_car({.sprung_mass = -1.0}), std::invalid_argument);
}

TEST(QuarterCar, StaticGainFromRoadIsUnity) {
  // A constant road elevation shifts the whole car by the same amount:
  // DC gain from zr to zs equals 1. Solve 0 = A x + B_r zr, y = C x.
  const StateSpace s = quarter_car();
  const math::Matrix b_road = s.b.block(0, 1, 4, 1);
  const math::Matrix x_ss = math::solve(-s.a, b_road);  // for zr = 1
  const double body = (s.c * x_ss)(0, 0);
  EXPECT_NEAR(body, 1.0, 1e-9);
}

TEST(CoupledTanks, MonotoneStableCascade) {
  const StateSpace s = coupled_tanks();
  EXPECT_TRUE(s.is_stable());
  // DC gain: pump_gain/(a1) * a1/(a2) = pump_gain / a2.
  const math::Matrix x_ss = math::solve(-s.a, s.b);
  EXPECT_NEAR((s.c * x_ss)(0, 0), 0.1 / 0.04, 1e-9);
  EXPECT_THROW(coupled_tanks({.a1 = 0.0}), std::invalid_argument);
}

TEST(TwoMass, ResonantButStable) {
  const StateSpace s = two_mass();
  EXPECT_EQ(s.order(), 4u);
  // Rigid-body rotation mode (eigenvalue 0) plus damped flexible mode.
  const auto eigs = math::eigenvalues(s.a);
  bool has_oscillatory = false;
  for (const auto& l : eigs) {
    EXPECT_LE(l.real(), 1e-9);
    if (std::abs(l.imag()) > 1.0) has_oscillatory = true;
  }
  EXPECT_TRUE(has_oscillatory);
  EXPECT_TRUE(is_controllable(s));
  EXPECT_THROW(two_mass({.motor_inertia = 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace ecsim::plants
