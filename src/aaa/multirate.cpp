#include "aaa/multirate.hpp"

#include <numeric>
#include <stdexcept>

namespace ecsim::aaa {

std::size_t MultirateSpec::add_op(MultirateOp op) {
  if (op.rate_divisor == 0) {
    throw std::invalid_argument("MultirateSpec: rate_divisor must be >= 1");
  }
  ops.push_back(std::move(op));
  return ops.size() - 1;
}

void MultirateSpec::add_dep(std::size_t from, std::size_t to, double size) {
  if (from >= ops.size() || to >= ops.size()) {
    throw std::out_of_range("MultirateSpec::add_dep: index out of range");
  }
  if (from == to) throw std::invalid_argument("MultirateSpec: self-loop");
  deps.push_back(MultirateDep{from, to, size});
}

std::size_t MultirateSpec::hyperperiod_factor() const {
  std::size_t l = 1;
  for (const MultirateOp& op : ops) l = std::lcm(l, op.rate_divisor);
  return l;
}

std::string instance_name(const std::string& op, std::size_t k) {
  return op + "@" + std::to_string(k);
}

AlgorithmGraph expand_hyperperiod(const MultirateSpec& spec) {
  if (spec.ops.empty()) {
    throw std::invalid_argument("expand_hyperperiod: no operations");
  }
  if (spec.base_period <= 0.0) {
    throw std::invalid_argument("expand_hyperperiod: base_period must be > 0");
  }
  const std::size_t lcm = spec.hyperperiod_factor();
  const Time hyper = spec.base_period * static_cast<Time>(lcm);
  AlgorithmGraph alg(spec.name + "-hyper", hyper);

  // Instance ids: instance_ids[op][k].
  std::vector<std::vector<OpId>> instance_ids(spec.ops.size());
  for (std::size_t oi = 0; oi < spec.ops.size(); ++oi) {
    const MultirateOp& mop = spec.ops[oi];
    const std::size_t count = lcm / mop.rate_divisor;
    for (std::size_t k = 0; k < count; ++k) {
      Operation op;
      op.name = instance_name(mop.name, k);
      op.kind = mop.kind;
      op.wcet = mop.wcet;
      op.bound_processor = mop.bound_processor;
      op.release = static_cast<Time>(k * mop.rate_divisor) * spec.base_period;
      instance_ids[oi].push_back(alg.add_operation(std::move(op)));
    }
  }

  // Sample-and-hold rate conversion: consumer instance j (release
  // j * d_c * base) reads the latest producer instance i with
  // i * d_p <= j * d_c, i.e. i = floor(j * d_c / d_p), clamped to the
  // producer's instance count.
  for (const MultirateDep& dep : spec.deps) {
    const std::size_t d_p = spec.ops[dep.from].rate_divisor;
    const std::size_t d_c = spec.ops[dep.to].rate_divisor;
    const auto& producers = instance_ids[dep.from];
    const auto& consumers = instance_ids[dep.to];
    for (std::size_t j = 0; j < consumers.size(); ++j) {
      const std::size_t i = std::min(j * d_c / d_p, producers.size() - 1);
      alg.add_dependency(producers[i], consumers[j], dep.size);
    }
  }
  return alg;
}

}  // namespace ecsim::aaa
