// Shared scaffolding for the experiment benches: each binary prints its
// experiment tables (the reproduction of a paper figure) and then runs the
// registered google-benchmark cases on the underlying kernels.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>

#include "control/c2d.hpp"
#include "control/delay_compensation.hpp"
#include "control/lqr.hpp"
#include "plants/dc_servo.hpp"
#include "latency/latency.hpp"
#include "translate/cosim.hpp"

namespace ecsim::bench {

/// Standard workload: LQR state feedback on the Cervin DC servo
/// G(s) = 1000/(s(s+1)) at Ts = 10 ms, unit position step over 1 s.
inline translate::LoopSpec servo_loop(double ts = 0.01, double t_end = 1.0) {
  control::StateSpace servo = plants::dc_servo();
  servo.c = math::Matrix::identity(2);
  servo.d = math::Matrix::zeros(2, 1);
  const control::StateSpace servo_d = control::c2d(servo, ts);
  const control::LqrResult lqr = control::dlqr(
      servo_d, math::Matrix::diag({100.0, 0.01}), math::Matrix{{1e-3}});
  control::StateSpace pos = servo_d;
  pos.c = math::Matrix{{1.0, 0.0}};
  pos.d = math::Matrix{{0.0}};
  const double nbar = control::reference_gain(pos, lqr.k);

  translate::LoopSpec spec;
  spec.plant = servo;
  spec.controller = control::state_feedback_controller(lqr.k, nbar, ts);
  spec.ts = ts;
  spec.t_end = t_end;
  spec.ref = 1.0;
  spec.input = translate::ControllerInput::kStateRef;
  return spec;
}

/// Format a performance metric, collapsing diverged (unstable-loop) values
/// to a readable marker instead of astronomical numbers.
inline std::string metric(double v, const char* fmt = "%10.5f",
                          double unstable_above = 1e3) {
  char buf[64];
  if (!(v < unstable_above)) return "  unstable";
  std::snprintf(buf, sizeof buf, fmt, v);
  return std::string(buf);
}

/// Header banner for the experiment output.
inline void banner(const char* exp_id, const char* paper_anchor,
                   const char* description) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n%s\n", exp_id, paper_anchor, description);
  std::printf("================================================================\n\n");
}

/// Print the table, then hand over to google-benchmark.
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ecsim::bench
