// Non-owning callable reference: one (object pointer, trampoline) pair, two
// words, trivially copyable. The steady-state simulation loop hands its
// derivative evaluator to the integrator through this instead of a
// std::function, so per-stage dispatch is a plain indirect call with no
// ownership, no SBO branch and no possibility of a heap-backed target.
//
// Lifetime rule (see DESIGN.md §3.4): a function_ref borrows the callable it
// was constructed from. It is only valid while that callable is alive, so it
// must not be stored beyond the call that received it; pass it down the
// stack, never keep it in a member. Binding a prvalue lambda as a call
// argument is safe (the temporary outlives the full expression).
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace ecsim {

template <typename Signature>
class function_ref;  // undefined; only the R(Args...) partial specialization

template <typename R, typename... Args>
class function_ref<R(Args...)> {
 public:
  function_ref() = delete;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, function_ref> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::string_view — call sites pass lambdas/functors directly.
  function_ref(F&& f) noexcept
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace ecsim
