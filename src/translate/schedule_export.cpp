#include "translate/schedule_export.hpp"

namespace ecsim::translate {

namespace {

std::string comm_label(const aaa::AlgorithmGraph& alg,
                       const aaa::ScheduledComm& sc) {
  const aaa::DataDep& dep = alg.dependencies()[sc.dep_index];
  return alg.op(dep.from).name + "->" + alg.op(dep.to).name;
}

}  // namespace

std::vector<obs::TimelineSlice> schedule_to_timeline(
    const aaa::AlgorithmGraph& alg, const aaa::ArchitectureGraph& arch,
    const aaa::Schedule& sched) {
  std::vector<obs::TimelineSlice> out;
  out.reserve(sched.ops().size() + sched.comms().size());
  for (aaa::ProcId p = 0; p < sched.num_procs(); ++p) {
    const std::string track = "proc/" + arch.processor(p).name;
    for (const std::size_t i : sched.ops_on(p)) {
      const aaa::ScheduledOp& so = sched.ops()[i];
      out.push_back(obs::TimelineSlice{
          track,
          alg.op(so.op).name,
          so.start,
          so.end,
          {{"op", static_cast<double>(so.op)}}});
    }
  }
  for (aaa::MediumId m = 0; m < sched.num_media(); ++m) {
    const std::string track = "medium/" + arch.medium(m).name;
    for (const std::size_t i : sched.comms_on(m)) {
      const aaa::ScheduledComm& sc = sched.comms()[i];
      const aaa::DataDep& dep = alg.dependencies()[sc.dep_index];
      out.push_back(obs::TimelineSlice{
          track,
          comm_label(alg, sc),
          sc.start,
          sc.end,
          {{"hop", static_cast<double>(sc.hop_index)}, {"size", dep.size}}});
    }
  }
  return out;
}

std::vector<obs::TimelineSlice> vm_to_timeline(
    const aaa::AlgorithmGraph& alg, const aaa::ArchitectureGraph& arch,
    const aaa::Schedule& sched, const exec::VmResult& vm,
    const std::string& track_prefix) {
  std::vector<obs::TimelineSlice> out;
  out.reserve(vm.ops.size() + vm.comms.size());
  for (const exec::OpInstance& oi : vm.ops) {
    obs::TimelineSlice s{
        track_prefix + "proc/" + arch.processor(oi.proc).name,
        alg.op(oi.op).name,
        oi.start,
        oi.end,
        {{"iteration", static_cast<double>(oi.iteration)}}};
    if (oi.branch != aaa::kNone) {
      s.args.emplace_back("branch", static_cast<double>(oi.branch));
    }
    out.push_back(std::move(s));
  }
  for (const exec::CommInstance& ci : vm.comms) {
    const aaa::ScheduledComm& sc = sched.comms()[ci.comm];
    out.push_back(obs::TimelineSlice{
        track_prefix + "medium/" + arch.medium(sc.hop.medium).name,
        comm_label(alg, sc),
        ci.start,
        ci.end,
        {{"iteration", static_cast<double>(ci.iteration)}}});
  }
  return out;
}

std::string schedule_to_trace_json(const aaa::AlgorithmGraph& alg,
                                   const aaa::ArchitectureGraph& arch,
                                   const aaa::Schedule& sched) {
  obs::JsonTraceWriter w;
  w.add_slices(schedule_to_timeline(alg, arch, sched));
  return w.str();
}

std::string vm_to_trace_json(const aaa::AlgorithmGraph& alg,
                             const aaa::ArchitectureGraph& arch,
                             const aaa::Schedule& sched,
                             const exec::VmResult& vm) {
  obs::JsonTraceWriter w;
  w.add_slices(vm_to_timeline(alg, arch, sched, vm));
  return w.str();
}

}  // namespace ecsim::translate
