// Data-driven conditioning through the graph of delays: the paper's actual
// Fig. 5 structure (EventSelect routed by the Condition Mapping reading a
// controller variable), validated against the step-response phases of a
// closed loop — large error early => slow branch, settled => fast branch.
#include <gtest/gtest.h>

#include <cmath>

#include "blocks/discrete.hpp"
#include "translate/cosim.hpp"

namespace ecsim::translate {
namespace {

LoopSpec first_order_spec() {
  // Simple stable first-order plant with a proportional-ish discrete
  // controller in error-input mode.
  LoopSpec spec;
  spec.plant.a = math::Matrix{{-1.0}};
  spec.plant.b = math::Matrix{{1.0}};
  spec.plant.c = math::Matrix{{1.0}};
  spec.plant.d = math::Matrix{{0.0}};
  // u_k = 3 e_k (stateless).
  spec.controller.a = math::Matrix::zeros(0, 0);
  spec.controller.b = math::Matrix::zeros(0, 1);
  spec.controller.c = math::Matrix::zeros(1, 0);
  spec.controller.d = math::Matrix{{3.0}};
  spec.controller.discrete = true;
  spec.controller.ts = 0.01;
  spec.ts = 0.01;
  spec.t_end = 2.0;
  spec.ref = 1.0;
  spec.input = translate::ControllerInput::kError;
  return spec;
}

TEST(DataConditioning, BranchFollowsErrorMagnitude) {
  LoopSpec spec = first_order_spec();
  DistributedSpec dist;
  dist.arch = aaa::ArchitectureGraph::bus_architecture(1, 1.0);
  dist.wcet_sense = 1e-4;
  dist.wcet_act = 1e-4;
  dist.ctrl_branch_wcets = {0.5e-3, 6e-3};  // fast / slow
  dist.ctrl_condition_threshold = 0.5;      // slow branch while |e| > 0.5
  const CosimOutcome out = run_distributed_loop(spec, dist);

  // Early periods: error ~ 1 -> slow branch -> actuation latency ~ 6.2 ms.
  // Late periods: error ~ 0 -> fast branch -> latency ~ 0.7 ms.
  const auto& lat = out.act_latency.latencies;
  ASSERT_GT(lat.size(), 150u);
  EXPECT_GT(lat[1], 5e-3);
  EXPECT_LT(lat.back(), 1.5e-3);
  // The transition is monotone in the sense that once fast, never slow again
  // for this monotone step response.
  bool seen_fast = false;
  for (double l : lat) {
    if (l < 1.5e-3) seen_fast = true;
    if (seen_fast) {
      EXPECT_LT(l, 1.5e-3);
    }
  }
}

TEST(DataConditioning, ValidationErrors) {
  LoopSpec spec = first_order_spec();
  DistributedSpec dist;
  dist.arch = aaa::ArchitectureGraph::bus_architecture(1, 1.0);
  dist.ctrl_branch_wcets = {1e-4, 2e-4, 3e-4};  // three branches
  dist.ctrl_condition_threshold = 0.5;
  EXPECT_THROW(run_distributed_loop(spec, dist), std::invalid_argument);
}

TEST(DataConditioning, BindingToNonConditionalOpRejected) {
  LoopSpec spec = first_order_spec();
  DistributedSpec dist;
  dist.arch = aaa::ArchitectureGraph::bus_architecture(1, 1.0);
  // Plain controller op, but a condition binding smuggled via god options.
  sim::Model m;
  auto& dummy = m.add<blocks::EventCounter>("dummy");
  (void)dummy;
  const aaa::AlgorithmGraph alg = make_loop_algorithm(spec, dist);
  const aaa::Schedule sched = aaa::adequate(alg, dist.arch);
  GodOptions opts;
  opts.conditions["ctrl"] =
      ConditionBinding{&dummy, 0, [](std::span<const double>) { return 0u; }};
  EXPECT_THROW(build_graph_of_delays(m, alg, dist.arch, sched, opts),
               std::invalid_argument);
}

TEST(NoiseInjection, SampledNoisePropagatesToControlEffort) {
  // Measurement noise enters the loop through the controller: u = 3(e - n),
  // so the control signal gets visibly noisier even when the low-pass plant
  // filters most of it out of y.
  LoopSpec quiet = first_order_spec();
  quiet.t_end = 5.0;
  LoopSpec noisy = quiet;
  noisy.measurement_noise_std = 0.2;
  const CosimOutcome a = run_ideal_loop(quiet);
  const CosimOutcome b = run_ideal_loop(noisy);
  // After the transient, quiet u is constant; noisy u fluctuates by ~3*std.
  auto late_var = [](const control::Series& u) {
    control::Series tail(u.begin() + static_cast<long>(u.size() / 2), u.end());
    const double mean = [&] {
      double s = 0.0;
      for (const auto& [t, v] : tail) s += v;
      return s / static_cast<double>(tail.size());
    }();
    double var = 0.0;
    for (const auto& [t, v] : tail) var += (v - mean) * (v - mean);
    return var / static_cast<double>(tail.size());
  };
  EXPECT_GT(late_var(b.u), late_var(a.u) + 0.05);
  // Determinism under a fixed seed.
  const CosimOutcome b2 = run_ideal_loop(noisy);
  EXPECT_DOUBLE_EQ(b.ise, b2.ise);
}

TEST(Disturbance, SquareWaveLoadShowsInOutput) {
  // The +-0.5 load alternates symmetrically around the operating point, so
  // the mean absolute error barely moves — the squared error is the
  // sensitive metric.
  LoopSpec calm = first_order_spec();
  calm.t_end = 4.0;
  LoopSpec shaken = calm;
  shaken.disturbance_amplitude = 0.5;
  shaken.disturbance_period = 1.0;
  const CosimOutcome a = run_ideal_loop(calm);
  const CosimOutcome b = run_ideal_loop(shaken);
  // After the step transient the calm output is flat while the shaken one
  // oscillates between the two disturbed equilibria (0.625 <-> 0.875).
  auto late_p2p = [](const control::Series& y) {
    double lo = 1e9, hi = -1e9;
    for (std::size_t i = y.size() / 2; i < y.size(); ++i) {
      lo = std::min(lo, y[i].second);
      hi = std::max(hi, y[i].second);
    }
    return hi - lo;
  };
  EXPECT_LT(late_p2p(a.y), 0.02);
  EXPECT_GT(late_p2p(b.y), 0.15);
}

}  // namespace
}  // namespace ecsim::translate
