#include "svc/client.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ecsim::svc {

bool Client::connect(const std::string& socket_path) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof addr.sun_path) {
    err_ = "bad socket path";
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    err_ = std::strerror(errno);
    return false;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    err_ = std::string("connect ") + socket_path + ": " +
           std::strerror(errno);
    ::close(fd);
    return false;
  }
  fd_ = fd;
  err_.clear();
  return true;
}

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool Client::request(const Request& req, Fields& reply, ResponseMeta& meta) {
  if (fd_ < 0) {
    err_ = "not connected";
    return false;
  }
  if (!write_frame(fd_, req.to_fields().serialize())) {
    err_ = "daemon went away mid-write";
    close();
    return false;
  }
  std::string in;
  if (!read_frame(fd_, in) || !Fields::parse(in, reply)) {
    err_ = "daemon went away mid-read";
    close();
    return false;
  }
  meta = meta_from_fields(reply);
  if (!meta.ok) {
    err_ = meta.error.empty() ? "daemon error" : meta.error;
    return false;
  }
  err_.clear();
  return true;
}

namespace {

bool unit_payloads(Client& client, const Request& req, ResponseMeta& meta,
                   std::vector<std::string>& blobs, std::string& err) {
  Fields reply;
  if (!client.request(req, reply, meta)) {
    err = client.last_error();
    return false;
  }
  const std::string* units = reply.get("units");
  if (units == nullptr || !decode_blob_list(*units, blobs) ||
      blobs.size() != req.units()) {
    err = "malformed units payload";
    return false;
  }
  return true;
}

}  // namespace

bool remote_sweep(Client& client, const Request& req,
                  std::vector<sweep::SweepCell>& cells, ResponseMeta& meta) {
  std::vector<std::string> blobs;
  std::string err;
  if (!unit_payloads(client, req, meta, blobs, err)) return false;
  std::vector<sweep::SweepCell> out(blobs.size());
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    if (!decode_cell(blobs[i], out[i])) return false;
  }
  cells = std::move(out);
  return true;
}

bool remote_fault_sweep(Client& client, const Request& req,
                        std::vector<sweep::FaultCell>& cells,
                        ResponseMeta& meta) {
  std::vector<std::string> blobs;
  std::string err;
  if (!unit_payloads(client, req, meta, blobs, err)) return false;
  std::vector<sweep::FaultCell> out(blobs.size());
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    if (!decode_cell(blobs[i], out[i])) return false;
  }
  cells = std::move(out);
  return true;
}

bool remote_network_sweep(Client& client, const Request& req,
                          std::vector<sweep::NetworkCell>& cells,
                          ResponseMeta& meta) {
  std::vector<std::string> blobs;
  std::string err;
  if (!unit_payloads(client, req, meta, blobs, err)) return false;
  std::vector<sweep::NetworkCell> out(blobs.size());
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    if (!decode_cell(blobs[i], out[i])) return false;
  }
  cells = std::move(out);
  return true;
}

bool remote_fault_mc(Client& client, const Request& req,
                     sweep::FaultMonteCarloResult& result,
                     ResponseMeta& meta) {
  std::vector<std::string> blobs;
  std::string err;
  if (!unit_payloads(client, req, meta, blobs, err)) return false;
  std::vector<sweep::FaultCell> cells(blobs.size());
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    if (!decode_cell(blobs[i], cells[i])) return false;
  }
  result = sweep::summarize_fault_trials(std::move(cells), req.loss);
  return true;
}

bool remote_vm_mc(Client& client, const Request& req,
                  sweep::MonteCarloResult& result, ResponseMeta& meta) {
  std::vector<std::string> blobs;
  std::string err;
  if (!unit_payloads(client, req, meta, blobs, err)) return false;
  sweep::MonteCarloResult out;
  if (blobs.size() != 1 || !decode_mc(blobs[0], out)) return false;
  result = std::move(out);
  return true;
}

}  // namespace ecsim::svc
