#include "sim/trace.hpp"

namespace ecsim::sim {

void Trace::record_event(Time t, std::size_t block, std::size_t event_in,
                         const std::string& name) {
  events_.push_back(EventRecord{t, block, event_in, name});
}

void Trace::record_signal(Time t, std::size_t block,
                          std::vector<double> values) {
  signals_.push_back(SignalRecord{t, block, std::move(values)});
}

std::vector<Time> Trace::activation_times(std::size_t block,
                                          std::size_t event_in) const {
  std::vector<Time> out;
  for (const auto& e : events_) {
    if (e.block == block &&
        (event_in == static_cast<std::size_t>(-1) || e.event_in == event_in)) {
      out.push_back(e.time);
    }
  }
  return out;
}

std::vector<Time> Trace::activation_times_by_name(const std::string& name,
                                                  std::size_t event_in) const {
  std::vector<Time> out;
  for (const auto& e : events_) {
    if (e.block_name == name &&
        (event_in == static_cast<std::size_t>(-1) || e.event_in == event_in)) {
      out.push_back(e.time);
    }
  }
  return out;
}

std::vector<std::pair<Time, double>> Trace::series(std::size_t block,
                                                   std::size_t component) const {
  std::vector<std::pair<Time, double>> out;
  for (const auto& s : signals_) {
    if (s.block == block && component < s.values.size()) {
      out.emplace_back(s.time, s.values[component]);
    }
  }
  return out;
}

void Trace::clear() {
  events_.clear();
  signals_.clear();
}

}  // namespace ecsim::sim
