// Architecture graph of the AAA methodology: heterogeneous processors
// connected by communication media (buses / point-to-point links). Transfer
// duration on a medium = latency + size / bandwidth.
#pragma once

#include <string>
#include <vector>

#include "aaa/algorithm_graph.hpp"  // Time, kNone

namespace ecsim::aaa {

using ProcId = std::size_t;
using MediumId = std::size_t;

struct Processor {
  std::string name;
  std::string type = "cpu";  // keys into Operation::wcet
};

/// Bus arbitration policy.
enum class Arbitration {
  kImmediate,     // transfer starts as soon as data + medium are ready
  kTdma,          // transfers may only start on a fixed slot grid
  kCanPriority,   // CAN: ID-based fixed-priority, non-preemptive frames
};

struct Medium {
  std::string name;
  double bandwidth = 1.0;  // data units per time unit
  Time latency = 0.0;      // fixed per-transfer overhead
  Arbitration arbitration = Arbitration::kImmediate;
  Time tdma_slot = 0.0;    // slot grid period (kTdma only)
  /// Number of owner slots per TDMA round (kTdma only). 1 = any boundary
  /// (classic grid); n > 1 = message with priority p owns slot p % n of the
  /// round, i.e. may only start at t = k*n*tdma_slot + (p%n)*tdma_slot.
  std::size_t tdma_slots = 1;
  /// Worst-case non-preemptive blocking (kCanPriority only): the longest
  /// time a ready frame can wait behind one already-transmitting lower
  /// priority (or background) frame. Charged per frame by the adequation as
  /// part of the arbitration-aware WCET AND by the exec VM before each
  /// transmission (so WCET runs reproduce the static schedule); contention
  /// among the modeled frames themselves is resolved exactly by both.
  Time can_blocking = 0.0;
  /// Fraction of the raw bandwidth consumed by interfering background
  /// traffic, in [0, 1). Effective bandwidth = bandwidth * (1 - load).
  double background_load = 0.0;

  /// Bandwidth left after background contention.
  double effective_bandwidth() const {
    return bandwidth * (1.0 - background_load);
  }

  Time transfer_time(double size) const {
    return latency + size / effective_bandwidth();
  }

  /// Earliest instant >= ready at which a transfer may begin under this
  /// medium's arbitration policy. TDMA slots live on the ABSOLUTE time grid
  /// t = k * tdma_slot; for strictly periodic executions the algorithm
  /// period should therefore be an integer multiple of the slot (times the
  /// slot count when owner slots are in play).
  Time earliest_start(Time ready) const;

  /// Owner-slot-aware variant: under kTdma with tdma_slots > 1 the message
  /// with the given priority may only start in its own slot of the round.
  /// For every other arbitration (and for tdma_slots == 1) this is exactly
  /// earliest_start(ready).
  Time earliest_start(Time ready, std::size_t priority) const;
};

class ArchitectureGraph {
 public:
  explicit ArchitectureGraph(std::string name = "architecture")
      : name_(std::move(name)) {}

  ProcId add_processor(std::string name, std::string type = "cpu");
  MediumId add_medium(std::string name, double bandwidth, Time latency = 0.0);
  /// Switch a medium to TDMA arbitration with the given slot period and
  /// (optionally) `slots` owner slots per round (1 = any-boundary grid).
  void set_tdma(MediumId m, Time slot, std::size_t slots = 1);
  /// Switch a medium to CAN-style priority arbitration with the given
  /// worst-case non-preemptive blocking time (>= 0).
  void set_can(MediumId m, Time blocking = 0.0);
  /// Set the interfering background-traffic load on a medium, in [0, 1).
  void set_background_load(MediumId m, double load);
  /// Attach a processor to a medium (a medium with >2 attachments is a bus).
  void attach(ProcId p, MediumId m);

  std::size_t num_processors() const { return procs_.size(); }
  std::size_t num_media() const { return media_.size(); }
  const Processor& processor(ProcId p) const { return procs_.at(p); }
  const Medium& medium(MediumId m) const { return media_.at(m); }
  const std::vector<MediumId>& media_of(ProcId p) const {
    return proc_media_.at(p);
  }
  const std::vector<ProcId>& procs_on(MediumId m) const {
    return medium_procs_.at(m);
  }

  ProcId find_processor(const std::string& name) const;
  MediumId find_medium(const std::string& name) const;

  const std::string& name() const { return name_; }

  /// Convenience factory: `n` identical processors of one type on one shared
  /// bus of the given bandwidth/latency.
  static ArchitectureGraph bus_architecture(std::size_t n, double bandwidth,
                                            Time latency = 0.0,
                                            const std::string& type = "cpu");

 private:
  std::string name_;
  std::vector<Processor> procs_;
  std::vector<Medium> media_;
  std::vector<std::vector<MediumId>> proc_media_;
  std::vector<std::vector<ProcId>> medium_procs_;
};

}  // namespace ecsim::aaa
