#include "plants/two_mass.hpp"

#include <stdexcept>

namespace ecsim::plants {

control::StateSpace two_mass(const TwoMassParams& p) {
  if (p.motor_inertia <= 0.0 || p.load_inertia <= 0.0) {
    throw std::invalid_argument("two_mass: inertias must be > 0");
  }
  const double j1 = p.motor_inertia, j2 = p.load_inertia;
  const double k = p.stiffness, c = p.damping, b = p.motor_friction;
  // J1 w1' = -k (th1 - th2) - c (w1 - w2) - b w1 + u
  // J2 w2' =  k (th1 - th2) + c (w1 - w2)
  control::StateSpace sys;
  sys.a = control::Matrix{
      {0.0, 1.0, 0.0, 0.0},
      {-k / j1, -(c + b) / j1, k / j1, c / j1},
      {0.0, 0.0, 0.0, 1.0},
      {k / j2, c / j2, -k / j2, -c / j2}};
  sys.b = control::Matrix{{0.0}, {1.0 / j1}, {0.0}, {0.0}};
  sys.c = control::Matrix{{0.0, 0.0, 1.0, 0.0}, {0.0, 1.0, 0.0, 0.0}};
  sys.d = control::Matrix::zeros(2, 1);
  sys.validate();
  return sys;
}

}  // namespace ecsim::plants
