#include "blocks/discrete.hpp"

#include <gtest/gtest.h>

#include "blocks/sources.hpp"
#include "sim/simulator.hpp"

namespace ecsim::blocks {
namespace {

using math::Matrix;
using sim::Model;
using sim::SimOptions;
using sim::Simulator;

TEST(StateSpaceDisc, AccumulatorDynamics) {
  // x+ = x + u, y = x: after n activations with u = 1, y = n - 1... y is
  // computed before the update, so y(t = k) = k.
  Model m;
  auto& u = m.add<Constant>("u", 1.0);
  auto& clk = m.add<Clock>("clk", 1.0);
  auto& acc = m.add<StateSpaceDisc>("acc", Matrix{{1.0}}, Matrix{{1.0}},
                                    Matrix{{1.0}}, Matrix{{0.0}});
  m.connect(u, 0, acc, 0);
  m.connect_event(clk, 0, acc, acc.event_in());
  Simulator s(m, SimOptions{.end_time = 4.0});
  s.run();
  EXPECT_DOUBLE_EQ(s.output_value(acc, 0), 4.0);
  EXPECT_DOUBLE_EQ(acc.xk()[0], 5.0);
}

TEST(StateSpaceDisc, HoldsOutputBetweenActivations) {
  Model m;
  auto& u = m.add<Sine>("u", 1.0, 1.0);
  auto& clk = m.add<Clock>("clk", 10.0);  // only t = 0 within horizon
  auto& sys = m.add<StateSpaceDisc>("sys", Matrix{{0.0}}, Matrix{{1.0}},
                                    Matrix{{0.0}}, Matrix{{1.0}});
  m.connect(u, 0, sys, 0);
  m.connect_event(clk, 0, sys, sys.event_in());
  Simulator s(m, SimOptions{.end_time = 0.9});
  s.run();
  EXPECT_DOUBLE_EQ(s.output_value(sys, 0), 0.0);  // sin(0), held since t=0
}

TEST(StateSpaceDisc, InitialConditionAndReset) {
  Model m;
  auto& clk = m.add<Clock>("clk", 1.0);
  auto& sys = m.add<StateSpaceDisc>("sys", Matrix{{0.5}}, Matrix{{0.0}},
                                    Matrix{{1.0}}, Matrix{{0.0}},
                                    std::vector<double>{8.0});
  m.connect_event(clk, 0, sys, sys.event_in());
  Simulator s(m, SimOptions{.end_time = 2.0});
  s.run();
  // Activations at t = 0, 1, 2 -> y = x before update: 8, 4, 2.
  EXPECT_DOUBLE_EQ(s.output_value(sys, 0), 2.0);
  s.run();  // must restart from x0 = 8
  EXPECT_DOUBLE_EQ(s.output_value(sys, 0), 2.0);
}

TEST(StateSpaceDisc, DoneEventFires) {
  Model m;
  auto& clk = m.add<Clock>("clk", 1.0);
  auto& sys = m.add<StateSpaceDisc>("sys", Matrix{{1.0}}, Matrix{{0.0}},
                                    Matrix{{1.0}}, Matrix{{0.0}});
  auto& n = m.add<EventCounter>("n");
  m.connect_event(clk, 0, sys, sys.event_in());
  m.connect_event(sys, sys.done_event_out(), n, 0);
  Simulator s(m, SimOptions{.end_time = 2.0});
  s.run();
  EXPECT_EQ(n.count(), 3u);
}

TEST(StateSpaceDisc, ShapeValidation) {
  EXPECT_THROW(StateSpaceDisc("x", Matrix(1, 2), Matrix(1, 1), Matrix(1, 1),
                              Matrix(1, 1)),
               std::invalid_argument);
}

TEST(PidDiscrete, PureProportional) {
  Model m;
  auto& e = m.add<Constant>("e", 2.0);
  auto& clk = m.add<Clock>("clk", 0.1);
  PidDiscrete::Params p;
  p.kp = 3.0;
  p.ts = 0.1;
  auto& pid = m.add<PidDiscrete>("pid", p);
  m.connect(e, 0, pid, 0);
  m.connect_event(clk, 0, pid, 0);
  Simulator s(m, SimOptions{.end_time = 1.0});
  s.run();
  EXPECT_NEAR(s.output_value(pid, 0), 6.0, 1e-9);
}

TEST(PidDiscrete, IntegralAccumulates) {
  Model m;
  auto& e = m.add<Constant>("e", 1.0);
  auto& clk = m.add<Clock>("clk", 0.1);
  PidDiscrete::Params p;
  p.kp = 0.0;
  p.ki = 1.0;
  p.ts = 0.1;
  auto& pid = m.add<PidDiscrete>("pid", p);
  m.connect(e, 0, pid, 0);
  m.connect_event(clk, 0, pid, 0);
  Simulator s(m, SimOptions{.end_time = 1.0});
  s.run();
  // 11 activations; integral updated after output each time: u at t=1.0 is
  // the integral accumulated over the previous 10 activations = 1.0.
  EXPECT_NEAR(s.output_value(pid, 0), 1.0, 1e-9);
}

TEST(PidDiscrete, AntiWindupClamps) {
  Model m;
  auto& e = m.add<Constant>("e", 1.0);
  auto& clk = m.add<Clock>("clk", 0.1);
  PidDiscrete::Params p;
  p.kp = 0.0;
  p.ki = 10.0;
  p.ts = 0.1;
  p.u_max = 0.5;
  p.u_min = -0.5;
  auto& pid = m.add<PidDiscrete>("pid", p);
  m.connect(e, 0, pid, 0);
  m.connect_event(clk, 0, pid, 0);
  Simulator s(m, SimOptions{.end_time = 5.0});
  s.run();
  EXPECT_LE(s.output_value(pid, 0), 0.5);
}

TEST(PidDiscrete, Validation) {
  PidDiscrete::Params bad;
  bad.ts = 0.0;
  EXPECT_THROW(PidDiscrete("p", bad), std::invalid_argument);
  PidDiscrete::Params clamp;
  clamp.u_min = 1.0;
  clamp.u_max = -1.0;
  EXPECT_THROW(PidDiscrete("p", clamp), std::invalid_argument);
}

TEST(UnitDelay, DelaysByOneActivation) {
  Model m;
  auto& src = m.add<Sine>("src", 1.0, 0.25);
  auto& clk = m.add<Clock>("clk", 1.0);
  auto& z = m.add<UnitDelay>("z", 99.0);
  m.connect(src, 0, z, 0);
  m.connect_event(clk, 0, z, 0);
  Simulator s(m, SimOptions{.end_time = 1.0});
  s.run();
  // At t=0 outputs init 99 and stores sin(0)=0; at t=1 outputs 0.
  EXPECT_NEAR(s.output_value(z, 0), 0.0, 1e-12);
}

TEST(EventCounter, ResetsBetweenRuns) {
  Model m;
  auto& clk = m.add<Clock>("clk", 0.5);
  auto& n = m.add<EventCounter>("n");
  m.connect_event(clk, 0, n, 0);
  Simulator s(m, SimOptions{.end_time = 1.0});
  s.run();
  EXPECT_EQ(n.count(), 3u);
  s.run();
  EXPECT_EQ(n.count(), 3u);
}

}  // namespace
}  // namespace ecsim::blocks
