#include "translate/graph_of_delays.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "blocks/event_blocks.hpp"
#include "blocks/sources.hpp"
#include "blocks/synchronization.hpp"

namespace ecsim::translate {

namespace {

/// Duration model for one operation on one processor type: uniform in
/// [bcet_fraction * WCET, WCET], with the WCET taken from a random branch
/// for conditional operations. Pure data (blocks::DurationSpec), so the
/// resulting EventDelay is describable in the IR.
blocks::DurationSpec make_op_duration(const aaa::Operation& op,
                                      const std::string& proc_type,
                                      const GodOptions& opts) {
  const double f = opts.bcet_fraction;
  if (f < 0.0 || f > 1.0) {
    throw std::invalid_argument("GodOptions: bcet_fraction must be in [0,1]");
  }
  if (!op.is_conditional()) {
    const aaa::Time wcet = op.wcet_on(proc_type);
    if (f >= 1.0) return blocks::constant_duration(wcet);
    return blocks::uniform_duration(f * wcet, wcet);
  }
  std::vector<double> branch_wcets;
  branch_wcets.reserve(op.branches.size());
  for (const aaa::Branch& br : op.branches) {
    branch_wcets.push_back(br.wcet.at(proc_type));
  }
  return blocks::branch_duration(std::move(branch_wcets), f,
                                 opts.random_branches);
}

GraphOfDelays build_timetable(sim::Model& model, const aaa::AlgorithmGraph& alg,
                              const aaa::Schedule& sched,
                              const GodOptions& opts) {
  GraphOfDelays god;
  const aaa::Time period = alg.period();
  for (const aaa::ScheduledOp& so : sched.ops()) {
    if (so.end >= period) {
      throw std::runtime_error(
          "graph_of_delays (timetable): operation completes exactly at or "
          "past the period boundary; use event-chain mode");
    }
    auto& clk = model.add<blocks::TimetableClock>(
        opts.prefix + "tt/" + alg.op(so.op).name, period,
        std::vector<sim::Time>{so.end});
    god.op_completion[so.op] = CompletionSource{&clk, clk.event_out()};
  }
  return god;
}

GraphOfDelays build_event_chain(sim::Model& model,
                                const aaa::AlgorithmGraph& alg,
                                const aaa::ArchitectureGraph& arch,
                                const aaa::Schedule& sched,
                                const GodOptions& opts) {
  GraphOfDelays god;
  const aaa::Time period = alg.period();
  auto& clock = model.add<blocks::Clock>(opts.prefix + "clock", period);
  god.clock = &clock;

  // Pass 1: a delay structure per scheduled operation (a single EventDelay,
  // or — for data-bound conditional operations — the paper's Fig. 5 shape:
  // EventSelect routed by the Condition Mapping into per-branch EventDelays
  // joined by an EventMerge), plus one EventDelay per communication hop.
  struct OpNode {
    const sim::Block* activation = nullptr;  // where the start event goes
    std::size_t act_in = 0;
    const sim::Block* completion = nullptr;  // where the done event comes out
    std::size_t comp_out = 0;
  };
  std::map<aaa::OpId, OpNode> op_node;
  std::map<std::size_t, blocks::EventDelay*> comm_delay;  // by comm index
  for (const aaa::ScheduledOp& so : sched.ops()) {
    const aaa::Operation& op = alg.op(so.op);
    const std::string& type = arch.processor(so.proc).type;
    const auto bound = opts.conditions.find(op.name);
    if (bound != opts.conditions.end()) {
      if (!op.is_conditional()) {
        throw std::invalid_argument(
            "graph_of_delays: condition bound to non-conditional op '" +
            op.name + "'");
      }
      if (bound->second.block == nullptr || !bound->second.mapping) {
        throw std::invalid_argument(
            "graph_of_delays: incomplete condition binding for '" + op.name +
            "'");
      }
      const std::size_t n_br = op.branches.size();
      const std::size_t width =
          bound->second.block->output_width(bound->second.port);
      auto& sel = model.add<blocks::EventSelect>(
          opts.prefix + "select/" + op.name, n_br, width,
          bound->second.mapping);
      model.connect(*bound->second.block, bound->second.port, sel, 0);
      auto& merge =
          model.add<blocks::EventMerge>(opts.prefix + "merge/" + op.name, n_br);
      for (std::size_t b = 0; b < n_br; ++b) {
        const aaa::Time wcet = op.branches[b].wcet.at(type);
        const blocks::DurationSpec dur =
            opts.bcet_fraction >= 1.0
                ? blocks::constant_duration(wcet)
                : blocks::uniform_duration(opts.bcet_fraction * wcet, wcet);
        auto& ed = model.add<blocks::EventDelay>(
            opts.prefix + "op/" + op.name + "/" + op.branches[b].name, dur);
        model.connect_event(sel, b, ed, ed.event_in());
        model.connect_event(ed, ed.event_out(), merge, b);
      }
      op_node[so.op] = OpNode{&sel, sel.event_in(), &merge, merge.event_out()};
      god.op_completion[so.op] =
          CompletionSource{&merge, merge.event_out()};
      continue;
    }
    auto& ed = model.add<blocks::EventDelay>(
        opts.prefix + "op/" + op.name, make_op_duration(op, type, opts));
    op_node[so.op] = OpNode{&ed, ed.event_in(), &ed, ed.event_out()};
    god.op_completion[so.op] = CompletionSource{&ed, ed.event_out()};
  }
  // Arrival source per comm: the transfer's EventDelay, or — under fault
  // injection — the EventFault gate spliced after it. dep_arrival and
  // next-hop readiness read from here so a dropped frame never activates
  // anything downstream (loss propagates across hops), while the
  // medium-order chain of pass 2b keeps using the EventDelay itself (the
  // corrupted frame still occupied its slot).
  std::map<std::size_t, std::pair<const sim::Block*, std::size_t>>
      comm_arrival;
  std::shared_ptr<const fault::ArmedFaultPlan> armed;
  if (!opts.fault_plan.empty()) {
    armed = std::make_shared<const fault::ArmedFaultPlan>(opts.fault_plan, alg,
                                                          arch, sched);
  }
  for (std::size_t ci = 0; ci < sched.comms().size(); ++ci) {
    const aaa::ScheduledComm& sc = sched.comms()[ci];
    const aaa::DataDep& dep = alg.dependencies()[sc.dep_index];
    const aaa::Medium& hop_medium = arch.medium(sc.hop.medium);
    const aaa::Time dur = hop_medium.transfer_time(dep.size);
    const std::string comm_name = alg.op(dep.from).name + ">" +
                                  alg.op(dep.to).name + "#" +
                                  std::to_string(sc.hop_index);
    // Under CAN priority arbitration the frame may additionally wait behind
    // one non-preemptible lower-priority (or background) frame for up to
    // can_blocking: WCET replay (bcet_fraction >= 1) charges the full
    // blocking — matching the adequation's arbitration-aware WCET exactly —
    // while jitter studies draw the access delay uniformly from the busy
    // window [dur, dur + blocking]. Occupancy is faithful either way: the
    // blocking IS another frame holding the bus.
    blocks::DurationSpec comm_spec = blocks::constant_duration(dur);
    if (hop_medium.arbitration == aaa::Arbitration::kCanPriority &&
        hop_medium.can_blocking > 0.0) {
      comm_spec = opts.bcet_fraction >= 1.0
                      ? blocks::constant_duration(dur + hop_medium.can_blocking)
                      : blocks::uniform_duration(
                            dur, dur + hop_medium.can_blocking);
    }
    auto& ed = model.add<blocks::EventDelay>(opts.prefix + "comm/" + comm_name,
                                             comm_spec);
    comm_delay[ci] = &ed;
    comm_arrival[ci] = {&ed, ed.event_out()};
    if (armed != nullptr) {
      // Activation count k of the gate == iteration index (one transfer per
      // period, order preserved by the busy-queueing EventDelay), so the
      // gate asks the armed plan the exact same question as the executive
      // VM and both engines fault the same iterations. Duplication extends
      // the arrival by extra copies of the transfer time; the medium-
      // occupancy effect on *later* transfers is not propagated here (a
      // known graph-of-delays approximation, exact in the VM). The gate is
      // exported as data (fault::CommGate) so the model stays describable.
      auto& gate = model.add<blocks::EventFault>(
          opts.prefix + "fault/" + comm_name, armed->comm_gate(ci, dur));
      model.connect_event(ed, ed.event_out(), gate, gate.event_in());
      comm_arrival[ci] = {&gate, gate.event_out()};
      god.fault_gates.push_back(&gate);
    }
  }

  // Completion source of the data of dependency `di` as it arrives at the
  // consumer: the final hop's arrival (cross-processor) or the producer's
  // delay (same processor).
  auto dep_arrival =
      [&](std::size_t di) -> std::pair<const sim::Block*, std::size_t> {
    const aaa::DataDep& dep = alg.dependencies()[di];
    const OpNode& prod = op_node.at(dep.from);
    std::pair<const sim::Block*, std::size_t> source{prod.completion,
                                                     prod.comp_out};
    std::size_t best_hop = 0;
    for (std::size_t ci = 0; ci < sched.comms().size(); ++ci) {
      const aaa::ScheduledComm& sc = sched.comms()[ci];
      if (sc.dep_index == di && sc.hop_index >= best_hop) {
        best_hop = sc.hop_index;
        source = comm_arrival.at(ci);
      }
    }
    return source;
  };

  // Pass 2a: wire operation activations — sequencing + synchronization.
  for (aaa::ProcId p = 0; p < sched.num_procs(); ++p) {
    const sim::Block* prev = &clock;  // iteration released by the period tick
    std::size_t prev_out = 0;
    for (std::size_t idx : sched.ops_on(p)) {
      const aaa::ScheduledOp& so = sched.ops()[idx];
      std::vector<std::pair<const sim::Block*, std::size_t>> sources;
      sources.emplace_back(prev, prev_out);
      const aaa::Operation& sched_op = alg.op(so.op);
      if (sched_op.release > 0.0) {
        // Release offset (multirate instance): also wait for the clock tick
        // delayed by the release.
        auto& rel = model.add<blocks::EventDelay>(
            opts.prefix + "release/" + sched_op.name, sched_op.release);
        model.connect_event(clock, 0, rel, rel.event_in());
        sources.emplace_back(&rel, rel.event_out());
      } else if (sched_op.kind == aaa::OpKind::kSensor &&
                 prev != static_cast<const sim::Block*>(&clock)) {
        // A sensor that is not first on its processor must still wait for
        // the period tick (matching the executive's wait_period()), or a
        // faster-than-WCET chain would sample early.
        sources.emplace_back(&clock, 0);
      }
      const auto& deps = alg.dependencies();
      for (std::size_t di = 0; di < deps.size(); ++di) {
        if (deps[di].to != so.op) continue;
        if (sched.of_op(deps[di].from).proc == p) continue;  // same-proc order
        sources.push_back(dep_arrival(di));
      }
      const OpNode& node = op_node.at(so.op);
      if (sources.size() == 1) {
        model.connect_event(*sources[0].first, sources[0].second,
                            *node.activation, node.act_in);
      } else {
        auto& sync = model.add<blocks::Synchronization>(
            opts.prefix + "sync/" + alg.op(so.op).name, sources.size());
        for (std::size_t si = 0; si < sources.size(); ++si) {
          model.connect_event(*sources[si].first, sources[si].second, sync, si);
        }
        model.connect_event(sync, sync.event_out(), *node.activation,
                            node.act_in);
      }
      prev = node.completion;
      prev_out = node.comp_out;
    }
  }

  // Pass 2b: wire communication activations — producer (or previous hop)
  // ready + medium total order.
  for (aaa::MediumId m = 0; m < sched.num_media(); ++m) {
    const sim::Block* prev_on_medium = nullptr;
    for (std::size_t ci : sched.comms_on(m)) {
      const aaa::ScheduledComm& sc = sched.comms()[ci];
      const aaa::DataDep& dep = alg.dependencies()[sc.dep_index];
      // Data-ready source: producer op for the first hop, else previous hop.
      const sim::Block* ready = nullptr;
      std::size_t ready_out = 0;
      if (sc.hop_index == 0) {
        const OpNode& prod = op_node.at(dep.from);
        ready = prod.completion;
        ready_out = prod.comp_out;
      } else {
        for (std::size_t cj = 0; cj < sched.comms().size(); ++cj) {
          const aaa::ScheduledComm& prev_hop = sched.comms()[cj];
          if (prev_hop.dep_index == sc.dep_index &&
              prev_hop.hop_index + 1 == sc.hop_index) {
            // Arrival source, not the raw delay: a frame lost on the
            // previous hop must never start this one.
            ready = comm_arrival.at(cj).first;
            ready_out = comm_arrival.at(cj).second;
            break;
          }
        }
        if (ready == nullptr) {
          throw std::logic_error("graph_of_delays: missing previous hop");
        }
      }
      blocks::EventDelay* ed = comm_delay.at(ci);
      // Under TDMA arbitration the transfer start snaps to the slot grid:
      // insert a gate between readiness and the transfer delay.
      const aaa::Medium& medium = arch.medium(m);
      const sim::Block* transfer_entry = ed;
      std::size_t transfer_entry_in = ed->event_in();
      if (medium.arbitration == aaa::Arbitration::kTdma) {
        auto& gate = model.add<blocks::TdmaGate>(
            opts.prefix + "tdma/comm" + std::to_string(ci), medium.tdma_slot,
            medium.tdma_slots, alg.dep_priority(sc.dep_index));
        model.connect_event(gate, gate.event_out(), *ed, ed->event_in());
        transfer_entry = &gate;
        transfer_entry_in = gate.event_in();
      }
      if (prev_on_medium == nullptr) {
        model.connect_event(*ready, ready_out, *transfer_entry,
                            transfer_entry_in);
      } else {
        auto& sync = model.add<blocks::Synchronization>(
            opts.prefix + "sync/comm" + std::to_string(ci), 2);
        model.connect_event(*ready, ready_out, sync, 0);
        model.connect_event(*prev_on_medium, 0, sync, 1);
        model.connect_event(sync, sync.event_out(), *transfer_entry,
                            transfer_entry_in);
      }
      prev_on_medium = ed;
    }
  }
  return god;
}

}  // namespace

GraphOfDelays build_graph_of_delays(sim::Model& model,
                                    const aaa::AlgorithmGraph& alg,
                                    const aaa::ArchitectureGraph& arch,
                                    const aaa::Schedule& sched,
                                    const GodOptions& opts) {
  const aaa::Time period = alg.period();
  if (period <= 0.0) {
    throw std::runtime_error(
        "build_graph_of_delays: algorithm graph needs a period");
  }
  if (sched.makespan() > period + 1e-12) {
    throw std::runtime_error(
        "build_graph_of_delays: schedule makespan exceeds the period (the "
        "real-time constraint is violated; choose a faster architecture or a "
        "longer period)");
  }
  if (opts.mode == GodMode::kTimetable) {
    if (!opts.fault_plan.empty()) {
      throw std::invalid_argument(
          "build_graph_of_delays: fault injection requires event-chain mode "
          "(timetable clocks replay fixed instants)");
    }
    return build_timetable(model, alg, sched, opts);
  }
  return build_event_chain(model, alg, arch, sched, opts);
}

void wire_completion(sim::Model& model, const GraphOfDelays& god, aaa::OpId op,
                     const sim::Block& target, std::size_t event_in) {
  const auto it = god.op_completion.find(op);
  if (it == god.op_completion.end()) {
    throw std::out_of_range("wire_completion: op has no completion source");
  }
  model.connect_event(*it->second.block, it->second.event_out, target,
                      event_in);
}

}  // namespace ecsim::translate
