// Run-ledger guards (DESIGN.md §3.7): JSONL round-trip fidelity (including
// 64-bit-exact seeds/hashes and escaped strings), the bounded in-memory
// tail, file append/read, the backend::run stamping contract, and the
// regression diff against a committed BENCH_*.json — demonstrated with a
// synthetic slow record, the exact situation `ecsim_flow ledger diff` must
// turn into a nonzero exit.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "backend/backend.hpp"
#include "backend/kind.hpp"
#include "blocks/examples.hpp"
#include "obs/ledger.hpp"

namespace ecsim::obs {
namespace {

LedgerRecord sample_record() {
  LedgerRecord r;
  r.ir_hash = "0x6c09e9a1787131f3";
  r.model = "chains_200";
  r.backend_requested = "native";
  r.backend_used = "native";
  r.fallback_reason = "";
  r.seed = 0x9e3779b97f4a7c15ULL;  // > 2^53: must survive exactly
  r.fault_plan_hash = 0xfeedfacecafebeefULL;
  r.threads = 8;
  r.wall_s = 0.01712345678901234;
  r.events = 601202;
  r.events_per_s = 35118337.123456789;
  r.trials_per_s = 4321.0987654321;
  r.metrics_json = "{\"counters\": {\"sim.events_dispatched\": 601202}}";
  return r;
}

/// A schema-v2 line as PR-8 builds wrote it: trials_per_s present,
/// served_from_cache not yet invented (to_json_line already omits it for
/// non-service records, so only the version number differs).
std::string v2_json_line(const LedgerRecord& r) {
  std::string line = to_json_line(r);
  const auto pos = line.find("\"schema_version\": 3");
  EXPECT_NE(pos, std::string::npos);
  line.replace(pos, std::string("\"schema_version\": 3").size(),
               "\"schema_version\": 2");
  return line;
}

/// A schema-v1 line as PR-7 builds wrote it: no trials_per_s field either.
std::string v1_json_line(const LedgerRecord& r) {
  std::string line = v2_json_line(r);
  const auto pos = line.find("\"schema_version\": 2");
  EXPECT_NE(pos, std::string::npos);
  line.replace(pos, std::string("\"schema_version\": 2").size(),
               "\"schema_version\": 1");
  const auto tp = line.find(", \"trials_per_s\":");
  EXPECT_NE(tp, std::string::npos);
  const auto tp_end = line.find(',', tp + 2);
  line.erase(tp, tp_end - tp);
  return line;
}

TEST(LedgerRecord, JsonLineRoundTripIsExact) {
  const LedgerRecord r = sample_record();
  const std::string line = to_json_line(r);
  // One object per line: the serialized form must never embed a newline.
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"schema_version\": 3"), std::string::npos);
  // Not a service record: the tri-state field stays out of the JSON.
  EXPECT_EQ(line.find("served_from_cache"), std::string::npos);

  LedgerRecord back;
  ASSERT_TRUE(parse_json_line(line, back));
  EXPECT_EQ(back.schema_version, r.schema_version);
  EXPECT_EQ(back.ir_hash, r.ir_hash);
  EXPECT_EQ(back.model, r.model);
  EXPECT_EQ(back.backend_requested, r.backend_requested);
  EXPECT_EQ(back.backend_used, r.backend_used);
  EXPECT_EQ(back.fallback_reason, r.fallback_reason);
  EXPECT_EQ(back.seed, r.seed);                        // bit-exact u64
  EXPECT_EQ(back.fault_plan_hash, r.fault_plan_hash);  // bit-exact u64
  EXPECT_EQ(back.threads, r.threads);
  EXPECT_DOUBLE_EQ(back.wall_s, r.wall_s);
  EXPECT_EQ(back.events, r.events);
  EXPECT_DOUBLE_EQ(back.events_per_s, r.events_per_s);
  EXPECT_DOUBLE_EQ(back.trials_per_s, r.trials_per_s);
  EXPECT_EQ(back.served_from_cache, -1);
  EXPECT_EQ(back.metrics_json, r.metrics_json);
}

TEST(LedgerRecord, ServedFromCacheTriStateRoundTrips) {
  for (int v : {0, 1}) {
    LedgerRecord r = sample_record();
    r.served_from_cache = v;
    const std::string line = to_json_line(r);
    EXPECT_NE(line.find("\"served_from_cache\": " + std::to_string(v)),
              std::string::npos);
    LedgerRecord back;
    ASSERT_TRUE(parse_json_line(line, back));
    EXPECT_EQ(back.served_from_cache, v);
  }
}

TEST(LedgerRecord, V1LinesStillParseWithZeroTrialsPerS) {
  const std::string v1 = v1_json_line(sample_record());
  LedgerRecord back;
  ASSERT_TRUE(parse_json_line(v1, back));
  EXPECT_EQ(back.schema_version, 1);
  EXPECT_EQ(back.model, "chains_200");
  EXPECT_EQ(back.seed, sample_record().seed);
  EXPECT_DOUBLE_EQ(back.events_per_s, sample_record().events_per_s);
  EXPECT_DOUBLE_EQ(back.trials_per_s, 0.0);  // field is schema v2
}

TEST(Ledger, MixedV1V2V3FileRoundTrips) {
  // Ledgers are append-only: a PR-7 file continued through PR-8 and this
  // build holds all three schema versions, and every line must read back —
  // with the v3-only served_from_cache field absent (-1) on the old lines.
  const std::string path = ::testing::TempDir() + "ecsim_mixed_ledger.jsonl";
  std::remove(path.c_str());
  {
    std::ofstream out(path);
    LedgerRecord v1 = sample_record();
    v1.model = "pr7-run";
    out << v1_json_line(v1) << '\n';
    LedgerRecord v2 = sample_record();
    v2.model = "pr8-run";
    out << v2_json_line(v2) << '\n';
    LedgerRecord v3 = sample_record();
    v3.model = "svc-run";
    v3.served_from_cache = 1;
    out << to_json_line(v3) << '\n';
  }
  const std::vector<LedgerRecord> got = read_ledger_file(path);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].schema_version, 1);
  EXPECT_EQ(got[0].model, "pr7-run");
  EXPECT_DOUBLE_EQ(got[0].trials_per_s, 0.0);
  EXPECT_EQ(got[0].served_from_cache, -1);
  EXPECT_EQ(got[1].schema_version, 2);
  EXPECT_DOUBLE_EQ(got[1].trials_per_s, sample_record().trials_per_s);
  EXPECT_EQ(got[1].served_from_cache, -1);
  EXPECT_EQ(got[2].schema_version, 3);
  EXPECT_EQ(got[2].model, "svc-run");
  EXPECT_EQ(got[2].served_from_cache, 1);

  // The `ledger show --cache` aggregation over the same mixed file: only
  // tagged records enter the hit-rate denominator.
  const CacheSummary summary = summarize_cache(got);
  EXPECT_EQ(summary.served, 1u);
  EXPECT_EQ(summary.computed, 0u);
  EXPECT_EQ(summary.untagged, 2u);
  EXPECT_DOUBLE_EQ(summary.hit_rate(), 1.0);
  std::remove(path.c_str());
}

TEST(Ledger, SummarizeCacheAggregatesAndGuardsEmptyDenominator) {
  std::vector<LedgerRecord> records;
  const CacheSummary none = summarize_cache(records);
  EXPECT_DOUBLE_EQ(none.hit_rate(), 0.0);  // no tagged records: rate is 0

  for (int v : {1, 1, 1, 0, -1}) {
    LedgerRecord r = sample_record();
    r.served_from_cache = v;
    records.push_back(r);
  }
  const CacheSummary s = summarize_cache(records);
  EXPECT_EQ(s.served, 3u);
  EXPECT_EQ(s.computed, 1u);
  EXPECT_EQ(s.untagged, 1u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.75);
}

TEST(LedgerRecord, EscapedStringsRoundTrip) {
  LedgerRecord r = sample_record();
  r.fallback_reason = "opaque: block \"weird\\name\"\nwith newline\tand tab";
  const std::string line = to_json_line(r);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  LedgerRecord back;
  ASSERT_TRUE(parse_json_line(line, back));
  EXPECT_EQ(back.fallback_reason, r.fallback_reason);
}

TEST(LedgerRecord, ParseRejectsGarbageAndUnknownSchema) {
  LedgerRecord out;
  EXPECT_FALSE(parse_json_line("", out));
  EXPECT_FALSE(parse_json_line("   ", out));
  EXPECT_FALSE(parse_json_line("not json at all", out));
  // A future schema is skipped, not misparsed.
  std::string future = to_json_line(sample_record());
  const auto pos = future.find("\"schema_version\": 3");
  ASSERT_NE(pos, std::string::npos);
  future.replace(pos, std::string("\"schema_version\": 3").size(),
                 "\"schema_version\": 99");
  EXPECT_FALSE(parse_json_line(future, out));
}

TEST(Ledger, InMemoryTailIsBoundedAndChronological) {
  Ledger ledger("", 4);
  for (int i = 0; i < 10; ++i) {
    LedgerRecord r = sample_record();
    r.events = static_cast<std::uint64_t>(i);
    ledger.append(r);
  }
  EXPECT_EQ(ledger.size(), 4u);
  const std::vector<LedgerRecord> tail = ledger.records();
  ASSERT_EQ(tail.size(), 4u);
  // Oldest-first: records 6, 7, 8, 9 survive.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tail[static_cast<std::size_t>(i)].events,
              static_cast<std::uint64_t>(6 + i));
  }
}

TEST(Ledger, FileAppendAndReadBack) {
  const std::string path = ::testing::TempDir() + "ecsim_test_ledger.jsonl";
  std::remove(path.c_str());
  {
    Ledger ledger(path);
    LedgerRecord a = sample_record();
    LedgerRecord b = sample_record();
    b.model = "servo";
    b.backend_used = "interp";
    b.fallback_reason = "toolchain: compiler not found";
    ledger.append(a);
    ledger.append(b);
  }
  // A second Ledger on the same path appends, never truncates.
  {
    Ledger ledger(path);
    LedgerRecord c = sample_record();
    c.model = "third";
    ledger.append(c);
  }
  const std::vector<LedgerRecord> got = read_ledger_file(path);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].model, "chains_200");
  EXPECT_EQ(got[1].model, "servo");
  EXPECT_EQ(got[1].fallback_reason, "toolchain: compiler not found");
  EXPECT_EQ(got[2].model, "third");
  std::remove(path.c_str());
}

TEST(Ledger, ReadMissingFileYieldsEmpty) {
  EXPECT_TRUE(read_ledger_file("/nonexistent/ecsim/ledger.jsonl").empty());
}

TEST(Ledger, UnwritablePathDegradesToInMemory) {
  Ledger ledger("/nonexistent-dir/ledger.jsonl", 8);
  ledger.append(sample_record());
  EXPECT_EQ(ledger.size(), 1u);  // run recording must never fail
}

// ---- the backend::run stamping contract ------------------------------------

TEST(Ledger, EveryBackendRunAppendsARecord) {
  using namespace ecsim;
  sim::Model m = blocks::examples::make_chains(2);
  Ledger& g = Ledger::global();
  const std::size_t before = g.size();

  backend::RunOptions o;
  o.kind = backend::Kind::kInterp;
  o.sim.end_time = 0.05;
  o.model_name = "ledger-test-interp";
  backend::RunResult r = backend::run(m, o);
  ASSERT_GT(g.size(), before);
  const std::vector<LedgerRecord> tail = g.records();
  const LedgerRecord& rec = tail.back();
  EXPECT_EQ(rec.model, "ledger-test-interp");
  EXPECT_EQ(rec.backend_requested, "interp");
  EXPECT_EQ(rec.backend_used, "interp");
  EXPECT_EQ(rec.events, r.events_dispatched);
  EXPECT_GT(rec.wall_s, 0.0);
  EXPECT_GT(rec.events_per_s, 0.0);
}

TEST(Ledger, NativeRunStampsIrHashAndFallbackStampsReason) {
  using namespace ecsim;
  sim::Model m = blocks::examples::make_chains(2);
  Ledger& g = Ledger::global();

  backend::RunOptions o;
  o.kind = backend::Kind::kNative;
  o.sim.end_time = 0.05;
  o.model_name = "ledger-test-native";
  backend::RunResult r = backend::run(m, o);
  ASSERT_EQ(r.used, backend::Kind::kNative)
      << "fell back: " << r.fallback_reason;
  {
    const LedgerRecord rec = g.records().back();
    EXPECT_EQ(rec.backend_used, "native");
    EXPECT_EQ(rec.fallback_reason, "");
    EXPECT_EQ(rec.ir_hash.substr(0, 2), "0x");
  }

  // Forced fallback still stamps — with the reason and the IR hash (the
  // model lowered fine; the toolchain was the problem).
  ::setenv("ECSIM_NATIVE_DISABLE", "1", 1);
  backend::RunResult f = backend::run(m, o);
  ::unsetenv("ECSIM_NATIVE_DISABLE");
  EXPECT_EQ(f.used, backend::Kind::kInterp);
  {
    const LedgerRecord rec = g.records().back();
    EXPECT_EQ(rec.backend_requested, "native");
    EXPECT_EQ(rec.backend_used, "interp");
    EXPECT_EQ(rec.fallback_reason.substr(0, 8), "disabled");
    EXPECT_EQ(rec.ir_hash.substr(0, 2), "0x");
  }
}

// ---- regression diff -------------------------------------------------------

std::string synthetic_bench_json(const std::string& ir_hash,
                                 double native_best) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"model_ir_hash_chains_200\": \"%s\",\n"
                "  \"codegen\": [\n"
                "    {\"scenario\": \"servo\", \"native_best_events_per_s\": "
                "1.0},\n"
                "    {\"scenario\": \"chains_200\", "
                "\"native_best_events_per_s\": %.17g}\n"
                "  ]\n"
                "}\n",
                ir_hash.c_str(), native_best);
  return buf;
}

TEST(LedgerDiffTest, FlagsSyntheticSlowRecordAsRegression) {
  const std::string bench = synthetic_bench_json("0xabc123", 1e6);
  LedgerRecord slow = sample_record();
  slow.ir_hash = "0xabc123";
  slow.events_per_s = 0.85e6;  // 15% below committed: beyond the 10% gate
  const LedgerDiff d =
      diff_latest_against_bench({slow}, bench, "chains_200", 10.0);
  EXPECT_TRUE(d.comparable);
  EXPECT_TRUE(d.regression);
  EXPECT_DOUBLE_EQ(d.committed_events_per_s, 1e6);
  EXPECT_DOUBLE_EQ(d.latest_events_per_s, 0.85e6);
  EXPECT_NE(d.message.find("REGRESSION"), std::string::npos);
}

TEST(LedgerDiffTest, PassesWithinThresholdAndUsesNewestMatch) {
  const std::string bench = synthetic_bench_json("0xabc123", 1e6);
  LedgerRecord old_slow = sample_record();
  old_slow.ir_hash = "0xabc123";
  old_slow.events_per_s = 0.5e6;
  LedgerRecord newer_ok = sample_record();
  newer_ok.ir_hash = "0xabc123";
  newer_ok.events_per_s = 0.95e6;  // 5% below: inside the 10% gate
  LedgerRecord unrelated = sample_record();
  unrelated.ir_hash = "0xother";
  unrelated.events_per_s = 1.0;
  // Newest matching record wins; trailing non-matching records are ignored.
  const LedgerDiff d = diff_latest_against_bench(
      {old_slow, newer_ok, unrelated}, bench, "chains_200", 10.0);
  EXPECT_TRUE(d.comparable);
  EXPECT_FALSE(d.regression);
  EXPECT_DOUBLE_EQ(d.latest_events_per_s, 0.95e6);
}

TEST(LedgerDiffTest, NoMatchingRecordIsNotARegression) {
  const std::string bench = synthetic_bench_json("0xabc123", 1e6);
  LedgerRecord r = sample_record();
  r.ir_hash = "0xsomething-else";
  const LedgerDiff d = diff_latest_against_bench({r}, bench);
  EXPECT_FALSE(d.comparable);
  EXPECT_FALSE(d.regression);
}

TEST(LedgerDiffTest, MissingScenarioInBenchIsNotComparable) {
  const LedgerDiff d = diff_latest_against_bench(
      {sample_record()}, "{\"unrelated\": 1}", "chains_200");
  EXPECT_FALSE(d.comparable);
  EXPECT_FALSE(d.regression);
}

/// A BENCH_p8-shaped report: the scenario commits a Monte Carlo trials/s
/// figure instead of a single-run events/s one.
std::string synthetic_mc_bench_json(const std::string& ir_hash,
                                    double mc_best) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"model_ir_hash_chains_200\": \"%s\",\n"
                "  \"monte_carlo\": [\n"
                "    {\"scenario\": \"servo\", \"mc_best_trials_per_s\": "
                "1.0},\n"
                "    {\"scenario\": \"chains_200\", "
                "\"mc_best_trials_per_s\": %.17g}\n"
                "  ]\n"
                "}\n",
                ir_hash.c_str(), mc_best);
  return buf;
}

TEST(LedgerDiffTest, GatesMonteCarloThroughputAgainstCommittedFigure) {
  const std::string bench = synthetic_mc_bench_json("0xmc1", 1000.0);
  LedgerRecord slow = sample_record();
  slow.ir_hash = "0xmc1";
  slow.events_per_s = 0.0;  // MC record: no single-run figure
  slow.trials_per_s = 850.0;  // 15% below committed: beyond the 10% gate
  const LedgerDiff d =
      diff_latest_against_bench({slow}, bench, "chains_200", 10.0);
  EXPECT_TRUE(d.comparable);
  EXPECT_TRUE(d.regression);
  EXPECT_DOUBLE_EQ(d.committed_trials_per_s, 1000.0);
  EXPECT_DOUBLE_EQ(d.latest_trials_per_s, 850.0);
  EXPECT_NE(d.message.find("REGRESSION"), std::string::npos);

  LedgerRecord ok = slow;
  ok.trials_per_s = 950.0;  // 5% below: inside the gate
  const LedgerDiff d2 =
      diff_latest_against_bench({slow, ok}, bench, "chains_200", 10.0);
  EXPECT_TRUE(d2.comparable);
  EXPECT_FALSE(d2.regression);
  EXPECT_DOUBLE_EQ(d2.latest_trials_per_s, 950.0);  // newest MC record wins
}

TEST(LedgerDiffTest, PerScenarioFiguresDoNotBleedAcrossEntries) {
  // chains_200's entry carries no committed figure at all; the servo entry
  // after it does. The lookup must not pick servo's figure up.
  const std::string bench =
      "{\n"
      "  \"model_ir_hash_chains_200\": \"0xmc1\",\n"
      "  \"monte_carlo\": [\n"
      "    {\"scenario\": \"chains_200\"},\n"
      "    {\"scenario\": \"servo\", \"mc_best_trials_per_s\": 1.0,\n"
      "     \"native_best_events_per_s\": 1.0}\n"
      "  ]\n"
      "}\n";
  const LedgerDiff d =
      diff_latest_against_bench({sample_record()}, bench, "chains_200");
  EXPECT_FALSE(d.comparable);
  EXPECT_FALSE(d.regression);
}

}  // namespace
}  // namespace ecsim::obs
