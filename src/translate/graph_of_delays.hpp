// SynDEx -> Scicos direction: translate the temporal behaviour of a static
// schedule into a *graph of delays* (paper §3.2) spliced into a simulation
// model. The graph re-creates, with Scicos event-processing blocks, the
// instants at which every operation and communication of the implementation
// completes:
//   - sequencing  (§3.2.1): one EventDelay per operation, chained in the
//     per-processor total order;
//   - conditioning (§3.2.2): conditional operations draw their duration from
//     the taken branch (random branch per activation), producing the jitter
//     the paper describes;
//   - synchronization (§3.2.3): a Synchronization block joins the
//     per-processor chain with incoming inter-processor communications.
// The S/H blocks of the original (ideal) design are then re-wired from the
// activation clock to the completion events of their sensor/actuator
// operations — no change to the control design itself, exactly the workflow
// the paper advocates.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "aaa/schedule.hpp"
#include "blocks/event_blocks.hpp"
#include "fault/fault_plan.hpp"
#include "sim/model.hpp"

namespace ecsim::translate {

/// Binds a conditional operation's branch choice to a signal in the model:
/// the paper's "Condition Mapping" function (§3.2.2) reading a selected
/// controller variable. `mapping` turns the signal value into the branch
/// index that executes.
struct ConditionBinding {
  const sim::Block* block = nullptr;  // data source block
  std::size_t port = 0;               // its data output port
  blocks::ConditionMapping mapping;
};

enum class GodMode {
  /// Replay the WCET schedule instants with timetable clocks (cheap, exact
  /// under the stroboscopic-per-operation assumption).
  kTimetable,
  /// Full event-chain translation (EventDelay/EventSelect/Synchronization);
  /// supports execution-time variation and conditioning jitter.
  kEventChain,
};

struct GodOptions {
  GodMode mode = GodMode::kEventChain;
  /// Actual execution time of each operation instance is drawn uniformly
  /// from [bcet_fraction * WCET, WCET]; 1.0 = deterministic WCET.
  double bcet_fraction = 1.0;
  /// Conditional operations take a uniformly random branch per activation.
  /// When false, branch 0 is always taken. Ignored for operations that have
  /// a ConditionBinding in `conditions`.
  bool random_branches = true;
  /// Data-driven conditioning (§3.2.2, Fig. 5): operation name -> binding.
  /// Bound operations are translated as EventSelect -> per-branch EventDelay
  /// -> EventMerge, with the select's condition input wired to the bound
  /// signal.
  std::map<std::string, ConditionBinding> conditions;
  /// Fault schedule (DESIGN.md §3.5): each communication hop gets an
  /// EventFault gate on its *arrival* path, so lost frames never reach the
  /// consumer's Synchronization — the S/H fires one period later with the
  /// next delivered sample (realistic stale-data degradation), while the
  /// medium-order chain still sees the corrupted frame's occupancy.
  /// Delay/duplication faults defer the arrival. Event-chain mode only:
  /// a non-empty plan in timetable mode throws std::invalid_argument.
  fault::FaultPlan fault_plan;
  /// Name prefix for all generated blocks.
  std::string prefix = "god/";
};

/// Where to pick up the completion event of an operation.
struct CompletionSource {
  const sim::Block* block = nullptr;
  std::size_t event_out = 0;
};

struct GraphOfDelays {
  const sim::Block* clock = nullptr;  // period clock (event-chain mode only)
  std::map<aaa::OpId, CompletionSource> op_completion;
  /// Fault gates inserted for GodOptions::fault_plan (empty when fault-free);
  /// read their drops()/defers() after a run for loss accounting.
  std::vector<const blocks::EventFault*> fault_gates;
};

/// Build the graph of delays inside `model`. Throws std::runtime_error if
/// the schedule does not fit within the algorithm period (the co-simulation
/// presumes the real-time constraint makespan <= Ts holds, as SynDEx
/// guarantees before generating code).
GraphOfDelays build_graph_of_delays(sim::Model& model,
                                    const aaa::AlgorithmGraph& alg,
                                    const aaa::ArchitectureGraph& arch,
                                    const aaa::Schedule& sched,
                                    const GodOptions& opts = {});

/// Wire the completion event of `op` to (target, event_in) — e.g. a
/// SampleHold's activation input.
void wire_completion(sim::Model& model, const GraphOfDelays& god, aaa::OpId op,
                     const sim::Block& target, std::size_t event_in);

}  // namespace ecsim::translate
