#include "blocks/sample_hold.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecsim::blocks {

SampleHold::SampleHold(std::string name, std::size_t width,
                       std::vector<double> initial)
    : Block(std::move(name)), initial_(std::move(initial)) {
  if (width == 0) throw std::invalid_argument("SampleHold: width must be >= 1");
  if (initial_.empty()) initial_.assign(width, 0.0);
  if (initial_.size() != width) {
    throw std::invalid_argument("SampleHold: initial size mismatch");
  }
  add_input(width);
  add_output(width);
  add_event_input();
  add_event_output();  // done (fires right after the copy)
}

void SampleHold::initialize(Context& ctx) {
  auto y = ctx.output(0);
  std::copy(initial_.begin(), initial_.end(), y.begin());
}

void SampleHold::on_event(Context& ctx, std::size_t) {
  auto u = ctx.input(0);
  auto y = ctx.output(0);
  std::copy(u.begin(), u.end(), y.begin());
  ctx.emit(0, 0.0);
}


void SampleHold::describe(ir::BlockIr& out) const {
  out.kind = "SampleHold";
  out.attrs.push_back(ir::Attr::of_vec("initial", initial_));
}

}  // namespace ecsim::blocks
