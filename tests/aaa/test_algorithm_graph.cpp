#include "aaa/algorithm_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ecsim::aaa {
namespace {

AlgorithmGraph chain3() {
  AlgorithmGraph g("chain", 0.01);
  const OpId s = g.add_simple("sense", OpKind::kSensor, 1e-4);
  const OpId c = g.add_simple("ctrl", OpKind::kCompute, 5e-4);
  const OpId a = g.add_simple("act", OpKind::kActuator, 1e-4);
  g.add_dependency(s, c, 8.0);
  g.add_dependency(c, a, 8.0);
  return g;
}

TEST(AlgorithmGraph, AddAndFind) {
  const AlgorithmGraph g = chain3();
  EXPECT_EQ(g.num_operations(), 3u);
  EXPECT_EQ(g.find("ctrl"), 1u);
  EXPECT_THROW(g.find("nope"), std::out_of_range);
  EXPECT_EQ(g.sensors(), std::vector<OpId>{0});
  EXPECT_EQ(g.actuators(), std::vector<OpId>{2});
}

TEST(AlgorithmGraph, RejectsBadOperations) {
  AlgorithmGraph g;
  Operation unnamed;
  unnamed.wcet["cpu"] = 1.0;
  EXPECT_THROW(g.add_operation(unnamed), std::invalid_argument);
  Operation no_wcet;
  no_wcet.name = "x";
  EXPECT_THROW(g.add_operation(no_wcet), std::invalid_argument);
  Operation neg;
  neg.name = "y";
  neg.wcet["cpu"] = -1.0;
  EXPECT_THROW(g.add_operation(neg), std::invalid_argument);
  g.add_simple("a", OpKind::kCompute, 1.0);
  EXPECT_THROW(g.add_simple("a", OpKind::kCompute, 1.0), std::invalid_argument);
}

TEST(AlgorithmGraph, RejectsBadDependencies) {
  AlgorithmGraph g;
  const OpId a = g.add_simple("a", OpKind::kCompute, 1.0);
  EXPECT_THROW(g.add_dependency(a, a), std::invalid_argument);
  EXPECT_THROW(g.add_dependency(a, 7), std::out_of_range);
  EXPECT_THROW(g.add_dependency(a, a, -1.0), std::invalid_argument);
}

TEST(AlgorithmGraph, PredecessorsAndSuccessors) {
  const AlgorithmGraph g = chain3();
  EXPECT_EQ(g.predecessors(1), std::vector<OpId>{0});
  EXPECT_EQ(g.successors(1), std::vector<OpId>{2});
  EXPECT_TRUE(g.predecessors(0).empty());
  EXPECT_TRUE(g.successors(2).empty());
}

TEST(AlgorithmGraph, TopologicalOrderRespectsDeps) {
  const AlgorithmGraph g = chain3();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 3u);
  const auto pos = [&](OpId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(1), pos(2));
}

TEST(AlgorithmGraph, CycleDetected) {
  AlgorithmGraph g;
  const OpId a = g.add_simple("a", OpKind::kCompute, 1.0);
  const OpId b = g.add_simple("b", OpKind::kCompute, 1.0);
  g.add_dependency(a, b);
  g.add_dependency(b, a);
  EXPECT_THROW(g.topological_order(), std::runtime_error);
}

TEST(AlgorithmGraph, TailLevelsAreCriticalPaths) {
  const AlgorithmGraph g = chain3();
  const auto levels = g.tail_levels();
  EXPECT_NEAR(levels[2], 1e-4, 1e-15);          // act alone
  EXPECT_NEAR(levels[1], 5e-4 + 1e-4, 1e-15);   // ctrl + act
  EXPECT_NEAR(levels[0], 7e-4, 1e-15);          // whole chain
  // Comm weight adds per-edge cost.
  const auto weighted = g.tail_levels(1e-5);
  EXPECT_NEAR(weighted[0], 7e-4 + 2.0 * 8.0 * 1e-5, 1e-12);
}

TEST(Operation, ConditionalWcetIsMaxOverBranches) {
  Operation op;
  op.name = "cond";
  Branch b0{"fast", {{"cpu", 1.0}}};
  Branch b1{"slow", {{"cpu", 3.0}}};
  op.branches = {b0, b1};
  EXPECT_TRUE(op.is_conditional());
  EXPECT_DOUBLE_EQ(op.wcet_on("cpu"), 3.0);
  EXPECT_TRUE(op.runs_on("cpu"));
  EXPECT_FALSE(op.runs_on("dsp"));
  EXPECT_THROW(op.wcet_on("dsp"), std::invalid_argument);
}

TEST(Operation, HeterogeneousTypes) {
  Operation op;
  op.name = "f";
  op.wcet["cpu"] = 2.0;
  op.wcet["dsp"] = 0.5;
  EXPECT_TRUE(op.runs_on("dsp"));
  EXPECT_DOUBLE_EQ(op.wcet_on("dsp"), 0.5);
  EXPECT_FALSE(op.runs_on("fpga"));
}

}  // namespace
}  // namespace ecsim::aaa
