// EXP-MR1 (extension: SynDEx's multiperiodic repetitions): cascade control
// of the DC servo — a fast velocity loop every base period (2 ms) and a slow
// position supervisor every 4th period — expanded over the hyperperiod and
// co-simulated on architectures of decreasing speed. The experiment shows
// (a) the hyperperiod schedule honours every instance's release, and (b) the
// slow outer loop's set-point latency compounds with the inner loop's
// actuation latency in a way single-rate analysis cannot capture.
#include "aaa/multirate.hpp"
#include "bench_common.hpp"
#include "blocks/continuous.hpp"
#include "blocks/discrete.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/probe.hpp"
#include "blocks/sample_hold.hpp"
#include "blocks/sources.hpp"
#include "sim/simulator.hpp"
#include "translate/graph_of_delays.hpp"

using namespace ecsim;

namespace {

constexpr double kBase = 0.002;  // inner-loop period (2 ms)

aaa::MultirateSpec cascade_spec(double wcet_scale) {
  aaa::MultirateSpec spec;
  spec.name = "cascade";
  spec.base_period = kBase;
  const std::size_t sense = spec.add_op(
      {"sense", aaa::OpKind::kSensor, {{"cpu", 1e-4 * wcet_scale}}, 1, "P0"});
  const std::size_t inner = spec.add_op(
      {"inner", aaa::OpKind::kCompute, {{"cpu", 3e-4 * wcet_scale}}, 1, {}});
  // Supervisor pinned to the second ECU: set-points cross the bus.
  const std::size_t outer = spec.add_op(
      {"outer", aaa::OpKind::kCompute, {{"cpu", 9e-4 * wcet_scale}}, 4, "P1"});
  const std::size_t act = spec.add_op(
      {"act", aaa::OpKind::kActuator, {{"cpu", 1e-4 * wcet_scale}}, 1, "P0"});
  spec.add_dep(sense, inner, 8.0);
  spec.add_dep(sense, outer, 8.0);
  spec.add_dep(outer, inner, 4.0);
  spec.add_dep(inner, act, 4.0);
  return spec;
}

struct CascadeResult {
  double iae = 0.0;
  double settle = 0.0;
  double act_latency_mean = 0.0;
  double makespan = 0.0;
};

CascadeResult run_cascade(const aaa::ArchitectureGraph& arch,
                          double wcet_scale) {
  const aaa::AlgorithmGraph alg = expand_hyperperiod(cascade_spec(wcet_scale));
  const aaa::Schedule sched = aaa::adequate(alg, arch);
  sched.validate(alg, arch);

  // Scicos-style diagram: servo plant, one sampler for [pos, vel], the slow
  // position controller producing v_ref, the fast velocity controller
  // producing u, ZOH actuator.
  sim::Model m;
  control::StateSpace servo = plants::dc_servo();
  auto& plant = m.add<blocks::StateSpaceCont>(
      "plant", servo.a, servo.b, math::Matrix::identity(2),
      math::Matrix::zeros(2, 1));
  auto& ref = m.add<blocks::Step>("ref", 0.0, 1.0, 0.0);
  auto& sense = m.add<blocks::SampleHold>("sense", 2);
  auto& xr = m.add<blocks::Mux>("xr", std::vector<std::size_t>{2, 1});
  // outer: v_ref = Kp (r - pos)
  const double kp = 5.0;
  auto& outer = m.add<blocks::StateSpaceDisc>(
      "outer", math::Matrix::zeros(0, 0), math::Matrix::zeros(0, 3),
      math::Matrix::zeros(1, 0), math::Matrix{{-kp, 0.0, kp}});
  // inner: u = Kv (v_ref - vel)
  const double kv = 0.02;
  auto& xv = m.add<blocks::Mux>("xv", std::vector<std::size_t>{2, 1});
  auto& inner = m.add<blocks::StateSpaceDisc>(
      "inner", math::Matrix::zeros(0, 0), math::Matrix::zeros(0, 3),
      math::Matrix::zeros(1, 0), math::Matrix{{0.0, -kv, kv}});
  auto& act = m.add<blocks::SampleHold>("act", 1);
  auto& ysel = m.add<blocks::Gain>("ysel", math::Matrix{{1.0, 0.0}});
  auto& probe_y = m.add<blocks::Probe>("probe_y", 1, 1e-3);
  m.connect(plant, 0, sense, 0);
  m.connect(sense, 0, xr, 0);
  m.connect(ref, 0, xr, 1);
  m.connect(xr, 0, outer, 0);
  m.connect(sense, 0, xv, 0);
  m.connect(outer, 0, xv, 1);
  m.connect(xv, 0, inner, 0);
  m.connect(inner, 0, act, 0);
  m.connect(act, 0, plant, 0);
  m.connect(plant, 0, ysel, 0);
  m.connect(ysel, 0, probe_y, 0);

  // Splice the hyperperiod graph of delays; every instance completion event
  // activates the corresponding block.
  const translate::GraphOfDelays god =
      translate::build_graph_of_delays(m, alg, arch, sched, {});
  for (aaa::OpId op = 0; op < alg.num_operations(); ++op) {
    const std::string& name = alg.op(op).name;
    if (name.starts_with("sense@")) {
      translate::wire_completion(m, god, op, sense, sense.event_in());
    } else if (name.starts_with("outer@")) {
      translate::wire_completion(m, god, op, outer, outer.event_in());
    } else if (name.starts_with("inner@")) {
      translate::wire_completion(m, god, op, inner, inner.event_in());
    } else if (name.starts_with("act@")) {
      translate::wire_completion(m, god, op, act, act.event_in());
    }
  }

  sim::SimOptions opts;
  opts.end_time = 2.0;
  opts.integrator.max_step = 2e-4;
  sim::Simulator s(m, opts);
  const sim::Trace& trace = s.run();

  CascadeResult res;
  const auto y = trace.series(m.index_of(probe_y));
  res.iae = control::iae(y, 1.0);
  res.settle = control::step_info(y, 1.0).settling_time;
  const auto act_lat = latency::analyze_block_activations(
      trace, "act", kBase, "actuation");
  res.act_latency_mean = act_lat.summary.mean;
  res.makespan = sched.makespan();
  return res;
}

void experiment() {
  bench::banner("EXP-MR1", "(extension: multiperiodic repetitions)",
                "Cascade control (2 ms velocity loop + 8 ms position loop) "
                "expanded over the hyperperiod and co-simulated on slower "
                "and slower architectures.");
  std::printf("%-28s %12s %14s %10s %12s\n", "architecture", "makespan[ms]",
              "La mean [ms]", "IAE", "settle [s]");
  struct Case {
    const char* name;
    double wcet_scale;
    double bus_latency;
  };
  const Case cases[] = {
      {"quasi-ideal (x0.01)", 0.01, 1e-6},
      {"nominal 2-proc", 1.0, 5e-5},
      {"slow cpu (x1.8)", 1.8, 5e-5},
      {"slow cpu + slow bus", 1.8, 2e-4},
      {"overloaded (x3)", 3.0, 4e-4},
  };
  for (const Case& c : cases) {
    auto arch = aaa::ArchitectureGraph::bus_architecture(2, 1e5, c.bus_latency);
    try {
      const CascadeResult r = run_cascade(arch, c.wcet_scale);
      std::printf("%-28s %12.3f %14.3f %s %12.4f\n", c.name, 1e3 * r.makespan,
                  1e3 * r.act_latency_mean, bench::metric(r.iae).c_str(),
                  r.settle);
    } catch (const std::runtime_error&) {
      // The adequation result violates makespan <= hyperperiod: the
      // methodology rejects this implementation before any simulation.
      std::printf("%-28s %12s %14s %10s %12s\n", c.name, "over-period",
                  "-", "rejected", "-");
    }
  }
  std::printf("\nThe hyperperiod schedule interleaves the slow supervisor with "
              "four fast iterations. For this (robustly tuned) cascade the "
              "compound latency cost is measurable but small — a stability "
              "margin the co-simulation turns from hope into a number.\n\n");
}

void BM_HyperperiodExpansion(benchmark::State& state) {
  const aaa::MultirateSpec spec = cascade_spec(1.0);
  for (auto _ : state) {
    auto alg = expand_hyperperiod(spec);
    benchmark::DoNotOptimize(alg);
  }
}
BENCHMARK(BM_HyperperiodExpansion);

void BM_CascadeCosim(benchmark::State& state) {
  const auto arch = aaa::ArchitectureGraph::bus_architecture(2, 1e5, 5e-5);
  for (auto _ : state) {
    auto r = run_cascade(arch, 1.0);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CascadeCosim)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  experiment();
  return bench::run_benchmarks(argc, argv);
}
