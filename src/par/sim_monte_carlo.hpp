// Simulator-level Monte Carlo (DESIGN.md §3.8): many trials of one block
// diagram, each seeded from its own decorrelated stream, executed W trials
// per instruction through sim::BatchedSim's lockstep lanes. The contract is
// the one the batched engine guarantees: every trial's trace is
// bit-identical to a scalar Simulator run with the same seed, so the per-
// trial digests — and therefore every statistic derived from the traces —
// are invariant under batch width and thread count. Width 1 short-circuits
// to a reused scalar Simulator, which doubles as the honest baseline the
// EXP-P8 speedup bench compares against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "par/batch_runner.hpp"
#include "sim/simulator.hpp"
#include "simd/batched_sim.hpp"

namespace ecsim::sweep {

struct SimMonteCarloSpec {
  std::size_t trials = 64;
  /// Per-trial simulation options; `seed` is overridden per trial from the
  /// batch stream family.
  sim::SimOptions sim;
  /// Lanes per BatchedSim batch: 0 = simd::preferred_batch_width(),
  /// 1 = scalar Simulator path (the baseline), 2..64 = lockstep lanes.
  std::size_t batch_width = 0;
  /// Ledger label. Non-empty => one obs::Ledger record is stamped with the
  /// run's trials/s; empty => no ledger traffic (hot in-loop sweeps).
  std::string model;
};

struct SimMonteCarloResult {
  std::size_t trials = 0;
  std::size_t batch_width = 1;  // effective lanes per batch
  std::size_t threads = 1;      // BatchRunner fan-out the trials rode on
  /// Lanes the batched engine had to spill to the scalar path (0 on the
  /// width-1 baseline, and on diagrams whose lanes stay in lockstep).
  std::size_t evictions = 0;
  std::uint64_t events = 0;  // dispatched events, summed over trials
  double wall_s = 0.0;
  double trials_per_s = 0.0;
  /// Canonical IR hash of the trial model (ir::hash_hex) — the identity the
  /// run ledger and BENCH reports key throughput comparisons on.
  std::string ir_hash;
  /// Per-trial trace digests in trial order: a trial's digest depends only
  /// on its seed, never on the lane slot or batch width it rode in.
  std::vector<std::uint64_t> digests;
};

/// Run `spec.trials` simulations of factory()'s diagram on a BatchRunner
/// (batch.seed roots the per-trial stream family). Per-worker engines are
/// built once and reused across that worker's batches. Digest vector is
/// bit-identical for any batch width and thread count.
SimMonteCarloResult run_sim_monte_carlo(
    const sim::BatchedSim::ModelFactory& factory,
    const SimMonteCarloSpec& spec, const par::BatchOptions& batch = {});

/// Printable one-paragraph summary (width, evictions, throughput).
std::string to_string(const SimMonteCarloResult& result);

}  // namespace ecsim::sweep
