// Shortest-hop routing over the processor/medium bipartite graph. Multi-hop
// routes model store-and-forward through intermediate processors.
#pragma once

#include <vector>

#include "aaa/architecture_graph.hpp"

namespace ecsim::aaa {

/// One hop of a route: data moves from `from_proc` to `to_proc` over `medium`.
struct Hop {
  MediumId medium = 0;
  ProcId from_proc = 0;
  ProcId to_proc = 0;
};

using Route = std::vector<Hop>;

/// All-pairs minimal-hop routes (BFS). Routes are stable per construction.
class RouteTable {
 public:
  explicit RouteTable(const ArchitectureGraph& arch);

  /// Route from p to q (empty when p == q). Throws std::runtime_error if the
  /// architecture is disconnected between p and q.
  const Route& route(ProcId p, ProcId q) const;

  /// Sum of per-hop transfer times for `size` data units along route(p, q).
  Time transfer_time(const ArchitectureGraph& arch, ProcId p, ProcId q,
                     double size) const;

  /// Arbitration-aware worst case for one message of `size` units along
  /// route(p, q): every hop adds its raw transfer time plus the worst
  /// access delay its arbitration can impose — one full round of slot wait
  /// under TDMA (tdma_slot * tdma_slots) and the non-preemptive blocking
  /// term under CAN priority arbitration. Interference from other scheduled
  /// messages is NOT included here; the adequation timeline accounts for it
  /// exactly (busy intervals).
  Time worst_case_transfer_time(const ArchitectureGraph& arch, ProcId p,
                                ProcId q, double size) const;

  bool connected(ProcId p, ProcId q) const;

 private:
  std::size_t n_ = 0;
  std::vector<Route> routes_;     // n*n, row-major
  std::vector<bool> reachable_;   // n*n
  const Route& at(ProcId p, ProcId q) const { return routes_[p * n_ + q]; }
};

}  // namespace ecsim::aaa
