// The static, off-line, non-preemptive schedule produced by the adequation:
// a total order of operations on each processor and of communications on
// each medium, with WCET-based start/completion instants (paper §3.2: "this
// off-line non-preemptive schedule defines a total order on the operations
// ... for each hardware component").
#pragma once

#include <string>
#include <vector>

#include "aaa/algorithm_graph.hpp"
#include "aaa/architecture_graph.hpp"
#include "aaa/routing.hpp"

namespace ecsim::aaa {

struct ScheduledOp {
  OpId op = 0;
  ProcId proc = 0;
  Time start = 0.0;
  Time end = 0.0;
};

struct ScheduledComm {
  std::size_t dep_index = 0;  // index into AlgorithmGraph::dependencies()
  Hop hop;
  std::size_t hop_index = 0;  // position within the multi-hop route
  Time start = 0.0;
  Time end = 0.0;
};

class Schedule {
 public:
  Schedule(std::size_t n_procs, std::size_t n_media)
      : proc_order_(n_procs), medium_order_(n_media) {}

  std::size_t add_op(ScheduledOp so);
  std::size_t add_comm(ScheduledComm sc);

  const std::vector<ScheduledOp>& ops() const { return ops_; }
  const std::vector<ScheduledComm>& comms() const { return comms_; }
  /// Indices into ops() in execution order on processor p.
  const std::vector<std::size_t>& ops_on(ProcId p) const {
    return proc_order_.at(p);
  }
  /// Indices into comms() in execution order on medium m.
  const std::vector<std::size_t>& comms_on(MediumId m) const {
    return medium_order_.at(m);
  }

  /// Scheduled entry of a given algorithm operation; throws if absent.
  const ScheduledOp& of_op(OpId id) const;
  bool has_op(OpId id) const;

  Time makespan() const;

  std::size_t num_procs() const { return proc_order_.size(); }
  std::size_t num_media() const { return medium_order_.size(); }

  /// Structural validation against the algorithm/architecture:
  ///  - per-component intervals are ordered and non-overlapping;
  ///  - every data dependency is satisfied (producer end <= consumer start,
  ///    with route communications in between for cross-processor deps);
  ///  - every op is scheduled exactly once on a compatible processor.
  /// Throws std::runtime_error describing the first violation.
  void validate(const AlgorithmGraph& alg, const ArchitectureGraph& arch) const;

  /// Human-readable Gantt-style listing.
  std::string to_string(const AlgorithmGraph& alg,
                        const ArchitectureGraph& arch) const;

 private:
  std::vector<ScheduledOp> ops_;
  std::vector<ScheduledComm> comms_;
  std::vector<std::vector<std::size_t>> proc_order_;
  std::vector<std::vector<std::size_t>> medium_order_;
};

}  // namespace ecsim::aaa
