#include "control/state_space.hpp"

#include <gtest/gtest.h>

#include "mathlib/linalg.hpp"

namespace ecsim::control {
namespace {

TEST(StateSpace, ValidateCatchesShapeErrors) {
  StateSpace s;
  s.a = Matrix(2, 3);
  s.b = Matrix(2, 1);
  s.c = Matrix(1, 2);
  s.d = Matrix(1, 1);
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.a = Matrix(2, 2);
  s.b = Matrix(1, 1);
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.b = Matrix(2, 1);
  s.c = Matrix(1, 3);
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.c = Matrix(1, 2);
  s.d = Matrix(2, 1);
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.d = Matrix(1, 1);
  s.validate();  // now consistent
  s.discrete = true;
  s.ts = 0.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(StateSpace, StabilityPredicates) {
  StateSpace ct;
  ct.a = Matrix{{-1.0, 0.0}, {0.0, -2.0}};
  ct.b = Matrix(2, 1);
  ct.c = Matrix(1, 2);
  ct.d = Matrix(1, 1);
  EXPECT_TRUE(ct.is_stable());
  ct.a(0, 0) = 0.5;
  EXPECT_FALSE(ct.is_stable());

  StateSpace dt = ct;
  dt.discrete = true;
  dt.ts = 0.1;
  dt.a = Matrix{{0.9, 0.0}, {0.0, -0.5}};
  EXPECT_TRUE(dt.is_stable());
  dt.a(0, 0) = 1.1;
  EXPECT_FALSE(dt.is_stable());
}

TEST(StateSpace, MakeStateSystem) {
  const StateSpace s = make_state_system(Matrix{{0.0, 1.0}, {0.0, 0.0}},
                                         Matrix{{0.0}, {1.0}});
  EXPECT_EQ(s.num_outputs(), 2u);
  EXPECT_TRUE(math::approx_equal(s.c, Matrix::identity(2)));
}

TEST(Tf2Ss, SecondOrderMatchesCanonicalForm) {
  // G(s) = 1000 / (s^2 + s)
  const StateSpace s = tf2ss({1000.0}, {1.0, 1.0, 0.0});
  EXPECT_EQ(s.order(), 2u);
  // DC behaviour encoded: A has a zero eigenvalue (integrator).
  EXPECT_NEAR(math::determinant(s.a), 0.0, 1e-12);
}

TEST(Tf2Ss, Validation) {
  EXPECT_THROW(tf2ss({1.0, 0.0, 0.0}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(tf2ss({1.0}, {0.0, 1.0}), std::invalid_argument);
}

TEST(Rank, DetectsDeficiency) {
  EXPECT_EQ(rank(Matrix::identity(3)), 3u);
  EXPECT_EQ(rank(Matrix{{1.0, 2.0}, {2.0, 4.0}}), 1u);
  EXPECT_EQ(rank(Matrix::zeros(2, 2)), 0u);
  EXPECT_EQ(rank(Matrix{{1.0, 0.0, 3.0}, {0.0, 1.0, 2.0}}), 2u);
}

TEST(Controllability, DoubleIntegrator) {
  const StateSpace s = make_state_system(Matrix{{0.0, 1.0}, {0.0, 0.0}},
                                         Matrix{{0.0}, {1.0}});
  EXPECT_TRUE(is_controllable(s));
  EXPECT_TRUE(is_observable(s));
}

TEST(Controllability, DecoupledModeIsUncontrollable) {
  const StateSpace s = make_state_system(Matrix{{1.0, 0.0}, {0.0, 2.0}},
                                         Matrix{{1.0}, {0.0}});
  EXPECT_FALSE(is_controllable(s));
}

TEST(Observability, HiddenModeDetected) {
  StateSpace s = make_state_system(Matrix{{1.0, 0.0}, {0.0, 2.0}},
                                   Matrix{{1.0}, {1.0}});
  s.c = Matrix{{1.0, 0.0}};  // second state unobservable
  s.d = Matrix(1, 1);
  EXPECT_FALSE(is_observable(s));
}

}  // namespace
}  // namespace ecsim::control
