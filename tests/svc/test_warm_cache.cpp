// WarmCache bound tests (REVIEW fix): the registry is keyed by
// client-supplied (ts, t_end, seed), so a long-lived daemon must not grow
// without limit — entries are LRU-capped at kMaxWarmEntries per kind.
#include "svc/warm_cache.hpp"

#include <gtest/gtest.h>

namespace ecsim::svc {
namespace {

TEST(WarmCacheTest, LoopEntriesAreBoundedWithLruEviction) {
  WarmCache warm;
  for (std::uint64_t seed = 0; seed < kMaxWarmEntries + 8; ++seed) {
    warm.loop(0.001, 0.01, seed);
  }
  EXPECT_EQ(warm.loop_entries(), kMaxWarmEntries);
  EXPECT_EQ(warm.misses(), kMaxWarmEntries + 8);

  // The oldest seeds were evicted and rebuild as misses...
  const std::uint64_t misses_before = warm.misses();
  warm.loop(0.001, 0.01, 0);
  EXPECT_EQ(warm.misses(), misses_before + 1);
  // ...while the most recent seed is still warm.
  const std::uint64_t hits_before = warm.hits();
  warm.loop(0.001, 0.01, kMaxWarmEntries + 7);
  EXPECT_EQ(warm.hits(), hits_before + 1);
}

TEST(WarmCacheTest, HitRefreshesRecency) {
  WarmCache warm;
  for (std::uint64_t seed = 0; seed < kMaxWarmEntries; ++seed) {
    warm.loop(0.001, 0.01, seed);
  }
  warm.loop(0.001, 0.01, 0);       // refresh the oldest entry
  warm.loop(0.001, 0.01, 999999);  // at cap: evicts seed 1, not seed 0
  EXPECT_EQ(warm.loop_entries(), kMaxWarmEntries);

  const std::uint64_t hits_before = warm.hits();
  warm.loop(0.001, 0.01, 0);
  EXPECT_EQ(warm.hits(), hits_before + 1) << "refreshed entry was evicted";
  const std::uint64_t misses_before = warm.misses();
  warm.loop(0.001, 0.01, 1);
  EXPECT_EQ(warm.misses(), misses_before + 1) << "LRU entry survived the cap";
}

TEST(WarmCacheTest, RebuiltEntryIsUsableAfterEviction) {
  // An evicted-and-rebuilt entry must carry the same IR hash as the
  // original build: eviction changes residency, never identity.
  WarmCache warm;
  const std::string first_hash = warm.loop(0.001, 0.01, 42).ir_hash;
  for (std::uint64_t seed = 100; seed < 100 + kMaxWarmEntries; ++seed) {
    warm.loop(0.001, 0.01, seed);  // flushes seed 42 out
  }
  EXPECT_EQ(warm.loop(0.001, 0.01, 42).ir_hash, first_hash);
}

}  // namespace
}  // namespace ecsim::svc
