file(REMOVE_RECURSE
  "CMakeFiles/test_control.dir/control/test_c2d.cpp.o"
  "CMakeFiles/test_control.dir/control/test_c2d.cpp.o.d"
  "CMakeFiles/test_control.dir/control/test_delay_compensation.cpp.o"
  "CMakeFiles/test_control.dir/control/test_delay_compensation.cpp.o.d"
  "CMakeFiles/test_control.dir/control/test_kalman.cpp.o"
  "CMakeFiles/test_control.dir/control/test_kalman.cpp.o.d"
  "CMakeFiles/test_control.dir/control/test_lqr.cpp.o"
  "CMakeFiles/test_control.dir/control/test_lqr.cpp.o.d"
  "CMakeFiles/test_control.dir/control/test_metrics.cpp.o"
  "CMakeFiles/test_control.dir/control/test_metrics.cpp.o.d"
  "CMakeFiles/test_control.dir/control/test_pid.cpp.o"
  "CMakeFiles/test_control.dir/control/test_pid.cpp.o.d"
  "CMakeFiles/test_control.dir/control/test_state_space.cpp.o"
  "CMakeFiles/test_control.dir/control/test_state_space.cpp.o.d"
  "test_control"
  "test_control.pdb"
  "test_control[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
