// Fault injection inside the executive VM: degradation policies, per-kind
// effects on the instance traces, liveness (lost messages never deadlock the
// interpreter) and the same-seed bit-identity contract (DESIGN.md §3.5).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "aaa/adequation.hpp"
#include "aaa/codegen.hpp"
#include "exec/executive_vm.hpp"

namespace ecsim::exec {
namespace {

struct Fixture {
  aaa::AlgorithmGraph alg{"t", 0.01};
  aaa::ArchitectureGraph arch{aaa::ArchitectureGraph::bus_architecture(2, 1e5)};
  aaa::Schedule sched{0, 0};
  aaa::GeneratedCode code;
  aaa::OpId sense = aaa::kNone, ctrl = aaa::kNone, act = aaa::kNone;

  Fixture() {
    sense = alg.add_simple("sense", aaa::OpKind::kSensor, 2e-4, "P0");
    ctrl = alg.add_simple("ctrl", aaa::OpKind::kCompute, 1e-3, "P1");
    act = alg.add_simple("act", aaa::OpKind::kActuator, 2e-4, "P0");
    alg.add_dependency(sense, ctrl, 8.0);
    alg.add_dependency(ctrl, act, 8.0);
    sched = aaa::adequate(alg, arch);
    code = aaa::generate_executives(alg, arch, sched);
  }

  VmResult run(const VmOptions& opts) const {
    return run_executives(alg, arch, sched, code, opts);
  }

  static VmOptions base_options() {
    VmOptions opts;
    opts.iterations = 20;
    opts.period = 0.01;
    return opts;
  }
};

bool traces_identical(const VmResult& a, const VmResult& b) {
  if (a.ops.size() != b.ops.size() || a.comms.size() != b.comms.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    if (std::memcmp(&a.ops[i], &b.ops[i], sizeof(OpInstance)) != 0) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.comms.size(); ++i) {
    if (std::memcmp(&a.comms[i], &b.comms[i], sizeof(CommInstance)) != 0) {
      return false;
    }
  }
  return true;
}

TEST(VmFaults, ZeroProbabilityPlanIsBitTransparent) {
  Fixture f;
  VmOptions plain = Fixture::base_options();
  plain.exec_time = uniform_fraction_exec_time(0.5);
  VmOptions armed = plain;
  armed.fault_plan.message_loss("bus", 0.0);
  armed.fault_plan.op_overrun("ctrl", 0.0, 3.0);
  const VmResult a = f.run(plain);
  const VmResult b = f.run(armed);
  EXPECT_TRUE(traces_identical(a, b));
  EXPECT_TRUE(b.injections.empty());
  EXPECT_EQ(b.messages_lost, 0u);
  EXPECT_EQ(b.stale_reads, 0u);
}

TEST(VmFaults, TotalLossWithHoldLastSampleStaysLive) {
  Fixture f;
  VmOptions opts = Fixture::base_options();
  opts.fault_plan.message_loss("bus", 1.0);
  opts.fault_policy = fault::DegradationPolicy::kHoldLastSample;
  const VmResult r = f.run(opts);
  EXPECT_FALSE(r.deadlock) << r.deadlock_info;
  // Two bus transfers per iteration, all dropped.
  EXPECT_EQ(r.messages_lost, 2 * opts.iterations);
  EXPECT_GT(r.stale_reads, 0u);
  EXPECT_EQ(r.cycles_skipped, 0u);
  // Every operation instance still executed: holding the stale sample keeps
  // the full schedule alive.
  EXPECT_EQ(r.ops.size(), 3 * opts.iterations);
  ASSERT_FALSE(r.injections.empty());
  for (const fault::Injection& inj : r.injections) {
    EXPECT_EQ(inj.kind, fault::FaultKind::kMessageLoss);
    EXPECT_NE(inj.comm, aaa::kNone);
  }
}

TEST(VmFaults, TotalLossWithSkipCycleDropsComputations) {
  Fixture f;
  VmOptions opts = Fixture::base_options();
  opts.fault_plan.message_loss("bus", 1.0);
  opts.fault_policy = fault::DegradationPolicy::kSkipCycle;
  const VmResult r = f.run(opts);
  EXPECT_FALSE(r.deadlock) << r.deadlock_info;
  EXPECT_GT(r.cycles_skipped, 0u);
  // Skipped cycles execute fewer operation instances than the full grid, yet
  // the interpreter still retires every iteration (sends keep firing).
  EXPECT_LT(r.ops.size(), 3 * opts.iterations);
  EXPECT_GT(r.ops.size(), 0u);
}

TEST(VmFaults, MessageDelayDefersTheConsumer) {
  Fixture f;
  VmOptions plain = Fixture::base_options();
  VmOptions delayed = plain;
  delayed.fault_plan.message_delay("bus", 1.0, 0.002);
  const VmResult a = f.run(plain);
  const VmResult b = f.run(delayed);
  EXPECT_FALSE(b.deadlock) << b.deadlock_info;
  EXPECT_EQ(b.messages_delayed, 2 * plain.iterations);
  const std::vector<Time> base_starts = a.starts(f.ctrl);
  const std::vector<Time> late_starts = b.starts(f.ctrl);
  ASSERT_EQ(base_starts.size(), late_starts.size());
  for (std::size_t i = 0; i < base_starts.size(); ++i) {
    EXPECT_GE(late_starts[i], base_starts[i] + 0.002) << "iteration " << i;
  }
}

TEST(VmFaults, DuplicationExtendsMediumOccupancy) {
  Fixture f;
  VmOptions plain = Fixture::base_options();
  VmOptions dup = plain;
  dup.fault_plan.message_duplicate("bus", 1.0, 2);
  const VmResult a = f.run(plain);
  const VmResult b = f.run(dup);
  EXPECT_FALSE(b.deadlock) << b.deadlock_info;
  EXPECT_EQ(b.messages_duplicated, 2 * plain.iterations);
  ASSERT_EQ(a.comms.size(), b.comms.size());
  for (std::size_t i = 0; i < a.comms.size(); ++i) {
    const Time base = a.comms[i].end - a.comms[i].start;
    const Time faulted = b.comms[i].end - b.comms[i].start;
    // 2 extra copies => the frame occupies the bus for 3x the transfer time.
    EXPECT_NEAR(faulted, 3.0 * base, 1e-12);
  }
}

TEST(VmFaults, OpOverrunInflatesExecutionTime) {
  Fixture f;
  VmOptions opts = Fixture::base_options();
  opts.fault_plan.op_overrun("ctrl", 1.0, 2.0);
  const VmResult r = f.run(opts);  // null exec_time => exactly WCET
  EXPECT_FALSE(r.deadlock) << r.deadlock_info;
  EXPECT_EQ(r.op_overruns, opts.iterations);
  for (const OpInstance& oi : r.ops) {
    if (oi.op != f.ctrl) continue;
    EXPECT_NEAR(oi.end - oi.start, 2e-3, 1e-12);
  }
}

TEST(VmFaults, NodeStopDefersOpsToTheRestart) {
  Fixture f;
  VmOptions opts = Fixture::base_options();
  opts.fault_plan.node_stop("P1", 0.0, 0.015);
  const VmResult r = f.run(opts);
  EXPECT_FALSE(r.deadlock) << r.deadlock_info;
  EXPECT_GT(r.node_stalls, 0u);
  const std::vector<Time> ctrl_starts = r.starts(f.ctrl);
  ASSERT_FALSE(ctrl_starts.empty());
  EXPECT_GE(ctrl_starts.front(), 0.015);
  // P0's ops are unaffected by the outage window itself.
  EXPECT_LT(r.starts(f.sense).front(), 0.015);
}

TEST(VmFaults, WindowRestrictsInjectionsToNominalIterations) {
  Fixture f;
  VmOptions opts = Fixture::base_options();
  // period 0.01: window [0.05, 0.10) == iterations 5..9.
  opts.fault_plan.message_loss("bus", 1.0).window(0.05, 0.10);
  const VmResult r = f.run(opts);
  EXPECT_FALSE(r.deadlock) << r.deadlock_info;
  EXPECT_EQ(r.messages_lost, 2u * 5u);
  for (const fault::Injection& inj : r.injections) {
    EXPECT_GE(inj.iteration, 5u);
    EXPECT_LT(inj.iteration, 10u);
  }
}

TEST(VmFaults, SameSeedReplaysBitIdentically) {
  Fixture f;
  VmOptions opts = Fixture::base_options();
  opts.exec_time = uniform_fraction_exec_time(0.4);
  opts.fault_plan.seed = 99;
  opts.fault_plan.message_loss("bus", 0.3);
  opts.fault_plan.message_delay("bus", 0.3, 0.001);
  opts.fault_plan.op_overrun("", 0.2, 1.5);
  const VmResult a = f.run(opts);
  const VmResult b = f.run(opts);
  EXPECT_TRUE(traces_identical(a, b));
  ASSERT_EQ(a.injections.size(), b.injections.size());
  for (std::size_t i = 0; i < a.injections.size(); ++i) {
    const fault::Injection& x = a.injections[i];
    const fault::Injection& y = b.injections[i];
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.fault, y.fault);
    EXPECT_EQ(x.comm, y.comm);
    EXPECT_EQ(x.op, y.op);
    EXPECT_EQ(x.iteration, y.iteration);
    EXPECT_EQ(x.at, y.at);
  }
  // A different plan seed must change something: the plan is live.
  VmOptions other = opts;
  other.fault_plan.seed = 100;
  EXPECT_FALSE(traces_identical(a, f.run(other)));
}

TEST(VmFaults, InjectionsAreReportedInDeterministicOrder) {
  Fixture f;
  VmOptions opts = Fixture::base_options();
  opts.fault_plan.message_loss("bus", 0.5);
  opts.fault_plan.op_overrun("", 0.5, 2.0);
  const VmResult r = f.run(opts);
  ASSERT_GT(r.injections.size(), 1u);
  EXPECT_TRUE(std::is_sorted(
      r.injections.begin(), r.injections.end(),
      [](const fault::Injection& x, const fault::Injection& y) {
        if (x.iteration != y.iteration) return x.iteration < y.iteration;
        return x.at < y.at;
      }));
}

}  // namespace
}  // namespace ecsim::exec
