#include "mathlib/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "mathlib/stats.hpp"

namespace ecsim::math {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  bool any_diff = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.next_u64() != c.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(5);
  std::vector<double> sample(20000);
  for (double& v : sample) v = rng.uniform();
  const Summary s = summarize(sample);
  EXPECT_NEAR(s.mean, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.uniform_int(5, 3), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  std::vector<double> sample(40000);
  for (double& v : sample) v = rng.normal(2.0, 3.0);
  const Summary s = summarize(sample);
  EXPECT_NEAR(s.mean, 2.0, 0.1);
  EXPECT_NEAR(s.stddev, 3.0, 0.1);
}

TEST(Rng, TruncatedNormalRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.truncated_normal(0.0, 10.0, -1.0, 1.0);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_THROW(rng.truncated_normal(0.0, 1.0, 1.0, -1.0),
               std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.categorical({1.0, 2.0, 1.0})];
  }
  EXPECT_NEAR(counts[0] / 30000.0, 0.25, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.50, 0.02);
  EXPECT_THROW(rng.categorical({}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({-1.0, 2.0}), std::invalid_argument);
}

TEST(Rng, JumpChangesStateDeterministically) {
  Rng a(42), b(42);
  a.jump();
  b.jump();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  // A jumped stream is not the original stream.
  Rng c(42), d(42);
  d.jump();
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    if (c.next_u64() != d.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, SplitIsDeterministicAndDoesNotAdvance) {
  Rng root(7);
  const auto first = root.split(4);
  const auto second = root.split(4);  // same state -> same streams
  ASSERT_EQ(first.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    Rng a = first[i], b = second[i];
    for (int k = 0; k < 64; ++k) EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  // split() must not consume draws from the root stream.
  Rng untouched(7);
  for (int k = 0; k < 64; ++k) EXPECT_EQ(root.next_u64(), untouched.next_u64());
}

TEST(Rng, SplitStreamsDoNotOverlapInOneMillionDraws) {
  // Four decorrelated streams, 250k u64 draws each (1M total): with jumps of
  // 2^128 the subsequences are disjoint by construction, so every value must
  // be distinct (a collision of 64-bit values among 1M uniform draws has
  // probability ~2.7e-8 — any overlap of the streams would show up as exact
  // shared runs instead).
  const auto streams = Rng(12345).split(4);
  std::vector<std::uint64_t> draws;
  draws.reserve(1'000'000);
  for (Rng s : streams) {
    for (int i = 0; i < 250'000; ++i) draws.push_back(s.next_u64());
  }
  std::sort(draws.begin(), draws.end());
  EXPECT_EQ(std::adjacent_find(draws.begin(), draws.end()), draws.end());
}

TEST(Rng, SplitStreamZeroEqualsRoot) {
  Rng root(99);
  auto streams = root.split(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(streams[0].next_u64(), root.next_u64());
  }
}

TEST(Rng, LaneInterleavedFillMatchesSequentialDrawsByteForByte) {
  // The batched Monte Carlo contract (DESIGN.md §3.8): drawing one value
  // from each of W split streams per round — the lane-interleaved order the
  // lockstep engine uses — yields exactly the per-stream sequences a scalar
  // loop over the same streams would draw. Lane l, round r of the
  // interleaved fill must be byte-identical to draw r of stream l.
  constexpr std::size_t kLanes = 8;
  constexpr std::size_t kRounds = 256;

  std::vector<Rng> interleaved = Rng(2024).split(kLanes);
  std::vector<Rng> sequential = Rng(2024).split(kLanes);

  std::vector<std::uint64_t> lane_u64(kLanes);
  std::vector<double> lane_uniform(kLanes);
  for (std::size_t r = 0; r < kRounds; ++r) {
    fill_lanes_u64(interleaved, lane_u64);
    for (std::size_t l = 0; l < kLanes; ++l) {
      EXPECT_EQ(lane_u64[l], sequential[l].next_u64())
          << "round " << r << " lane " << l;
    }
  }
  // Same claim through the double path: uniform() is a pure function of
  // next_u64(), so the interleaving must preserve bit patterns too.
  for (std::size_t r = 0; r < kRounds; ++r) {
    fill_lanes_uniform(interleaved, lane_uniform);
    for (std::size_t l = 0; l < kLanes; ++l) {
      const double want = sequential[l].uniform();
      EXPECT_EQ(std::memcmp(&lane_uniform[l], &want, sizeof(double)), 0)
          << "round " << r << " lane " << l;
    }
  }
}

TEST(Rng, FillLanesRejectsSizeMismatch) {
  std::vector<Rng> streams = Rng(1).split(4);
  std::vector<std::uint64_t> u64_out(3);
  std::vector<double> d_out(5);
  EXPECT_THROW(fill_lanes_u64(streams, u64_out), std::invalid_argument);
  EXPECT_THROW(fill_lanes_uniform(streams, d_out), std::invalid_argument);
}

}  // namespace
}  // namespace ecsim::math
