#include "aaa/routing.hpp"

#include <deque>
#include <stdexcept>

namespace ecsim::aaa {

RouteTable::RouteTable(const ArchitectureGraph& arch)
    : n_(arch.num_processors()),
      routes_(n_ * n_),
      reachable_(n_ * n_, false) {
  // BFS from each source processor over edges (proc -[medium]-> proc).
  for (ProcId src = 0; src < n_; ++src) {
    std::vector<bool> visited(n_, false);
    std::vector<Hop> via(n_);       // hop that reached each proc
    std::vector<ProcId> parent(n_, kNone);
    visited[src] = true;
    std::deque<ProcId> frontier{src};
    while (!frontier.empty()) {
      const ProcId cur = frontier.front();
      frontier.pop_front();
      for (MediumId m : arch.media_of(cur)) {
        for (ProcId nb : arch.procs_on(m)) {
          if (visited[nb]) continue;
          visited[nb] = true;
          via[nb] = Hop{m, cur, nb};
          parent[nb] = cur;
          frontier.push_back(nb);
        }
      }
    }
    for (ProcId dst = 0; dst < n_; ++dst) {
      if (!visited[dst]) continue;
      reachable_[src * n_ + dst] = true;
      if (dst == src) continue;
      Route rev;
      for (ProcId cur = dst; cur != src; cur = parent[cur]) {
        rev.push_back(via[cur]);
      }
      Route& route = routes_[src * n_ + dst];
      route.assign(rev.rbegin(), rev.rend());
    }
  }
}

const Route& RouteTable::route(ProcId p, ProcId q) const {
  if (p >= n_ || q >= n_) throw std::out_of_range("RouteTable::route");
  if (!reachable_[p * n_ + q]) {
    throw std::runtime_error("RouteTable: processors are not connected");
  }
  return at(p, q);
}

Time RouteTable::transfer_time(const ArchitectureGraph& arch, ProcId p,
                               ProcId q, double size) const {
  Time total = 0.0;
  for (const Hop& h : route(p, q)) {
    total += arch.medium(h.medium).transfer_time(size);
  }
  return total;
}

Time RouteTable::worst_case_transfer_time(const ArchitectureGraph& arch,
                                          ProcId p, ProcId q,
                                          double size) const {
  Time total = 0.0;
  for (const Hop& h : route(p, q)) {
    const Medium& m = arch.medium(h.medium);
    total += m.transfer_time(size);
    switch (m.arbitration) {
      case Arbitration::kTdma:
        // Worst case the message just missed its owner slot: a full round.
        total += m.tdma_slot * static_cast<double>(m.tdma_slots);
        break;
      case Arbitration::kCanPriority:
        total += m.can_blocking;
        break;
      case Arbitration::kImmediate:
        break;
    }
  }
  return total;
}

bool RouteTable::connected(ProcId p, ProcId q) const {
  if (p >= n_ || q >= n_) return false;
  return reachable_[p * n_ + q];
}

}  // namespace ecsim::aaa
