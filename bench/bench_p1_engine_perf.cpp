// EXP-P1 (supporting): throughput of the hybrid simulation engine — event
// dispatch rate, ODE integration cost, and scaling with model size. Not a
// paper figure; establishes that the co-simulation methodology is cheap
// enough to sit inside a design loop.
#include <chrono>

#include "bench_common.hpp"
#include "blocks/continuous.hpp"
#include "blocks/discrete.hpp"
#include "blocks/event_blocks.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sources.hpp"
#include "sim/simulator.hpp"

using namespace ecsim;

namespace {

void experiment() {
  bench::banner("EXP-P1", "(engine throughput, supporting)",
                "Hybrid engine scaling: events/s and continuous states "
                "integrated, vs model size.");
  std::printf("%12s %12s %14s %16s\n", "chains", "events", "wall time [ms]",
              "events/second");
  for (const std::size_t chains : {1u, 10u, 50u, 200u}) {
    sim::Model m;
    auto& clk = m.add<blocks::Clock>("clk", 1e-3);
    for (std::size_t c = 0; c < chains; ++c) {
      auto& d1 = m.add<blocks::EventDelay>("d1_" + std::to_string(c), 1e-4);
      auto& d2 = m.add<blocks::EventDelay>("d2_" + std::to_string(c), 2e-4);
      auto& n = m.add<blocks::EventCounter>("n_" + std::to_string(c));
      m.connect_event(clk, 0, d1, d1.event_in());
      m.connect_event(d1, d1.event_out(), d2, d2.event_in());
      m.connect_event(d2, d2.event_out(), n, 0);
    }
    sim::Simulator s(m, sim::SimOptions{.end_time = 1.0});
    const auto t0 = std::chrono::steady_clock::now();
    s.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::printf("%12zu %12zu %14.2f %16.0f\n", chains, s.events_dispatched(),
                ms, 1e3 * static_cast<double>(s.events_dispatched()) / ms);
  }
  std::printf("\n");
}

void BM_EventDispatch(benchmark::State& state) {
  const auto chains = static_cast<std::size_t>(state.range(0));
  sim::Model m;
  auto& clk = m.add<blocks::Clock>("clk", 1e-3);
  for (std::size_t c = 0; c < chains; ++c) {
    auto& d = m.add<blocks::EventDelay>("d" + std::to_string(c), 1e-4);
    m.connect_event(clk, 0, d, d.event_in());
  }
  sim::Simulator s(m, sim::SimOptions{.end_time = 1.0});
  for (auto _ : state) {
    s.run();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(s.events_dispatched() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventDispatch)->Arg(1)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_OdeIntegration(benchmark::State& state) {
  const auto order = static_cast<std::size_t>(state.range(0));
  // Stable random-ish tridiagonal system.
  math::Matrix a(order, order);
  for (std::size_t i = 0; i < order; ++i) {
    a(i, i) = -2.0;
    if (i > 0) a(i, i - 1) = 0.5;
    if (i + 1 < order) a(i, i + 1) = 0.5;
  }
  math::Matrix b = math::Matrix::ones(order, 1);
  math::Matrix c = math::Matrix::ones(1, order);
  sim::Model m;
  auto& u = m.add<blocks::Sine>("u", 1.0, 5.0);
  auto& plant = m.add<blocks::StateSpaceCont>("p", a, b, c,
                                              math::Matrix::zeros(1, 1));
  m.connect(u, 0, plant, 0);
  sim::SimOptions opts;
  opts.end_time = 0.1;
  opts.integrator.max_step = 1e-4;
  sim::Simulator s(m, opts);
  for (auto _ : state) {
    s.run();
    benchmark::DoNotOptimize(s.output_value(plant, 0));
  }
  state.SetComplexityN(static_cast<int64_t>(order));
}
BENCHMARK(BM_OdeIntegration)->Arg(2)->Arg(8)->Arg(32)->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_CombinationalRefresh(benchmark::State& state) {
  // Long feedthrough chain: stresses topological evaluation.
  const auto depth = static_cast<std::size_t>(state.range(0));
  sim::Model m;
  auto& src = m.add<blocks::Sine>("src", 1.0, 1.0);
  const sim::Block* prev = &src;
  for (std::size_t i = 0; i < depth; ++i) {
    auto& g = m.add<blocks::Gain>("g" + std::to_string(i), 1.0001);
    m.connect(*prev, 0, g, 0);
    prev = &g;
  }
  auto& x = m.add<blocks::Integrator>("x", 0.0);
  m.connect(*prev, 0, x, 0);
  sim::SimOptions opts;
  opts.end_time = 0.01;
  opts.integrator.max_step = 1e-5;
  sim::Simulator s(m, opts);
  for (auto _ : state) {
    s.run();
    benchmark::DoNotOptimize(s.output_value(x, 0));
  }
}
BENCHMARK(BM_CombinationalRefresh)->Arg(8)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  experiment();
  return bench::run_benchmarks(argc, argv);
}
