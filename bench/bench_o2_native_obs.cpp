// EXP-O2: observability cost on the NATIVE backend (ABI v2, DESIGN.md
// §3.6/§3.7). Since PR 7 an attached Tracer/MetricsRegistry no longer forces
// the interpreter: the generated module calls back into the host through the
// NativeObsTable. This bench prices that bridge on the EXP-P1/P6 chains_200
// event workload (~601k events), four modes interleaved best-of-7:
//
//   interp             PR-4 interpreter hot path, no obs (the 1.5x floor)
//   native             warm module, no table — the PR-6 number
//   native+obs off     table attached, tracer disabled, no metrics — the
//                      price of *having* the callback hooks live
//   native+obs on      tracer enabled + full metrics — the price of
//                      recording every dispatch through the C table
//
// HARD CHECK: with obs enabled the native trace AND the metrics snapshot
// must be bit-identical to the interpreter's with the same obs attached.
// GUARD (ctest -C bench, bench_o2_native_obs_guard): attached-but-disabled
// overhead <= 2% of plain native (mirroring bench_o1's interpreter guard),
// and native-with-obs-attached-but-disabled retains >= 1.5x the interpreter
// events/s — obs must not claw back the codegen win.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "backend/native_abi.hpp"
#include "backend/native_backend.hpp"
#include "backend/native_codegen.hpp"
#include "backend/obs_abi.hpp"
#include "bench_common.hpp"
#include "blocks/examples.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/compiled_model.hpp"
#include "sim/simulator.hpp"

using namespace ecsim;

namespace {

constexpr int kReps = 7;
constexpr double kMinRetainedSpeedup = 1.5;
constexpr double kMaxDisabledOverheadPct = 2.0;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

sim::SimOptions chain_opts() {
  sim::SimOptions o;
  o.end_time = 1.0;
  o.reserve_queue = 1024;
  return o;
}

backend::NativeRunOptions native_opts(const sim::SimOptions& o) {
  backend::NativeRunOptions n;
  n.end_time = o.end_time;
  n.integrator_kind = static_cast<int>(o.integrator.kind);
  n.max_step = o.integrator.max_step;
  n.rel_tol = o.integrator.rel_tol;
  n.abs_tol = o.integrator.abs_tol;
  n.min_step = o.integrator.min_step;
  n.seed = o.seed;
  n.max_events = o.max_events;
  n.reserve_queue = o.reserve_queue;
  return n;
}

/// One timed module run; returns seconds (negative on failure).
double native_run_once(const backend::NativeModule& mod,
                       backend::NativeRunOptions& n, sim::Trace& trace,
                       std::size_t& events) {
  char err[1024] = {0};
  const auto t0 = std::chrono::steady_clock::now();
  if (mod.run(&n, &trace, &events, err, sizeof err) != 0) {
    std::fprintf(stderr, "native run failed: %s\n", err);
    return -1.0;
  }
  return seconds_since(t0);
}

int experiment() {
  bench::banner("EXP-O2", "(native-backend observability, ABI v2)",
                "Tracer/metrics riding through the NativeObsTable callback "
                "bridge on the chains_200 workload: bit-identical to the "
                "interpreter with obs attached, near-free when disabled.");

  sim::Model m = blocks::examples::make_chains(200);
  const sim::SimOptions opts = chain_opts();
  const ir::Model irm = sim::build_ir(m, "chains_200");
  const std::string source = backend::generate_native_source(irm);
  const backend::NativeModule& mod = backend::load_native_module(irm, source);

  // ---- hard check: obs-enabled native == obs-enabled interpreter --------
  obs::Tracer interp_tr(1u << 16);
  interp_tr.set_enabled(true);
  obs::MetricsRegistry interp_reg;
  sim::SimOptions iopts = opts;
  iopts.tracer = &interp_tr;
  iopts.metrics = &interp_reg;
  sim::Simulator s_obs(sim::CompiledModel(m), iopts);
  s_obs.run();

  obs::Tracer native_tr(1u << 16);
  native_tr.set_enabled(true);
  obs::MetricsRegistry native_reg;
  const backend::NativeObsTable check_table =
      backend::make_obs_table(&native_tr, &native_reg);
  backend::NativeRunOptions ncheck = native_opts(opts);
  ncheck.obs = &check_table;
  sim::Trace ntrace;
  std::size_t nevents = 0;
  if (native_run_once(mod, ncheck, ntrace, nevents) < 0.0) return 1;
  const bool traces_identical =
      nevents == s_obs.events_dispatched() && ntrace == s_obs.trace();
  const bool metrics_identical = native_reg.to_json() == interp_reg.to_json();

  // ---- timed modes ------------------------------------------------------
  sim::Simulator s_interp(sim::CompiledModel(m), opts);
  s_interp.run();  // warm

  backend::NativeRunOptions n_plain = native_opts(opts);

  obs::Tracer tr_off;  // attached, never enabled, no metrics (as bench_o1)
  const backend::NativeObsTable off_table =
      backend::make_obs_table(&tr_off, nullptr);
  backend::NativeRunOptions n_off = native_opts(opts);
  n_off.obs = &off_table;

  obs::Tracer tr_on(1u << 16);
  tr_on.set_enabled(true);
  obs::MetricsRegistry reg_on;
  const backend::NativeObsTable on_table =
      backend::make_obs_table(&tr_on, &reg_on);
  backend::NativeRunOptions n_on = native_opts(opts);
  n_on.obs = &on_table;

  sim::Trace scratch;
  std::size_t events = 0;
  if (native_run_once(mod, n_plain, scratch, events) < 0.0) return 1;
  if (native_run_once(mod, n_off, scratch, events) < 0.0) return 1;
  if (native_run_once(mod, n_on, scratch, events) < 0.0) return 1;

  double t_interp = 1e300, t_plain = 1e300, t_off = 1e300, t_on = 1e300;
  for (int r = 0; r < kReps; ++r) {
    {
      const auto t0 = std::chrono::steady_clock::now();
      s_interp.run();
      t_interp = std::min(t_interp, seconds_since(t0));
    }
    double t = native_run_once(mod, n_plain, scratch, events);
    if (t < 0.0) return 1;
    t_plain = std::min(t_plain, t);
    t = native_run_once(mod, n_off, scratch, events);
    if (t < 0.0) return 1;
    t_off = std::min(t_off, t);
    t = native_run_once(mod, n_on, scratch, events);
    if (t < 0.0) return 1;
    t_on = std::min(t_on, t);
  }

  const auto ev = static_cast<double>(events);
  const double eps_interp = ev / t_interp;
  const double eps_plain = ev / t_plain;
  const double eps_off = ev / t_off;
  const double eps_on = ev / t_on;
  const double ovh_off = 100.0 * (t_off - t_plain) / t_plain;
  const double ovh_on = 100.0 * (t_on - t_plain) / t_plain;
  const double retained = eps_off / eps_interp;

  const bool identical = traces_identical && metrics_identical;
  const bool pass = identical && ovh_off <= kMaxDisabledOverheadPct &&
                    retained >= kMinRetainedSpeedup;

  std::printf("%-18s %12.0f %14s %10s\n", "mode", ev, "events/s",
              "overhead");
  std::printf("%-18s %12s %14.0f %10s\n", "interp", "", eps_interp, "-");
  std::printf("%-18s %12s %14.0f %10s\n", "native", "", eps_plain, "-");
  std::printf("%-18s %12s %14.0f %+9.2f%%\n", "native+obs off", "", eps_off,
              ovh_off);
  std::printf("%-18s %12s %14.0f %+9.2f%%\n", "native+obs on", "", eps_on,
              ovh_on);
  std::printf("\nbit-identity vs interp-with-obs: traces %s, metrics %s\n",
              traces_identical ? "identical" : "DIVERGED",
              metrics_identical ? "identical" : "DIVERGED");
  std::printf("guard: disabled overhead %.2f%% (<= %.1f%%), retained "
              "%.2fx interp (>= %.2fx) -> %s\n\n",
              ovh_off, kMaxDisabledOverheadPct, retained, kMinRetainedSpeedup,
              pass ? "PASS" : "FAIL");

  bench::JsonReport report("EXP-O2");
  report.model_ir_hash("chains_200", m);
  report.begin_array("native_obs");
  report.begin_object();
  report.field("scenario", std::string("chains_200"));
  report.field("events", events);
  report.field("reps", static_cast<std::size_t>(kReps));
  report.field("interp_events_per_s", eps_interp);
  report.field("native_events_per_s", eps_plain);
  // Keyed as ledger.cpp expects so `ecsim_flow ledger diff --bench=
  // BENCH_o2.json` can gate local runs against this report too.
  report.field("native_best_events_per_s", eps_plain);
  report.field("native_obs_disabled_events_per_s", eps_off);
  report.field("native_obs_enabled_events_per_s", eps_on);
  report.field("disabled_overhead_pct", ovh_off);
  report.field("enabled_overhead_pct", ovh_on);
  report.field("retained_speedup_vs_interp", retained);
  report.field("traces_identical",
               std::string(traces_identical ? "yes" : "NO"));
  report.field("metrics_identical",
               std::string(metrics_identical ? "yes" : "NO"));
  report.end_object();
  report.end_array();
  report.begin_array("guard");
  report.begin_object();
  report.field("max_disabled_overhead_pct", kMaxDisabledOverheadPct);
  report.field("measured_disabled_overhead_pct", ovh_off);
  report.field("min_retained_speedup", kMinRetainedSpeedup);
  report.field("measured_retained_speedup", retained);
  report.field("pass", std::string(pass ? "yes" : "NO"));
  report.end_object();
  report.end_array();
  report.write("BENCH_o2.json");
  return pass ? 0 : 1;
}

/// Per-mode steady-state module throughput as google-benchmark cases.
void BM_NativeObs(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  sim::Model m = blocks::examples::make_chains(16);
  const ir::Model irm = sim::build_ir(m, "chains_16");
  const backend::NativeModule& mod =
      backend::load_native_module(irm, backend::generate_native_source(irm));
  obs::Tracer tracer;
  tracer.set_enabled(mode == 2);
  obs::MetricsRegistry metrics;
  const backend::NativeObsTable table = backend::make_obs_table(
      mode >= 1 ? &tracer : nullptr, mode == 2 ? &metrics : nullptr);
  backend::NativeRunOptions n;
  n.end_time = 1.0;
  if (mode >= 1) n.obs = &table;
  sim::Trace trace;
  std::size_t events = 0;
  char err[256];
  for (auto _ : state) {
    if (mod.run(&n, &trace, &events, err, sizeof err) != 0) {
      state.SkipWithError("native run failed");
      return;
    }
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NativeObs)
    ->Arg(0)->Arg(1)->Arg(2)
    ->ArgName("mode")  // 0=no table 1=attached-disabled 2=enabled
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const int rc = experiment();
  const int bench_rc = bench::run_benchmarks(argc, argv);
  return rc != 0 ? rc : bench_rc;
}
