#include "control/kalman.hpp"

#include <stdexcept>

#include "mathlib/linalg.hpp"
#include "mathlib/riccati.hpp"

namespace ecsim::control {

KalmanResult dkalman(const Matrix& a, const Matrix& c, const Matrix& qw,
                     const Matrix& rv) {
  // Duality: DARE on (A', C') with weights (Qw, Rv).
  const Matrix p = math::solve_dare(a.transpose(), c.transpose(), qw, rv);
  // L = A P C' (Rv + C P C')^-1   <=>  L' = (Rv + C P C')^-1 C P A'
  const Matrix lt = math::solve(rv + c * p * c.transpose(),
                                c * p * a.transpose());
  return KalmanResult{lt.transpose(), p};
}

StateSpace observer_compensator(const StateSpace& plant, const Matrix& k,
                                const Matrix& l) {
  plant.validate();
  if (!plant.discrete) {
    throw std::invalid_argument("observer_compensator: need a discrete plant");
  }
  const Matrix& a = plant.a;
  const Matrix& b = plant.b;
  const Matrix& c = plant.c;
  // With u = -K xhat:
  //   xhat+ = (A - B K - L C) xhat + L y
  //   u = -K xhat
  StateSpace comp;
  comp.a = a - b * k - l * c;
  comp.b = l;
  comp.c = -k;
  comp.d = Matrix::zeros(k.rows(), l.cols());
  comp.discrete = true;
  comp.ts = plant.ts;
  comp.validate();
  return comp;
}

StateSpace observer_tracking_compensator(const StateSpace& plant,
                                         const Matrix& k, const Matrix& l,
                                         double nbar) {
  plant.validate();
  if (!plant.discrete) {
    throw std::invalid_argument(
        "observer_tracking_compensator: need a discrete plant");
  }
  if (plant.num_outputs() != 1 || plant.num_inputs() != 1) {
    throw std::invalid_argument("observer_tracking_compensator: SISO only");
  }
  const Matrix& a = plant.a;
  const Matrix& b = plant.b;
  const Matrix& c = plant.c;
  // Input vector: [y; r].
  StateSpace comp;
  comp.a = a - b * k - l * c;
  comp.b = math::hcat(l, b * Matrix{{nbar}});
  comp.c = -k;
  comp.d = Matrix::zeros(1, 2);
  comp.d(0, 1) = nbar;
  comp.discrete = true;
  comp.ts = plant.ts;
  comp.validate();
  return comp;
}

}  // namespace ecsim::control
