#include "obs/tracer.hpp"

#include <gtest/gtest.h>

namespace ecsim::obs {
namespace {

TEST(Tracer, DisabledByDefaultRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  EXPECT_FALSE(active(&t));
  EXPECT_FALSE(active(nullptr));
  const std::uint32_t n = t.intern("ev");
  const std::uint32_t trk = t.track("trk", Domain::kSim);
  t.instant(n, trk, 1.0);
  t.span(n, trk, 0.0, 2.0);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_TRUE(t.snapshot().empty());
}

TEST(Tracer, InternIsIdempotentAndResolvable) {
  Tracer t;
  const std::uint32_t a = t.intern("alpha");
  const std::uint32_t b = t.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.intern("alpha"), a);
  EXPECT_EQ(t.name(a), "alpha");
  EXPECT_EQ(t.name(b), "beta");
}

TEST(Tracer, TracksDedupeByNameAndDomain) {
  Tracer t;
  const std::uint32_t wall = t.track("runtime/sim", Domain::kWall);
  const std::uint32_t sim = t.track("sim/events", Domain::kSim);
  EXPECT_NE(wall, sim);
  EXPECT_EQ(t.track("runtime/sim", Domain::kWall), wall);
  // Same name, other domain: a distinct track.
  EXPECT_NE(t.track("runtime/sim", Domain::kSim), wall);
  EXPECT_EQ(t.num_tracks(), 3u);
  EXPECT_EQ(t.track_name(sim), "sim/events");
  EXPECT_EQ(t.track_domain(sim), Domain::kSim);
}

TEST(Tracer, RecordsAllPhases) {
  Tracer t;
  t.set_enabled(true);
  const std::uint32_t n = t.intern("x");
  const std::uint32_t arg = t.intern("k");
  const std::uint32_t trk = t.track("trk", Domain::kSim);
  t.span(n, trk, 10.0, 25.0, arg, 3.0);
  t.instant(n, trk, 30.0);
  t.counter(n, trk, 40.0, 7.0);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].phase, Phase::kSpan);
  EXPECT_DOUBLE_EQ(snap[0].ts, 10.0);
  EXPECT_DOUBLE_EQ(snap[0].dur, 15.0);
  EXPECT_EQ(snap[0].arg_name, arg);
  EXPECT_DOUBLE_EQ(snap[0].arg, 3.0);
  EXPECT_EQ(snap[1].phase, Phase::kInstant);
  EXPECT_EQ(snap[1].arg_name, kNoArg);
  EXPECT_EQ(snap[2].phase, Phase::kCounter);
  EXPECT_DOUBLE_EQ(snap[2].arg, 7.0);
}

TEST(Tracer, RingWrapsOverwritingOldest) {
  Tracer t(4);
  t.set_enabled(true);
  EXPECT_EQ(t.capacity(), 4u);
  const std::uint32_t n = t.intern("e");
  const std::uint32_t trk = t.track("trk", Domain::kSim);
  for (int i = 0; i < 6; ++i) {
    t.instant(n, trk, static_cast<double>(i));
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 2u);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest-first chronological order, events 2..5 retained.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(snap[static_cast<std::size_t>(i)].ts,
                     static_cast<double>(i + 2));
  }
}

TEST(Tracer, ClearDropsRecordsKeepsInterning) {
  Tracer t;
  t.set_enabled(true);
  const std::uint32_t n = t.intern("keep");
  t.instant(n, t.track("trk", Domain::kWall), 1.0);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.intern("keep"), n);  // id stable across clear
  EXPECT_EQ(t.num_tracks(), 1u);
}

TEST(ScopedSpan, RecordsOnDestruction) {
  Tracer t;
  t.set_enabled(true);
  const std::uint32_t n = t.intern("scope");
  const std::uint32_t trk = t.track("runtime/x", Domain::kWall);
  const std::uint32_t arg = t.intern("sz");
  {
    ScopedSpan span(&t, n, trk);
    span.set_arg(arg, 42.0);
    EXPECT_EQ(t.size(), 0u);  // nothing until scope exit
  }
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].phase, Phase::kSpan);
  EXPECT_EQ(snap[0].name, n);
  EXPECT_GE(snap[0].dur, 0.0);
  EXPECT_EQ(snap[0].arg_name, arg);
  EXPECT_DOUBLE_EQ(snap[0].arg, 42.0);
}

TEST(ScopedSpan, NullAndDisabledTracersAreSafe) {
  { ScopedSpan span(nullptr, "a", Domain::kWall, "trk"); }
  Tracer off;  // attached but disabled
  { ScopedSpan span(&off, "a", Domain::kWall, "trk"); }
  EXPECT_EQ(off.size(), 0u);
}

TEST(ScopedSpan, ConvenienceCtorInternsNameAndTrack) {
  Tracer t;
  t.set_enabled(true);
  { ScopedSpan span(&t, "work", Domain::kWall, "runtime/unit"); }
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(t.name(snap[0].name), "work");
  EXPECT_EQ(t.track_name(snap[0].track), "runtime/unit");
  EXPECT_EQ(t.track_domain(snap[0].track), Domain::kWall);
}

TEST(Tracer, SimUsConversion) {
  EXPECT_DOUBLE_EQ(sim_us(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sim_us(1.5), 1.5e6);
}

}  // namespace
}  // namespace ecsim::obs
