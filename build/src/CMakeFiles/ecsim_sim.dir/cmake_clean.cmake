file(REMOVE_RECURSE
  "CMakeFiles/ecsim_sim.dir/sim/block.cpp.o"
  "CMakeFiles/ecsim_sim.dir/sim/block.cpp.o.d"
  "CMakeFiles/ecsim_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/ecsim_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/ecsim_sim.dir/sim/integrator.cpp.o"
  "CMakeFiles/ecsim_sim.dir/sim/integrator.cpp.o.d"
  "CMakeFiles/ecsim_sim.dir/sim/model.cpp.o"
  "CMakeFiles/ecsim_sim.dir/sim/model.cpp.o.d"
  "CMakeFiles/ecsim_sim.dir/sim/port.cpp.o"
  "CMakeFiles/ecsim_sim.dir/sim/port.cpp.o.d"
  "CMakeFiles/ecsim_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/ecsim_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/ecsim_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/ecsim_sim.dir/sim/trace.cpp.o.d"
  "libecsim_sim.a"
  "libecsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
