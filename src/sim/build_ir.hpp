// Front-end half of the IR pipeline: lower a structural sim::Model into an
// ir::Model (block table + wires, each block's describe() output) and
// finalize it (derive the layout every backend adopts). See ir/ir.hpp for
// the determinism contract.
#pragma once

#include <string>

#include "ir/ir.hpp"
#include "sim/model.hpp"

namespace ecsim::sim {

/// Lowers `model` to IR and finalizes it. Throws what ir::finalize throws
/// (std::invalid_argument on wire width mismatches, std::runtime_error on
/// algebraic loops). Blocks that do not override describe() come out
/// opaque: structurally complete, not regenerable.
ir::Model build_ir(const Model& model, std::string name = "model");

}  // namespace ecsim::sim
