// Plain-text specification format for the AAA flow — the loadable artifact a
// command-line user writes instead of C++. Line-oriented, '#' comments:
//
//   [algorithm]
//   name   servo-loop
//   period 0.01
//   op  sense sensor   2e-4 @P0      # name kind wcet [@processor]
//   op  ctrl  compute  1e-3
//   op  mode  compute  branch fast 1e-4 branch slow 3e-3
//   op  act   actuator 2e-4 @P0
//   dep sense ctrl 8                 # producer consumer [size]
//   dep ctrl  act  8 prio 1          # optional message priority (lower wins)
//   rate ctrl 4                      # multirate: runs every 4th period
//
//   [architecture]
//   name  two-ecu
//   proc  P0 cpu
//   proc  P1 cpu
//   bus   can 4e4 1e-4 P0 P1         # name bandwidth latency procs...
//   tdma  can 1e-3                   # optional slot grid
//   tdma  can 1e-3 4                 # ... or 4 owner slots per round
//   can   can 2e-3                   # CAN arbitration, worst-case blocking
//   load  can 0.4                    # background-traffic load in [0, 1)
//
// Rate lines turn the algorithm into a MultirateSpec expanded over the
// hyperperiod (see aaa/multirate.hpp); without them the graph is used as-is.
#pragma once

#include <stdexcept>
#include <string>

#include "aaa/algorithm_graph.hpp"
#include "aaa/architecture_graph.hpp"

namespace ecsim::io {

struct SpecParseError : std::runtime_error {
  SpecParseError(std::size_t line, const std::string& message)
      : std::runtime_error("spec line " + std::to_string(line) + ": " +
                           message),
        line_number(line) {}
  std::size_t line_number;
};

struct ParsedSpec {
  aaa::AlgorithmGraph algorithm{"", 0.0};
  aaa::ArchitectureGraph architecture;
  bool has_algorithm = false;
  bool has_architecture = false;
};

/// Parse the text of a spec file. Throws SpecParseError with the offending
/// line number on malformed input.
ParsedSpec parse_spec(const std::string& text);

/// Convenience: read the file and parse. Throws std::runtime_error when the
/// file cannot be read.
ParsedSpec load_spec(const std::string& path);

}  // namespace ecsim::io
