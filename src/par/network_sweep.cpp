#include "par/network_sweep.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "control/delay_compensation.hpp"
#include "mathlib/linalg.hpp"
#include "par/cell_metrics.hpp"
#include "par/sweep.hpp"
#include "plants/dc_servo.hpp"

namespace ecsim::sweep {

namespace {

/// Divergence threshold shared with bench::metric and the other sweeps.
constexpr double kUnstableIae = 1e3;

aaa::ArchitectureGraph network_arch(const NetworkGrid& grid,
                                    NetworkScenario scenario, double load) {
  aaa::ArchitectureGraph arch = aaa::ArchitectureGraph::bus_architecture(
      grid.processors, grid.bus_bandwidth, grid.bus_latency);
  const aaa::MediumId bus = arch.find_medium("bus");
  switch (scenario) {
    case NetworkScenario::kCan:
      arch.set_can(bus, grid.can_blocking);
      break;
    case NetworkScenario::kTdma:
      arch.set_tdma(bus, grid.tdma_slot, grid.tdma_slots);
      break;
  }
  if (load > 0.0) arch.set_background_load(bus, load);
  return arch;
}

NetworkCell evaluate_cell(const NetworkGrid& grid, double load,
                          NetworkScenario scenario) {
  NetworkCell cell;
  cell.bus_load = load;
  cell.scenario = scenario_code(scenario);
  translate::DistributedSpec dist = grid.dist;
  dist.arch = network_arch(grid, scenario, load);
  try {
    // Nominal pass: the as-designed controller on the real network, to
    // measure the actuation-latency distribution the bus actually delivers.
    const translate::CosimOutcome nominal =
        translate::run_distributed_loop(grid.loop, dist);
    cell.act_latency_mean = nominal.act_latency.summary.mean;
    cell.act_jitter = nominal.act_latency.jitter;
    cell.nominal_iae = nominal.iae;
    cell.nominal_cost = nominal.cost;
    // Retune pass: delay-aware LQR against the *measured* mean latency
    // (clamped to one period, the augmentation's validity range), then the
    // same network again with the retuned gains.
    const double tau =
        std::clamp(cell.act_latency_mean, 0.0, grid.loop.ts);
    const control::DelayLqrResult aware = control::dlqr_with_input_delay(
        grid.design_plant, grid.loop.ts, tau,
        control::augment_q(grid.q, grid.r.rows()), grid.r);
    translate::LoopSpec retuned = grid.loop;
    retuned.controller =
        control::delayed_feedback_controller(aware.k, aware.nbar,
                                             grid.loop.ts);
    retuned.input = translate::ControllerInput::kStateRef;
    const translate::CosimOutcome out =
        translate::run_distributed_loop(retuned, dist);
    cell.retuned_iae = out.iae;
    cell.retuned_cost = out.cost;
    cell.stability_margin =
        1.0 - math::spectral_radius(aware.augmented.a -
                                    aware.augmented.b * aware.k);
    cell.stable = out.iae < kUnstableIae;
  } catch (const std::exception&) {
    // The adequation no longer fits the period at this load (or the design
    // broke down): outside the feasible region, reported rather than thrown
    // so the rest of the frontier still computes.
    cell.schedulable = false;
    cell.stable = false;
  }
  return cell;
}

}  // namespace

double scenario_code(NetworkScenario s) {
  return s == NetworkScenario::kCan ? 0.0 : 1.0;
}

NetworkScenario scenario_of_code(double code) {
  if (code == 0.0) return NetworkScenario::kCan;
  if (code == 1.0) return NetworkScenario::kTdma;
  throw std::invalid_argument("scenario_of_code: unknown code");
}

const char* to_string(NetworkScenario s) {
  return s == NetworkScenario::kCan ? "can" : "tdma";
}

NetworkScenario parse_scenario(const std::string& name) {
  if (name == "can") return NetworkScenario::kCan;
  if (name == "tdma") return NetworkScenario::kTdma;
  throw std::invalid_argument("parse_scenario: unknown scenario '" + name +
                              "' (can|tdma)");
}

std::vector<NetworkCell> run_network_sweep(const NetworkGrid& grid,
                                           const par::BatchOptions& batch) {
  const std::size_t cols = grid.scenarios.size();
  const std::size_t n = grid.bus_loads.size() * cols;
  par::BatchRunner runner(batch);
  NetworkGrid g = grid;
  g.loop.threads = static_cast<unsigned>(runner.threads());  // ledger note
  CellMetrics cm(batch.metrics);
  return runner.map<NetworkCell>(n, [&](par::TaskContext& ctx) {
    return cm.cell([&] {
      return evaluate_cell(g, g.bus_loads[ctx.index / cols],
                           g.scenarios[ctx.index % cols]);
    });
  });
}

std::string to_csv(const std::vector<NetworkCell>& cells) {
  std::string out =
      "bus_load,scenario,act_latency_mean,act_jitter,nominal_iae,"
      "nominal_cost,retuned_iae,retuned_cost,stability_margin,schedulable,"
      "stable\n";
  char buf[320];
  for (const NetworkCell& c : cells) {
    std::snprintf(buf, sizeof buf,
                  "%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,"
                  "%d,%d\n",
                  c.bus_load, c.scenario, c.act_latency_mean, c.act_jitter,
                  c.nominal_iae, c.nominal_cost, c.retuned_iae,
                  c.retuned_cost, c.stability_margin, c.schedulable ? 1 : 0,
                  c.stable ? 1 : 0);
    out += buf;
  }
  return out;
}

NetworkGrid network_servo_grid(double ts, double t_end) {
  NetworkGrid grid;
  grid.loop = servo_loop(ts, t_end);
  // Controller on the far processor: every sample and every control crosses
  // the bus, so the network is actually in the loop.
  grid.dist.bind_ctrl = "P1";
  grid.bus_loads = {0.0, 0.2, 0.4, 0.6, 0.8};
  grid.scenarios = {NetworkScenario::kCan, NetworkScenario::kTdma};
  grid.processors = 2;
  grid.bus_bandwidth = 1e5;
  grid.bus_latency = 0.0;
  grid.can_blocking = 5e-4;
  grid.tdma_slot = 5e-4;
  grid.tdma_slots = 2;
  control::StateSpace design = plants::dc_servo();
  design.c = math::Matrix{{1.0, 0.0}};
  design.d = math::Matrix{{0.0}};
  grid.design_plant = design;
  grid.q = math::Matrix::diag({100.0, 0.01});
  grid.r = math::Matrix{{1e-3}};
  return grid;
}

}  // namespace ecsim::sweep
