#include "exec/conformance.hpp"

#include <gtest/gtest.h>

#include "aaa/adequation.hpp"

namespace ecsim::exec {
namespace {

struct DistributedChain {
  AlgorithmGraph alg{"chain", 0.01};
  ArchitectureGraph arch{
      aaa::ArchitectureGraph::bus_architecture(2, 1e4, 1e-5)};
  Schedule sched{0, 0};
  GeneratedCode code;

  DistributedChain() {
    const aaa::OpId s = alg.add_simple("sense", aaa::OpKind::kSensor, 1e-4, "P0");
    const aaa::OpId c = alg.add_simple("ctrl", aaa::OpKind::kCompute, 5e-4, "P1");
    const aaa::OpId a = alg.add_simple("act", aaa::OpKind::kActuator, 1e-4, "P0");
    alg.add_dependency(s, c, 8.0);
    alg.add_dependency(c, a, 8.0);
    sched = aaa::adequate(alg, arch);
    code = aaa::generate_executives(alg, arch, sched);
  }
};

TEST(Conformance, WcetExecutionMatchesScheduleExactly) {
  DistributedChain f;
  VmOptions opts;
  opts.iterations = 20;
  opts.period = f.alg.period();
  const VmResult vm = run_executives(f.alg, f.arch, f.sched, f.code, opts);
  const ConformanceReport rep =
      check_wcet_conformance(f.alg, f.arch, f.sched, vm, opts.period);
  EXPECT_TRUE(rep.ok) << rep.violations;
  EXPECT_EQ(rep.checked_instances, 60u);
  EXPECT_LT(rep.max_time_error, 1e-9);
}

TEST(Conformance, RandomExecutionTimesStillPreserveOrder) {
  DistributedChain f;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    VmOptions opts;
    opts.iterations = 10;
    opts.period = f.alg.period();
    opts.exec_time = uniform_fraction_exec_time(0.1);
    opts.seed = seed;
    const VmResult vm = run_executives(f.alg, f.arch, f.sched, f.code, opts);
    const ConformanceReport rep =
        check_order_preservation(f.alg, f.arch, f.sched, vm);
    EXPECT_TRUE(rep.ok) << "seed " << seed << ": " << rep.violations;
  }
}

TEST(Conformance, DeadlockReportedAsViolation) {
  DistributedChain f;
  GeneratedCode bad = f.code;
  for (auto& prog : bad.programs) {
    std::erase_if(prog.instrs, [](const aaa::Instr& ins) {
      return ins.kind == aaa::InstrKind::kSend;
    });
  }
  VmOptions opts;
  opts.iterations = 1;
  opts.period = 0.01;
  const VmResult vm = run_executives(f.alg, f.arch, f.sched, bad, opts);
  const ConformanceReport rep =
      check_order_preservation(f.alg, f.arch, f.sched, vm);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.violations.find("deadlock"), std::string::npos);
}

TEST(Conformance, FlagsTimeMismatchWhenFasterThanWcet) {
  DistributedChain f;
  VmOptions opts;
  opts.iterations = 2;
  opts.period = f.alg.period();
  opts.exec_time = uniform_fraction_exec_time(0.2);
  const VmResult vm = run_executives(f.alg, f.arch, f.sched, f.code, opts);
  const ConformanceReport rep =
      check_wcet_conformance(f.alg, f.arch, f.sched, vm, opts.period);
  EXPECT_FALSE(rep.ok);  // faster than WCET => instants differ
  EXPECT_GT(rep.max_time_error, 0.0);
}

}  // namespace
}  // namespace ecsim::exec
