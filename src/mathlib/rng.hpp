// Deterministic random number generation for reproducible experiments.
// All stochastic components (execution-time models, workload generators)
// take an explicit Rng so every run is seed-reproducible.
#pragma once

#include <cstdint>
#include <vector>

namespace ecsim::math {

/// Thin deterministic PRNG (xoshiro256** core) with the distributions the
/// simulator needs. Not std::mt19937 so that streams are stable across
/// standard library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();
  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller.
  double normal();
  double normal(double mean, double stddev);
  /// Bernoulli with probability p of true.
  bool bernoulli(double p);
  /// Truncated normal in [lo, hi] by rejection (falls back to clamping
  /// after 64 rejections to stay O(1)).
  double truncated_normal(double mean, double stddev, double lo, double hi);
  /// Pick an index in [0, weights.size()) with probability ~ weights[i].
  std::size_t categorical(const std::vector<double>& weights);

  /// Advance the state by 2^128 next_u64() calls (the xoshiro256** jump
  /// polynomial). Partitions the generator's 2^256-1 period into
  /// non-overlapping subsequences of length 2^128: streams separated by
  /// jumps never collide for any realistic draw count. Discards a pending
  /// Box-Muller spare so jumped streams start from a clean state.
  void jump();

  /// `n` decorrelated streams for parallel tasks: stream 0 is a copy of
  /// *this, stream i is i jumps ahead. Pure function of the current state —
  /// deterministic, does not advance *this — so a batch seeded once yields
  /// the same per-task streams regardless of how tasks are scheduled.
  std::vector<Rng> split(std::size_t n) const;

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

/// Draw one u64 from each stream into out[l] — one lane-interleaved "row"
/// of draws across a batch. Because split() streams are non-overlapping and
/// independently stateful, W rows drawn this way are byte-identical to each
/// stream drawing its W values sequentially — the invariant that lets the
/// batched Monte Carlo engine (src/simd/) pack per-trial streams into lanes
/// in any interleaving (property-tested in tests/mathlib/test_rng.cpp).
/// `streams` and `out` must have equal sizes.
void fill_lanes_u64(std::vector<Rng>& streams,
                    std::vector<std::uint64_t>& out);

/// Same row-wise draw for uniform [0,1) doubles.
void fill_lanes_uniform(std::vector<Rng>& streams, std::vector<double>& out);

}  // namespace ecsim::math
