file(REMOVE_RECURSE
  "CMakeFiles/distributed_servo.dir/distributed_servo.cpp.o"
  "CMakeFiles/distributed_servo.dir/distributed_servo.cpp.o.d"
  "distributed_servo"
  "distributed_servo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_servo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
