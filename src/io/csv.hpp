// CSV exporters: trajectories and latency series as plottable artifacts,
// plus a tiny save-to-file helper used by the benches and examples.
#pragma once

#include <string>

#include "control/metrics.hpp"
#include "latency/latency.hpp"

namespace ecsim::io {

/// "t,<name>\n" header followed by one row per sample.
std::string series_csv(const control::Series& series,
                       const std::string& name = "y");

/// Several time-aligned series side by side (shorter series padded with
/// empty cells).
std::string multi_series_csv(const std::vector<control::Series>& series,
                       const std::vector<std::string>& names);

/// "k,instant,latency\n" rows of eq. (1)/(2) data.
std::string latency_csv(const latency::LatencySeries& series);

/// Write `content` to `path`; returns false (and leaves no partial file
/// behind it can avoid) on I/O failure.
bool save_text(const std::string& path, const std::string& content);

}  // namespace ecsim::io
