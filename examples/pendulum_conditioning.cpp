// Conditioning study (paper §3.2.2 / Fig. 5) on the inverted pendulum: a
// mode-switching controller whose two branches have very different WCETs.
// The static schedule reserves the worst branch, but at run time the taken
// branch determines the actuation instant — producing input/output jitter
// that the graph of delays faithfully reproduces in co-simulation.
#include <cstdio>

#include "control/c2d.hpp"
#include "control/delay_compensation.hpp"
#include "control/lqr.hpp"
#include "plants/inverted_pendulum.hpp"
#include "translate/cosim.hpp"

using namespace ecsim;

int main() {
  const double ts = 0.005;  // 200 Hz balancing loop
  control::StateSpace pend = plants::inverted_pendulum();
  pend.c = math::Matrix::identity(4);
  pend.d = math::Matrix::zeros(4, 1);
  const control::StateSpace pend_d = control::c2d(pend, ts);
  // Aggressive weights: short closed-loop time constants make the loop
  // genuinely sensitive to actuation timing.
  const control::LqrResult lqr =
      control::dlqr(pend_d, math::Matrix::diag({100.0, 1.0, 2000.0, 50.0}),
                    math::Matrix{{0.001}});
  control::StateSpace cart = pend_d;
  cart.c = math::Matrix{{1.0, 0.0, 0.0, 0.0}};
  cart.d = math::Matrix{{0.0}};
  const double nbar = control::reference_gain(cart, lqr.k);

  translate::LoopSpec spec;
  spec.plant = pend;
  spec.controller = control::state_feedback_controller(lqr.k, nbar, ts);
  spec.ts = ts;
  spec.t_end = 4.0;
  spec.ref = 0.1;  // move the cart 10 cm while balancing
  spec.input = translate::ControllerInput::kStateRef;
  spec.output_index = 0;

  const translate::CosimOutcome ideal = translate::run_ideal_loop(spec);

  std::printf("== inverted pendulum with a conditional control law ==\n\n");
  std::printf("%-18s %14s %14s %14s %12s\n", "branch WCETs [ms]",
              "act jitter[ms]", "IAE", "u RMS", "cart motion");
  std::printf("%-18s %14.3f %14.5f %14.3f %12s\n", "ideal", 0.0, ideal.iae,
              control::rms(ideal.u), "stable");

  // Sweep the asymmetry between the fast and slow branch.
  for (const double slow_ms : {0.5, 1.5, 3.0, 4.5}) {
    translate::DistributedSpec dist;
    dist.arch = aaa::ArchitectureGraph::bus_architecture(1, 1.0);
    dist.wcet_sense = 1e-4;
    dist.wcet_act = 1e-4;
    dist.ctrl_branch_wcets = {0.2e-3, slow_ms * 1e-3};
    dist.god.random_branches = true;
    const translate::CosimOutcome out =
        translate::run_distributed_loop(spec, dist);
    char label[32];
    std::snprintf(label, sizeof label, "0.2 / %.1f", slow_ms);
    std::printf("%-18s %14.3f %14.5f %14.3f %12s\n", label,
                1e3 * out.act_latency.jitter, out.iae, control::rms(out.u),
                control::max_abs(out.y) < 10.0 ? "stable" : "UNSTABLE");
  }
  std::printf(
      "\nThe measured actuation jitter equals the branch WCET spread exactly "
      "(the co-simulation reproduces §3.2.2's conditioning effect), while the "
      "static schedule had to reserve the slow branch every period. This "
      "balancing loop happens to tolerate the jitter — a robustness margin "
      "the designer now *knows* instead of hopes for; bench_fig5 shows the "
      "same jitter wrecking the high-gain DC servo.\n");
  return 0;
}
