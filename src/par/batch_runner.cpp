#include "par/batch_runner.hpp"

#include <exception>
#include <utility>

namespace ecsim::par {

BatchRunner::BatchRunner(BatchOptions opts) : opts_(std::move(opts)) {
  if (opts_.pool != nullptr) {
    pool_ = opts_.pool;
    threads_ = pool_->num_workers();
  } else {
    threads_ =
        opts_.threads == 0 ? TaskPool::default_threads() : opts_.threads;
    if (threads_ > 1) {
      owned_pool_ = std::make_unique<TaskPool>(threads_);
      pool_ = owned_pool_.get();
    }
  }
}

void BatchRunner::run(std::size_t n,
                      const std::function<void(TaskContext&)>& fn) {
  if (n == 0) return;
  // Stream family and shard slots are indexed by task id, so everything
  // after this point is insensitive to execution order.
  const std::vector<math::Rng> streams = math::Rng(opts_.seed).split(n);
  std::vector<std::unique_ptr<obs::MetricsRegistry>> metric_shards(
      opts_.metrics != nullptr ? n : 0);
  std::vector<std::unique_ptr<obs::Tracer>> tracer_shards(
      opts_.tracer != nullptr ? n : 0);

  auto run_task = [&](std::size_t i, std::size_t worker) {
    TaskContext ctx;
    ctx.index = i;
    ctx.worker = worker;
    ctx.rng = streams[i];
    if (opts_.metrics != nullptr) {
      metric_shards[i] = std::make_unique<obs::MetricsRegistry>();
      ctx.metrics = metric_shards[i].get();
    }
    if (opts_.tracer != nullptr) {
      tracer_shards[i] = std::make_unique<obs::Tracer>(opts_.tracer_capacity);
      tracer_shards[i]->set_enabled(true);
      ctx.tracer = tracer_shards[i].get();
    }
    fn(ctx);
  };

  // Both paths drain the whole batch before reporting the lowest-indexed
  // failure, so the merged observability below covers the same set of
  // completed tasks serial and parallel.
  std::exception_ptr pending;
  std::size_t pending_task = 0;
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      try {
        run_task(i, 0);
      } catch (...) {
        if (!pending) {
          pending = std::current_exception();
          pending_task = i;
        }
      }
    }
    (void)pending_task;
  } else {
    try {
      pool_->for_each(n, run_task);
    } catch (...) {
      pending = std::current_exception();
    }
  }

  // Task-index-order shard merge: the aggregate snapshot is a pure function
  // of the batch definition, not of the interleaving.
  for (std::size_t i = 0; i < n; ++i) {
    if (opts_.metrics != nullptr && metric_shards[i] != nullptr) {
      opts_.metrics->merge(*metric_shards[i]);
    }
    if (opts_.tracer != nullptr && tracer_shards[i] != nullptr) {
      opts_.tracer->append(*tracer_shards[i]);
    }
  }
  if (pending) std::rethrow_exception(pending);
}

}  // namespace ecsim::par
