file(REMOVE_RECURSE
  "libecsim_control.a"
)
