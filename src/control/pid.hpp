// Continuous PID design helpers and discretization to the PidDiscrete block
// parameters, plus a Smith-predictor arrangement for delay compensation.
#pragma once

#include "control/state_space.hpp"

namespace ecsim::control {

struct PidGains {
  double kp = 0.0;
  double ki = 0.0;
  double kd = 0.0;
  double n = 20.0;  // derivative filter coefficient
};

/// Ziegler-Nichols (classic) tuning from ultimate gain/period.
PidGains ziegler_nichols(double ku, double tu);

/// Lambda/IMC tuning for a first-order-plus-dead-time model
/// G(s) = k e^{-theta s} / (tau s + 1), closed-loop time constant lambda.
PidGains imc_pid(double k, double tau, double theta, double lambda);

/// Realize a PID (with filtered derivative) as a discrete StateSpace
/// (input: error e, output: u) at period ts using backward-Euler integration.
StateSpace pid_to_ss(const PidGains& g, double ts);

}  // namespace ecsim::control
