// Host-side bridge for the ABI v2 observability callback table: builds a
// NativeObsTable whose C function pointers forward into the host process's
// obs::Tracer / obs::MetricsRegistry. The generated module receives the
// table through NativeRunOptions::obs and never links against the obs
// library itself, so the 3-symbol extern-C surface of a model .so is
// unchanged.
#pragma once

#include "backend/native_abi.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace ecsim::backend {

/// Build the callback table for `tracer`/`metrics` (either may be null; the
/// corresponding table side is then null and the module skips it). The table
/// only borrows the pointers — it is typically stack-allocated around one
/// NativeModule::run call. Under ECSIM_OBS_DISABLED the tracer side is
/// always null (mirror of obs::active's constant-false).
NativeObsTable make_obs_table(obs::Tracer* tracer,
                              obs::MetricsRegistry* metrics);

}  // namespace ecsim::backend
