#include "svc/cache_key.hpp"

#include <cstdio>
#include <stdexcept>

#include "fault/fault_plan.hpp"
#include "par/fault_sweep.hpp"

namespace ecsim::svc {

std::string ResultKey::canonical() const {
  char buf[64];
  std::string out = "k1|";
  out += model_hash;
  out += '|';
  out += backend;
  out += '|';
  out += std::to_string(seed);
  std::snprintf(buf, sizeof buf, "|0x%016llx|",
                static_cast<unsigned long long>(fault_hash));
  out += buf;
  out += params;
  return out;
}

ResultKey unit_key(const Request& req, const std::string& model_hash,
                   std::size_t unit) {
  if (unit >= req.units()) {
    throw std::out_of_range("unit_key: unit beyond request");
  }
  ResultKey key;
  key.model_hash = model_hash;
  key.backend = req.backend;
  key.seed = req.seed;
  std::string p = "v=";
  p += to_string(req.verb);
  p += ";ts=";
  p += hexfloat(req.ts);
  p += ";te=";
  p += hexfloat(req.t_end);
  const auto cell_coords = [&](const char* row_name, const char* col_name) {
    const std::size_t cols = req.cols.size();
    p += ';';
    p += row_name;
    p += '=';
    p += hexfloat(req.rows[unit / cols]);
    p += ';';
    p += col_name;
    p += '=';
    p += hexfloat(req.cols[unit % cols]);
  };
  switch (req.verb) {
    case Verb::kSweepTiming:
      cell_coords("la", "j");
      break;
    case Verb::kSweepArch:
      cell_coords("bw", "ws");
      break;
    case Verb::kSweepNetwork:
      cell_coords("load", "scen");
      break;
    case Verb::kFaultSweep: {
      cell_coords("loss", "delay");
      const std::size_t cols = req.cols.size();
      key.fault_hash = fault::hash(sweep::fault_cell_plan(
          /*medium=*/"", req.rows[unit / cols], req.cols[unit % cols],
          /*delay_probability=*/1.0, req.seed));
      break;
    }
    case Verb::kFaultMc: {
      // The trial's EFFECTIVE seed keys the unit: trial t of base seed b is
      // the same simulation as trial 0 of base seed b+t, so overlapping
      // Monte Carlo ranges share cache entries instead of recomputing.
      key.seed = req.seed + static_cast<std::uint64_t>(unit);
      key.fault_hash = fault::hash(sweep::fault_cell_plan(
          /*medium=*/"", req.loss, /*delay=*/0.0, /*delay_probability=*/1.0,
          key.seed));
      p += ";loss=";
      p += hexfloat(req.loss);
      break;
    }
    case Verb::kVmMc:
      p += ";trials=";
      p += std::to_string(req.trials);
      p += ";iters=";
      p += std::to_string(req.iterations);
      break;
    default:
      throw std::invalid_argument("unit_key: verb has no work units");
  }
  key.params = std::move(p);
  return key;
}

std::string spec_content_hash(const std::string& spec_text) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "spec:0x%016llx",
                static_cast<unsigned long long>(fnv1a(spec_text)));
  return buf;
}

}  // namespace ecsim::svc
