// Timeline export of AAA artifacts (DESIGN.md §3.2): renders a static
// adequation schedule or an executive-VM run as obs::TimelineSlices — one
// track per processor and per communication medium — and, via
// obs::JsonTraceWriter, as a Chrome trace-event / Perfetto file. This turns
// the schedule Gantt of the paper's Figures 3-4 into an actual loadable
// timeline instead of an ASCII listing.
#pragma once

#include <string>
#include <vector>

#include "aaa/schedule.hpp"
#include "exec/executive_vm.hpp"
#include "obs/trace_json.hpp"

namespace ecsim::translate {

/// Static schedule -> slices: scheduled operations on "proc/<name>" tracks
/// (args: op id, iteration-independent WCET interval), route communications
/// on "medium/<name>" tracks (args: hop index, payload size).
std::vector<obs::TimelineSlice> schedule_to_timeline(
    const aaa::AlgorithmGraph& alg, const aaa::ArchitectureGraph& arch,
    const aaa::Schedule& sched);

/// VM run -> slices: every operation/communication *instance* with its
/// actual start/end (args: iteration, taken branch when conditional).
/// `track_prefix` namespaces the tracks like VmOptions::track_prefix.
std::vector<obs::TimelineSlice> vm_to_timeline(
    const aaa::AlgorithmGraph& alg, const aaa::ArchitectureGraph& arch,
    const aaa::Schedule& sched, const exec::VmResult& vm,
    const std::string& track_prefix = "");

/// One-call JSON forms of the above (a complete trace-event document).
std::string schedule_to_trace_json(const aaa::AlgorithmGraph& alg,
                                   const aaa::ArchitectureGraph& arch,
                                   const aaa::Schedule& sched);
std::string vm_to_trace_json(const aaa::AlgorithmGraph& alg,
                             const aaa::ArchitectureGraph& arch,
                             const aaa::Schedule& sched,
                             const exec::VmResult& vm);

}  // namespace ecsim::translate
