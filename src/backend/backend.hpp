// Backend dispatcher (DESIGN.md §3.6): one entry point that runs a model on
// the requested backend and *always* produces a result. A native request
// degrades gracefully to the interpreter — never an abort — whenever the
// model or environment cannot take the codegen path, and the result records
// why (also counted as backend.fallback.<category> in a MetricsRegistry).
//
// Fallback categories:
//  - observability: a Tracer/MetricsRegistry is attached to the sim options
//    (the native engine deliberately carries no obs hooks);
//  - legacy_baseline: a legacy_* A/B cost model was requested;
//  - disabled: ECSIM_NATIVE_DISABLE is set;
//  - opaque: the model is not fully described (user closures in the IR);
//  - codegen: the generator rejected the IR;
//  - toolchain: compile/dlopen/ABI-verify failed (compiler missing, ...).
// Model-semantic errors (e.g. max_events exceeded) are NOT fallbacks: both
// backends throw them identically.
#pragma once

#include <cstddef>
#include <string>

#include "backend/kind.hpp"
#include "ir/ir.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace ecsim::backend {

struct RunOptions {
  sim::SimOptions sim;
  Kind kind = Kind::kInterp;
  /// Dispatcher-level metrics (fallback counters, backend.<kind>.runs).
  /// Distinct from sim.metrics: attaching THIS does not force the
  /// interpreter. Borrowed, may be null.
  obs::MetricsRegistry* metrics = nullptr;
};

struct RunResult {
  sim::Trace trace;
  std::size_t events_dispatched = 0;
  /// The backend that actually ran (== requested unless a fallback fired).
  Kind used = Kind::kInterp;
  /// Empty when the requested backend ran; otherwise
  /// "<category>: <detail>" explaining the interpreter fallback.
  std::string fallback_reason;
};

/// Runs `model` on the requested backend. The model must stay alive and
/// structurally unchanged for the duration of the call.
RunResult run(sim::Model& model, const RunOptions& opts);

/// Same, from an already-finalized IR (the model half of the pipeline is
/// regenerated with blocks::to_model for the interpreter path).
RunResult run_ir(const ir::Model& irm, const RunOptions& opts);

}  // namespace ecsim::backend
