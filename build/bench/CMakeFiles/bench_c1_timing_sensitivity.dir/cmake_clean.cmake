file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_timing_sensitivity.dir/bench_c1_timing_sensitivity.cpp.o"
  "CMakeFiles/bench_c1_timing_sensitivity.dir/bench_c1_timing_sensitivity.cpp.o.d"
  "bench_c1_timing_sensitivity"
  "bench_c1_timing_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_timing_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
