#include "mathlib/riccati.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "mathlib/linalg.hpp"

namespace ecsim::math {

Matrix solve_dare(const Matrix& a, const Matrix& b, const Matrix& q,
                  const Matrix& r, const RiccatiOptions& opts) {
  const std::size_t n = a.rows();
  if (!a.is_square() || b.rows() != n || !q.is_square() || q.rows() != n ||
      !r.is_square() || r.rows() != b.cols()) {
    throw std::invalid_argument("solve_dare: inconsistent dimensions");
  }
  // Structure-preserving doubling algorithm (SDA): quadratically convergent
  // even for closed-loop poles arbitrarily close to the unit circle (slow
  // plants at short sampling periods), where fixed-point iteration of the
  // Riccati difference equation stalls.
  //   G0 = B R^-1 B',  H0 = Q,  A0 = A
  //   M  = (I + Gk Hk)^-1
  //   A+ = Ak M Ak,  G+ = Gk + Ak M Gk Ak',  H+ = Hk + Ak' Hk M Ak
  // Hk converges to the stabilizing solution P.
  const Matrix ident = Matrix::identity(n);
  Matrix ak = a;
  Matrix g = b * solve(r, b.transpose());
  Matrix h = q;
  // Scratch hoisted out of the doubling loop; the in-place kernels reuse
  // their high-water capacity, so iterations after the first stop allocating
  // for the products (solve() still owns its internals).
  Matrix akt, am, t1, t2, gh;
  // SDA iteration count ~ log2 of the fixed-point count; 100 is generous.
  const int max_doublings = std::min(opts.max_iterations, 100);
  for (int it = 0; it < max_doublings; ++it) {
    multiply_into(gh, g, h);
    const Matrix m = solve(ident + gh, ident);  // (I + G H)^-1
    multiply_into(am, ak, m);
    ak.transpose_into(akt);
    // h_next = h + Ak' H M Ak, left-to-right like the old operator chain.
    multiply_into(t1, akt, h);
    multiply_into(t2, t1, m);
    Matrix h_next;
    multiply_into(h_next, t2, ak);
    h_next += h;
    // g_next = g + Am G Ak'.
    multiply_into(t1, am, g);
    Matrix g_next;
    multiply_into(g_next, t1, akt);
    g_next += g;
    Matrix a_next;
    multiply_into(a_next, am, ak);
    // Symmetrize to damp numerical drift.
    h_next = 0.5 * (h_next + h_next.transpose());
    g_next = 0.5 * (g_next + g_next.transpose());
    if (!std::isfinite(h_next.norm()) || !std::isfinite(a_next.norm()) ||
        h_next.max_abs() > 1e160) {
      throw std::runtime_error(
          "solve_dare: iteration diverged (pair likely not stabilizable)");
    }
    const double delta = (h_next - h).max_abs();
    const double scale = std::max(1.0, h.max_abs());
    h = std::move(h_next);
    g = std::move(g_next);
    ak = std::move(a_next);
    if (delta < opts.tolerance * scale) return h;
  }
  throw std::runtime_error("solve_dare: iteration did not converge");
}

Matrix solve_dlyap(const Matrix& a, const Matrix& q,
                   const RiccatiOptions& opts) {
  if (!a.is_square() || !q.same_shape(a)) {
    throw std::invalid_argument("solve_dlyap: inconsistent dimensions");
  }
  // X = sum_k A^k Q (A')^k with doubling: X <- X + M X M', M <- M*M.
  Matrix x = q;
  Matrix m = a;
  Matrix mt, t1, term, m2;  // loop scratch, reused across iterations
  for (int it = 0; it < 200; ++it) {
    m.transpose_into(mt);
    multiply_into(t1, m, x);
    multiply_into(term, t1, mt);
    if (term.max_abs() < opts.tolerance) return x;
    x += term;
    multiply_into(m2, m, m);
    std::swap(m, m2);
    if (m.max_abs() > 1e12) {
      throw std::runtime_error("solve_dlyap: A is not Schur stable");
    }
  }
  throw std::runtime_error("solve_dlyap: did not converge");
}

}  // namespace ecsim::math
