// Graphviz DOT exporters for the three graph artifacts of the toolchain:
// the simulation diagram (data wires solid, event wires dashed red — the
// visual convention of Scicos), the AAA algorithm graph and the architecture
// graph. Render with `dot -Tsvg`.
#pragma once

#include <string>

#include "aaa/algorithm_graph.hpp"
#include "aaa/architecture_graph.hpp"
#include "aaa/schedule.hpp"
#include "sim/model.hpp"

namespace ecsim::io {

std::string to_dot(const sim::Model& model, const std::string& name = "model");

std::string to_dot(const aaa::AlgorithmGraph& alg);

std::string to_dot(const aaa::ArchitectureGraph& arch);

/// Gantt-style rendering of a schedule as an HTML-ish DOT table per
/// component (one rank per processor/medium, boxes labeled with intervals).
std::string schedule_to_dot(const aaa::AlgorithmGraph& alg,
                            const aaa::ArchitectureGraph& arch,
                            const aaa::Schedule& sched);

}  // namespace ecsim::io
