// EXP-FT1: robustness of the servo loop under deterministic fault injection
// (DESIGN.md §3.5). Three claims are asserted, not just printed:
//   (1) zero-fault transparency — the sweep's (loss 0, delay 0) cell is
//       bit-identical to a fault-free run_distributed_loop, and an armed
//       plan whose faults all have probability 0 leaves the executive VM
//       trace bit-identical to a run with no plan at all;
//   (2) monotone degradation — down the delay=0 column, control cost and
//       the number of lost frames never decrease with the loss rate (the
//       subset-coupling property of fault_plan.hpp: one seed, nested loss
//       sets);
//   (3) determinism — the whole grid is bit-identical at 1 and 4 threads.
// The measured grid and the dropout study go to BENCH_f1.json.
#include <cstring>

#include "aaa/codegen.hpp"
#include "bench_common.hpp"
#include "exec/executive_vm.hpp"
#include "par/fault_sweep.hpp"

using namespace ecsim;

namespace {

translate::DistributedSpec dist_spec() {
  translate::DistributedSpec dist;
  dist.bind_ctrl = "P1";  // controller across the bus: real message traffic
  return dist;
}

sweep::FaultGrid workload() {
  sweep::FaultGrid grid;
  grid.loop = bench::servo_loop();
  grid.dist = dist_spec();
  grid.loss_rates = {0.0, 0.05, 0.1, 0.2, 0.4};
  grid.delays = {0.0, 0.001, 0.002};
  grid.fault_seed = 1;
  return grid;
}

bool vm_traces_identical(const exec::VmResult& a, const exec::VmResult& b) {
  if (a.ops.size() != b.ops.size() || a.comms.size() != b.comms.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    if (std::memcmp(&a.ops[i], &b.ops[i], sizeof(exec::OpInstance)) != 0) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.comms.size(); ++i) {
    if (std::memcmp(&a.comms[i], &b.comms[i], sizeof(exec::CommInstance)) !=
        0) {
      return false;
    }
  }
  return true;
}

bool cells_identical(const std::vector<sweep::FaultCell>& a,
                     const std::vector<sweep::FaultCell>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].cost != b[i].cost || a[i].iae != b[i].iae ||
        a[i].messages_lost != b[i].messages_lost ||
        a[i].messages_deferred != b[i].messages_deferred ||
        a[i].stable != b[i].stable) {
      return false;
    }
  }
  return true;
}

/// Claim (1b): a probability-0 plan arms every hook yet must not perturb a
/// single bit of the VM trace.
bool check_vm_transparency() {
  const translate::LoopSpec loop = bench::servo_loop();
  const translate::DistributedSpec dist = dist_spec();
  const aaa::AlgorithmGraph alg = translate::make_loop_algorithm(loop, dist);
  const aaa::Schedule sched = aaa::adequate(alg, dist.arch, dist.adequation);
  const aaa::GeneratedCode code =
      aaa::generate_executives(alg, dist.arch, sched);

  exec::VmOptions opts;
  opts.iterations = 50;
  opts.period = loop.ts;
  opts.exec_time = exec::uniform_fraction_exec_time(0.5);
  const exec::VmResult plain =
      exec::run_executives(alg, dist.arch, sched, code, opts);

  exec::VmOptions armed = opts;
  armed.fault_plan.message_loss("", 0.0);
  armed.fault_plan.message_delay("", 0.0, 0.005);
  armed.fault_plan.op_overrun("", 0.0, 4.0);
  const exec::VmResult faulted =
      exec::run_executives(alg, dist.arch, sched, code, armed);
  return vm_traces_identical(plain, faulted) && faulted.injections.empty();
}

int experiment() {
  bench::banner("EXP-FT1", "DESIGN.md §3.5",
                "Fault-injection robustness sweep of the DC-servo loop: "
                "loss-rate × delivery-delay grid, zero-fault transparency, "
                "monotone degradation, thread-count determinism.");
  const sweep::FaultGrid grid = workload();

  par::BatchOptions serial;
  serial.threads = 1;
  const std::vector<sweep::FaultCell> cells =
      sweep::run_fault_sweep(grid, serial);
  std::printf("%s\n",
              sweep::heatmap(cells, grid.loss_rates, grid.delays, "loss rate",
                             "delay (s)", &sweep::FaultCell::cost,
                             "control cost under message faults")
                  .c_str());

  // Claim (1): zero-fault transparency.
  const translate::CosimOutcome clean =
      translate::run_distributed_loop(grid.loop, grid.dist);
  const sweep::FaultCell& zero = cells[0];
  const bool cosim_transparent =
      zero.cost == clean.cost && zero.iae == clean.iae &&
      zero.ise == clean.ise && zero.itae == clean.itae &&
      zero.messages_lost == 0 && zero.messages_deferred == 0;
  const bool vm_transparent = check_vm_transparency();
  std::printf("zero-fault cell == fault-free co-simulation: %s\n",
              cosim_transparent ? "yes" : "NO");
  std::printf("p=0 plan leaves VM trace bit-identical:      %s\n",
              vm_transparent ? "yes" : "NO");

  // Claim (2): monotone degradation down the delay=0 column.
  bool monotone = true;
  const std::size_t cols = grid.delays.size();
  for (std::size_t r = 1; r < grid.loss_rates.size(); ++r) {
    const sweep::FaultCell& prev = cells[(r - 1) * cols];
    const sweep::FaultCell& cur = cells[r * cols];
    const double prev_cost = prev.stable ? prev.cost : 1e300;
    const double cur_cost = cur.stable ? cur.cost : 1e300;
    if (cur_cost < prev_cost || cur.messages_lost < prev.messages_lost) {
      monotone = false;
      std::printf("** NON-MONOTONE at loss %.3g -> %.3g **\n",
                  prev.loss_rate, cur.loss_rate);
    }
  }
  std::printf("cost and losses monotone in the loss rate:   %s\n",
              monotone ? "yes" : "NO");

  // Claim (3): thread-count determinism of the whole grid.
  par::BatchOptions four;
  four.threads = 4;
  const bool deterministic =
      cells_identical(cells, sweep::run_fault_sweep(grid, four));
  std::printf("grid bit-identical at 1 and 4 threads:       %s\n\n",
              deterministic ? "yes" : "NO");

  // Dropout distribution at a fixed rate (the Monte Carlo face of §3.5).
  sweep::FaultMonteCarloSpec mc;
  mc.loop = grid.loop;
  mc.dist = grid.dist;
  mc.loss_rate = 0.2;
  mc.trials = 16;
  const sweep::FaultMonteCarloResult dropout =
      sweep::run_fault_monte_carlo(mc, serial);
  std::printf("%s\n", sweep::to_string(dropout).c_str());

  bench::JsonReport report("EXP-FT1");
  report.model_ir_hash("servo_loop",
                       ir::hash_hex(translate::loop_ir(grid.loop)));
  report.begin_array("fault_sweep");
  for (const sweep::FaultCell& c : cells) {
    report.begin_object();
    report.field("loss_rate", c.loss_rate);
    report.field("delay", c.delay);
    report.field("cost", c.cost);
    report.field("iae", c.iae);
    report.field("messages_lost", c.messages_lost);
    report.field("messages_deferred", c.messages_deferred);
    report.field("stable", std::string(c.stable ? "true" : "false"));
    report.end_object();
  }
  report.end_array();
  report.begin_array("dropout_study");
  report.begin_object();
  report.field("loss_rate", dropout.loss_rate);
  report.field("trials", dropout.trials);
  report.field("cost_mean", dropout.cost.mean);
  report.field("cost_stddev", dropout.cost.stddev);
  report.field("cost_max", dropout.cost.max);
  report.field("iae_mean", dropout.iae.mean);
  report.field("messages_lost_mean", dropout.messages_lost.mean);
  report.field("unstable_trials", dropout.unstable_trials);
  report.end_object();
  report.end_array();
  report.begin_array("checks");
  report.begin_object();
  report.field("zero_fault_cosim_identical",
               std::string(cosim_transparent ? "true" : "false"));
  report.field("zero_fault_vm_identical",
               std::string(vm_transparent ? "true" : "false"));
  report.field("monotone_degradation",
               std::string(monotone ? "true" : "false"));
  report.field("thread_deterministic",
               std::string(deterministic ? "true" : "false"));
  report.end_object();
  report.end_array();
  report.write("BENCH_f1.json");

  return cosim_transparent && vm_transparent && monotone && deterministic
             ? 0
             : 1;
}

void BM_FaultSweepCell(benchmark::State& state) {
  sweep::FaultGrid grid = workload();
  grid.loop.t_end = 0.2;
  grid.loss_rates = {static_cast<double>(state.range(0)) / 100.0};
  grid.delays = {0.0};
  par::BatchOptions serial;
  serial.threads = 1;
  for (auto _ : state) {
    auto cells = sweep::run_fault_sweep(grid, serial);
    benchmark::DoNotOptimize(cells);
  }
}
BENCHMARK(BM_FaultSweepCell)->Arg(0)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_ArmedPlanDecisions(benchmark::State& state) {
  const translate::LoopSpec loop = bench::servo_loop();
  const translate::DistributedSpec dist = dist_spec();
  const aaa::AlgorithmGraph alg = translate::make_loop_algorithm(loop, dist);
  const aaa::Schedule sched = aaa::adequate(alg, dist.arch, dist.adequation);
  fault::FaultPlan plan;
  plan.message_loss("", 0.1);
  plan.message_delay("", 0.1, 0.001);
  const fault::ArmedFaultPlan armed(plan, alg, dist.arch, sched);
  std::size_t iter = 0;
  for (auto _ : state) {
    auto eff = armed.comm_effect(iter % sched.comms().size(), iter);
    benchmark::DoNotOptimize(eff);
    ++iter;
  }
}
BENCHMARK(BM_ArmedPlanDecisions);

}  // namespace

int main(int argc, char** argv) {
  const int rc = experiment();
  if (rc != 0) return rc;
  return bench::run_benchmarks(argc, argv);
}
