#!/usr/bin/env bash
# End-to-end smoke test of the observability surface: runs ecsim_flow with
# --trace-out/--metrics-out into a temp dir and validates that the emitted
# files are real JSON in Chrome trace-event shape with the expected track and
# counter names (so the trace actually loads in Perfetto / chrome://tracing).
set -euo pipefail

FLOW="${1:?usage: obs_smoke.sh <ecsim_flow-binary> <spec-file>}"
SPEC="${2:?usage: obs_smoke.sh <ecsim_flow-binary> <spec-file>}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$FLOW" simulate "$SPEC" \
  --trace-out="$TMP/sim_trace.json" \
  --metrics-out="$TMP/sim_metrics.json" >/dev/null
"$FLOW" schedule "$SPEC" \
  --trace-out="$TMP/sched_trace.json" \
  --metrics-out="$TMP/sched_metrics.csv" >/dev/null

if command -v python3 >/dev/null 2>&1; then
  python3 - "$TMP" <<'EOF'
import json
import sys

tmp = sys.argv[1]

trace = json.load(open(tmp + "/sim_trace.json"))
events = trace["traceEvents"]
assert isinstance(events, list) and events, "empty traceEvents"
tracks = {e["args"]["name"] for e in events
          if e.get("ph") == "M" and e.get("name") == "thread_name"}
for want in ("proc/P0", "proc/P1", "medium/can",
             "wcet/proc/P0", "actual/proc/P0",
             "runtime/aaa", "runtime/vm"):
    assert want in tracks, f"missing track {want!r} in {sorted(tracks)}"
assert any(e.get("ph") == "X" for e in events), "no complete (X) events"

metrics = json.load(open(tmp + "/sim_metrics.json"))
for want in ("aaa.candidates_evaluated", "aaa.ops_scheduled",
             "exec.ops_executed", "exec.wcet_lookups"):
    assert want in metrics["counters"], f"missing counter {want!r}"

sched = json.load(open(tmp + "/sched_trace.json"))
stracks = {e["args"]["name"] for e in sched["traceEvents"]
           if e.get("ph") == "M" and e.get("name") == "thread_name"}
assert "proc/P0" in stracks, sorted(stracks)
assert "medium/can" in stracks, sorted(stracks)

csv = open(tmp + "/sched_metrics.csv").read()
assert "aaa.ops_scheduled" in csv, csv

print("obs_smoke: all checks passed")
EOF
else
  # Degraded check without a JSON parser on PATH.
  grep -q '"traceEvents"' "$TMP/sim_trace.json"
  grep -q 'proc/P0' "$TMP/sim_trace.json"
  grep -q 'medium/can' "$TMP/sim_trace.json"
  grep -q 'aaa.ops_scheduled' "$TMP/sim_metrics.json"
  grep -q 'aaa.ops_scheduled' "$TMP/sched_metrics.csv"
  echo "obs_smoke: grep checks passed (python3 unavailable)"
fi
