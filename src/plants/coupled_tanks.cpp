#include "plants/coupled_tanks.hpp"

#include <stdexcept>

namespace ecsim::plants {

control::StateSpace coupled_tanks(const CoupledTanksParams& p) {
  if (p.a1 <= 0.0 || p.a2 <= 0.0) {
    throw std::invalid_argument("coupled_tanks: outflow rates must be > 0");
  }
  control::StateSpace sys;
  sys.a = control::Matrix{{-p.a1, 0.0}, {p.a1, -p.a2}};
  sys.b = control::Matrix{{p.pump_gain}, {0.0}};
  sys.c = control::Matrix{{0.0, 1.0}};
  sys.d = control::Matrix{{0.0}};
  sys.validate();
  return sys;
}

}  // namespace ecsim::plants
