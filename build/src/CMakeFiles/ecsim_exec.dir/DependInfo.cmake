
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/channel.cpp" "src/CMakeFiles/ecsim_exec.dir/exec/channel.cpp.o" "gcc" "src/CMakeFiles/ecsim_exec.dir/exec/channel.cpp.o.d"
  "/root/repo/src/exec/conformance.cpp" "src/CMakeFiles/ecsim_exec.dir/exec/conformance.cpp.o" "gcc" "src/CMakeFiles/ecsim_exec.dir/exec/conformance.cpp.o.d"
  "/root/repo/src/exec/executive_vm.cpp" "src/CMakeFiles/ecsim_exec.dir/exec/executive_vm.cpp.o" "gcc" "src/CMakeFiles/ecsim_exec.dir/exec/executive_vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ecsim_aaa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_mathlib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
