// The full ECLIPSE toolchain, stage by stage, on a two-mass flexible servo:
//
//   (a) build the Scicos-style simulation diagram (plant + S/H + controller);
//   (b) extract the control algorithm into an AAA algorithm graph with the
//       designer's timing annotations (Scicos -> SynDEx translation);
//   (c) describe the distributed architecture (3 processors, shared bus);
//   (d) run the adequation and print the resulting static schedule;
//   (e) generate the distributed executives and print the C-like source;
//   (f) run the executives on the virtual machine and check deadlock freedom
//       and WCET conformance;
//   (g) translate the schedule back into a graph of delays and co-simulate
//       the closed loop, reporting the latency series and control cost.
#include <cstdio>

#include "aaa/adequation.hpp"
#include "aaa/codegen.hpp"
#include "blocks/continuous.hpp"
#include "blocks/discrete.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/probe.hpp"
#include "blocks/sample_hold.hpp"
#include "blocks/sources.hpp"
#include "control/c2d.hpp"
#include "control/lqr.hpp"
#include "control/metrics.hpp"
#include "exec/conformance.hpp"
#include "latency/latency.hpp"
#include "plants/two_mass.hpp"
#include "sim/simulator.hpp"
#include "translate/extract.hpp"
#include "translate/graph_of_delays.hpp"

using namespace ecsim;

int main() {
  const double ts = 0.002;  // 500 Hz loop for the resonant drive

  // ---- (a) the simulation diagram ----------------------------------------
  control::StateSpace plant_ct = plants::two_mass();
  plant_ct.c = math::Matrix::identity(4);  // full state to the sampler
  plant_ct.d = math::Matrix::zeros(4, 1);
  const control::StateSpace plant_dt = control::c2d(plant_ct, ts);
  const control::LqrResult lqr =
      control::dlqr(plant_dt, math::Matrix::diag({200.0, 1.0, 200.0, 1.0}),
                    math::Matrix{{0.5}});
  control::StateSpace load_angle = plant_dt;
  load_angle.c = math::Matrix{{0.0, 0.0, 1.0, 0.0}};
  load_angle.d = math::Matrix{{0.0}};
  const double nbar = control::reference_gain(load_angle, lqr.k);

  sim::Model m;
  auto& plant = m.add<blocks::StateSpaceCont>("plant", plant_ct.a, plant_ct.b,
                                              plant_ct.c, plant_ct.d);
  auto& ref = m.add<blocks::Step>("ref", 0.0, 1.0, 0.0);
  auto& sense = m.add<blocks::SampleHold>("sense", 4);
  auto& mux = m.add<blocks::Mux>("xr", std::vector<std::size_t>{4, 1});
  // u = -K x + nbar r as a single-gain discrete block.
  math::Matrix d(1, 5);
  for (std::size_t i = 0; i < 4; ++i) d(0, i) = -lqr.k(0, i);
  d(0, 4) = nbar;
  auto& ctrl = m.add<blocks::StateSpaceDisc>(
      "ctrl", math::Matrix::zeros(0, 0), math::Matrix::zeros(0, 5),
      math::Matrix::zeros(1, 0), d);
  auto& act = m.add<blocks::SampleHold>("act", 1);
  auto& ysel = m.add<blocks::Gain>("ysel", math::Matrix{{0.0, 0.0, 1.0, 0.0}});
  auto& probe_y = m.add<blocks::Probe>("probe_y", 1, 1e-3);
  m.connect(plant, 0, sense, 0);
  m.connect(sense, 0, mux, 0);
  m.connect(ref, 0, mux, 1);
  m.connect(mux, 0, ctrl, 0);
  m.connect(ctrl, 0, act, 0);
  m.connect(act, 0, plant, 0);
  m.connect(plant, 0, ysel, 0);
  m.connect(ysel, 0, probe_y, 0);

  // ---- (b) Scicos -> SynDEx extraction -----------------------------------
  translate::TimingAnnotations annot;
  annot.wcet["sense"]["cpu"] = 1e-4;
  annot.wcet["ctrl"]["cpu"] = 8e-4;
  annot.wcet["act"]["cpu"] = 1e-4;
  annot.out_size["sense"] = 16.0;  // 4 doubles
  annot.out_size["ctrl"] = 4.0;
  annot.binding["sense"] = "ECU0";
  annot.binding["act"] = "ECU0";
  const aaa::AlgorithmGraph alg = translate::extract_algorithm(
      m, {"sense"}, {"ctrl"}, {"act"}, annot, ts);
  std::printf("extracted algorithm '%s' with %zu operations, %zu deps\n",
              alg.name().c_str(), alg.num_operations(),
              alg.dependencies().size());

  // ---- (c) the architecture -----------------------------------------------
  aaa::ArchitectureGraph arch("3-ecu");
  const auto e0 = arch.add_processor("ECU0");
  const auto e1 = arch.add_processor("ECU1");
  const auto e2 = arch.add_processor("ECU2");
  const auto bus = arch.add_medium("can", 4e4, 1e-4);
  arch.attach(e0, bus);
  arch.attach(e1, bus);
  arch.attach(e2, bus);

  // ---- (d) adequation ------------------------------------------------------
  const aaa::Schedule sched = aaa::adequate(alg, arch);
  sched.validate(alg, arch);
  std::printf("\n%s\n", sched.to_string(alg, arch).c_str());

  // ---- (e) code generation -------------------------------------------------
  const aaa::GeneratedCode code = aaa::generate_executives(alg, arch, sched);
  std::printf("%s\n", code.source.c_str());

  // ---- (f) virtual execution + conformance ---------------------------------
  exec::VmOptions vm_opts;
  vm_opts.iterations = 100;
  vm_opts.period = ts;
  const exec::VmResult wcet_run =
      exec::run_executives(alg, arch, sched, code, vm_opts);
  const exec::ConformanceReport conf =
      exec::check_wcet_conformance(alg, arch, sched, wcet_run, ts);
  std::printf("VM (WCET): deadlock=%s, conformance=%s (max error %.2e over %zu "
              "instances)\n",
              wcet_run.deadlock ? "YES" : "no", conf.ok ? "exact" : "VIOLATED",
              conf.max_time_error, conf.checked_instances);
  exec::VmOptions rand_opts = vm_opts;
  rand_opts.exec_time = exec::uniform_fraction_exec_time(0.4);
  const exec::VmResult rand_run =
      exec::run_executives(alg, arch, sched, code, rand_opts);
  const exec::ConformanceReport order =
      exec::check_order_preservation(alg, arch, sched, rand_run);
  std::printf("VM (random exec times): deadlock=%s, order preserved=%s\n",
              rand_run.deadlock ? "YES" : "no", order.ok ? "yes" : "NO");

  // ---- (g) graph of delays + co-simulation ---------------------------------
  const translate::GraphOfDelays god =
      translate::build_graph_of_delays(m, alg, arch, sched, {});
  translate::wire_completion(m, god, alg.find("sense"), sense, sense.event_in());
  translate::wire_completion(m, god, alg.find("ctrl"), ctrl, ctrl.event_in());
  translate::wire_completion(m, god, alg.find("act"), act, act.event_in());

  sim::SimOptions sim_opts;
  sim_opts.end_time = 1.5;
  sim_opts.integrator.max_step = 1e-4;
  sim::Simulator simulator(m, sim_opts);
  const sim::Trace& trace = simulator.run();

  const auto y = trace.series(m.index_of(probe_y));
  const control::StepInfo step = control::step_info(y, 1.0);
  const latency::LatencySeries act_lat =
      latency::analyze_block_activations(trace, "act", ts, "actuation");
  std::printf("co-simulation: IAE=%.5f overshoot=%.2f%% settle=%.3fs\n",
              control::iae(y, 1.0), step.overshoot_pct, step.settling_time);
  std::printf("%s\n", latency::to_table(act_lat, 5).c_str());
  return 0;
}
