// Structured runtime tracing for the whole tool chain (DESIGN.md §3.2).
//
// A Tracer is a fixed-capacity ring buffer of timestamped records shared by
// the simulator, the executive VM and the adequation heuristic. Two clock
// domains coexist:
//  - kWall  — wall-clock microseconds since the tracer's construction
//             (spans around compile / adequation / integration segments /
//             cone refreshes: "why was this run slow?");
//  - kSim   — simulated/scheduled time in seconds (instants of event
//             dispatches and S/H activations, spans of VM operation and
//             communication instances: "when did the implementation act?").
// The exporter in obs/trace_json.hpp renders each domain as its own process
// in the Chrome trace-event / Perfetto timeline format.
//
// Cost model: everything is pay-for-what-you-use. A null Tracer* costs one
// pointer test on the instrumented path; an attached-but-disabled tracer one
// extra load+branch; recording is a relaxed fetch_add plus a slot write (the
// ring overwrites its oldest records instead of allocating). Defining
// ECSIM_OBS_DISABLED at compile time constant-folds obs::active() to false so
// the instrumentation compiles out entirely.
//
// Names and tracks are interned once (mutex-protected, cold path) and passed
// around as integer ids; the hot path never hashes or copies strings.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ecsim::obs {

/// Record flavour, mirroring the Chrome trace-event phases used on export:
/// kSpan -> "X" (complete event), kInstant -> "i", kCounter -> "C".
enum class Phase : std::uint8_t { kSpan, kInstant, kCounter };

/// Clock domain of a track (see file comment).
enum class Domain : std::uint8_t { kWall, kSim };

/// One ring slot. `ts`/`dur` are microseconds in the track's domain (sim
/// seconds are converted on record so the exporter is domain-agnostic).
struct TraceEvent {
  double ts = 0.0;
  double dur = 0.0;
  std::uint32_t name = 0;      // interned via Tracer::intern
  std::uint32_t track = 0;     // from Tracer::track
  std::uint32_t arg_name = 0;  // interned key of `arg`; kNoArg when absent
  Phase phase = Phase::kSpan;
  double arg = 0.0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

inline constexpr std::uint32_t kNoArg = 0xffffffffu;

class Tracer {
 public:
  /// `capacity` slots are allocated up front; recording never allocates.
  explicit Tracer(std::size_t capacity = 1u << 16);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Intern a name (idempotent). Cold path: callers cache the id.
  std::uint32_t intern(std::string_view s);
  const std::string& name(std::uint32_t id) const { return names_.at(id); }

  /// Register (or find) a track. Tracks map to Perfetto threads; the domain
  /// picks the process (wall-clock runtime vs sim-time timeline).
  std::uint32_t track(std::string_view name, Domain domain);
  std::size_t num_tracks() const;
  const std::string& track_name(std::uint32_t id) const;
  Domain track_domain(std::uint32_t id) const;

  /// Wall-clock microseconds since construction (steady clock).
  double now_us() const;

  // Recording (no-ops while disabled; `_us` timestamps are in the track's
  // domain — wall spans pass now_us(), sim-domain records pass seconds*1e6).
  void span(std::uint32_t name, std::uint32_t track, double start_us,
            double end_us, std::uint32_t arg_name = kNoArg, double arg = 0.0);
  void instant(std::uint32_t name, std::uint32_t track, double ts_us,
               std::uint32_t arg_name = kNoArg, double arg = 0.0);
  void counter(std::uint32_t name, std::uint32_t track, double ts_us,
               double value);

  /// Records retained (<= capacity) and records overwritten by ring wrap.
  std::size_t size() const;
  std::size_t dropped() const;
  std::size_t capacity() const { return ring_.size(); }

  /// Chronological copy of the retained records. Call only while no writer
  /// is active (end of run); concurrent recording may tear slots.
  std::vector<TraceEvent> snapshot() const;

  /// Shard merge: re-intern `other`'s names and tracks into this tracer and
  /// append its retained records in their chronological order. Appending
  /// ignores this tracer's enabled flag (merging is an explicit request, not
  /// hot-path instrumentation) but still honours ring capacity — the oldest
  /// records are overwritten on overflow. Appending shards in task-index
  /// order yields a stable record order independent of thread scheduling.
  /// Wall-clock timestamps stay relative to each shard's own epoch;
  /// sim-domain records are epoch-free. Appending a tracer to itself throws
  /// std::invalid_argument. Call only while neither tracer has an active
  /// writer.
  void append(const Tracer& other);

  /// Drop all records (names/tracks stay interned).
  void clear();

 private:
  void record(const TraceEvent& e);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> count_{0};
  std::vector<TraceEvent> ring_;

  mutable std::mutex intern_mu_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> name_ids_;
  struct TrackInfo {
    std::string name;
    Domain domain = Domain::kWall;
  };
  std::vector<TrackInfo> tracks_;

  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

/// The single hot-path test: compiled in? attached? enabled?
inline bool active(const Tracer* t) {
#ifdef ECSIM_OBS_DISABLED
  (void)t;
  return false;
#else
  return t != nullptr && t->enabled();
#endif
}

/// Sim-time seconds -> track-domain microseconds.
inline double sim_us(double seconds) { return seconds * 1e6; }

/// RAII wall-clock span: times its scope and records on destruction. Safe to
/// construct with a null/disabled tracer (records nothing).
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::uint32_t name, std::uint32_t track,
             std::uint32_t arg_name = kNoArg, double arg = 0.0)
      : tracer_(active(tracer) ? tracer : nullptr),
        name_(name),
        track_(track),
        arg_name_(arg_name),
        arg_(arg),
        start_us_(tracer_ != nullptr ? tracer_->now_us() : 0.0) {}

  /// Convenience: interns both names (cold paths only).
  ScopedSpan(Tracer* tracer, std::string_view name, Domain domain,
             std::string_view track_name)
      : ScopedSpan(tracer, active(tracer) ? tracer->intern(name) : 0,
                   active(tracer) ? tracer->track(track_name, domain) : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_arg(std::uint32_t arg_name, double arg) {
    arg_name_ = arg_name;
    arg_ = arg;
  }

  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->span(name_, track_, start_us_, tracer_->now_us(), arg_name_,
                    arg_);
    }
  }

 private:
  Tracer* tracer_;
  std::uint32_t name_ = 0;
  std::uint32_t track_ = 0;
  std::uint32_t arg_name_ = kNoArg;
  double arg_ = 0.0;
  double start_us_ = 0.0;
};

}  // namespace ecsim::obs
