// Zero-order-hold discretization via the matrix exponential of the augmented
// matrix [A B; 0 0] — exact for piecewise-constant inputs.
#pragma once

#include "control/state_space.hpp"

namespace ecsim::control {

/// ZOH-discretize a continuous system with sampling period ts:
///   Ad = e^{A ts},  Bd = \int_0^{ts} e^{A s} ds B,  C/D unchanged.
StateSpace c2d(const StateSpace& sys, double ts);

/// \int_0^{t} e^{A s} ds * B — the input-integral building block used by
/// both c2d and delayed-input discretization.
Matrix input_integral(const Matrix& a, const Matrix& b, double t);

/// Discretize a continuous system whose ZOH input is applied with an
/// input-output delay tau in [0, ts] (the control computed for period k
/// takes effect at kTs + tau). Returns the augmented discrete system with
/// state z = [x; u_{k-1}]:
///   z+ = [Ad  G1; 0  0] z + [G0; I] u_k
/// where G0 = \int_0^{ts-tau} e^{As} ds B and G1 = \int_{ts-tau}^{ts} e^{As} ds B.
/// The C matrix is extended with zeros; D is unchanged.
StateSpace c2d_with_input_delay(const StateSpace& sys, double ts, double tau);

}  // namespace ecsim::control
