file(REMOVE_RECURSE
  "CMakeFiles/ecsim_translate.dir/translate/cosim.cpp.o"
  "CMakeFiles/ecsim_translate.dir/translate/cosim.cpp.o.d"
  "CMakeFiles/ecsim_translate.dir/translate/extract.cpp.o"
  "CMakeFiles/ecsim_translate.dir/translate/extract.cpp.o.d"
  "CMakeFiles/ecsim_translate.dir/translate/graph_of_delays.cpp.o"
  "CMakeFiles/ecsim_translate.dir/translate/graph_of_delays.cpp.o.d"
  "libecsim_translate.a"
  "libecsim_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecsim_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
