#include "translate/cosim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "backend/backend.hpp"
#include "blocks/continuous.hpp"
#include "fault/fault_plan.hpp"
#include "blocks/discrete.hpp"
#include "blocks/event_blocks.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/probe.hpp"
#include "blocks/sample_hold.hpp"
#include "blocks/sources.hpp"
#include "sim/build_ir.hpp"
#include "sim/simulator.hpp"

namespace ecsim::translate {

namespace {

/// The assembled loop: the model plus handles on the blocks whose events
/// define the timing regime.
struct LoopModel {
  sim::Model model;
  blocks::SampleHold* sampler = nullptr;
  blocks::StateSpaceDisc* controller = nullptr;
  blocks::SampleHold* actuator = nullptr;
  const sim::Block* error_monitor = nullptr;  // ref - y, for conditioning
  /// Where a sampling activation must be delivered: the sampler itself, or
  /// the measurement-noise block chained in front of it.
  const sim::Block* sample_trigger = nullptr;
  std::size_t sample_trigger_in = 0;
  std::size_t probe_y = 0;  // block indices for trace lookup
  std::size_t probe_u = 0;
};

LoopModel assemble_loop(const LoopSpec& spec) {
  spec.plant.validate();
  spec.controller.validate();
  if (spec.plant.discrete) {
    throw std::invalid_argument("cosim: plant must be continuous");
  }
  if (!spec.controller.discrete) {
    throw std::invalid_argument("cosim: controller must be discrete");
  }
  if (spec.plant.num_inputs() != 1) {
    throw std::invalid_argument(
        "cosim: plant must be single-input (wrap disturbances externally)");
  }
  if (spec.output_index >= spec.plant.num_outputs()) {
    throw std::invalid_argument("cosim: output_index out of range");
  }

  LoopModel lm;
  sim::Model& m = lm.model;
  const std::size_t p = spec.plant.num_outputs();

  auto& plant = m.add<blocks::StateSpaceCont>("plant", spec.plant.a,
                                              spec.plant.b, spec.plant.c,
                                              spec.plant.d);
  auto& ref = m.add<blocks::Step>("ref", 0.0, spec.ref, 0.0);
  // Row selector for the loop-closure output.
  math::Matrix sel(1, p);
  sel(0, spec.output_index) = 1.0;
  auto& ysel = m.add<blocks::Gain>("ysel", sel);
  m.connect(plant, 0, ysel, 0);

  auto& ctrl = m.add<blocks::StateSpaceDisc>("ctrl", spec.controller.a,
                                             spec.controller.b,
                                             spec.controller.c,
                                             spec.controller.d);
  lm.controller = &ctrl;

  // Optional sampled measurement noise, shared by all measured lanes.
  const sim::Block* noise_out = nullptr;  // width-1 noise value
  blocks::NoiseHold* noise = nullptr;
  if (spec.measurement_noise_std > 0.0) {
    noise = &m.add<blocks::NoiseHold>("mnoise", 0.0,
                                      spec.measurement_noise_std);
    noise_out = noise;
  }
  // Measured signal fed to the sampler: y (or the full output vector),
  // plus noise when enabled.
  auto noisy_of = [&](const sim::Block& signal, std::size_t width)
      -> const sim::Block& {
    if (noise_out == nullptr) return signal;
    math::Matrix spread(width, 1);
    for (std::size_t i = 0; i < width; ++i) spread(i, 0) = 1.0;
    auto& widen = m.add<blocks::Gain>("mnoise/widen", spread);
    m.connect(*noise_out, 0, widen, 0);
    auto& sum = m.add<blocks::Sum>("measured",
                                   std::vector<double>{1.0, 1.0}, width);
    m.connect(signal, 0, sum, 0);
    m.connect(widen, 0, sum, 1);
    return sum;
  };

  switch (spec.input) {
    case ControllerInput::kError: {
      if (spec.controller.num_inputs() != 1) {
        throw std::invalid_argument(
            "cosim: kError mode needs a single-input controller");
      }
      auto& sampler = m.add<blocks::SampleHold>("sense", 1);
      lm.sampler = &sampler;
      m.connect(noisy_of(ysel, 1), 0, sampler, 0);
      auto& err = m.add<blocks::Sum>("err", std::vector<double>{1.0, -1.0}, 1);
      m.connect(ref, 0, err, 0);
      m.connect(sampler, 0, err, 1);
      m.connect(err, 0, ctrl, 0);
      lm.error_monitor = &err;
      break;
    }
    case ControllerInput::kStateRef: {
      if (spec.controller.num_inputs() != p + 1) {
        throw std::invalid_argument(
            "cosim: kStateRef mode needs controller input width = plant "
            "outputs + 1 (for the reference)");
      }
      auto& sampler = m.add<blocks::SampleHold>("sense", p);
      lm.sampler = &sampler;
      m.connect(noisy_of(plant, p), 0, sampler, 0);
      auto& mux = m.add<blocks::Mux>("xr", std::vector<std::size_t>{p, 1});
      m.connect(sampler, 0, mux, 0);
      m.connect(ref, 0, mux, 1);
      m.connect(mux, 0, ctrl, 0);
      break;
    }
    case ControllerInput::kOutputRef: {
      if (spec.controller.num_inputs() != 2) {
        throw std::invalid_argument(
            "cosim: kOutputRef mode needs controller input width = 2 "
            "([y; ref])");
      }
      auto& sampler = m.add<blocks::SampleHold>("sense", 1);
      lm.sampler = &sampler;
      m.connect(noisy_of(ysel, 1), 0, sampler, 0);
      auto& mux = m.add<blocks::Mux>("yr", std::vector<std::size_t>{1, 1});
      m.connect(sampler, 0, mux, 0);
      m.connect(ref, 0, mux, 1);
      m.connect(mux, 0, ctrl, 0);
      break;
    }
  }
  if (lm.error_monitor == nullptr) {
    // Error monitor for data-driven conditioning (not in the control path).
    auto& errmon =
        m.add<blocks::Sum>("errmon", std::vector<double>{1.0, -1.0}, 1);
    m.connect(ref, 0, errmon, 0);
    m.connect(ysel, 0, errmon, 1);
    lm.error_monitor = &errmon;
  }

  // Route every sampling activation through the noise block (if any) so the
  // sampler sees a fresh draw at its own activation instant.
  if (noise != nullptr) {
    m.connect_event(*noise, noise->done_event_out(), *lm.sampler,
                    lm.sampler->event_in());
    lm.sample_trigger = noise;
    lm.sample_trigger_in = noise->event_in();
  } else {
    lm.sample_trigger = lm.sampler;
    lm.sample_trigger_in = lm.sampler->event_in();
  }

  auto& act = m.add<blocks::SampleHold>("act", 1);
  lm.actuator = &act;
  m.connect(ctrl, 0, act, 0);
  if (spec.disturbance_amplitude != 0.0) {
    auto& dist = m.add<blocks::Pulse>("dist", -spec.disturbance_amplitude,
                                      spec.disturbance_amplitude,
                                      spec.disturbance_period, 0.5);
    auto& plant_in =
        m.add<blocks::Sum>("plant_in", std::vector<double>{1.0, 1.0}, 1);
    m.connect(act, 0, plant_in, 0);
    m.connect(dist, 0, plant_in, 1);
    m.connect(plant_in, 0, plant, 0);
  } else {
    m.connect(act, 0, plant, 0);
  }

  auto& probe_y = m.add<blocks::Probe>("probe_y", 1, spec.record_dt);
  m.connect(ysel, 0, probe_y, 0);
  auto& probe_u = m.add<blocks::Probe>("probe_u", 1, spec.record_dt);
  m.connect(act, 0, probe_u, 0);
  lm.probe_y = m.index_of(probe_y);
  lm.probe_u = m.index_of(probe_u);
  return lm;
}

/// Runs the assembled loop through the backend dispatcher and extracts the
/// control/latency metrics. `interp_reason` non-empty pins the interpreter
/// regardless of spec.backend and records why (e.g. distributed fault
/// accounting, which reads interpreter block counters after the run).
/// `fault_plan_hash` is a ledger annotation (fault::hash of the active plan).
CosimOutcome simulate_and_measure(LoopModel& lm, const LoopSpec& spec,
                                  const std::string& interp_reason = {},
                                  std::uint64_t fault_plan_hash = 0) {
  backend::RunOptions ro;
  ro.sim.end_time = spec.t_end;
  ro.sim.seed = spec.seed;
  ro.sim.integrator.kind = sim::IntegratorKind::kRk4;
  ro.sim.integrator.max_step = spec.integrator_max_step;
  ro.model_name = "loop";
  ro.fault_plan_hash = fault_plan_hash;
  ro.threads = spec.threads;
  ro.kind = interp_reason.empty() ? spec.backend : backend::Kind::kInterp;
  backend::RunResult r = backend::run(lm.model, ro);
  const sim::Trace& trace = r.trace;

  CosimOutcome out;
  out.backend_used = r.used;
  out.backend_fallback = !interp_reason.empty() &&
                                 spec.backend != backend::Kind::kInterp
                             ? interp_reason
                             : r.fallback_reason;
  out.y = trace.series(lm.probe_y);
  out.u = trace.series(lm.probe_u);
  out.step = control::step_info(out.y, spec.ref);
  out.iae = control::iae(out.y, spec.ref);
  out.ise = control::ise(out.y, spec.ref);
  out.itae = control::itae(out.y, spec.ref);
  out.cost = control::quadratic_cost(out.y, out.u, spec.ref, spec.qy, spec.ru);
  out.sense_latency = latency::analyze_block_activations(
      trace, "sense", spec.ts, "sampling");
  out.act_latency = latency::analyze_block_activations(
      trace, "act", spec.ts, "actuation");
  return out;
}

}  // namespace

namespace {

/// Stroboscopic wiring: one clock, zero-latency causal chain within the
/// same instant (FIFO event ordering keeps sample -> control -> actuate).
void wire_ideal(LoopModel& lm, const LoopSpec& spec) {
  sim::Model& m = lm.model;
  auto& clock = m.add<blocks::Clock>("clock", spec.ts);
  m.connect_event(clock, clock.event_out(), *lm.sample_trigger,
                  lm.sample_trigger_in);
  m.connect_event(*lm.sampler, lm.sampler->done_event_out(), *lm.controller,
                  lm.controller->event_in());
  m.connect_event(*lm.controller, lm.controller->done_event_out(),
                  *lm.actuator, lm.actuator->event_in());
}

}  // namespace

CosimOutcome run_ideal_loop(const LoopSpec& spec) {
  LoopModel lm = assemble_loop(spec);
  wire_ideal(lm, spec);
  return simulate_and_measure(lm, spec);
}

ir::Model loop_ir(const LoopSpec& spec) {
  LoopModel lm = assemble_loop(spec);
  wire_ideal(lm, spec);
  return sim::build_ir(lm.model, "loop");
}

CosimOutcome run_latency_loop(const LoopSpec& spec, double ls, double la,
                              double jitter_p2p) {
  if (ls < 0.0 || la < ls) {
    throw std::invalid_argument("run_latency_loop: need 0 <= ls <= la");
  }
  LoopModel lm = assemble_loop(spec);
  sim::Model& m = lm.model;
  auto& clock = m.add<blocks::Clock>("clock", spec.ts);
  auto& d_sense = m.add<blocks::EventDelay>("lat/sense", ls);
  m.connect_event(clock, clock.event_out(), d_sense, d_sense.event_in());
  m.connect_event(d_sense, d_sense.event_out(), *lm.sample_trigger,
                  lm.sample_trigger_in);
  m.connect_event(*lm.sampler, lm.sampler->done_event_out(), *lm.controller,
                  lm.controller->event_in());
  const double base = la - ls;
  const blocks::DurationSpec act_delay =
      jitter_p2p <= 0.0
          ? blocks::constant_duration(base)
          : blocks::shifted_uniform_duration(base, jitter_p2p);
  auto& d_act = m.add<blocks::EventDelay>("lat/act", act_delay);
  m.connect_event(*lm.controller, lm.controller->done_event_out(), d_act,
                  d_act.event_in());
  m.connect_event(d_act, d_act.event_out(), *lm.actuator,
                  lm.actuator->event_in());
  return simulate_and_measure(lm, spec);
}

aaa::AlgorithmGraph make_loop_algorithm(const LoopSpec& spec,
                                        const DistributedSpec& dist) {
  aaa::AlgorithmGraph alg("control-loop", spec.ts);
  aaa::Operation sense;
  sense.name = "sense";
  sense.kind = aaa::OpKind::kSensor;
  sense.wcet["cpu"] = dist.wcet_sense;
  if (!dist.bind_sense.empty()) sense.bound_processor = dist.bind_sense;
  const aaa::OpId s = alg.add_operation(std::move(sense));

  aaa::Operation ctrl;
  ctrl.name = "ctrl";
  ctrl.kind = aaa::OpKind::kCompute;
  if (dist.ctrl_branch_wcets.empty()) {
    ctrl.wcet["cpu"] = dist.wcet_ctrl;
  } else {
    for (std::size_t b = 0; b < dist.ctrl_branch_wcets.size(); ++b) {
      aaa::Branch br;
      br.name = "branch" + std::to_string(b);
      br.wcet["cpu"] = dist.ctrl_branch_wcets[b];
      ctrl.branches.push_back(std::move(br));
    }
  }
  if (!dist.bind_ctrl.empty()) ctrl.bound_processor = dist.bind_ctrl;
  const aaa::OpId c = alg.add_operation(std::move(ctrl));

  aaa::Operation act;
  act.name = "act";
  act.kind = aaa::OpKind::kActuator;
  act.wcet["cpu"] = dist.wcet_act;
  if (!dist.bind_act.empty()) act.bound_processor = dist.bind_act;
  const aaa::OpId a = alg.add_operation(std::move(act));

  alg.add_dependency(s, c, dist.size_y);
  alg.add_dependency(c, a, dist.size_u);
  return alg;
}

CosimOutcome run_distributed_loop(const LoopSpec& spec,
                                  const DistributedSpec& dist) {
  LoopModel lm = assemble_loop(spec);
  const aaa::AlgorithmGraph alg = make_loop_algorithm(spec, dist);
  const aaa::Schedule sched = aaa::adequate(alg, dist.arch, dist.adequation);
  sched.validate(alg, dist.arch);

  GodOptions god_opts = dist.god;
  if (dist.ctrl_condition_threshold) {
    if (dist.ctrl_branch_wcets.size() != 2) {
      throw std::invalid_argument(
          "run_distributed_loop: ctrl_condition_threshold needs exactly two "
          "branch WCETs");
    }
    const double threshold = *dist.ctrl_condition_threshold;
    god_opts.conditions["ctrl"] = ConditionBinding{
        lm.error_monitor, 0, [threshold](std::span<const double> e) {
          return static_cast<std::size_t>(std::abs(e[0]) > threshold ? 1 : 0);
        }};
  }
  GraphOfDelays god =
      build_graph_of_delays(lm.model, alg, dist.arch, sched, god_opts);
  wire_completion(lm.model, god, alg.find("sense"), *lm.sample_trigger,
                  lm.sample_trigger_in);
  wire_completion(lm.model, god, alg.find("ctrl"), *lm.controller,
                  lm.controller->event_in());
  wire_completion(lm.model, god, alg.find("act"), *lm.actuator,
                  lm.actuator->event_in());

  // Fault accounting (messages_lost/deferred) reads the gates' interpreter
  // block counters after the run, so fault-gated runs stay on the
  // interpreter; condition bindings are opaque closures and would fall back
  // anyway.
  const std::string interp_reason =
      god.fault_gates.empty()
          ? std::string()
          : "fault_accounting: distributed fault gates report drop/defer "
            "counts through interpreter block state";
  CosimOutcome out = simulate_and_measure(lm, spec, interp_reason,
                                          fault::hash(dist.god.fault_plan));
  out.makespan = sched.makespan();
  out.schedule_text = sched.to_string(alg, dist.arch);
  for (const blocks::EventFault* gate : god.fault_gates) {
    out.messages_lost += gate->drops();
    out.messages_deferred += gate->defers();
  }
  return out;
}

}  // namespace ecsim::translate
