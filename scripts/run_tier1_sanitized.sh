#!/usr/bin/env bash
# Configure a dedicated ASan+UBSan build tree and run the tier-1 test suite
# under it. Any sanitizer report fails the run (-fno-sanitize-recover=all).
#
# Usage: scripts/run_tier1_sanitized.sh [ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-asan"

cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DECSIM_SANITIZE=ON
cmake --build "${build_dir}" -j "$(nproc)"

# halt_on_error is implied by -fno-sanitize-recover; detect_leaks stays on so
# ownership bugs in the block/model layer surface here rather than in prod.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_stack_use_after_return=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

ctest --test-dir "${build_dir}" --output-on-failure "$@"
