#include "mathlib/linalg.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "mathlib/rng.hpp"

namespace ecsim::math {
namespace {

TEST(Lu, SolvesKnownSystem) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const std::vector<double> x = solve(a, std::vector<double>{3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, SingularDetectedAndSolveRefuses) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  const Lu lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_DOUBLE_EQ(lu.determinant(), 0.0);
  EXPECT_THROW(lu.solve(std::vector<double>{1.0, 1.0}), std::runtime_error);
}

TEST(Lu, NonSquareThrows) {
  EXPECT_THROW(Lu lu(Matrix(2, 3)), std::invalid_argument);
}

TEST(Lu, DeterminantMatchesCofactorExpansion) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 10.0}};
  EXPECT_NEAR(determinant(a), -3.0, 1e-9);
}

TEST(Lu, InverseRoundTrip) {
  Matrix a{{4.0, 7.0}, {2.0, 6.0}};
  const Matrix inv = inverse(a);
  EXPECT_TRUE(approx_equal(a * inv, Matrix::identity(2), 1e-12));
  EXPECT_TRUE(approx_equal(inv * a, Matrix::identity(2), 1e-12));
}

TEST(Lu, RandomSystemsResidualSmall) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 7));
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 2.0;  // diag dominance
    std::vector<double> b(n);
    for (double& v : b) v = rng.uniform(-1.0, 1.0);
    const std::vector<double> x = solve(a, b);
    const std::vector<double> r = vec_sub(a * x, b);
    EXPECT_LT(vec_norm(r), 1e-10);
  }
}

TEST(Eigen, DiagonalMatrix) {
  const auto eigs = eigenvalues(Matrix::diag({1.0, -2.0, 3.5}));
  std::vector<double> re;
  for (const auto& l : eigs) {
    EXPECT_NEAR(l.imag(), 0.0, 1e-9);
    re.push_back(l.real());
  }
  std::sort(re.begin(), re.end());
  EXPECT_NEAR(re[0], -2.0, 1e-9);
  EXPECT_NEAR(re[1], 1.0, 1e-9);
  EXPECT_NEAR(re[2], 3.5, 1e-9);
}

TEST(Eigen, ComplexPairOfRotation) {
  // Rotation-scaling matrix: eigenvalues r e^{+-i theta}.
  const double r = 0.9, theta = 0.7;
  Matrix a{{r * std::cos(theta), -r * std::sin(theta)},
           {r * std::sin(theta), r * std::cos(theta)}};
  const auto eigs = eigenvalues(a);
  ASSERT_EQ(eigs.size(), 2u);
  for (const auto& l : eigs) {
    EXPECT_NEAR(std::abs(l), r, 1e-9);
  }
  EXPECT_NEAR(spectral_radius(a), r, 1e-9);
}

TEST(Eigen, CompanionMatrixRoots) {
  // x^3 - 6x^2 + 11x - 6 = (x-1)(x-2)(x-3)
  Matrix a{{6.0, -11.0, 6.0}, {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}};
  auto eigs = eigenvalues(a);
  std::vector<double> re;
  for (const auto& l : eigs) {
    EXPECT_NEAR(l.imag(), 0.0, 1e-7);
    re.push_back(l.real());
  }
  std::sort(re.begin(), re.end());
  EXPECT_NEAR(re[0], 1.0, 1e-7);
  EXPECT_NEAR(re[1], 2.0, 1e-7);
  EXPECT_NEAR(re[2], 3.0, 1e-7);
}

TEST(Eigen, TraceAndDeterminantInvariants) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-2.0, 2.0);
    const auto eigs = eigenvalues(a);
    ASSERT_EQ(eigs.size(), n);
    std::complex<double> sum{0.0, 0.0}, prod{1.0, 0.0};
    for (const auto& l : eigs) {
      sum += l;
      prod *= l;
    }
    EXPECT_NEAR(sum.real(), a.trace(), 1e-6);
    EXPECT_NEAR(sum.imag(), 0.0, 1e-6);
    EXPECT_NEAR(prod.real(), determinant(a), 1e-5);
  }
}

TEST(Eigen, StabilityPredicates) {
  Matrix stable_dt{{0.5, 0.1}, {0.0, -0.3}};
  EXPECT_LT(spectral_radius(stable_dt), 1.0);
  Matrix stable_ct{{-1.0, 5.0}, {0.0, -0.1}};
  EXPECT_LT(spectral_abscissa(stable_ct), 0.0);
  Matrix unstable_ct{{0.1, 0.0}, {0.0, -2.0}};
  EXPECT_GT(spectral_abscissa(unstable_ct), 0.0);
}

}  // namespace
}  // namespace ecsim::math
