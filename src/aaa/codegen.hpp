// Generation of distributed real-time executives from a schedule — the
// final stage of the AAA flow ("automatically generate the corresponding
// code", §1). For each processor: the statically ordered sequence of
// compute / send / receive instructions; for each medium: the ordered
// sequence of transfers. The synchronization structure (which instruction
// waits on which) is explicit, so the executive VM can run it and the
// deadlock-freedom claim can be checked rather than assumed.
#pragma once

#include <string>
#include <vector>

#include "aaa/schedule.hpp"

namespace ecsim::aaa {

enum class InstrKind {
  kCompute,  // run an operation (sensors wait for the period tick first)
  kSend,     // make data available to a medium transfer (signal semaphore)
  kRecv,     // wait for a medium transfer to complete (wait semaphore)
};

struct Instr {
  InstrKind kind = InstrKind::kCompute;
  OpId op = kNone;             // kCompute: which operation
  std::size_t comm = kNone;    // kSend/kRecv: index into Schedule::comms()
  std::string label;
};

/// Statically ordered program for one processor.
struct ExecutiveProgram {
  ProcId proc = 0;
  std::vector<Instr> instrs;
};

/// The communicator sequence of one medium: transfer i waits for its
/// sender-side kSend, then occupies the medium, then releases the
/// receiver-side kRecv.
struct CommunicatorProgram {
  MediumId medium = 0;
  std::vector<std::size_t> comms;  // indices into Schedule::comms(), in order
};

struct GeneratedCode {
  std::vector<ExecutiveProgram> programs;        // one per processor
  std::vector<CommunicatorProgram> communicators;  // one per medium
  std::string source;  // C-like rendering of the executives
};

/// Generate executives from a validated schedule.
GeneratedCode generate_executives(const AlgorithmGraph& alg,
                                  const ArchitectureGraph& arch,
                                  const Schedule& sched);

}  // namespace ecsim::aaa
