#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace ecsim::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  q.push(2.0, 0, 0);
  q.push(1.0, 1, 0);
  q.push(3.0, 2, 0);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  EXPECT_EQ(q.pop().block, 1u);
  EXPECT_EQ(q.pop().block, 0u);
  EXPECT_EQ(q.pop().block, 2u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoAmongSimultaneous) {
  EventQueue q;
  for (std::size_t i = 0; i < 10; ++i) q.push(1.0, i, 0);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(q.pop().block, i);
  }
}

TEST(EventQueue, InterleavedPushPopKeepsFifo) {
  EventQueue q;
  q.push(1.0, 0, 0);
  q.push(1.0, 1, 0);
  EXPECT_EQ(q.pop().block, 0u);
  q.push(1.0, 2, 0);  // arrives later -> processed after block 1
  EXPECT_EQ(q.pop().block, 1u);
  EXPECT_EQ(q.pop().block, 2u);
}

TEST(EventQueue, EmptyAccessThrows) {
  EventQueue q;
  EXPECT_THROW(q.next_time(), std::logic_error);
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueue, ClearResets) {
  EventQueue q;
  q.push(1.0, 0, 0);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CarriesEventPort) {
  EventQueue q;
  q.push(1.0, 4, 7);
  const ScheduledEvent e = q.pop();
  EXPECT_EQ(e.block, 4u);
  EXPECT_EQ(e.event_in, 7u);
  EXPECT_DOUBLE_EQ(e.time, 1.0);
}

}  // namespace
}  // namespace ecsim::sim
