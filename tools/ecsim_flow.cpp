// ecsim_flow — command-line driver for the AAA flow on text specs:
//
//   ecsim_flow schedule  spec.txt   static schedule + makespan/utilization
//   ecsim_flow codegen   spec.txt   generated distributed executives (C-like)
//   ecsim_flow simulate  spec.txt   executive VM run: latencies + conformance
//   ecsim_flow validate  spec.txt   exit 0 iff schedulable within the period
//   ecsim_flow dot-alg   spec.txt   Graphviz DOT of the algorithm graph
//   ecsim_flow dot-arch  spec.txt   Graphviz DOT of the architecture
//   ecsim_flow dot-gantt spec.txt   Graphviz DOT of the schedule
//
// Parallel design-space exploration (src/par, DESIGN.md §3.3):
//   ecsim_flow sweep timing|arch    latency×jitter (or bus×WCET) grid over
//                                   the standard DC-servo loop, evaluated on
//                                   the work-stealing pool; prints a
//                                   control-cost heatmap. Results are
//                                   bit-identical for any --threads.
//   ecsim_flow sweep network        bus-load × scenario (CAN | TDMA) grid:
//                                   each cell measures the actuation-latency
//                                   distribution the arbitrated bus delivers,
//                                   retunes the LQR against it and reports
//                                   the stability margin of the delay-aware
//                                   design (EXP-N1). Bit-identical for any
//                                   --threads and via --connect.
//   ecsim_flow montecarlo spec.txt  Monte Carlo execution-time trials of the
//                                   spec's schedule on the executive VM:
//                                   per-operation latency/jitter
//                                   distributions across decorrelated
//                                   random-execution-time draws.
//
// Robustness evaluation (src/fault, DESIGN.md §3.5):
//   ecsim_flow fault sweep          loss-rate × delivery-delay grid over the
//                                   standard DC-servo loop with deterministic
//                                   fault injection; prints a control-cost
//                                   heatmap plus loss accounting. Same seed
//                                   => bit-identical for any --threads.
//   ecsim_flow fault montecarlo     dropout study: --trials runs at
//                                   --loss=RATE, each trial re-seeding the
//                                   fault stream; prints the cost/IAE
//                                   distribution.
// Extra flags: --threads=N (0 = hardware), sweep/fault: --csv-out=FILE,
// montecarlo: --trials=N --iterations=N --seed=N, fault: --loss=RATE.
//
// Observability flags (any command, order-free after the spec):
//   --trace-out=FILE    Chrome trace-event / Perfetto JSON: the adequation
//                       schedule as a proc/medium Gantt, executive-VM runs
//                       (simulate: "wcet/..." and "actual/..." tracks), and
//                       the wall-clock runtime spans of the flow itself.
//                       Load via https://ui.perfetto.dev or chrome://tracing.
//   --metrics-out=FILE  obs::MetricsRegistry snapshot; .csv extension
//                       selects CSV, anything else JSON.
//
// Model IR + execution backend (src/ir, src/backend, DESIGN.md §3.6):
//   ecsim_flow ir dump --example=servo     canonical IR text of a built-in
//                                          example model (servo|chains200) —
//                                          the committed tests/ir/*.ir goldens
//                                          are regenerated from this output.
//   ecsim_flow ir hash --example=servo     its 64-bit FNV-1a hash (0x....),
//                                          the key benches stamp into
//                                          BENCH_*.json.
//   --backend=interp|native (sweep/fault)  execute the co-simulated loops
//                                          through the chosen backend; native
//                                          falls back to the interpreter with
//                                          a recorded reason when ineligible
//                                          (printed, with the model IR hash,
//                                          after the run).
//
// Run ledger (src/obs/ledger.hpp, DESIGN.md §3.7). Every backend::run
// appends one JSONL record to the file named by ECSIM_LEDGER (in-memory
// only when unset):
//   ecsim_flow ledger show                 print the records of a ledger file
//                                          (--ledger=FILE, default
//                                          $ECSIM_LEDGER).
//   ecsim_flow ledger diff                 compare the newest record whose IR
//                                          hash matches the committed
//                                          --bench=FILE (default
//                                          BENCH_p6.json) --scenario=NAME
//                                          (default chains_200) figure; exits
//                                          1 when events/s dropped more than
//                                          --threshold=PCT (default 10)
//                                          below it, 2 when nothing compares.
//
// The spec format is documented in src/io/spec.hpp; see
// examples/specs/*.spec for ready-to-run inputs.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "aaa/adequation.hpp"
#include "backend/kind.hpp"
#include "blocks/examples.hpp"
#include "ir/ir.hpp"
#include "sim/build_ir.hpp"
#include "aaa/codegen.hpp"
#include "exec/conformance.hpp"
#include "io/dot.hpp"
#include "io/spec.hpp"
#include "latency/latency.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_json.hpp"
#include "obs/tracer.hpp"
#include "par/fault_sweep.hpp"
#include "par/monte_carlo.hpp"
#include "par/network_sweep.hpp"
#include "par/sweep.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "translate/schedule_export.hpp"

using namespace ecsim;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: ecsim_flow <schedule|codegen|simulate|validate|"
               "dot-alg|dot-arch|dot-gantt> <spec-file>\n"
               "                  [--trace-out=FILE] [--metrics-out=FILE]\n"
               "       ecsim_flow sweep <timing|arch|network> [--threads=N] "
               "[--csv-out=FILE] [--backend=interp|native] "
               "[--connect=SOCKET]\n"
               "       ecsim_flow montecarlo <spec-file> [--threads=N] "
               "[--trials=N] [--iterations=N] [--seed=N] [--batch=W] "
               "[--connect=SOCKET]\n"
               "       ecsim_flow fault <sweep|montecarlo> [--threads=N] "
               "[--csv-out=FILE] [--loss=RATE] [--trials=N] [--seed=N] "
               "[--batch=W] [--backend=interp|native] [--connect=SOCKET]\n"
               "       ecsim_flow serve --socket=PATH [--workers=N] "
               "[--cache-mb=M] [--ledger=FILE] [--verbose]\n"
               "       ecsim_flow ir <dump|hash> [--example=servo|chains200]\n"
               "       ecsim_flow ledger <show|diff> [--ledger=FILE] "
               "[--bench=FILE] [--scenario=NAME] [--threshold=PCT] "
               "[--cache]\n");
  return 2;
}

struct Flow {
  io::ParsedSpec spec;
  aaa::Schedule sched{0, 0};
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  Flow(const std::string& path, obs::Tracer* tr, obs::MetricsRegistry* mx)
      : spec(io::load_spec(path)), tracer(tr), metrics(mx) {
    if (!spec.has_algorithm) {
      throw std::runtime_error("spec has no [algorithm] section");
    }
    if (!spec.has_architecture) {
      throw std::runtime_error("spec has no [architecture] section");
    }
    aaa::AdequationOptions opts;
    opts.tracer = tracer;
    opts.metrics = metrics;
    sched = aaa::adequate(spec.algorithm, spec.architecture, opts);
    sched.validate(spec.algorithm, spec.architecture);
  }
};

int cmd_schedule(const Flow& f) {
  std::printf("%s", f.sched.to_string(f.spec.algorithm, f.spec.architecture)
                        .c_str());
  const double period = f.spec.algorithm.period();
  if (period > 0.0) {
    std::printf("period %.6g, utilization %.1f%%%s\n", period,
                100.0 * f.sched.makespan() / period,
                f.sched.makespan() > period ? "  ** OVER PERIOD **" : "");
  }
  return 0;
}

int cmd_codegen(const Flow& f) {
  const aaa::GeneratedCode code =
      aaa::generate_executives(f.spec.algorithm, f.spec.architecture, f.sched);
  std::printf("%s", code.source.c_str());
  return 0;
}

int cmd_simulate(const Flow& f) {
  const aaa::GeneratedCode code =
      aaa::generate_executives(f.spec.algorithm, f.spec.architecture, f.sched);
  const double period = f.spec.algorithm.period() > 0.0
                            ? f.spec.algorithm.period()
                            : f.sched.makespan();
  exec::VmOptions opts;
  opts.iterations = 50;
  opts.period = period;
  opts.branch_chooser = exec::worst_case_branch_chooser();
  opts.tracer = f.tracer;
  opts.metrics = f.metrics;
  opts.track_prefix = "wcet/";
  const exec::VmResult wcet_run = exec::run_executives(
      f.spec.algorithm, f.spec.architecture, f.sched, code, opts);
  const exec::ConformanceReport conf = exec::check_wcet_conformance(
      f.spec.algorithm, f.spec.architecture, f.sched, wcet_run, period);
  std::printf("WCET run: deadlock=%s conformance=%s (max error %.2e)\n",
              wcet_run.deadlock ? "YES" : "no", conf.ok ? "exact" : "VIOLATED",
              conf.max_time_error);

  exec::VmOptions rnd = opts;
  rnd.exec_time = exec::uniform_fraction_exec_time(0.5);
  rnd.branch_chooser = exec::uniform_branch_chooser();
  rnd.track_prefix = "actual/";
  const exec::VmResult rnd_run = exec::run_executives(
      f.spec.algorithm, f.spec.architecture, f.sched, code, rnd);
  std::printf("random-times run: deadlock=%s, order preserved=%s\n",
              rnd_run.deadlock ? "YES" : "no",
              exec::check_order_preservation(f.spec.algorithm,
                                             f.spec.architecture, f.sched,
                                             rnd_run)
                      .ok
                  ? "yes"
                  : "NO");
  for (aaa::OpId op = 0; op < f.spec.algorithm.num_operations(); ++op) {
    const aaa::Operation& o = f.spec.algorithm.op(op);
    if (o.kind == aaa::OpKind::kCompute) continue;
    const auto series = latency::analyze_instants(
        o.name, rnd_run.completions(op), period);
    std::printf("%-12s %s latency: mean=%.6f max=%.6f jitter=%.6f\n",
                o.name.c_str(),
                o.kind == aaa::OpKind::kSensor ? "sampling " : "actuation",
                series.summary.mean, series.summary.max, series.jitter);
  }
  return 0;
}

int cmd_validate(const Flow& f) {
  const double period = f.spec.algorithm.period();
  if (period > 0.0 && f.sched.makespan() > period) {
    std::printf("INVALID: makespan %.6g exceeds period %.6g\n",
                f.sched.makespan(), period);
    return 1;
  }
  std::printf("OK: makespan %.6g within period %.6g\n", f.sched.makespan(),
              period);
  return 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool write_file(const std::string& path, const std::string& doc) {
  std::FILE* fp = std::fopen(path.c_str(), "w");
  if (fp == nullptr) return false;
  std::fputs(doc.c_str(), fp);
  std::fclose(fp);
  return true;
}

/// `ir dump|hash`: the canonical IR of a built-in example model — the
/// anchor for the committed golden files and for hash provenance in bench
/// reports (same bytes, same hash, in any build of any PR).
int cmd_ir(const std::string& sub, const std::string& example) {
  ir::Model irm;
  if (example == "servo") {
    sim::Model m = blocks::examples::make_servo();
    irm = sim::build_ir(m, "servo");
  } else if (example == "chains200") {
    sim::Model m = blocks::examples::make_chains(200);
    irm = sim::build_ir(m, "chains_200");
  } else {
    std::fprintf(stderr,
                 "ecsim_flow: unknown --example '%s' (servo|chains200)\n",
                 example.c_str());
    return 2;
  }
  if (sub == "dump") {
    std::printf("%s", ir::serialize(irm).c_str());
  } else if (sub == "hash") {
    std::printf("%s\n", ir::hash_hex(irm).c_str());
  } else {
    return usage();
  }
  return 0;
}

/// `ledger show|diff` (DESIGN.md §3.7). The ledger file comes from
/// --ledger=FILE, falling back to $ECSIM_LEDGER.
int cmd_ledger(const std::string& sub, std::string ledger_path,
               const std::string& bench_path, const std::string& scenario,
               double threshold_pct, bool show_cache) {
  if (ledger_path.empty()) {
    const char* env = std::getenv("ECSIM_LEDGER");
    if (env != nullptr) ledger_path = env;
  }
  if (ledger_path.empty()) {
    std::fprintf(stderr,
                 "ecsim_flow ledger: no ledger file (pass --ledger=FILE or "
                 "set ECSIM_LEDGER)\n");
    return 2;
  }
  const std::vector<obs::LedgerRecord> records =
      obs::read_ledger_file(ledger_path);
  if (sub == "show") {
    std::printf("%-16s %-18s %-7s %-22s %8s %12s %14s%s\n", "model",
                "ir_hash", "backend", "fallback", "threads", "events",
                "events/s", show_cache ? "  cache" : "");
    for (const obs::LedgerRecord& r : records) {
      const std::string backend = r.backend_used == r.backend_requested
                                      ? r.backend_used
                                      : r.backend_requested + ">" +
                                            r.backend_used;
      std::string fallback = r.fallback_reason.substr(
          0, r.fallback_reason.find(':'));
      if (fallback.empty()) fallback = "-";
      std::printf("%-16s %-18s %-7s %-22s %8u %12llu %14.6g",
                  (r.model.empty() ? "-" : r.model).c_str(),
                  (r.ir_hash.empty() ? "-" : r.ir_hash).c_str(),
                  backend.c_str(), fallback.c_str(), r.threads,
                  static_cast<unsigned long long>(r.events), r.events_per_s);
      if (show_cache) {
        // Schema v3 column; pre-v3 lines and non-service runs are untagged.
        std::printf("  %s", r.served_from_cache < 0
                                ? "-"
                                : (r.served_from_cache > 0 ? "hit" : "miss"));
      }
      std::printf("\n");
    }
    if (show_cache) {
      const obs::CacheSummary s = obs::summarize_cache(records);
      std::printf("cache: %zu served / %zu computed (hit rate %.1f%%), "
                  "%zu untagged\n",
                  s.served, s.computed, 100.0 * s.hit_rate(), s.untagged);
    }
    std::printf("%zu record(s) in %s\n", records.size(), ledger_path.c_str());
    return 0;
  }
  if (sub == "diff") {
    std::ifstream in(bench_path);
    if (!in) {
      std::fprintf(stderr, "ecsim_flow ledger diff: cannot read %s\n",
                   bench_path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const obs::LedgerDiff d = obs::diff_latest_against_bench(
        records, ss.str(), scenario, threshold_pct);
    std::printf("%s\n", d.message.c_str());
    if (!d.comparable) return 2;
    return d.regression ? 1 : 0;
  }
  return usage();
}

/// Post-run telemetry shared by the sweep-style commands: per-cell progress
/// and latency quantiles from the shared registry, and — when the native
/// backend was requested — how the backend request resolved (used backend,
/// fallback reason, model IR hash), read from the most recent ledger record.
void print_sweep_telemetry(obs::MetricsRegistry& reg, backend::Kind bk) {
  obs::Histogram& wall = reg.histogram("sweep.cell_wall_us");
  if (wall.count() > 0) {
    std::printf("cell wall time: p50=%.3gms p99=%.3gms (n=%llu)\n",
                wall.quantile(0.5) / 1e3, wall.quantile(0.99) / 1e3,
                static_cast<unsigned long long>(wall.count()));
  }
  if (bk == backend::Kind::kNative) {
    const std::vector<obs::LedgerRecord> recs =
        obs::Ledger::global().records();
    if (!recs.empty()) {
      const obs::LedgerRecord& r = recs.back();
      std::printf("backend: requested=%s used=%s ir_hash=%s\n",
                  r.backend_requested.c_str(), r.backend_used.c_str(),
                  (r.ir_hash.empty() ? "-" : r.ir_hash).c_str());
      if (!r.fallback_reason.empty()) {
        std::printf("backend fallback: %s\n", r.fallback_reason.c_str());
      }
    }
  }
}

/// Report how a --connect request resolved; a fallback prints the recorded
/// reason so scripted runs can tell daemon-served from in-process results.
void print_daemon_meta(const svc::ResponseMeta& meta) {
  std::printf("daemon: %zu/%zu units from cache%s, model %s%s\n",
              meta.cache_hits, meta.cache_units,
              meta.served_from_cache ? " (fully served)" : "",
              meta.model_hash.c_str(),
              meta.redispatches > 0 ? " [worker re-dispatch]" : "");
}

/// `sweep network`: the EXP-N1 stability-vs-bus-load frontier — CAN and TDMA
/// scenario columns over background-load rows, each cell retuning the LQR
/// against the latency distribution the simulated bus actually delivered.
int cmd_sweep_network(std::size_t threads, const std::string& csv_out,
                      backend::Kind bk, const std::string& connect) {
  const sweep::NetworkGrid grid = sweep::network_servo_grid();
  const std::vector<double>& rows = grid.bus_loads;
  std::vector<double> cols;
  for (const sweep::NetworkScenario s : grid.scenarios) {
    cols.push_back(sweep::scenario_code(s));
  }
  obs::MetricsRegistry reg;
  par::BatchOptions batch;
  batch.threads = threads;
  batch.metrics = &reg;
  std::vector<sweep::NetworkCell> cells;
  bool remote = false;
  svc::ResponseMeta meta;
  if (!connect.empty()) {
    svc::Client client;
    svc::Request req;
    req.verb = svc::Verb::kSweepNetwork;
    req.backend = std::string(backend::to_string(bk));
    req.rows = rows;
    req.cols = cols;
    remote = client.connect(connect) &&
             svc::remote_network_sweep(client, req, cells, meta);
    if (!remote) {
      std::fprintf(stderr, "svc: falling back in-process: %s\n",
                   client.last_error().c_str());
    }
  }
  if (!remote) {
    sweep::NetworkGrid run = grid;
    run.loop.backend = bk;
    cells = sweep::run_network_sweep(run, batch);
  }
  const std::string margin_map = sweep::heatmap(
      cells, rows, cols, "bus load", "scenario",
      &sweep::NetworkCell::stability_margin,
      "delay-aware stability margin (1 - spectral radius)");
  const std::string iae_map = sweep::heatmap(
      cells, rows, cols, "bus load", "scenario",
      &sweep::NetworkCell::retuned_iae, "retuned IAE");
  if (remote) {
    std::printf("%zu cells via daemon %s\n", cells.size(), connect.c_str());
  } else {
    std::printf("%zu cells on %zu worker(s)\n", cells.size(),
                par::BatchRunner(batch).threads());
  }
  std::printf("columns: 0 = can (priority arbitration), 1 = tdma (owner "
              "slots)\n%s%s",
              margin_map.c_str(), iae_map.c_str());
  if (remote) {
    print_daemon_meta(meta);
  } else {
    print_sweep_telemetry(reg, bk);
  }
  if (!csv_out.empty()) {
    if (!write_file(csv_out, sweep::to_csv(cells))) {
      std::fprintf(stderr, "ecsim_flow: cannot write %s\n", csv_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "csv: %s\n", csv_out.c_str());
  }
  return 0;
}

int cmd_sweep(const std::string& kind, std::size_t threads,
              const std::string& csv_out, backend::Kind bk,
              const std::string& connect) {
  if (kind == "network") {
    return cmd_sweep_network(threads, csv_out, bk, connect);
  }
  const bool timing = kind == "timing";
  if (!timing && kind != "arch") return usage();
  // The CLI's canonical grids — the daemon caches cells of exactly these
  // coordinates, so repeat invocations are fully served from cache.
  const std::vector<double> rows =
      timing ? std::vector<double>{0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95}
             : std::vector<double>{1e5, 1e4, 4e3, 2e3, 1e3};
  const std::vector<double> cols =
      timing ? std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.5}
             : std::vector<double>{0.5, 1.0, 2.0, 4.0};
  obs::MetricsRegistry reg;
  par::BatchOptions batch;
  batch.threads = threads;
  batch.metrics = &reg;
  const sweep::SweepRunner runner(batch);
  std::vector<sweep::SweepCell> cells;
  bool remote = false;
  svc::ResponseMeta meta;
  if (!connect.empty()) {
    svc::Client client;
    svc::Request req;
    req.verb = timing ? svc::Verb::kSweepTiming : svc::Verb::kSweepArch;
    req.backend = std::string(backend::to_string(bk));
    req.rows = rows;
    req.cols = cols;
    remote = client.connect(connect) &&
             svc::remote_sweep(client, req, cells, meta);
    if (!remote) {
      std::fprintf(stderr, "svc: falling back in-process: %s\n",
                   client.last_error().c_str());
    }
  }
  if (!remote) {
    if (timing) {
      sweep::TimingGrid grid;
      grid.loop = sweep::servo_loop();
      grid.loop.backend = bk;
      grid.latency_fracs = rows;
      grid.jitter_fracs = cols;
      cells = runner.run(grid);
    } else {
      sweep::ArchitectureGrid grid;
      grid.loop = sweep::servo_loop();
      grid.loop.backend = bk;
      grid.bus_bandwidths = rows;
      grid.wcet_scales = cols;
      grid.dist.bind_ctrl = "P1";  // controller across the bus
      cells = runner.run(grid);
    }
  }
  const std::string map =
      timing ? sweep::heatmap(cells, rows, cols, "La/Ts", "jitter/Ts",
                              &sweep::SweepCell::cost,
                              "control cost (time-averaged quadratic)")
             : sweep::heatmap(cells, rows, cols, "bus bw", "WCET scale",
                              &sweep::SweepCell::cost,
                              "control cost (time-averaged quadratic)");
  if (remote) {
    std::printf("%zu cells via daemon %s\n%s", cells.size(), connect.c_str(),
                map.c_str());
    print_daemon_meta(meta);
  } else {
    std::printf("%zu cells on %zu worker(s)\n%s", cells.size(),
                runner.threads(), map.c_str());
    print_sweep_telemetry(reg, bk);
  }
  if (!csv_out.empty()) {
    if (!write_file(csv_out, sweep::to_csv(cells))) {
      std::fprintf(stderr, "ecsim_flow: cannot write %s\n", csv_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "csv: %s\n", csv_out.c_str());
  }
  return 0;
}

int cmd_fault(const std::string& kind, std::size_t threads,
              const std::string& csv_out, double loss, std::size_t trials,
              std::uint64_t seed, std::size_t batch_width, backend::Kind bk,
              const std::string& connect) {
  obs::MetricsRegistry reg;
  par::BatchOptions batch;
  batch.threads = threads;
  batch.metrics = &reg;
  if (kind == "sweep") {
    const std::vector<double> loss_rates = {0.0, 0.05, 0.1, 0.2, 0.4};
    const std::vector<double> delays = {0.0, 0.001, 0.002, 0.004};
    std::vector<sweep::FaultCell> cells;
    bool remote = false;
    svc::ResponseMeta meta;
    if (!connect.empty()) {
      svc::Client client;
      svc::Request req;
      req.verb = svc::Verb::kFaultSweep;
      req.backend = std::string(backend::to_string(bk));
      req.rows = loss_rates;
      req.cols = delays;
      req.seed = seed;
      remote = client.connect(connect) &&
               svc::remote_fault_sweep(client, req, cells, meta);
      if (!remote) {
        std::fprintf(stderr, "svc: falling back in-process: %s\n",
                     client.last_error().c_str());
      }
    }
    if (!remote) {
      sweep::FaultGrid grid;
      grid.loop = sweep::servo_loop();
      grid.loop.backend = bk;
      grid.dist.bind_ctrl = "P1";  // controller across the bus: real traffic
      grid.loss_rates = loss_rates;
      grid.delays = delays;
      grid.fault_seed = seed;
      cells = sweep::run_fault_sweep(grid, batch);
    }
    const std::string map = sweep::heatmap(
        cells, loss_rates, delays, "loss rate", "delay (s)",
        &sweep::FaultCell::cost, "control cost under message faults");
    std::size_t lost = 0, deferred = 0;
    for (const sweep::FaultCell& c : cells) {
      lost += c.messages_lost;
      deferred += c.messages_deferred;
    }
    std::printf("%zu cells (seed %llu)\n%s%zu frames lost, %zu deferred "
                "across the grid\n",
                cells.size(), static_cast<unsigned long long>(seed),
                map.c_str(), lost, deferred);
    if (remote) {
      print_daemon_meta(meta);
    } else {
      print_sweep_telemetry(reg, bk);
    }
    if (!csv_out.empty()) {
      if (!write_file(csv_out, sweep::to_csv(cells))) {
        std::fprintf(stderr, "ecsim_flow: cannot write %s\n", csv_out.c_str());
        return 1;
      }
      std::fprintf(stderr, "csv: %s\n", csv_out.c_str());
    }
    return 0;
  }
  if (kind == "montecarlo") {
    sweep::FaultMonteCarloResult result;
    bool remote = false;
    svc::ResponseMeta meta;
    if (!connect.empty()) {
      svc::Client client;
      svc::Request req;
      req.verb = svc::Verb::kFaultMc;
      req.backend = std::string(backend::to_string(bk));
      req.loss = loss;
      req.trials = trials;
      req.seed = seed;
      remote = client.connect(connect) &&
               svc::remote_fault_mc(client, req, result, meta);
      if (!remote) {
        std::fprintf(stderr, "svc: falling back in-process: %s\n",
                     client.last_error().c_str());
      }
    }
    if (!remote) {
      sweep::FaultMonteCarloSpec spec;
      spec.loop = sweep::servo_loop();
      spec.loop.backend = bk;
      spec.dist.bind_ctrl = "P1";
      spec.loss_rate = loss;
      spec.trials = trials;
      spec.base_seed = seed;
      spec.batch_width = batch_width;  // 0 = auto (SIMD-preferred width)
      result = sweep::run_fault_monte_carlo(spec, batch);
    }
    std::printf("%s", sweep::to_string(result).c_str());
    if (remote) {
      print_daemon_meta(meta);
    } else {
      std::printf("batch width %zu, 0 evictions, %.4g trials/s (%.3g s)\n",
                  result.batch_width, result.trials_per_s, result.wall_s);
      print_sweep_telemetry(reg, bk);
    }
    if (!csv_out.empty()) {
      if (!write_file(csv_out, sweep::to_csv(result.cells))) {
        std::fprintf(stderr, "ecsim_flow: cannot write %s\n", csv_out.c_str());
        return 1;
      }
      std::fprintf(stderr, "csv: %s\n", csv_out.c_str());
    }
    return 0;
  }
  return usage();
}

/// VM Monte Carlo through the daemon. Returns the exit code, or -1 when the
/// daemon could not serve (the caller falls back to the in-process Flow
/// path, which re-reads and re-adequates the spec itself).
int try_remote_montecarlo(const std::string& spec_path,
                          const std::string& connect, std::size_t trials,
                          std::size_t iterations, std::uint64_t seed) {
  std::ifstream in(spec_path);
  if (!in) return -1;
  std::ostringstream ss;
  ss << in.rdbuf();
  svc::Client client;
  svc::Request req;
  req.verb = svc::Verb::kVmMc;
  req.trials = trials;
  req.iterations = iterations;
  req.seed = seed;
  req.spec_text = ss.str();
  sweep::MonteCarloResult result;
  svc::ResponseMeta meta;
  if (!client.connect(connect) ||
      !svc::remote_vm_mc(client, req, result, meta)) {
    std::fprintf(stderr, "svc: falling back in-process: %s\n",
                 client.last_error().c_str());
    return -1;
  }
  std::printf("%s", sweep::to_string(result).c_str());
  print_daemon_meta(meta);
  return result.deadlocks == 0 ? 0 : 1;
}

int cmd_montecarlo(const Flow& f, std::size_t threads, std::size_t trials,
                   std::size_t iterations, std::uint64_t seed,
                   std::size_t batch_width) {
  const aaa::GeneratedCode code =
      aaa::generate_executives(f.spec.algorithm, f.spec.architecture, f.sched);
  sweep::MonteCarloSpec spec;
  spec.trials = trials;
  spec.iterations = iterations;
  spec.batch_width = batch_width;  // 0 = auto (SIMD-preferred width)
  par::BatchOptions batch;
  batch.threads = threads;
  batch.seed = seed;
  batch.tracer = f.tracer;
  batch.metrics = f.metrics;
  const sweep::MonteCarloResult result = sweep::run_monte_carlo(
      f.spec.algorithm, f.spec.architecture, f.sched, code, spec, batch);
  std::printf("%s", sweep::to_string(result).c_str());
  // VM trials execute on the scalar executive, so no lane is ever evicted;
  // the count is printed for parity with the simulator-level batched MC.
  std::printf("batch width %zu, 0 evictions, %.4g trials/s (%.3g s)\n",
              result.batch_width, result.trials_per_s, result.wall_s);
  return result.deadlocks == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string spec_path = argv[2];
  if (command == "serve") {
    svc::ServeOptions sopts;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--socket=", 0) == 0) {
        sopts.socket_path = arg.substr(9);
      } else if (arg.rfind("--workers=", 0) == 0) {
        sopts.workers = std::stoul(arg.substr(10));
      } else if (arg.rfind("--cache-mb=", 0) == 0) {
        sopts.cache_mb = std::stoul(arg.substr(11));
      } else if (arg.rfind("--ledger=", 0) == 0) {
        sopts.ledger_path = arg.substr(9);
      } else if (arg == "--verbose") {
        sopts.verbose = true;
      } else {
        return usage();
      }
    }
    try {
      return svc::run_server(sopts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ecsim_flow serve: %s\n", e.what());
      return 1;
    }
  }
  std::string trace_out, metrics_out, csv_out, connect;
  std::string example = "servo";
  std::string ledger_file, bench_file = "BENCH_p6.json";
  std::string scenario = "chains_200";
  bool show_cache = false;
  double threshold_pct = 10.0;
  backend::Kind bk = backend::Kind::kInterp;
  std::size_t threads = 0, trials = 200, iterations = 50;
  std::size_t batch_width = 0;  // trials per task; 0 = auto (SIMD width)
  std::uint64_t seed = 1;
  double loss = 0.1;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(12);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(14);
    } else if (arg.rfind("--csv-out=", 0) == 0) {
      csv_out = arg.substr(10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::stoul(arg.substr(10));
    } else if (arg.rfind("--trials=", 0) == 0) {
      trials = std::stoul(arg.substr(9));
    } else if (arg.rfind("--batch=", 0) == 0) {
      batch_width = std::stoul(arg.substr(8));
    } else if (arg.rfind("--iterations=", 0) == 0) {
      iterations = std::stoul(arg.substr(13));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--loss=", 0) == 0) {
      loss = std::stod(arg.substr(7));
    } else if (arg.rfind("--example=", 0) == 0) {
      example = arg.substr(10);
    } else if (arg.rfind("--ledger=", 0) == 0) {
      ledger_file = arg.substr(9);
    } else if (arg.rfind("--bench=", 0) == 0) {
      bench_file = arg.substr(8);
    } else if (arg.rfind("--scenario=", 0) == 0) {
      scenario = arg.substr(11);
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold_pct = std::stod(arg.substr(12));
    } else if (arg.rfind("--connect=", 0) == 0) {
      connect = arg.substr(10);
    } else if (arg == "--cache") {
      show_cache = true;
    } else if (arg.rfind("--backend=", 0) == 0) {
      try {
        bk = backend::parse_kind(arg.substr(10));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "ecsim_flow: %s\n", e.what());
        return 2;
      }
    } else {
      return usage();
    }
  }

  if (command == "ir") {
    try {
      return cmd_ir(spec_path, example);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ecsim_flow: %s\n", e.what());
      return 1;
    }
  }
  if (command == "ledger") {
    try {
      return cmd_ledger(spec_path, ledger_file, bench_file, scenario,
                        threshold_pct, show_cache);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ecsim_flow: %s\n", e.what());
      return 1;
    }
  }
  if (command == "sweep") {
    try {
      return cmd_sweep(spec_path, threads, csv_out, bk, connect);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ecsim_flow: %s\n", e.what());
      return 1;
    }
  }
  if (command == "fault") {
    try {
      // A full co-simulation per trial: default to 32 trials, not the VM
      // Monte Carlo's 200, unless the user asked explicitly.
      return cmd_fault(spec_path, threads, csv_out, loss,
                       trials == 200 ? 32 : trials, seed, batch_width, bk,
                       connect);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ecsim_flow: %s\n", e.what());
      return 1;
    }
  }

  if (command == "montecarlo" && !connect.empty()) {
    const int rc =
        try_remote_montecarlo(spec_path, connect, trials, iterations, seed);
    if (rc >= 0) return rc;
  }

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  tracer.set_enabled(!trace_out.empty());
  obs::Tracer* tr = trace_out.empty() ? nullptr : &tracer;
  obs::MetricsRegistry* mx = metrics_out.empty() ? nullptr : &metrics;

  try {
    const Flow flow(spec_path, tr, mx);
    int rc;
    if (command == "schedule") {
      rc = cmd_schedule(flow);
    } else if (command == "codegen") {
      rc = cmd_codegen(flow);
    } else if (command == "simulate") {
      rc = cmd_simulate(flow);
    } else if (command == "validate") {
      rc = cmd_validate(flow);
    } else if (command == "dot-alg") {
      std::printf("%s", io::to_dot(flow.spec.algorithm).c_str());
      rc = 0;
    } else if (command == "dot-arch") {
      std::printf("%s", io::to_dot(flow.spec.architecture).c_str());
      rc = 0;
    } else if (command == "dot-gantt") {
      std::printf("%s", io::schedule_to_dot(flow.spec.algorithm,
                                            flow.spec.architecture, flow.sched)
                            .c_str());
      rc = 0;
    } else if (command == "montecarlo") {
      rc = cmd_montecarlo(flow, threads, trials, iterations, seed,
                          batch_width);
    } else {
      return usage();
    }

    if (!trace_out.empty()) {
      obs::JsonTraceWriter w;
      // The static schedule Gantt (paper Figs. 3-4) plus whatever the run
      // recorded live (adequation span, VM op/comm instances).
      w.add_slices(translate::schedule_to_timeline(
          flow.spec.algorithm, flow.spec.architecture, flow.sched));
      w.add(tracer);
      if (!w.write(trace_out)) {
        std::fprintf(stderr, "ecsim_flow: cannot write %s\n",
                     trace_out.c_str());
        return 1;
      }
      std::fprintf(stderr, "trace: %s (%zu records)\n", trace_out.c_str(),
                   w.num_events());
    }
    if (!metrics_out.empty()) {
      const std::string doc = ends_with(metrics_out, ".csv")
                                  ? metrics.to_csv()
                                  : metrics.to_json();
      std::FILE* fp = std::fopen(metrics_out.c_str(), "w");
      if (fp == nullptr) {
        std::fprintf(stderr, "ecsim_flow: cannot write %s\n",
                     metrics_out.c_str());
        return 1;
      }
      std::fputs(doc.c_str(), fp);
      std::fclose(fp);
      std::fprintf(stderr, "metrics: %s\n", metrics_out.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ecsim_flow: %s\n", e.what());
    return 1;
  }
}
