// DC servo benchmark G(s) = k / (s (tau s + 1)) — the canonical plant of
// Cervin et al., "How does control timing affect performance?" (paper ref
// [2]); default k=1000, tau=1 gives G(s) = 1000/(s(s+1)).
#pragma once

#include "control/state_space.hpp"

namespace ecsim::plants {

struct DcServoParams {
  double gain = 1000.0;
  double tau = 1.0;
};

/// States: [position, velocity]; input: armature voltage; output: position.
control::StateSpace dc_servo(const DcServoParams& p = {});

}  // namespace ecsim::plants
