// Wire protocol of the sweep service (DESIGN.md §3.9): length-prefixed
// frames over a unix-domain stream socket, each frame carrying one Fields
// message — a flat list of (key, raw-bytes) pairs with byte-counted values,
// so spec texts and binary payloads travel unescaped.
//
// Everything the daemon caches or ships is encoded BIT-EXACTLY: result-cell
// doubles travel as their 64-bit IEEE bit patterns (%016llx), never through
// a decimal round-trip, which is what lets bench_p9_service hard-check that
// a daemon-served grid is byte-identical to the serial in-process reference
// at any worker count (the determinism contract of PRs 3/5/8 makes the two
// computations identical; the codec must not be the weak link).
//
// One request verb family mirrors the in-process sweep API (par/sweep.hpp,
// par/fault_sweep.hpp, par/monte_carlo.hpp); `Request` is the canonical
// parameter set both sides build cache keys from (svc/cache_key.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "par/fault_sweep.hpp"
#include "par/monte_carlo.hpp"
#include "par/network_sweep.hpp"
#include "par/sweep.hpp"

namespace ecsim::svc {

/// Frame cap: a response carrying a few thousand cells is ~1 MB; anything
/// beyond this is a corrupted length prefix, not a real message.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 26;

// ---- framing ---------------------------------------------------------------

/// Write one frame (4-byte little-endian length + payload). False on any
/// short write / EPIPE (caller treats the peer as gone).
bool write_frame(int fd, const std::string& payload);

/// Read one frame into `out`. False on EOF, transport error or a length
/// prefix beyond kMaxFrameBytes.
bool read_frame(int fd, std::string& out);

// ---- Fields: the flat key/value message ------------------------------------

/// Ordered (key, value) list; values are raw byte strings. Serialization is
/// `key<SP><len>\n<bytes>\n` per field — no escaping, so values may contain
/// anything including newlines and NUL.
class Fields {
 public:
  void set(const std::string& key, std::string value);
  void set_u64(const std::string& key, std::uint64_t v);
  /// Bit-exact double: stored as the 64-bit pattern in hex.
  void set_bits(const std::string& key, double v);
  /// Comma-separated hexfloat list (exact for finite values — request axes).
  void set_list(const std::string& key, const std::vector<double>& vs);

  const std::string* get(const std::string& key) const;
  bool get_u64(const std::string& key, std::uint64_t& v) const;
  bool get_bits(const std::string& key, double& v) const;
  bool get_list(const std::string& key, std::vector<double>& vs) const;

  std::string serialize() const;
  static bool parse(const std::string& text, Fields& out);

  std::size_t size() const { return kv_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

// ---- bit-exact scalar/list helpers (shared with the cell codecs) -----------

std::string bits_of(double v);              // "%016llx" of the IEEE pattern
bool double_of(const std::string& s, double& v);
std::string hexfloat(double v);             // "%a" — canonical request-param form

/// FNV-1a over bytes — the same construction ir::hash and fault::hash use.
std::uint64_t fnv1a(const std::string& bytes);

// ---- requests --------------------------------------------------------------

enum class Verb {
  kSweepTiming,   ///< latency×jitter grid cells on the DC-servo loop
  kSweepArch,     ///< bus-bandwidth×WCET grid cells
  kSweepNetwork,  ///< bus-load×scenario (CAN/TDMA) grid cells, EXP-N1
  kFaultSweep,    ///< loss×delay grid cells (deterministic fault plans)
  kFaultMc,       ///< Monte Carlo dropout trials (one unit per trial)
  kVmMc,          ///< executive-VM Monte Carlo over an uploaded spec text
  kPing,
  kStats,         ///< cache/worker counters snapshot
  kKillWorker,    ///< test aid: asks the daemon to crash one worker process
};

const char* to_string(Verb v);
bool parse_verb(const std::string& s, Verb& out);

/// Canonical request parameter set. The daemon decomposes a request into
/// independently cacheable WORK UNITS: one grid cell (sweeps), one trial
/// (fault Monte Carlo) or the whole run (VM Monte Carlo, whose statistics
/// are reduced across trials and only meaningful as a set).
struct Request {
  Verb verb = Verb::kPing;
  std::string backend = "interp";  // "interp" | "native"
  double ts = 0.01;                // servo-loop sampling period
  double t_end = 1.0;              // servo-loop horizon
  std::uint64_t seed = 1;          // loop seed / fault grid seed / MC base seed
  std::vector<double> rows, cols;  // sweep axes (row-major cell order)
  double loss = 0.1;               // kFaultMc loss rate
  std::size_t trials = 0;          // kFaultMc / kVmMc
  std::size_t iterations = 50;     // kVmMc iterations per trial
  std::string spec_text;           // kVmMc uploaded spec

  Fields to_fields() const;
  static bool from_fields(const Fields& f, Request& out, std::string& err);

  /// Number of independently cacheable work units.
  std::size_t units() const;
};

// ---- responses -------------------------------------------------------------

struct ResponseMeta {
  bool ok = false;
  std::string error;
  std::string model_hash;     // loop IR hash / "spec:0x…" content hash
  std::size_t cache_hits = 0;
  std::size_t cache_units = 0;
  bool served_from_cache = false;  // every unit came from the result cache
  std::size_t redispatches = 0;    // worker-crash recoveries in this request
};

void meta_to_fields(const ResponseMeta& m, Fields& f);
ResponseMeta meta_from_fields(const Fields& f);

// ---- payload codecs --------------------------------------------------------
// One work unit <-> one payload string. Counted blob lists pack the units of
// a request into one response field.

std::string encode_blob_list(const std::vector<std::string>& blobs);
bool decode_blob_list(const std::string& text,
                      std::vector<std::string>& blobs);

std::string encode_cell(const sweep::SweepCell& c);
bool decode_cell(const std::string& s, sweep::SweepCell& c);
std::string encode_cell(const sweep::FaultCell& c);
bool decode_cell(const std::string& s, sweep::FaultCell& c);
std::string encode_cell(const sweep::NetworkCell& c);
bool decode_cell(const std::string& s, sweep::NetworkCell& c);

/// VM Monte Carlo statistics. Wall-clock fields (wall_s, trials_per_s,
/// batch_width) are NOT encoded — a cached result is the statistics, not
/// the timing of whoever computed it first.
std::string encode_mc(const sweep::MonteCarloResult& r);
bool decode_mc(const std::string& s, sweep::MonteCarloResult& r);

}  // namespace ecsim::svc
