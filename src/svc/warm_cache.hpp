// Warm model registry of the sweep service (DESIGN.md §3.9): the expensive
// per-request setup — building the servo LoopSpec and hashing its Model IR,
// or parsing an uploaded spec, running the adequation and generating the
// executives — is done once per distinct model and kept hot across requests.
// The native-backend module cache (PR 6) already persists compiled .so
// modules on disk keyed by IR hash and memoizes dlopen handles per-process,
// so long-lived workers stay warm at that layer for free; this registry adds
// the layers above it. Entries are identity-keyed (parameters / content
// hash) and LRU-bounded at kMaxWarmEntries per kind: keys include the
// client-supplied seed and timings, so an unbounded map would grow without
// limit in the master and every worker over a long-lived daemon's life.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "aaa/codegen.hpp"
#include "io/spec.hpp"
#include "obs/metrics.hpp"
#include "translate/cosim.hpp"

namespace ecsim::svc {

/// The assembled servo loop of one (ts, t_end, seed) triple and the
/// canonical IR hash of its ideal-clocked model. `loop.backend` is left at
/// the default — callers stamp the request's backend on a copy, which does
/// not change the model IR.
struct WarmLoop {
  translate::LoopSpec loop;
  std::string ir_hash;  // ir::hash_hex(translate::loop_ir(loop))
};

/// One uploaded VM Monte Carlo spec taken through parse -> adequation ->
/// codegen, keyed by its content hash ("spec:0x…").
struct WarmSpec {
  io::ParsedSpec spec;
  aaa::Schedule sched{0, 0};
  aaa::GeneratedCode code;
  std::string content_hash;
};

/// Per-kind entry cap. A daemon serves a handful of hot models; 64 keeps
/// every realistic working set resident while bounding a hostile or
/// seed-scanning client to a fixed footprint.
constexpr std::size_t kMaxWarmEntries = 64;

/// Tiny string-keyed LRU map. Eviction happens only inside insert(), so a
/// reference obtained from find()/insert() is valid until the NEXT mutating
/// call on the same map — callers must copy out what they need before
/// touching the cache again.
template <typename V>
class LruMap {
 public:
  explicit LruMap(std::size_t cap) : cap_(cap) {}

  V* find(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    items_.splice(items_.begin(), items_, it->second);
    return &it->second->second;
  }

  V& insert(std::string key, V value) {
    if (items_.size() >= cap_) {
      index_.erase(items_.back().first);
      items_.pop_back();
    }
    items_.emplace_front(std::move(key), std::move(value));
    index_.emplace(items_.front().first, items_.begin());
    return items_.front().second;
  }

  std::size_t size() const { return items_.size(); }

 private:
  using Item = std::pair<std::string, V>;
  std::size_t cap_;
  std::list<Item> items_;  // front = most recently used
  std::unordered_map<std::string, typename std::list<Item>::iterator> index_;
};

class WarmCache {
 public:
  explicit WarmCache(obs::MetricsRegistry* metrics = nullptr);

  /// Find-or-build. The returned reference is valid until the next loop()
  /// or spec() call (LRU eviction at kMaxWarmEntries) — copy out what you
  /// need. Throws what loop assembly throws on first build.
  const WarmLoop& loop(double ts, double t_end, std::uint64_t seed);

  /// Find-or-build from spec text; same reference lifetime as loop().
  /// Throws io::SpecParseError / std::runtime_error on malformed or
  /// incomplete specs (first build only).
  const WarmSpec& spec(const std::string& spec_text);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t loop_entries() const { return loops_.size(); }
  std::size_t spec_entries() const { return specs_.size(); }

 private:
  LruMap<WarmLoop> loops_{kMaxWarmEntries};
  LruMap<WarmSpec> specs_{kMaxWarmEntries};
  std::uint64_t hits_ = 0, misses_ = 0;
  obs::Counter* hit_ctr_ = nullptr;
  obs::Counter* miss_ctr_ = nullptr;
};

}  // namespace ecsim::svc
