#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

namespace ecsim::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  q.push(2.0, 0, 0);
  q.push(1.0, 1, 0);
  q.push(3.0, 2, 0);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  EXPECT_EQ(q.pop().block, 1u);
  EXPECT_EQ(q.pop().block, 0u);
  EXPECT_EQ(q.pop().block, 2u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoAmongSimultaneous) {
  EventQueue q;
  for (std::size_t i = 0; i < 10; ++i) q.push(1.0, i, 0);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(q.pop().block, i);
  }
}

TEST(EventQueue, InterleavedPushPopKeepsFifo) {
  EventQueue q;
  q.push(1.0, 0, 0);
  q.push(1.0, 1, 0);
  EXPECT_EQ(q.pop().block, 0u);
  q.push(1.0, 2, 0);  // arrives later -> processed after block 1
  EXPECT_EQ(q.pop().block, 1u);
  EXPECT_EQ(q.pop().block, 2u);
}

TEST(EventQueue, EmptyAccessThrows) {
  EventQueue q;
  EXPECT_THROW(q.next_time(), std::logic_error);
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueue, ClearResets) {
  EventQueue q;
  q.push(1.0, 0, 0);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CarriesEventPort) {
  EventQueue q;
  q.push(1.0, 4, 7);
  const ScheduledEvent e = q.pop();
  EXPECT_EQ(e.block, 4u);
  EXPECT_EQ(e.event_in, 7u);
  EXPECT_DOUBLE_EQ(e.time, 1.0);
}

TEST(EventQueue, PopSimultaneousDrainsExactlyTheTies) {
  EventQueue q;
  q.push(1.0, 0, 0);
  q.push(2.0, 9, 0);
  q.push(1.0, 1, 0);
  q.push(1.0, 2, 0);
  std::vector<ScheduledEvent> out;
  EXPECT_EQ(q.pop_simultaneous(out), 3u);
  ASSERT_EQ(out.size(), 3u);
  // FIFO among the ties, exactly like popping one at a time.
  EXPECT_EQ(out[0].block, 0u);
  EXPECT_EQ(out[1].block, 1u);
  EXPECT_EQ(out[2].block, 2u);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  // Appends to `out` rather than clearing it.
  EXPECT_EQ(q.pop_simultaneous(out), 1u);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[3].block, 9u);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.pop_simultaneous(out), std::logic_error);
}

TEST(EventQueue, ReservePreventsSteadyStateReallocation) {
  EventQueue q;
  q.reserve(1000);
  const std::size_t cap = q.capacity();
  ASSERT_GE(cap, 1000u);
  for (std::size_t i = 0; i < 1000; ++i) q.push(static_cast<Time>(i), i, 0);
  EXPECT_EQ(q.capacity(), cap);
  q.clear();
  // clear() keeps the backing storage, so a re-run re-fills in place.
  EXPECT_EQ(q.capacity(), cap);
  for (std::size_t i = 0; i < 1000; ++i) q.push(static_cast<Time>(i), i, 0);
  EXPECT_EQ(q.capacity(), cap);
}

TEST(EventQueue, ClearOnMillionEventQueueIsNearInstant) {
  // Regression: the pre-PR-4 clear() popped elements one at a time through
  // the heap (O(n log n)) — hundreds of milliseconds at this size. The O(1)
  // clear must be orders of magnitude under the generous bound below even on
  // a loaded CI host.
  constexpr std::size_t kN = 1'000'000;
  EventQueue q;
  q.reserve(kN);
  std::uint64_t s = 0x9e3779b97f4a7c15ull;  // cheap deterministic scatter
  for (std::size_t i = 0; i < kN; ++i) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    q.push(static_cast<Time>(s % 4096), i % 64, 0);
  }
  ASSERT_EQ(q.size(), kN);
  const auto t0 = std::chrono::steady_clock::now();
  q.clear();
  const auto t1 = std::chrono::steady_clock::now();
  const double ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  EXPECT_TRUE(q.empty());
  EXPECT_LT(ms, 50.0) << "clear() took " << ms << " ms on " << kN
                      << " events — O(n log n) regression?";
  // Sequence numbers restart, so FIFO order is reproducible run-to-run.
  q.push(1.0, 42, 0);
  EXPECT_EQ(q.pop().seq, 0u);
}

TEST(EventQueue, SetImplRequiresEmptyQueue) {
  EventQueue q;
  EXPECT_EQ(q.impl(), EventQueue::Impl::kQuad);
  q.push(1.0, 0, 0);
  EXPECT_THROW(q.set_impl(EventQueue::Impl::kLegacyBinary), std::logic_error);
  q.set_impl(EventQueue::Impl::kQuad);  // no-op on the current impl is fine
  q.clear();
  q.set_impl(EventQueue::Impl::kLegacyBinary);
  EXPECT_EQ(q.impl(), EventQueue::Impl::kLegacyBinary);
}

TEST(EventQueue, LegacyBinaryModeKeepsOrderAndFifo) {
  EventQueue q;
  q.set_impl(EventQueue::Impl::kLegacyBinary);
  q.push(2.0, 0, 0);
  q.push(1.0, 1, 0);
  q.push(1.0, 2, 0);
  q.push(3.0, 3, 0);
  EXPECT_EQ(q.pop().block, 1u);
  EXPECT_EQ(q.pop().block, 2u);
  std::vector<ScheduledEvent> out;
  EXPECT_EQ(q.pop_simultaneous(out), 1u);
  EXPECT_EQ(out[0].block, 0u);
  EXPECT_EQ(q.pop().block, 3u);
}

}  // namespace
}  // namespace ecsim::sim
