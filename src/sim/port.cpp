#include "sim/port.hpp"

// Wiring types are header-only; this translation unit anchors the target.
