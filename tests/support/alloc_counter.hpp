// Test-only global heap-allocation counter backing the zero-allocation
// guard (DESIGN.md §3.4). When the build is configured with
// -DECSIM_ALLOC_GUARD=ON, the companion .cpp replaces the global operator
// new/delete with counting wrappers; without it the counters stay at zero
// and guard tests GTEST_SKIP so the tier-1 suite is unaffected.
//
// Link rule: compile alloc_counter.cpp into the *test executable* itself
// (not a library that might be dropped) so the replacement operators are
// guaranteed to win over the default ones.
#pragma once

#include <cstddef>

namespace ecsim::testing {

/// True when this binary was built with -DECSIM_ALLOC_GUARD=ON (i.e. the
/// counting operator new/delete are live).
bool alloc_guard_enabled();

/// Number of global operator new calls (all variants) since process start.
std::size_t allocation_count();
/// Number of global operator delete calls on non-null pointers.
std::size_t deallocation_count();

/// Counts allocations across a scope:
///   AllocProbe probe;
///   hot_path();
///   EXPECT_EQ(probe.allocations(), 0u);
class AllocProbe {
 public:
  AllocProbe()
      : start_allocs_(allocation_count()),
        start_frees_(deallocation_count()) {}
  std::size_t allocations() const { return allocation_count() - start_allocs_; }
  std::size_t deallocations() const {
    return deallocation_count() - start_frees_;
  }

 private:
  std::size_t start_allocs_;
  std::size_t start_frees_;
};

}  // namespace ecsim::testing
