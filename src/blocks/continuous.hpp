// Continuous-time dynamic blocks (the plant side of the co-simulation).
#pragma once

#include "mathlib/matrix.hpp"
#include "sim/block.hpp"

namespace ecsim::blocks {

using sim::Block;
using sim::Context;

/// Vector integrator: dx/dt = u, y = x.
class Integrator : public Block {
 public:
  Integrator(std::string name, std::vector<double> x0);
  Integrator(std::string name, double x0 = 0.0)
      : Integrator(std::move(name), std::vector<double>{x0}) {}

  void initialize(Context& ctx) override;
  void compute_outputs(Context& ctx) override;
  void derivatives(Context& ctx, std::span<double> dx) override;
  void describe(ir::BlockIr& out) const override;

 private:
  std::vector<double> x0_;
};

/// Continuous LTI system: dx/dt = A x + B u, y = C x + D u.
class StateSpaceCont : public Block {
 public:
  StateSpaceCont(std::string name, math::Matrix a, math::Matrix b,
                 math::Matrix c, math::Matrix d, std::vector<double> x0 = {});

  void initialize(Context& ctx) override;
  void compute_outputs(Context& ctx) override;
  void derivatives(Context& ctx, std::span<double> dx) override;
  bool input_feedthrough(std::size_t) const override { return has_feedthrough_; }
  void describe(ir::BlockIr& out) const override;

  const math::Matrix& a() const { return a_; }
  const math::Matrix& b() const { return b_; }
  const math::Matrix& c() const { return c_; }
  const math::Matrix& d() const { return d_; }

 private:
  math::Matrix a_, b_, c_, d_;
  std::vector<double> x0_;
  bool has_feedthrough_ = false;
};

/// SISO transfer function num(s)/den(s), realized in controllable canonical
/// form. deg(num) <= deg(den); den leading coefficient must be nonzero.
/// Coefficients are ordered highest power first, e.g. {1, 0, 3} = s^2 + 3.
class TransferFunction : public StateSpaceCont {
 public:
  TransferFunction(std::string name, const std::vector<double>& num,
                   const std::vector<double>& den);

 private:
  struct Canon {
    math::Matrix a, b, c, d;
  };
  static Canon realize(const std::vector<double>& num,
                       const std::vector<double>& den);
  TransferFunction(std::string name, Canon f);
};

}  // namespace ecsim::blocks
