// Property: EVERY lane of the batched SIMD Monte Carlo engine produces a
// trace bit-identical to a scalar Simulator run with the same model, seed
// and options — on random hybrid diagrams (continuous feedback, jittered
// delays, noise, multirate probes), with and without fault-plan gates, at
// several batch widths, under both integrators. This is the hard guard the
// lockstep/mask/spill machinery must never violate (DESIGN.md §3.8).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "blocks/discrete.hpp"
#include "blocks/event_blocks.hpp"
#include "blocks/probe.hpp"
#include "blocks/sources.hpp"
#include "fault/comm_gate.hpp"
#include "random_graphs.hpp"
#include "sim/simulator.hpp"
#include "simd/batched_sim.hpp"

namespace ecsim::sim {
namespace {

using Factory = BatchedSim::ModelFactory;

/// Deterministic factory: each call replays the same random diagram, which
/// is exactly the "structurally identical trials" shape Monte Carlo runs.
Factory random_model_factory(std::uint64_t model_seed) {
  return [model_seed] {
    math::Rng model_rng(model_seed);
    return std::make_unique<Model>(ecsim::testing::random_block_model(model_rng));
  };
}

/// Same diagram with a FaultPlan-style comm gate spliced in: a clocked
/// EventFault whose loss/delay decisions replay fault::comm_gate_decide —
/// pure in (plan seed, iteration), identical across lanes, on top of the
/// lane-divergent randomness of the base diagram.
Factory faulted_model_factory(std::uint64_t model_seed,
                              std::uint64_t plan_seed) {
  return [model_seed, plan_seed] {
    namespace bl = ecsim::blocks;
    math::Rng model_rng(model_seed);
    auto m = std::make_unique<Model>(
        ecsim::testing::random_block_model(model_rng));
    fault::CommGate gate;
    gate.seed = plan_seed;
    gate.period = 0.03;
    gate.comm_index = 1;
    gate.transfer_duration = 0.001;
    fault::CommGateEntry loss;
    loss.fault = 0;
    loss.kind = fault::CommGateEntry::Kind::kLoss;
    loss.probability = 0.3;
    gate.entries.push_back(loss);
    fault::CommGateEntry delay;
    delay.fault = 1;
    delay.kind = fault::CommGateEntry::Kind::kDelay;
    delay.probability = 0.25;
    delay.delay = 0.004;
    gate.entries.push_back(delay);

    auto& clk = m->add<bl::Clock>("fault_clk", 0.03);
    auto& gate_blk = m->add<bl::EventFault>("fault_gate", gate);
    auto& cnt = m->add<bl::EventCounter>("fault_cnt");
    auto& probe = m->add<bl::Probe>("fault_probe", 1, 0.05);
    m->connect_event(clk, 0, gate_blk, gate_blk.event_in());
    m->connect_event(gate_blk, gate_blk.event_out(), cnt, 0);
    m->connect(cnt, 0, probe, 0);
    return m;
  };
}

void ExpectEveryLaneMatchesScalar(const Factory& factory,
                                  const SimOptions& base, std::size_t width,
                                  std::uint64_t seed_base) {
  std::vector<std::uint64_t> seeds(width);
  for (std::size_t l = 0; l < width; ++l) seeds[l] = seed_base + 1000 * l + 7;
  BatchedSim bs(factory, BatchedOptions{base, width});
  bs.run(seeds);
  for (std::size_t l = 0; l < width; ++l) {
    std::unique_ptr<Model> m = factory();
    SimOptions so = base;
    so.seed = seeds[l];
    Simulator ref(*m, so);
    ref.run();
    EXPECT_TRUE(bs.trace(l) == ref.trace())
        << "lane " << l << " of width " << width << " diverged from scalar";
    EXPECT_EQ(bs.events_dispatched(l), ref.events_dispatched());
  }
}

TEST(SimdLaneProperty, RandomHybridDiagramsEveryLaneBitIdentical) {
  SimOptions base;
  base.end_time = 0.5;
  for (std::uint64_t model_seed = 1; model_seed <= 6; ++model_seed) {
    for (std::size_t width : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      ExpectEveryLaneMatchesScalar(random_model_factory(model_seed), base,
                                   width, model_seed * 100);
    }
  }
}

TEST(SimdLaneProperty, RandomHybridDiagramsRkf45EveryLaneBitIdentical) {
  SimOptions base;
  base.end_time = 0.4;
  base.integrator.kind = IntegratorKind::kRkf45;
  for (std::uint64_t model_seed : {7u, 8u}) {
    ExpectEveryLaneMatchesScalar(random_model_factory(model_seed), base,
                                 /*width=*/4, model_seed * 100);
  }
}

TEST(SimdLaneProperty, FaultGatedDiagramsEveryLaneBitIdentical) {
  SimOptions base;
  base.end_time = 0.5;
  for (std::uint64_t model_seed : {3u, 9u, 12u}) {
    ExpectEveryLaneMatchesScalar(
        faulted_model_factory(model_seed, /*plan_seed=*/model_seed * 31 + 5),
        base, /*width=*/4, model_seed * 100 + 13);
  }
}

TEST(SimdLaneProperty, TraceDigestsInvariantAcrossBatchWidths) {
  // A trial's digest must depend only on its seed, never on which batch
  // width (or which lane slot) it rode in.
  SimOptions base;
  base.end_time = 0.5;
  const Factory factory = random_model_factory(4);
  const std::vector<std::uint64_t> seeds{11, 22, 33, 44, 55, 66, 77, 88};

  std::vector<std::uint64_t> want;
  for (std::uint64_t s : seeds) {
    std::unique_ptr<Model> m = factory();
    SimOptions so = base;
    so.seed = s;
    Simulator ref(*m, so);
    ref.run();
    want.push_back(trace_digest(ref.trace()));
  }

  for (std::size_t width : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                            std::size_t{8}}) {
    BatchedSim bs(factory, BatchedOptions{base, width});
    for (std::size_t start = 0; start < seeds.size(); start += width) {
      const std::size_t n = std::min(width, seeds.size() - start);
      bs.run(std::span<const std::uint64_t>(seeds.data() + start, n));
      for (std::size_t l = 0; l < n; ++l) {
        EXPECT_EQ(trace_digest(bs.trace(l)), want[start + l])
            << "width " << width << " trial " << start + l;
      }
    }
  }
}

}  // namespace
}  // namespace ecsim::sim
