// IR -> C++ specialization (DESIGN.md §3.6). generate_native_source() turns
// a finalized, fully-described ir::Model into one translation unit: a
// Program struct whose layout tables are constexpr arrays, whose block
// parameters are folded into literals (doubles as hexfloats, so the values
// round-trip exactly) and whose init/compute/on_event/derivatives entry
// points are switch-dispatched with literal arena offsets — no virtual
// calls, no slice lookups, no opaque closures. The unit instantiates
// backend::rt::Engine<Program> and exports the C ABI of
// backend/native_abi.hpp.
//
// Order-sensitive arithmetic is not re-derived: matrix blocks call the same
// math::multiply_into kernels, samplers the same blocks::sample_duration,
// fault gates the same fault::comm_gate_decide — statically linked from the
// ecsim_native_rt archive — so a generated run is bit-identical to the
// interpreter on the same IR.
#pragma once

#include <string>

#include "ir/ir.hpp"

namespace ecsim::backend {

/// Emits the full C++ source of the model module. Throws
/// std::invalid_argument naming the offending block when the model is not
/// generatable: an opaque block (user closure), an unknown kind tag, or a
/// missing/mistyped attribute. Requires a finalized layout
/// (ir::finalize()).
std::string generate_native_source(const ir::Model& m);

}  // namespace ecsim::backend
