// Sample/Hold: the block the paper's Fig. 2 uses twice — once to model the
// sampling of the plant output, once to model control-input actuation (ZOH).
// The instant at which its activation event arrives *is* I_j(k) (resp.
// O_j(k)) of eqs. (1)-(2); latency analysis reads these from the trace.
#pragma once

#include "sim/block.hpp"

namespace ecsim::blocks {

using sim::Block;
using sim::Context;

class SampleHold : public Block {
 public:
  /// `width` lanes; the output holds `initial` until the first activation.
  SampleHold(std::string name, std::size_t width = 1,
             std::vector<double> initial = {});

  void initialize(Context& ctx) override;
  void on_event(Context& ctx, std::size_t event_in) override;
  void describe(ir::BlockIr& out) const override;

  std::size_t event_in() const { return 0; }
  std::size_t done_event_out() const { return 0; }

 private:
  std::vector<double> initial_;
};

}  // namespace ecsim::blocks
