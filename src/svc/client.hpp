// Client side of the sweep service (DESIGN.md §3.9): connect to the daemon's
// unix socket, round-trip framed requests and decode the bit-exact unit
// payloads back into the in-process result types (sweep::SweepCell,
// sweep::FaultCell, sweep::MonteCarloResult). `ecsim_flow --connect=PATH`
// routes through this; a failed connect or a daemon error falls back to the
// in-process computation with a recorded reason — the CLI never fails a
// sweep just because the daemon is away.
#pragma once

#include <string>
#include <vector>

#include "par/fault_sweep.hpp"
#include "par/monte_carlo.hpp"
#include "par/sweep.hpp"
#include "svc/protocol.hpp"

namespace ecsim::svc {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to the daemon socket. False (with last_error set) when the
  /// daemon is not there — the caller's cue to fall back in-process.
  bool connect(const std::string& socket_path);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// One request/response round-trip. False on transport failure or an
  /// error-status reply; last_error() carries the reason either way.
  bool request(const Request& req, Fields& reply, ResponseMeta& meta);

  const std::string& last_error() const { return err_; }

 private:
  int fd_ = -1;
  std::string err_;
};

// ---- typed decode helpers (CLI + tests) ------------------------------------
// Each runs one request and reconstructs the in-process result type from the
// daemon's unit payloads. False leaves the output untouched; the reason is
// in client.last_error().

bool remote_sweep(Client& client, const Request& req,
                  std::vector<sweep::SweepCell>& cells, ResponseMeta& meta);

bool remote_fault_sweep(Client& client, const Request& req,
                        std::vector<sweep::FaultCell>& cells,
                        ResponseMeta& meta);

bool remote_network_sweep(Client& client, const Request& req,
                          std::vector<sweep::NetworkCell>& cells,
                          ResponseMeta& meta);

/// Fault Monte Carlo: per-trial cells come back in trial order and reduce
/// through sweep::summarize_fault_trials — the same reduction the in-process
/// run uses, so the statistics match bit-for-bit. Timing fields stay 0.
bool remote_fault_mc(Client& client, const Request& req,
                     sweep::FaultMonteCarloResult& result, ResponseMeta& meta);

bool remote_vm_mc(Client& client, const Request& req,
                  sweep::MonteCarloResult& result, ResponseMeta& meta);

}  // namespace ecsim::svc
