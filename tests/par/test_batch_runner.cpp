#include "par/batch_runner.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ecsim::par {
namespace {

TEST(BatchRunner, MapReturnsResultsInSubmissionOrder) {
  BatchOptions opts;
  opts.threads = 4;
  BatchRunner runner(opts);
  const auto out = runner.map<std::size_t>(
      100, [](TaskContext& ctx) { return ctx.index * 2; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 2 * i);
}

TEST(BatchRunner, PerTaskRngStreamsAreDecorrelatedAndSchedulingIndependent) {
  auto draws_with_threads = [](std::size_t threads) {
    BatchOptions opts;
    opts.threads = threads;
    opts.seed = 42;
    BatchRunner runner(opts);
    return runner.map<std::uint64_t>(
        64, [](TaskContext& ctx) { return ctx.rng.next_u64(); });
  };
  const auto serial = draws_with_threads(1);
  const auto par2 = draws_with_threads(2);
  const auto par7 = draws_with_threads(7);
  EXPECT_EQ(serial, par2);
  EXPECT_EQ(serial, par7);
  // All first draws distinct: streams are decorrelated, not reseeded copies.
  for (std::size_t i = 1; i < serial.size(); ++i) {
    EXPECT_NE(serial[i], serial[0]) << "stream " << i;
  }
}

TEST(BatchRunner, MergedMetricsSnapshotIndependentOfThreadCount) {
  auto merged_json = [](std::size_t threads) {
    obs::MetricsRegistry merged;
    BatchOptions opts;
    opts.threads = threads;
    opts.metrics = &merged;
    BatchRunner runner(opts);
    runner.run(32, [](TaskContext& ctx) {
      ASSERT_NE(ctx.metrics, nullptr);
      ctx.metrics->counter("work").add(ctx.index + 1);
      ctx.metrics->gauge("hwm").set(static_cast<double>(ctx.index));
      ctx.metrics->histogram("size").observe(static_cast<double>(ctx.index));
    });
    return merged.to_json();
  };
  const std::string serial = merged_json(1);
  EXPECT_EQ(serial, merged_json(2));
  EXPECT_EQ(serial, merged_json(7));
  // Counter sums across shards: 1 + 2 + ... + 32 = 528.
  EXPECT_NE(serial.find("\"work\": 528"), std::string::npos);
  // Gauges ratchet to the max across shards.
  EXPECT_NE(serial.find("\"hwm\": 31"), std::string::npos);
}

TEST(BatchRunner, MergedTracerRecordsArriveInTaskIndexOrder) {
  auto merged_events = [](std::size_t threads) {
    obs::Tracer merged(1u << 12);
    BatchOptions opts;
    opts.threads = threads;
    opts.tracer = &merged;
    BatchRunner runner(opts);
    runner.run(16, [](TaskContext& ctx) {
      ASSERT_NE(ctx.tracer, nullptr);
      const std::uint32_t ev = ctx.tracer->intern("task");
      const std::uint32_t trk = ctx.tracer->track(
          "task" + std::to_string(ctx.index), obs::Domain::kSim);
      ctx.tracer->instant(ev, trk, static_cast<double>(ctx.index));
    });
    std::vector<std::pair<std::string, double>> out;
    for (const obs::TraceEvent& e : merged.snapshot()) {
      out.emplace_back(merged.track_name(e.track), e.ts);
    }
    return out;
  };
  const auto serial = merged_events(1);
  ASSERT_EQ(serial.size(), 16u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].first, "task" + std::to_string(i));
    EXPECT_DOUBLE_EQ(serial[i].second, static_cast<double>(i));
  }
  EXPECT_EQ(serial, merged_events(3));
  EXPECT_EQ(serial, merged_events(7));
}

TEST(BatchRunner, NoShardsAllocatedWithoutDestinations) {
  BatchRunner runner(BatchOptions{});
  runner.run(4, [](TaskContext& ctx) {
    EXPECT_EQ(ctx.metrics, nullptr);
    EXPECT_EQ(ctx.tracer, nullptr);
  });
}

TEST(BatchRunner, RethrowsLowestIndexAfterDrainingAndStillMerges) {
  obs::MetricsRegistry merged;
  BatchOptions opts;
  opts.threads = 4;
  opts.metrics = &merged;
  BatchRunner runner(opts);
  try {
    runner.run(20, [](TaskContext& ctx) {
      ctx.metrics->counter("ran").add();
      if (ctx.index == 7 || ctx.index == 3) {
        throw std::runtime_error("task " + std::to_string(ctx.index));
      }
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 3");
  }
  // Every task ran and merged its shard before the rethrow.
  EXPECT_EQ(merged.counter("ran").value(), 20u);
}

TEST(BatchRunner, BorrowedPoolIsReused) {
  TaskPool pool(3);
  BatchOptions opts;
  opts.pool = &pool;
  opts.threads = 99;  // ignored: the pool's worker count wins
  BatchRunner runner(opts);
  EXPECT_EQ(runner.threads(), 3u);
  const auto out =
      runner.map<int>(10, [](TaskContext&) { return 1; });
  EXPECT_EQ(out.size(), 10u);
}

}  // namespace
}  // namespace ecsim::par
