
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/suspension_codesign.cpp" "examples/CMakeFiles/suspension_codesign.dir/suspension_codesign.cpp.o" "gcc" "examples/CMakeFiles/suspension_codesign.dir/suspension_codesign.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ecsim_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_blocks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_plants.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_aaa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_latency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_mathlib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
