#include "backend/native_codegen.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "backend/native_abi.hpp"
#include "blocks/duration_spec.hpp"

namespace ecsim::backend {

namespace {

using ir::Attr;
using ir::BlockIr;
using ir::SliceIr;

// ---- literal emission ------------------------------------------------------

/// Double -> C++ literal that reconstructs the exact bit pattern (hexfloat;
/// infinities/NaN via <limits>/<cmath> expressions).
std::string lit(double v) {
  if (std::isnan(v)) return "std::nan(\"\")";
  if (std::isinf(v)) {
    return v > 0 ? "std::numeric_limits<double>::infinity()"
                 : "(-std::numeric_limits<double>::infinity())";
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

std::string lit(std::size_t v) { return std::to_string(v); }

std::string cstr(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

// ---- attribute access (same contract as blocks::to_model) ------------------

[[noreturn]] void bad(const BlockIr& b, const std::string& why) {
  throw std::invalid_argument("native codegen: block '" + b.name + "' (" +
                              (b.kind.empty() ? "?" : b.kind) + "): " + why);
}

const Attr& need(const BlockIr& b, const char* key, Attr::Kind kind) {
  const Attr* a = b.find(key);
  if (a == nullptr) bad(b, "missing attr '" + std::string(key) + "'");
  if (a->kind != kind) bad(b, "attr '" + std::string(key) + "' has wrong type");
  return *a;
}

double real_of(const BlockIr& b, const char* key) {
  return need(b, key, Attr::Kind::kReal).r;
}

long long int_of(const BlockIr& b, const char* key) {
  return need(b, key, Attr::Kind::kInt).i;
}

const std::vector<double>& vec_of(const BlockIr& b, const char* key) {
  return need(b, key, Attr::Kind::kRealVec).vec;
}

/// C++ expression rebuilding an EventDelay's DurationSpec through the same
/// validated factories blocks::duration_from_attrs uses.
std::string spec_expr(const BlockIr& b) {
  const long long tag = int_of(b, "dist");
  switch (static_cast<blocks::DurationSpec::Kind>(tag)) {
    case blocks::DurationSpec::Kind::kConstant:
      return "bl::constant_duration(" + lit(real_of(b, "value")) + ")";
    case blocks::DurationSpec::Kind::kUniform:
      return "bl::uniform_duration(" + lit(real_of(b, "bcet")) + ", " +
             lit(real_of(b, "wcet")) + ")";
    case blocks::DurationSpec::Kind::kTruncatedNormal:
      return "bl::truncated_normal_duration(" + lit(real_of(b, "mean")) +
             ", " + lit(real_of(b, "stddev")) + ", " + lit(real_of(b, "bcet")) +
             ", " + lit(real_of(b, "wcet")) + ")";
    case blocks::DurationSpec::Kind::kShiftedUniform:
      return "bl::shifted_uniform_duration(" + lit(real_of(b, "base")) + ", " +
             lit(real_of(b, "jitter")) + ")";
    case blocks::DurationSpec::Kind::kBranches: {
      const std::vector<double>& ws = vec_of(b, "branch_wcets");
      std::string expr = "bl::branch_duration({";
      for (std::size_t j = 0; j < ws.size(); ++j) {
        if (j) expr += ", ";
        expr += lit(ws[j]);
      }
      expr += "}, " + lit(real_of(b, "bcet_fraction")) + ", " +
              (int_of(b, "random_branch") != 0 ? "true" : "false") + ")";
      return expr;
    }
    case blocks::DurationSpec::Kind::kCustom:
      break;
  }
  bad(b, "unregenerable duration distribution (tag " + std::to_string(tag) +
             ")");
}

// ---- emitter ---------------------------------------------------------------

class Emitter {
 public:
  explicit Emitter(const ir::Model& m) : m_(m), lay_(m.layout) {
    if (lay_.eval_order.size() != m.blocks.size() ||
        lay_.out_base.size() != m.blocks.size() + 1) {
      throw std::invalid_argument(
          "native codegen: IR has no finalized layout (run ir::finalize)");
    }
  }

  std::string generate(const std::string& hash_hex);

 private:
  // Arena slices, folded to literals.
  const SliceIr& out_slice(std::size_t b, std::size_t p) const {
    return lay_.out_slices[lay_.out_base[b] + p];
  }
  const SliceIr& in_slice(std::size_t b, std::size_t p) const {
    return lay_.in_slices[lay_.in_base[b] + p];
  }

  void table(const char* name, const std::vector<std::size_t>& v);
  void matrix_member(const std::string& id, const BlockIr& b, const char* key);

  void emit_block(std::size_t i);

  // Per-kind emission appends into the four bodies (+ members).
  std::string members_;
  std::string init_;
  std::string compute_;
  std::string event_;
  std::string deriv_;
  std::string out_;

  const ir::Model& m_;
  const ir::LayoutIr& lay_;
};

void Emitter::table(const char* name, const std::vector<std::size_t>& v) {
  out_ += "  static constexpr std::array<std::size_t, " + lit(v.size()) +
          "> " + name + "{";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out_ += ", ";
    out_ += lit(v[i]);
  }
  out_ += "};\n";
}

/// `ma::Matrix <id> = ...;` member from a matrix attribute.
void Emitter::matrix_member(const std::string& id, const BlockIr& b,
                            const char* key) {
  const Attr& a = need(b, key, Attr::Kind::kMatrix);
  if (a.vec.size() != a.rows * a.cols) bad(b, "matrix attr size mismatch");
  members_ += "  ma::Matrix " + id + " = make_matrix(" + lit(a.rows) + ", " +
              lit(a.cols) + ", {";
  for (std::size_t i = 0; i < a.vec.size(); ++i) {
    if (i) members_ += ", ";
    members_ += lit(a.vec[i]);
  }
  members_ += "});\n";
}

void Emitter::emit_block(std::size_t i) {
  const BlockIr& b = m_.blocks[i];
  if (b.opaque) {
    bad(b, "opaque (behaviour lives in a user closure); interpreter only");
  }
  const std::string B = lit(i);
  const std::string id = "b" + B + "_";
  const std::string& k = b.kind;

  auto out_off = [&](std::size_t p) { return lit(out_slice(i, p).offset); };
  auto in_off = [&](std::size_t p) { return lit(in_slice(i, p).offset); };
  auto case_open = [&](std::string& body) { body += "      case " + B + ": {\n"; };
  auto case_close = [&](std::string& body) { body += "      } break;\n"; };

  if (k == "Clock") {
    init_ += "    e.schedule_self(" + B + ", 0, " + lit(real_of(b, "offset")) +
             ");\n";
    case_open(event_);
    event_ += "        e.emit(" + B + ", 0, 0.0);\n";
    event_ += "        e.schedule_self(" + B + ", 0, " +
              lit(real_of(b, "period")) + ");\n";
    case_close(event_);
    return;
  }
  if (k == "TimetableClock") {
    const std::vector<double>& offs = vec_of(b, "offsets");
    members_ += "  static constexpr std::array<double, " + lit(offs.size()) +
                "> " + id + "offsets{";
    for (std::size_t j = 0; j < offs.size(); ++j) {
      if (j) members_ += ", ";
      members_ += lit(offs[j]);
    }
    members_ += "};\n";
    members_ += "  std::size_t " + id + "next = 0;\n";
    members_ += "  std::size_t " + id + "cycle = 0;\n";
    init_ += "    " + id + "next = 0; " + id + "cycle = 0;\n";
    init_ += "    e.schedule_self(" + B + ", 0, " + id + "offsets.front());\n";
    case_open(event_);
    event_ += "        e.emit(" + B + ", 0, 0.0);\n";
    event_ += "        const double now = static_cast<double>(" + id +
              "cycle) * " + lit(real_of(b, "period")) + " + " + id +
              "offsets[" + id + "next];\n";
    event_ += "        ++" + id + "next;\n";
    event_ += "        if (" + id + "next == " + id + "offsets.size()) { " +
              id + "next = 0; ++" + id + "cycle; }\n";
    event_ += "        const double target = static_cast<double>(" + id +
              "cycle) * " + lit(real_of(b, "period")) + " + " + id +
              "offsets[" + id + "next];\n";
    event_ += "        e.schedule_self(" + B + ", 0, target - now);\n";
    case_close(event_);
    return;
  }
  if (k == "Constant") {
    const std::vector<double>& v = vec_of(b, "value");
    members_ += "  static constexpr std::array<double, " + lit(v.size()) +
                "> " + id + "value{";
    for (std::size_t j = 0; j < v.size(); ++j) {
      if (j) members_ += ", ";
      members_ += lit(v[j]);
    }
    members_ += "};\n";
    case_open(compute_);
    compute_ += "        for (std::size_t j = 0; j < " + lit(v.size()) +
                "; ++j) a[" + out_off(0) + " + j] = " + id + "value[j];\n";
    case_close(compute_);
    return;
  }
  if (k == "Step") {
    case_open(compute_);
    compute_ += "        a[" + out_off(0) + "] = e.time() < " +
                lit(real_of(b, "step_time")) + " ? " +
                lit(real_of(b, "initial")) + " : " + lit(real_of(b, "final")) +
                ";\n";
    case_close(compute_);
    return;
  }
  if (k == "Sine") {
    case_open(compute_);
    compute_ += "        const double w = 2.0 * std::numbers::pi * " +
                lit(real_of(b, "frequency")) + ";\n";
    compute_ += "        a[" + out_off(0) + "] = " +
                lit(real_of(b, "amplitude")) + " * std::sin(w * e.time() + " +
                lit(real_of(b, "phase")) + ") + " + lit(real_of(b, "bias")) +
                ";\n";
    case_close(compute_);
    return;
  }
  if (k == "Pulse") {
    case_open(compute_);
    compute_ += "        const double ph = std::fmod(e.time(), " +
                lit(real_of(b, "period")) + ");\n";
    compute_ += "        a[" + out_off(0) + "] = ph < " +
                lit(real_of(b, "duty")) + " * " + lit(real_of(b, "period")) +
                " ? " + lit(real_of(b, "high")) + " : " +
                lit(real_of(b, "low")) + ";\n";
    case_close(compute_);
    return;
  }
  if (k == "NoiseHold") {
    init_ += "    a[" + out_off(0) + "] = " + lit(real_of(b, "mean")) + ";\n";
    case_open(event_);
    event_ += "        a[" + out_off(0) + "] = e.rng().normal(" +
              lit(real_of(b, "mean")) + ", " + lit(real_of(b, "stddev")) +
              ");\n";
    event_ += "        e.emit(" + B + ", 0, 0.0);\n";
    case_close(event_);
    return;
  }
  if (k == "Gain") {
    matrix_member(id + "k", b, "k");
    case_open(compute_);
    compute_ += "        ma::multiply_into(std::span<double>(a + " +
                out_off(0) + ", " + lit(out_slice(i, 0).width) + "), " + id +
                "k, std::span<const double>(a + " + in_off(0) + ", " +
                lit(in_slice(i, 0).width) + "));\n";
    case_close(compute_);
    return;
  }
  if (k == "Sum") {
    const std::vector<double>& signs = vec_of(b, "signs");
    if (signs.size() != b.in_widths.size()) bad(b, "signs/input count mismatch");
    const std::size_t w = out_slice(i, 0).width;
    case_open(compute_);
    compute_ += "        double* y = a + " + out_off(0) + ";\n";
    compute_ += "        for (std::size_t k = 0; k < " + lit(w) +
                "; ++k) y[k] = 0.0;\n";
    for (std::size_t p = 0; p < signs.size(); ++p) {
      compute_ += "        { const double* u = a + " + in_off(p) +
                  "; for (std::size_t k = 0; k < " + lit(w) +
                  "; ++k) y[k] += " + lit(signs[p]) + " * u[k]; }\n";
    }
    case_close(compute_);
    return;
  }
  if (k == "Saturation") {
    const std::size_t w = in_slice(i, 0).width;
    case_open(compute_);
    compute_ += "        const double* u = a + " + in_off(0) +
                "; double* y = a + " + out_off(0) + ";\n";
    compute_ += "        for (std::size_t k = 0; k < " + lit(w) +
                "; ++k) y[k] = std::clamp(u[k], " + lit(real_of(b, "lo")) +
                ", " + lit(real_of(b, "hi")) + ");\n";
    case_close(compute_);
    return;
  }
  if (k == "Quantizer") {
    const std::size_t w = in_slice(i, 0).width;
    const std::string step = lit(real_of(b, "step"));
    case_open(compute_);
    compute_ += "        const double* u = a + " + in_off(0) +
                "; double* y = a + " + out_off(0) + ";\n";
    compute_ += "        for (std::size_t k = 0; k < " + lit(w) +
                "; ++k) y[k] = std::round(u[k] / " + step + ") * " + step +
                ";\n";
    case_close(compute_);
    return;
  }
  if (k == "Mux") {
    case_open(compute_);
    std::size_t off = 0;
    for (std::size_t p = 0; p < b.in_widths.size(); ++p) {
      const std::size_t w = in_slice(i, p).width;
      compute_ += "        { const double* u = a + " + in_off(p) +
                  "; for (std::size_t k = 0; k < " + lit(w) + "; ++k) a[" +
                  lit(out_slice(i, 0).offset + off) + " + k] = u[k]; }\n";
      off += w;
    }
    case_close(compute_);
    return;
  }
  if (k == "Demux") {
    case_open(compute_);
    std::size_t off = 0;
    for (std::size_t p = 0; p < b.out_widths.size(); ++p) {
      const std::size_t w = out_slice(i, p).width;
      compute_ += "        { double* y = a + " + out_off(p) +
                  "; for (std::size_t k = 0; k < " + lit(w) + "; ++k) y[k] = a[" +
                  lit(in_slice(i, 0).offset + off) + " + k]; }\n";
      off += w;
    }
    case_close(compute_);
    return;
  }
  if (k == "Integrator") {
    const std::vector<double>& x0 = vec_of(b, "x0");
    const std::size_t n = b.state_size;
    const std::string S = lit(lay_.state_offset[i]);
    init_ += "    { double* x = e.state_mut(" + S + ");\n";
    for (std::size_t j = 0; j < n; ++j) {
      init_ += "      x[" + lit(j) + "] = " + lit(x0[j]) + ";\n";
    }
    init_ += "    }\n    compute(e, " + B + ");\n";
    case_open(compute_);
    compute_ += "        const double* x = e.state(" + S +
                "); double* y = a + " + out_off(0) + ";\n";
    compute_ += "        for (std::size_t k = 0; k < " + lit(n) +
                "; ++k) y[k] = x[k];\n";
    case_close(compute_);
    deriv_ += "      case " + B + ": {\n";
    deriv_ += "        const double* u = a + " + in_off(0) + ";\n";
    deriv_ += "        for (std::size_t k = 0; k < " + lit(n) +
              "; ++k) dx[k] = u[k];\n";
    deriv_ += "      } break;\n";
    return;
  }
  if (k == "StateSpaceCont") {
    matrix_member(id + "a", b, "a");
    matrix_member(id + "b", b, "b");
    matrix_member(id + "c", b, "c");
    matrix_member(id + "d", b, "d");
    const std::vector<double>& x0 = vec_of(b, "x0");
    const std::size_t n = b.state_size;
    const std::string S = lit(lay_.state_offset[i]);
    if (x0.size() != n) bad(b, "x0 size mismatch");
    init_ += "    { double* x = e.state_mut(" + S + ");\n";
    for (std::size_t j = 0; j < n; ++j) {
      init_ += "      x[" + lit(j) + "] = " + lit(x0[j]) + ";\n";
    }
    init_ += "    }\n    compute(e, " + B + ");\n";
    case_open(compute_);
    compute_ += "        std::span<double> y(a + " + out_off(0) + ", " +
                lit(out_slice(i, 0).width) + ");\n";
    compute_ += "        ma::multiply_into(y, " + id +
                "c, std::span<const double>(e.state(" + S + "), " + lit(n) +
                "));\n";
    compute_ += "        ma::multiply_add_into(y, " + id +
                "d, std::span<const double>(a + " + in_off(0) + ", " +
                lit(in_slice(i, 0).width) + "));\n";
    case_close(compute_);
    deriv_ += "      case " + B + ": {\n";
    deriv_ += "        std::span<double> d(dx, " + lit(n) + ");\n";
    deriv_ += "        ma::multiply_into(d, " + id +
              "a, std::span<const double>(e.state(" + S + "), " + lit(n) +
              "));\n";
    deriv_ += "        ma::multiply_add_into(d, " + id +
              "b, std::span<const double>(a + " + in_off(0) + ", " +
              lit(in_slice(i, 0).width) + "));\n";
    deriv_ += "      } break;\n";
    return;
  }
  if (k == "StateSpaceDisc") {
    matrix_member(id + "a", b, "a");
    matrix_member(id + "b", b, "b");
    matrix_member(id + "c", b, "c");
    matrix_member(id + "d", b, "d");
    const std::vector<double>& x0 = vec_of(b, "x0");
    members_ += "  std::vector<double> " + id + "x;\n";
    members_ += "  std::vector<double> " + id + "next;\n";
    init_ += "    " + id + "x = {";
    for (std::size_t j = 0; j < x0.size(); ++j) {
      if (j) init_ += ", ";
      init_ += lit(x0[j]);
    }
    init_ += "};\n";
    init_ += "    " + id + "next.assign(" + lit(x0.size()) + ", 0.0);\n";
    init_ += "    { double* y = a + " + out_off(0) +
             "; for (std::size_t k = 0; k < " + lit(out_slice(i, 0).width) +
             "; ++k) y[k] = 0.0; }\n";
    case_open(event_);
    event_ += "        std::span<const double> u(a + " + in_off(0) + ", " +
              lit(in_slice(i, 0).width) + ");\n";
    event_ += "        std::span<double> y(a + " + out_off(0) + ", " +
              lit(out_slice(i, 0).width) + ");\n";
    event_ += "        ma::multiply_into(y, " + id + "c, " + id + "x);\n";
    event_ += "        ma::multiply_add_into(y, " + id + "d, u);\n";
    event_ += "        ma::multiply_into(std::span<double>(" + id + "next), " +
              id + "a, " + id + "x);\n";
    event_ += "        ma::multiply_add_into(std::span<double>(" + id +
              "next), " + id + "b, u);\n";
    event_ += "        std::swap(" + id + "x, " + id + "next);\n";
    event_ += "        e.emit(" + B + ", 0, 0.0);\n";
    case_close(event_);
    return;
  }
  if (k == "PidDiscrete") {
    members_ += "  double " + id + "integral = 0.0;\n";
    members_ += "  double " + id + "deriv = 0.0;\n";
    members_ += "  double " + id + "prev = 0.0;\n";
    init_ += "    " + id + "integral = 0.0; " + id + "deriv = 0.0; " + id +
             "prev = 0.0;\n";
    init_ += "    a[" + out_off(0) + "] = 0.0;\n";
    const std::string kp = lit(real_of(b, "kp")), ki = lit(real_of(b, "ki")),
                      kd = lit(real_of(b, "kd")), ts = lit(real_of(b, "ts")),
                      nn = lit(real_of(b, "n")),
                      umin = lit(real_of(b, "u_min")),
                      umax = lit(real_of(b, "u_max"));
    case_open(event_);
    event_ += "        const double err = a[" + in_off(0) + "];\n";
    event_ += "        " + id + "deriv = (" + kd + " * " + nn + " * (err - " +
              id + "prev) + " + id + "deriv) / (1.0 + " + nn + " * " + ts +
              ");\n";
    event_ += "        double u = " + kp + " * err + " + id + "integral + " +
              id + "deriv;\n";
    event_ += "        const double uc = std::clamp(u, " + umin + ", " + umax +
              ");\n";
    event_ +=
        "        const bool saturating = (u > uc && err > 0.0) || (u < uc && "
        "err < 0.0);\n";
    event_ += "        if (!saturating) " + id + "integral += " + ki + " * " +
              ts + " * err;\n";
    event_ += "        " + id + "prev = err;\n";
    event_ += "        a[" + out_off(0) + "] = uc;\n";
    event_ += "        e.emit(" + B + ", 0, 0.0);\n";
    case_close(event_);
    return;
  }
  if (k == "UnitDelay") {
    const std::vector<double>& init = vec_of(b, "init");
    const std::size_t w = init.size();
    members_ += "  std::vector<double> " + id + "stored;\n";
    init_ += "    " + id + "stored = {";
    for (std::size_t j = 0; j < w; ++j) {
      if (j) init_ += ", ";
      init_ += lit(init[j]);
    }
    init_ += "};\n";
    init_ += "    { double* y = a + " + out_off(0) +
             "; for (std::size_t k = 0; k < " + lit(w) + "; ++k) y[k] = " + id +
             "stored[k]; }\n";
    case_open(event_);
    event_ += "        const double* u = a + " + in_off(0) +
              "; double* y = a + " + out_off(0) + ";\n";
    event_ += "        for (std::size_t k = 0; k < " + lit(w) +
              "; ++k) y[k] = " + id + "stored[k];\n";
    event_ += "        " + id + "stored.assign(u, u + " + lit(w) + ");\n";
    event_ += "        e.emit(" + B + ", 0, 0.0);\n";
    case_close(event_);
    return;
  }
  if (k == "EventCounter") {
    members_ += "  std::size_t " + id + "count = 0;\n";
    init_ += "    " + id + "count = 0;\n";
    init_ += "    a[" + out_off(0) + "] = 0.0;\n";
    case_open(event_);
    event_ += "        ++" + id + "count;\n";
    event_ += "        a[" + out_off(0) + "] = static_cast<double>(" + id +
              "count);\n";
    case_close(event_);
    return;
  }
  if (k == "SampleHold") {
    const std::vector<double>& initial = vec_of(b, "initial");
    const std::size_t w = in_slice(i, 0).width;
    if (initial.size() != w) bad(b, "initial size mismatch");
    for (std::size_t j = 0; j < w; ++j) {
      init_ += "    a[" + lit(out_slice(i, 0).offset + j) + "] = " +
               lit(initial[j]) + ";\n";
    }
    case_open(event_);
    event_ += "        const double* u = a + " + in_off(0) +
              "; double* y = a + " + out_off(0) + ";\n";
    event_ += "        for (std::size_t k = 0; k < " + lit(w) +
              "; ++k) y[k] = u[k];\n";
    event_ += "        e.emit(" + B + ", 0, 0.0);\n";
    case_close(event_);
    return;
  }
  if (k == "Probe") {
    const double period = real_of(b, "record_period");
    members_ += "  std::size_t " + id + "samples = 0;\n";
    init_ += "    " + id + "samples = 0;\n";
    if (period > 0.0) {
      init_ += "    e.schedule_self(" + B + ", 0, 0.0);\n";
    }
    case_open(event_);
    event_ += "        e.trace().record_signal(e.time(), " + B +
              ", std::span<const double>(a + " + in_off(0) + ", " +
              lit(in_slice(i, 0).width) + "));\n";
    event_ += "        ++" + id + "samples;\n";
    if (period > 0.0) {
      event_ += "        e.schedule_self(" + B + ", 0, " + lit(period) + ");\n";
    }
    case_close(event_);
    return;
  }
  if (k == "Synchronization") {
    const std::size_t n = b.n_event_in;
    members_ += "  std::array<bool, " + lit(n) + "> " + id + "received{};\n";
    init_ += "    " + id + "received.fill(false);\n";
    case_open(event_);
    event_ += "        " + id + "received[port] = true;\n";
    event_ += "        bool all = true;\n";
    event_ += "        for (bool v : " + id + "received) all = all && v;\n";
    event_ += "        if (all) { e.emit(" + B + ", 0, 0.0); " + id +
              "received.fill(false); }\n";
    case_close(event_);
    return;
  }
  if (k == "EventDelay") {
    members_ += "  double " + id + "busy = 0.0;\n";
    init_ += "    " + id + "busy = 0.0;\n";
    const auto kind = static_cast<blocks::DurationSpec::Kind>(int_of(b, "dist"));
    case_open(event_);
    event_ += "        const double now = e.time();\n";
    event_ += "        double start = now;\n";
    event_ += "        if (" + id + "busy > now) start = " + id + "busy;\n";
    if (kind == blocks::DurationSpec::Kind::kConstant) {
      // Constant samplers consume no RNG and were validated >= 0 at
      // construction: fold to the literal.
      event_ += "        const double d = " + lit(real_of(b, "value")) + ";\n";
    } else {
      members_ += "  bl::DurationSpec " + id + "spec = " + spec_expr(b) + ";\n";
      event_ += "        const double d = bl::sample_duration(" + id +
                "spec, e.rng());\n";
      event_ +=
          "        if (d < 0.0) throw std::runtime_error(\"EventDelay: "
          "sampler returned < 0\");\n";
    }
    event_ += "        " + id + "busy = start + d;\n";
    event_ += "        e.emit(" + B + ", 0, " + id + "busy - now);\n";
    case_close(event_);
    return;
  }
  if (k == "TdmaGate") {
    const std::string slot = lit(real_of(b, "slot"));
    // Owner slots (slots/owner attrs, omitted at the single-slot default):
    // the grid becomes round = slots*slot offset by owner*slot. Folding the
    // products here keeps the single-slot emission byte-identical to the
    // pre-owner-slot generator.
    const double slot_v = real_of(b, "slot");
    const long long slots =
        b.find("slots") != nullptr ? int_of(b, "slots") : 1;
    const long long owner =
        b.find("owner") != nullptr ? int_of(b, "owner") : 0;
    const std::string round =
        slots > 1 ? lit(static_cast<double>(slots) * slot_v) : slot;
    case_open(event_);
    event_ += "        const double now = e.time();\n";
    if (slots > 1) {
      const std::string offset = lit(static_cast<double>(owner) * slot_v);
      event_ += "        const double kq = std::ceil((now - " + offset +
                ") / " + round + " - 1e-9);\n";
      event_ += "        const double boundary = std::max(0.0, kq) * " +
                round + " + " + offset + ";\n";
    } else {
      event_ += "        const double kq = std::ceil(now / " + round +
                " - 1e-9);\n";
      event_ += "        const double boundary = std::max(0.0, kq) * " +
                round + ";\n";
    }
    event_ += "        e.emit(" + B + ", 0, std::max(0.0, boundary - now));\n";
    case_close(event_);
    return;
  }
  if (k == "EventMerge") {
    case_open(event_);
    event_ += "        e.emit(" + B + ", 0, 0.0);\n";
    case_close(event_);
    return;
  }
  if (k == "EventFault") {
    const Attr& e = need(b, "entries", Attr::Kind::kMatrix);
    if (e.cols != 7 || e.vec.size() != e.rows * 7) {
      bad(b, "gate entries must be an n x 7 matrix");
    }
    members_ += "  fa::CommGate " + id + "gate = [] {\n";
    members_ += "    fa::CommGate g;\n";
    members_ += "    g.seed = " +
                std::to_string(static_cast<std::uint64_t>(int_of(b, "seed"))) +
                "ULL;\n";
    members_ += "    g.period = " + lit(real_of(b, "period")) + ";\n";
    members_ += "    g.comm_index = " +
                lit(static_cast<std::size_t>(int_of(b, "comm_index"))) + ";\n";
    members_ += "    g.transfer_duration = " +
                lit(real_of(b, "transfer_duration")) + ";\n";
    members_ += "    g.entries.resize(" + lit(e.rows) + ");\n";
    for (std::size_t r = 0; r < e.rows; ++r) {
      const double* row = e.vec.data() + r * 7;
      const int kind_tag = static_cast<int>(row[1]);
      if (kind_tag < 0 || kind_tag > 2) bad(b, "gate entry has unknown kind");
      const char* kind_name = kind_tag == 0   ? "kLoss"
                              : kind_tag == 1 ? "kDelay"
                                              : "kDuplicate";
      const std::string ge = "    g.entries[" + lit(r) + "]";
      members_ += ge + ".fault = " + lit(static_cast<std::size_t>(row[0])) +
                  ";\n";
      members_ += ge + ".kind = fa::CommGateEntry::Kind::" +
                  std::string(kind_name) + ";\n";
      members_ += ge + ".probability = " + lit(row[2]) + ";\n";
      members_ += ge + ".delay = " + lit(row[3]) + ";\n";
      members_ += ge + ".extra_copies = " +
                  lit(static_cast<std::size_t>(row[4])) + ";\n";
      members_ += ge + ".t_start = " + lit(row[5]) + ";\n";
      members_ += ge + ".t_stop = " + lit(row[6]) + ";\n";
    }
    members_ += "    return g;\n  }();\n";
    members_ += "  std::size_t " + id + "count = 0;\n";
    init_ += "    " + id + "count = 0;\n";
    case_open(event_);
    event_ += "        const fa::CommGateAction act = fa::comm_gate_decide(" +
              id + "gate, " + id + "count++);\n";
    event_ += "        if (!act.drop) e.emit(" + B + ", 0, act.defer);\n";
    case_close(event_);
    return;
  }
  if (k == "EventDivider") {
    members_ += "  std::size_t " + id + "count = 0;\n";
    init_ += "    " + id + "count = 0;\n";
    case_open(event_);
    event_ += "        if (" + id + "count % " +
              lit(static_cast<std::size_t>(int_of(b, "divisor"))) + " == " +
              lit(static_cast<std::size_t>(int_of(b, "phase"))) + ") e.emit(" +
              B + ", 0, 0.0);\n";
    event_ += "        ++" + id + "count;\n";
    case_close(event_);
    return;
  }
  bad(b, "unknown kind");
}

std::string Emitter::generate(const std::string& hash_hex) {
  out_.clear();
  out_ +=
      "// Generated by the ecsim native backend (DESIGN.md §3.6). DO NOT "
      "EDIT.\n";
  out_ += "// model: " + cstr(m_.name) + "\n";
  out_ += "// ir hash: " + hash_hex + "\n";
  out_ += R"(#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <limits>
#include <numbers>
#include <span>
#include <stdexcept>
#include <vector>

#include "backend/native_abi.hpp"
#include "backend/native_runtime.hpp"
#include "blocks/duration_spec.hpp"
#include "fault/comm_gate.hpp"
#include "mathlib/matrix.hpp"

// Unity-include the order-sensitive runtime kernels so -O3 inlines the event
// queue, trace recording, RNG and integrator straight into the generated
// engine loop — the main throughput win over the interpreter, whose calls to
// the same kernels stay behind a TU boundary. The kernels are compiled from
// the same sources with the same flags, and no FMA contraction is enabled,
// so the arithmetic stays bit-identical to the interpreter's. The runtime
// archive remains on the link line purely as a lazy fallback: every symbol
// defined here shadows its archive member, which is then never pulled in.
#include "blocks/duration_spec.cpp"
#include "fault/comm_gate.cpp"
#include "mathlib/matrix.cpp"
#include "mathlib/rng.cpp"
#include "sim/event_queue.cpp"
#include "sim/integrator.cpp"
#include "sim/trace.cpp"

namespace {

namespace bl = ecsim::blocks;
namespace fa = ecsim::fault;
namespace ma = ecsim::math;
using ecsim::backend::rt::Engine;

ma::Matrix make_matrix(std::size_t rows, std::size_t cols,
                       std::initializer_list<double> row_major) {
  ma::Matrix m(rows, cols);
  std::size_t i = 0;
  for (double v : row_major) m.data()[i++] = v;
  return m;
}

struct Program {
)";
  out_ += "  static constexpr std::size_t kArenaSize = " +
          lit(lay_.arena_size) + ";\n";
  out_ += "  static constexpr std::size_t kTotalState = " +
          lit(lay_.total_state) + ";\n";
  table("kEvalOrder", lay_.eval_order);
  table("kDynamicCone", lay_.dynamic_cone);
  table("kConeBase", lay_.cone_base);
  table("kConeBlocks", lay_.cone_blocks);
  table("kStatefulBlocks", lay_.stateful_blocks);
  table("kStateOffset", lay_.state_offset);
  table("kSinkBase", lay_.sink_base);
  table("kSinkPtr", lay_.sink_ptr);
  {
    std::vector<std::size_t> blocks, ports;
    blocks.reserve(lay_.event_sinks.size());
    ports.reserve(lay_.event_sinks.size());
    for (const ir::PortRefIr& s : lay_.event_sinks) {
      blocks.push_back(s.block);
      ports.push_back(s.port);
    }
    table("kSinkBlock", blocks);
    table("kSinkPort", ports);
  }
  // Block names in block order, for the engine's obs interning (ABI v2):
  // the generated module interns the same strings in the same order the
  // interpreter's init_obs does.
  out_ += "  static constexpr std::array<const char*, " +
          lit(m_.blocks.size()) + "> kBlockNames{";
  for (std::size_t i = 0; i < m_.blocks.size(); ++i) {
    if (i) out_ += ", ";
    out_ += cstr(m_.blocks[i].name);
  }
  out_ += "};\n";
  out_ += "\n";

  for (std::size_t i = 0; i < m_.blocks.size(); ++i) emit_block(i);

  out_ += members_;
  out_ += "\n  void init(Engine<Program>& e) {\n";
  out_ += "    double* const a = e.arena();\n    (void)a;\n";
  out_ += init_;
  out_ += "  }\n\n";
  out_ += "  void compute(Engine<Program>& e, std::size_t b) {\n";
  out_ += "    double* const a = e.arena();\n    (void)a;\n";
  out_ += "    switch (b) {\n";
  out_ += compute_;
  out_ += "      default: break;\n    }\n  }\n\n";
  out_ += "  void on_event(Engine<Program>& e, std::size_t b, std::size_t "
          "port) {\n";
  out_ += "    double* const a = e.arena();\n    (void)a; (void)port;\n";
  out_ += "    switch (b) {\n";
  out_ += event_;
  out_ += "      default: break;\n    }\n  }\n\n";
  out_ += "  void derivatives(Engine<Program>& e, std::size_t b, double* dx) "
          "{\n";
  out_ += "    double* const a = e.arena();\n    (void)a; (void)dx;\n";
  out_ += "    switch (b) {\n";
  out_ += deriv_;
  out_ += "      default: break;\n    }\n  }\n";
  out_ += "};\n\n}  // namespace\n\n";

  // ---- C ABI ---------------------------------------------------------------
  out_ += "extern \"C\" int ecsim_native_abi() { return " +
          std::to_string(kNativeAbiVersion) + "; }\n\n";
  out_ += "extern \"C\" const char* ecsim_native_hash() { return " +
          cstr(hash_hex) + "; }\n\n";
  out_ += R"(extern "C" int ecsim_native_run(
    const ecsim::backend::NativeRunOptions* o, void* trace,
    std::size_t* events_out, char* err, std::size_t errcap) {
  const auto fail = [&](const char* what) {
    if (err != nullptr && errcap > 0) {
      std::strncpy(err, what, errcap - 1);
      err[errcap - 1] = '\0';
    }
    return 1;
  };
  try {
    auto* tr = static_cast<ecsim::sim::Trace*>(trace);
    tr->register_block_names({
)";
  for (const BlockIr& b : m_.blocks) {
    out_ += "        std::string(" + cstr(b.name) + "),\n";
  }
  out_ += R"(    });
    Engine<Program> engine;
    engine.bind_trace(tr);
    engine.run(*o);
    *events_out = engine.events_dispatched();
    return 0;
  } catch (const std::exception& ex) {
    return fail(ex.what());
  } catch (...) {
    return fail("native model: unknown exception");
  }
}
)";
  return out_;
}

}  // namespace

std::string generate_native_source(const ir::Model& m) {
  Emitter em(m);
  return em.generate(ir::hash_hex(m));
}

}  // namespace ecsim::backend
