file(REMOVE_RECURSE
  "CMakeFiles/ecsim_plants.dir/plants/coupled_tanks.cpp.o"
  "CMakeFiles/ecsim_plants.dir/plants/coupled_tanks.cpp.o.d"
  "CMakeFiles/ecsim_plants.dir/plants/dc_servo.cpp.o"
  "CMakeFiles/ecsim_plants.dir/plants/dc_servo.cpp.o.d"
  "CMakeFiles/ecsim_plants.dir/plants/inverted_pendulum.cpp.o"
  "CMakeFiles/ecsim_plants.dir/plants/inverted_pendulum.cpp.o.d"
  "CMakeFiles/ecsim_plants.dir/plants/quarter_car.cpp.o"
  "CMakeFiles/ecsim_plants.dir/plants/quarter_car.cpp.o.d"
  "CMakeFiles/ecsim_plants.dir/plants/two_mass.cpp.o"
  "CMakeFiles/ecsim_plants.dir/plants/two_mass.cpp.o.d"
  "libecsim_plants.a"
  "libecsim_plants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecsim_plants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
