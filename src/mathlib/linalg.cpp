#include "mathlib/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ecsim::math {

Lu::Lu(Matrix a) : lu_(std::move(a)), perm_(lu_.rows()) {
  if (!lu_.is_square()) throw std::invalid_argument("Lu: non-square matrix");
  const std::size_t n = lu_.rows();
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: find the largest entry in column k at or below row k.
    std::size_t piv = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best == 0.0) {
      singular_ = true;
      continue;  // zero pivot: leave the column; solve() will refuse
    }
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(piv, c));
      std::swap(perm_[k], perm_[piv]);
      sign_ = -sign_;
    }
    const double pivot = lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double f = lu_(r, k) / pivot;
      lu_(r, k) = f;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= f * lu_(k, c);
    }
  }
}

std::vector<double> Lu::solve(const std::vector<double>& b) const {
  const std::size_t n = dim();
  if (singular_) throw std::runtime_error("Lu::solve: singular matrix");
  if (b.size() != n) throw std::invalid_argument("Lu::solve: size mismatch");
  std::vector<double> x(n);
  // Forward substitution on the permuted rhs (L has unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * x[j];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

Matrix Lu::solve(const Matrix& b) const {
  if (b.rows() != dim()) throw std::invalid_argument("Lu::solve: shape mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const std::vector<double> xc = solve(b.col(c));
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = xc[r];
  }
  return x;
}

double Lu::determinant() const {
  double d = sign_;
  for (std::size_t i = 0; i < dim(); ++i) d *= lu_(i, i);
  return d;
}

std::vector<double> solve(const Matrix& a, const std::vector<double>& b) {
  return Lu(a).solve(b);
}

Matrix solve(const Matrix& a, const Matrix& b) { return Lu(a).solve(b); }

Matrix inverse(const Matrix& a) {
  return Lu(a).solve(Matrix::identity(a.rows()));
}

double determinant(const Matrix& a) { return Lu(a).determinant(); }

namespace {

// Reduce to upper Hessenberg form by Householder similarity transforms.
Matrix to_hessenberg(Matrix a) {
  const std::size_t n = a.rows();
  if (n < 3) return a;
  for (std::size_t k = 0; k + 2 < n; ++k) {
    // Householder vector annihilating a(k+2..n-1, k).
    double alpha = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) alpha += a(i, k) * a(i, k);
    alpha = std::sqrt(alpha);
    if (alpha == 0.0) continue;
    if (a(k + 1, k) > 0.0) alpha = -alpha;
    std::vector<double> v(n, 0.0);
    v[k + 1] = a(k + 1, k) - alpha;
    for (std::size_t i = k + 2; i < n; ++i) v[i] = a(i, k);
    double vnorm2 = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) vnorm2 += v[i] * v[i];
    if (vnorm2 == 0.0) continue;
    // A := (I - 2 v v'/v'v) A (I - 2 v v'/v'v)
    for (std::size_t c = 0; c < n; ++c) {
      double s = 0.0;
      for (std::size_t i = k + 1; i < n; ++i) s += v[i] * a(i, c);
      s = 2.0 * s / vnorm2;
      for (std::size_t i = k + 1; i < n; ++i) a(i, c) -= s * v[i];
    }
    for (std::size_t r = 0; r < n; ++r) {
      double s = 0.0;
      for (std::size_t i = k + 1; i < n; ++i) s += a(r, i) * v[i];
      s = 2.0 * s / vnorm2;
      for (std::size_t i = k + 1; i < n; ++i) a(r, i) -= s * v[i];
    }
  }
  return a;
}

}  // namespace

std::vector<std::complex<double>> eigenvalues(const Matrix& input) {
  if (!input.is_square()) throw std::invalid_argument("eigenvalues: non-square");
  const std::size_t full_n = input.rows();
  std::vector<std::complex<double>> eigs;
  if (full_n == 0) return eigs;

  Matrix a = to_hessenberg(input);
  std::size_t n = full_n;  // active trailing block is a(0..n-1, 0..n-1)
  const double eps = 1e-12;
  int iter_budget = static_cast<int>(60 * full_n + 200);

  while (n > 0) {
    if (n == 1) {
      eigs.emplace_back(a(0, 0), 0.0);
      break;
    }
    // Deflate converged subdiagonal entries from the bottom.
    std::size_t m = n - 1;  // look at a(m, m-1)
    const double sub = std::abs(a(m, m - 1));
    if (sub < eps * (std::abs(a(m, m)) + std::abs(a(m - 1, m - 1)) + eps)) {
      eigs.emplace_back(a(m, m), 0.0);
      --n;
      continue;
    }
    // Check for a converged 2x2 trailing block.
    bool block2 = false;
    if (n == 2) {
      block2 = true;
    } else {
      const double sub2 = std::abs(a(m - 1, m - 2));
      if (sub2 <
          eps * (std::abs(a(m - 1, m - 1)) + std::abs(a(m - 2, m - 2)) + eps)) {
        block2 = true;
      }
    }
    if (block2) {
      const double p = a(m - 1, m - 1), q = a(m - 1, m);
      const double r = a(m, m - 1), s = a(m, m);
      const double tr = p + s, det = p * s - q * r;
      const double disc = tr * tr / 4.0 - det;
      if (disc >= 0.0) {
        const double sq = std::sqrt(disc);
        eigs.emplace_back(tr / 2.0 + sq, 0.0);
        eigs.emplace_back(tr / 2.0 - sq, 0.0);
      } else {
        const double sq = std::sqrt(-disc);
        eigs.emplace_back(tr / 2.0, sq);
        eigs.emplace_back(tr / 2.0, -sq);
      }
      n -= 2;
      continue;
    }
    if (--iter_budget <= 0) {
      // Fall back: accept diagonal entries of the unconverged block. This is
      // a last resort for pathological inputs; tested matrices converge.
      for (std::size_t i = 0; i < n; ++i) eigs.emplace_back(a(i, i), 0.0);
      break;
    }
    // Wilkinson-shifted QR step (via Givens rotations) on the active block.
    const double p = a(n - 2, n - 2), q = a(n - 2, n - 1);
    const double r = a(n - 1, n - 2), s = a(n - 1, n - 1);
    const double tr = p + s, det = p * s - q * r;
    const double disc = tr * tr / 4.0 - det;
    double shift;
    if (disc >= 0.0) {
      const double sq = std::sqrt(disc);
      const double l1 = tr / 2.0 + sq, l2 = tr / 2.0 - sq;
      shift = (std::abs(l1 - s) < std::abs(l2 - s)) ? l1 : l2;
    } else {
      shift = tr / 2.0;  // real part of the complex pair
    }
    for (std::size_t i = 0; i < n; ++i) a(i, i) -= shift;
    // QR via Givens on the Hessenberg active block; then RQ.
    std::vector<double> cs(n - 1), sn(n - 1);
    for (std::size_t k = 0; k + 1 < n; ++k) {
      const double x = a(k, k), y = a(k + 1, k);
      const double rho = std::hypot(x, y);
      const double c = (rho == 0.0) ? 1.0 : x / rho;
      const double t = (rho == 0.0) ? 0.0 : y / rho;
      cs[k] = c;
      sn[k] = t;
      for (std::size_t j = k; j < n; ++j) {
        const double t1 = a(k, j), t2 = a(k + 1, j);
        a(k, j) = c * t1 + t * t2;
        a(k + 1, j) = -t * t1 + c * t2;
      }
    }
    for (std::size_t k = 0; k + 1 < n; ++k) {
      for (std::size_t i = 0; i <= std::min(k + 2, n - 1); ++i) {
        const double t1 = a(i, k), t2 = a(i, k + 1);
        a(i, k) = cs[k] * t1 + sn[k] * t2;
        a(i, k + 1) = -sn[k] * t1 + cs[k] * t2;
      }
    }
    for (std::size_t i = 0; i < n; ++i) a(i, i) += shift;
  }
  return eigs;
}

double spectral_radius(const Matrix& a) {
  double best = 0.0;
  for (const auto& l : eigenvalues(a)) best = std::max(best, std::abs(l));
  return best;
}

double spectral_abscissa(const Matrix& a) {
  double best = -std::numeric_limits<double>::infinity();
  for (const auto& l : eigenvalues(a)) best = std::max(best, l.real());
  return best;
}

}  // namespace ecsim::math
