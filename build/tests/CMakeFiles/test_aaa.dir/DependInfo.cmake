
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aaa/test_adequation.cpp" "tests/CMakeFiles/test_aaa.dir/aaa/test_adequation.cpp.o" "gcc" "tests/CMakeFiles/test_aaa.dir/aaa/test_adequation.cpp.o.d"
  "/root/repo/tests/aaa/test_algorithm_graph.cpp" "tests/CMakeFiles/test_aaa.dir/aaa/test_algorithm_graph.cpp.o" "gcc" "tests/CMakeFiles/test_aaa.dir/aaa/test_algorithm_graph.cpp.o.d"
  "/root/repo/tests/aaa/test_architecture_graph.cpp" "tests/CMakeFiles/test_aaa.dir/aaa/test_architecture_graph.cpp.o" "gcc" "tests/CMakeFiles/test_aaa.dir/aaa/test_architecture_graph.cpp.o.d"
  "/root/repo/tests/aaa/test_codegen.cpp" "tests/CMakeFiles/test_aaa.dir/aaa/test_codegen.cpp.o" "gcc" "tests/CMakeFiles/test_aaa.dir/aaa/test_codegen.cpp.o.d"
  "/root/repo/tests/aaa/test_multirate.cpp" "tests/CMakeFiles/test_aaa.dir/aaa/test_multirate.cpp.o" "gcc" "tests/CMakeFiles/test_aaa.dir/aaa/test_multirate.cpp.o.d"
  "/root/repo/tests/aaa/test_routing.cpp" "tests/CMakeFiles/test_aaa.dir/aaa/test_routing.cpp.o" "gcc" "tests/CMakeFiles/test_aaa.dir/aaa/test_routing.cpp.o.d"
  "/root/repo/tests/aaa/test_schedule.cpp" "tests/CMakeFiles/test_aaa.dir/aaa/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/test_aaa.dir/aaa/test_schedule.cpp.o.d"
  "/root/repo/tests/aaa/test_selection_rule.cpp" "tests/CMakeFiles/test_aaa.dir/aaa/test_selection_rule.cpp.o" "gcc" "tests/CMakeFiles/test_aaa.dir/aaa/test_selection_rule.cpp.o.d"
  "/root/repo/tests/aaa/test_tdma.cpp" "tests/CMakeFiles/test_aaa.dir/aaa/test_tdma.cpp.o" "gcc" "tests/CMakeFiles/test_aaa.dir/aaa/test_tdma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ecsim_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_blocks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_plants.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_aaa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_latency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_mathlib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
