// EXP-F5 (paper Fig. 5): translation of conditioning. A conditional control
// law (if..then..else) whose branches have different execution times induces
// temporal jitter on the I/O operations. Sweep the branch asymmetry and
// measure (a) the actuation jitter and (b) the control-performance impact.
// Expected shape: jitter == branch WCET spread; performance degrades as
// asymmetry grows.
#include "bench_common.hpp"

using namespace ecsim;

namespace {

void experiment() {
  bench::banner("EXP-F5", "Fig. 5 / Section 3.2.2",
                "Conditioning: branch-dependent execution times create I/O "
                "jitter that degrades control performance.");
  const translate::LoopSpec spec = bench::servo_loop();
  const translate::CosimOutcome ideal = translate::run_ideal_loop(spec);
  std::printf("ideal IAE = %.5f\n\n", ideal.iae);
  std::printf("%18s %16s %16s %10s %12s\n", "branches [ms]",
              "predicted jitter", "measured jitter", "IAE", "IAE/ideal");
  // Every branch-asymmetry point is an independent co-simulation: fan the
  // sweep out on the batch runner (results are in submission order and
  // bit-identical to the former serial loop).
  par::BatchRunner batch{par::BatchOptions{}};
  const std::vector<double> slow_branches = {0.5, 1.0, 2.0, 4.0, 8.0};
  const std::vector<translate::CosimOutcome> outs =
      batch.map<translate::CosimOutcome>(
          slow_branches.size(), [&](par::TaskContext& ctx) {
            translate::DistributedSpec dist;
            dist.arch = aaa::ArchitectureGraph::bus_architecture(1, 1.0);
            dist.wcet_sense = 1e-4;
            dist.wcet_act = 1e-4;
            dist.ctrl_branch_wcets = {0.5e-3, slow_branches[ctx.index] * 1e-3};
            dist.god.random_branches = true;
            return translate::run_distributed_loop(spec, dist);
          });
  for (std::size_t i = 0; i < slow_branches.size(); ++i) {
    const double slow_ms = slow_branches[i];
    const translate::CosimOutcome& out = outs[i];
    const double predicted = std::max(0.0, slow_ms * 1e-3 - 0.5e-3);
    char label[32];
    std::snprintf(label, sizeof label, "0.5 / %.1f", slow_ms);
    std::printf("%18s %16.4f %16.4f %10.5f %12.3f\n", label, 1e3 * predicted,
                1e3 * out.act_latency.jitter, out.iae, out.iae / ideal.iae);
  }
  std::printf("\nJitter equals the branch WCET spread (the schedule reserves "
              "the worst branch; the taken branch finishes earlier), and the "
              "loop deteriorates with asymmetry, as §3.2.2 predicts.\n\n");

  // Data-driven conditioning: the paper's Condition Mapping reads the error
  // signal; the slow branch runs only while |e| exceeds a threshold, so the
  // jitter is confined to the transient instead of persisting forever.
  std::printf("Data-driven Condition Mapping (slow branch iff |e| > 0.2):\n");
  std::printf("%18s %16s %10s %24s\n", "branches [ms]", "measured jitter",
              "IAE", "slow-branch periods [%]");
  const std::vector<double> mapped_branches = {2.0, 4.0, 8.0};
  const std::vector<translate::CosimOutcome> mapped_outs =
      batch.map<translate::CosimOutcome>(
          mapped_branches.size(), [&](par::TaskContext& ctx) {
            translate::DistributedSpec dist;
            dist.arch = aaa::ArchitectureGraph::bus_architecture(1, 1.0);
            dist.wcet_sense = 1e-4;
            dist.wcet_act = 1e-4;
            dist.ctrl_branch_wcets = {0.5e-3,
                                      mapped_branches[ctx.index] * 1e-3};
            dist.ctrl_condition_threshold = 0.2;
            return translate::run_distributed_loop(spec, dist);
          });
  for (std::size_t i = 0; i < mapped_branches.size(); ++i) {
    const translate::CosimOutcome& out = mapped_outs[i];
    std::size_t slow = 0;
    for (double l : out.act_latency.latencies) {
      if (l > 1.2e-3) ++slow;
    }
    char label[32];
    std::snprintf(label, sizeof label, "0.5 / %.1f", mapped_branches[i]);
    std::printf("%18s %16.4f %s %24.1f\n", label,
                1e3 * out.act_latency.jitter, bench::metric(out.iae).c_str(),
                100.0 * static_cast<double>(slow) /
                    static_cast<double>(out.act_latency.latencies.size()));
  }
  std::printf(
      "\nWith the mapping bound to the error, the slow branch only fires "
      "during the transient, so the conditioning penalty shrinks vs the "
      "random-branch case — UNTIL the slow branch's own latency keeps the "
      "error above the threshold: at 8 ms the loop locks into the slow mode "
      "(100%% slow periods) and destabilizes. This self-reinforcing overload "
      "is precisely the kind of implementation/control interaction the "
      "methodology surfaces before deployment.\n\n");
}

void BM_ConditionalCosim(benchmark::State& state) {
  const translate::LoopSpec spec = bench::servo_loop(0.01, 0.5);
  translate::DistributedSpec dist;
  dist.arch = aaa::ArchitectureGraph::bus_architecture(1, 1.0);
  dist.ctrl_branch_wcets = {0.5e-3, 4e-3};
  for (auto _ : state) {
    auto out = translate::run_distributed_loop(spec, dist);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ConditionalCosim)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  experiment();
  return bench::run_benchmarks(argc, argv);
}
