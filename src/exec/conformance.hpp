// Conformance checks between schedule (prediction), generated code and VM
// execution (reality): the quantitative form of the paper's claims that the
// generated code "satisfies the real-time constraints" and "is deadlock
// free".
#pragma once

#include <string>

#include "exec/executive_vm.hpp"

namespace ecsim::exec {

struct ConformanceReport {
  bool ok = true;
  std::string violations;  // empty when ok

  std::size_t checked_instances = 0;
  /// Max |VM instant - (schedule instant + k*period)| under WCET execution.
  Time max_time_error = 0.0;
};

/// With exec_time == WCET and period >= makespan and all algorithm sources
/// being sensors, every op instance of iteration k must start/end exactly at
/// its schedule instant shifted by k*period. Verifies that, plus per-
/// processor order preservation and non-overlap.
ConformanceReport check_wcet_conformance(const AlgorithmGraph& alg,
                                         const ArchitectureGraph& arch,
                                         const Schedule& sched,
                                         const VmResult& vm, Time period,
                                         double tol = 1e-9);

/// Checks that execution respects the schedule's per-processor total order
/// and never overlaps two ops on one processor — for *any* execution times.
ConformanceReport check_order_preservation(const AlgorithmGraph& alg,
                                           const ArchitectureGraph& arch,
                                           const Schedule& sched,
                                           const VmResult& vm,
                                           double tol = 1e-9);

/// Deadline analysis for overrun scenarios (actual execution times above
/// WCET, e.g. a mis-characterized operation): every instance of iteration k
/// must complete by (k+1) * period. Returns the violations — the quantity a
/// designer checks before trusting a WCET table.
struct DeadlineReport {
  std::size_t checked_instances = 0;
  std::size_t misses = 0;
  Time worst_overrun = 0.0;  // max completion - deadline over misses
  std::string details;       // first few misses, human-readable
};

DeadlineReport check_deadlines(const AlgorithmGraph& alg, const VmResult& vm,
                               Time period);

}  // namespace ecsim::exec
