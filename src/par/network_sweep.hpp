// Networked-control scenario sweeps (EXP-N1): the stability-vs-bus-load
// frontier of a distributed loop over realistic network media. Each cell
// builds a CAN- or TDMA-arbitrated bus architecture at one background-load
// level, runs the full AAA flow (adequation -> graph of delays ->
// co-simulation) to *measure* the actuation-latency distribution, then
// retunes the LQR against the measured delay (Schouten et al.: tune against
// the measured distribution, not the nominal one) and re-runs with the
// delay-aware controller. Cells run on a par::BatchRunner with
// serial-identical results: every quantity inside a cell is a pure function
// of (model, seed, scenario), so the grid is bit-identical for any thread
// count — the property the sweep service's result cache relies on.
#pragma once

#include <string>
#include <vector>

#include "mathlib/matrix.hpp"
#include "par/batch_runner.hpp"
#include "translate/cosim.hpp"

namespace ecsim::sweep {

/// Network scenario kind: the column axis of the EXP-N1 grid.
enum class NetworkScenario {
  kCan,   // CAN-style ID-based priority arbitration, non-preemptive frames
  kTdma,  // TDMA/FlexRay owner slots on a fixed round
};

/// Stable scenario code used in CSV output and cache keys (0 = can,
/// 1 = tdma).
double scenario_code(NetworkScenario s);
/// Inverse of scenario_code; throws std::invalid_argument on a bad code.
NetworkScenario scenario_of_code(double code);
const char* to_string(NetworkScenario s);
/// Parse "can" / "tdma"; throws std::invalid_argument otherwise.
NetworkScenario parse_scenario(const std::string& name);

/// One evaluated network point. `stable` reflects the *retuned* loop (the
/// frontier reports what a delay-aware design achieves); `schedulable` is
/// false when the adequation no longer fits the period at this load —
/// outside the feasible region entirely.
struct NetworkCell {
  double bus_load = 0.0;  // row axis: background-traffic load in [0, 1)
  double scenario = 0.0;  // column axis: scenario_code(...)
  double act_latency_mean = 0.0;  // measured La mean on the nominal run
  double act_jitter = 0.0;        // measured La peak-to-peak
  double nominal_iae = 0.0;       // nominally-tuned controller
  double nominal_cost = 0.0;
  double retuned_iae = 0.0;  // delay-aware controller, same network
  double retuned_cost = 0.0;
  /// 1 - spectral radius of the delay-augmented closed loop the retune
  /// designed (positive = stable design, shrinking as bus load grows).
  double stability_margin = 0.0;
  bool schedulable = true;
  bool stable = true;
};

/// Bus-load × scenario grid. The same architecture shape is rebuilt per
/// cell: `processors` CPUs on one bus of `bus_bandwidth`/`bus_latency`,
/// arbitrated per the column's scenario, with the row's background load.
struct NetworkGrid {
  translate::LoopSpec loop;         // nominal design; controller retuned
  translate::DistributedSpec dist;  // base; arch replaced per cell
  std::vector<double> bus_loads;    // rows: background load in [0, 1)
  std::vector<NetworkScenario> scenarios;  // columns
  std::size_t processors = 2;
  double bus_bandwidth = 1e5;
  double bus_latency = 0.0;
  /// CAN scenario: worst-case non-preemptive blocking (s).
  double can_blocking = 5e-4;
  /// TDMA scenario: slot period (s) and owner slots per round.
  double tdma_slot = 5e-4;
  std::size_t tdma_slots = 2;
  /// Delay-aware LQR redesign inputs: continuous design plant (SISO output
  /// for the reference gain) and weights on the physical state.
  control::StateSpace design_plant;
  math::Matrix q;
  math::Matrix r;
};

/// Row-major over bus_loads × scenarios, bit-identical for any thread
/// count. A cell whose schedule no longer fits the period is returned with
/// schedulable = stable = false instead of throwing.
std::vector<NetworkCell> run_network_sweep(const NetworkGrid& grid,
                                           const par::BatchOptions& batch = {});

/// Machine-readable dump, one row per cell, header included.
std::string to_csv(const std::vector<NetworkCell>& cells);

/// The canonical EXP-N1 grid: the Cervin DC-servo loop of servo_loop()
/// distributed over 2 processors (controller bound to P1, so every message
/// crosses the bus), swept over 5 background-load levels × {can, tdma}.
/// Shared verbatim by the CLI verb, the sweep service and bench_n1 so their
/// cells hit the same cache keys.
NetworkGrid network_servo_grid(double ts = 0.01, double t_end = 1.0);

}  // namespace ecsim::sweep
