// Shared random-workload generators for property tests: layered random DAGs
// (always acyclic), random bus architectures, and random hybrid block
// diagrams for the simulation engine.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "aaa/algorithm_graph.hpp"
#include "aaa/architecture_graph.hpp"
#include "blocks/continuous.hpp"
#include "blocks/discrete.hpp"
#include "blocks/event_blocks.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/probe.hpp"
#include "blocks/sample_hold.hpp"
#include "blocks/sources.hpp"
#include "blocks/synchronization.hpp"
#include "mathlib/rng.hpp"
#include "sim/model.hpp"

namespace ecsim::testing {

inline aaa::AlgorithmGraph random_dag(math::Rng& rng, std::size_t n_ops,
                                      double period = 1.0) {
  aaa::AlgorithmGraph alg("random", period);
  std::vector<aaa::OpId> ids;
  for (std::size_t i = 0; i < n_ops; ++i) {
    aaa::Operation op;
    op.name = "op" + std::to_string(i);
    op.kind = i == 0 ? aaa::OpKind::kSensor
                     : (i + 1 == n_ops ? aaa::OpKind::kActuator
                                       : aaa::OpKind::kCompute);
    op.wcet["cpu"] = rng.uniform(1e-3, 1e-2);
    ids.push_back(alg.add_operation(std::move(op)));
  }
  // Edges only forward in index order: acyclic by construction.
  for (std::size_t j = 1; j < n_ops; ++j) {
    const std::size_t n_preds =
        1 + static_cast<std::size_t>(rng.uniform_int(0, 1));
    for (std::size_t p = 0; p < n_preds && p < j; ++p) {
      const auto from =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<long>(j) - 1));
      bool exists = false;
      for (const aaa::DataDep& d : alg.dependencies()) {
        if (d.from == ids[from] && d.to == ids[j]) exists = true;
      }
      if (!exists) {
        alg.add_dependency(ids[from], ids[j], rng.uniform(1.0, 16.0));
      }
    }
  }
  return alg;
}

inline aaa::ArchitectureGraph random_bus(math::Rng& rng,
                                         std::size_t max_procs = 4) {
  const auto n =
      static_cast<std::size_t>(rng.uniform_int(1, static_cast<long>(max_procs)));
  return aaa::ArchitectureGraph::bus_architecture(
      n, rng.uniform(1e3, 1e5), rng.uniform(0.0, 1e-4));
}

/// Random hybrid block diagram exercising every engine mechanism at once:
/// time-varying sources, feedthrough math chains, continuous states
/// (including a feedback loop through an integrator), event-clocked discrete
/// blocks, event-delay chains with random durations, sampled noise, and
/// probes in both periodic and triggered mode. Data wiring is forward-only
/// (plus feedback closed through non-feedthrough states), so the diagram is
/// always free of algebraic loops.
inline sim::Model random_block_model(math::Rng& rng) {
  namespace bl = ecsim::blocks;
  sim::Model m;
  std::size_t id = 0;
  auto name = [&](const char* stem) {
    return std::string(stem) + "_" + std::to_string(id++);
  };

  // Width-1 data outputs available for forward wiring, and live event
  // sources (block, event output port).
  std::vector<const sim::Block*> signals;
  std::vector<std::pair<const sim::Block*, std::size_t>> event_outs;
  auto any_signal = [&]() -> const sim::Block& {
    return *signals[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<long>(signals.size()) - 1))];
  };
  auto any_event = [&]() {
    return event_outs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<long>(event_outs.size()) - 1))];
  };

  // --- sources (at least one of each flavour of time dependence) -----------
  signals.push_back(&m.add<bl::Constant>(name("const"), rng.uniform(-2.0, 2.0)));
  signals.push_back(&m.add<bl::Sine>(name("sine"), rng.uniform(0.5, 2.0),
                                     rng.uniform(0.5, 4.0),
                                     rng.uniform(0.0, 3.14)));
  signals.push_back(&m.add<bl::Step>(name("step"), 0.0, rng.uniform(0.5, 2.0),
                                     rng.uniform(0.1, 0.6)));
  if (rng.uniform(0.0, 1.0) < 0.5) {
    signals.push_back(&m.add<bl::Pulse>(name("pulse"), -1.0, 1.0,
                                        rng.uniform(0.2, 0.5), 0.5));
  }

  std::vector<const sim::Block*> clocks;
  const std::size_t n_clocks =
      1 + static_cast<std::size_t>(rng.uniform_int(0, 1));
  for (std::size_t c = 0; c < n_clocks; ++c) {
    auto& clk = m.add<bl::Clock>(name("clk"), rng.uniform(0.05, 0.2),
                                 rng.uniform(0.0, 0.05));
    clocks.push_back(&clk);
    event_outs.emplace_back(&clk, 0);
  }

  // --- continuous core: driven integrator + a closed feedback loop ---------
  {
    auto& integ = m.add<bl::Integrator>(name("integ"), rng.uniform(-1.0, 1.0));
    m.connect(any_signal(), 0, integ, 0);
    signals.push_back(&integ);

    // dx/dt = -k x: feedback through the (non-feedthrough) integrator.
    auto& fb = m.add<bl::Integrator>(name("fb"), 1.0);
    auto& fbg = m.add<bl::Gain>(name("fbg"), -rng.uniform(0.5, 2.0));
    m.connect(fb, 0, fbg, 0);
    m.connect(fbg, 0, fb, 0);
    signals.push_back(&fb);

    if (rng.uniform(0.0, 1.0) < 0.7) {
      auto& plant = m.add<bl::StateSpaceCont>(
          name("plant"), math::Matrix{{-1.0, 0.5}, {0.0, -2.0}},
          math::Matrix{{0.0}, {1.0}}, math::Matrix{{1.0, 0.0}},
          math::Matrix{{rng.uniform(0.0, 1.0) < 0.5 ? 0.3 : 0.0}});
      m.connect(any_signal(), 0, plant, 0);
      signals.push_back(&plant);
    }
  }

  // --- random feedthrough chains -------------------------------------------
  const std::size_t n_math =
      3 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  for (std::size_t i = 0; i < n_math; ++i) {
    switch (rng.uniform_int(0, 3)) {
      case 0: {
        auto& g = m.add<bl::Gain>(name("gain"), rng.uniform(-2.0, 2.0));
        m.connect(any_signal(), 0, g, 0);
        signals.push_back(&g);
        break;
      }
      case 1: {
        auto& s = m.add<bl::Sum>(name("sum"), std::vector<double>{1.0, -1.0});
        m.connect(any_signal(), 0, s, 0);
        m.connect(any_signal(), 0, s, 1);
        signals.push_back(&s);
        break;
      }
      case 2: {
        auto& sat = m.add<bl::Saturation>(name("sat"), -1.5, 1.5);
        m.connect(any_signal(), 0, sat, 0);
        signals.push_back(&sat);
        break;
      }
      default: {
        auto& q = m.add<bl::Quantizer>(name("quant"), 0.125);
        m.connect(any_signal(), 0, q, 0);
        signals.push_back(&q);
        break;
      }
    }
  }

  // --- event-processing chains ---------------------------------------------
  const std::size_t n_delays =
      1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  for (std::size_t i = 0; i < n_delays; ++i) {
    auto& d = rng.uniform(0.0, 1.0) < 0.5
                  ? m.add<bl::EventDelay>(name("delay"),
                                          rng.uniform(0.001, 0.02))
                  : m.add<bl::EventDelay>(
                        name("jdelay"),
                        bl::uniform_duration(0.001, rng.uniform(0.005, 0.03)));
    const auto [src, port] = any_event();
    m.connect_event(*src, port, d, d.event_in());
    event_outs.emplace_back(&d, d.event_out());
  }
  if (rng.uniform(0.0, 1.0) < 0.5) {
    auto& div = m.add<bl::EventDivider>(
        name("div"), 2 + static_cast<std::size_t>(rng.uniform_int(0, 2)));
    const auto [src, port] = any_event();
    m.connect_event(*src, port, div, div.event_in());
    event_outs.emplace_back(&div, div.event_out());
  }

  // --- sampled noise feeding a discrete path -------------------------------
  {
    auto& noise = m.add<bl::NoiseHold>(name("noise"), 0.0, 0.3);
    const auto [src, port] = any_event();
    m.connect_event(*src, port, noise, 0);
    event_outs.emplace_back(&noise, noise.done_event_out());
    signals.push_back(&noise);
  }

  // --- discrete (event-activated) blocks -----------------------------------
  {
    auto& sh = m.add<bl::SampleHold>(name("sh"), 1);
    m.connect(any_signal(), 0, sh, 0);
    const auto [src, port] = any_event();
    m.connect_event(*src, port, sh, sh.event_in());
    event_outs.emplace_back(&sh, sh.done_event_out());
    signals.push_back(&sh);

    auto& ctrl = m.add<bl::StateSpaceDisc>(
        name("ctrl"), math::Matrix{{rng.uniform(0.2, 0.9)}},
        math::Matrix{{1.0}}, math::Matrix{{rng.uniform(0.5, 1.5)}},
        math::Matrix{{rng.uniform(0.0, 1.0) < 0.5 ? 0.2 : 0.0}});
    m.connect(sh, 0, ctrl, 0);
    m.connect_event(sh, sh.done_event_out(), ctrl, ctrl.event_in());
    event_outs.emplace_back(&ctrl, ctrl.done_event_out());
    signals.push_back(&ctrl);

    auto& ud = m.add<bl::UnitDelay>(name("ud"), 0.0);
    m.connect(any_signal(), 0, ud, 0);
    const auto [usrc, uport] = any_event();
    m.connect_event(*usrc, uport, ud, 0);
    signals.push_back(&ud);
  }

  // --- leaves: counters, synchronization, probes ---------------------------
  {
    auto& n = m.add<bl::EventCounter>(name("count"));
    const auto [src, port] = any_event();
    m.connect_event(*src, port, n, 0);
    signals.push_back(&n);
  }
  if (event_outs.size() >= 2) {
    auto& sync = m.add<bl::Synchronization>(name("sync"), 2);
    const auto [a, ap] = any_event();
    const auto [b, bp] = any_event();
    m.connect_event(*a, ap, sync, 0);
    m.connect_event(*b, bp, sync, 1);
    auto& fired = m.add<bl::EventCounter>(name("fired"));
    m.connect_event(sync, sync.event_out(), fired, 0);
  }

  const std::size_t n_probes =
      2 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  for (std::size_t i = 0; i < n_probes; ++i) {
    if (rng.uniform(0.0, 1.0) < 0.5) {
      auto& p = m.add<bl::Probe>(name("probe"), 1, rng.uniform(0.01, 0.1));
      m.connect(any_signal(), 0, p, 0);
    } else {
      auto& p = m.add<bl::Probe>(name("tprobe"), 1, 0.0);
      m.connect(any_signal(), 0, p, 0);
      const auto [src, port] = any_event();
      m.connect_event(*src, port, p, 0);
    }
  }

  return m;
}

}  // namespace ecsim::testing
