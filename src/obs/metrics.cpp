#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ecsim::obs {

void Histogram::observe(double v) {
  if (v < 0.0) v = 0.0;
  std::size_t b = 0;
  if (v > 1.0) {
    b = static_cast<std::size_t>(std::ceil(std::log2(v)));
    if (b >= kBuckets) b = kBuckets - 1;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += v;
  ++buckets_[b];
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_[i];
}

double Histogram::bucket_bound(std::size_t i) {
  return std::ldexp(1.0, static_cast<int>(i));  // 2^i; bucket 0 covers <= 1
}

double Histogram::quantile(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  // Smallest bucket bound whose cumulative count reaches q*N — an upper
  // bound on the true quantile, exact to within the log2 bucket width. The
  // recorded min/max tighten the extreme buckets.
  const double rank = q * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += buckets_[i];
    if (static_cast<double>(cum) >= rank) {
      const double bound = bucket_bound(i);
      return bound > max_ ? max_ : bound;
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (&other == this) {
    throw std::invalid_argument("Histogram::merge: cannot merge into self");
  }
  // Snapshot `other` under its own lock first so the two locks are never
  // held together (lock-order safety when registries merge disjoint peers).
  std::uint64_t ocount;
  double osum, omin, omax;
  std::uint64_t obuckets[kBuckets];
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    ocount = other.count_;
    osum = other.sum_;
    omin = other.min_;
    omax = other.max_;
    for (std::size_t i = 0; i < kBuckets; ++i) obuckets[i] = other.buckets_[i];
  }
  if (ocount == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0 || omin < min_) min_ = omin;
  if (count_ == 0 || omax > max_) max_ = omax;
  count_ += ocount;
  sum_ += osum;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += obuckets[i];
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  for (auto& b : buckets_) b = 0;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_[name];
}

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << c.value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << name
       << "\": " << num(g.value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": "
       << h.count() << ", \"sum\": " << num(h.sum()) << ", \"min\": "
       << num(h.min()) << ", \"max\": " << num(h.max()) << ", \"mean\": "
       << num(h.mean()) << ", \"buckets\": [";
    bool fb = true;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h.bucket(i);
      if (n == 0) continue;
      os << (fb ? "" : ", ") << "{\"le\": " << num(Histogram::bucket_bound(i))
         << ", \"count\": " << n << "}";
      fb = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::string MetricsRegistry::to_csv() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "kind,name,count,sum,min,max,mean\n";
  for (const auto& [name, c] : counters_) {
    os << "counter," << name << ",," << c.value() << ",,,\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge," << name << ",," << num(g.value()) << ",,,\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "histogram," << name << "," << h.count() << "," << num(h.sum())
       << "," << num(h.min()) << "," << num(h.max()) << "," << num(h.mean())
       << "\n";
  }
  return os.str();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  if (&other == this) {
    // Self-merge would double every instrument (and self-deadlock once the
    // apply phase takes this->mu_ for lookups) — reject it outright.
    throw std::invalid_argument(
        "MetricsRegistry::merge: cannot merge a registry into itself");
  }
  // Snapshot the other registry's instrument list under its lock, then
  // apply without it: counter()/gauge()/histogram() take this->mu_ and the
  // instrument addresses in the node-based maps are stable.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> hists;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    for (const auto& [name, c] : other.counters_) {
      counters.emplace_back(name, c.value());
    }
    for (const auto& [name, g] : other.gauges_) {
      gauges.emplace_back(name, g.value());
    }
    for (const auto& [name, h] : other.histograms_) {
      hists.emplace_back(name, &h);
    }
  }
  for (const auto& [name, v] : counters) counter(name).add(v);
  for (const auto& [name, v] : gauges) gauge(name).max_of(v);
  for (const auto& [name, h] : hists) histogram(name).merge(*h);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

}  // namespace ecsim::obs
