#include "svc/protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <unistd.h>

#include "mathlib/rng.hpp"

namespace ecsim::svc {
namespace {

double from_bits(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Doubles across the whole encodable range: normals of mixed magnitude,
/// zeros, denormals, infinities and NaN payloads — the codec ships bit
/// patterns, so all of these must survive.
std::vector<double> awkward_doubles(std::size_t n, std::uint64_t seed) {
  math::Rng rng(seed);
  std::vector<double> v;
  v.reserve(n);
  const double specials[] = {0.0, -0.0, 5e-324,
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::nan("0x5ca1ab1e")};
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(0.2)) {
      v.push_back(specials[rng.uniform_int(0, 5)]);
    } else {
      v.push_back(std::ldexp(rng.uniform(-1.0, 1.0),
                             static_cast<int>(rng.uniform_int(-300, 300))));
    }
  }
  return v;
}

TEST(ProtocolFraming, RoundTripsOverAPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Largest payload stays under the 64 KiB pipe buffer: writer and reader
  // are the same thread here, so a frame must fit without blocking.
  const std::string payloads[] = {"", "x", std::string("\0\n\xff", 3),
                                  std::string(30000, 'q')};
  for (const std::string& p : payloads) {
    ASSERT_TRUE(write_frame(fds[1], p));
    std::string got;
    ASSERT_TRUE(read_frame(fds[0], got));
    EXPECT_EQ(got, p);
  }
  ::close(fds[1]);
  std::string got;
  EXPECT_FALSE(read_frame(fds[0], got));  // EOF
  ::close(fds[0]);
}

TEST(ProtocolFraming, RejectsOversizedLengthPrefix) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Length prefix far beyond kMaxFrameBytes, little-endian.
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0x7f};
  ASSERT_EQ(::write(fds[1], prefix, 4), 4);
  ::close(fds[1]);
  std::string got;
  EXPECT_FALSE(read_frame(fds[0], got));
  ::close(fds[0]);
}

TEST(ProtocolFields, RoundTripsBinaryValues) {
  Fields f;
  f.set("spec", "a b\nc d\n\n[section]\n");
  f.set("blob", std::string("\0\x01\xfe\n\n ", 6));
  f.set("empty", "");
  f.set_u64("n", 18446744073709551615ULL);
  f.set_bits("x", -0.0);
  f.set_list("axes", {0.0, 0.1, 1e-300});
  Fields g;
  ASSERT_TRUE(Fields::parse(f.serialize(), g));
  ASSERT_EQ(g.size(), 6u);
  EXPECT_EQ(*g.get("spec"), "a b\nc d\n\n[section]\n");
  EXPECT_EQ(*g.get("blob"), std::string("\0\x01\xfe\n\n ", 6));
  EXPECT_EQ(*g.get("empty"), "");
  std::uint64_t n = 0;
  ASSERT_TRUE(g.get_u64("n", n));
  EXPECT_EQ(n, 18446744073709551615ULL);
  double x = 1.0;
  ASSERT_TRUE(g.get_bits("x", x));
  EXPECT_TRUE(same_bits(x, -0.0));
  std::vector<double> axes;
  ASSERT_TRUE(g.get_list("axes", axes));
  ASSERT_EQ(axes.size(), 3u);
  EXPECT_TRUE(same_bits(axes[2], 1e-300));
  EXPECT_EQ(g.get("missing"), nullptr);
}

TEST(ProtocolFields, ParseRejectsTruncation) {
  Fields f;
  f.set("k", "value");
  const std::string wire = f.serialize();
  Fields g;
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    EXPECT_FALSE(Fields::parse(wire.substr(0, cut), g))
        << "accepted truncation at " << cut;
  }
}

TEST(ProtocolFields, ParseRejectsHostileLengths) {
  // A u64 length near ULLONG_MAX wraps `nl + 1 + len + 1`: before the
  // subtraction-form bound this was an out-of-bounds read, and with
  // len == ULLONG_MAX the cursor wrapped into a non-terminating loop.
  Fields g;
  EXPECT_FALSE(Fields::parse("k 18446744073709551615\nv\n", g));
  EXPECT_FALSE(Fields::parse("k 18446744073709551614\nv\n", g));
  EXPECT_FALSE(Fields::parse("k 18446744073709551613\nv\n", g));
  // Off-by-one probing: length one past the actual payload.
  EXPECT_FALSE(Fields::parse("k 2\nv\n", g));
  // Length line as the last bytes of the frame (avail == 0).
  EXPECT_FALSE(Fields::parse("k 0\n", g));
}

TEST(ProtocolCodec, SweepCellBitExactRoundTrip) {
  const std::vector<double> xs = awkward_doubles(11 * 50, 42);
  for (std::size_t t = 0; t < 50; ++t) {
    sweep::SweepCell c;
    double* fields[] = {&c.la_frac,       &c.jitter_frac, &c.bus_bandwidth,
                        &c.wcet_scale,    &c.iae,         &c.ise,
                        &c.itae,          &c.cost,        &c.overshoot_pct,
                        &c.act_latency_mean, &c.act_jitter};
    for (std::size_t i = 0; i < 11; ++i) *fields[i] = xs[t * 11 + i];
    c.stable = (t % 2) == 0;
    sweep::SweepCell d;
    ASSERT_TRUE(decode_cell(encode_cell(c), d));
    for (std::size_t i = 0; i < 11; ++i) {
      EXPECT_TRUE(same_bits(*fields[i], xs[t * 11 + i]));
    }
    EXPECT_TRUE(same_bits(d.cost, c.cost));
    EXPECT_TRUE(same_bits(d.iae, c.iae));
    EXPECT_TRUE(same_bits(d.act_jitter, c.act_jitter));
    EXPECT_EQ(d.stable, c.stable);
  }
}

TEST(ProtocolCodec, FaultCellBitExactRoundTrip) {
  const std::vector<double> xs = awkward_doubles(7, 7);
  sweep::FaultCell c;
  c.loss_rate = xs[0];
  c.delay = xs[1];
  c.iae = xs[2];
  c.ise = xs[3];
  c.itae = xs[4];
  c.cost = xs[5];
  c.overshoot_pct = xs[6];
  c.fault_seed = 0xdeadbeefcafef00dULL;
  c.messages_lost = 123456;
  c.messages_deferred = 7;
  c.stable = false;
  sweep::FaultCell d;
  ASSERT_TRUE(decode_cell(encode_cell(c), d));
  EXPECT_TRUE(same_bits(d.loss_rate, c.loss_rate));
  EXPECT_TRUE(same_bits(d.cost, c.cost));
  EXPECT_TRUE(same_bits(d.overshoot_pct, c.overshoot_pct));
  EXPECT_EQ(d.fault_seed, c.fault_seed);
  EXPECT_EQ(d.messages_lost, c.messages_lost);
  EXPECT_EQ(d.messages_deferred, c.messages_deferred);
  EXPECT_FALSE(d.stable);
}

TEST(ProtocolCodec, NetworkCellBitExactRoundTrip) {
  const std::vector<double> xs = awkward_doubles(9 * 20, 23);
  for (std::size_t t = 0; t < 20; ++t) {
    sweep::NetworkCell c;
    double* fields[] = {&c.bus_load,    &c.scenario,     &c.act_latency_mean,
                        &c.act_jitter,  &c.nominal_iae,  &c.nominal_cost,
                        &c.retuned_iae, &c.retuned_cost, &c.stability_margin};
    for (std::size_t i = 0; i < 9; ++i) *fields[i] = xs[t * 9 + i];
    c.schedulable = (t % 2) == 0;
    c.stable = (t % 3) == 0;
    sweep::NetworkCell d;
    ASSERT_TRUE(decode_cell(encode_cell(c), d));
    double* back[] = {&d.bus_load,    &d.scenario,     &d.act_latency_mean,
                      &d.act_jitter,  &d.nominal_iae,  &d.nominal_cost,
                      &d.retuned_iae, &d.retuned_cost, &d.stability_margin};
    for (std::size_t i = 0; i < 9; ++i) {
      EXPECT_TRUE(same_bits(*back[i], xs[t * 9 + i]));
    }
    EXPECT_EQ(d.schedulable, c.schedulable);
    EXPECT_EQ(d.stable, c.stable);
  }
  // Tag letters keep the cell kinds apart on the wire.
  sweep::NetworkCell n;
  sweep::SweepCell s;
  EXPECT_FALSE(decode_cell(encode_cell(s), n));
  EXPECT_FALSE(decode_cell(encode_cell(n), s));
}

TEST(ProtocolRequest, SweepNetworkRoundTripAndScenarioValidation) {
  Request r;
  r.verb = Verb::kSweepNetwork;
  r.ts = 0.01;
  r.t_end = 1.0;
  r.seed = 1;
  r.rows = {0.0, 0.4, 0.8};
  r.cols = {0.0, 1.0};  // scenario codes: can, tdma
  Request d;
  std::string err;
  ASSERT_TRUE(Request::from_fields(r.to_fields(), d, err)) << err;
  EXPECT_EQ(d.verb, Verb::kSweepNetwork);
  EXPECT_EQ(d.rows, r.rows);
  EXPECT_EQ(d.cols, r.cols);
  EXPECT_EQ(d.units(), 6u);
  Verb v;
  EXPECT_TRUE(parse_verb("sweep_network", v));
  EXPECT_EQ(v, Verb::kSweepNetwork);
  EXPECT_EQ(std::string(to_string(Verb::kSweepNetwork)), "sweep_network");
  // Columns must be valid scenario codes.
  r.cols = {0.0, 2.0};
  EXPECT_FALSE(Request::from_fields(r.to_fields(), d, err));
  EXPECT_NE(err.find("scenario"), std::string::npos) << err;
}

TEST(ProtocolCodec, MonteCarloResultRoundTrip) {
  sweep::MonteCarloResult r;
  r.trials = 200;
  r.deadlocks = 3;
  r.makespan = {197, 1.5, 0.25, 1.0, 2.5, 1.4, 2.2};
  sweep::MonteCarloOpStats op;
  op.op = 4;
  op.sensor = true;
  op.name = "sense";
  op.mean_latency = {197, 1e-4, 2e-5, 5e-5, 3e-4, 9e-5, 2e-4};
  op.max_latency = {197, 2e-4, 1e-5, 9e-5, 4e-4, 2e-4, 3e-4};
  op.jitter = {197, 1e-5, 0.0, 1e-5, 1e-5, 1e-5, 1e-5};
  r.io_ops.push_back(op);
  op.op = 9;
  op.sensor = false;
  op.name = "act";
  r.io_ops.push_back(op);

  sweep::MonteCarloResult d;
  ASSERT_TRUE(decode_mc(encode_mc(r), d));
  EXPECT_EQ(d.trials, 200u);
  EXPECT_EQ(d.deadlocks, 3u);
  EXPECT_EQ(d.makespan.count, 197u);
  EXPECT_TRUE(same_bits(d.makespan.p95, 2.2));
  ASSERT_EQ(d.io_ops.size(), 2u);
  EXPECT_EQ(d.io_ops[0].name, "sense");
  EXPECT_TRUE(d.io_ops[0].sensor);
  EXPECT_EQ(d.io_ops[1].name, "act");
  EXPECT_FALSE(d.io_ops[1].sensor);
  EXPECT_TRUE(same_bits(d.io_ops[0].mean_latency.max, 3e-4));
  // Timing fields are deliberately NOT shipped: a cached result is the
  // statistics, never the original computation's wall clock.
  EXPECT_EQ(d.wall_s, 0.0);
  EXPECT_EQ(d.batch_width, 1u);
}

TEST(ProtocolCodec, BlobListRoundTrip) {
  const std::vector<std::string> blobs = {"", "a", std::string("x\ny\0z", 5),
                                          std::string(5000, 'b')};
  std::vector<std::string> got;
  ASSERT_TRUE(decode_blob_list(encode_blob_list(blobs), got));
  EXPECT_EQ(got, blobs);
  EXPECT_FALSE(decode_blob_list("2\n1\na\n", got));  // count overruns data
}

TEST(ProtocolCodec, BlobListRejectsHostileCountsAndLengths) {
  // A corrupted reply must fail the decode, not throw from reserve() or
  // read out of bounds via a wrapping `at + len + 1`.
  std::vector<std::string> got;
  EXPECT_FALSE(decode_blob_list("18446744073709551615\n", got));
  EXPECT_FALSE(decode_blob_list("1000000000000\n", got));
  EXPECT_FALSE(decode_blob_list("1\n18446744073709551615\nx\n", got));
  EXPECT_FALSE(decode_blob_list("1\n18446744073709551614\nx\n", got));
  EXPECT_FALSE(decode_blob_list("1\n2\nx\n", got));  // len one past payload
}

TEST(ProtocolCodec, MonteCarloRejectsHostileOpCount) {
  // Valid header (trials, deadlocks, makespan summary) followed by an op
  // count far beyond the remaining tokens: must fail before reserve().
  std::string s = "M 1 0 1";
  for (int i = 0; i < 6; ++i) {
    s += ' ';
    s += bits_of(0.0);
  }
  s += " 18446744073709551615";
  sweep::MonteCarloResult r;
  EXPECT_FALSE(decode_mc(s, r));
}

TEST(ProtocolRequest, RoundTripsEveryWorkVerb) {
  for (Verb verb : {Verb::kSweepTiming, Verb::kSweepArch, Verb::kFaultSweep,
                    Verb::kFaultMc, Verb::kVmMc}) {
    Request r;
    r.verb = verb;
    r.backend = "native";
    r.ts = 0.005;
    r.t_end = 0.75;
    r.seed = 99;
    r.rows = {0.0, 0.25, 0.5};
    r.cols = {0.1, 0.2};
    r.loss = 0.15;
    r.trials = 17;
    r.iterations = 40;
    r.spec_text = "[algorithm]\nname x\n";
    Request d;
    std::string err;
    ASSERT_TRUE(Request::from_fields(r.to_fields(), d, err)) << err;
    EXPECT_EQ(d.verb, verb);
    EXPECT_EQ(d.backend, "native");
    EXPECT_TRUE(same_bits(d.ts, r.ts));
    EXPECT_TRUE(same_bits(d.t_end, r.t_end));
    EXPECT_EQ(d.seed, 99u);
    switch (verb) {
      case Verb::kSweepTiming:
      case Verb::kSweepArch:
      case Verb::kFaultSweep:
        EXPECT_EQ(d.rows, r.rows);
        EXPECT_EQ(d.cols, r.cols);
        EXPECT_EQ(d.units(), 6u);
        break;
      case Verb::kFaultMc:
        EXPECT_TRUE(same_bits(d.loss, 0.15));
        EXPECT_EQ(d.units(), 17u);
        break;
      default:
        EXPECT_EQ(d.spec_text, r.spec_text);
        EXPECT_EQ(d.iterations, 40u);
        EXPECT_EQ(d.units(), 1u);
        break;
    }
  }
}

TEST(ProtocolRequest, RejectsMalformedRequests) {
  Request d;
  std::string err;
  Fields f;
  EXPECT_FALSE(Request::from_fields(f, d, err));  // no verb
  f.set("verb", "sweep_timing");
  EXPECT_FALSE(Request::from_fields(f, d, err));  // no axes
  Fields bad_backend;
  bad_backend.set("verb", "ping");
  bad_backend.set("backend", "gpu");
  EXPECT_FALSE(Request::from_fields(bad_backend, d, err));
  Verb v;
  EXPECT_FALSE(parse_verb("sweeep", v));
  EXPECT_TRUE(parse_verb("kill_worker", v));
  EXPECT_EQ(v, Verb::kKillWorker);
}

TEST(ProtocolMeta, RoundTrips) {
  ResponseMeta m;
  m.ok = true;
  m.model_hash = "0x1234";
  m.cache_hits = 30;
  m.cache_units = 35;
  m.served_from_cache = false;
  m.redispatches = 2;
  Fields f;
  meta_to_fields(m, f);
  const ResponseMeta d = meta_from_fields(f);
  EXPECT_TRUE(d.ok);
  EXPECT_EQ(d.model_hash, "0x1234");
  EXPECT_EQ(d.cache_hits, 30u);
  EXPECT_EQ(d.cache_units, 35u);
  EXPECT_FALSE(d.served_from_cache);
  EXPECT_EQ(d.redispatches, 2u);
}

TEST(ProtocolBits, DoubleBitHelpersAreExact) {
  for (double v : awkward_doubles(100, 3)) {
    double back = 0.0;
    ASSERT_TRUE(double_of(bits_of(v), back));
    EXPECT_TRUE(same_bits(v, back));
  }
  const double weird = from_bits(0x7ff80000deadbeefULL);  // NaN payload
  double back = 0.0;
  ASSERT_TRUE(double_of(bits_of(weird), back));
  EXPECT_TRUE(same_bits(weird, back));
}

}  // namespace
}  // namespace ecsim::svc
