file(REMOVE_RECURSE
  "CMakeFiles/bench_g1_codegen.dir/bench_g1_codegen.cpp.o"
  "CMakeFiles/bench_g1_codegen.dir/bench_g1_codegen.cpp.o.d"
  "bench_g1_codegen"
  "bench_g1_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_g1_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
