file(REMOVE_RECURSE
  "libecsim_blocks.a"
)
