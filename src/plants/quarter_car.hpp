// Quarter-car active suspension — the automotive workload motivating the
// paper's industrial context (ref [4]: Sensors & Actuators for Advanced
// Automotive Applications).
#pragma once

#include "control/state_space.hpp"

namespace ecsim::plants {

struct QuarterCarParams {
  double sprung_mass = 300.0;     // ms: body quarter mass [kg]
  double unsprung_mass = 40.0;    // mu: wheel assembly [kg]
  double spring = 16000.0;        // ks [N/m]
  double damper = 1000.0;         // bs [N s/m]
  double tire_stiffness = 190000.0;  // kt [N/m]
};

/// States: [body disp zs, body vel, wheel disp zu, wheel vel];
/// inputs: [actuator force u, road displacement zr];
/// outputs: [body displacement, suspension deflection zs - zu].
control::StateSpace quarter_car(const QuarterCarParams& p = {});

}  // namespace ecsim::plants
