// Discrete (event-activated) dynamic blocks: the controller side. Following
// Scicos semantics, these blocks execute when an activation event arrives on
// their event input and hold their outputs in between. Each also exposes a
// "done" event output emitted on completion, which the graph-of-delays
// translation uses for sequencing (paper §3.2.1).
#pragma once

#include "mathlib/matrix.hpp"
#include "sim/block.hpp"

namespace ecsim::blocks {

using sim::Block;
using sim::Context;
using sim::Time;

/// Discrete LTI system: on activation, y = C x + D u then x <- A x + B u.
class StateSpaceDisc : public Block {
 public:
  StateSpaceDisc(std::string name, math::Matrix a, math::Matrix b,
                 math::Matrix c, math::Matrix d, std::vector<double> x0 = {});

  void initialize(Context& ctx) override;
  void on_event(Context& ctx, std::size_t event_in) override;

  void describe(ir::BlockIr& out) const override;

  std::size_t event_in() const { return 0; }
  std::size_t done_event_out() const { return 0; }
  const std::vector<double>& xk() const { return x_; }

 private:
  math::Matrix a_, b_, c_, d_;
  std::vector<double> x0_;
  std::vector<double> x_;
  std::vector<double> next_;  // next-state scratch, swapped with x_ per step
};

/// Discrete PID with filtered derivative and optional anti-windup clamping:
///   u = Kp e + I + D,  I <- I + Ki*Ts*e,  D = (Kd*N*(e - e_prev) + D_prev)/(1 + N*Ts)
/// Input 0: error e. Output 0: control u.
class PidDiscrete : public Block {
 public:
  struct Params {
    double kp = 1.0;
    double ki = 0.0;
    double kd = 0.0;
    double ts = 0.01;        // nominal sampling period (gain scaling)
    double n = 20.0;         // derivative filter coefficient
    double u_min = -1e12;    // anti-windup clamp
    double u_max = 1e12;
  };

  PidDiscrete(std::string name, Params p);

  void initialize(Context& ctx) override;
  void on_event(Context& ctx, std::size_t event_in) override;
  void describe(ir::BlockIr& out) const override;

 private:
  Params p_;
  double integral_ = 0.0;
  double deriv_ = 0.0;
  double prev_error_ = 0.0;
};

/// One-step delay z^-1: on activation, output the stored value, then store
/// the current input.
class UnitDelay : public Block {
 public:
  UnitDelay(std::string name, std::vector<double> init);
  UnitDelay(std::string name, double init = 0.0)
      : UnitDelay(std::move(name), std::vector<double>{init}) {}

  void initialize(Context& ctx) override;
  void on_event(Context& ctx, std::size_t event_in) override;
  void describe(ir::BlockIr& out) const override;

 private:
  std::vector<double> init_;
  std::vector<double> stored_;
};

/// Counts its activations; output 0 holds the count. Test/diagnostic aid.
class EventCounter : public Block {
 public:
  explicit EventCounter(std::string name);

  void initialize(Context& ctx) override;
  void on_event(Context& ctx, std::size_t event_in) override;
  void describe(ir::BlockIr& out) const override;

  std::size_t count() const { return count_; }

 private:
  std::size_t count_ = 0;
};

}  // namespace ecsim::blocks
