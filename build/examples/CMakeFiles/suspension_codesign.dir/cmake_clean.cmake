file(REMOVE_RECURSE
  "CMakeFiles/suspension_codesign.dir/suspension_codesign.cpp.o"
  "CMakeFiles/suspension_codesign.dir/suspension_codesign.cpp.o.d"
  "suspension_codesign"
  "suspension_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suspension_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
