#include "blocks/sources.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ecsim::blocks {

Clock::Clock(std::string name, Time period, Time offset)
    : Block(std::move(name)), period_(period), offset_(offset) {
  if (period <= 0.0) throw std::invalid_argument("Clock: period must be > 0");
  if (offset < 0.0) throw std::invalid_argument("Clock: offset must be >= 0");
  add_event_input();   // self-tick
  add_event_output();  // activation output
}

void Clock::initialize(Context& ctx) { ctx.schedule_self(0, offset_); }

void Clock::on_event(Context& ctx, std::size_t) {
  ctx.emit(0, 0.0);
  ctx.schedule_self(0, period_);
}

TimetableClock::TimetableClock(std::string name, Time period,
                               std::vector<Time> offsets)
    : Block(std::move(name)), period_(period), offsets_(std::move(offsets)) {
  if (period <= 0.0) {
    throw std::invalid_argument("TimetableClock: period must be > 0");
  }
  if (offsets_.empty()) {
    throw std::invalid_argument("TimetableClock: offsets must be non-empty");
  }
  if (!std::is_sorted(offsets_.begin(), offsets_.end())) {
    throw std::invalid_argument("TimetableClock: offsets must be sorted");
  }
  for (Time o : offsets_) {
    if (o < 0.0 || o >= period_) {
      throw std::invalid_argument("TimetableClock: offsets must be in [0, period)");
    }
  }
  add_event_input();
  add_event_output();
}

void TimetableClock::initialize(Context& ctx) {
  next_ = 0;
  cycle_ = 0;
  ctx.schedule_self(0, offsets_.front());
}

void TimetableClock::on_event(Context& ctx, std::size_t) {
  ctx.emit(0, 0.0);
  const Time now = static_cast<Time>(cycle_) * period_ + offsets_[next_];
  ++next_;
  if (next_ == offsets_.size()) {
    next_ = 0;
    ++cycle_;
  }
  const Time target = static_cast<Time>(cycle_) * period_ + offsets_[next_];
  ctx.schedule_self(0, target - now);
}

Constant::Constant(std::string name, std::vector<double> value)
    : Block(std::move(name)), value_(std::move(value)) {
  add_output(value_.size());
}

void Constant::compute_outputs(Context& ctx) {
  auto out = ctx.output(0);
  std::copy(value_.begin(), value_.end(), out.begin());
}

Step::Step(std::string name, double initial, double final_value, Time step_time)
    : Block(std::move(name)),
      initial_(initial),
      final_(final_value),
      step_time_(step_time) {
  add_output(1);
}

void Step::compute_outputs(Context& ctx) {
  ctx.set_out1(0, ctx.time() < step_time_ ? initial_ : final_);
}

Sine::Sine(std::string name, double amplitude, double frequency, double phase,
           double bias)
    : Block(std::move(name)),
      amplitude_(amplitude),
      frequency_(frequency),
      phase_(phase),
      bias_(bias) {
  add_output(1);
}

void Sine::compute_outputs(Context& ctx) {
  const double w = 2.0 * std::numbers::pi * frequency_;
  ctx.set_out1(0, amplitude_ * std::sin(w * ctx.time() + phase_) + bias_);
}

Pulse::Pulse(std::string name, double low, double high, Time period, double duty)
    : Block(std::move(name)), low_(low), high_(high), period_(period), duty_(duty) {
  if (period <= 0.0) throw std::invalid_argument("Pulse: period must be > 0");
  if (duty <= 0.0 || duty >= 1.0) {
    throw std::invalid_argument("Pulse: duty must be in (0,1)");
  }
  add_output(1);
}

void Pulse::compute_outputs(Context& ctx) {
  const double phase = std::fmod(ctx.time(), period_);
  ctx.set_out1(0, phase < duty_ * period_ ? high_ : low_);
}

NoiseHold::NoiseHold(std::string name, double mean, double stddev)
    : Block(std::move(name)), mean_(mean), stddev_(stddev) {
  add_event_input();
  add_event_output();  // done
  add_output(1);
}

void NoiseHold::initialize(Context& ctx) { ctx.set_out1(0, mean_); }

void NoiseHold::on_event(Context& ctx, std::size_t) {
  ctx.set_out1(0, ctx.rng().normal(mean_, stddev_));
  ctx.emit(0, 0.0);
}


void Clock::describe(ir::BlockIr& out) const {
  out.kind = "Clock";
  out.attrs.push_back(ir::Attr::of_real("period", period_));
  out.attrs.push_back(ir::Attr::of_real("offset", offset_));
}

void TimetableClock::describe(ir::BlockIr& out) const {
  out.kind = "TimetableClock";
  out.attrs.push_back(ir::Attr::of_real("period", period_));
  out.attrs.push_back(ir::Attr::of_vec("offsets", offsets_));
}

void Constant::describe(ir::BlockIr& out) const {
  out.kind = "Constant";
  out.attrs.push_back(ir::Attr::of_vec("value", value_));
}

void Step::describe(ir::BlockIr& out) const {
  out.kind = "Step";
  out.attrs.push_back(ir::Attr::of_real("initial", initial_));
  out.attrs.push_back(ir::Attr::of_real("final", final_));
  out.attrs.push_back(ir::Attr::of_real("step_time", step_time_));
}

void Sine::describe(ir::BlockIr& out) const {
  out.kind = "Sine";
  out.attrs.push_back(ir::Attr::of_real("amplitude", amplitude_));
  out.attrs.push_back(ir::Attr::of_real("frequency", frequency_));
  out.attrs.push_back(ir::Attr::of_real("phase", phase_));
  out.attrs.push_back(ir::Attr::of_real("bias", bias_));
}

void Pulse::describe(ir::BlockIr& out) const {
  out.kind = "Pulse";
  out.attrs.push_back(ir::Attr::of_real("low", low_));
  out.attrs.push_back(ir::Attr::of_real("high", high_));
  out.attrs.push_back(ir::Attr::of_real("period", period_));
  out.attrs.push_back(ir::Attr::of_real("duty", duty_));
}

void NoiseHold::describe(ir::BlockIr& out) const {
  out.kind = "NoiseHold";
  out.attrs.push_back(ir::Attr::of_real("mean", mean_));
  out.attrs.push_back(ir::Attr::of_real("stddev", stddev_));
}

}  // namespace ecsim::blocks
