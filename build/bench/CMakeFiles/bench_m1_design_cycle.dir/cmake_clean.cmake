file(REMOVE_RECURSE
  "CMakeFiles/bench_m1_design_cycle.dir/bench_m1_design_cycle.cpp.o"
  "CMakeFiles/bench_m1_design_cycle.dir/bench_m1_design_cycle.cpp.o.d"
  "bench_m1_design_cycle"
  "bench_m1_design_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_m1_design_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
