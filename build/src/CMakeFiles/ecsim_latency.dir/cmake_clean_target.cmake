file(REMOVE_RECURSE
  "libecsim_latency.a"
)
