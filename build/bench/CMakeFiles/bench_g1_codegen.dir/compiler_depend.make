# Empty compiler generated dependencies file for bench_g1_codegen.
# This may be replaced when dependencies are built.
