file(REMOVE_RECURSE
  "CMakeFiles/test_plants.dir/plants/test_plants.cpp.o"
  "CMakeFiles/test_plants.dir/plants/test_plants.cpp.o.d"
  "test_plants"
  "test_plants.pdb"
  "test_plants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
