#include "sim/trace.hpp"

namespace ecsim::sim {

void Trace::record_event(Time t, std::size_t block, std::size_t event_in,
                         const std::string& name) {
  if (block >= names_.size()) names_.resize(block + 1);
  if (names_[block].empty()) names_[block] = name;
  events_.push_back(EventRecord{t, block, event_in});
}

void Trace::record_signal(Time t, std::size_t block,
                          std::vector<double> values) {
  signals_.push_back(SignalRecord{t, block, std::move(values)});
  reserve_pool();
}

void Trace::record_signal(Time t, std::size_t block,
                          std::span<const double> values) {
  SignalRecord& rec = signals_.emplace_back();
  rec.time = t;
  rec.block = block;
  if (!pool_.empty()) {
    rec.values = std::move(pool_.back());
    pool_.pop_back();
  } else {
    // Pool miss: a genuinely new slot (warm-up). Grow the pool's *capacity*
    // alongside, so the clear() that recycles every live buffer back — the
    // first thing a steady-state re-run does — never grows the pool vector
    // itself. Without this the warmed re-run still pays O(log n) pool
    // reallocations inside clear(), which the allocation guard counts.
    reserve_pool();
  }
  // assign() reuses the recycled capacity when it suffices — the common
  // steady-state case, since probes sample fixed-width signals.
  rec.values.assign(values.begin(), values.end());
}

void Trace::reserve_pool() {
  if (pool_.capacity() < pool_.size() + signals_.size()) {
    pool_.reserve(pool_.size() + signals_.capacity());
  }
}

void Trace::register_block_names(std::vector<std::string> names) {
  names_ = std::move(names);
}

void Trace::set_block_name(std::size_t block, std::string_view name) {
  if (block >= names_.size()) names_.resize(block + 1);
  names_[block] = name;
}

std::string_view Trace::block_name(std::size_t block) const {
  return block < names_.size() ? std::string_view(names_[block])
                               : std::string_view();
}

void Trace::reserve(std::size_t events, std::size_t signals) {
  events_.reserve(events);
  signals_.reserve(signals);
}

std::vector<Time> Trace::activation_times(std::size_t block,
                                          std::size_t event_in) const {
  std::vector<Time> out;
  for (const auto& e : events_) {
    if (e.block == block &&
        (event_in == static_cast<std::size_t>(-1) || e.event_in == event_in)) {
      out.push_back(e.time);
    }
  }
  return out;
}

std::vector<Time> Trace::activation_times_by_name(const std::string& name,
                                                  std::size_t event_in) const {
  std::vector<Time> out;
  for (const auto& e : events_) {
    if (block_name(e.block) == name &&
        (event_in == static_cast<std::size_t>(-1) || e.event_in == event_in)) {
      out.push_back(e.time);
    }
  }
  return out;
}

std::vector<std::pair<Time, double>> Trace::series(std::size_t block,
                                                   std::size_t component) const {
  std::vector<std::pair<Time, double>> out;
  for (const auto& s : signals_) {
    if (s.block == block && component < s.values.size()) {
      out.emplace_back(s.time, s.values[component]);
    }
  }
  return out;
}

std::vector<std::pair<Time, double>> Trace::series_by_name(
    const std::string& name, std::size_t component) const {
  std::vector<std::pair<Time, double>> out;
  for (const auto& s : signals_) {
    if (block_name(s.block) == name && component < s.values.size()) {
      out.emplace_back(s.time, s.values[component]);
    }
  }
  return out;
}

void Trace::clear() {
  events_.clear();
  // Recycle the signal value buffers: the next run's record_signal(span)
  // calls pop them back out and assign() within their capacity, so a warmed
  // trace re-records without touching the heap.
  for (SignalRecord& s : signals_) {
    if (s.values.capacity() > 0) pool_.push_back(std::move(s.values));
  }
  signals_.clear();
}

}  // namespace ecsim::sim
