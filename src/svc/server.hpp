// The sweep-service daemon (DESIGN.md §3.9): `ecsim_flow serve` binds a
// unix-domain socket, forks N worker processes and answers framed requests
// (svc/protocol.hpp) with memoized, bit-exact sweep/Monte-Carlo results.
//
// Master process: accepts one client connection at a time, decomposes each
// request into work units, probes the LRU result cache (svc/result_cache.hpp)
// and shards only the misses across the workers over per-worker socketpairs.
// Replies merge in unit order, so a daemon-served grid is byte-identical to
// the serial in-process reference — the determinism contracts of PRs 3/5/8
// make every unit a pure function of the cache key. A worker that dies
// mid-request (EOF/EPIPE on its pipe) is detected, its units are re-dispatched
// ONCE to a surviving worker, and a replacement is forked before the next
// request; a second failure fails the request rather than looping.
//
// Workers: blocking frame loop on the inherited socketpair. They ignore
// SIGINT/SIGTERM and exit when the master closes the pipe, so a SIGTERM to
// the master drains cleanly: stop accepting, close worker pipes, reap
// children, unlink the socket, exit 0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "svc/protocol.hpp"
#include "svc/warm_cache.hpp"

namespace ecsim::svc {

struct ServeOptions {
  std::string socket_path;
  std::size_t workers = 1;     // forked worker processes
  std::size_t cache_mb = 64;   // result-cache byte budget
  std::string ledger_path;     // "" = obs::Ledger::global() destination
  bool verbose = false;        // per-request stderr log lines
};

/// Run the daemon until SIGTERM/SIGINT. Returns the process exit code
/// (0 on a clean drain). Not re-entrant: installs signal handlers.
int run_server(const ServeOptions& opts);

/// Compute one work unit of `req` in-process and return its encoded payload
/// (the exact bytes the result cache stores). Shared by the workers, the
/// fallback path and the tests — there is exactly one evaluation routine, so
/// cached, daemon-computed and in-process results cannot diverge.
std::string evaluate_unit(const Request& req, std::size_t unit,
                          WarmCache& warm);

}  // namespace ecsim::svc
