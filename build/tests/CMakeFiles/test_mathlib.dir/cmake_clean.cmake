file(REMOVE_RECURSE
  "CMakeFiles/test_mathlib.dir/mathlib/test_expm.cpp.o"
  "CMakeFiles/test_mathlib.dir/mathlib/test_expm.cpp.o.d"
  "CMakeFiles/test_mathlib.dir/mathlib/test_linalg.cpp.o"
  "CMakeFiles/test_mathlib.dir/mathlib/test_linalg.cpp.o.d"
  "CMakeFiles/test_mathlib.dir/mathlib/test_matrix.cpp.o"
  "CMakeFiles/test_mathlib.dir/mathlib/test_matrix.cpp.o.d"
  "CMakeFiles/test_mathlib.dir/mathlib/test_riccati.cpp.o"
  "CMakeFiles/test_mathlib.dir/mathlib/test_riccati.cpp.o.d"
  "CMakeFiles/test_mathlib.dir/mathlib/test_rng.cpp.o"
  "CMakeFiles/test_mathlib.dir/mathlib/test_rng.cpp.o.d"
  "CMakeFiles/test_mathlib.dir/mathlib/test_stats.cpp.o"
  "CMakeFiles/test_mathlib.dir/mathlib/test_stats.cpp.o.d"
  "test_mathlib"
  "test_mathlib.pdb"
  "test_mathlib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mathlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
