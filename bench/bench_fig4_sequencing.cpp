// EXP-F4 (paper Fig. 4): translation of sequencing. A chain of operations
// F1 -> F2 -> F3 scheduled on one processor is translated into chained
// EventDelay blocks; the simulated completion instant of every operation
// must equal the schedule instant exactly (error = 0), over many periods and
// chain lengths, and also for the distributed variant with synchronization.
#include <cmath>

#include "aaa/adequation.hpp"
#include "bench_common.hpp"
#include "blocks/discrete.hpp"
#include "sim/simulator.hpp"
#include "translate/graph_of_delays.hpp"

using namespace ecsim;

namespace {

/// Max |simulated - scheduled| completion error over all ops and periods.
double chain_translation_error(std::size_t chain_len, std::size_t n_procs,
                               std::size_t periods) {
  aaa::AlgorithmGraph alg("chain", 0.01);
  std::vector<aaa::OpId> ids;
  for (std::size_t i = 0; i < chain_len; ++i) {
    aaa::Operation op;
    op.name = "F" + std::to_string(i + 1);
    op.kind = i == 0 ? aaa::OpKind::kSensor
                     : (i + 1 == chain_len ? aaa::OpKind::kActuator
                                           : aaa::OpKind::kCompute);
    op.wcet["cpu"] = 2e-4 + 1e-4 * static_cast<double>(i % 3);
    if (n_procs > 1) {
      op.bound_processor = "P" + std::to_string(i % n_procs);
    }
    ids.push_back(alg.add_operation(std::move(op)));
  }
  for (std::size_t i = 1; i < chain_len; ++i) {
    alg.add_dependency(ids[i - 1], ids[i], 4.0);
  }
  const auto arch = aaa::ArchitectureGraph::bus_architecture(n_procs, 1e5, 5e-5);
  const aaa::Schedule sched = aaa::adequate(alg, arch);

  sim::Model m;
  const translate::GraphOfDelays god =
      translate::build_graph_of_delays(m, alg, arch, sched, {});
  for (aaa::OpId id : ids) {
    auto& n = m.add<blocks::EventCounter>("done_" + alg.op(id).name);
    translate::wire_completion(m, god, id, n, 0);
  }
  sim::Simulator s(
      m, sim::SimOptions{.end_time = 0.01 * static_cast<double>(periods) - 1e-6});
  s.run();

  double max_err = 0.0;
  for (aaa::OpId id : ids) {
    const auto times =
        s.trace().activation_times_by_name("done_" + alg.op(id).name);
    for (std::size_t k = 0; k < times.size(); ++k) {
      const double expect =
          sched.of_op(id).end + 0.01 * static_cast<double>(k);
      max_err = std::max(max_err, std::abs(times[k] - expect));
    }
  }
  return max_err;
}

void experiment() {
  bench::banner("EXP-F4", "Fig. 4 / Section 3.2.1",
                "Sequencing translation: Scicos event chains must reproduce "
                "the SynDEx schedule instants exactly (WCET execution).");
  std::printf("%12s %8s %10s %22s\n", "chain length", "procs", "periods",
              "max |sim - sched| [s]");
  for (const std::size_t len : {3u, 5u, 8u, 12u}) {
    for (const std::size_t procs : {1u, 2u, 3u}) {
      const double err = chain_translation_error(len, procs, 20);
      std::printf("%12zu %8zu %10d %22.3e\n", len, procs, 20, err);
    }
  }
  std::printf("\nAll errors at floating-point rounding level: the translation "
              "is exact, as Fig. 4 requires.\n\n");
}

void BM_SequencingTranslation(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const double err = chain_translation_error(len, 2, 5);
    benchmark::DoNotOptimize(err);
  }
}
BENCHMARK(BM_SequencingTranslation)->Arg(3)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  experiment();
  return bench::run_benchmarks(argc, argv);
}
