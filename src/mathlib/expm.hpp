// Matrix exponential via scaling-and-squaring with Pade approximation —
// the workhorse behind ZOH discretization of continuous-time plants.
#pragma once

#include "mathlib/matrix.hpp"

namespace ecsim::math {

/// e^A using scaling-and-squaring with a degree-6 diagonal Pade approximant.
/// Accurate to ~1e-12 for the well-scaled matrices arising in plant models.
Matrix expm(const Matrix& a);

}  // namespace ecsim::math
