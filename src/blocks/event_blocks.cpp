#include "blocks/event_blocks.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace ecsim::blocks {

namespace {

/// Attribute encoding of a DurationSpec ("dist" tag + per-kind parameters);
/// blocks::duration_from_attrs is the inverse. kCustom has no encoding —
/// callers mark the block opaque instead.
void describe_duration(ir::BlockIr& out, const DurationSpec& s) {
  out.attrs.push_back(
      ir::Attr::of_int("dist", static_cast<long long>(s.kind)));
  switch (s.kind) {
    case DurationSpec::Kind::kConstant:
      out.attrs.push_back(ir::Attr::of_real("value", s.value));
      break;
    case DurationSpec::Kind::kUniform:
      out.attrs.push_back(ir::Attr::of_real("bcet", s.bcet));
      out.attrs.push_back(ir::Attr::of_real("wcet", s.wcet));
      break;
    case DurationSpec::Kind::kTruncatedNormal:
      out.attrs.push_back(ir::Attr::of_real("mean", s.mean));
      out.attrs.push_back(ir::Attr::of_real("stddev", s.stddev));
      out.attrs.push_back(ir::Attr::of_real("bcet", s.bcet));
      out.attrs.push_back(ir::Attr::of_real("wcet", s.wcet));
      break;
    case DurationSpec::Kind::kShiftedUniform:
      out.attrs.push_back(ir::Attr::of_real("base", s.base));
      out.attrs.push_back(ir::Attr::of_real("jitter", s.jitter));
      break;
    case DurationSpec::Kind::kBranches:
      out.attrs.push_back(ir::Attr::of_vec("branch_wcets", s.branch_wcets));
      out.attrs.push_back(
          ir::Attr::of_real("bcet_fraction", s.bcet_fraction));
      out.attrs.push_back(
          ir::Attr::of_int("random_branch", s.random_branch ? 1 : 0));
      break;
    case DurationSpec::Kind::kCustom:
      out.opaque = true;
      break;
  }
}

}  // namespace

EventDelay::EventDelay(std::string name, Time duration)
    : EventDelay(std::move(name), constant_duration(duration)) {}

EventDelay::EventDelay(std::string name, DurationSpec spec)
    : Block(std::move(name)), spec_(std::move(spec)) {
  if (spec_.kind == DurationSpec::Kind::kCustom && !spec_.sampler) {
    throw std::invalid_argument("EventDelay: null sampler");
  }
  add_event_input();
  add_event_output();
}

EventDelay::EventDelay(std::string name, DurationSampler sampler)
    : EventDelay(std::move(name), custom_duration(std::move(sampler))) {}

void EventDelay::initialize(Context&) {
  busy_until_ = 0.0;
  busy_hits_ = 0;
}

void EventDelay::on_event(Context& ctx, std::size_t) {
  const Time now = ctx.time();
  Time start = now;
  if (busy_until_ > now) {
    start = busy_until_;
    ++busy_hits_;
  }
  const Time d = sample_duration(spec_, ctx.rng());
  if (d < 0.0) throw std::runtime_error("EventDelay: sampler returned < 0");
  busy_until_ = start + d;
  ctx.emit(0, busy_until_ - now);
}

void EventDelay::describe(ir::BlockIr& out) const {
  out.kind = "EventDelay";
  describe_duration(out, spec_);
}

EventSelect::EventSelect(std::string name, std::size_t n_channels,
                         std::size_t cond_width, ConditionMapping mapping)
    : Block(std::move(name)), n_channels_(n_channels), mapping_(std::move(mapping)) {
  if (n_channels == 0) throw std::invalid_argument("EventSelect: no channels");
  if (!mapping_) throw std::invalid_argument("EventSelect: null mapping");
  add_input(cond_width);
  add_event_input();
  for (std::size_t i = 0; i < n_channels; ++i) add_event_output();
}

std::unique_ptr<EventSelect> EventSelect::make_threshold(std::string name,
                                                         double threshold) {
  return std::make_unique<EventSelect>(
      std::move(name), 2, 1, [threshold](std::span<const double> v) {
        return static_cast<std::size_t>(v[0] > threshold ? 1 : 0);
      });
}

void EventSelect::on_event(Context& ctx, std::size_t) {
  const std::size_t ch = mapping_(ctx.input(0));
  if (ch >= n_channels_) {
    throw std::runtime_error("EventSelect '" + name() +
                             "': mapping returned out-of-range channel");
  }
  ctx.emit(ch, 0.0);
}

void EventSelect::describe(ir::BlockIr& out) const {
  out.kind = "EventSelect";
  out.opaque = true;  // the condition mapping is an arbitrary closure
}

TdmaGate::TdmaGate(std::string name, Time slot, std::size_t slots,
                   std::size_t owner)
    : Block(std::move(name)),
      slot_(slot),
      slots_(slots),
      owner_(slots > 0 ? owner % slots : 0) {
  if (slot <= 0.0) throw std::invalid_argument("TdmaGate: slot must be > 0");
  if (slots == 0) throw std::invalid_argument("TdmaGate: slots must be >= 1");
  add_event_input();
  add_event_output();
}

void TdmaGate::on_event(Context& ctx, std::size_t) {
  const Time now = ctx.time();
  // Same boundary formula as aaa::Medium::earliest_start so the schedule,
  // the executive VM and the co-simulation agree to rounding error. With
  // slots_ == 1 round == slot_ and offset == 0: the classic any-boundary
  // grid.
  const Time round = static_cast<Time>(slots_) * slot_;
  const Time offset = static_cast<Time>(owner_) * slot_;
  const double k = std::ceil((now - offset) / round - 1e-9);
  const Time boundary = std::max(0.0, k) * round + offset;
  ctx.emit(0, std::max(0.0, boundary - now));
}

void TdmaGate::describe(ir::BlockIr& out) const {
  out.kind = "TdmaGate";
  out.attrs.push_back(ir::Attr::of_real("slot", slot_));
  // Omitted at the single-slot default so pre-owner-slot IRs (and their
  // structural hashes) stay byte-identical.
  if (slots_ > 1) {
    out.attrs.push_back(
        ir::Attr::of_int("slots", static_cast<long long>(slots_)));
    out.attrs.push_back(
        ir::Attr::of_int("owner", static_cast<long long>(owner_)));
  }
}

EventMerge::EventMerge(std::string name, std::size_t n_inputs)
    : Block(std::move(name)) {
  if (n_inputs == 0) throw std::invalid_argument("EventMerge: no inputs");
  for (std::size_t i = 0; i < n_inputs; ++i) add_event_input();
  add_event_output();
}

void EventMerge::on_event(Context& ctx, std::size_t) { ctx.emit(0, 0.0); }

void EventMerge::describe(ir::BlockIr& out) const {
  out.kind = "EventMerge";
}

EventFault::EventFault(std::string name, FaultDecider decider)
    : Block(std::move(name)), decider_(std::move(decider)) {
  if (!decider_) throw std::invalid_argument("EventFault: null decider");
  add_event_input();
  add_event_output();
}

EventFault::EventFault(std::string name, fault::CommGate gate)
    : Block(std::move(name)),
      gate_(std::make_shared<const fault::CommGate>(std::move(gate))) {
  const auto g = gate_;
  decider_ = [g](std::size_t k, Time) -> FaultAction {
    const fault::CommGateAction a = fault::comm_gate_decide(*g, k);
    return {a.drop, a.defer};
  };
  add_event_input();
  add_event_output();
}

void EventFault::initialize(Context&) {
  count_ = 0;
  drops_ = 0;
  defers_ = 0;
}

void EventFault::on_event(Context& ctx, std::size_t) {
  const FaultAction a = decider_(count_++, ctx.time());
  if (a.drop) {
    ++drops_;
    return;
  }
  if (a.defer < 0.0) throw std::runtime_error("EventFault: negative defer");
  if (a.defer > 0.0) ++defers_;
  ctx.emit(0, a.defer);
}

void EventFault::describe(ir::BlockIr& out) const {
  out.kind = "EventFault";
  if (gate_ == nullptr) {
    out.opaque = true;  // arbitrary decider closure
    return;
  }
  const fault::CommGate& g = *gate_;
  out.attrs.push_back(
      ir::Attr::of_int("seed", static_cast<long long>(g.seed)));
  out.attrs.push_back(ir::Attr::of_real("period", g.period));
  out.attrs.push_back(
      ir::Attr::of_int("comm_index", static_cast<long long>(g.comm_index)));
  out.attrs.push_back(
      ir::Attr::of_real("transfer_duration", g.transfer_duration));
  // One row per entry: [fault, kind, probability, delay, extra_copies,
  // t_start, t_stop]. Indices fit doubles exactly for any realistic plan.
  std::vector<double> rows;
  rows.reserve(g.entries.size() * 7);
  for (const fault::CommGateEntry& e : g.entries) {
    rows.push_back(static_cast<double>(e.fault));
    rows.push_back(static_cast<double>(e.kind));
    rows.push_back(e.probability);
    rows.push_back(e.delay);
    rows.push_back(static_cast<double>(e.extra_copies));
    rows.push_back(e.t_start);
    rows.push_back(e.t_stop);
  }
  out.attrs.push_back(
      ir::Attr::of_matrix("entries", g.entries.size(), 7, std::move(rows)));
}

EventDivider::EventDivider(std::string name, std::size_t divisor,
                           std::size_t phase)
    : Block(std::move(name)), divisor_(divisor), phase_(phase) {
  if (divisor == 0) throw std::invalid_argument("EventDivider: divisor >= 1");
  if (phase >= divisor) {
    throw std::invalid_argument("EventDivider: phase must be < divisor");
  }
  add_event_input();
  add_event_output();
}

void EventDivider::initialize(Context&) { count_ = 0; }

void EventDivider::on_event(Context& ctx, std::size_t) {
  if (count_ % divisor_ == phase_) ctx.emit(0, 0.0);
  ++count_;
}

void EventDivider::describe(ir::BlockIr& out) const {
  out.kind = "EventDivider";
  out.attrs.push_back(
      ir::Attr::of_int("divisor", static_cast<long long>(divisor_)));
  out.attrs.push_back(
      ir::Attr::of_int("phase", static_cast<long long>(phase_)));
}

}  // namespace ecsim::blocks
