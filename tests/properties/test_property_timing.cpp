// Property sweep of the schedule -> graph-of-delays translation (Fig. 4
// exactness, generalized): for random workloads and architectures, under
// WCET execution the simulated completion instants of EVERY operation must
// equal the schedule instants shifted by k*period, for several periods.
#include <gtest/gtest.h>

#include "aaa/adequation.hpp"
#include "blocks/discrete.hpp"
#include "random_graphs.hpp"
#include "sim/simulator.hpp"
#include "translate/graph_of_delays.hpp"

namespace ecsim::translate {
namespace {

class TimingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimingProperty, EventChainExactUnderWcet) {
  math::Rng rng(GetParam());
  for (int trial = 0; trial < 3; ++trial) {
    const aaa::AlgorithmGraph alg = ecsim::testing::random_dag(rng, 8, 1.0);
    const aaa::ArchitectureGraph arch = ecsim::testing::random_bus(rng);
    const aaa::Schedule sched = aaa::adequate(alg, arch);
    ASSERT_LT(sched.makespan(), 1.0);

    sim::Model m;
    const GraphOfDelays god = build_graph_of_delays(m, alg, arch, sched, {});
    std::vector<blocks::EventCounter*> counters;
    for (aaa::OpId op = 0; op < alg.num_operations(); ++op) {
      auto& n = m.add<blocks::EventCounter>("done_" + alg.op(op).name);
      wire_completion(m, god, op, n, 0);
      counters.push_back(&n);
    }
    sim::Simulator s(m, sim::SimOptions{.end_time = 2.999});
    s.run();
    for (aaa::OpId op = 0; op < alg.num_operations(); ++op) {
      const auto times =
          s.trace().activation_times_by_name("done_" + alg.op(op).name);
      ASSERT_EQ(times.size(), 3u) << alg.op(op).name;
      const double expect = sched.of_op(op).end;
      for (std::size_t k = 0; k < times.size(); ++k) {
        EXPECT_NEAR(times[k], expect + static_cast<double>(k), 1e-9)
            << alg.op(op).name << " iteration " << k;
      }
    }
  }
}

TEST_P(TimingProperty, TimetableAgreesWithEventChain) {
  math::Rng rng(GetParam() * 101);
  const aaa::AlgorithmGraph alg = ecsim::testing::random_dag(rng, 6, 1.0);
  const aaa::ArchitectureGraph arch = ecsim::testing::random_bus(rng);
  const aaa::Schedule sched = aaa::adequate(alg, arch);

  auto collect = [&](GodMode mode) {
    sim::Model m;
    GodOptions opts;
    opts.mode = mode;
    const GraphOfDelays god = build_graph_of_delays(m, alg, arch, sched, opts);
    auto& n = m.add<blocks::EventCounter>("done");
    wire_completion(m, god, alg.num_operations() - 1, n, 0);
    sim::Simulator s(m, sim::SimOptions{.end_time = 1.999});
    s.run();
    return s.trace().activation_times_by_name("done");
  };
  const auto chain = collect(GodMode::kEventChain);
  const auto table = collect(GodMode::kTimetable);
  ASSERT_EQ(chain.size(), table.size());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_NEAR(chain[i], table[i], 1e-9);
  }
}

TEST_P(TimingProperty, StochasticTimesBoundedByWcetInstants) {
  math::Rng rng(GetParam() * 211);
  const aaa::AlgorithmGraph alg = ecsim::testing::random_dag(rng, 7, 1.0);
  const aaa::ArchitectureGraph arch = ecsim::testing::random_bus(rng);
  const aaa::Schedule sched = aaa::adequate(alg, arch);

  sim::Model m;
  GodOptions opts;
  opts.bcet_fraction = 0.1;
  const GraphOfDelays god = build_graph_of_delays(m, alg, arch, sched, opts);
  const aaa::OpId last = alg.num_operations() - 1;
  auto& n = m.add<blocks::EventCounter>("done");
  wire_completion(m, god, last, n, 0);
  sim::Simulator s(m, sim::SimOptions{.end_time = 4.999, .seed = GetParam()});
  s.run();
  const auto times = s.trace().activation_times_by_name("done");
  ASSERT_EQ(times.size(), 5u);
  const double wcet_end = sched.of_op(last).end;
  for (std::size_t k = 0; k < times.size(); ++k) {
    EXPECT_LE(times[k], static_cast<double>(k) + wcet_end + 1e-9);
    EXPECT_GT(times[k], static_cast<double>(k));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimingProperty,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u, 26u));

}  // namespace
}  // namespace ecsim::translate
