// Design-space sweeps over the co-simulation driver (DESIGN.md §3.3): the
// latency × jitter grids of EXP-C1 and the bus-bandwidth × WCET grids of
// EXP-F3, evaluated concurrently on a par::BatchRunner with serial-identical
// results. Each grid cell assembles its own loop model and simulator, so the
// cells are embarrassingly parallel; the cell order in the returned vector
// is row-major over the grid axes regardless of thread count.
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "par/batch_runner.hpp"
#include "translate/cosim.hpp"

namespace ecsim::sweep {

/// One evaluated point of the design space. Grid coordinates the sweep did
/// not vary stay 0.
struct SweepCell {
  double la_frac = 0.0;      // constant actuation latency / Ts
  double jitter_frac = 0.0;  // actuation jitter peak-to-peak / Ts
  double bus_bandwidth = 0.0;  // architecture axis: bus data units per s
  double wcet_scale = 0.0;     // architecture axis: controller WCET multiplier
  double iae = 0.0;
  double ise = 0.0;
  double itae = 0.0;
  double cost = 0.0;  // time-averaged quadratic cost
  double overshoot_pct = 0.0;
  double act_latency_mean = 0.0;  // measured La mean (eq. 2)
  double act_jitter = 0.0;        // measured La peak-to-peak
  bool stable = true;             // closed loop did not diverge
};

/// EXP-C1 shape: constant-latency × jitter grid via run_latency_loop.
/// Every cell simulates with loop.seed (same contract as the serial
/// benches: cells differ by their grid point, not by their noise draw).
struct TimingGrid {
  translate::LoopSpec loop;
  std::vector<double> latency_fracs;  // La/Ts values (rows)
  std::vector<double> jitter_fracs;   // jitter p2p/Ts values (columns)
};

/// EXP-F3 shape: bus-bandwidth × controller-WCET grid through the full AAA
/// flow (adequation -> graph of delays -> co-simulation).
struct ArchitectureGrid {
  translate::LoopSpec loop;
  translate::DistributedSpec dist;  // base; arch/wcet replaced per cell
  std::size_t processors = 2;
  std::vector<double> bus_bandwidths;  // data units per s (rows)
  std::vector<double> wcet_scales;     // multiplies dist.wcet_ctrl (columns)
};

class SweepRunner {
 public:
  explicit SweepRunner(par::BatchOptions opts = {});

  std::size_t threads() const { return threads_; }

  /// Row-major over latency_fracs × jitter_fracs, bit-identical for any
  /// thread count.
  std::vector<SweepCell> run(const TimingGrid& grid) const;
  /// Row-major over bus_bandwidths × wcet_scales.
  std::vector<SweepCell> run(const ArchitectureGrid& grid) const;

 private:
  par::BatchOptions opts_;
  std::size_t threads_ = 1;
};

/// Machine-readable dump, one row per cell, header included.
std::string to_csv(const std::vector<SweepCell>& cells);

/// Text heatmap of one metric over a 2-D grid: `cells` must be row-major
/// rows × cols. Works for any cell type with a `bool stable` member
/// (SweepCell, fault sweeps' FaultCell, ...); diverged cells print
/// "unstable". Throws std::invalid_argument when cells != rows × cols.
template <typename Cell>
std::string heatmap(const std::vector<Cell>& cells,
                    const std::vector<double>& rows,
                    const std::vector<double>& cols, const char* row_label,
                    const char* col_label, double Cell::*metric,
                    const char* title) {
  if (cells.size() != rows.size() * cols.size()) {
    throw std::invalid_argument("heatmap: cells != rows x cols");
  }
  std::string out = title;
  out += " (rows: ";
  out += row_label;
  out += ", columns: ";
  out += col_label;
  out += ")\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%12s", row_label);
  out += buf;
  for (const double c : cols) {
    std::snprintf(buf, sizeof buf, " %10.3g", c);
    out += buf;
  }
  out += "\n";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::snprintf(buf, sizeof buf, "%12.3g", rows[r]);
    out += buf;
    for (std::size_t c = 0; c < cols.size(); ++c) {
      const Cell& cell = cells[r * cols.size() + c];
      if (cell.stable) {
        std::snprintf(buf, sizeof buf, " %10.4g", cell.*metric);
      } else {
        std::snprintf(buf, sizeof buf, " %10s", "unstable");
      }
      out += buf;
    }
    out += "\n";
  }
  return out;
}

/// Standard sweep workload: LQR state feedback on the Cervin DC servo
/// G(s) = 1000/(s(s+1)) at Ts = 10 ms, unit position step (the loop every
/// experiment in EXPERIMENTS.md is measured against).
translate::LoopSpec servo_loop(double ts = 0.01, double t_end = 1.0);

}  // namespace ecsim::sweep
