# Empty dependencies file for ecsim_exec.
# This may be replaced when dependencies are built.
