// Canonical text serialization of the IR, its strict parser, the FNV-1a
// hash over the serialized bytes, and a JSON rendering for tooling.
//
// Canonical form rules (the determinism contract):
//  - fixed field order, one logical record per line, single-space separated;
//  - doubles printed as C hexfloats ("%a": exact, locale-free, round-trips
//    bit-for-bit through strtod);
//  - strings double-quoted with \\ \" \n \t escapes;
//  - indices as decimal size_t.
// parse() consumes the token stream (whitespace-insensitive), so
// parse(serialize(m)) == m; and since serialize() is deterministic,
// serialize(parse(text)) == text for canonical inputs.
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace ecsim::ir {

namespace {

// --- writing -----------------------------------------------------------------

void put_real(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  out += buf;
}

void put_size(std::string& out, std::size_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%zu", v);
  out += buf;
}

void put_int(std::string& out, long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  out += buf;
}

void put_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  out += '"';
}

void put_size_list(std::string& out, const char* tag,
                   const std::vector<std::size_t>& v) {
  out += tag;
  out += ' ';
  put_size(out, v.size());
  for (std::size_t x : v) {
    out += ' ';
    put_size(out, x);
  }
  out += '\n';
}

void put_slice_list(std::string& out, const char* tag,
                    const std::vector<SliceIr>& v) {
  out += tag;
  out += ' ';
  put_size(out, v.size());
  for (const SliceIr& s : v) {
    out += ' ';
    put_size(out, s.offset);
    out += ' ';
    put_size(out, s.width);
  }
  out += '\n';
}

void put_portref_list(std::string& out, const char* tag,
                      const std::vector<PortRefIr>& v) {
  out += tag;
  out += ' ';
  put_size(out, v.size());
  for (const PortRefIr& p : v) {
    out += ' ';
    put_size(out, p.block);
    out += ' ';
    put_size(out, p.port);
  }
  out += '\n';
}

void put_attr(std::string& out, const Attr& a) {
  out += "attr ";
  put_string(out, a.key);
  switch (a.kind) {
    case Attr::Kind::kInt:
      out += " int ";
      put_int(out, a.i);
      break;
    case Attr::Kind::kReal:
      out += " real ";
      put_real(out, a.r);
      break;
    case Attr::Kind::kRealVec:
      out += " vec ";
      put_size(out, a.vec.size());
      for (double v : a.vec) {
        out += ' ';
        put_real(out, v);
      }
      break;
    case Attr::Kind::kMatrix:
      out += " matrix ";
      put_size(out, a.rows);
      out += ' ';
      put_size(out, a.cols);
      for (double v : a.vec) {
        out += ' ';
        put_real(out, v);
      }
      break;
    case Attr::Kind::kString:
      out += " str ";
      put_string(out, a.s);
      break;
  }
  out += '\n';
}

// --- tokenizing / reading ----------------------------------------------------

class Reader {
 public:
  explicit Reader(const std::string& text) : text_(text) {}

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  std::string token() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    if (text_[pos_] == '"') return quoted();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  void expect(const char* word) {
    const std::string t = token();
    if (t != word) {
      fail("expected '" + std::string(word) + "', got '" + t + "'");
    }
  }

  std::size_t size() {
    const std::string t = token();
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(t.c_str(), &end, 10);
    if (end == t.c_str() || *end != '\0' || errno != 0) {
      fail("bad index '" + t + "'");
    }
    return static_cast<std::size_t>(v);
  }

  long long integer() {
    const std::string t = token();
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(t.c_str(), &end, 10);
    if (end == t.c_str() || *end != '\0' || errno != 0) {
      fail("bad integer '" + t + "'");
    }
    return v;
  }

  double real() {
    const std::string t = token();
    char* end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (end == t.c_str() || *end != '\0') fail("bad real '" + t + "'");
    return v;
  }

  bool flag() {
    const std::size_t v = size();
    if (v > 1) fail("bad flag");
    return v == 1;
  }

  std::string string() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') fail("expected string");
    return quoted();
  }

  [[noreturn]] void fail(const std::string& why) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    throw std::runtime_error("ir::parse: " + why + " (line " +
                             std::to_string(line) + ")");
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string quoted() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: fail("bad escape");
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::vector<std::size_t> read_size_list(Reader& r, const char* tag) {
  r.expect(tag);
  const std::size_t n = r.size();
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = r.size();
  return v;
}

std::vector<SliceIr> read_slice_list(Reader& r, const char* tag) {
  r.expect(tag);
  const std::size_t n = r.size();
  std::vector<SliceIr> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i].offset = r.size();
    v[i].width = r.size();
  }
  return v;
}

std::vector<PortRefIr> read_portref_list(Reader& r, const char* tag) {
  r.expect(tag);
  const std::size_t n = r.size();
  std::vector<PortRefIr> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i].block = r.size();
    v[i].port = r.size();
  }
  return v;
}

Attr read_attr(Reader& r) {
  r.expect("attr");
  Attr a;
  a.key = r.string();
  const std::string kind = r.token();
  if (kind == "int") {
    a.kind = Attr::Kind::kInt;
    a.i = r.integer();
  } else if (kind == "real") {
    a.kind = Attr::Kind::kReal;
    a.r = r.real();
  } else if (kind == "vec") {
    a.kind = Attr::Kind::kRealVec;
    const std::size_t n = r.size();
    a.vec.resize(n);
    for (std::size_t i = 0; i < n; ++i) a.vec[i] = r.real();
  } else if (kind == "matrix") {
    a.kind = Attr::Kind::kMatrix;
    a.rows = r.size();
    a.cols = r.size();
    a.vec.resize(a.rows * a.cols);
    for (std::size_t i = 0; i < a.vec.size(); ++i) a.vec[i] = r.real();
  } else if (kind == "str") {
    a.kind = Attr::Kind::kString;
    a.s = r.string();
  } else {
    r.fail("unknown attr kind '" + kind + "'");
  }
  return a;
}

}  // namespace

std::string serialize(const Model& m) {
  std::string out;
  out.reserve(4096);
  out += "ecsim-ir ";
  put_int(out, m.version);
  out += "\nname ";
  put_string(out, m.name);
  out += "\nblocks ";
  put_size(out, m.blocks.size());
  out += '\n';
  for (std::size_t b = 0; b < m.blocks.size(); ++b) {
    const BlockIr& blk = m.blocks[b];
    out += "block ";
    put_size(out, b);
    out += " kind ";
    put_string(out, blk.kind);
    out += " name ";
    put_string(out, blk.name);
    out += '\n';
    put_size_list(out, "in", blk.in_widths);
    out += "ft ";
    put_size(out, blk.feedthrough.size());
    for (bool f : blk.feedthrough) out += f ? " 1" : " 0";
    out += '\n';
    put_size_list(out, "out", blk.out_widths);
    out += "ev ";
    put_size(out, blk.n_event_in);
    out += ' ';
    put_size(out, blk.n_event_out);
    out += "\nstate ";
    put_size(out, blk.state_size);
    out += "\ntimedep ";
    out += blk.time_dependent ? '1' : '0';
    out += "\nopaque ";
    out += blk.opaque ? '1' : '0';
    out += "\nattrs ";
    put_size(out, blk.attrs.size());
    out += '\n';
    for (const Attr& a : blk.attrs) put_attr(out, a);
  }
  out += "data_wires ";
  put_size(out, m.data_wires.size());
  out += '\n';
  for (const WireIr& w : m.data_wires) {
    out += "w ";
    put_size(out, w.from.block);
    out += ' ';
    put_size(out, w.from.port);
    out += ' ';
    put_size(out, w.to.block);
    out += ' ';
    put_size(out, w.to.port);
    out += '\n';
  }
  out += "event_wires ";
  put_size(out, m.event_wires.size());
  out += '\n';
  for (const WireIr& w : m.event_wires) {
    out += "w ";
    put_size(out, w.from.block);
    out += ' ';
    put_size(out, w.from.port);
    out += ' ';
    put_size(out, w.to.block);
    out += ' ';
    put_size(out, w.to.port);
    out += '\n';
  }
  out += "layout arena ";
  put_size(out, m.layout.arena_size);
  out += " total_state ";
  put_size(out, m.layout.total_state);
  out += '\n';
  put_size_list(out, "out_base", m.layout.out_base);
  put_slice_list(out, "out_slices", m.layout.out_slices);
  put_size_list(out, "in_base", m.layout.in_base);
  put_slice_list(out, "in_slices", m.layout.in_slices);
  put_size_list(out, "state_offset", m.layout.state_offset);
  put_size_list(out, "stateful", m.layout.stateful_blocks);
  put_size_list(out, "eval_order", m.layout.eval_order);
  put_size_list(out, "topo_pos", m.layout.topo_pos);
  put_size_list(out, "cone_base", m.layout.cone_base);
  put_size_list(out, "cone_blocks", m.layout.cone_blocks);
  put_size_list(out, "dynamic_cone", m.layout.dynamic_cone);
  put_size_list(out, "sink_base", m.layout.sink_base);
  put_size_list(out, "sink_ptr", m.layout.sink_ptr);
  put_portref_list(out, "event_sinks", m.layout.event_sinks);
  out += "schedule ";
  out += m.has_schedule ? '1' : '0';
  out += '\n';
  if (m.has_schedule) {
    const ScheduleIr& s = m.schedule;
    out += "period ";
    put_real(out, s.period);
    out += " makespan ";
    put_real(out, s.makespan);
    out += "\nexecutives ";
    put_size(out, s.executives.size());
    out += '\n';
    for (const ExecutiveIr& e : s.executives) {
      out += "executive ";
      put_size(out, e.proc);
      out += ' ';
      put_string(out, e.resource);
      out += " instrs ";
      put_size(out, e.instrs.size());
      out += '\n';
      for (const InstrIr& i : e.instrs) {
        out += "instr ";
        put_size(out, static_cast<std::size_t>(i.kind));
        out += ' ';
        put_size(out, i.op);
        out += ' ';
        put_size(out, i.comm);
        out += ' ';
        put_string(out, i.label);
        out += ' ';
        out += i.release_gated ? '1' : '0';
        out += ' ';
        put_real(out, i.release);
        out += ' ';
        put_real(out, i.wcet);
        out += " branches ";
        put_size(out, i.branch_wcets.size());
        for (double w : i.branch_wcets) {
          out += ' ';
          put_real(out, w);
        }
        out += '\n';
      }
    }
    out += "communicators ";
    put_size(out, s.communicators.size());
    out += '\n';
    for (const CommunicatorIr& c : s.communicators) {
      out += "communicator ";
      put_size(out, c.medium);
      out += ' ';
      put_string(out, c.resource);
      out += " comms ";
      put_size(out, c.comms.size());
      for (std::size_t x : c.comms) {
        out += ' ';
        put_size(out, x);
      }
      out += '\n';
    }
  }
  return out;
}

Model parse(const std::string& text) {
  Reader r(text);
  Model m;
  r.expect("ecsim-ir");
  const long long version = r.integer();
  if (version != kIrVersion) {
    throw std::runtime_error("ir::parse: unsupported IR version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kIrVersion) + ")");
  }
  m.version = static_cast<int>(version);
  r.expect("name");
  m.name = r.string();
  r.expect("blocks");
  m.blocks.resize(r.size());
  for (std::size_t b = 0; b < m.blocks.size(); ++b) {
    BlockIr& blk = m.blocks[b];
    r.expect("block");
    if (r.size() != b) r.fail("block index out of order");
    r.expect("kind");
    blk.kind = r.string();
    r.expect("name");
    blk.name = r.string();
    blk.in_widths = read_size_list(r, "in");
    r.expect("ft");
    blk.feedthrough.resize(r.size());
    for (std::size_t i = 0; i < blk.feedthrough.size(); ++i) {
      blk.feedthrough[i] = r.flag();
    }
    blk.out_widths = read_size_list(r, "out");
    r.expect("ev");
    blk.n_event_in = r.size();
    blk.n_event_out = r.size();
    r.expect("state");
    blk.state_size = r.size();
    r.expect("timedep");
    blk.time_dependent = r.flag();
    r.expect("opaque");
    blk.opaque = r.flag();
    r.expect("attrs");
    const std::size_t n_attrs = r.size();
    blk.attrs.reserve(n_attrs);
    for (std::size_t i = 0; i < n_attrs; ++i) blk.attrs.push_back(read_attr(r));
  }
  r.expect("data_wires");
  m.data_wires.resize(r.size());
  for (WireIr& w : m.data_wires) {
    r.expect("w");
    w.from.block = r.size();
    w.from.port = r.size();
    w.to.block = r.size();
    w.to.port = r.size();
  }
  r.expect("event_wires");
  m.event_wires.resize(r.size());
  for (WireIr& w : m.event_wires) {
    r.expect("w");
    w.from.block = r.size();
    w.from.port = r.size();
    w.to.block = r.size();
    w.to.port = r.size();
  }
  r.expect("layout");
  r.expect("arena");
  m.layout.arena_size = r.size();
  r.expect("total_state");
  m.layout.total_state = r.size();
  m.layout.out_base = read_size_list(r, "out_base");
  m.layout.out_slices = read_slice_list(r, "out_slices");
  m.layout.in_base = read_size_list(r, "in_base");
  m.layout.in_slices = read_slice_list(r, "in_slices");
  m.layout.state_offset = read_size_list(r, "state_offset");
  m.layout.stateful_blocks = read_size_list(r, "stateful");
  m.layout.eval_order = read_size_list(r, "eval_order");
  m.layout.topo_pos = read_size_list(r, "topo_pos");
  m.layout.cone_base = read_size_list(r, "cone_base");
  m.layout.cone_blocks = read_size_list(r, "cone_blocks");
  m.layout.dynamic_cone = read_size_list(r, "dynamic_cone");
  m.layout.sink_base = read_size_list(r, "sink_base");
  m.layout.sink_ptr = read_size_list(r, "sink_ptr");
  m.layout.event_sinks = read_portref_list(r, "event_sinks");
  r.expect("schedule");
  m.has_schedule = r.flag();
  if (m.has_schedule) {
    ScheduleIr& s = m.schedule;
    r.expect("period");
    s.period = r.real();
    r.expect("makespan");
    s.makespan = r.real();
    r.expect("executives");
    s.executives.resize(r.size());
    for (ExecutiveIr& e : s.executives) {
      r.expect("executive");
      e.proc = r.size();
      e.resource = r.string();
      r.expect("instrs");
      e.instrs.resize(r.size());
      for (InstrIr& i : e.instrs) {
        r.expect("instr");
        const std::size_t kind = r.size();
        if (kind > 2) r.fail("bad instr kind");
        i.kind = static_cast<InstrIr::Kind>(kind);
        i.op = r.size();
        i.comm = r.size();
        i.label = r.string();
        i.release_gated = r.flag();
        i.release = r.real();
        i.wcet = r.real();
        r.expect("branches");
        i.branch_wcets.resize(r.size());
        for (double& w : i.branch_wcets) w = r.real();
      }
    }
    r.expect("communicators");
    s.communicators.resize(r.size());
    for (CommunicatorIr& c : s.communicators) {
      r.expect("communicator");
      c.medium = r.size();
      c.resource = r.string();
      r.expect("comms");
      c.comms.resize(r.size());
      for (std::size_t& x : c.comms) x = r.size();
    }
  }
  if (!r.at_end()) r.fail("trailing content after model");
  return m;
}

std::uint64_t hash(const Model& m) {
  const std::string bytes = serialize(m);
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

std::string hash_hex(const Model& m) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016" PRIx64, hash(m));
  return buf;
}

namespace {

void json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  out += '"';
}

void json_real(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void json_size_array(std::string& out, const std::vector<std::size_t>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ',';
    put_size(out, v[i]);
  }
  out += ']';
}

}  // namespace

std::string to_json(const Model& m) {
  std::string out;
  out.reserve(8192);
  out += "{\n  \"version\": ";
  put_int(out, m.version);
  out += ",\n  \"name\": ";
  json_string(out, m.name);
  out += ",\n  \"hash\": ";
  json_string(out, hash_hex(m));
  out += ",\n  \"blocks\": [\n";
  for (std::size_t b = 0; b < m.blocks.size(); ++b) {
    const BlockIr& blk = m.blocks[b];
    out += "    {\"index\": ";
    put_size(out, b);
    out += ", \"kind\": ";
    json_string(out, blk.kind);
    out += ", \"name\": ";
    json_string(out, blk.name);
    out += ", \"in\": ";
    json_size_array(out, blk.in_widths);
    out += ", \"out\": ";
    json_size_array(out, blk.out_widths);
    out += ", \"ev_in\": ";
    put_size(out, blk.n_event_in);
    out += ", \"ev_out\": ";
    put_size(out, blk.n_event_out);
    out += ", \"state\": ";
    put_size(out, blk.state_size);
    out += ", \"time_dependent\": ";
    out += blk.time_dependent ? "true" : "false";
    out += ", \"opaque\": ";
    out += blk.opaque ? "true" : "false";
    out += ", \"attrs\": {";
    for (std::size_t a = 0; a < blk.attrs.size(); ++a) {
      const Attr& at = blk.attrs[a];
      if (a > 0) out += ", ";
      json_string(out, at.key);
      out += ": ";
      switch (at.kind) {
        case Attr::Kind::kInt:
          put_int(out, at.i);
          break;
        case Attr::Kind::kReal:
          json_real(out, at.r);
          break;
        case Attr::Kind::kRealVec:
        case Attr::Kind::kMatrix:
          out += '[';
          for (std::size_t i = 0; i < at.vec.size(); ++i) {
            if (i > 0) out += ',';
            json_real(out, at.vec[i]);
          }
          out += ']';
          break;
        case Attr::Kind::kString:
          json_string(out, at.s);
          break;
      }
    }
    out += "}}";
    out += b + 1 < m.blocks.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"data_wires\": [";
  for (std::size_t i = 0; i < m.data_wires.size(); ++i) {
    const WireIr& w = m.data_wires[i];
    if (i > 0) out += ',';
    out += '[';
    put_size(out, w.from.block);
    out += ',';
    put_size(out, w.from.port);
    out += ',';
    put_size(out, w.to.block);
    out += ',';
    put_size(out, w.to.port);
    out += ']';
  }
  out += "],\n  \"event_wires\": [";
  for (std::size_t i = 0; i < m.event_wires.size(); ++i) {
    const WireIr& w = m.event_wires[i];
    if (i > 0) out += ',';
    out += '[';
    put_size(out, w.from.block);
    out += ',';
    put_size(out, w.from.port);
    out += ',';
    put_size(out, w.to.block);
    out += ',';
    put_size(out, w.to.port);
    out += ']';
  }
  out += "],\n  \"layout\": {\"arena_size\": ";
  put_size(out, m.layout.arena_size);
  out += ", \"total_state\": ";
  put_size(out, m.layout.total_state);
  out += ", \"eval_order\": ";
  json_size_array(out, m.layout.eval_order);
  out += ", \"dynamic_cone\": ";
  json_size_array(out, m.layout.dynamic_cone);
  out += "},\n  \"schedule\": ";
  if (!m.has_schedule) {
    out += "null\n}\n";
    return out;
  }
  out += "{\"period\": ";
  json_real(out, m.schedule.period);
  out += ", \"makespan\": ";
  json_real(out, m.schedule.makespan);
  out += ", \"executives\": [\n";
  for (std::size_t e = 0; e < m.schedule.executives.size(); ++e) {
    const ExecutiveIr& ex = m.schedule.executives[e];
    out += "    {\"proc\": ";
    put_size(out, ex.proc);
    out += ", \"resource\": ";
    json_string(out, ex.resource);
    out += ", \"instrs\": [";
    for (std::size_t i = 0; i < ex.instrs.size(); ++i) {
      const InstrIr& in = ex.instrs[i];
      if (i > 0) out += ", ";
      out += "{\"kind\": ";
      static const char* kKindNames[] = {"\"compute\"", "\"send\"", "\"recv\""};
      out += kKindNames[static_cast<std::size_t>(in.kind)];
      out += ", \"label\": ";
      json_string(out, in.label);
      if (in.kind == InstrIr::Kind::kCompute) {
        out += ", \"wcet\": ";
        if (in.branch_wcets.empty()) {
          json_real(out, in.wcet);
        } else {
          out += '[';
          for (std::size_t b = 0; b < in.branch_wcets.size(); ++b) {
            if (b > 0) out += ',';
            json_real(out, in.branch_wcets[b]);
          }
          out += ']';
        }
      }
      out += '}';
    }
    out += "]}";
    out += e + 1 < m.schedule.executives.size() ? ",\n" : "\n";
  }
  out += "  ]}\n}\n";
  return out;
}

}  // namespace ecsim::ir
