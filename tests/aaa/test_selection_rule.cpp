// Selection-rule ablation: schedule pressure (SynDEx) vs greedy
// earliest-finish. Both must produce valid schedules; pressure must win on
// workloads engineered to punish greediness.
#include <gtest/gtest.h>

#include "aaa/adequation.hpp"
#include "../properties/random_graphs.hpp"

namespace ecsim::aaa {
namespace {

TEST(SelectionRule, BothValidOnRandomWorkloads) {
  math::Rng rng(555);
  for (int trial = 0; trial < 10; ++trial) {
    const AlgorithmGraph alg = ecsim::testing::random_dag(rng, 9);
    const ArchitectureGraph arch = ecsim::testing::random_bus(rng);
    for (SelectionRule rule :
         {SelectionRule::kSchedulePressure, SelectionRule::kEarliestFinish}) {
      AdequationOptions opts;
      opts.rule = rule;
      const Schedule sched = adequate(alg, arch, opts);
      EXPECT_NO_THROW(sched.validate(alg, arch));
    }
  }
}

TEST(SelectionRule, PressureBeatsGreedyOnCriticalPathTrap) {
  // One long chain (the critical path) plus many small independent ops.
  // Greedy EFT keeps scheduling the cheap ops first, starving the chain;
  // schedule pressure drives the chain without delay.
  AlgorithmGraph alg("trap", 10.0);
  OpId prev = alg.add_simple("chain0", OpKind::kSensor, 0.1);
  for (int i = 1; i < 6; ++i) {
    const OpId op =
        alg.add_simple("chain" + std::to_string(i), OpKind::kCompute, 0.1);
    alg.add_dependency(prev, op, 1.0);
    prev = op;
  }
  for (int i = 0; i < 10; ++i) {
    alg.add_simple("small" + std::to_string(i), OpKind::kCompute, 0.05);
  }
  const auto arch = ArchitectureGraph::bus_architecture(2, 1e6, 1e-6);
  AdequationOptions pressure;
  AdequationOptions greedy;
  greedy.rule = SelectionRule::kEarliestFinish;
  const double mp = adequate(alg, arch, pressure).makespan();
  const double mg = adequate(alg, arch, greedy).makespan();
  EXPECT_LE(mp, mg + 1e-12);
}

TEST(SelectionRule, IdenticalOnSequentialChain) {
  AlgorithmGraph alg("chain", 10.0);
  OpId prev = alg.add_simple("a", OpKind::kSensor, 0.1);
  const OpId b = alg.add_simple("b", OpKind::kCompute, 0.2);
  const OpId c = alg.add_simple("c", OpKind::kActuator, 0.1);
  alg.add_dependency(prev, b);
  alg.add_dependency(b, c);
  const auto arch = ArchitectureGraph::bus_architecture(1, 1.0);
  AdequationOptions greedy;
  greedy.rule = SelectionRule::kEarliestFinish;
  EXPECT_DOUBLE_EQ(adequate(alg, arch).makespan(),
                   adequate(alg, arch, greedy).makespan());
}

}  // namespace
}  // namespace ecsim::aaa
