// EXP-P9 — the sweep service (DESIGN.md §3.9): what does a persistent
// daemon with a warm-model cache and memoized results buy over cold
// in-process runs, and does multi-process sharding preserve the bit-equality
// contract?
//
// Three measurements, stamped into BENCH_p9.json:
//   1. A 10k-request mixed workload (single-cell timing/arch/fault requests,
//      60% repeats of earlier keys) against a live daemon: request-latency
//      p50/p99 and the served hit rate.
//   2. Warm-vs-cold p50: the same workload's latencies split by the daemon's
//      own served_from_cache stamp. GUARD: warm p50 must be >= 5x faster.
//   3. Bit-equality: a canonical timing grid served by daemons at
//      --workers=1|2|4 must be byte-identical to the serial in-process
//      reference on every cell. GUARD: any mismatch fails the run.
// Exits nonzero on guard failure — wired into `ctest -C bench`
// (bench_p9_service_guard).
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mathlib/rng.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/warm_cache.hpp"

namespace {

using namespace ecsim;

constexpr std::size_t kRequests = 10000;
constexpr std::size_t kUniqueKeys = 4000;  // => 60% of requests repeat a key
constexpr double kTEnd = 0.25;             // short horizon: ~1 ms per cell
constexpr double kMinWarmSpeedup = 5.0;

struct Daemon {
  pid_t pid = -1;
  std::string socket_path;

  bool start(std::size_t workers) {
    socket_path = "/tmp/ecsim_bench_p9_" + std::to_string(::getpid()) + "_" +
                  std::to_string(workers) + ".sock";
    ::unlink(socket_path.c_str());
    pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
      svc::ServeOptions opts;
      opts.socket_path = socket_path;
      opts.workers = workers;
      opts.cache_mb = 64;
      ::_exit(svc::run_server(opts));
    }
    for (int i = 0; i < 100; ++i) {
      svc::Client probe;
      if (probe.connect(socket_path)) return true;
      ::usleep(50 * 1000);
    }
    return false;
  }

  int stop() {
    if (pid <= 0) return -1;
    ::kill(pid, SIGTERM);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
    ::unlink(socket_path.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  ~Daemon() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  }
};

/// Unique single-cell request #k of the mixed pool: 70% timing cells, 20%
/// architecture cells, 10% fault cells, coordinates derived from k so every
/// k names a distinct cache key.
svc::Request pool_request(std::size_t k) {
  svc::Request req;
  req.t_end = kTEnd;
  const std::size_t klass = k % 10;
  const auto frac = [](std::size_t i, std::size_t n, double lo, double hi) {
    return lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n);
  };
  if (klass < 7) {
    req.verb = svc::Verb::kSweepTiming;
    const std::size_t i = k / 10 * 10 + klass;  // distinct per k
    req.rows = {frac(i % 97, 97, 0.0, 0.9)};
    req.cols = {frac(i / 97, kUniqueKeys / 97 + 1, 0.0, 0.45)};
  } else if (klass < 9) {
    req.verb = svc::Verb::kSweepArch;
    const std::size_t i = k / 10 * 10 + klass;
    // Stay in the schedulable region: too little bandwidth with inflated
    // WCETs pushes the makespan past the period and the cell (correctly)
    // errors instead of producing a result.
    req.rows = {2e4 + frac(i % 89, 89, 0.0, 8e4)};
    req.cols = {frac(i / 89, kUniqueKeys / 89 + 1, 0.5, 1.5)};
  } else {
    req.verb = svc::Verb::kFaultSweep;
    const std::size_t i = k / 10;
    req.rows = {frac(i % 83, 83, 0.0, 0.4)};
    req.cols = {frac(i / 83, kUniqueKeys / 83 + 1, 0.0, 0.004)};
  }
  return req;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

struct WorkloadResult {
  std::vector<double> cold_us, warm_us, all_us;
  std::size_t served = 0;
  bool ok = true;
};

WorkloadResult run_workload(svc::Client& client) {
  // 4000 unique keys + 6000 repeats, deterministically shuffled: the mix a
  // design-space exploration session produces when sweeps overlap.
  std::vector<std::size_t> order(kRequests);
  math::Rng rng(20260808);
  for (std::size_t i = 0; i < kRequests; ++i) {
    order[i] = i < kUniqueKeys
                   ? i
                   : static_cast<std::size_t>(
                         rng.uniform_int(0, static_cast<std::int64_t>(kUniqueKeys) - 1));
  }
  for (std::size_t i = kRequests - 1; i > 0; --i) {
    const auto j =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i)));
    std::swap(order[i], order[j]);
  }

  WorkloadResult res;
  using clock = std::chrono::steady_clock;
  for (std::size_t i = 0; i < kRequests; ++i) {
    const svc::Request req = pool_request(order[i]);
    const auto t0 = clock::now();
    svc::ResponseMeta meta;
    bool ok = false;
    if (req.verb == svc::Verb::kFaultSweep) {
      std::vector<sweep::FaultCell> cells;
      ok = remote_fault_sweep(client, req, cells, meta);
    } else {
      std::vector<sweep::SweepCell> cells;
      ok = remote_sweep(client, req, cells, meta);
    }
    const double us =
        std::chrono::duration<double, std::micro>(clock::now() - t0).count();
    if (!ok) {
      std::fprintf(stderr, "request %zu failed: %s\n", i,
                   client.last_error().c_str());
      res.ok = false;
      return res;
    }
    res.all_us.push_back(us);
    (meta.served_from_cache ? res.warm_us : res.cold_us).push_back(us);
    res.served += meta.served_from_cache ? 1 : 0;
  }
  return res;
}

/// Serial in-process reference for a request — the daemon must reproduce
/// every byte of this at any worker count.
std::vector<std::string> reference_payloads(const svc::Request& req,
                                            svc::WarmCache& warm) {
  std::vector<std::string> payloads;
  for (std::size_t u = 0; u < req.units(); ++u) {
    payloads.push_back(svc::evaluate_unit(req, u, warm));
  }
  return payloads;
}

svc::Request canonical_grid() {
  svc::Request req;
  req.verb = svc::Verb::kSweepTiming;
  req.t_end = kTEnd;
  req.rows = {0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95};
  req.cols = {0.0, 0.1, 0.2, 0.3, 0.5};
  return req;
}

/// Bit-equality of a daemon-served grid vs the serial reference payloads.
bool grid_identical(std::size_t workers,
                    const std::vector<std::string>& want) {
  Daemon daemon;
  if (!daemon.start(workers)) return false;
  svc::Client client;
  if (!client.connect(daemon.socket_path)) return false;
  const svc::Request req = canonical_grid();
  svc::Fields reply;
  svc::ResponseMeta meta;
  if (!client.request(req, reply, meta) || !meta.ok) return false;
  const std::string* blob = reply.get("units");
  std::vector<std::string> got;
  if (blob == nullptr || !svc::decode_blob_list(*blob, got)) return false;
  client.close();
  if (daemon.stop() != 0) return false;
  if (got.size() != want.size()) return false;
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (got[i] != want[i]) return false;  // byte comparison of the payloads
  }
  return true;
}

int experiment() {
  bench::banner("EXP-P9", "sweep service (DESIGN.md §3.9)",
                "Persistent daemon: warm-model cache + memoized results + "
                "multi-process sharding. 10k mixed requests, 60% repeats; "
                "latency split by the daemon's served_from_cache stamp; "
                "sharded grids must stay byte-identical to serial.");

  bench::JsonReport report("EXP-P9");
  {
    svc::WarmCache warm;
    report.model_ir_hash("servo_loop",
                         warm.loop(0.01, kTEnd, /*seed=*/1).ir_hash);
  }

  // --- 1+2: the mixed workload against a 2-worker daemon -------------------
  Daemon daemon;
  if (!daemon.start(/*workers=*/2)) {
    std::fprintf(stderr, "daemon failed to start\n");
    return 1;
  }
  svc::Client client;
  if (!client.connect(daemon.socket_path)) {
    std::fprintf(stderr, "connect failed: %s\n", client.last_error().c_str());
    return 1;
  }
  const WorkloadResult w = run_workload(client);
  client.close();
  if (!w.ok || daemon.stop() != 0) return 1;

  const double hit_rate =
      static_cast<double>(w.served) / static_cast<double>(kRequests);
  const double p50 = percentile(w.all_us, 0.50);
  const double p99 = percentile(w.all_us, 0.99);
  const double cold_p50 = percentile(w.cold_us, 0.50);
  const double warm_p50 = percentile(w.warm_us, 0.50);
  const double speedup = warm_p50 > 0.0 ? cold_p50 / warm_p50 : 0.0;

  std::printf("%-28s %12s\n", "mixed workload", "value");
  std::printf("%-28s %12zu\n", "requests", kRequests);
  std::printf("%-28s %12zu\n", "unique keys", kUniqueKeys);
  std::printf("%-28s %11.1f%%\n", "served from cache", 100.0 * hit_rate);
  std::printf("%-28s %10.1fus\n", "request p50", p50);
  std::printf("%-28s %10.1fus\n", "request p99", p99);
  std::printf("%-28s %10.1fus\n", "cold (computed) p50", cold_p50);
  std::printf("%-28s %10.1fus\n", "warm (cache-served) p50", warm_p50);
  std::printf("%-28s %11.1fx\n", "warm speedup", speedup);

  report.begin_array("service");
  report.begin_object();
  report.field("requests", kRequests);
  report.field("unique_keys", kUniqueKeys);
  report.field("workers", std::size_t{2});
  report.field("hit_rate", hit_rate);
  report.field("p50_us", p50);
  report.field("p99_us", p99);
  report.field("cold_p50_us", cold_p50);
  report.field("warm_p50_us", warm_p50);
  report.field("warm_speedup", speedup);
  report.end_object();
  report.end_array();

  // --- 3: sharding bit-equality at 1|2|4 workers ---------------------------
  svc::WarmCache warm;
  const std::vector<std::string> want =
      reference_payloads(canonical_grid(), warm);
  bool all_identical = true;
  report.begin_array("equality");
  std::printf("\n%-10s %10s\n", "workers", "grid");
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const bool identical = grid_identical(workers, want);
    all_identical = all_identical && identical;
    std::printf("%-10zu %10s\n", workers,
                identical ? "identical" : "DIVERGED");
    report.begin_object();
    report.field("workers", workers);
    report.field("cells", want.size());
    report.field("identical", std::string(identical ? "yes" : "NO"));
    report.end_object();
  }
  report.end_array();

  const bool pass = all_identical && speedup >= kMinWarmSpeedup &&
                    hit_rate >= 0.55;
  report.begin_array("guard");
  report.begin_object();
  report.field("min_warm_speedup", kMinWarmSpeedup);
  report.field("measured_warm_speedup", speedup);
  report.field("min_hit_rate", 0.55);
  report.field("measured_hit_rate", hit_rate);
  report.field("sharding_identical", std::string(all_identical ? "yes" : "NO"));
  report.field("pass", std::string(pass ? "yes" : "NO"));
  report.end_object();
  report.end_array();
  std::printf("\nguard: warm p50 speedup %.1fx (need >= %.1fx), hit rate "
              "%.0f%% (need >= 55%%), sharding %s — %s\n\n",
              speedup, kMinWarmSpeedup, 100.0 * hit_rate,
              all_identical ? "identical" : "DIVERGED", pass ? "PASS" : "FAIL");
  report.write("BENCH_p9.json");
  return pass ? 0 : 1;
}

/// Warm round-trip latency, google-benchmark view: one cached single-cell
/// request against a live daemon (socket + framing + cache probe, no
/// simulation).
void BM_WarmRequestRoundTrip(benchmark::State& state) {
  Daemon daemon;
  if (!daemon.start(1)) {
    state.SkipWithError("daemon failed to start");
    return;
  }
  svc::Client client;
  if (!client.connect(daemon.socket_path)) {
    state.SkipWithError("connect failed");
    return;
  }
  const svc::Request req = pool_request(0);
  std::vector<sweep::SweepCell> cells;
  svc::ResponseMeta meta;
  remote_sweep(client, req, cells, meta);  // prime the cache
  for (auto _ : state) {
    cells.clear();
    if (!remote_sweep(client, req, cells, meta)) {
      state.SkipWithError("request failed");
      return;
    }
    benchmark::DoNotOptimize(cells.data());
  }
  client.close();
  daemon.stop();
}
BENCHMARK(BM_WarmRequestRoundTrip)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const int rc = experiment();
  if (rc != 0) return rc;
  return ecsim::bench::run_benchmarks(argc, argv);
}
