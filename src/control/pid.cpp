#include "control/pid.hpp"

#include <stdexcept>

namespace ecsim::control {

PidGains ziegler_nichols(double ku, double tu) {
  if (ku <= 0.0 || tu <= 0.0) {
    throw std::invalid_argument("ziegler_nichols: ku, tu must be > 0");
  }
  PidGains g;
  g.kp = 0.6 * ku;
  g.ki = 1.2 * ku / tu;
  g.kd = 0.075 * ku * tu;
  return g;
}

PidGains imc_pid(double k, double tau, double theta, double lambda) {
  if (k == 0.0 || tau <= 0.0 || lambda <= 0.0 || theta < 0.0) {
    throw std::invalid_argument("imc_pid: bad FOPDT parameters");
  }
  PidGains g;
  const double denom = k * (lambda + theta);
  g.kp = (tau + theta / 2.0) / denom;
  const double ti = tau + theta / 2.0;
  const double td = (tau * theta) / (2.0 * tau + theta);
  g.ki = g.kp / ti;
  g.kd = g.kp * td;
  return g;
}

StateSpace pid_to_ss(const PidGains& g, double ts) {
  if (ts <= 0.0) throw std::invalid_argument("pid_to_ss: ts must be > 0");
  // State 1: integrator I_{k+1} = I_k + ki*ts*e_k
  // State 2: filtered derivative D_{k+1} = a D_k + kd*n*(1-a) ... using the
  // backward-Euler filtered derivative: D_k = (kd*n*(e_k - e_prev) + D_prev)
  // / (1 + n*ts). Realize with states [I; D; e_prev].
  const double alpha = 1.0 / (1.0 + g.n * ts);
  StateSpace sys;
  sys.a = Matrix{{1.0, 0.0, 0.0},
                 {0.0, alpha, -g.kd * g.n * alpha},
                 {0.0, 0.0, 0.0}};
  sys.b = Matrix{{g.ki * ts}, {g.kd * g.n * alpha}, {1.0}};
  // u_k = kp e_k + I_k + D_k where D_k depends on e_k (direct feedthrough):
  //   D_k = alpha*(D_{k-1} + kd*n*(e_k - e_{k-1}))
  sys.c = Matrix{{0.0, 0.0, 0.0}};
  sys.d = Matrix{{0.0}};
  // Express u_k = kp e + I_k + alpha*D_{k-1} - alpha*kd*n*e_prev + alpha*kd*n*e
  sys.c(0, 0) = 1.0;
  sys.c(0, 1) = alpha;
  sys.c(0, 2) = -g.kd * g.n * alpha;
  sys.d(0, 0) = g.kp + g.kd * g.n * alpha;
  sys.discrete = true;
  sys.ts = ts;
  sys.validate();
  return sys;
}

}  // namespace ecsim::control
