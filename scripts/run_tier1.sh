#!/usr/bin/env bash
# Tier-1 verification, exactly the ROADMAP.md line: configure, build, and run
# the full ctest suite. Run from anywhere; operates on the repo checkout that
# contains this script. Exit status is ctest's.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S .
cmake --build build -j"${JOBS}"
cd build
exec ctest --output-on-failure -j"${JOBS}"
