#include "control/kalman.hpp"

#include <gtest/gtest.h>

#include "control/c2d.hpp"
#include "control/lqr.hpp"
#include "mathlib/linalg.hpp"

namespace ecsim::control {
namespace {

StateSpace servo_dt(double ts = 0.01) {
  StateSpace ct;
  ct.a = Matrix{{0.0, 1.0}, {0.0, -1.0}};
  ct.b = Matrix{{0.0}, {1000.0}};
  ct.c = Matrix{{1.0, 0.0}};
  ct.d = Matrix{{0.0}};
  return c2d(ct, ts);
}

TEST(Kalman, ObserverErrorDynamicsStable) {
  const StateSpace dt = servo_dt();
  const KalmanResult r = dkalman(dt.a, dt.c, 0.1 * Matrix::identity(2),
                                 Matrix{{0.01}});
  // Estimation error evolves with A - L C: must be Schur stable.
  EXPECT_LT(math::spectral_radius(dt.a - r.l * dt.c), 1.0);
}

TEST(Kalman, GainShrinksWithNoisierMeasurements) {
  const StateSpace dt = servo_dt();
  const KalmanResult trust = dkalman(dt.a, dt.c, Matrix::identity(2),
                                     Matrix{{1e-4}});
  const KalmanResult distrust = dkalman(dt.a, dt.c, Matrix::identity(2),
                                        Matrix{{10.0}});
  EXPECT_GT(trust.l.max_abs(), distrust.l.max_abs());
}

TEST(Kalman, CovarianceIsSymmetricPsd) {
  const StateSpace dt = servo_dt();
  const KalmanResult r = dkalman(dt.a, dt.c, Matrix::identity(2),
                                 Matrix{{0.1}});
  EXPECT_TRUE(math::approx_equal(r.p, r.p.transpose(), 1e-8));
  EXPECT_GE(math::quad_form(r.p, {1.0, 0.0}), 0.0);
  EXPECT_GE(math::quad_form(r.p, {0.5, -0.5}), 0.0);
}

TEST(ObserverCompensator, ClosedLoopStable) {
  const StateSpace dt = servo_dt();
  const LqrResult lqr = dlqr(dt, Matrix::diag({100.0, 1.0}), Matrix{{1.0}});
  const KalmanResult kal = dkalman(dt.a, dt.c, 0.1 * Matrix::identity(2),
                                   Matrix{{0.01}});
  const StateSpace comp = observer_compensator(dt, lqr.k, kal.l);
  EXPECT_TRUE(comp.discrete);
  EXPECT_EQ(comp.order(), 2u);
  // Separation principle: closed loop spectrum = controller ∪ observer;
  // assemble the 4-state closed loop and verify stability.
  //   x+    = A x + B (-K xh)
  //   xh+   = (A - BK - LC) xh + L C x
  Matrix acl = Matrix::zeros(4, 4);
  acl.set_block(0, 0, dt.a);
  acl.set_block(0, 2, -(dt.b * lqr.k));
  acl.set_block(2, 0, kal.l * dt.c);
  acl.set_block(2, 2, dt.a - dt.b * lqr.k - kal.l * dt.c);
  EXPECT_LT(math::spectral_radius(acl), 1.0);
}

TEST(ObserverCompensator, RejectsContinuousPlant) {
  StateSpace ct = make_state_system(Matrix{{0.0}}, Matrix{{1.0}});
  EXPECT_THROW(observer_compensator(ct, Matrix{{1.0}}, Matrix{{1.0}}),
               std::invalid_argument);
}

TEST(ObserverTrackingCompensator, TracksConstantReference) {
  const StateSpace dt = servo_dt();
  const LqrResult lqr = dlqr(dt, Matrix::diag({100.0, 0.01}), Matrix{{1e-3}});
  const KalmanResult kal = dkalman(dt.a, dt.c, Matrix::diag({1e-4, 1.0}),
                                   Matrix{{1e-6}});
  const double nbar = reference_gain(dt, lqr.k);
  const StateSpace comp = observer_tracking_compensator(dt, lqr.k, kal.l, nbar);
  EXPECT_EQ(comp.num_inputs(), 2u);  // [y; r]

  // Iterate the full closed loop plant+compensator on r = 1 and check y -> 1.
  std::vector<double> x(2, 0.0), xh(2, 0.0);
  double y = 0.0;
  for (int k = 0; k < 400; ++k) {
    const std::vector<double> yr{y, 1.0};
    const double u = math::dot(comp.c.row(0), xh) + math::dot(comp.d.row(0), yr);
    std::vector<double> xh_next(2, 0.0), x_next(2, 0.0);
    for (std::size_t i = 0; i < 2; ++i) {
      xh_next[i] = math::dot(comp.a.row(i), xh) + math::dot(comp.b.row(i), yr);
      x_next[i] = math::dot(dt.a.row(i), x) + dt.b(i, 0) * u;
    }
    xh = xh_next;
    x = x_next;
    y = math::dot(dt.c.row(0), x);
  }
  EXPECT_NEAR(y, 1.0, 1e-3);
}

TEST(ObserverTrackingCompensator, Validation) {
  StateSpace mimo = servo_dt();
  mimo.c = Matrix::identity(2);
  mimo.d = Matrix::zeros(2, 1);
  EXPECT_THROW(
      observer_tracking_compensator(mimo, Matrix(1, 2), Matrix(2, 2), 1.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace ecsim::control
