// Model: owns the blocks and the wiring between their ports; the structural
// half of a simulation (the dynamic half is Simulator). Mirrors a Scicos
// diagram: data wires carry signal values, event wires carry activations.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/block.hpp"
#include "sim/port.hpp"

namespace ecsim::sim {

class Model {
 public:
  /// Construct a block of type B in place and take ownership. Returns a
  /// reference valid for the model's lifetime.
  template <typename B, typename... Args>
  B& add(Args&&... args) {
    static_assert(std::is_base_of_v<Block, B>, "B must derive from Block");
    auto owned = std::make_unique<B>(std::forward<Args>(args)...);
    B& ref = *owned;
    blocks_.push_back(std::move(owned));
    return ref;
  }

  /// Take ownership of an already-constructed block.
  Block& add_block(std::unique_ptr<Block> b);

  /// Connect data output `out` of `from` to data input `in` of `to`.
  /// Each input accepts at most one wire; widths must match.
  void connect(const Block& from, std::size_t out, const Block& to,
               std::size_t in);

  /// Connect event output `evt_out` of `from` to event input `evt_in` of
  /// `to`. Event outputs may fan out to any number of inputs.
  void connect_event(const Block& from, std::size_t evt_out, const Block& to,
                     std::size_t evt_in);

  std::size_t num_blocks() const { return blocks_.size(); }
  Block& block(std::size_t i) { return *blocks_.at(i); }
  const Block& block(std::size_t i) const { return *blocks_.at(i); }

  /// Index of a block owned by this model; throws if foreign.
  std::size_t index_of(const Block& b) const;

  /// Find a block by name; throws std::out_of_range if absent or ambiguous
  /// lookup is needed (names should be unique for traceability).
  std::size_t index_by_name(const std::string& name) const;

  const std::vector<DataWire>& data_wires() const { return data_wires_; }
  const std::vector<EventWire>& event_wires() const { return event_wires_; }

 private:
  std::vector<std::unique_ptr<Block>> blocks_;
  std::vector<DataWire> data_wires_;
  std::vector<EventWire> event_wires_;
};

}  // namespace ecsim::sim
