#include "simd/batched_sim.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "blocks/continuous.hpp"
#include "blocks/discrete.hpp"
#include "blocks/event_blocks.hpp"
#include "blocks/examples.hpp"
#include "blocks/probe.hpp"
#include "blocks/sources.hpp"
#include "simd/pack.hpp"

namespace ecsim::sim {
namespace {

using namespace ecsim::blocks;

using Factory = BatchedSim::ModelFactory;

/// The engine's contract: every lane's trace (and event count) bit-identical
/// to a scalar Simulator run of the same model, seed and options.
void ExpectLanesMatchScalar(const Factory& factory, const SimOptions& base,
                            std::size_t width,
                            const std::vector<std::uint64_t>& seeds) {
  BatchedSim bs(factory, BatchedOptions{base, width});
  bs.run(seeds);
  for (std::size_t l = 0; l < seeds.size(); ++l) {
    std::unique_ptr<Model> m = factory();
    SimOptions so = base;
    so.seed = seeds[l];
    Simulator ref(*m, so);
    ref.run();
    EXPECT_TRUE(bs.trace(l) == ref.trace()) << "lane " << l;
    EXPECT_EQ(bs.events_dispatched(l), ref.events_dispatched())
        << "lane " << l;
  }
}

Factory chains_factory(std::size_t n) {
  return [n] { return std::make_unique<Model>(examples::make_chains(n)); };
}

Factory servo_factory() {
  return [] { return std::make_unique<Model>(examples::make_servo()); };
}

/// Stateless diagram whose event times depend on per-lane RNG draws: a
/// clock driving a jittered EventDelay into a counter, probed periodically.
/// Lanes diverge immediately but masks absorb it — no continuous state, so
/// nothing forces an eviction.
Factory jitter_factory() {
  return [] {
    auto m = std::make_unique<Model>();
    auto& clk = m->add<Clock>("clk", 0.01);
    auto& d = m->add<EventDelay>("d", uniform_duration(0.001, 0.004));
    auto& cnt = m->add<EventCounter>("cnt");
    auto& probe = m->add<Probe>("probe", 1, 0.02);
    m->connect_event(clk, 0, d, 0);
    m->connect_event(d, 0, cnt, 0);
    m->connect(cnt, 0, probe, 0);
    return m;
  };
}

/// Jittered events PLUS continuous state: per-lane event schedules diverge,
/// so integration boundaries stop being shared and lanes must spill to the
/// scalar path (which must still reproduce the scalar trace exactly).
Factory jitter_stateful_factory() {
  return [] {
    auto m = std::make_unique<Model>();
    auto& clk = m->add<Clock>("clk", 0.01);
    auto& d = m->add<EventDelay>("d", uniform_duration(0.001, 0.004));
    auto& cnt = m->add<EventCounter>("cnt");
    auto& sine = m->add<Sine>("sine", 1.0, 5.0);
    auto& integ = m->add<Integrator>("integ", 0.0);
    auto& probe = m->add<Probe>("probe", 1, 0.02);
    m->connect_event(clk, 0, d, 0);
    m->connect_event(d, 0, cnt, 0);
    m->connect(sine, 0, integ, 0);
    m->connect(integ, 0, probe, 0);
    return m;
  };
}

/// A constant-duration delay fed by BOTH the clock (full-mask activations:
/// the driver arms its shared lockstep execution) and a jittered branch
/// (per-lane activation times: partial masks). The partial-mask activation
/// of an armed lockstep block is the eviction cliff — the driver must keep
/// the larger lane subset and spill the rest, bit-identically.
Factory lockstep_cliff_factory() {
  return [] {
    auto m = std::make_unique<Model>();
    auto& clk = m->add<Clock>("clk", 0.01);
    auto& jit = m->add<EventDelay>("jit", uniform_duration(0.001, 0.004));
    auto& fix = m->add<EventDelay>("fix", 0.0005);
    auto& cnt = m->add<EventCounter>("cnt");
    m->connect_event(clk, 0, fix, 0);
    m->connect_event(clk, 0, jit, 0);
    m->connect_event(jit, 0, fix, 0);
    m->connect_event(fix, 0, cnt, 0);
    return m;
  };
}

TEST(BatchedSimTest, StatelessChainsAllLanesBitIdentical) {
  ExpectLanesMatchScalar(chains_factory(4), SimOptions{.end_time = 0.05},
                         /*width=*/4, {1, 2, 3, 4});
}

TEST(BatchedSimTest, PartialBatchRunsFewerLanesThanWidth) {
  ExpectLanesMatchScalar(chains_factory(3), SimOptions{.end_time = 0.05},
                         /*width=*/8, {7, 11, 13});
}

TEST(BatchedSimTest, StatefulServoRk4LockstepBitIdentical) {
  ExpectLanesMatchScalar(servo_factory(), SimOptions{.end_time = 0.2},
                         /*width=*/4, {10, 20, 30, 40});
}

TEST(BatchedSimTest, StatefulServoRkf45PerLaneBitIdentical) {
  SimOptions base{.end_time = 0.2};
  base.integrator.kind = IntegratorKind::kRkf45;
  ExpectLanesMatchScalar(servo_factory(), base, /*width=*/4, {10, 20, 30, 40});
}

TEST(BatchedSimTest, FullRefreshModeBitIdentical) {
  SimOptions base{.end_time = 0.1};
  base.full_refresh = true;
  ExpectLanesMatchScalar(servo_factory(), base, /*width=*/2, {5, 6});
}

TEST(BatchedSimTest, DivergentStatelessLanesMaskWithoutEviction) {
  const Factory f = jitter_factory();
  BatchedSim bs(f, BatchedOptions{SimOptions{.end_time = 0.5}, 4});
  bs.run(std::vector<std::uint64_t>{1, 2, 3, 4});
  EXPECT_EQ(bs.evictions(), 0u);
  ExpectLanesMatchScalar(f, SimOptions{.end_time = 0.5}, 4, {1, 2, 3, 4});
}

TEST(BatchedSimTest, DivergentStatefulLanesSpillAndStayBitIdentical) {
  const Factory f = jitter_stateful_factory();
  BatchedSim bs(f, BatchedOptions{SimOptions{.end_time = 0.5}, 4});
  bs.run(std::vector<std::uint64_t>{1, 2, 3, 4});
  // Jittered delays give each lane its own event times; with continuous
  // state in the diagram that must force scalar spills.
  EXPECT_GT(bs.evictions(), 0u);
  ExpectLanesMatchScalar(f, SimOptions{.end_time = 0.5}, 4, {1, 2, 3, 4});
}

TEST(BatchedSimTest, LockstepCliffEvictsAndStaysBitIdentical) {
  const Factory f = lockstep_cliff_factory();
  BatchedSim bs(f, BatchedOptions{SimOptions{.end_time = 0.05}, 4});
  bs.run(std::vector<std::uint64_t>{1, 2, 3, 4});
  EXPECT_GT(bs.evictions(), 0u);
  ExpectLanesMatchScalar(f, SimOptions{.end_time = 0.05}, 4, {1, 2, 3, 4});
}

TEST(BatchedSimTest, ParameterVaryingFactoryStaysPerLaneBitIdentical) {
  // A stateful factory may legally vary block parameters call to call (the
  // structural check pins shapes only). The uniform single-execution path
  // must detect the parameter mismatch via describe() and leave the block
  // per-lane; masks absorb the divergence without evictions.
  std::size_t calls = 0;
  const Factory f = [&calls] {
    auto m = std::make_unique<Model>();
    auto& clk = m->add<Clock>("clk", 0.01);
    auto& d = m->add<EventDelay>("d", calls++ % 2 == 0 ? 0.001 : 0.002);
    auto& cnt = m->add<EventCounter>("cnt");
    m->connect_event(clk, 0, d, 0);
    m->connect_event(d, 0, cnt, 0);
    return m;
  };
  BatchedSim bs(f, BatchedOptions{SimOptions{.end_time = 0.05}, 2});
  bs.run(std::vector<std::uint64_t>{1, 2});
  EXPECT_EQ(bs.evictions(), 0u);
  // The factory's parameter cycle has period 2, so continuing to call it
  // reproduces each lane's exact model for the scalar reference runs.
  for (std::size_t l = 0; l < 2; ++l) {
    std::unique_ptr<Model> m = f();
    SimOptions so{.end_time = 0.05};
    so.seed = l + 1;
    Simulator ref(*m, so);
    ref.run();
    EXPECT_TRUE(bs.trace(l) == ref.trace()) << "lane " << l;
    EXPECT_EQ(bs.events_dispatched(l), ref.events_dispatched()) << "lane " << l;
  }
}

TEST(BatchedSimTest, SameSeedLanesProduceIdenticalTraces) {
  BatchedSim bs(chains_factory(2), BatchedOptions{SimOptions{.end_time = 0.05}, 4});
  bs.run(std::vector<std::uint64_t>{42, 42, 42, 42});
  for (std::size_t l = 1; l < 4; ++l) {
    EXPECT_TRUE(bs.trace(l) == bs.trace(0));
  }
}

TEST(BatchedSimTest, RunIsRepeatable) {
  BatchedSim bs(jitter_factory(), BatchedOptions{SimOptions{.end_time = 0.2}, 4});
  bs.run(std::vector<std::uint64_t>{1, 2, 3, 4});
  const std::uint64_t d0 = trace_digest(bs.trace(0));
  const std::uint64_t d3 = trace_digest(bs.trace(3));
  bs.run(std::vector<std::uint64_t>{1, 2, 3, 4});
  EXPECT_EQ(trace_digest(bs.trace(0)), d0);
  EXPECT_EQ(trace_digest(bs.trace(3)), d3);
}

TEST(BatchedSimTest, DefaultWidthIsPreferredBatchWidth) {
  BatchedSim bs(chains_factory(1), BatchedOptions{SimOptions{.end_time = 0.01}});
  EXPECT_EQ(bs.width(), simd::preferred_batch_width());
}

TEST(BatchedSimTest, RejectsBadWidthAndSeedCounts) {
  EXPECT_THROW(BatchedSim(chains_factory(1),
                          BatchedOptions{SimOptions{}, 65}),
               std::invalid_argument);
  BatchedSim bs(chains_factory(1), BatchedOptions{SimOptions{.end_time = 0.01}, 2});
  EXPECT_THROW(bs.run(std::vector<std::uint64_t>{}), std::invalid_argument);
  EXPECT_THROW(bs.run(std::vector<std::uint64_t>{1, 2, 3}),
               std::invalid_argument);
  EXPECT_THROW(bs.trace(1), std::out_of_range);
}

TEST(BatchedSimTest, RejectsStructurallyDivergentFactory) {
  int calls = 0;
  const Factory f = [&calls] {
    return std::make_unique<Model>(examples::make_chains(calls++ == 0 ? 2 : 3));
  };
  EXPECT_THROW(BatchedSim(f, BatchedOptions{SimOptions{}, 2}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ecsim::sim
