# Empty compiler generated dependencies file for test_aaa.
# This may be replaced when dependencies are built.
