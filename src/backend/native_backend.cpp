#include "backend/native_backend.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>

// Baked in by src/CMakeLists.txt so a generated module is always built by
// the same toolchain, with the same flags, against the same headers as the
// host process — the precondition for passing sim::Trace across the ABI.
#ifndef ECSIM_NATIVE_CXX_DEFAULT
#define ECSIM_NATIVE_CXX_DEFAULT "c++"
#endif
#ifndef ECSIM_NATIVE_CXXFLAGS
#define ECSIM_NATIVE_CXXFLAGS "-O2"
#endif
#ifndef ECSIM_NATIVE_INCLUDE_DIR
#define ECSIM_NATIVE_INCLUDE_DIR "."
#endif
#ifndef ECSIM_NATIVE_RT_ARCHIVE
#define ECSIM_NATIVE_RT_ARCHIVE ""
#endif

namespace ecsim::backend {

namespace {

namespace fs = std::filesystem;

std::string env_or(const char* name, std::string fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::string(v) : std::move(fallback);
}

std::uint64_t fnv1a(std::string_view s, std::uint64_t h = 1469598103934665603ULL) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t stamp_file(const fs::path& p, std::uint64_t h) {
  std::error_code ec;
  const auto size = fs::file_size(p, ec);
  if (!ec) h = fnv1a(std::to_string(size), h);
  const auto mtime = fs::last_write_time(p, ec);
  if (!ec) h = fnv1a(std::to_string(mtime.time_since_epoch().count()), h);
  return h;
}

std::string tool_fingerprint(const std::string& cxx, const std::string& flags,
                             const std::string& archive) {
  std::uint64_t h = fnv1a(cxx);
  h = fnv1a(flags, h);
  h = fnv1a(archive, h);
  // Key on size + mtime of everything a module's behaviour depends on beyond
  // its own source text — the runtime archive it links against and the
  // engine/ABI headers it includes — so a rebuilt tree never resurrects a
  // stale .so. (The generated text itself is salted into the key by the
  // caller.)
  h = stamp_file(archive, h);
  const fs::path inc = ECSIM_NATIVE_INCLUDE_DIR;
  h = stamp_file(inc / "backend" / "native_runtime.hpp", h);
  h = stamp_file(inc / "backend" / "native_abi.hpp", h);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

fs::path cache_dir() {
  const std::string dir = env_or("ECSIM_NATIVE_CACHE", std::string());
  if (!dir.empty()) return dir;
  return fs::temp_directory_path() / "ecsim_native_cache";
}

std::string tail_of(const fs::path& log, std::size_t max_bytes = 2000) {
  std::ifstream in(log);
  if (!in) return std::string();
  std::stringstream ss;
  ss << in.rdbuf();
  std::string s = ss.str();
  if (s.size() > max_bytes) s.erase(0, s.size() - max_bytes);
  return s;
}

[[noreturn]] void fail(const std::string& why) {
  throw std::runtime_error("native backend: " + why);
}

/// Compile `src_path` into `so_path` (atomically, via a temp name). Throws
/// with the tail of the compiler log on a nonzero exit.
void compile_module(const std::string& cxx, const std::string& flags,
                    const std::string& archive, const fs::path& src_path,
                    const fs::path& so_path) {
  const fs::path tmp =
      so_path.string() + ".tmp." + std::to_string(::getpid());
  const fs::path log = so_path.string() + ".log";
  std::string cmd = "\"" + cxx + "\" -std=c++20 " + flags +
                    " -shared -fPIC -I\"" ECSIM_NATIVE_INCLUDE_DIR "\" \"" +
                    src_path.string() + "\" \"" + archive + "\" -o \"" +
                    tmp.string() + "\" > \"" + log.string() + "\" 2>&1";
  const int rc = std::system(cmd.c_str());
  if (rc != 0) {
    std::error_code ec;
    fs::remove(tmp, ec);
    std::string msg = "compile failed (exit " + std::to_string(rc) + ")";
    const std::string t = tail_of(log);
    if (!t.empty()) msg += ":\n" + t;
    fail(msg);
  }
  std::error_code ec;
  fs::rename(tmp, so_path, ec);
  if (ec && !fs::exists(so_path)) {
    fail("cache rename failed: " + ec.message());
  }
}

NativeModule open_module(const fs::path& so_path,
                         const std::string& want_hash) {
  void* h = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (h == nullptr) {
    const char* e = ::dlerror();
    fail(std::string("dlopen failed: ") + (e != nullptr ? e : "?"));
  }
  NativeModule mod;
  mod.so_path = so_path.string();
  mod.abi = reinterpret_cast<EcsimNativeAbiFn>(::dlsym(h, "ecsim_native_abi"));
  mod.hash =
      reinterpret_cast<EcsimNativeHashFn>(::dlsym(h, "ecsim_native_hash"));
  mod.run = reinterpret_cast<EcsimNativeRunFn>(::dlsym(h, "ecsim_native_run"));
  if (mod.abi == nullptr || mod.hash == nullptr || mod.run == nullptr) {
    fail("module is missing an ecsim_native_* symbol (not an ecsim model?)");
  }
  if (mod.abi() != kNativeAbiVersion) {
    fail("ABI mismatch: module " + std::to_string(mod.abi()) + ", host " +
         std::to_string(kNativeAbiVersion));
  }
  if (want_hash != mod.hash()) {
    fail("IR hash mismatch: module " + std::string(mod.hash()) + ", host " +
         want_hash);
  }
  return mod;
}

}  // namespace

bool native_disabled() {
  const char* v = std::getenv("ECSIM_NATIVE_DISABLE");
  return v != nullptr && *v != '\0';
}

const NativeModule& load_native_module(const ir::Model& m,
                                       const std::string& source) {
  // Process-lifetime registry: one load per artifact, never unloaded.
  static std::mutex mu;
  static std::map<std::string, NativeModule> loaded;

  const std::string cxx = env_or("ECSIM_NATIVE_CXX", ECSIM_NATIVE_CXX_DEFAULT);
  const std::string flags = ECSIM_NATIVE_CXXFLAGS;
  const std::string archive = ECSIM_NATIVE_RT_ARCHIVE;
  const std::string hash = ir::hash_hex(m);
  std::string key = "m";
  key += hash.substr(2);
  key += "_abi";
  key += std::to_string(kNativeAbiVersion);
  key += "_t";
  key += tool_fingerprint(cxx, flags, archive);
  {
    // The generator itself evolves: same IR, newer codegen → different
    // module. Key on the generated text so a cache can never serve a .so
    // built by an older generator.
    char buf[24];
    std::snprintf(buf, sizeof buf, "_g%016llx",
                  static_cast<unsigned long long>(fnv1a(source)));
    key += buf;
  }

  std::lock_guard<std::mutex> lock(mu);
  const auto it = loaded.find(key);
  if (it != loaded.end()) return it->second;

  if (archive.empty() || !fs::exists(archive)) {
    fail("runtime archive not found: '" + archive + "'");
  }
  std::error_code ec;
  const fs::path dir = cache_dir();
  fs::create_directories(dir, ec);
  if (ec) fail("cannot create cache dir " + dir.string() + ": " + ec.message());

  const fs::path so_path = dir / (key + ".so");
  if (!fs::exists(so_path)) {
    const fs::path src_path = dir / (key + ".cpp");
    {
      std::ofstream out(src_path, std::ios::trunc);
      if (!out) fail("cannot write " + src_path.string());
      out << source;
    }
    compile_module(cxx, flags, archive, src_path, so_path);
  }
  return loaded.emplace(key, open_module(so_path, hash)).first->second;
}

}  // namespace ecsim::backend
