// EXP-P6: native code-generation backend (DESIGN.md §3.6). The compile
// pipeline lowers the model to the canonical IR, specializes C++ for it
// (literal arena offsets, constant-folded parameters, switch dispatch over
// a constexpr schedule), builds it with the host toolchain into a .so and
// runs it through the same statically-linked event queue / RNG / trace
// runtime as the interpreter — so the trace must be bit-identical while the
// per-event interpretation overhead (indirect block dispatch, port
// indirection, attr lookups) is compiled away.
//
// Measured on the standard workloads:
//   - chains_200: the EXP-P1/P4 event workload (queue + dispatch bound);
//   - servo_rk4:  the sampled-data servo loop (integration bound).
// Interleaved best-of-7 against the PR-4 interpreter hot path, same
// process, warm module. One-time codegen+compile cost is reported
// separately (it is amortized by the .so cache across processes).
//
// GUARD: native >= 1.5x interpreter events/s on chains_200 (target 2x) AND
// bit-identical traces on both scenarios. Runs via `ctest -C bench`
// (bench_p6_codegen_guard); the process exits nonzero on failure.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "backend/native_abi.hpp"
#include "backend/native_backend.hpp"
#include "backend/native_codegen.hpp"
#include "bench_common.hpp"
#include "blocks/examples.hpp"
#include "sim/compiled_model.hpp"
#include "sim/simulator.hpp"

using namespace ecsim;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Scenario {
  const char* name;
  sim::Model model;
  sim::SimOptions opts;
};

struct Measured {
  std::size_t events = 0;
  double interp_best = 0.0;  // events/s
  double native_best = 0.0;  // events/s
  double build_secs = 0.0;   // one-time codegen + compile + dlopen
  bool identical = false;
  std::string ir_hash;
};

Measured measure(Scenario& sc, int reps) {
  Measured out;
  const ir::Model irm = sim::build_ir(sc.model, sc.name);
  out.ir_hash = ir::hash_hex(irm);

  sim::Simulator interp(sim::CompiledModel(sc.model), sc.opts);
  interp.run();  // warm capacities out of the measurement

  const auto build_t0 = std::chrono::steady_clock::now();
  const std::string source = backend::generate_native_source(irm);
  const backend::NativeModule& mod = backend::load_native_module(irm, source);
  out.build_secs = seconds_since(build_t0);

  backend::NativeRunOptions nopts;
  nopts.end_time = sc.opts.end_time;
  nopts.integrator_kind = static_cast<int>(sc.opts.integrator.kind);
  nopts.max_step = sc.opts.integrator.max_step;
  nopts.rel_tol = sc.opts.integrator.rel_tol;
  nopts.abs_tol = sc.opts.integrator.abs_tol;
  nopts.min_step = sc.opts.integrator.min_step;
  nopts.seed = sc.opts.seed;
  nopts.max_events = sc.opts.max_events;
  nopts.reserve_queue = sc.opts.reserve_queue;

  sim::Trace ntrace;
  std::size_t nevents = 0;
  char err[1024] = {0};
  if (mod.run(&nopts, &ntrace, &nevents, err, sizeof err) != 0) {
    std::fprintf(stderr, "native run failed: %s\n", err);
    return out;
  }
  out.events = interp.events_dispatched();
  out.identical = nevents == interp.events_dispatched() &&
                  ntrace == interp.trace();

  // Interleaved best-of-`reps` so thermal/frequency drift hits both equally.
  for (int r = 0; r < reps; ++r) {
    {
      const auto t0 = std::chrono::steady_clock::now();
      interp.run();
      const double eps =
          static_cast<double>(interp.events_dispatched()) / seconds_since(t0);
      out.interp_best = std::max(out.interp_best, eps);
    }
    {
      const auto t0 = std::chrono::steady_clock::now();
      if (mod.run(&nopts, &ntrace, &nevents, err, sizeof err) != 0) {
        std::fprintf(stderr, "native run failed: %s\n", err);
        return out;
      }
      const double eps = static_cast<double>(nevents) / seconds_since(t0);
      out.native_best = std::max(out.native_best, eps);
    }
  }
  return out;
}

void report_scenario(bench::JsonReport& report, const char* name,
                     const Measured& m, double speedup) {
  report.begin_object();
  report.field("scenario", std::string(name));
  report.field("model_ir_hash", m.ir_hash);
  report.field("events", m.events);
  report.field("interp_best_events_per_s", m.interp_best);
  report.field("native_best_events_per_s", m.native_best);
  report.field("speedup", speedup);
  report.field("codegen_compile_dlopen_s", m.build_secs);
  report.field("traces_identical", std::string(m.identical ? "yes" : "NO"));
  report.end_object();
}

int experiment() {
  bench::banner("EXP-P6", "(native code generation, DESIGN.md §3.6)",
                "IR-specialized compiled model vs the interpreter hot path: "
                "same runtime kernels, dispatch/indirection compiled away, "
                "bit-identical traces required.");

  constexpr int kReps = 7;
  constexpr double kGuard = 1.5;

  Scenario chains{"chains_200", blocks::examples::make_chains(200), {}};
  chains.opts.end_time = 1.0;
  chains.opts.reserve_queue = 1024;

  Scenario servo{"servo_rk4", blocks::examples::make_servo(), {}};
  servo.opts.end_time = 5.0;
  servo.opts.integrator.kind = sim::IntegratorKind::kRk4;
  servo.opts.integrator.max_step = 2e-4;

  bench::JsonReport report("EXP-P6");
  report.model_ir_hash("chains_200", chains.model);
  report.model_ir_hash("servo_rk4", servo.model);
  report.begin_array("codegen");
  std::printf("%-12s %10s %15s %15s %9s %10s %10s\n", "scenario", "events",
              "interp [ev/s]", "native [ev/s]", "speedup", "traces",
              "build [s]");

  const Measured mc = measure(chains, kReps);
  const double chains_speedup = mc.native_best / mc.interp_best;
  std::printf("%-12s %10zu %15.0f %15.0f %8.2fx %10s %10.2f\n", "chains_200",
              mc.events, mc.interp_best, mc.native_best, chains_speedup,
              mc.identical ? "identical" : "DIVERGED", mc.build_secs);
  report_scenario(report, "chains_200", mc, chains_speedup);

  const Measured ms = measure(servo, kReps);
  const double servo_speedup = ms.native_best / ms.interp_best;
  std::printf("%-12s %10zu %15.0f %15.0f %8.2fx %10s %10.2f\n", "servo_rk4",
              ms.events, ms.interp_best, ms.native_best, servo_speedup,
              ms.identical ? "identical" : "DIVERGED", ms.build_secs);
  report_scenario(report, "servo_rk4", ms, servo_speedup);
  report.end_array();

  const bool identical = mc.identical && ms.identical;
  const bool pass = chains_speedup >= kGuard && identical;
  report.begin_array("guard");
  report.begin_object();
  report.field("scenario", std::string("chains_200"));
  report.field("min_speedup", kGuard);
  report.field("measured_speedup", chains_speedup);
  report.field("traces_identical", std::string(identical ? "yes" : "NO"));
  report.field("pass", std::string(pass ? "yes" : "NO"));
  report.end_object();
  report.end_array();
  std::printf("\nguard: chains_200 native speedup %.2fx (need >= %.2fx), "
              "traces %s — %s\n\n",
              chains_speedup, kGuard, identical ? "identical" : "DIVERGED",
              pass ? "PASS" : "FAIL");
  report.write("BENCH_p6.json");
  return pass ? 0 : 1;
}

/// Steady-state throughput of the loaded module vs the warm interpreter,
/// as google-benchmark cases over model size.
void BM_BackendRun(benchmark::State& state) {
  const bool native = state.range(0) != 0;
  const auto n = static_cast<std::size_t>(state.range(1));
  sim::Model m = blocks::examples::make_chains(n);
  sim::SimOptions opts;
  opts.end_time = 1.0;
  std::size_t events = 0;
  if (native) {
    const ir::Model irm = sim::build_ir(m, "chains_" + std::to_string(n));
    const backend::NativeModule& mod =
        backend::load_native_module(irm, backend::generate_native_source(irm));
    backend::NativeRunOptions nopts;
    nopts.end_time = opts.end_time;
    sim::Trace trace;
    char err[256];
    for (auto _ : state) {
      if (mod.run(&nopts, &trace, &events, err, sizeof err) != 0) {
        state.SkipWithError("native run failed");
        return;
      }
    }
  } else {
    sim::Simulator s(sim::CompiledModel(m), opts);
    s.run();
    for (auto _ : state) {
      s.run();
    }
    events = s.events_dispatched();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BackendRun)
    ->ArgsProduct({{0, 1}, {16, 200}})
    ->ArgNames({"native", "chains"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const int guard = experiment();
  const int bench_rc = bench::run_benchmarks(argc, argv);
  return guard != 0 ? guard : bench_rc;
}
