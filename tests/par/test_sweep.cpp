#include "par/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "aaa/adequation.hpp"
#include "aaa/codegen.hpp"
#include "par/fault_sweep.hpp"
#include "par/monte_carlo.hpp"
#include "translate/cosim.hpp"

namespace ecsim::sweep {
namespace {

TimingGrid small_timing_grid() {
  TimingGrid grid;
  grid.loop = servo_loop(0.01, 0.12);  // short horizon: this is a unit test
  grid.latency_fracs = {0.0, 0.2, 0.4};
  grid.jitter_fracs = {0.0, 0.3};
  return grid;
}

// Exact (bitwise, not approximate) equality of every cell field. A
// field-by-field compare rather than memcmp: struct padding is
// indeterminate.
bool bit_identical(const std::vector<SweepCell>& a,
                   const std::vector<SweepCell>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const SweepCell& x = a[i];
    const SweepCell& y = b[i];
    if (x.la_frac != y.la_frac || x.jitter_frac != y.jitter_frac ||
        x.bus_bandwidth != y.bus_bandwidth || x.wcet_scale != y.wcet_scale ||
        x.iae != y.iae || x.ise != y.ise || x.itae != y.itae ||
        x.cost != y.cost || x.overshoot_pct != y.overshoot_pct ||
        x.act_latency_mean != y.act_latency_mean ||
        x.act_jitter != y.act_jitter || x.stable != y.stable) {
      return false;
    }
  }
  return true;
}

TEST(Sweep, TimingGridRowMajorAndPopulated) {
  const TimingGrid grid = small_timing_grid();
  par::BatchOptions batch;
  batch.threads = 1;
  const auto cells = SweepRunner(batch).run(grid);
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_DOUBLE_EQ(cells[0].la_frac, 0.0);
  EXPECT_DOUBLE_EQ(cells[0].jitter_frac, 0.0);
  EXPECT_DOUBLE_EQ(cells[1].jitter_frac, 0.3);
  EXPECT_DOUBLE_EQ(cells[4].la_frac, 0.4);
  for (const SweepCell& c : cells) {
    EXPECT_GT(c.iae, 0.0);
    EXPECT_TRUE(c.stable);
  }
  // Latency degrades performance monotonically on this grid (EXP-C1 shape).
  EXPECT_GT(cells[4].iae, cells[0].iae);
}

TEST(Sweep, TimingGridBitIdenticalAcrossThreadCounts) {
  const TimingGrid grid = small_timing_grid();
  std::vector<SweepCell> reference;
  for (const std::size_t threads : {1u, 2u, 7u}) {
    par::BatchOptions batch;
    batch.threads = threads;
    const auto cells = SweepRunner(batch).run(grid);
    if (threads == 1u) {
      reference = cells;
    } else {
      EXPECT_TRUE(bit_identical(reference, cells))
          << "threads=" << threads << " diverged from serial";
    }
  }
}

TEST(Sweep, ArchitectureGridThroughFullFlow) {
  ArchitectureGrid grid;
  grid.loop = servo_loop(0.01, 0.12);
  grid.processors = 2;
  grid.bus_bandwidths = {1e5, 1e3};
  grid.wcet_scales = {1.0, 3.0};
  par::BatchOptions batch;
  batch.threads = 2;
  const auto cells = SweepRunner(batch).run(grid);
  ASSERT_EQ(cells.size(), 4u);
  // Heavier controller on a slower bus cannot beat the light/fast corner.
  EXPECT_GE(cells[3].act_latency_mean, cells[0].act_latency_mean);
  for (const SweepCell& c : cells) EXPECT_GT(c.bus_bandwidth, 0.0);
}

TEST(Sweep, CsvAndHeatmapRender) {
  const TimingGrid grid = small_timing_grid();
  par::BatchOptions batch;
  batch.threads = 2;
  const auto cells = SweepRunner(batch).run(grid);
  const std::string csv = to_csv(cells);
  EXPECT_NE(csv.find("la_frac,jitter_frac"), std::string::npos);
  // Header + one line per cell.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            cells.size() + 1);
  const std::string map =
      heatmap(cells, grid.latency_fracs, grid.jitter_fracs, "La/Ts",
              "jitter/Ts", &SweepCell::cost, "control cost");
  EXPECT_NE(map.find("control cost"), std::string::npos);
  EXPECT_NE(map.find("0.4"), std::string::npos);
  EXPECT_THROW(heatmap(cells, grid.latency_fracs, {0.1}, "r", "c",
                       &SweepCell::iae, "t"),
               std::invalid_argument);
}

TEST(MonteCarlo, DeterministicAcrossThreadCountsAndJitterAppears) {
  // Two-processor loop with the controller across the bus: actual times
  // below WCET make latencies vary per trial.
  const translate::LoopSpec loop = servo_loop(0.01, 0.1);
  translate::DistributedSpec dist;
  dist.bind_ctrl = "P1";  // force the controller onto the second processor
  const aaa::AlgorithmGraph alg = translate::make_loop_algorithm(loop, dist);
  const aaa::Schedule sched = aaa::adequate(alg, dist.arch);
  const aaa::GeneratedCode code =
      aaa::generate_executives(alg, dist.arch, sched);

  MonteCarloSpec spec;
  spec.trials = 24;
  spec.iterations = 10;
  spec.bcet_fraction = 0.4;
  auto run_with = [&](std::size_t threads) {
    par::BatchOptions batch;
    batch.threads = threads;
    batch.seed = 7;
    return run_monte_carlo(alg, dist.arch, sched, code, spec, batch);
  };
  const MonteCarloResult serial = run_with(1);
  EXPECT_EQ(serial.deadlocks, 0u);
  ASSERT_EQ(serial.io_ops.size(), 2u);  // sense + act
  EXPECT_EQ(serial.io_ops[0].name, "sense");
  EXPECT_EQ(serial.io_ops[1].name, "act");
  // Random execution times make the actuation instant move per period.
  EXPECT_GT(serial.io_ops[1].jitter.mean, 0.0);
  EXPECT_GT(serial.makespan.max, 0.0);

  for (const std::size_t threads : {2u, 7u}) {
    const MonteCarloResult par_run = run_with(threads);
    for (std::size_t k = 0; k < serial.io_ops.size(); ++k) {
      EXPECT_EQ(serial.io_ops[k].mean_latency.mean,
                par_run.io_ops[k].mean_latency.mean);
      EXPECT_EQ(serial.io_ops[k].jitter.p95, par_run.io_ops[k].jitter.p95);
      EXPECT_EQ(serial.io_ops[k].max_latency.max,
                par_run.io_ops[k].max_latency.max);
    }
    EXPECT_EQ(serial.makespan.mean, par_run.makespan.mean);
  }
  EXPECT_NE(to_string(serial).find("sense"), std::string::npos);
}

// Per-cell progress/latency metrics (PR 7): the shared registry attached to
// BatchOptions sees one `sweep.cells_completed` tick and one
// `sweep.cell_wall_us` sample per cell, and the quantiles are queryable.
TEST(Sweep, CellMetricsCountEveryCell) {
  const TimingGrid grid = small_timing_grid();
  const std::size_t n = grid.latency_fracs.size() * grid.jitter_fracs.size();
  obs::MetricsRegistry reg;
  par::BatchOptions batch;
  batch.threads = 2;
  batch.metrics = &reg;
  const std::vector<SweepCell> cells = SweepRunner(batch).run(grid);
  ASSERT_EQ(cells.size(), n);
  EXPECT_EQ(reg.counter("sweep.cells_completed").value(), n);
  const obs::Histogram& wall = reg.histogram("sweep.cell_wall_us");
  EXPECT_EQ(wall.count(), n);
  EXPECT_GT(wall.sum(), 0.0);
  EXPECT_GE(wall.quantile(0.99), wall.quantile(0.5));
  // And the grid results are untouched by the instrumentation.
  EXPECT_TRUE(bit_identical(cells, SweepRunner(par::BatchOptions{}).run(grid)));
}

TEST(MonteCarlo, BatchWidthNeverChangesTheStatistics) {
  // batch_width only sets how many trials ride one BatchRunner task; seeds
  // are drawn per trial, so every width reproduces the width-1 statistics
  // bit for bit (and the pre-PR-8 one-trial-per-task behavior).
  const translate::LoopSpec loop = servo_loop(0.01, 0.1);
  translate::DistributedSpec dist;
  dist.bind_ctrl = "P1";
  const aaa::AlgorithmGraph alg = translate::make_loop_algorithm(loop, dist);
  const aaa::Schedule sched = aaa::adequate(alg, dist.arch);
  const aaa::GeneratedCode code =
      aaa::generate_executives(alg, dist.arch, sched);
  MonteCarloSpec spec;
  spec.trials = 13;
  spec.iterations = 8;
  spec.batch_width = 1;
  par::BatchOptions batch;
  batch.seed = 7;
  const MonteCarloResult ref =
      run_monte_carlo(alg, dist.arch, sched, code, spec, batch);
  EXPECT_EQ(ref.batch_width, 1u);
  EXPECT_GT(ref.trials_per_s, 0.0);
  for (const std::size_t width : {3u, 8u, 32u}) {  // 32 > trials: one task
    MonteCarloSpec s = spec;
    s.batch_width = width;
    const MonteCarloResult got =
        run_monte_carlo(alg, dist.arch, sched, code, s, batch);
    EXPECT_EQ(got.batch_width, width);
    ASSERT_EQ(got.io_ops.size(), ref.io_ops.size());
    for (std::size_t k = 0; k < ref.io_ops.size(); ++k) {
      EXPECT_EQ(ref.io_ops[k].mean_latency.mean,
                got.io_ops[k].mean_latency.mean);
      EXPECT_EQ(ref.io_ops[k].max_latency.max, got.io_ops[k].max_latency.max);
      EXPECT_EQ(ref.io_ops[k].jitter.p95, got.io_ops[k].jitter.p95);
    }
    EXPECT_EQ(ref.makespan.mean, got.makespan.mean);
    EXPECT_EQ(ref.deadlocks, got.deadlocks);
  }
}

TEST(MonteCarlo, DifferentSeedsDifferentDistributions) {
  const translate::LoopSpec loop = servo_loop(0.01, 0.1);
  translate::DistributedSpec dist;
  dist.bind_ctrl = "P1";
  const aaa::AlgorithmGraph alg = translate::make_loop_algorithm(loop, dist);
  const aaa::Schedule sched = aaa::adequate(alg, dist.arch);
  const aaa::GeneratedCode code =
      aaa::generate_executives(alg, dist.arch, sched);
  MonteCarloSpec spec;
  spec.trials = 8;
  spec.iterations = 8;
  par::BatchOptions a, b;
  a.seed = 1;
  b.seed = 2;
  const auto ra = run_monte_carlo(alg, dist.arch, sched, code, spec, a);
  const auto rb = run_monte_carlo(alg, dist.arch, sched, code, spec, b);
  EXPECT_NE(ra.io_ops[1].mean_latency.mean, rb.io_ops[1].mean_latency.mean);
}

TEST(FaultMonteCarlo, BatchWidthNeverChangesTheCells) {
  // Trial t's fault seed stays base_seed + t at every width, so the cell
  // list — and everything summarized from it — is width-invariant.
  FaultMonteCarloSpec spec;
  spec.loop = servo_loop(0.01, 0.1);
  spec.dist.bind_ctrl = "P1";
  spec.loss_rate = 0.3;
  spec.trials = 4;
  spec.base_seed = 11;
  spec.batch_width = 1;
  const FaultMonteCarloResult ref = run_fault_monte_carlo(spec, {});
  EXPECT_EQ(ref.batch_width, 1u);
  EXPECT_GT(ref.trials_per_s, 0.0);
  ASSERT_EQ(ref.cells.size(), 4u);
  spec.batch_width = 4;
  const FaultMonteCarloResult got = run_fault_monte_carlo(spec, {});
  EXPECT_EQ(got.batch_width, 4u);
  ASSERT_EQ(got.cells.size(), ref.cells.size());
  for (std::size_t i = 0; i < ref.cells.size(); ++i) {
    EXPECT_EQ(ref.cells[i].fault_seed, got.cells[i].fault_seed);
    EXPECT_EQ(ref.cells[i].iae, got.cells[i].iae);
    EXPECT_EQ(ref.cells[i].cost, got.cells[i].cost);
    EXPECT_EQ(ref.cells[i].messages_lost, got.cells[i].messages_lost);
  }
  EXPECT_EQ(ref.cost.mean, got.cost.mean);
  EXPECT_EQ(ref.unstable_trials, got.unstable_trials);
}

}  // namespace
}  // namespace ecsim::sweep
