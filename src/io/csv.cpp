#include "io/csv.hpp"

#include <fstream>
#include <sstream>

namespace ecsim::io {

std::string series_csv(const control::Series& series, const std::string& name) {
  std::ostringstream os;
  os << "t," << name << "\n";
  os.precision(12);
  for (const auto& [t, v] : series) os << t << "," << v << "\n";
  return os.str();
}

std::string multi_series_csv(const std::vector<control::Series>& series,
                       const std::vector<std::string>& names) {
  if (series.size() != names.size()) {
    throw std::invalid_argument("multi_series_csv: names/series size mismatch");
  }
  std::ostringstream os;
  os << "t";
  for (const std::string& n : names) os << "," << n;
  os << "\n";
  os.precision(12);
  std::size_t rows = 0;
  for (const auto& s : series) rows = std::max(rows, s.size());
  for (std::size_t r = 0; r < rows; ++r) {
    // Time column from the first series that has this row.
    bool wrote_t = false;
    std::ostringstream row;
    for (const auto& s : series) {
      if (!wrote_t && r < s.size()) {
        row << s[r].first;
        wrote_t = true;
        break;
      }
    }
    for (const auto& s : series) {
      row << ",";
      if (r < s.size()) row << s[r].second;
    }
    os << row.str() << "\n";
  }
  return os.str();
}

std::string latency_csv(const latency::LatencySeries& series) {
  std::ostringstream os;
  os << "k,instant,latency\n";
  os.precision(12);
  for (std::size_t k = 0; k < series.latencies.size(); ++k) {
    os << k << "," << series.instants[k] << "," << series.latencies[k] << "\n";
  }
  return os.str();
}

bool save_text(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace ecsim::io
