// The contract between the host process and a generated model .so. Both
// sides are compiled from this same header, by the same compiler, with the
// same flags (the build bakes its own toolchain into the backend — see
// src/CMakeLists.txt), so passing sim::Trace across the boundary is layout-
// safe. The ABI is versioned anyway: the host refuses a module whose
// ECSIM_NATIVE_ABI doesn't match, and the hash-keyed .so cache keys on the
// ABI + flags, so stale artifacts are never loaded.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ecsim::backend {

inline constexpr int kNativeAbiVersion = 1;

/// POD mirror of the sim::SimOptions subset the native backend supports
/// (observability and the legacy_* bench baselines force interpreter
/// fallback before this struct is ever built).
struct NativeRunOptions {
  double end_time = 1.0;
  int integrator_kind = 0;  // sim::IntegratorKind numeric value
  double max_step = 1e-3;
  double rel_tol = 1e-8;
  double abs_tol = 1e-10;
  double min_step = 1e-12;
  std::uint64_t seed = 1;
  std::size_t max_events = 20'000'000;
  int full_refresh = 0;
  std::size_t reserve_events = 0;
  std::size_t reserve_signals = 0;
  std::size_t reserve_queue = 0;
};

}  // namespace ecsim::backend

extern "C" {

/// ABI version the module was generated against (kNativeAbiVersion).
/// Symbol: resolved with dlsym; a missing symbol means "not an ecsim model".
using EcsimNativeAbiFn = int (*)();

/// Canonical IR hash (ir::hash_hex) of the model the module was generated
/// from. The host refuses a module whose hash differs from the IR in hand.
using EcsimNativeHashFn = const char* (*)();

/// Run the model: `trace` is an ecsim::sim::Trace* the module clears,
/// re-registers block names on and fills; `events_out` receives the
/// dispatched-event count. Returns 0 on success; on failure copies a
/// NUL-terminated message into err (truncated to errcap) and returns
/// nonzero. Exceptions never cross the boundary.
using EcsimNativeRunFn = int (*)(const ecsim::backend::NativeRunOptions* opts,
                                 void* trace, std::size_t* events_out,
                                 char* err, std::size_t errcap);

}  // extern "C"
