#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "blocks/continuous.hpp"
#include "blocks/discrete.hpp"
#include "blocks/event_blocks.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/probe.hpp"
#include "blocks/sample_hold.hpp"
#include "blocks/sources.hpp"

namespace ecsim::sim {
namespace {

using namespace ecsim::blocks;

TEST(Simulator, CombinationalChainEvaluatesInOrder) {
  Model m;
  auto& c = m.add<Constant>("c", 2.0);
  auto& g1 = m.add<Gain>("g1", 3.0);
  auto& g2 = m.add<Gain>("g2", 5.0);
  m.connect(c, 0, g1, 0);
  m.connect(g1, 0, g2, 0);
  Simulator s(m, SimOptions{.end_time = 0.1});
  s.run();
  EXPECT_DOUBLE_EQ(s.output_value(g2, 0), 30.0);
}

TEST(Simulator, CombinationalOrderIndependentOfInsertion) {
  // Insert consumer before producer; topological ordering must fix it.
  Model m;
  auto& g = m.add<Gain>("g", 3.0);
  auto& c = m.add<Constant>("c", 2.0);
  m.connect(c, 0, g, 0);
  Simulator s(m, SimOptions{.end_time = 0.1});
  s.run();
  EXPECT_DOUBLE_EQ(s.output_value(g, 0), 6.0);
}

TEST(Simulator, AlgebraicLoopDetected) {
  Model m;
  auto& g1 = m.add<Gain>("g1", 0.5);
  auto& g2 = m.add<Gain>("g2", 0.5);
  m.connect(g1, 0, g2, 0);
  m.connect(g2, 0, g1, 0);
  EXPECT_THROW(Simulator s(m), std::runtime_error);
}

TEST(Simulator, LoopThroughNonFeedthroughBlockIsFine) {
  // Integrator breaks the algebraic loop: dx/dt = -x.
  Model m;
  auto& integ = m.add<Integrator>("x", 1.0);
  auto& g = m.add<Gain>("g", -1.0);
  m.connect(integ, 0, g, 0);
  m.connect(g, 0, integ, 0);
  SimOptions opts;
  opts.end_time = 1.0;
  opts.integrator.max_step = 1e-3;
  Simulator s(m, opts);
  s.run();
  EXPECT_NEAR(s.output_value(integ, 0), std::exp(-1.0), 1e-6);
}

TEST(Simulator, IntegratesSineDrive) {
  // d/dt x = cos(2 pi f t) -> x = sin(2 pi f t)/(2 pi f)
  Model m;
  const double f = 1.0;
  auto& cosine = m.add<Sine>("cos", 1.0, f, std::numbers::pi / 2.0);
  auto& integ = m.add<Integrator>("x", 0.0);
  m.connect(cosine, 0, integ, 0);
  SimOptions opts;
  opts.end_time = 0.25;  // quarter period
  opts.integrator.max_step = 1e-3;
  Simulator s(m, opts);
  s.run();
  EXPECT_NEAR(s.output_value(integ, 0), 1.0 / (2.0 * std::numbers::pi), 1e-7);
}

TEST(Simulator, Rkf45MatchesRk4) {
  auto run = [](IntegratorKind kind) {
    Model m;
    auto& integ = m.add<Integrator>("x", 1.0);
    auto& g = m.add<Gain>("g", -2.0);
    m.connect(integ, 0, g, 0);
    m.connect(g, 0, integ, 0);
    SimOptions opts;
    opts.end_time = 1.0;
    opts.integrator.kind = kind;
    opts.integrator.max_step = 1e-2;
    Simulator s(m, opts);
    s.run();
    return s.output_value(integ, 0);
  };
  const double exact = std::exp(-2.0);
  EXPECT_NEAR(run(IntegratorKind::kRk4), exact, 1e-8);
  EXPECT_NEAR(run(IntegratorKind::kRkf45), exact, 1e-6);
}

TEST(Simulator, ClockFiresPeriodically) {
  Model m;
  auto& clk = m.add<Clock>("clk", 0.1);
  (void)clk;
  Simulator s(m, SimOptions{.end_time = 1.0});
  s.run();
  // Clock self-ticks; its own activations are traced.
  const auto times = s.trace().activation_times_by_name("clk");
  ASSERT_EQ(times.size(), 11u);  // t = 0.0, 0.1, ..., 1.0
  for (std::size_t k = 0; k < times.size(); ++k) {
    EXPECT_NEAR(times[k], 0.1 * static_cast<double>(k), 1e-12);
  }
}

TEST(Simulator, EventCounterCountsClockTicks) {
  Model m;
  auto& clk = m.add<Clock>("clk", 0.25);
  auto& counter = m.add<EventCounter>("n");
  m.connect_event(clk, 0, counter, 0);
  Simulator s(m, SimOptions{.end_time = 1.0});
  s.run();
  EXPECT_EQ(counter.count(), 5u);  // 0, .25, .5, .75, 1.0
  EXPECT_DOUBLE_EQ(s.output_value(counter, 0), 5.0);
}

TEST(Simulator, SampleHoldFreezesBetweenEvents) {
  Model m;
  auto& ramp = m.add<Sine>("src", 1.0, 0.25);  // slow sine
  auto& clk = m.add<Clock>("clk", 0.5);
  auto& sh = m.add<SampleHold>("sh", 1);
  m.connect(ramp, 0, sh, 0);
  m.connect_event(clk, 0, sh, 0);
  SimOptions opts;
  opts.end_time = 0.74;  // last sample at t = 0.5
  Simulator s(m, opts);
  s.run();
  const double expected = std::sin(2.0 * std::numbers::pi * 0.25 * 0.5);
  EXPECT_NEAR(s.output_value(sh, 0), expected, 1e-9);
}

TEST(Simulator, ZeroDelayEventChainSameInstantCausalOrder) {
  // clock -> S/H -> (done) -> discrete gain controller: all at t = k.
  Model m;
  auto& src = m.add<Constant>("one", 1.0);
  auto& clk = m.add<Clock>("clk", 1.0);
  auto& sh = m.add<SampleHold>("sh", 1);
  auto& acc = m.add<StateSpaceDisc>(
      "acc", math::Matrix{{1.0}}, math::Matrix{{1.0}}, math::Matrix{{1.0}},
      math::Matrix{{0.0}});
  m.connect(src, 0, sh, 0);
  m.connect(sh, 0, acc, 0);
  m.connect_event(clk, 0, sh, 0);
  m.connect_event(sh, sh.done_event_out(), acc, acc.event_in());
  Simulator s(m, SimOptions{.end_time = 3.0});
  s.run();
  // Activations at t=0,1,2,3: x accumulates the held 1.0 each time; the
  // output y = x is pre-update, so after 4 activations y = 3.
  EXPECT_DOUBLE_EQ(s.output_value(acc, 0), 3.0);
}

TEST(Simulator, RunIsRepeatable) {
  Model m;
  auto& clk = m.add<Clock>("clk", 0.1);
  auto& noise = m.add<NoiseHold>("noise", 0.0, 1.0);
  m.connect_event(clk, 0, noise, 0);
  Simulator s(m, SimOptions{.end_time = 1.0, .seed = 77});
  s.run();
  const double v1 = s.output_value(noise, 0);
  s.run();
  const double v2 = s.output_value(noise, 0);
  EXPECT_DOUBLE_EQ(v1, v2);  // same seed, same stream
}

TEST(Simulator, EventDelayShiftsActivation) {
  Model m;
  auto& clk = m.add<Clock>("clk", 1.0);
  auto& delay = m.add<EventDelay>("d", 0.3);
  auto& counter = m.add<EventCounter>("n");
  m.connect_event(clk, 0, delay, 0);
  m.connect_event(delay, 0, counter, 0);
  Simulator s(m, SimOptions{.end_time = 2.5});
  s.run();
  const auto times = s.trace().activation_times_by_name("n");
  ASSERT_EQ(times.size(), 3u);
  EXPECT_NEAR(times[0], 0.3, 1e-12);
  EXPECT_NEAR(times[1], 1.3, 1e-12);
  EXPECT_NEAR(times[2], 2.3, 1e-12);
}

TEST(Simulator, MaxEventsGuardsRunawayLoop) {
  Model m;
  auto& merge = m.add<EventMerge>("loop", 1);
  m.connect_event(merge, 0, merge, 0);  // zero-delay self-loop
  auto& clk = m.add<Clock>("clk", 1.0);
  m.connect_event(clk, 0, merge, 0);
  SimOptions opts;
  opts.end_time = 1.0;
  opts.max_events = 1000;
  Simulator s(m, opts);
  EXPECT_THROW(s.run(), std::runtime_error);
}

TEST(Simulator, ProbeRecordsPeriodically) {
  Model m;
  auto& c = m.add<Constant>("c", 4.0);
  auto& probe = m.add<Probe>("p", 1, 0.25);
  m.connect(c, 0, probe, 0);
  Simulator s(m, SimOptions{.end_time = 1.0});
  const Trace& tr = s.run();
  const auto series = tr.series(m.index_of(probe));
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series[2].second, 4.0);
  EXPECT_NEAR(series[4].first, 1.0, 1e-12);
}

TEST(Simulator, TriggeredProbeRecordsOnEventsOnly) {
  // Probe with record_period == 0: records only when its event input fires.
  Model m;
  auto& src = m.add<Sine>("src", 1.0, 1.0);
  auto& clk = m.add<Clock>("clk", 0.25, 0.1);
  auto& probe = m.add<Probe>("p", 1, 0.0);
  m.connect(src, 0, probe, 0);
  m.connect_event(clk, 0, probe, 0);
  Simulator s(m, SimOptions{.end_time = 1.0});
  const Trace& tr = s.run();
  const auto series = tr.series(m.index_of(probe));
  ASSERT_EQ(series.size(), 4u);  // 0.1, 0.35, 0.6, 0.85
  EXPECT_NEAR(series[0].first, 0.1, 1e-12);
  EXPECT_NEAR(series[0].second, std::sin(2.0 * std::numbers::pi * 0.1), 1e-9);
  EXPECT_EQ(probe.samples_taken(), 4u);
}

TEST(Simulator, UnconnectedInputReadsZero) {
  Model m;
  auto& g = m.add<Gain>("g", 5.0);
  Simulator s(m, SimOptions{.end_time = 0.1});
  s.run();
  EXPECT_DOUBLE_EQ(s.output_value(g, 0), 0.0);
}

TEST(Simulator, StateSpacePlantStepResponse) {
  // First-order lag dx = -x + u, y = x with u = 1: y(t) = 1 - e^{-t}.
  Model m;
  auto& u = m.add<Constant>("u", 1.0);
  auto& plant = m.add<StateSpaceCont>("plant", math::Matrix{{-1.0}},
                                      math::Matrix{{1.0}}, math::Matrix{{1.0}},
                                      math::Matrix{{0.0}});
  m.connect(u, 0, plant, 0);
  SimOptions opts;
  opts.end_time = 2.0;
  opts.integrator.max_step = 1e-3;
  Simulator s(m, opts);
  s.run();
  EXPECT_NEAR(s.output_value(plant, 0), 1.0 - std::exp(-2.0), 1e-7);
}

}  // namespace
}  // namespace ecsim::sim
