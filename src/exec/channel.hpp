// Message bookkeeping for the executive VM: per transfer (schedule comm
// index) and per iteration, when the data was made available by the sender
// and when the medium finished moving it.
#pragma once

#include <optional>
#include <vector>

#include "aaa/schedule.hpp"

namespace ecsim::exec {

using aaa::Time;

/// State of one logical channel (one ScheduledComm) across iterations.
/// Under fault injection (DESIGN.md §3.5) a transfer may instead be marked
/// *lost*: the frame occupied the medium but never delivers, and the
/// receiver's degradation policy decides what happens at the Recv.
class Channel {
 public:
  explicit Channel(std::size_t iterations)
      : sent_(iterations), delivered_(iterations), lost_(iterations) {}

  void mark_sent(std::size_t iter, Time t) { sent_.at(iter) = t; }
  void mark_delivered(std::size_t iter, Time t) { delivered_.at(iter) = t; }
  /// Record that iteration `iter`'s frame was dropped; `t` is the instant
  /// the loss is knowable (the would-be delivery end — e.g. a CRC failure
  /// detected when the frame finishes).
  void mark_lost(std::size_t iter, Time t) { lost_.at(iter) = t; }

  std::optional<Time> sent(std::size_t iter) const { return sent_.at(iter); }
  std::optional<Time> delivered(std::size_t iter) const {
    return delivered_.at(iter);
  }
  std::optional<Time> lost(std::size_t iter) const { return lost_.at(iter); }

 private:
  std::vector<std::optional<Time>> sent_;
  std::vector<std::optional<Time>> delivered_;
  std::vector<std::optional<Time>> lost_;
};

}  // namespace ecsim::exec
