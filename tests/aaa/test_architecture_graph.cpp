#include "aaa/architecture_graph.hpp"

#include <gtest/gtest.h>

namespace ecsim::aaa {
namespace {

TEST(ArchitectureGraph, AddAndFind) {
  ArchitectureGraph arch;
  const ProcId p0 = arch.add_processor("P0", "cpu");
  const ProcId p1 = arch.add_processor("P1", "dsp");
  const MediumId bus = arch.add_medium("bus", 100.0, 0.01);
  arch.attach(p0, bus);
  arch.attach(p1, bus);
  EXPECT_EQ(arch.num_processors(), 2u);
  EXPECT_EQ(arch.num_media(), 1u);
  EXPECT_EQ(arch.find_processor("P1"), p1);
  EXPECT_EQ(arch.find_medium("bus"), bus);
  EXPECT_THROW(arch.find_processor("x"), std::out_of_range);
  EXPECT_THROW(arch.find_medium("x"), std::out_of_range);
  EXPECT_EQ(arch.procs_on(bus).size(), 2u);
  EXPECT_EQ(arch.media_of(p0).size(), 1u);
}

TEST(ArchitectureGraph, Validation) {
  ArchitectureGraph arch;
  EXPECT_THROW(arch.add_processor(""), std::invalid_argument);
  arch.add_processor("P0");
  EXPECT_THROW(arch.add_processor("P0"), std::invalid_argument);
  EXPECT_THROW(arch.add_medium("m", 0.0), std::invalid_argument);
  EXPECT_THROW(arch.add_medium("m", 1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(arch.attach(5, 0), std::out_of_range);
}

TEST(ArchitectureGraph, AttachIsIdempotent) {
  ArchitectureGraph arch;
  const ProcId p = arch.add_processor("P0");
  const MediumId m = arch.add_medium("bus", 1.0);
  arch.attach(p, m);
  arch.attach(p, m);
  EXPECT_EQ(arch.media_of(p).size(), 1u);
  EXPECT_EQ(arch.procs_on(m).size(), 1u);
}

TEST(Medium, TransferTimeModel) {
  const Medium m{"bus", 100.0, 0.5};
  EXPECT_DOUBLE_EQ(m.transfer_time(200.0), 0.5 + 2.0);
  EXPECT_DOUBLE_EQ(m.transfer_time(0.0), 0.5);
}

TEST(BusArchitecture, FactoryShapes) {
  const ArchitectureGraph uni = ArchitectureGraph::bus_architecture(1, 100.0);
  EXPECT_EQ(uni.num_processors(), 1u);
  EXPECT_EQ(uni.num_media(), 0u);  // no bus needed for one processor

  const ArchitectureGraph tri = ArchitectureGraph::bus_architecture(3, 100.0, 0.1);
  EXPECT_EQ(tri.num_processors(), 3u);
  EXPECT_EQ(tri.num_media(), 1u);
  EXPECT_EQ(tri.procs_on(0).size(), 3u);
  EXPECT_EQ(tri.processor(2).name, "P2");
  EXPECT_THROW(ArchitectureGraph::bus_architecture(0, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace ecsim::aaa
