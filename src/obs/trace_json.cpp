#include "obs/trace_json.hpp"

#include <cstdio>
#include <sstream>

namespace ecsim::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

constexpr int kWallPid = 1;
constexpr int kSimPid = 2;

int pid_of(Domain d) { return d == Domain::kWall ? kWallPid : kSimPid; }

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

}  // namespace

std::uint32_t JsonTraceWriter::track_id(const std::string& name,
                                        Domain domain) {
  for (std::uint32_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i].name == name && tracks_[i].domain == domain) return i;
  }
  tracks_.push_back(Track{name, domain});
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

void JsonTraceWriter::add(const Tracer& tracer) {
  // Tracer track ids are tracer-local; remap into this writer's table so
  // multiple sources can share a file without colliding.
  std::vector<std::uint32_t> remap(tracer.num_tracks());
  for (std::uint32_t t = 0; t < remap.size(); ++t) {
    remap[t] = track_id(tracer.track_name(t), tracer.track_domain(t));
  }
  for (const TraceEvent& e : tracer.snapshot()) {
    const Track& trk = tracks_[remap[e.track]];
    std::ostringstream os;
    os << "{\"name\": \"" << json_escape(tracer.name(e.name)) << "\", \"pid\": "
       << pid_of(trk.domain) << ", \"tid\": " << remap[e.track] + 1
       << ", \"ts\": " << num(e.ts);
    switch (e.phase) {
      case Phase::kSpan:
        os << ", \"ph\": \"X\", \"dur\": " << num(e.dur);
        if (e.arg_name != kNoArg) {
          os << ", \"args\": {\"" << json_escape(tracer.name(e.arg_name))
             << "\": " << num(e.arg) << "}";
        }
        break;
      case Phase::kInstant:
        os << ", \"ph\": \"i\", \"s\": \"t\"";
        if (e.arg_name != kNoArg) {
          os << ", \"args\": {\"" << json_escape(tracer.name(e.arg_name))
             << "\": " << num(e.arg) << "}";
        }
        break;
      case Phase::kCounter:
        os << ", \"ph\": \"C\", \"args\": {\"value\": " << num(e.arg) << "}";
        break;
    }
    os << "}";
    events_.push_back(os.str());
  }
}

void JsonTraceWriter::add_slices(const std::vector<TimelineSlice>& slices) {
  for (const TimelineSlice& s : slices) {
    const std::uint32_t t = track_id(s.track, Domain::kSim);
    std::ostringstream os;
    os << "{\"name\": \"" << json_escape(s.name) << "\", \"ph\": \"X\""
       << ", \"pid\": " << kSimPid << ", \"tid\": " << t + 1
       << ", \"ts\": " << num(sim_us(s.start))
       << ", \"dur\": " << num(sim_us(s.end - s.start));
    if (!s.args.empty()) {
      os << ", \"args\": {";
      for (std::size_t i = 0; i < s.args.size(); ++i) {
        os << (i == 0 ? "" : ", ") << "\"" << json_escape(s.args[i].first)
           << "\": " << num(s.args[i].second);
      }
      os << "}";
    }
    os << "}";
    events_.push_back(os.str());
  }
}

void JsonTraceWriter::add_instant(const std::string& track,
                                 const std::string& name, double t_seconds,
                                 double arg_value,
                                 const std::string& arg_name) {
  const std::uint32_t t = track_id(track, Domain::kSim);
  std::ostringstream os;
  os << "{\"name\": \"" << json_escape(name) << "\", \"ph\": \"i\", \"s\": "
     << "\"t\", \"pid\": " << kSimPid << ", \"tid\": " << t + 1
     << ", \"ts\": " << num(sim_us(t_seconds)) << ", \"args\": {\""
     << json_escape(arg_name) << "\": " << num(arg_value) << "}}";
  events_.push_back(os.str());
}

std::string JsonTraceWriter::str() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool saw_wall = false, saw_sim = false;
  for (const Track& t : tracks_) {
    (t.domain == Domain::kWall ? saw_wall : saw_sim) = true;
  }
  bool first = true;
  auto emit = [&](const std::string& line) {
    os << (first ? "  " : ",\n  ") << line;
    first = false;
  };
  if (saw_wall) {
    emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"args\": "
         "{\"name\": \"runtime (wall clock)\"}}");
  }
  if (saw_sim) {
    emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 2, \"args\": "
         "{\"name\": \"timeline (sim time)\"}}");
  }
  for (std::uint32_t t = 0; t < tracks_.size(); ++t) {
    emit("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " +
         std::to_string(pid_of(tracks_[t].domain)) + ", \"tid\": " +
         std::to_string(t + 1) + ", \"args\": {\"name\": \"" +
         json_escape(tracks_[t].name) + "\"}}");
  }
  for (const std::string& e : events_) emit(e);
  os << "\n]}\n";
  return os.str();
}

bool JsonTraceWriter::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = str();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  return ok;
}

}  // namespace ecsim::obs
