#include "translate/extract.hpp"

#include <gtest/gtest.h>

#include "blocks/discrete.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sample_hold.hpp"
#include "blocks/sources.hpp"

namespace ecsim::translate {
namespace {

// Fig. 2 style model: plant-side blocks omitted; sampler -> err(Sum) ->
// controller -> actuator with a reference source feeding the Sum.
struct LoopFixture {
  sim::Model m;
  LoopFixture() {
    auto& ref = m.add<blocks::Step>("ref", 0.0, 1.0, 0.0);
    auto& sense = m.add<blocks::SampleHold>("sense", 1);
    auto& err = m.add<blocks::Sum>("err", std::vector<double>{1.0, -1.0}, 1);
    auto& ctrl = m.add<blocks::StateSpaceDisc>(
        "ctrl", math::Matrix{{0.0}}, math::Matrix{{1.0}}, math::Matrix{{1.0}},
        math::Matrix{{0.5}});
    auto& act = m.add<blocks::SampleHold>("act", 1);
    m.connect(ref, 0, err, 0);
    m.connect(sense, 0, err, 1);
    m.connect(err, 0, ctrl, 0);
    m.connect(ctrl, 0, act, 0);
  }
};

TEST(Extract, DiscoversOpsAndTransitiveDeps) {
  LoopFixture f;
  TimingAnnotations annot;
  annot.wcet["sense"]["cpu"] = 1e-4;
  annot.wcet["ctrl"]["cpu"] = 5e-4;
  annot.wcet["act"]["cpu"] = 2e-4;
  annot.out_size["sense"] = 8.0;
  annot.out_size["ctrl"] = 4.0;
  annot.binding["sense"] = "P0";
  const aaa::AlgorithmGraph alg = extract_algorithm(
      f.m, {"sense"}, {"ctrl"}, {"act"}, annot, 0.01);

  EXPECT_EQ(alg.num_operations(), 3u);
  EXPECT_DOUBLE_EQ(alg.period(), 0.01);
  const aaa::OpId s = alg.find("sense");
  const aaa::OpId c = alg.find("ctrl");
  const aaa::OpId a = alg.find("act");
  EXPECT_EQ(alg.op(s).kind, aaa::OpKind::kSensor);
  EXPECT_EQ(alg.op(c).kind, aaa::OpKind::kCompute);
  EXPECT_EQ(alg.op(a).kind, aaa::OpKind::kActuator);
  EXPECT_EQ(alg.op(s).bound_processor, "P0");
  EXPECT_DOUBLE_EQ(alg.op(c).wcet.at("cpu"), 5e-4);

  // sense -> ctrl discovered through the unextracted Sum block.
  ASSERT_EQ(alg.dependencies().size(), 2u);
  EXPECT_EQ(alg.predecessors(c), std::vector<aaa::OpId>{s});
  EXPECT_EQ(alg.predecessors(a), std::vector<aaa::OpId>{c});
  // Data size taken from the producer annotation.
  for (const aaa::DataDep& d : alg.dependencies()) {
    if (d.from == s) EXPECT_DOUBLE_EQ(d.size, 8.0);
    if (d.from == c) EXPECT_DOUBLE_EQ(d.size, 4.0);
  }
}

TEST(Extract, DefaultsForUnannotatedBlocks) {
  LoopFixture f;
  const aaa::AlgorithmGraph alg =
      extract_algorithm(f.m, {"sense"}, {"ctrl"}, {"act"}, {}, 0.01);
  EXPECT_DOUBLE_EQ(alg.op(alg.find("ctrl")).wcet.at("cpu"),
                   TimingAnnotations::kDefaultWcet);
  for (const aaa::DataDep& d : alg.dependencies()) {
    EXPECT_DOUBLE_EQ(d.size, 1.0);
  }
}

TEST(Extract, DuplicateListingRejected) {
  LoopFixture f;
  EXPECT_THROW(
      extract_algorithm(f.m, {"sense"}, {"sense"}, {"act"}, {}, 0.01),
      std::invalid_argument);
}

TEST(Extract, UnknownBlockRejected) {
  LoopFixture f;
  EXPECT_THROW(extract_algorithm(f.m, {"ghost"}, {}, {}, {}, 0.01),
               std::out_of_range);
}

TEST(Extract, NoSpuriousEdgeBetweenParallelChains) {
  sim::Model m;
  auto& s1 = m.add<blocks::SampleHold>("s1", 1);
  auto& c1 = m.add<blocks::StateSpaceDisc>("c1", math::Matrix{{0.0}},
                                           math::Matrix{{1.0}},
                                           math::Matrix{{1.0}},
                                           math::Matrix{{0.0}});
  auto& s2 = m.add<blocks::SampleHold>("s2", 1);
  auto& c2 = m.add<blocks::StateSpaceDisc>("c2", math::Matrix{{0.0}},
                                           math::Matrix{{1.0}},
                                           math::Matrix{{1.0}},
                                           math::Matrix{{0.0}});
  m.connect(s1, 0, c1, 0);
  m.connect(s2, 0, c2, 0);
  const aaa::AlgorithmGraph alg =
      extract_algorithm(m, {"s1", "s2"}, {"c1", "c2"}, {}, {}, 0.01);
  ASSERT_EQ(alg.dependencies().size(), 2u);
  EXPECT_EQ(alg.predecessors(alg.find("c1")),
            std::vector<aaa::OpId>{alg.find("s1")});
  EXPECT_EQ(alg.predecessors(alg.find("c2")),
            std::vector<aaa::OpId>{alg.find("s2")});
}

}  // namespace
}  // namespace ecsim::translate
