#include "blocks/math_blocks.hpp"

#include <gtest/gtest.h>

#include "blocks/sources.hpp"
#include "sim/simulator.hpp"

namespace ecsim::blocks {
namespace {

using sim::Model;
using sim::SimOptions;
using sim::Simulator;

double eval_chain(double input, auto&& make_block) {
  Model m;
  auto& c = m.add<Constant>("c", input);
  auto& b = make_block(m);
  m.connect(c, 0, b, 0);
  Simulator s(m, SimOptions{.end_time = 0.01});
  s.run();
  return s.output_value(b, 0);
}

TEST(Gain, MatrixGain) {
  Model m;
  auto& c = m.add<Constant>("c", std::vector<double>{1.0, 2.0});
  auto& g = m.add<Gain>("g", math::Matrix{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  m.connect(c, 0, g, 0);
  Simulator s(m, SimOptions{.end_time = 0.01});
  s.run();
  EXPECT_DOUBLE_EQ(s.output_value(g, 0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s.output_value(g, 0, 1), 11.0);
  EXPECT_DOUBLE_EQ(s.output_value(g, 0, 2), 17.0);
}

TEST(Gain, EmptyMatrixThrows) {
  EXPECT_THROW(Gain("g", math::Matrix()), std::invalid_argument);
}

TEST(Sum, SignedCombination) {
  Model m;
  auto& a = m.add<Constant>("a", 5.0);
  auto& b = m.add<Constant>("b", 3.0);
  auto& c = m.add<Constant>("c", 1.0);
  auto& sum = m.add<Sum>("s", std::vector<double>{1.0, -1.0, 2.0}, 1);
  m.connect(a, 0, sum, 0);
  m.connect(b, 0, sum, 1);
  m.connect(c, 0, sum, 2);
  Simulator s(m, SimOptions{.end_time = 0.01});
  s.run();
  EXPECT_DOUBLE_EQ(s.output_value(sum, 0), 4.0);
}

TEST(Sum, VectorWidth) {
  Model m;
  auto& a = m.add<Constant>("a", std::vector<double>{1.0, 2.0});
  auto& b = m.add<Constant>("b", std::vector<double>{10.0, 20.0});
  auto& sum = m.add<Sum>("s", std::vector<double>{1.0, 1.0}, 2);
  m.connect(a, 0, sum, 0);
  m.connect(b, 0, sum, 1);
  Simulator s(m, SimOptions{.end_time = 0.01});
  s.run();
  EXPECT_DOUBLE_EQ(s.output_value(sum, 0, 0), 11.0);
  EXPECT_DOUBLE_EQ(s.output_value(sum, 0, 1), 22.0);
}

TEST(Saturation, Clamps) {
  auto mk = [](Model& m) -> Saturation& {
    return m.add<Saturation>("sat", -1.0, 2.0);
  };
  EXPECT_DOUBLE_EQ(eval_chain(5.0, mk), 2.0);
  EXPECT_DOUBLE_EQ(eval_chain(-5.0, mk), -1.0);
  EXPECT_DOUBLE_EQ(eval_chain(0.5, mk), 0.5);
  EXPECT_THROW(Saturation("s", 1.0, -1.0), std::invalid_argument);
}

TEST(Quantizer, RoundsToStep) {
  auto mk = [](Model& m) -> Quantizer& { return m.add<Quantizer>("q", 0.5); };
  EXPECT_DOUBLE_EQ(eval_chain(1.2, mk), 1.0);
  EXPECT_DOUBLE_EQ(eval_chain(1.3, mk), 1.5);
  EXPECT_DOUBLE_EQ(eval_chain(-0.7, mk), -0.5);
  EXPECT_THROW(Quantizer("q", 0.0), std::invalid_argument);
}

TEST(MuxDemux, RoundTrip) {
  Model m;
  auto& a = m.add<Constant>("a", std::vector<double>{1.0, 2.0});
  auto& b = m.add<Constant>("b", 3.0);
  auto& mux = m.add<Mux>("mux", std::vector<std::size_t>{2, 1});
  auto& demux = m.add<Demux>("demux", std::vector<std::size_t>{1, 2});
  m.connect(a, 0, mux, 0);
  m.connect(b, 0, mux, 1);
  m.connect(mux, 0, demux, 0);
  Simulator s(m, SimOptions{.end_time = 0.01});
  s.run();
  EXPECT_DOUBLE_EQ(s.output_value(mux, 0, 2), 3.0);
  EXPECT_DOUBLE_EQ(s.output_value(demux, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(s.output_value(demux, 1, 0), 2.0);
  EXPECT_DOUBLE_EQ(s.output_value(demux, 1, 1), 3.0);
}

}  // namespace
}  // namespace ecsim::blocks
