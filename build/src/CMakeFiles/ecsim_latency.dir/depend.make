# Empty dependencies file for ecsim_latency.
# This may be replaced when dependencies are built.
