#include "plants/inverted_pendulum.hpp"

#include <stdexcept>

namespace ecsim::plants {

control::StateSpace inverted_pendulum(const PendulumParams& p) {
  if (p.cart_mass <= 0.0 || p.pole_mass <= 0.0 || p.pole_length <= 0.0 ||
      p.inertia <= 0.0) {
    throw std::invalid_argument("inverted_pendulum: masses/length must be > 0");
  }
  const double m = p.pole_mass, big_m = p.cart_mass, l = p.pole_length;
  const double i = p.inertia, b = p.cart_friction, g = p.gravity;
  // Standard upright linearization; q = (M+m)(I+ml^2) - (ml)^2.
  const double q = (big_m + m) * (i + m * l * l) - (m * l) * (m * l);

  control::StateSpace sys;
  sys.a = control::Matrix{
      {0.0, 1.0, 0.0, 0.0},
      {0.0, -(i + m * l * l) * b / q, m * m * g * l * l / q, 0.0},
      {0.0, 0.0, 0.0, 1.0},
      {0.0, -m * l * b / q, m * g * l * (big_m + m) / q, 0.0}};
  sys.b =
      control::Matrix{{0.0}, {(i + m * l * l) / q}, {0.0}, {m * l / q}};
  sys.c = control::Matrix{{1.0, 0.0, 0.0, 0.0}, {0.0, 0.0, 1.0, 0.0}};
  sys.d = control::Matrix::zeros(2, 1);
  sys.validate();
  return sys;
}

}  // namespace ecsim::plants
