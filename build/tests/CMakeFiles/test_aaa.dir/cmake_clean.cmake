file(REMOVE_RECURSE
  "CMakeFiles/test_aaa.dir/aaa/test_adequation.cpp.o"
  "CMakeFiles/test_aaa.dir/aaa/test_adequation.cpp.o.d"
  "CMakeFiles/test_aaa.dir/aaa/test_algorithm_graph.cpp.o"
  "CMakeFiles/test_aaa.dir/aaa/test_algorithm_graph.cpp.o.d"
  "CMakeFiles/test_aaa.dir/aaa/test_architecture_graph.cpp.o"
  "CMakeFiles/test_aaa.dir/aaa/test_architecture_graph.cpp.o.d"
  "CMakeFiles/test_aaa.dir/aaa/test_codegen.cpp.o"
  "CMakeFiles/test_aaa.dir/aaa/test_codegen.cpp.o.d"
  "CMakeFiles/test_aaa.dir/aaa/test_multirate.cpp.o"
  "CMakeFiles/test_aaa.dir/aaa/test_multirate.cpp.o.d"
  "CMakeFiles/test_aaa.dir/aaa/test_routing.cpp.o"
  "CMakeFiles/test_aaa.dir/aaa/test_routing.cpp.o.d"
  "CMakeFiles/test_aaa.dir/aaa/test_schedule.cpp.o"
  "CMakeFiles/test_aaa.dir/aaa/test_schedule.cpp.o.d"
  "CMakeFiles/test_aaa.dir/aaa/test_selection_rule.cpp.o"
  "CMakeFiles/test_aaa.dir/aaa/test_selection_rule.cpp.o.d"
  "CMakeFiles/test_aaa.dir/aaa/test_tdma.cpp.o"
  "CMakeFiles/test_aaa.dir/aaa/test_tdma.cpp.o.d"
  "test_aaa"
  "test_aaa.pdb"
  "test_aaa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aaa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
