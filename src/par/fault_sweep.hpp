// Robustness evaluation sweeps (DESIGN.md §3.5): grids of fault severity —
// message-loss rate × extra delivery delay — evaluated through the full AAA
// flow (adequation -> graph of delays with fault gates -> co-simulation),
// plus Monte Carlo dropout trials that re-seed the fault stream per trial.
// Cells run concurrently on a par::BatchRunner with serial-identical
// results: every injection decision inside a cell is a pure function of the
// cell's fault seed (see fault/fault_plan.hpp), so the grid is bit-identical
// for any thread count. All cells of one grid share one fault seed, which by
// the subset-coupling property makes the loss sets nested across loss rates
// — control cost degrades monotonically down a loss-rate column instead of
// re-rolling the dice per cell (asserted by bench_f1_fault_sweep).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "mathlib/stats.hpp"
#include "par/batch_runner.hpp"
#include "translate/cosim.hpp"

namespace ecsim::sweep {

/// One evaluated fault point. `stable` mirrors SweepCell's divergence flag
/// so sweep::heatmap renders FaultCell grids unchanged.
struct FaultCell {
  double loss_rate = 0.0;  // row axis: per-frame loss probability
  double delay = 0.0;      // column axis: extra delivery delay (s)
  std::uint64_t fault_seed = 0;  // the plan seed this cell ran with
  double iae = 0.0;
  double ise = 0.0;
  double itae = 0.0;
  double cost = 0.0;  // time-averaged quadratic cost
  double overshoot_pct = 0.0;
  std::size_t messages_lost = 0;      // frames dropped by the fault gates
  std::size_t messages_deferred = 0;  // frames delivered late
  bool stable = true;
};

/// Loss-rate × delay grid on the distributed loop. The zero-fault cell
/// (loss 0, delay 0) carries an *empty* plan and is therefore bit-identical
/// to a fault-free run_distributed_loop — the regression anchor of the
/// robustness benches.
struct FaultGrid {
  translate::LoopSpec loop;
  translate::DistributedSpec dist;  // base; god.fault_plan replaced per cell
  std::vector<double> loss_rates;   // rows: loss probability in [0,1]
  std::vector<double> delays;       // columns: extra delivery delay (s)
  /// Probability a frame is delayed when the cell's delay is > 0.
  double delay_probability = 1.0;
  /// Faulted medium name; "" = every medium of the architecture.
  std::string medium;
  /// One seed for the whole grid (subset coupling across loss rates).
  std::uint64_t fault_seed = 1;
};

/// Row-major over loss_rates × delays, bit-identical for any thread count.
std::vector<FaultCell> run_fault_sweep(const FaultGrid& grid,
                                       const par::BatchOptions& batch = {});

/// The per-cell fault plan every consumer arms: loss `loss_rate` and a
/// `delay_probability`-gated extra `delay` on `medium`, seeded with `seed`.
/// Exposed so the sweep service (src/svc) can compute fault::hash of the
/// exact plan a cached cell ran under — drift between this builder and the
/// sweep would silently split the cache key space, never corrupt results.
fault::FaultPlan fault_cell_plan(const std::string& medium, double loss_rate,
                                 double delay, double delay_probability,
                                 std::uint64_t seed);

/// Monte Carlo dropout study: `trials` runs at one loss rate, trial t using
/// fault seed base_seed + t — the distribution of control cost under
/// message loss, not just one draw.
struct FaultMonteCarloSpec {
  translate::LoopSpec loop;
  translate::DistributedSpec dist;
  double loss_rate = 0.1;
  std::size_t trials = 32;
  std::string medium;  // "" = every medium
  std::uint64_t base_seed = 1;
  /// Trials per BatchRunner task (0 = simd::preferred_batch_width()). Trial
  /// t's fault seed stays base_seed + t regardless of width, so outcomes
  /// are bit-identical at any batch width and thread count.
  std::size_t batch_width = 0;
};

struct FaultMonteCarloResult {
  std::size_t trials = 0;
  double loss_rate = 0.0;
  math::Summary cost;           // over stable trials
  math::Summary iae;            // over stable trials
  math::Summary messages_lost;  // over all trials
  std::size_t unstable_trials = 0;
  std::vector<FaultCell> cells;  // per-trial outcomes, trial order
  std::size_t batch_width = 1;   // effective trials-per-task granularity
  double wall_s = 0.0;
  double trials_per_s = 0.0;
};

FaultMonteCarloResult run_fault_monte_carlo(
    const FaultMonteCarloSpec& spec, const par::BatchOptions& batch = {});

/// Reduce per-trial cells (trial order) into the distribution result —
/// summaries over stable trials, loss accounting over all. Shared by
/// run_fault_monte_carlo and the sweep-service client, which reassembles
/// the same statistics from daemon-served cells. Timing fields stay 0.
FaultMonteCarloResult summarize_fault_trials(std::vector<FaultCell> cells,
                                             double loss_rate);

/// Machine-readable dump, one row per cell, header included.
std::string to_csv(const std::vector<FaultCell>& cells);

/// Printable distribution table of a dropout study.
std::string to_string(const FaultMonteCarloResult& result);

}  // namespace ecsim::sweep
