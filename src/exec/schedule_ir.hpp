// Schedule -> IR lowering: resolves the generated executives against the
// host architecture once (WCETs looked up per processor type, release
// gating decided per operation) and emits the result as the IR's schedule
// section (ir::ScheduleIr). This is the executive VM's *only* compile step
// — run_executives interprets the ScheduleIr tables directly, so a schedule
// serialized inside an ir::Model replays bit-identically on another host
// without the string-keyed WCET maps.
#pragma once

#include "aaa/codegen.hpp"
#include "ir/ir.hpp"
#include "obs/metrics.hpp"

namespace ecsim::exec {

/// Lowers generated executives into IR form. Per kCompute instruction the
/// WCET (or per-branch WCETs for conditional operations) is resolved
/// against the host processor's type; kSend/kRecv carry only their comm
/// index. `wcet_lookups`, when non-null, is bumped once per WCET map access
/// (the "exec.wcet_lookups" counter — lets tests prove the interpreter loop
/// never touches the maps). Throws std::out_of_range if an operation has no
/// WCET entry for its host processor type, same as scheduling would.
ir::ScheduleIr build_schedule_ir(const aaa::AlgorithmGraph& alg,
                                 const aaa::ArchitectureGraph& arch,
                                 const aaa::Schedule& sched,
                                 const aaa::GeneratedCode& code,
                                 obs::Counter* wcet_lookups = nullptr);

}  // namespace ecsim::exec
