# Empty compiler generated dependencies file for bench_m1_design_cycle.
# This may be replaced when dependencies are built.
