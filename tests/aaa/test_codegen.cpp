#include "aaa/codegen.hpp"

#include <gtest/gtest.h>

#include "aaa/adequation.hpp"

namespace ecsim::aaa {
namespace {

struct DistributedChain {
  AlgorithmGraph alg{"chain", 0.01};
  ArchitectureGraph arch{ArchitectureGraph::bus_architecture(2, 1e4, 1e-5)};
  Schedule sched{0, 0};

  DistributedChain() {
    const OpId s = alg.add_simple("sense", OpKind::kSensor, 1e-4, "P0");
    const OpId c = alg.add_simple("ctrl", OpKind::kCompute, 5e-4, "P1");
    const OpId a = alg.add_simple("act", OpKind::kActuator, 1e-4, "P0");
    alg.add_dependency(s, c, 8.0);
    alg.add_dependency(c, a, 8.0);
    sched = adequate(alg, arch);
    sched.validate(alg, arch);
  }
};

TEST(Codegen, OnePerProcessorAndMedium) {
  DistributedChain f;
  const GeneratedCode code = generate_executives(f.alg, f.arch, f.sched);
  EXPECT_EQ(code.programs.size(), 2u);
  EXPECT_EQ(code.communicators.size(), 1u);
  EXPECT_EQ(code.communicators[0].comms.size(), 2u);  // y and u transfers
}

TEST(Codegen, SendRecvPairingPerTransfer) {
  DistributedChain f;
  const GeneratedCode code = generate_executives(f.alg, f.arch, f.sched);
  std::size_t sends = 0, recvs = 0, computes = 0;
  for (const ExecutiveProgram& prog : code.programs) {
    for (const Instr& ins : prog.instrs) {
      switch (ins.kind) {
        case InstrKind::kSend: ++sends; break;
        case InstrKind::kRecv: ++recvs; break;
        case InstrKind::kCompute: ++computes; break;
      }
    }
  }
  EXPECT_EQ(sends, f.sched.comms().size());
  EXPECT_EQ(recvs, f.sched.comms().size());
  EXPECT_EQ(computes, f.alg.num_operations());
}

TEST(Codegen, ProgramOrderMatchesScheduleOrder) {
  DistributedChain f;
  const GeneratedCode code = generate_executives(f.alg, f.arch, f.sched);
  // On P0: sense(compute), send y, recv u, act(compute).
  const ExecutiveProgram& p0 =
      code.programs[f.arch.find_processor("P0")];
  ASSERT_EQ(p0.instrs.size(), 4u);
  EXPECT_EQ(p0.instrs[0].kind, InstrKind::kCompute);
  EXPECT_EQ(p0.instrs[1].kind, InstrKind::kSend);
  EXPECT_EQ(p0.instrs[2].kind, InstrKind::kRecv);
  EXPECT_EQ(p0.instrs[3].kind, InstrKind::kCompute);
  // On P1: recv y, ctrl, send u.
  const ExecutiveProgram& p1 =
      code.programs[f.arch.find_processor("P1")];
  ASSERT_EQ(p1.instrs.size(), 3u);
  EXPECT_EQ(p1.instrs[0].kind, InstrKind::kRecv);
  EXPECT_EQ(p1.instrs[1].kind, InstrKind::kCompute);
  EXPECT_EQ(p1.instrs[2].kind, InstrKind::kSend);
}

TEST(Codegen, SourceRendersSequencersAndSemaphores) {
  DistributedChain f;
  const GeneratedCode code = generate_executives(f.alg, f.arch, f.sched);
  EXPECT_NE(code.source.find("void main_P0"), std::string::npos);
  EXPECT_NE(code.source.find("void main_P1"), std::string::npos);
  EXPECT_NE(code.source.find("communicator_bus"), std::string::npos);
  EXPECT_NE(code.source.find("sem_wait"), std::string::npos);
  EXPECT_NE(code.source.find("sem_signal"), std::string::npos);
  EXPECT_NE(code.source.find("wait_period()"), std::string::npos);
  EXPECT_NE(code.source.find("ctrl();"), std::string::npos);
}

TEST(Codegen, ConditionalOpRendersSwitch) {
  AlgorithmGraph alg("cond", 0.01);
  Operation op;
  op.name = "mode";
  op.kind = OpKind::kCompute;
  op.branches = {Branch{"fast", {{"cpu", 1e-4}}},
                 Branch{"slow", {{"cpu", 3e-4}}}};
  alg.add_operation(std::move(op));
  const auto arch = ArchitectureGraph::bus_architecture(1, 1.0);
  const Schedule sched = adequate(alg, arch);
  const GeneratedCode code = generate_executives(alg, arch, sched);
  EXPECT_NE(code.source.find("switch (cond)"), std::string::npos);
  EXPECT_NE(code.source.find("case 0: fast()"), std::string::npos);
  EXPECT_NE(code.source.find("case 1: slow()"), std::string::npos);
}

}  // namespace
}  // namespace ecsim::aaa
