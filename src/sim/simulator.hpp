// Simulator: executes a Model. Hybrid semantics following Scicos:
//  - event queue orders discrete activations (deterministic FIFO among ties);
//  - between event instants the packed continuous state is integrated, with
//    the combinational (direct-feedthrough) network re-evaluated at every
//    integration stage in topological order;
//  - at an event instant, pending events are dispatched one at a time and the
//    combinational network is refreshed after each, so zero-delay event
//    chains (the paper's graph of delays) see causally consistent values.
//
// The structural work (wiring resolution, arena layout, topological orders,
// re-evaluation cones) lives in CompiledModel; the Simulator owns only the
// run state (arena values, continuous state, event queue, trace). By default
// re-evaluation is *incremental*: after dispatching an event on block b only
// b's feedthrough cone is refreshed, and between events only the dynamic
// (time/state-dependent) cone is refreshed. SimOptions::full_refresh
// restores the whole-network sweep for A/B equivalence checking.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mathlib/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/block.hpp"
#include "sim/compiled_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/integrator.hpp"
#include "sim/model.hpp"
#include "sim/trace.hpp"

namespace ecsim::sim {

struct SimOptions {
  /// Simulated horizon: run() executes events and integration from t = 0
  /// until this instant (inclusive of events scheduled exactly at it).
  Time end_time = 1.0;
  /// Continuous-state integration (method, tolerances, step bounds) applied
  /// between event instants; see sim/integrator.hpp.
  IntegratorOptions integrator;
  /// Seed of the run's math::Rng (noise sources and other stochastic
  /// blocks). Identical seeds give bit-identical runs.
  std::uint64_t seed = 1;
  /// Hard cap on dispatched events; exceeding it aborts the run with an
  /// exception (guards against runaway zero-delay loops).
  std::size_t max_events = 20'000'000;
  /// Debug flag: re-evaluate the whole feedthrough network at every refresh
  /// point (the pre-compiled-core behaviour) instead of only the affected
  /// cone. The two paths must produce bit-identical traces; keeping the old
  /// sweep behind a flag makes that an assertable property.
  bool full_refresh = false;
  /// Trace capacity hints so long runs don't reallocate mid-trace. Size
  /// them from the horizon and activation periods (e.g. end_time / tick
  /// period x event fan-out). 0 keeps whatever capacity the trace has.
  std::size_t reserve_events = 0;
  std::size_t reserve_signals = 0;
  /// Event-queue capacity hint: upper bound on simultaneously *pending*
  /// events (typically the number of periodic sources x fan-out, not the
  /// total event count). 0 keeps whatever capacity the queue has.
  std::size_t reserve_queue = 0;
  /// Bench-only A/B baselines (DESIGN.md §3.4). legacy_integrator_alloc
  /// routes inter-event integration through integrate_legacy_alloc (per-call
  /// stage buffers, std::function dispatch, x = x5 copies);
  /// legacy_event_queue puts EventQueue in the std::priority_queue-equivalent
  /// binary-heap mode (out-of-line call per operation, as the former
  /// implementation was), pops one event per main-loop pass instead of
  /// draining simultaneous ties in a batch, and keeps the seed's
  /// unconditional cone refresh on empty cones. Both produce bit-identical
  /// traces to the default hot path — asserted by the equivalence property
  /// test — and exist so bench_p4_hotpath can measure the optimisation
  /// inside one binary.
  bool legacy_integrator_alloc = false;
  bool legacy_event_queue = false;
  /// Observability (both borrowed, may be null; see DESIGN.md §3.2). The
  /// tracer receives wall-clock spans (compile, integration segments, cone
  /// refreshes) and sim-time instants (event dispatches, incl. S/H
  /// activations); the registry receives counters/gauges/histograms
  /// (sim.events_dispatched, sim.eval_calls, sim.cone_refresh_size,
  /// sim.queue_high_water, sim.eval_calls_per_block). A null pointer costs
  /// one branch on the hot path.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

class Simulator : private ExecHost {
 public:
  /// Compiles the model (see CompiledModel for what that entails; throws on
  /// algebraic loops and width mismatches) and prepares a runner. The model
  /// must outlive the simulator and must not be structurally modified
  /// afterwards.
  explicit Simulator(Model& model, SimOptions opts = {});

  /// Run against an existing compile artifact (moved in). Lets callers
  /// compile once and build any number of runners from copies of the
  /// artifact without re-deriving orders and cones.
  Simulator(CompiledModel compiled, SimOptions opts = {});

  /// Run from t=0 to opts.end_time. May be called repeatedly; each call
  /// restarts from a clean initial state (blocks re-initialize).
  Trace& run();

  /// The recorded signals/events of the latest run (empty before the first).
  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }
  /// Current simulation time: end_time after a completed run().
  Time current_time() const { return time_; }
  /// Events dispatched by the latest run (also exported as the
  /// sim.events_dispatched counter when a MetricsRegistry is attached).
  std::size_t events_dispatched() const { return events_dispatched_; }

  /// Reseed the run Rng for the next run() without rebuilding the simulator
  /// (Monte Carlo drivers reuse one compiled engine across trials).
  void set_seed(std::uint64_t seed) { opts_.seed = seed; }

  /// Final (or current) value of a data output lane — test convenience.
  double output_value(const Block& b, std::size_t port,
                      std::size_t lane = 0) const;

  const Model& model() const { return compiled_.model(); }
  const CompiledModel& compiled() const { return compiled_; }

 private:
  void init_obs();
  void refresh_blocks(std::span<const std::size_t> order, Time t);
  /// Refresh everything whose value can have drifted since the last refresh:
  /// the full network under full_refresh, the dynamic cone otherwise.
  void refresh_dynamic(Time t);
  void evaluate_derivatives(Time t, const std::vector<double>& x,
                            std::vector<double>& dx);

  // Context backends (ExecHost).
  std::span<const double> ctx_input(std::size_t block,
                                    std::size_t port) const override;
  std::span<double> ctx_output(std::size_t block, std::size_t port) override;
  std::span<const double> ctx_state(std::size_t block) const override;
  std::span<double> ctx_state_mut(std::size_t block) override;
  void ctx_emit(std::size_t block, std::size_t event_out, Time at) override;
  void ctx_schedule_self(std::size_t block, std::size_t event_in,
                         Time at) override;
  math::Rng& ctx_rng() override { return rng_; }
  Trace& ctx_trace() override { return trace_; }

  CompiledModel compiled_;
  Model& model_;
  SimOptions opts_;
  math::Rng rng_;
  Trace trace_;
  EventQueue queue_;
  IntegratorWorkspace iws_;              // reused across inter-event intervals
  std::vector<ScheduledEvent> batch_;    // pop_simultaneous output, reused
  /// Same-instant lane: while the dispatcher is draining an instant
  /// (lane_active_), zero-delay emissions are appended here instead of
  /// round-tripping through the heap — the heap's ties at this instant were
  /// already fully drained, so append order equals the seq order the heap
  /// would have assigned. Drained to empty before sim time advances;
  /// disabled in the legacy_event_queue cost model.
  std::vector<ScheduledEvent> lane_;
  bool lane_active_ = false;

  // Run state.
  std::vector<double> arena_;           // all output values (flat)
  Time time_ = 0.0;
  std::vector<double> x_;               // committed continuous state
  const double* active_x_ = nullptr;    // state viewed by blocks right now
  bool in_integration_ = false;
  std::size_t events_dispatched_ = 0;

  // Observability wiring: names interned and metric instruments resolved
  // once (init_obs), so the hot path touches only cached ids/pointers.
  // `tracing` is re-latched at every run() so enable toggles take effect.
  struct ObsHooks {
    bool tracing = false;
    std::uint32_t trk_runtime = 0;      // wall-clock spans
    std::uint32_t trk_events = 0;       // sim-time event instants
    std::uint32_t n_run = 0, n_integrate = 0, n_cone = 0, n_compile = 0;
    std::uint32_t a_cone_size = 0, a_port = 0;
    std::vector<std::uint32_t> block_names;
    obs::Counter* events = nullptr;
    obs::Counter* evals = nullptr;
    obs::Gauge* queue_hwm = nullptr;
    obs::Histogram* cone_sizes = nullptr;
    obs::Histogram* evals_per_block = nullptr;
    std::vector<std::uint64_t> per_block_evals;
  } obs_;
};

}  // namespace ecsim::sim
