// Deadline analysis under execution-time overruns: when actual times exceed
// the WCET table (a mis-characterization), the non-preemptive executive runs
// late; check_deadlines quantifies the misses that WCET conformance would
// have excluded by construction.
#include <gtest/gtest.h>

#include "aaa/adequation.hpp"
#include "exec/conformance.hpp"

namespace ecsim::exec {
namespace {

struct Chain {
  AlgorithmGraph alg{"chain", 0.001};  // tight 1 ms period
  ArchitectureGraph arch{aaa::ArchitectureGraph::bus_architecture(1, 1.0)};
  Schedule sched{0, 0};
  GeneratedCode code;

  Chain() {
    const aaa::OpId s = alg.add_simple("sense", aaa::OpKind::kSensor, 2e-4);
    const aaa::OpId c = alg.add_simple("ctrl", aaa::OpKind::kCompute, 5e-4);
    alg.add_dependency(s, c, 1.0);
    sched = aaa::adequate(alg, arch);
    code = aaa::generate_executives(alg, arch, sched);
  }
};

TEST(Deadlines, WcetExecutionMeetsAllDeadlines) {
  Chain f;
  VmOptions opts;
  opts.iterations = 20;
  opts.period = 0.001;
  const VmResult vm = run_executives(f.alg, f.arch, f.sched, f.code, opts);
  const DeadlineReport rep = check_deadlines(f.alg, vm, 0.001);
  EXPECT_EQ(rep.misses, 0u);
  EXPECT_EQ(rep.checked_instances, 40u);
  EXPECT_DOUBLE_EQ(rep.worst_overrun, 0.0);
}

TEST(Deadlines, OverrunningExecutionIsDetected) {
  Chain f;
  VmOptions opts;
  opts.iterations = 10;
  opts.period = 0.001;
  // Actual times 2x the WCET: 0.2+0.5 ms -> 1.4 ms > 1 ms period.
  opts.exec_time = [](const aaa::Operation&, aaa::Time wcet, math::Rng&) {
    return 2.0 * wcet;
  };
  const VmResult vm = run_executives(f.alg, f.arch, f.sched, f.code, opts);
  ASSERT_FALSE(vm.deadlock);  // overruns delay, they do not deadlock
  const DeadlineReport rep = check_deadlines(f.alg, vm, 0.001);
  EXPECT_GT(rep.misses, 0u);
  EXPECT_GT(rep.worst_overrun, 0.0);
  EXPECT_FALSE(rep.details.empty());
  // Order is still preserved: the executive degrades gracefully.
  const ConformanceReport order =
      check_order_preservation(f.alg, f.arch, f.sched, vm);
  EXPECT_TRUE(order.ok) << order.violations;
}

TEST(Deadlines, OccasionalOverrunOnlyDelaysSomeIterations) {
  Chain f;
  VmOptions opts;
  opts.iterations = 50;
  opts.period = 0.001;
  // Every 10th ctrl execution takes 3x its WCET.
  opts.exec_time = [n = 0](const aaa::Operation& op, aaa::Time wcet,
                           math::Rng&) mutable {
    if (op.name == "ctrl" && ++n % 10 == 0) return 3.0 * wcet;
    return wcet;
  };
  const VmResult vm = run_executives(f.alg, f.arch, f.sched, f.code, opts);
  const DeadlineReport rep = check_deadlines(f.alg, vm, 0.001);
  EXPECT_GT(rep.misses, 0u);
  EXPECT_LT(rep.misses, rep.checked_instances / 2);
}

}  // namespace
}  // namespace ecsim::exec
