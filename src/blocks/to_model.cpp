#include "blocks/to_model.hpp"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "blocks/continuous.hpp"
#include "blocks/discrete.hpp"
#include "blocks/event_blocks.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/probe.hpp"
#include "blocks/sample_hold.hpp"
#include "blocks/sources.hpp"
#include "blocks/synchronization.hpp"
#include "mathlib/matrix.hpp"

namespace ecsim::blocks {

namespace {

[[noreturn]] void bad(const ir::BlockIr& b, const std::string& why) {
  throw std::invalid_argument("to_model: block '" + b.name + "' (" +
                              (b.kind.empty() ? "?" : b.kind) + "): " + why);
}

const ir::Attr& need(const ir::BlockIr& b, const char* key,
                     ir::Attr::Kind kind) {
  const ir::Attr* a = b.find(key);
  if (a == nullptr) bad(b, "missing attr '" + std::string(key) + "'");
  if (a->kind != kind) bad(b, "attr '" + std::string(key) + "' has wrong type");
  return *a;
}

double real_of(const ir::BlockIr& b, const char* key) {
  return need(b, key, ir::Attr::Kind::kReal).r;
}

long long int_of(const ir::BlockIr& b, const char* key) {
  return need(b, key, ir::Attr::Kind::kInt).i;
}

std::vector<double> vec_of(const ir::BlockIr& b, const char* key) {
  return need(b, key, ir::Attr::Kind::kRealVec).vec;
}

math::Matrix matrix_of(const ir::BlockIr& b, const char* key) {
  const ir::Attr& a = need(b, key, ir::Attr::Kind::kMatrix);
  if (a.vec.size() != a.rows * a.cols) bad(b, "matrix attr size mismatch");
  math::Matrix m(a.rows, a.cols);
  for (std::size_t i = 0; i < a.vec.size(); ++i) m.data()[i] = a.vec[i];
  return m;
}

std::size_t in_width0(const ir::BlockIr& b) {
  if (b.in_widths.empty()) bad(b, "expected a data input");
  return b.in_widths[0];
}

}  // namespace

DurationSpec duration_from_attrs(const ir::BlockIr& b) {
  const long long tag = int_of(b, "dist");
  switch (static_cast<DurationSpec::Kind>(tag)) {
    case DurationSpec::Kind::kConstant:
      return constant_duration(real_of(b, "value"));
    case DurationSpec::Kind::kUniform:
      return uniform_duration(real_of(b, "bcet"), real_of(b, "wcet"));
    case DurationSpec::Kind::kTruncatedNormal:
      return truncated_normal_duration(real_of(b, "mean"),
                                       real_of(b, "stddev"),
                                       real_of(b, "bcet"), real_of(b, "wcet"));
    case DurationSpec::Kind::kShiftedUniform:
      return shifted_uniform_duration(real_of(b, "base"),
                                      real_of(b, "jitter"));
    case DurationSpec::Kind::kBranches:
      return branch_duration(vec_of(b, "branch_wcets"),
                             real_of(b, "bcet_fraction"),
                             int_of(b, "random_branch") != 0);
    case DurationSpec::Kind::kCustom:
      break;
  }
  bad(b, "unregenerable duration distribution (tag " + std::to_string(tag) +
             ")");
}

fault::CommGate comm_gate_from_attrs(const ir::BlockIr& b) {
  fault::CommGate g;
  g.seed = static_cast<std::uint64_t>(int_of(b, "seed"));
  g.period = real_of(b, "period");
  g.comm_index = static_cast<std::size_t>(int_of(b, "comm_index"));
  g.transfer_duration = real_of(b, "transfer_duration");
  const ir::Attr& e = need(b, "entries", ir::Attr::Kind::kMatrix);
  if (e.cols != 7 || e.vec.size() != e.rows * 7) {
    bad(b, "gate entries must be an n x 7 matrix");
  }
  g.entries.reserve(e.rows);
  for (std::size_t i = 0; i < e.rows; ++i) {
    const double* row = e.vec.data() + i * 7;
    fault::CommGateEntry entry;
    entry.fault = static_cast<std::size_t>(row[0]);
    const int kind = static_cast<int>(row[1]);
    if (kind < 0 || kind > 2) bad(b, "gate entry has unknown kind");
    entry.kind = static_cast<fault::CommGateEntry::Kind>(kind);
    entry.probability = row[2];
    entry.delay = row[3];
    entry.extra_copies = static_cast<std::size_t>(row[4]);
    entry.t_start = row[5];
    entry.t_stop = row[6];
    g.entries.push_back(entry);
  }
  return g;
}

std::unique_ptr<sim::Block> make_block(const ir::BlockIr& b) {
  if (b.opaque) bad(b, "opaque (behaviour lives in a user closure)");
  const std::string& k = b.kind;
  if (k == "Clock") {
    return std::make_unique<Clock>(b.name, real_of(b, "period"),
                                   real_of(b, "offset"));
  }
  if (k == "TimetableClock") {
    return std::make_unique<TimetableClock>(b.name, real_of(b, "period"),
                                            vec_of(b, "offsets"));
  }
  if (k == "Constant") {
    return std::make_unique<Constant>(b.name, vec_of(b, "value"));
  }
  if (k == "Step") {
    return std::make_unique<Step>(b.name, real_of(b, "initial"),
                                  real_of(b, "final"),
                                  real_of(b, "step_time"));
  }
  if (k == "Sine") {
    return std::make_unique<Sine>(b.name, real_of(b, "amplitude"),
                                  real_of(b, "frequency"), real_of(b, "phase"),
                                  real_of(b, "bias"));
  }
  if (k == "Pulse") {
    return std::make_unique<Pulse>(b.name, real_of(b, "low"),
                                   real_of(b, "high"), real_of(b, "period"),
                                   real_of(b, "duty"));
  }
  if (k == "NoiseHold") {
    return std::make_unique<NoiseHold>(b.name, real_of(b, "mean"),
                                       real_of(b, "stddev"));
  }
  if (k == "Integrator") {
    return std::make_unique<Integrator>(b.name, vec_of(b, "x0"));
  }
  if (k == "StateSpaceCont") {
    return std::make_unique<StateSpaceCont>(
        b.name, matrix_of(b, "a"), matrix_of(b, "b"), matrix_of(b, "c"),
        matrix_of(b, "d"), vec_of(b, "x0"));
  }
  if (k == "Gain") {
    return std::make_unique<Gain>(b.name, matrix_of(b, "k"));
  }
  if (k == "Sum") {
    return std::make_unique<Sum>(b.name, vec_of(b, "signs"), in_width0(b));
  }
  if (k == "Saturation") {
    return std::make_unique<Saturation>(b.name, real_of(b, "lo"),
                                        real_of(b, "hi"), in_width0(b));
  }
  if (k == "Quantizer") {
    return std::make_unique<Quantizer>(b.name, real_of(b, "step"),
                                       in_width0(b));
  }
  if (k == "Mux") {
    return std::make_unique<Mux>(b.name, b.in_widths);
  }
  if (k == "Demux") {
    return std::make_unique<Demux>(b.name, b.out_widths);
  }
  if (k == "StateSpaceDisc") {
    return std::make_unique<StateSpaceDisc>(
        b.name, matrix_of(b, "a"), matrix_of(b, "b"), matrix_of(b, "c"),
        matrix_of(b, "d"), vec_of(b, "x0"));
  }
  if (k == "PidDiscrete") {
    PidDiscrete::Params p;
    p.kp = real_of(b, "kp");
    p.ki = real_of(b, "ki");
    p.kd = real_of(b, "kd");
    p.ts = real_of(b, "ts");
    p.n = real_of(b, "n");
    p.u_min = real_of(b, "u_min");
    p.u_max = real_of(b, "u_max");
    return std::make_unique<PidDiscrete>(b.name, p);
  }
  if (k == "UnitDelay") {
    return std::make_unique<UnitDelay>(b.name, vec_of(b, "init"));
  }
  if (k == "EventCounter") {
    return std::make_unique<EventCounter>(b.name);
  }
  if (k == "SampleHold") {
    return std::make_unique<SampleHold>(b.name, in_width0(b),
                                        vec_of(b, "initial"));
  }
  if (k == "Probe") {
    return std::make_unique<Probe>(b.name, in_width0(b),
                                   real_of(b, "record_period"));
  }
  if (k == "Synchronization") {
    return std::make_unique<Synchronization>(b.name, b.n_event_in);
  }
  if (k == "EventDelay") {
    return std::make_unique<EventDelay>(b.name, duration_from_attrs(b));
  }
  if (k == "TdmaGate") {
    // slots/owner are omitted from the IR at the single-slot default.
    const std::size_t slots =
        b.find("slots") != nullptr
            ? static_cast<std::size_t>(int_of(b, "slots"))
            : 1;
    const std::size_t owner =
        b.find("owner") != nullptr
            ? static_cast<std::size_t>(int_of(b, "owner"))
            : 0;
    return std::make_unique<TdmaGate>(b.name, real_of(b, "slot"), slots,
                                      owner);
  }
  if (k == "EventMerge") {
    return std::make_unique<EventMerge>(b.name, b.n_event_in);
  }
  if (k == "EventFault") {
    return std::make_unique<EventFault>(b.name, comm_gate_from_attrs(b));
  }
  if (k == "EventDivider") {
    return std::make_unique<EventDivider>(
        b.name, static_cast<std::size_t>(int_of(b, "divisor")),
        static_cast<std::size_t>(int_of(b, "phase")));
  }
  bad(b, "unknown kind");
}

sim::Model to_model(const ir::Model& irm) {
  sim::Model m;
  for (const ir::BlockIr& b : irm.blocks) m.add_block(make_block(b));
  for (const ir::WireIr& w : irm.data_wires) {
    m.connect(m.block(w.from.block), w.from.port, m.block(w.to.block),
              w.to.port);
  }
  for (const ir::WireIr& w : irm.event_wires) {
    m.connect_event(m.block(w.from.block), w.from.port, m.block(w.to.block),
                    w.to.port);
  }
  return m;
}

}  // namespace ecsim::blocks
