// FaultPlan / ArmedFaultPlan: builder semantics, arming-time validation,
// the pure-function determinism contract and its subset-coupling corollary
// (DESIGN.md §3.5).
#include <gtest/gtest.h>

#include "aaa/adequation.hpp"
#include "fault/fault_plan.hpp"

namespace ecsim::fault {
namespace {

struct Fixture {
  aaa::AlgorithmGraph alg{"t", 0.01};
  aaa::ArchitectureGraph arch{aaa::ArchitectureGraph::bus_architecture(2, 1e5)};
  aaa::Schedule sched{0, 0};

  Fixture() {
    aaa::Operation sense;
    sense.name = "sense";
    sense.kind = aaa::OpKind::kSensor;
    sense.wcet["cpu"] = 2e-4;
    sense.bound_processor = "P0";
    const aaa::OpId s = alg.add_operation(std::move(sense));
    aaa::Operation ctrl;
    ctrl.name = "ctrl";
    ctrl.kind = aaa::OpKind::kCompute;
    ctrl.wcet["cpu"] = 1e-3;
    ctrl.bound_processor = "P1";
    const aaa::OpId c = alg.add_operation(std::move(ctrl));
    aaa::Operation act;
    act.name = "act";
    act.kind = aaa::OpKind::kActuator;
    act.wcet["cpu"] = 2e-4;
    act.bound_processor = "P0";
    const aaa::OpId a = alg.add_operation(std::move(act));
    alg.add_dependency(s, c, 8.0);
    alg.add_dependency(c, a, 8.0);
    sched = aaa::adequate(alg, arch);
  }
};

TEST(FaultPlan, BuilderChainsAndWindowAppliesToLastFault) {
  FaultPlan plan;
  plan.message_loss("bus", 0.1)
      .message_delay("bus", 0.5, 0.002)
      .window(0.1, 0.3);
  ASSERT_EQ(plan.faults.size(), 2u);
  EXPECT_EQ(plan.faults[0].t_start, 0.0);  // loss: unrestricted
  EXPECT_EQ(plan.faults[1].t_start, 0.1);  // delay: windowed
  EXPECT_EQ(plan.faults[1].t_stop, 0.3);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(FaultPlan{}.empty());
}

TEST(FaultPlan, WindowWithoutFaultThrows) {
  FaultPlan plan;
  EXPECT_THROW(plan.window(0.0, 1.0), std::logic_error);
}

TEST(FaultPlan, ArmingValidatesParameters) {
  Fixture f;
  {
    FaultPlan p;
    p.message_loss("bus", 1.5);  // probability out of range
    EXPECT_THROW(ArmedFaultPlan(p, f.alg, f.arch, f.sched),
                 std::invalid_argument);
  }
  {
    FaultPlan p;
    p.message_delay("bus", 0.5, -1e-3);  // negative delay
    EXPECT_THROW(ArmedFaultPlan(p, f.alg, f.arch, f.sched),
                 std::invalid_argument);
  }
  {
    FaultPlan p;
    p.op_overrun("ctrl", 0.5, 0.5);  // factor < 1
    EXPECT_THROW(ArmedFaultPlan(p, f.alg, f.arch, f.sched),
                 std::invalid_argument);
  }
  {
    FaultPlan p;
    p.message_duplicate("bus", 0.5, 0);  // zero copies
    EXPECT_THROW(ArmedFaultPlan(p, f.alg, f.arch, f.sched),
                 std::invalid_argument);
  }
  {
    FaultPlan p;
    p.message_loss("bus", 0.1).window(0.5, 0.5);  // empty window
    EXPECT_THROW(ArmedFaultPlan(p, f.alg, f.arch, f.sched),
                 std::invalid_argument);
  }
}

TEST(FaultPlan, UnknownTargetNamesThrowAtArming) {
  Fixture f;
  {
    FaultPlan p;
    p.message_loss("no-such-medium", 0.1);
    EXPECT_THROW(ArmedFaultPlan(p, f.alg, f.arch, f.sched), std::exception);
  }
  {
    FaultPlan p;
    p.op_overrun("no-such-op", 0.1, 2.0);
    EXPECT_THROW(ArmedFaultPlan(p, f.alg, f.arch, f.sched), std::exception);
  }
  {
    FaultPlan p;
    p.node_stop("no-such-proc", 0.0, 0.1);
    EXPECT_THROW(ArmedFaultPlan(p, f.alg, f.arch, f.sched), std::exception);
  }
}

TEST(FaultPlan, DecisionsArePureFunctionsOfCoordinates) {
  Fixture f;
  FaultPlan p;
  p.seed = 42;
  p.message_loss("bus", 0.3);
  const ArmedFaultPlan a(p, f.alg, f.arch, f.sched);
  const ArmedFaultPlan b(p, f.alg, f.arch, f.sched);
  ASSERT_GE(f.sched.comms().size(), 2u);
  // Query `a` forward and `b` backward over both comms: coordinate-wise the
  // answers must agree regardless of query order or interleaving.
  std::vector<bool> fwd, bwd(2 * 64);
  for (std::size_t it = 0; it < 64; ++it) {
    fwd.push_back(a.comm_effect(0, it).lost);
    fwd.push_back(a.comm_effect(1, it).lost);
  }
  for (std::size_t it = 64; it-- > 0;) {
    bwd[2 * it + 1] = b.comm_effect(1, it).lost;
    bwd[2 * it] = b.comm_effect(0, it).lost;
  }
  EXPECT_EQ(fwd, bwd);
}

TEST(FaultPlan, SubsetCouplingAcrossProbabilities) {
  // Same seed: every instance lost at p=0.05 must also be lost at p=0.3.
  Fixture f;
  FaultPlan lo, hi;
  lo.seed = hi.seed = 7;
  lo.message_loss("bus", 0.05);
  hi.message_loss("bus", 0.3);
  const ArmedFaultPlan alo(lo, f.alg, f.arch, f.sched);
  const ArmedFaultPlan ahi(hi, f.alg, f.arch, f.sched);
  std::size_t lost_lo = 0, lost_hi = 0;
  for (std::size_t ci = 0; ci < f.sched.comms().size(); ++ci) {
    for (std::size_t it = 0; it < 256; ++it) {
      const bool l = alo.comm_effect(ci, it).lost;
      const bool h = ahi.comm_effect(ci, it).lost;
      if (l) EXPECT_TRUE(h) << "comm " << ci << " iter " << it;
      lost_lo += l;
      lost_hi += h;
    }
  }
  EXPECT_GT(lost_lo, 0u);
  EXPECT_GT(lost_hi, lost_lo);
}

TEST(FaultPlan, WindowsUseNominalIterationInstants) {
  Fixture f;  // period 0.01
  FaultPlan p;
  p.message_loss("bus", 1.0).window(0.05, 0.08);  // iterations 5,6,7
  const ArmedFaultPlan armed(p, f.alg, f.arch, f.sched);
  for (std::size_t it = 0; it < 12; ++it) {
    EXPECT_EQ(armed.comm_effect(0, it).lost, it >= 5 && it < 8) << it;
  }
}

TEST(FaultPlan, EmptyTargetMatchesEveryEntity) {
  Fixture f;
  FaultPlan p;
  p.message_loss("", 1.0);
  const ArmedFaultPlan armed(p, f.alg, f.arch, f.sched);
  for (std::size_t ci = 0; ci < f.sched.comms().size(); ++ci) {
    EXPECT_TRUE(armed.comm_effect(ci, 0).lost);
  }
}

TEST(FaultPlan, OpOverrunFactorsMultiply) {
  Fixture f;
  FaultPlan p;
  p.op_overrun("ctrl", 1.0, 2.0);
  p.op_overrun("ctrl", 1.0, 3.0);
  const ArmedFaultPlan armed(p, f.alg, f.arch, f.sched);
  std::size_t fi = aaa::kNone;
  EXPECT_DOUBLE_EQ(armed.op_factor(f.alg.find("ctrl"), 0, &fi), 6.0);
  EXPECT_EQ(fi, 0u);
  EXPECT_DOUBLE_EQ(armed.op_factor(f.alg.find("sense"), 0), 1.0);
}

TEST(FaultPlan, NodeReleaseSkipsOutageWindowsToAFixedPoint) {
  Fixture f;
  FaultPlan p;
  p.node_stop("P1", 0.02, 0.03);
  p.node_stop("P1", 0.03, 0.05);  // abutting window: must chain through
  const ArmedFaultPlan armed(p, f.alg, f.arch, f.sched);
  const aaa::ProcId p1 = f.arch.find_processor("P1");
  EXPECT_TRUE(armed.node_has_outages(p1));
  EXPECT_FALSE(armed.node_has_outages(f.arch.find_processor("P0")));
  EXPECT_DOUBLE_EQ(armed.node_release(p1, 0.01), 0.01);  // before outage
  EXPECT_DOUBLE_EQ(armed.node_release(p1, 0.025), 0.05);  // chained
  EXPECT_DOUBLE_EQ(armed.node_release(p1, 0.05), 0.05);   // at restart
}

TEST(FaultPlan, ToStringRendersEveryKind) {
  FaultPlan p;
  p.message_loss("bus", 0.1)
      .message_delay("bus", 0.2, 0.001)
      .message_duplicate("bus", 0.3, 2)
      .op_overrun("ctrl", 0.4, 2.5)
      .node_stop("P1", 0.1, 0.2);
  const std::string s = to_string(p);
  EXPECT_NE(s.find("message-loss"), std::string::npos);
  EXPECT_NE(s.find("message-delay"), std::string::npos);
  EXPECT_NE(s.find("message-duplicate"), std::string::npos);
  EXPECT_NE(s.find("op-overrun"), std::string::npos);
  EXPECT_NE(s.find("node-stop"), std::string::npos);
  EXPECT_NE(to_string(FaultPlan{}).find("fault-free"), std::string::npos);
}

// Canonical plan hash (the ledger's fault_plan_hash annotation): stable
// under recomputation, zero for the empty plan, sensitive to every field.
TEST(FaultPlan, HashIsCanonicalAndFieldSensitive) {
  EXPECT_EQ(hash(FaultPlan{}), 0u);

  auto base = [] {
    FaultPlan p;
    p.seed = 42;
    p.message_loss("bus", 0.1).message_delay("bus", 0.2, 0.001);
    return p;
  };
  const std::uint64_t h = hash(base());
  EXPECT_NE(h, 0u);
  EXPECT_EQ(hash(base()), h);  // pure function of the plan

  {
    FaultPlan p = base();
    p.seed = 43;
    EXPECT_NE(hash(p), h);
  }
  {
    FaultPlan p = base();
    p.faults[0].probability = 0.11;
    EXPECT_NE(hash(p), h);
  }
  {
    FaultPlan p = base();
    p.faults[1].delay = 0.002;
    EXPECT_NE(hash(p), h);
  }
  {
    FaultPlan p = base();
    p.faults[0].target = "net";
    EXPECT_NE(hash(p), h);
  }
  // Order matters (the plan is an ordered program of faults).
  {
    FaultPlan p;
    p.seed = 42;
    p.message_delay("bus", 0.2, 0.001).message_loss("bus", 0.1);
    EXPECT_NE(hash(p), h);
  }
}

}  // namespace
}  // namespace ecsim::fault
