#include "control/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace ecsim::control {

namespace {

template <typename F>
double trapz(const Series& y, F integrand) {
  if (y.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < y.size(); ++i) {
    const double dt = y[i].first - y[i - 1].first;
    acc += 0.5 * dt * (integrand(y[i - 1]) + integrand(y[i]));
  }
  return acc;
}

}  // namespace

double iae(const Series& y, double ref) {
  return trapz(y, [ref](const auto& p) { return std::abs(ref - p.second); });
}

double ise(const Series& y, double ref) {
  return trapz(y, [ref](const auto& p) {
    const double e = ref - p.second;
    return e * e;
  });
}

double itae(const Series& y, double ref) {
  return trapz(y, [ref](const auto& p) {
    return p.first * std::abs(ref - p.second);
  });
}

double quadratic_cost(const Series& y, const Series& u, double ref, double qy,
                      double ru) {
  if (y.size() != u.size()) {
    throw std::invalid_argument("quadratic_cost: series length mismatch");
  }
  if (y.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < y.size(); ++i) {
    const double dt = y[i].first - y[i - 1].first;
    auto point = [&](std::size_t j) {
      const double e = ref - y[j].second;
      return qy * e * e + ru * u[j].second * u[j].second;
    };
    acc += 0.5 * dt * (point(i - 1) + point(i));
  }
  const double span = y.back().first - y.front().first;
  return span > 0.0 ? acc / span : 0.0;
}

StepInfo step_info(const Series& y, double ref, double band) {
  StepInfo info;
  if (y.empty()) return info;
  info.peak = y.front().second;
  for (const auto& [t, v] : y) {
    if (std::abs(v) > std::abs(info.peak)) {
      info.peak = v;
      info.peak_time = t;
    }
  }
  const double denom = std::abs(ref) > 1e-12 ? std::abs(ref) : 1.0;
  if ((ref >= 0.0 && info.peak > ref) || (ref < 0.0 && info.peak < ref)) {
    info.overshoot_pct = (std::abs(info.peak) - std::abs(ref)) / denom * 100.0;
    if (info.overshoot_pct < 0.0) info.overshoot_pct = 0.0;
  }
  // Settling time: last exit from the band.
  const double tol = band * denom;
  info.settling_time = 0.0;
  for (const auto& [t, v] : y) {
    if (std::abs(v - ref) > tol) info.settling_time = t;
  }
  if (std::abs(y.back().second - ref) > tol) {
    info.settling_time = -1.0;  // never settled
  }
  // Rise time 10% -> 90%.
  double t10 = -1.0, t90 = -1.0;
  for (const auto& [t, v] : y) {
    const double frac = ref != 0.0 ? v / ref : v;
    if (t10 < 0.0 && frac >= 0.1) t10 = t;
    if (t90 < 0.0 && frac >= 0.9) t90 = t;
  }
  if (t10 >= 0.0 && t90 >= 0.0) info.rise_time = t90 - t10;
  info.steady_state_error = std::abs(ref - y.back().second);
  return info;
}

double rms(const Series& y) {
  if (y.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& [t, v] : y) acc += v * v;
  return std::sqrt(acc / static_cast<double>(y.size()));
}

double max_abs(const Series& y) {
  double best = 0.0;
  for (const auto& [t, v] : y) best = std::max(best, std::abs(v));
  return best;
}

}  // namespace ecsim::control
