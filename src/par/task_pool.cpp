#include "par/task_pool.hpp"

#include <cstdlib>
#include <string>

namespace ecsim::par {

namespace {
thread_local bool tls_in_worker = false;
}  // namespace

std::size_t TaskPool::default_threads() {
  if (const char* env = std::getenv("ECSIM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

TaskPool::TaskPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? default_threads() : threads;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void TaskPool::for_each(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (tls_in_worker) {
    // Nested submission from a task body: run inline on this worker.
    // Exceptions propagate directly (serial order == lowest index first).
    for (std::size_t i = 0; i < n; ++i) body(i, 0);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(error_mu_);
    first_error_ = nullptr;
    first_error_task_ = 0;
  }
  // Fill the shards round-robin before arming: workers cannot pop yet
  // (armed_ is false), so body_/remaining_ are always published first.
  for (std::size_t w = 0; w < shards_.size(); ++w) {
    std::lock_guard<std::mutex> lock(shards_[w]->mu);
    for (std::size_t i = w; i < n; i += shards_.size()) {
      shards_[w]->tasks.push_back(i);
    }
  }
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    body_ = &body;
    remaining_ = n;
    ++generation_;
    armed_.store(true, std::memory_order_release);
  }
  work_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(batch_mu_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    body_ = nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (first_error_) std::rethrow_exception(first_error_);
  }
}

void TaskPool::worker_loop(std::size_t worker) {
  tls_in_worker = true;
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(batch_mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    std::size_t task = 0;
    while (pop_task(worker, task)) execute(task, worker);
  }
}

bool TaskPool::pop_task(std::size_t worker, std::size_t& task) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  // Own shard first: pop from the front (submission order within the shard).
  {
    Shard& own = *shards_[worker];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = own.tasks.front();
      own.tasks.pop_front();
      return true;
    }
  }
  // Steal from the back of the fullest sibling.
  std::size_t victim = shards_.size();
  std::size_t victim_depth = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (s == worker) continue;
    std::lock_guard<std::mutex> lock(shards_[s]->mu);
    if (shards_[s]->tasks.size() > victim_depth) {
      victim = s;
      victim_depth = shards_[s]->tasks.size();
    }
  }
  if (victim == shards_.size()) return false;
  Shard& v = *shards_[victim];
  std::lock_guard<std::mutex> lock(v.mu);
  if (v.tasks.empty()) return false;  // lost the race to another thief
  task = v.tasks.back();
  v.tasks.pop_back();
  return true;
}

void TaskPool::execute(std::size_t task, std::size_t worker) {
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    body = body_;
  }
  try {
    (*body)(task, worker);
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!first_error_ || task < first_error_task_) {
      first_error_ = std::current_exception();
      first_error_task_ = task;
    }
  }
  std::lock_guard<std::mutex> lock(batch_mu_);
  if (--remaining_ == 0) {
    armed_.store(false, std::memory_order_release);
    done_cv_.notify_all();
  }
}

}  // namespace ecsim::par
