#include "blocks/continuous.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecsim::blocks {

Integrator::Integrator(std::string name, std::vector<double> x0)
    : Block(std::move(name)), x0_(std::move(x0)) {
  if (x0_.empty()) throw std::invalid_argument("Integrator: empty state");
  add_input(x0_.size());
  add_output(x0_.size());
  set_continuous_state_size(x0_.size());
}

void Integrator::initialize(Context& ctx) {
  auto x = ctx.state_mut();
  std::copy(x0_.begin(), x0_.end(), x.begin());
  compute_outputs(ctx);
}

void Integrator::compute_outputs(Context& ctx) {
  auto x = ctx.state();
  auto y = ctx.output(0);
  std::copy(x.begin(), x.end(), y.begin());
}

void Integrator::derivatives(Context& ctx, std::span<double> dx) {
  auto u = ctx.input(0);
  std::copy(u.begin(), u.end(), dx.begin());
}

namespace {
bool any_nonzero(const math::Matrix& m) {
  return m.max_abs() > 0.0;
}
}  // namespace

StateSpaceCont::StateSpaceCont(std::string name, math::Matrix a, math::Matrix b,
                               math::Matrix c, math::Matrix d,
                               std::vector<double> x0)
    : Block(std::move(name)),
      a_(std::move(a)),
      b_(std::move(b)),
      c_(std::move(c)),
      d_(std::move(d)),
      x0_(std::move(x0)) {
  const std::size_t n = a_.rows();
  if (!a_.is_square() || b_.rows() != n || c_.cols() != n ||
      d_.rows() != c_.rows() || d_.cols() != b_.cols()) {
    throw std::invalid_argument("StateSpaceCont: inconsistent matrix shapes");
  }
  if (x0_.empty()) x0_.assign(n, 0.0);
  if (x0_.size() != n) {
    throw std::invalid_argument("StateSpaceCont: x0 size mismatch");
  }
  add_input(b_.cols());
  add_output(c_.rows());
  set_continuous_state_size(n);
  has_feedthrough_ = any_nonzero(d_);
}

void StateSpaceCont::initialize(Context& ctx) {
  auto x = ctx.state_mut();
  std::copy(x0_.begin(), x0_.end(), x.begin());
  compute_outputs(ctx);
}

void StateSpaceCont::compute_outputs(Context& ctx) {
  // y = C x + D u via the in-place kernels: same accumulation order as the
  // old fused loops (C terms then D terms into one per-row accumulator), no
  // temporaries — this runs at every integration stage.
  math::multiply_into(ctx.output(0), c_, ctx.state());
  math::multiply_add_into(ctx.output(0), d_, ctx.input(0));
}

void StateSpaceCont::derivatives(Context& ctx, std::span<double> dx) {
  math::multiply_into(dx, a_, ctx.state());
  math::multiply_add_into(dx, b_, ctx.input(0));
}

TransferFunction::Canon TransferFunction::realize(
    const std::vector<double>& num, const std::vector<double>& den) {
  if (den.empty() || den.front() == 0.0) {
    throw std::invalid_argument("TransferFunction: bad denominator");
  }
  if (num.size() > den.size()) {
    throw std::invalid_argument("TransferFunction: improper (deg num > deg den)");
  }
  const std::size_t n = den.size() - 1;  // system order
  using math::Matrix;
  // Normalize so den is monic.
  std::vector<double> a_coef(den.begin() + 1, den.end());
  for (double& v : a_coef) v /= den.front();
  // Zero-pad numerator to length n+1 and normalize.
  std::vector<double> b_coef(den.size(), 0.0);
  std::copy(num.begin(), num.end(),
            b_coef.begin() + static_cast<long>(den.size() - num.size()));
  for (double& v : b_coef) v /= den.front();

  Canon f{Matrix(n, n), Matrix(n, 1), Matrix(1, n), Matrix{{b_coef[0]}}};
  if (n == 0) return f;
  for (std::size_t i = 0; i + 1 < n; ++i) f.a(i, i + 1) = 1.0;
  for (std::size_t i = 0; i < n; ++i) f.a(n - 1, i) = -a_coef[n - 1 - i];
  f.b(n - 1, 0) = 1.0;
  // c_i = b_{n-i} - a_{n-i} * b_0 (strictly proper part).
  for (std::size_t i = 0; i < n; ++i) {
    f.c(0, i) = b_coef[n - i] - a_coef[n - 1 - i] * b_coef[0];
  }
  return f;
}

TransferFunction::TransferFunction(std::string name, Canon f)
    : StateSpaceCont(std::move(name), std::move(f.a), std::move(f.b),
                     std::move(f.c), std::move(f.d)) {}

TransferFunction::TransferFunction(std::string name,
                                   const std::vector<double>& num,
                                   const std::vector<double>& den)
    : TransferFunction(std::move(name), realize(num, den)) {}


namespace {

ir::Attr matrix_attr(std::string key, const math::Matrix& m) {
  return ir::Attr::of_matrix(
      std::move(key), m.rows(), m.cols(),
      std::vector<double>(m.data(), m.data() + m.size()));
}

}  // namespace

void Integrator::describe(ir::BlockIr& out) const {
  out.kind = "Integrator";
  out.attrs.push_back(ir::Attr::of_vec("x0", x0_));
}

// TransferFunction inherits this: it IS its canonical realization, so the
// IR records the state-space form and regeneration is exact.
void StateSpaceCont::describe(ir::BlockIr& out) const {
  out.kind = "StateSpaceCont";
  out.attrs.push_back(matrix_attr("a", a_));
  out.attrs.push_back(matrix_attr("b", b_));
  out.attrs.push_back(matrix_attr("c", c_));
  out.attrs.push_back(matrix_attr("d", d_));
  out.attrs.push_back(ir::Attr::of_vec("x0", x0_));
}

}  // namespace ecsim::blocks
