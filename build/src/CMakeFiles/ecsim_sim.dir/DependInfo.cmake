
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/block.cpp" "src/CMakeFiles/ecsim_sim.dir/sim/block.cpp.o" "gcc" "src/CMakeFiles/ecsim_sim.dir/sim/block.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/ecsim_sim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/ecsim_sim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/integrator.cpp" "src/CMakeFiles/ecsim_sim.dir/sim/integrator.cpp.o" "gcc" "src/CMakeFiles/ecsim_sim.dir/sim/integrator.cpp.o.d"
  "/root/repo/src/sim/model.cpp" "src/CMakeFiles/ecsim_sim.dir/sim/model.cpp.o" "gcc" "src/CMakeFiles/ecsim_sim.dir/sim/model.cpp.o.d"
  "/root/repo/src/sim/port.cpp" "src/CMakeFiles/ecsim_sim.dir/sim/port.cpp.o" "gcc" "src/CMakeFiles/ecsim_sim.dir/sim/port.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/ecsim_sim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/ecsim_sim.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/ecsim_sim.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/ecsim_sim.dir/sim/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ecsim_mathlib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
