// Validates the core claim of the paper's §3.2 translation rules: the event
// network built from the SynDEx schedule reproduces, inside the hybrid
// simulation, the exact completion instants of every operation (sequencing,
// Fig. 4), joins inter-processor communications correctly (synchronization)
// and exhibits conditioning jitter (Fig. 5).
#include "translate/graph_of_delays.hpp"

#include <gtest/gtest.h>

#include "aaa/adequation.hpp"
#include "blocks/discrete.hpp"
#include "mathlib/stats.hpp"
#include "sim/simulator.hpp"

namespace ecsim::translate {
namespace {

struct DistributedChain {
  aaa::AlgorithmGraph alg{"chain", 0.01};
  aaa::ArchitectureGraph arch{
      aaa::ArchitectureGraph::bus_architecture(2, 1e4, 1e-5)};
  aaa::Schedule sched{0, 0};

  DistributedChain() {
    const aaa::OpId s =
        alg.add_simple("sense", aaa::OpKind::kSensor, 1e-4, "P0");
    const aaa::OpId c =
        alg.add_simple("ctrl", aaa::OpKind::kCompute, 5e-4, "P1");
    const aaa::OpId a =
        alg.add_simple("act", aaa::OpKind::kActuator, 1e-4, "P0");
    alg.add_dependency(s, c, 8.0);
    alg.add_dependency(c, a, 8.0);
    sched = aaa::adequate(alg, arch);
  }
};

std::vector<sim::Time> run_and_collect(sim::Model& m, const std::string& name,
                                       double t_end, std::uint64_t seed = 1) {
  sim::SimOptions opts;
  opts.end_time = t_end;
  opts.seed = seed;
  sim::Simulator s(m, opts);
  s.run();
  return s.trace().activation_times_by_name(name);
}

TEST(GraphOfDelays, EventChainReproducesScheduleInstantsExactly) {
  DistributedChain f;
  sim::Model m;
  auto& probe = m.add<blocks::EventCounter>("act_done");
  const GraphOfDelays god =
      build_graph_of_delays(m, f.alg, f.arch, f.sched, {});
  wire_completion(m, god, f.alg.find("act"), probe, 0);

  const auto times = run_and_collect(m, "act_done", 0.0499);
  const double expect = f.sched.of_op(f.alg.find("act")).end;
  ASSERT_EQ(times.size(), 5u);
  for (std::size_t k = 0; k < times.size(); ++k) {
    EXPECT_NEAR(times[k], expect + 0.01 * static_cast<double>(k), 1e-12);
  }
}

TEST(GraphOfDelays, AllOpsGetCompletionSources) {
  DistributedChain f;
  sim::Model m;
  const GraphOfDelays god =
      build_graph_of_delays(m, f.alg, f.arch, f.sched, {});
  EXPECT_EQ(god.op_completion.size(), 3u);
  EXPECT_NE(god.clock, nullptr);
}

TEST(GraphOfDelays, TimetableModeMatchesEventChainUnderWcet) {
  DistributedChain f;
  sim::Model m1, m2;
  auto& n1 = m1.add<blocks::EventCounter>("done");
  auto& n2 = m2.add<blocks::EventCounter>("done");
  GodOptions chain_opts;
  chain_opts.mode = GodMode::kEventChain;
  GodOptions tt_opts;
  tt_opts.mode = GodMode::kTimetable;
  const GraphOfDelays god1 =
      build_graph_of_delays(m1, f.alg, f.arch, f.sched, chain_opts);
  const GraphOfDelays god2 =
      build_graph_of_delays(m2, f.alg, f.arch, f.sched, tt_opts);
  wire_completion(m1, god1, f.alg.find("ctrl"), n1, 0);
  wire_completion(m2, god2, f.alg.find("ctrl"), n2, 0);
  const auto t1 = run_and_collect(m1, "done", 0.0399);
  const auto t2 = run_and_collect(m2, "done", 0.0399);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_NEAR(t1[i], t2[i], 1e-12);
  }
}

TEST(GraphOfDelays, ExecutionTimeVariationOnlyEverEarlier) {
  DistributedChain f;
  sim::Model m;
  auto& n = m.add<blocks::EventCounter>("done");
  GodOptions opts;
  opts.bcet_fraction = 0.2;
  const GraphOfDelays god =
      build_graph_of_delays(m, f.alg, f.arch, f.sched, opts);
  wire_completion(m, god, f.alg.find("act"), n, 0);
  const auto times = run_and_collect(m, "done", 0.0999, 5);
  const double wcet_end = f.sched.of_op(f.alg.find("act")).end;
  ASSERT_EQ(times.size(), 10u);
  bool any_strictly_earlier = false;
  for (std::size_t k = 0; k < times.size(); ++k) {
    const double offset = times[k] - 0.01 * static_cast<double>(k);
    EXPECT_LE(offset, wcet_end + 1e-12);
    EXPECT_GT(offset, 0.0);
    if (offset < wcet_end - 1e-6) any_strictly_earlier = true;
  }
  EXPECT_TRUE(any_strictly_earlier);
}

TEST(GraphOfDelays, ConditioningProducesJitter) {
  // Conditional controller: branch WCETs 1e-4 vs 4e-3 on one processor.
  aaa::AlgorithmGraph alg("cond", 0.01);
  const aaa::OpId s = alg.add_simple("sense", aaa::OpKind::kSensor, 1e-4);
  aaa::Operation mode;
  mode.name = "ctrl";
  mode.kind = aaa::OpKind::kCompute;
  mode.branches = {aaa::Branch{"fast", {{"cpu", 1e-4}}},
                   aaa::Branch{"slow", {{"cpu", 4e-3}}}};
  const aaa::OpId c = alg.add_operation(std::move(mode));
  const aaa::OpId a = alg.add_simple("act", aaa::OpKind::kActuator, 1e-4);
  alg.add_dependency(s, c, 1.0);
  alg.add_dependency(c, a, 1.0);
  const auto arch = aaa::ArchitectureGraph::bus_architecture(1, 1.0);
  const aaa::Schedule sched = aaa::adequate(alg, arch);

  sim::Model m;
  auto& n = m.add<blocks::EventCounter>("done");
  GodOptions opts;
  opts.random_branches = true;
  const GraphOfDelays god = build_graph_of_delays(m, alg, arch, sched, opts);
  wire_completion(m, god, a, n, 0);
  const auto times = run_and_collect(m, "done", 0.999, 7);
  ASSERT_GE(times.size(), 50u);
  std::vector<double> offsets;
  for (std::size_t k = 0; k < times.size(); ++k) {
    offsets.push_back(times[k] - 0.01 * static_cast<double>(k));
  }
  const double jitter = math::peak_to_peak(offsets);
  EXPECT_NEAR(jitter, 4e-3 - 1e-4, 1e-9);  // branch asymmetry shows up fully
}

TEST(GraphOfDelays, OverloadedScheduleRejected) {
  aaa::AlgorithmGraph alg("slow", 0.001);  // period shorter than makespan
  alg.add_simple("sense", aaa::OpKind::kSensor, 1e-2);
  const auto arch = aaa::ArchitectureGraph::bus_architecture(1, 1.0);
  const aaa::Schedule sched = aaa::adequate(alg, arch);
  sim::Model m;
  EXPECT_THROW(build_graph_of_delays(m, alg, arch, sched, {}),
               std::runtime_error);
}

TEST(GraphOfDelays, MissingPeriodRejected) {
  aaa::AlgorithmGraph alg("np", 0.0);
  alg.add_simple("sense", aaa::OpKind::kSensor, 1e-4);
  const auto arch = aaa::ArchitectureGraph::bus_architecture(1, 1.0);
  const aaa::Schedule sched = aaa::adequate(alg, arch);
  sim::Model m;
  EXPECT_THROW(build_graph_of_delays(m, alg, arch, sched, {}),
               std::runtime_error);
}

TEST(GraphOfDelays, WireCompletionUnknownOpThrows) {
  DistributedChain f;
  sim::Model m;
  auto& n = m.add<blocks::EventCounter>("n");
  const GraphOfDelays god =
      build_graph_of_delays(m, f.alg, f.arch, f.sched, {});
  EXPECT_THROW(wire_completion(m, god, 99, n, 0), std::out_of_range);
}

}  // namespace
}  // namespace ecsim::translate
