// Shard recombination for parallel batches: MetricsRegistry::merge folds
// counters/gauges/histograms across per-task registries, Tracer::append
// re-interns names/tracks and appends records in stable order. Both must be
// order-stable so a batch merged in task-index order snapshots identically
// regardless of thread count.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace ecsim::obs {
namespace {

TEST(MetricsMerge, CountersAdd) {
  MetricsRegistry a, b;
  a.counter("shared").add(10);
  b.counter("shared").add(32);
  b.counter("only_b").add(5);
  a.merge(b);
  EXPECT_EQ(a.counter("shared").value(), 42u);
  EXPECT_EQ(a.counter("only_b").value(), 5u);
  // b is untouched.
  EXPECT_EQ(b.counter("shared").value(), 32u);
}

TEST(MetricsMerge, GaugesRatchetToMax) {
  MetricsRegistry a, b;
  a.gauge("hwm").set(7.0);
  b.gauge("hwm").set(3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.gauge("hwm").value(), 7.0);
  b.gauge("hwm").set(11.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.gauge("hwm").value(), 11.0);
}

TEST(MetricsMerge, HistogramsCombineCountsSumsMinMaxBuckets) {
  MetricsRegistry a, b;
  a.histogram("h").observe(1.0);
  a.histogram("h").observe(4.0);
  b.histogram("h").observe(0.5);
  b.histogram("h").observe(100.0);
  a.merge(b);
  const Histogram& h = a.histogram("h");
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 105.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_EQ(h.bucket(0), 2u);  // 1.0 and 0.5
  EXPECT_EQ(h.bucket(2), 1u);  // 4.0
  EXPECT_EQ(h.bucket(7), 1u);  // 100.0 in (64, 128]
}

TEST(MetricsMerge, MergeIntoEmptyHistogramPreservesMinMax) {
  MetricsRegistry a, b;
  b.histogram("h").observe(3.0);
  b.histogram("h").observe(9.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.histogram("h").min(), 3.0);
  EXPECT_DOUBLE_EQ(a.histogram("h").max(), 9.0);
  EXPECT_EQ(a.histogram("h").count(), 2u);
}

TEST(MetricsMerge, ShardMergeSnapshotIsOrderStable) {
  // Simulate three task shards and merge in task-index order twice; the
  // JSON snapshot must be identical — this is the determinism contract the
  // parallel batch runner relies on.
  auto fill_shard = [](MetricsRegistry& r, int i) {
    r.counter("sim.events").add(static_cast<std::uint64_t>(10 * (i + 1)));
    r.gauge("queue.hwm").set(static_cast<double>(i));
    r.histogram("cone").observe(static_cast<double>(i + 1));
  };
  std::string first, second;
  for (int round = 0; round < 2; ++round) {
    MetricsRegistry merged;
    for (int i = 0; i < 3; ++i) {
      MetricsRegistry shard;
      fill_shard(shard, i);
      merged.merge(shard);
    }
    (round == 0 ? first : second) = merged.to_json();
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"sim.events\": 60"), std::string::npos);
}

TEST(MetricsMerge, EmptyShardIsANoOp) {
  // A task that never touched its shard (e.g. all-skipped cell) must merge
  // cleanly without inventing instruments or perturbing existing ones.
  MetricsRegistry a, empty;
  a.counter("c").add(7);
  a.histogram("h").observe(2.0);
  const std::string before = a.to_json();
  a.merge(empty);
  EXPECT_EQ(a.to_json(), before);

  // And merging *into* an empty registry clones the source.
  MetricsRegistry fresh;
  fresh.merge(a);
  EXPECT_EQ(fresh.to_json(), before);
}

TEST(MetricsMerge, SelfMergeThrows) {
  MetricsRegistry a;
  a.counter("c").add(1);
  EXPECT_THROW(a.merge(a), std::invalid_argument);
  // The registry is still usable after the rejected call.
  EXPECT_EQ(a.counter("c").value(), 1u);
}

TEST(MetricsMerge, HistogramSelfMergeThrows) {
  MetricsRegistry a;
  a.histogram("h").observe(1.0);
  EXPECT_THROW(a.histogram("h").merge(a.histogram("h")),
               std::invalid_argument);
  EXPECT_EQ(a.histogram("h").count(), 1u);
}

TEST(MetricsMerge, HistogramBucketsStayAlignedAfterMerge) {
  // Merging must add bucket-by-bucket (same log2 boundaries), never shift
  // samples between buckets: observing the same values into one histogram
  // directly must give identical buckets as splitting them across shards.
  const std::vector<double> values = {0.25, 1.0,    1.5,   2.0, 3.9,
                                      4.0,  1023.0, 1024.0, 1e9};
  Histogram direct;
  for (double v : values) direct.observe(v);

  MetricsRegistry merged;
  for (std::size_t i = 0; i < values.size(); ++i) {
    MetricsRegistry shard;
    shard.histogram("h").observe(values[i]);
    merged.merge(shard);
  }
  const Histogram& h = merged.histogram("h");
  ASSERT_EQ(h.count(), direct.count());
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    EXPECT_EQ(h.bucket(b), direct.bucket(b)) << "bucket " << b;
  }
  EXPECT_DOUBLE_EQ(h.sum(), direct.sum());
  EXPECT_DOUBLE_EQ(h.min(), direct.min());
  EXPECT_DOUBLE_EQ(h.max(), direct.max());
}

TEST(HistogramQuantile, BucketedEstimateAndEdgeCases) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 90; ++i) h.observe(1.0);   // bucket 0 (<= 1)
  for (int i = 0; i < 10; ++i) h.observe(100.0); // bucket 7 (64, 128]
  // p50 lands in the first bucket; its inclusive bound is 1.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  // p99 lands in the (64, 128] bucket, tightened by the recorded max.
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 100.0);
  // Out-of-range q clamps instead of throwing.
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(2.0), 100.0);
}

TEST(TracerAppend, RemapsNamesAndTracksAcrossShards) {
  Tracer shard1(64), shard2(64), merged(256);
  shard1.set_enabled(true);
  shard2.set_enabled(true);
  // Interning order differs between the shards on purpose: the ids must be
  // remapped, not copied.
  const std::uint32_t s1_ev = shard1.intern("ev/a");
  const std::uint32_t s1_trk = shard1.track("task0", Domain::kSim);
  shard1.instant(s1_ev, s1_trk, 1.0);
  const std::uint32_t s2_other = shard2.intern("ev/b");
  const std::uint32_t s2_ev = shard2.intern("ev/a");
  const std::uint32_t s2_trk = shard2.track("task1", Domain::kSim);
  shard2.instant(s2_other, s2_trk, 2.0);
  shard2.instant(s2_ev, s2_trk, 3.0);

  merged.append(shard1);
  merged.append(shard2);
  const auto events = merged.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(merged.name(events[0].name), "ev/a");
  EXPECT_EQ(merged.track_name(events[0].track), "task0");
  EXPECT_EQ(merged.name(events[1].name), "ev/b");
  EXPECT_EQ(merged.name(events[2].name), "ev/a");
  EXPECT_EQ(merged.track_name(events[2].track), "task1");
  EXPECT_EQ(merged.track_domain(events[2].track), Domain::kSim);
  // Same semantic name interned once in the destination.
  EXPECT_EQ(events[0].name, events[2].name);
}

TEST(TracerAppend, WorksIntoDisabledTracerAndKeepsOrder) {
  // The merge destination is typically a cold aggregator that never records
  // live; append must not be gated on enabled().
  Tracer shard(64), merged(64);
  shard.set_enabled(true);
  const std::uint32_t ev = shard.intern("e");
  const std::uint32_t trk = shard.track("t", Domain::kWall);
  for (int i = 0; i < 5; ++i) shard.instant(ev, trk, static_cast<double>(i));
  ASSERT_FALSE(merged.enabled());
  merged.append(shard);
  const auto events = merged.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(i)].ts,
                     static_cast<double>(i));
  }
}

TEST(TracerAppend, EmptyShardAppendsNothing) {
  Tracer shard(16), merged(16);
  // Names interned in an empty shard still transfer (harmless), but no
  // records appear.
  shard.intern("never-recorded");
  merged.append(shard);
  EXPECT_EQ(merged.size(), 0u);
  EXPECT_EQ(merged.snapshot().size(), 0u);
}

TEST(TracerAppend, SelfAppendThrows) {
  Tracer t(16);
  t.set_enabled(true);
  const std::uint32_t ev = t.intern("e");
  const std::uint32_t trk = t.track("t", Domain::kWall);
  t.instant(ev, trk, 1.0);
  EXPECT_THROW(t.append(t), std::invalid_argument);
  EXPECT_EQ(t.size(), 1u);  // untouched by the rejected call
}

TEST(TracerAppend, DuplicateNamesAcrossShardsInternOnce) {
  // Every shard of a batch interns the same instrument names; the merged
  // tracer must collapse them to one id each, whatever the per-shard order.
  Tracer s1(16), s2(16), s3(16), merged(64);
  for (Tracer* s : {&s1, &s2, &s3}) s->set_enabled(true);
  s1.instant(s1.intern("a"), s1.track("trk", Domain::kSim), 1.0);
  s2.intern("b");  // "b" first: shifts s2's id for "a" relative to s1
  s2.instant(s2.intern("a"), s2.track("trk", Domain::kSim), 2.0);
  s3.instant(s3.intern("b"), s3.track("trk", Domain::kSim), 3.0);
  merged.append(s1);
  merged.append(s2);
  merged.append(s3);
  const auto events = merged.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, events[1].name);            // both "a"
  EXPECT_NE(events[1].name, events[2].name);            // "a" vs "b"
  EXPECT_EQ(merged.name(events[2].name), "b");
  EXPECT_EQ(events[0].track, events[2].track);          // one "trk" track
  EXPECT_EQ(merged.num_tracks(), 1u);
}

TEST(TracerAppend, PreservesArgNamesAndValues) {
  Tracer shard(16), merged(16);
  shard.set_enabled(true);
  const std::uint32_t ev = shard.intern("span");
  const std::uint32_t arg = shard.intern("cone_size");
  const std::uint32_t trk = shard.track("t", Domain::kWall);
  shard.span(ev, trk, 1.0, 5.0, arg, 17.0);
  merged.append(shard);
  const auto events = merged.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(merged.name(events[0].arg_name), "cone_size");
  EXPECT_DOUBLE_EQ(events[0].arg, 17.0);
  EXPECT_DOUBLE_EQ(events[0].dur, 4.0);
}

}  // namespace
}  // namespace ecsim::obs
