#include "aaa/routing.hpp"

#include <gtest/gtest.h>

namespace ecsim::aaa {
namespace {

TEST(RouteTable, SelfRouteIsEmpty) {
  const auto arch = ArchitectureGraph::bus_architecture(2, 10.0);
  const RouteTable rt(arch);
  EXPECT_TRUE(rt.route(0, 0).empty());
  EXPECT_TRUE(rt.connected(0, 0));
}

TEST(RouteTable, SingleBusHop) {
  const auto arch = ArchitectureGraph::bus_architecture(3, 10.0, 0.1);
  const RouteTable rt(arch);
  const Route& r = rt.route(0, 2);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].from_proc, 0u);
  EXPECT_EQ(r[0].to_proc, 2u);
  EXPECT_DOUBLE_EQ(rt.transfer_time(arch, 0, 2, 10.0), 0.1 + 1.0);
}

TEST(RouteTable, MultiHopThroughIntermediate) {
  // P0 -link01- P1 -link12- P2: route P0->P2 has two hops via P1.
  ArchitectureGraph arch;
  const ProcId p0 = arch.add_processor("P0");
  const ProcId p1 = arch.add_processor("P1");
  const ProcId p2 = arch.add_processor("P2");
  const MediumId l01 = arch.add_medium("l01", 10.0);
  const MediumId l12 = arch.add_medium("l12", 20.0);
  arch.attach(p0, l01);
  arch.attach(p1, l01);
  arch.attach(p1, l12);
  arch.attach(p2, l12);
  const RouteTable rt(arch);
  const Route& r = rt.route(p0, p2);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].medium, l01);
  EXPECT_EQ(r[0].to_proc, p1);
  EXPECT_EQ(r[1].medium, l12);
  EXPECT_EQ(r[1].to_proc, p2);
  EXPECT_DOUBLE_EQ(rt.transfer_time(arch, p0, p2, 20.0), 2.0 + 1.0);
}

TEST(RouteTable, PrefersFewerHops) {
  // Triangle: direct bus P0-P2 plus two-hop path; BFS must take the direct.
  ArchitectureGraph arch;
  const ProcId p0 = arch.add_processor("P0");
  const ProcId p1 = arch.add_processor("P1");
  const ProcId p2 = arch.add_processor("P2");
  const MediumId l01 = arch.add_medium("l01", 10.0);
  const MediumId l12 = arch.add_medium("l12", 10.0);
  const MediumId l02 = arch.add_medium("l02", 10.0);
  arch.attach(p0, l01);
  arch.attach(p1, l01);
  arch.attach(p1, l12);
  arch.attach(p2, l12);
  arch.attach(p0, l02);
  arch.attach(p2, l02);
  const RouteTable rt(arch);
  EXPECT_EQ(rt.route(p0, p2).size(), 1u);
  EXPECT_EQ(rt.route(p0, p2)[0].medium, l02);
}

TEST(RouteTable, DisconnectedDetected) {
  ArchitectureGraph arch;
  arch.add_processor("P0");
  arch.add_processor("P1");  // no media at all
  const RouteTable rt(arch);
  EXPECT_FALSE(rt.connected(0, 1));
  EXPECT_THROW(rt.route(0, 1), std::runtime_error);
}

TEST(RouteTable, OutOfRangeThrows) {
  const auto arch = ArchitectureGraph::bus_architecture(2, 1.0);
  const RouteTable rt(arch);
  EXPECT_THROW(rt.route(0, 9), std::out_of_range);
  EXPECT_FALSE(rt.connected(0, 9));
}

}  // namespace
}  // namespace ecsim::aaa
