#include "control/c2d.hpp"

#include <stdexcept>

#include "mathlib/expm.hpp"

namespace ecsim::control {

Matrix input_integral(const Matrix& a, const Matrix& b, double t) {
  // exp([A B; 0 0] t) = [e^{At}  \int_0^t e^{As} ds B; 0 I]
  const std::size_t n = a.rows();
  const std::size_t m = b.cols();
  Matrix aug = Matrix::zeros(n + m, n + m);
  aug.set_block(0, 0, a);
  aug.set_block(0, n, b);
  const Matrix e = math::expm(aug * t);
  return e.block(0, n, n, m);
}

StateSpace c2d(const StateSpace& sys, double ts) {
  sys.validate();
  if (sys.discrete) throw std::invalid_argument("c2d: system already discrete");
  if (ts <= 0.0) throw std::invalid_argument("c2d: ts must be > 0");
  const std::size_t n = sys.order();
  const std::size_t m = sys.num_inputs();
  Matrix aug = Matrix::zeros(n + m, n + m);
  aug.set_block(0, 0, sys.a);
  aug.set_block(0, n, sys.b);
  const Matrix e = math::expm(aug * ts);
  StateSpace d;
  d.a = e.block(0, 0, n, n);
  d.b = e.block(0, n, n, m);
  d.c = sys.c;
  d.d = sys.d;
  d.discrete = true;
  d.ts = ts;
  return d;
}

StateSpace c2d_with_input_delay(const StateSpace& sys, double ts, double tau) {
  sys.validate();
  if (sys.discrete) {
    throw std::invalid_argument("c2d_with_input_delay: system already discrete");
  }
  if (ts <= 0.0) throw std::invalid_argument("c2d_with_input_delay: ts <= 0");
  if (tau < 0.0 || tau > ts) {
    throw std::invalid_argument("c2d_with_input_delay: need 0 <= tau <= ts");
  }
  const std::size_t n = sys.order();
  const std::size_t m = sys.num_inputs();
  const StateSpace disc = c2d(sys, ts);
  // Over [kTs, kTs+tau) the plant still sees u_{k-1}; afterwards u_k.
  //   x_{k+1} = Ad x_k + G1 u_{k-1} + G0 u_k
  //   G0 = \int_0^{ts-tau} e^{As} ds B,  G1 = Bd - G0.
  const Matrix g0 = input_integral(sys.a, sys.b, ts - tau);
  const Matrix g1 = disc.b - g0;

  StateSpace aug;
  aug.a = Matrix::zeros(n + m, n + m);
  aug.a.set_block(0, 0, disc.a);
  aug.a.set_block(0, n, g1);
  aug.b = Matrix::zeros(n + m, m);
  aug.b.set_block(0, 0, g0);
  aug.b.set_block(n, 0, Matrix::identity(m));
  aug.c = math::hcat(sys.c, Matrix::zeros(sys.c.rows(), m));
  aug.d = sys.d;
  aug.discrete = true;
  aug.ts = ts;
  return aug;
}

}  // namespace ecsim::control
