// Property sweep of the adequation heuristic over random layered DAGs and
// random bus architectures: the schedule must always validate, cover every
// operation exactly once, respect a critical-path lower bound, and be
// deterministic for identical inputs.
#include <gtest/gtest.h>

#include "aaa/adequation.hpp"
#include "random_graphs.hpp"

namespace ecsim::aaa {
namespace {

class AdequationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdequationProperty, RandomWorkloadsScheduleSoundly) {
  math::Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n_ops =
        3 + static_cast<std::size_t>(rng.uniform_int(0, 9));
    const AlgorithmGraph alg = ecsim::testing::random_dag(rng, n_ops);
    const ArchitectureGraph arch = ecsim::testing::random_bus(rng);
    const Schedule sched = adequate(alg, arch);
    ASSERT_NO_THROW(sched.validate(alg, arch));
    EXPECT_EQ(sched.ops().size(), n_ops);

    // Lower bound: makespan >= critical path of pure computation.
    const auto levels = alg.tail_levels();
    double cp = 0.0;
    for (double l : levels) cp = std::max(cp, l);
    EXPECT_GE(sched.makespan() + 1e-12, cp);

    // Upper bound sanity: never worse than fully sequential + all comms.
    double total = 0.0;
    for (OpId i = 0; i < alg.num_operations(); ++i) {
      total += alg.op(i).wcet_on("cpu");
    }
    double total_comm = 0.0;
    if (arch.num_media() > 0) {
      for (const DataDep& d : alg.dependencies()) {
        total_comm += arch.medium(0).transfer_time(d.size);
      }
    }
    EXPECT_LE(sched.makespan(), total + total_comm + 1e-9);
  }
}

TEST_P(AdequationProperty, DeterministicForIdenticalInput) {
  math::Rng rng(GetParam() * 7919);
  const AlgorithmGraph alg = ecsim::testing::random_dag(rng, 8);
  const ArchitectureGraph arch = ArchitectureGraph::bus_architecture(3, 1e4, 1e-5);
  const Schedule s1 = adequate(alg, arch);
  const Schedule s2 = adequate(alg, arch);
  ASSERT_EQ(s1.ops().size(), s2.ops().size());
  for (std::size_t i = 0; i < s1.ops().size(); ++i) {
    EXPECT_EQ(s1.ops()[i].op, s2.ops()[i].op);
    EXPECT_EQ(s1.ops()[i].proc, s2.ops()[i].proc);
    EXPECT_DOUBLE_EQ(s1.ops()[i].start, s2.ops()[i].start);
  }
}

TEST_P(AdequationProperty, CommAwareNeverLosesOnSingleProcessor) {
  // On one processor there are no comms, so both variants must agree.
  math::Rng rng(GetParam() * 104729);
  const AlgorithmGraph alg = ecsim::testing::random_dag(rng, 7);
  const ArchitectureGraph arch = ArchitectureGraph::bus_architecture(1, 1.0);
  const double aware = adequate(alg, arch, {.comm_aware = true}).makespan();
  const double blind = adequate(alg, arch, {.comm_aware = false}).makespan();
  EXPECT_DOUBLE_EQ(aware, blind);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdequationProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace ecsim::aaa
