// Discrete-time algebraic Riccati and Lyapunov equation solvers by fixed-point
// iteration of the corresponding difference equations. Sufficient for the
// stabilizable/detectable low-order systems used in control design here.
#pragma once

#include "mathlib/matrix.hpp"

namespace ecsim::math {

struct RiccatiOptions {
  int max_iterations = 100000;
  double tolerance = 1e-12;  // convergence threshold on max|P_{k+1}-P_k|
};

/// Solve the discrete-time algebraic Riccati equation
///   P = A'PA - A'PB (R + B'PB)^-1 B'PA + Q
/// by iterating the Riccati difference equation until convergence.
/// Throws std::runtime_error if the iteration does not converge (e.g. the
/// pair (A, B) is not stabilizable).
Matrix solve_dare(const Matrix& a, const Matrix& b, const Matrix& q,
                  const Matrix& r, const RiccatiOptions& opts = {});

/// Solve the discrete Lyapunov equation  X = A X A' + Q  by accumulation
/// (converges iff spectral_radius(A) < 1).
Matrix solve_dlyap(const Matrix& a, const Matrix& q,
                   const RiccatiOptions& opts = {});

}  // namespace ecsim::math
