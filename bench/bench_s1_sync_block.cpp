// EXP-S1 (Section 3.2.3): semantics and cost of the proposed Synchronization
// block. (a) Behavioural table: firing counts for randomized arrival
// patterns across arities match the AND-join reference; (b) throughput of
// the block inside the event engine.
#include <algorithm>

#include "bench_common.hpp"
#include "blocks/discrete.hpp"
#include "blocks/event_blocks.hpp"
#include "blocks/sources.hpp"
#include "blocks/synchronization.hpp"
#include "mathlib/rng.hpp"
#include "sim/simulator.hpp"

using namespace ecsim;

namespace {

struct TrialResult {
  std::size_t expected_fires = 0;
  std::size_t simulated_fires = 0;
};

TrialResult random_trial(std::size_t arity, std::uint64_t seed) {
  math::Rng rng(seed);
  std::vector<std::vector<sim::Time>> trains(arity);
  std::vector<std::pair<sim::Time, std::size_t>> all;
  for (std::size_t i = 0; i < arity; ++i) {
    sim::Time t = 0.0;
    const int count = static_cast<int>(rng.uniform_int(1, 8));
    for (int k = 0; k < count; ++k) {
      t += rng.uniform(0.01, 0.3);
      trains[i].push_back(t);
      all.emplace_back(t, i);
    }
  }
  std::sort(all.begin(), all.end());
  std::vector<bool> flags(arity, false);
  TrialResult res;
  for (const auto& [t, i] : all) {
    flags[i] = true;
    if (std::all_of(flags.begin(), flags.end(), [](bool b) { return b; })) {
      ++res.expected_fires;
      std::fill(flags.begin(), flags.end(), false);
    }
  }

  sim::Model m;
  auto& sync = m.add<blocks::Synchronization>("sync", arity);
  auto& counter = m.add<blocks::EventCounter>("n");
  m.connect_event(sync, sync.event_out(), counter, 0);
  for (std::size_t i = 0; i < arity; ++i) {
    const sim::Block* prev = nullptr;
    sim::Time prev_t = 0.0;
    for (sim::Time t : trains[i]) {
      auto& d = m.add<blocks::EventDelay>(
          "d" + std::to_string(i) + "@" + std::to_string(t), t - prev_t);
      if (prev == nullptr) {
        auto& kick = m.add<blocks::Clock>("k" + d.name(), 1e9);
        m.connect_event(kick, 0, d, d.event_in());
      } else {
        m.connect_event(*prev, 0, d, d.event_in());
      }
      m.connect_event(d, d.event_out(), sync, i);
      prev = &d;
      prev_t = t;
    }
  }
  sim::Simulator s(m, sim::SimOptions{.end_time = 10.0});
  s.run();
  res.simulated_fires = counter.count();
  return res;
}

void experiment() {
  bench::banner("EXP-S1", "Section 3.2.3 (Synchronization block)",
                "AND-join semantics validated against a reference model over "
                "randomized arrival patterns.");
  std::printf("%8s %10s %16s %16s %10s\n", "arity", "trials",
              "expected fires", "simulated fires", "mismatch");
  for (const std::size_t arity : {1u, 2u, 3u, 4u, 6u, 8u, 12u}) {
    std::size_t expected = 0, simulated = 0, mismatches = 0;
    for (std::uint64_t t = 0; t < 50; ++t) {
      const TrialResult r = random_trial(arity, arity * 1000 + t);
      expected += r.expected_fires;
      simulated += r.simulated_fires;
      if (r.expected_fires != r.simulated_fires) ++mismatches;
    }
    std::printf("%8zu %10d %16zu %16zu %10zu\n", arity, 50, expected,
                simulated, mismatches);
  }
  std::printf("\nThe block fires exactly when every input has received at "
              "least one event since the last reset (0 mismatches).\n\n");
}

void BM_SynchronizationThroughput(benchmark::State& state) {
  const auto arity = static_cast<std::size_t>(state.range(0));
  sim::Model m;
  auto& sync = m.add<blocks::Synchronization>("sync", arity);
  auto& clk = m.add<blocks::Clock>("clk", 1e-4);
  for (std::size_t i = 0; i < arity; ++i) m.connect_event(clk, 0, sync, i);
  auto& counter = m.add<blocks::EventCounter>("n");
  m.connect_event(sync, sync.event_out(), counter, 0);
  sim::Simulator s(m, sim::SimOptions{.end_time = 1.0});
  for (auto _ : state) {
    s.run();
    benchmark::DoNotOptimize(counter.count());
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(s.events_dispatched()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SynchronizationThroughput)->Arg(2)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  experiment();
  return bench::run_benchmarks(argc, argv);
}
