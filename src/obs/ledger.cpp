#include "obs/ledger.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ecsim::obs {

namespace {

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void field_str(std::string& out, const char* key, const std::string& v) {
  out += '"';
  out += key;
  out += "\": \"";
  json_escape_into(out, v);
  out += '"';
}

void field_num(std::string& out, const char* key, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "\"%s\": %.17g", key, v);
  out += buf;
}

void field_u64(std::string& out, const char* key, std::uint64_t v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "\"%s\": %llu", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

// ---- minimal JSON field extraction -----------------------------------------
// Ledger lines and BENCH_*.json files are machine-written with a known flat
// shape; targeted key lookups keep this dependency-free. A key match is the
// literal `"key":` token — names never collide with values because every
// string value the writer emits is escaped.

bool find_key(const std::string& text, const std::string& key,
              std::size_t from, std::size_t& value_pos) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos) return false;
  std::size_t p = at + needle.size();
  while (p < text.size() && (text[p] == ' ' || text[p] == '\t')) ++p;
  if (p >= text.size()) return false;
  value_pos = p;
  return true;
}

bool get_string(const std::string& text, const std::string& key,
                std::string& out, std::size_t from = 0) {
  std::size_t p = 0;
  if (!find_key(text, key, from, p) || text[p] != '"') return false;
  ++p;
  std::string s;
  while (p < text.size() && text[p] != '"') {
    char c = text[p];
    if (c == '\\' && p + 1 < text.size()) {
      ++p;
      switch (text[p]) {
        case 'n': c = '\n'; break;
        case 'r': c = '\r'; break;
        case 't': c = '\t'; break;
        case 'u': {
          // Writer only emits \u00XX for control bytes.
          if (p + 4 < text.size()) {
            c = static_cast<char>(
                std::strtoul(text.substr(p + 1, 4).c_str(), nullptr, 16));
            p += 4;
          }
          break;
        }
        default: c = text[p];
      }
    }
    s += c;
    ++p;
  }
  if (p >= text.size()) return false;
  out = std::move(s);
  return true;
}

bool get_number(const std::string& text, const std::string& key, double& out,
                std::size_t from = 0) {
  std::size_t p = 0;
  if (!find_key(text, key, from, p)) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str() + p, &end);
  if (end == text.c_str() + p) return false;
  out = v;
  return true;
}

/// Exact 64-bit parse (seeds and FNV hashes overflow a double mantissa).
bool get_u64(const std::string& text, const std::string& key,
             std::uint64_t& out, std::size_t from = 0) {
  std::size_t p = 0;
  if (!find_key(text, key, from, p)) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str() + p, &end, 10);
  if (end == text.c_str() + p) return false;
  out = v;
  return true;
}

/// The single-line metrics snapshot: everything from `value_pos`'s opening
/// brace to its balanced closing brace (quote-aware).
bool get_object(const std::string& text, const std::string& key,
                std::string& out) {
  std::size_t p = 0;
  if (!find_key(text, key, 0, p) || text[p] != '{') return false;
  int depth = 0;
  bool in_str = false;
  for (std::size_t i = p; i < text.size(); ++i) {
    const char c = text[i];
    if (in_str) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') in_str = true;
    if (c == '{') ++depth;
    if (c == '}' && --depth == 0) {
      out = text.substr(p, i - p + 1);
      return true;
    }
  }
  return false;
}

}  // namespace

std::string to_json_line(const LedgerRecord& r) {
  std::string out = "{";
  field_u64(out, "schema_version", static_cast<std::uint64_t>(r.schema_version));
  out += ", ";
  field_str(out, "ir_hash", r.ir_hash);
  out += ", ";
  field_str(out, "model", r.model);
  out += ", ";
  field_str(out, "backend_requested", r.backend_requested);
  out += ", ";
  field_str(out, "backend_used", r.backend_used);
  out += ", ";
  field_str(out, "fallback_reason", r.fallback_reason);
  out += ", ";
  field_u64(out, "seed", r.seed);
  out += ", ";
  field_u64(out, "fault_plan_hash", r.fault_plan_hash);
  out += ", ";
  field_u64(out, "threads", r.threads);
  out += ", ";
  field_num(out, "wall_s", r.wall_s);
  out += ", ";
  field_u64(out, "events", r.events);
  out += ", ";
  field_num(out, "events_per_s", r.events_per_s);
  out += ", ";
  field_num(out, "trials_per_s", r.trials_per_s);
  if (r.served_from_cache >= 0) {
    out += ", ";
    field_u64(out, "served_from_cache",
              static_cast<std::uint64_t>(r.served_from_cache));
  }
  out += ", \"metrics\": ";
  out += r.metrics_json.empty() ? "{}" : r.metrics_json;
  out += "}";
  return out;
}

bool parse_json_line(const std::string& line, LedgerRecord& out) {
  if (line.find_first_not_of(" \t\r\n") == std::string::npos) return false;
  double v = 0.0;
  if (!get_number(line, "schema_version", v)) return false;
  const int version = static_cast<int>(v);
  if (version < kLedgerOldestReadableVersion ||
      version > kLedgerSchemaVersion) {
    return false;
  }
  LedgerRecord r;
  r.schema_version = version;
  get_string(line, "ir_hash", r.ir_hash);
  get_string(line, "model", r.model);
  get_string(line, "backend_requested", r.backend_requested);
  get_string(line, "backend_used", r.backend_used);
  get_string(line, "fallback_reason", r.fallback_reason);
  get_u64(line, "seed", r.seed);
  get_u64(line, "fault_plan_hash", r.fault_plan_hash);
  if (get_number(line, "threads", v)) r.threads = static_cast<unsigned>(v);
  get_number(line, "wall_s", r.wall_s);
  get_u64(line, "events", r.events);
  get_number(line, "events_per_s", r.events_per_s);
  get_number(line, "trials_per_s", r.trials_per_s);  // absent in v1 -> 0
  if (get_number(line, "served_from_cache", v)) {    // absent pre-v3 -> -1
    r.served_from_cache = v != 0.0 ? 1 : 0;
  }
  if (!get_object(line, "metrics", r.metrics_json)) r.metrics_json = "{}";
  out = std::move(r);
  return true;
}

Ledger::Ledger(std::string path, std::size_t capacity)
    : path_(std::move(path)), capacity_(capacity == 0 ? 1 : capacity) {
  tail_.reserve(capacity_ < 64 ? capacity_ : 64);
}

void Ledger::append(const LedgerRecord& r) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tail_.size() < capacity_) {
    tail_.push_back(r);
  } else {
    tail_[head_] = r;
    head_ = (head_ + 1) % capacity_;
    wrapped_ = true;
  }
  if (!path_.empty()) {
    std::ofstream out(path_, std::ios::app);
    if (out) out << to_json_line(r) << '\n';
  }
}

std::vector<LedgerRecord> Ledger::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!wrapped_) return tail_;
  std::vector<LedgerRecord> out;
  out.reserve(tail_.size());
  for (std::size_t i = 0; i < tail_.size(); ++i) {
    out.push_back(tail_[(head_ + i) % tail_.size()]);
  }
  return out;
}

std::size_t Ledger::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tail_.size();
}

Ledger& Ledger::global() {
  static Ledger* g = [] {
    const char* p = std::getenv("ECSIM_LEDGER");
    return new Ledger(p != nullptr ? std::string(p) : std::string());
  }();
  return *g;
}

std::vector<LedgerRecord> read_ledger_file(const std::string& path) {
  std::vector<LedgerRecord> out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    LedgerRecord r;
    if (parse_json_line(line, r)) out.push_back(std::move(r));
  }
  return out;
}

CacheSummary summarize_cache(const std::vector<LedgerRecord>& records) {
  CacheSummary s;
  for (const LedgerRecord& r : records) {
    if (r.served_from_cache < 0) {
      ++s.untagged;
    } else if (r.served_from_cache > 0) {
      ++s.served;
    } else {
      ++s.computed;
    }
  }
  return s;
}

LedgerDiff diff_latest_against_bench(const std::vector<LedgerRecord>& records,
                                     const std::string& bench_json,
                                     const std::string& scenario,
                                     double threshold_pct) {
  LedgerDiff d;
  d.scenario = scenario;
  d.threshold_pct = threshold_pct;
  if (!get_string(bench_json, "model_ir_hash_" + scenario, d.ir_hash)) {
    d.message = "no committed model_ir_hash_" + scenario +
                " in the benchmark report";
    return d;
  }
  // The per-scenario figures live in the entry whose "scenario" matches;
  // bound the lookup at the next entry so figures cannot bleed across
  // scenarios.
  std::size_t at = 0;
  bool has_events = false;
  bool has_mc = false;
  while (true) {
    std::size_t p = 0;
    if (!find_key(bench_json, "scenario", at, p)) break;
    std::string name;
    if (get_string(bench_json, "scenario", name, at) && name == scenario) {
      std::size_t next = bench_json.size();
      std::size_t q = 0;
      if (find_key(bench_json, "scenario", p, q)) next = q;
      const std::string entry = bench_json.substr(p, next - p);
      has_events = get_number(entry, "native_best_events_per_s",
                              d.committed_events_per_s);
      has_mc = get_number(entry, "mc_best_trials_per_s",
                          d.committed_trials_per_s);
      break;
    }
    at = p;
  }
  if (!has_events && !has_mc) {
    d.message = "no committed native_best_events_per_s or "
                "mc_best_trials_per_s for scenario '" +
                scenario + "'";
    return d;
  }
  const LedgerRecord* latest = nullptr;     // single-run events/s
  const LedgerRecord* latest_mc = nullptr;  // Monte Carlo trials/s
  for (const LedgerRecord& r : records) {
    if (r.ir_hash != d.ir_hash) continue;
    if (has_events && r.events_per_s > 0.0) latest = &r;
    if (has_mc && r.trials_per_s > 0.0) latest_mc = &r;
  }
  if (latest == nullptr && latest_mc == nullptr) {
    d.message = "no ledger record with ir_hash " + d.ir_hash +
                " to compare against";
    return d;
  }
  d.comparable = true;
  char buf[256];
  std::string msg = scenario + ":";
  if (latest != nullptr) {
    d.latest_events_per_s = latest->events_per_s;
    const double floor =
        d.committed_events_per_s * (1.0 - threshold_pct / 100.0);
    const bool reg = d.latest_events_per_s < floor;
    d.regression = d.regression || reg;
    std::snprintf(buf, sizeof buf,
                  " latest %.4g events/s vs committed %.4g (floor %.4g at "
                  "-%.3g%%) -> %s",
                  d.latest_events_per_s, d.committed_events_per_s, floor,
                  threshold_pct, reg ? "REGRESSION" : "ok");
    msg += buf;
  }
  if (latest_mc != nullptr) {
    d.latest_trials_per_s = latest_mc->trials_per_s;
    const double floor =
        d.committed_trials_per_s * (1.0 - threshold_pct / 100.0);
    const bool reg = d.latest_trials_per_s < floor;
    d.regression = d.regression || reg;
    std::snprintf(buf, sizeof buf,
                  "%s mc latest %.4g trials/s vs committed %.4g (floor %.4g "
                  "at -%.3g%%) -> %s",
                  latest != nullptr ? ";" : "", d.latest_trials_per_s,
                  d.committed_trials_per_s, floor, threshold_pct,
                  reg ? "REGRESSION" : "ok");
    msg += buf;
  }
  d.message = std::move(msg);
  return d;
}

}  // namespace ecsim::obs
