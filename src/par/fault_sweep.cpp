#include "par/fault_sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "par/cell_metrics.hpp"
#include "simd/pack.hpp"

namespace ecsim::sweep {

namespace {

/// Same divergence threshold as the design-space sweeps (sweep.cpp).
constexpr double kUnstableIae = 1e3;

FaultCell evaluate_cell(const translate::LoopSpec& loop,
                        const translate::DistributedSpec& base,
                        double loss_rate, double delay,
                        double delay_probability, const std::string& medium,
                        std::uint64_t fault_seed) {
  translate::DistributedSpec dist = base;
  // empty at (0,0): bit-identical to fault-free
  dist.god.fault_plan =
      fault_cell_plan(medium, loss_rate, delay, delay_probability, fault_seed);

  const translate::CosimOutcome out =
      translate::run_distributed_loop(loop, dist);
  FaultCell cell;
  cell.loss_rate = loss_rate;
  cell.delay = delay;
  cell.fault_seed = fault_seed;
  cell.iae = out.iae;
  cell.ise = out.ise;
  cell.itae = out.itae;
  cell.cost = out.cost;
  cell.overshoot_pct = out.step.overshoot_pct;
  cell.messages_lost = out.messages_lost;
  cell.messages_deferred = out.messages_deferred;
  cell.stable = out.iae < kUnstableIae;
  return cell;
}

}  // namespace

fault::FaultPlan fault_cell_plan(const std::string& medium, double loss_rate,
                                 double delay, double delay_probability,
                                 std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.seed = seed;
  if (loss_rate > 0.0) plan.message_loss(medium, loss_rate);
  if (delay > 0.0) plan.message_delay(medium, delay_probability, delay);
  return plan;
}

std::vector<FaultCell> run_fault_sweep(const FaultGrid& grid,
                                       const par::BatchOptions& batch) {
  if (grid.loss_rates.empty() || grid.delays.empty()) {
    throw std::invalid_argument("run_fault_sweep: empty grid axis");
  }
  const std::size_t cols = grid.delays.size();
  const std::size_t n = grid.loss_rates.size() * cols;
  par::BatchRunner runner(batch);
  translate::LoopSpec loop = grid.loop;
  loop.threads = static_cast<unsigned>(runner.threads());  // ledger annotation
  CellMetrics cm(batch.metrics);
  return runner.map<FaultCell>(n, [&](par::TaskContext& ctx) {
    return cm.cell([&] {
      const double loss = grid.loss_rates[ctx.index / cols];
      const double delay = grid.delays[ctx.index % cols];
      return evaluate_cell(loop, grid.dist, loss, delay,
                           grid.delay_probability, grid.medium,
                           grid.fault_seed);
    });
  });
}

FaultMonteCarloResult run_fault_monte_carlo(const FaultMonteCarloSpec& spec,
                                            const par::BatchOptions& batch) {
  if (spec.trials == 0) {
    throw std::invalid_argument("run_fault_monte_carlo: zero trials");
  }
  par::BatchRunner runner(batch);
  translate::LoopSpec loop = spec.loop;
  loop.threads = static_cast<unsigned>(runner.threads());  // ledger annotation
  CellMetrics cm(batch.metrics);
  FaultMonteCarloResult result;
  result.trials = spec.trials;
  result.loss_rate = spec.loss_rate;
  // Shard `width` trials per task; each trial's fault seed is a pure
  // function of its global index, so the cell list below is bit-identical
  // for any width/thread combination.
  const std::size_t width =
      spec.batch_width > 0 ? spec.batch_width : simd::preferred_batch_width();
  const std::size_t tasks = (spec.trials + width - 1) / width;
  result.batch_width = width;
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<std::vector<FaultCell>> shards =
      runner.map<std::vector<FaultCell>>(tasks, [&](par::TaskContext& ctx) {
        const std::size_t begin = ctx.index * width;
        const std::size_t end = std::min(begin + width, spec.trials);
        std::vector<FaultCell> outs;
        outs.reserve(end - begin);
        for (std::size_t trial = begin; trial < end; ++trial) {
          outs.push_back(cm.cell([&] {
            return evaluate_cell(
                loop, spec.dist, spec.loss_rate, 0.0, 1.0, spec.medium,
                spec.base_seed + static_cast<std::uint64_t>(trial));
          }));
        }
        return outs;
      });
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::vector<FaultCell> cells;
  cells.reserve(spec.trials);
  for (const std::vector<FaultCell>& shard : shards) {
    for (const FaultCell& c : shard) cells.push_back(c);
  }
  const std::size_t batch_width = result.batch_width;
  result = summarize_fault_trials(std::move(cells), spec.loss_rate);
  result.batch_width = batch_width;
  result.wall_s = wall_s;
  result.trials_per_s =
      wall_s > 0.0 ? static_cast<double>(spec.trials) / wall_s : 0.0;
  return result;
}

FaultMonteCarloResult summarize_fault_trials(std::vector<FaultCell> cells,
                                             double loss_rate) {
  FaultMonteCarloResult result;
  result.trials = cells.size();
  result.loss_rate = loss_rate;
  std::vector<double> cost, iae, lost;
  for (const FaultCell& c : cells) {
    lost.push_back(static_cast<double>(c.messages_lost));
    if (!c.stable) {
      ++result.unstable_trials;
      continue;
    }
    cost.push_back(c.cost);
    iae.push_back(c.iae);
  }
  result.cost = math::summarize(cost);
  result.iae = math::summarize(iae);
  result.messages_lost = math::summarize(lost);
  result.cells = std::move(cells);
  return result;
}

std::string to_csv(const std::vector<FaultCell>& cells) {
  std::string out =
      "loss_rate,delay,fault_seed,iae,ise,itae,cost,overshoot_pct,"
      "messages_lost,messages_deferred,stable\n";
  char buf[320];
  for (const FaultCell& c : cells) {
    std::snprintf(buf, sizeof buf,
                  "%.17g,%.17g,%llu,%.17g,%.17g,%.17g,%.17g,%.17g,%zu,%zu,"
                  "%d\n",
                  c.loss_rate, c.delay,
                  static_cast<unsigned long long>(c.fault_seed), c.iae, c.ise,
                  c.itae, c.cost, c.overshoot_pct, c.messages_lost,
                  c.messages_deferred, c.stable ? 1 : 0);
    out += buf;
  }
  return out;
}

std::string to_string(const FaultMonteCarloResult& r) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "dropout study: %zu trials at loss rate %.3g (%zu unstable)\n",
                r.trials, r.loss_rate, r.unstable_trials);
  out += buf;
  std::snprintf(buf, sizeof buf, "  %-14s %10s %10s %10s %10s\n", "metric",
                "mean", "stddev", "min", "max");
  out += buf;
  const auto row = [&](const char* name, const math::Summary& s) {
    std::snprintf(buf, sizeof buf, "  %-14s %10.4g %10.4g %10.4g %10.4g\n",
                  name, s.mean, s.stddev, s.min, s.max);
    out += buf;
  };
  row("cost", r.cost);
  row("iae", r.iae);
  row("messages_lost", r.messages_lost);
  return out;
}

}  // namespace ecsim::sweep
