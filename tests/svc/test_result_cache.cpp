#include "svc/result_cache.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ecsim::svc {
namespace {

std::size_t entry_bytes(const std::string& key, const std::string& payload) {
  return key.size() + payload.size();
}

TEST(ResultCacheTest, MissThenHitWithCounters) {
  ResultCache cache(1 << 20);
  std::string out;
  EXPECT_FALSE(cache.get("k", out));
  cache.put("k", "payload");
  ASSERT_TRUE(cache.get("k", out));
  EXPECT_EQ(out, "payload");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), entry_bytes("k", "payload"));
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedFirst) {
  // Three 40-byte entries fit; the fourth forces exactly one eviction, and
  // it must take the least recently USED entry (a GET refreshes recency),
  // not the least recently inserted.
  const std::string pad(38, 'x');
  ResultCache cache(3 * 40);
  cache.put("a.", pad);
  cache.put("b.", pad);
  cache.put("c.", pad);
  std::string out;
  ASSERT_TRUE(cache.get("a.", out));  // refresh a: LRU order is now b, c, a
  cache.put("d.", pad);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.get("b.", out)) << "b was LRU and must be the victim";
  EXPECT_TRUE(cache.get("a.", out));
  EXPECT_TRUE(cache.get("c.", out));
  EXPECT_TRUE(cache.get("d.", out));
}

TEST(ResultCacheTest, EvictsAsManyAsNeededToFit) {
  const std::string pad(18, 'y');
  ResultCache cache(3 * 20);
  cache.put("a.", pad);
  cache.put("b.", pad);
  cache.put("c.", pad);
  cache.put("E.", std::string(38, 'z'));  // 40 bytes: needs two victims
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_EQ(cache.size(), 2u);
  std::string out;
  EXPECT_FALSE(cache.get("a.", out));
  EXPECT_FALSE(cache.get("b.", out));
  EXPECT_TRUE(cache.get("c.", out));
  EXPECT_TRUE(cache.get("E.", out));
  EXPECT_LE(cache.bytes(), cache.capacity_bytes());
}

TEST(ResultCacheTest, OverwriteReplacesPayloadWithoutGrowth) {
  ResultCache cache(1 << 20);
  cache.put("k", "old");
  cache.put("k", "newer-payload");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), entry_bytes("k", "newer-payload"));
  std::string out;
  ASSERT_TRUE(cache.get("k", out));
  EXPECT_EQ(out, "newer-payload");
}

TEST(ResultCacheTest, EnlargedOverwriteEvictsToStayUnderBudget) {
  // Overwriting with a larger payload must evict from the LRU tail, not
  // leave the cache sitting over budget until the next fresh insert.
  const std::string pad(38, 'x');
  ResultCache cache(3 * 40);
  cache.put("a.", pad);
  cache.put("b.", pad);
  cache.put("c.", pad);
  cache.put("c.", pad + std::string(40, 'y'));  // entry grows by 40 bytes
  EXPECT_LE(cache.bytes(), cache.capacity_bytes());
  EXPECT_EQ(cache.evictions(), 1u);
  std::string out;
  EXPECT_FALSE(cache.get("a.", out)) << "LRU tail must be the victim";
  EXPECT_TRUE(cache.get("b.", out));
  ASSERT_TRUE(cache.get("c.", out));
  EXPECT_EQ(out.size(), 78u);
}

TEST(ResultCacheTest, OverwriteLargerThanCapacityDropsTheEntry) {
  ResultCache cache(64);
  cache.put("k", "small");
  cache.put("k", std::string(100, 'z'));  // can never fit, even alone
  std::string out;
  EXPECT_FALSE(cache.get("k", out));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ResultCacheTest, OversizedEntryIsNotRetainedAndEvictsNothing) {
  ResultCache cache(64);
  cache.put("small", "fits");
  cache.put("huge", std::string(200, 'h'));
  std::string out;
  EXPECT_FALSE(cache.get("huge", out));
  EXPECT_TRUE(cache.get("small", out)) << "oversized put must not purge";
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheTest, MirrorsCountersIntoMetricsRegistry) {
  obs::MetricsRegistry metrics;
  ResultCache cache(2 * 24, &metrics);
  std::string out;
  cache.get("miss", out);
  cache.put("a.", std::string(22, 'p'));
  cache.get("a.", out);
  cache.put("b.", std::string(22, 'p'));
  cache.put("c.", std::string(22, 'p'));  // evicts a
  EXPECT_EQ(metrics.counter("svc.cache.hits").value(), cache.hits());
  EXPECT_EQ(metrics.counter("svc.cache.misses").value(), cache.misses());
  EXPECT_EQ(metrics.counter("svc.cache.evictions").value(), cache.evictions());
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(metrics.gauge("svc.cache.bytes").value(),
            static_cast<double>(cache.bytes()));
}

}  // namespace
}  // namespace ecsim::svc
