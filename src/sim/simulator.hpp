// Simulator: executes a Model. Hybrid semantics following Scicos:
//  - event queue orders discrete activations (deterministic FIFO among ties);
//  - between event instants the packed continuous state is integrated, with
//    the combinational (direct-feedthrough) network re-evaluated at every
//    integration stage in topological order;
//  - at an event instant, pending events are dispatched one at a time and the
//    combinational network is refreshed after each, so zero-delay event
//    chains (the paper's graph of delays) see causally consistent values.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mathlib/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/integrator.hpp"
#include "sim/model.hpp"
#include "sim/trace.hpp"

namespace ecsim::sim {

struct SimOptions {
  Time end_time = 1.0;
  IntegratorOptions integrator;
  std::uint64_t seed = 1;
  /// Hard cap on dispatched events; exceeding it aborts the run with an
  /// exception (guards against runaway zero-delay loops).
  std::size_t max_events = 20'000'000;
};

class Simulator {
 public:
  /// Compiles the model: resolves wiring, orders the feedthrough network
  /// (throws on algebraic loops), packs continuous states. The model must
  /// outlive the simulator and must not be structurally modified afterwards.
  explicit Simulator(Model& model, SimOptions opts = {});

  /// Run from t=0 to opts.end_time. May be called repeatedly; each call
  /// restarts from a clean initial state (blocks re-initialize).
  Trace& run();

  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }
  Time current_time() const { return time_; }
  std::size_t events_dispatched() const { return events_dispatched_; }

  /// Final (or current) value of a data output lane — test convenience.
  double output_value(const Block& b, std::size_t port,
                      std::size_t lane = 0) const;

  const Model& model() const { return model_; }

 private:
  friend class Context;

  struct InputSource {
    std::size_t block = kUnconnected;  // producer block (kUnconnected: none)
    std::size_t port = 0;
    std::size_t width = 0;
  };

  void compile();
  void refresh_outputs(Time t);
  void dispatch(const ScheduledEvent& e);
  void evaluate_derivatives(Time t, const std::vector<double>& x,
                            std::vector<double>& dx);

  // Context backends.
  std::span<const double> ctx_input(std::size_t block, std::size_t port) const;
  std::span<double> ctx_output(std::size_t block, std::size_t port);
  std::span<const double> ctx_state(std::size_t block) const;
  std::span<double> ctx_state_mut(std::size_t block);
  void ctx_emit(std::size_t block, std::size_t event_out, Time at);
  void ctx_schedule_self(std::size_t block, std::size_t event_in, Time at);

  Model& model_;
  SimOptions opts_;
  math::Rng rng_;
  Trace trace_;
  EventQueue queue_;

  // Compiled structure.
  std::vector<std::vector<InputSource>> input_sources_;  // [block][input]
  std::vector<std::vector<std::vector<double>>> outputs_;  // [block][port][lane]
  std::vector<std::size_t> eval_order_;                   // feedthrough topo
  std::vector<std::size_t> state_offset_;                 // [block]
  std::size_t total_state_ = 0;
  // Event fan-out: [block][event_out] -> list of (block, event_in).
  std::vector<std::vector<std::vector<PortRef>>> event_sinks_;

  // Run state.
  Time time_ = 0.0;
  std::vector<double> x_;               // committed continuous state
  const double* active_x_ = nullptr;    // state viewed by blocks right now
  bool in_integration_ = false;
  std::size_t events_dispatched_ = 0;
  std::vector<double> zeros_;           // backing for unconnected inputs
};

}  // namespace ecsim::sim
