#!/usr/bin/env bash
# CI codegen job (DESIGN.md §3.6): the native code-generation backend must
#   1. pass the IR determinism suite (round-trip, hash stability, committed
#      golden) and the interp-vs-native bit-identity property suite;
#   2. byte-reproduce the committed golden IR through the CLI;
#   3. hold the EXP-P6 perf guard (native >= 1.5x interpreter events/s on
#      chains_200, traces identical), run via `ctest -C bench`;
#   4. survive with the generated .so compiled and dlopen()ed under
#      ASan+UBSan (the module inherits the build's sanitizer flags through
#      ECSIM_NATIVE_FLAGS — see src/CMakeLists.txt).
#
# Usage: scripts/run_codegen_guard.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-codegen"
asan_dir="${repo_root}/build-codegen-asan"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "${JOBS}" \
  --target test_ir test_backend bench_p6_codegen ecsim_flow

# 1. IR determinism + backend bit-identity property suites.
ctest --test-dir "${build_dir}" --output-on-failure \
  -R "IrRoundtrip|IrHash|IrGolden|NativeBackend|CosimBackend"

# 2. The CLI reproduces the committed golden byte for byte.
"${build_dir}/tools/ecsim_flow" ir dump --example=servo |
  diff - "${repo_root}/tests/ir/golden_servo.ir"
echo "golden IR: CLI output is byte-identical"

# 3. EXP-P6 perf guard (writes BENCH_p6.json into the build dir).
ctest --test-dir "${build_dir}" -C bench -R bench_p6_codegen_guard \
  --output-on-failure

# 4. Generated modules under ASan+UBSan.
cmake -S "${repo_root}" -B "${asan_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DECSIM_SANITIZE=ON
cmake --build "${asan_dir}" -j "${JOBS}" --target test_ir test_backend
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_stack_use_after_return=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
ctest --test-dir "${asan_dir}" --output-on-failure \
  -R "IrRoundtrip|IrHash|IrGolden|NativeBackend|CosimBackend"

echo "run_codegen_guard: OK"
