// The "adequation": SynDEx's greedy list-scheduling heuristic matching the
// algorithm graph onto the architecture graph. At each step it evaluates,
// for every ready operation, the earliest start time on every compatible
// processor (including the store-and-forward communications that placement
// would require), and schedules the operation with the highest schedule
// pressure — the one whose best placement most constrains the remaining
// critical path — on its best processor. Communications are committed onto
// the media timelines as they are decided.
#pragma once

#include "aaa/routing.hpp"
#include "aaa/schedule.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "par/task_pool.hpp"

namespace ecsim::aaa {

/// Which ready operation to schedule next.
enum class SelectionRule {
  /// SynDEx's schedule pressure: maximize EST + critical-path tail — commit
  /// the operation whose best placement most constrains the end-to-end
  /// latency (default).
  kSchedulePressure,
  /// Greedy earliest-finish-time (ablation): ignore the downstream critical
  /// path, always commit the op that can finish soonest.
  kEarliestFinish,
};

struct AdequationOptions {
  /// When false (ablation EXP-A1), the *selection metric* pretends
  /// communications are free; the committed schedule still pays them.
  bool comm_aware = true;
  /// Per-data-unit weight added to edges when computing urgency levels.
  double tail_comm_weight = 0.0;
  SelectionRule rule = SelectionRule::kSchedulePressure;
  /// Observability (borrowed, may be null): a wall-clock "aaa.adequate"
  /// span, and aaa.candidates_evaluated / aaa.ops_scheduled /
  /// aaa.comms_committed counters measuring how much work the heuristic did.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Borrowed worker pool for the candidate-evaluation step (may be null =
  /// serial). Per ready operation the best (processor, slot) placement is
  /// scored against the *committed* timelines only, so the evaluations are
  /// independent; the selection reduction stays serial in ascending
  /// operation order, preserving the exact tie-break. The schedule is
  /// bit-identical with and without a pool.
  par::TaskPool* pool = nullptr;
  /// Below this many simultaneously-ready operations the evaluation stays
  /// serial even with a pool — fan-out overhead beats the win on small
  /// frontiers.
  std::size_t parallel_min_ready = 16;
};

/// Compute the static schedule. Throws std::runtime_error if some operation
/// has no feasible processor (incompatible type, unsatisfiable placement
/// constraint, or disconnected architecture).
Schedule adequate(const AlgorithmGraph& alg, const ArchitectureGraph& arch,
                  const AdequationOptions& opts = {});

}  // namespace ecsim::aaa
