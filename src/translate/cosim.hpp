// High-level co-simulation driver: assembles the standard sampled-data loop
// (Fig. 2: plant + sampler S/H + discrete controller + actuator S/H) and
// runs it under one of four timing regimes:
//   - ideal stroboscopic clocking (the control engineer's assumption);
//   - fixed sampling/actuation latencies (Cervin-style sensitivity studies);
//   - randomly jittered actuation;
//   - full implementation-in-the-loop: an AAA schedule on a distributed
//     architecture translated into a graph of delays (the paper's flow).
// Returns the control-performance metrics and the eq.(1)/(2) latency series.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "aaa/adequation.hpp"
#include "backend/kind.hpp"
#include "control/metrics.hpp"
#include "control/state_space.hpp"
#include "ir/ir.hpp"
#include "latency/latency.hpp"
#include "translate/graph_of_delays.hpp"

namespace ecsim::translate {

/// What the discrete controller consumes each period.
enum class ControllerInput {
  kError,      // scalar e = ref - y_sampled (classic error-driven PID/LTI)
  kStateRef,   // [all sampled plant outputs; ref] (state feedback + ff)
  kOutputRef,  // [sampled y; ref] (output feedback, e.g. observer-based)
};

struct LoopSpec {
  control::StateSpace plant;       // continuous plant
  control::StateSpace controller;  // discrete; input shape set by `input`
  double ts = 0.01;                // sampling period
  double t_end = 5.0;              // simulated horizon
  double ref = 1.0;                // step reference (applied at t = 0)
  std::size_t output_index = 0;    // which plant output closes the loop
  ControllerInput input = ControllerInput::kError;
  double record_dt = 1e-3;         // probe sampling period
  double qy = 1.0, ru = 0.0;       // quadratic-cost weights
  std::uint64_t seed = 1;
  double integrator_max_step = 2e-4;
  /// > 0: additive Gaussian measurement noise (stddev), redrawn at every
  /// sampling instant and corrupting ALL sampled lanes equally scaled.
  double measurement_noise_std = 0.0;
  /// != 0: square-wave load disturbance of this amplitude added to the
  /// plant input (period `disturbance_period`, 50% duty).
  double disturbance_amplitude = 0.0;
  double disturbance_period = 1.0;
  /// Execution backend (DESIGN.md §3.6). kNative runs the loop through the
  /// code generator when possible and falls back to the interpreter with a
  /// recorded reason (CosimOutcome::backend_fallback) when not — e.g.
  /// condition bindings (opaque closures), or distributed runs with fault
  /// gates, whose message accounting reads interpreter block counters.
  backend::Kind backend = backend::Kind::kInterp;
  /// Annotation only (no behavioural effect): worker-thread count of the
  /// surrounding sweep/batch, stamped into the run-ledger record so a
  /// regression diff can tell a serial rerun from a contended parallel one.
  unsigned threads = 1;
};

struct DistributedSpec {
  aaa::ArchitectureGraph arch{aaa::ArchitectureGraph::bus_architecture(2, 1e5)};
  aaa::AdequationOptions adequation;
  double wcet_sense = 2e-4;
  double wcet_ctrl = 1e-3;
  double wcet_act = 2e-4;
  double size_y = 8.0;   // data units moved sensor -> controller
  double size_u = 8.0;   // controller -> actuator
  std::string bind_sense, bind_ctrl, bind_act;  // "" = unconstrained
  /// Non-empty: the controller op is conditional with these branch WCETs
  /// (paper §3.2.2 / Fig. 5).
  std::vector<double> ctrl_branch_wcets;
  /// With ctrl_branch_wcets of size 2: choose branch 1 (the slow one) when
  /// |ref - y| exceeds this threshold — data-driven conditioning through the
  /// paper's Condition Mapping instead of random branches.
  std::optional<double> ctrl_condition_threshold;
  GodOptions god;  // mode, bcet_fraction, random_branches
};

struct CosimOutcome {
  control::StepInfo step;
  double iae = 0.0;
  double ise = 0.0;
  double itae = 0.0;
  double cost = 0.0;  // time-averaged quadratic cost
  latency::LatencySeries sense_latency;
  latency::LatencySeries act_latency;
  double makespan = 0.0;       // distributed runs only
  std::string schedule_text;   // distributed runs only
  /// Fault accounting (distributed runs with a GodOptions::fault_plan):
  /// comm events dropped / deferred by the graph-of-delays fault gates.
  std::size_t messages_lost = 0;
  std::size_t messages_deferred = 0;
  control::Series y;           // probed output trajectory
  control::Series u;           // probed control trajectory
  /// Backend that actually executed the loop, and — when it differs from
  /// the requested one — why the interpreter ran instead.
  backend::Kind backend_used = backend::Kind::kInterp;
  std::string backend_fallback;
};

/// Fig. 2: ideal stroboscopic loop — sampling, control and actuation all at
/// the period boundary.
CosimOutcome run_ideal_loop(const LoopSpec& spec);

/// Constant latencies: sampling at k*ts + ls, actuation at k*ts + la
/// (0 <= ls <= la), plus uniform actuation jitter of peak-to-peak
/// `jitter_p2p` centred on la. Used for timing-sensitivity sweeps (EXP-C1).
CosimOutcome run_latency_loop(const LoopSpec& spec, double ls, double la,
                              double jitter_p2p = 0.0);

/// Fig. 3: full flow — extract the loop's algorithm graph, run the
/// adequation on `dist.arch`, build the graph of delays, co-simulate.
CosimOutcome run_distributed_loop(const LoopSpec& spec,
                                  const DistributedSpec& dist);

/// The three-operation algorithm graph (sense -> ctrl -> act) used by
/// run_distributed_loop, exposed for benches that sweep architectures.
aaa::AlgorithmGraph make_loop_algorithm(const LoopSpec& spec,
                                        const DistributedSpec& dist);

/// Canonical Model IR of the assembled ideal-clocked loop (DESIGN.md §3.6):
/// the fingerprint benches stamp into BENCH_*.json so a report names the
/// exact model its numbers were measured on.
ir::Model loop_ir(const LoopSpec& spec);

}  // namespace ecsim::translate
