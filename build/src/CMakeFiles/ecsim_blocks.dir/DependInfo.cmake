
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blocks/continuous.cpp" "src/CMakeFiles/ecsim_blocks.dir/blocks/continuous.cpp.o" "gcc" "src/CMakeFiles/ecsim_blocks.dir/blocks/continuous.cpp.o.d"
  "/root/repo/src/blocks/discrete.cpp" "src/CMakeFiles/ecsim_blocks.dir/blocks/discrete.cpp.o" "gcc" "src/CMakeFiles/ecsim_blocks.dir/blocks/discrete.cpp.o.d"
  "/root/repo/src/blocks/event_blocks.cpp" "src/CMakeFiles/ecsim_blocks.dir/blocks/event_blocks.cpp.o" "gcc" "src/CMakeFiles/ecsim_blocks.dir/blocks/event_blocks.cpp.o.d"
  "/root/repo/src/blocks/math_blocks.cpp" "src/CMakeFiles/ecsim_blocks.dir/blocks/math_blocks.cpp.o" "gcc" "src/CMakeFiles/ecsim_blocks.dir/blocks/math_blocks.cpp.o.d"
  "/root/repo/src/blocks/probe.cpp" "src/CMakeFiles/ecsim_blocks.dir/blocks/probe.cpp.o" "gcc" "src/CMakeFiles/ecsim_blocks.dir/blocks/probe.cpp.o.d"
  "/root/repo/src/blocks/sample_hold.cpp" "src/CMakeFiles/ecsim_blocks.dir/blocks/sample_hold.cpp.o" "gcc" "src/CMakeFiles/ecsim_blocks.dir/blocks/sample_hold.cpp.o.d"
  "/root/repo/src/blocks/sources.cpp" "src/CMakeFiles/ecsim_blocks.dir/blocks/sources.cpp.o" "gcc" "src/CMakeFiles/ecsim_blocks.dir/blocks/sources.cpp.o.d"
  "/root/repo/src/blocks/synchronization.cpp" "src/CMakeFiles/ecsim_blocks.dir/blocks/synchronization.cpp.o" "gcc" "src/CMakeFiles/ecsim_blocks.dir/blocks/synchronization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ecsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_mathlib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
