file(REMOVE_RECURSE
  "CMakeFiles/bench_s1_sync_block.dir/bench_s1_sync_block.cpp.o"
  "CMakeFiles/bench_s1_sync_block.dir/bench_s1_sync_block.cpp.o.d"
  "bench_s1_sync_block"
  "bench_s1_sync_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s1_sync_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
