// Property tests for the arbitrated network media (DESIGN/docs/networks.md):
// under CAN priority arbitration the executive VM's bus timeline must be
// work-conserving and priority-faithful for ANY message set and ANY actual
// execution times; under owner-slot TDMA every transfer must start exactly
// on its owner's instant. Randomized over message counts, sizes, priorities
// and execution-time draws.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "aaa/adequation.hpp"
#include "aaa/codegen.hpp"
#include "exec/conformance.hpp"
#include "exec/executive_vm.hpp"

namespace ecsim {
namespace {

using aaa::AlgorithmGraph;
using aaa::ArchitectureGraph;
using aaa::OpId;
using aaa::Schedule;

/// N independent sender ops on P0, each streaming one prioritized frame to
/// its receiver on P1 across a single CAN bus.
struct CanFixture {
  AlgorithmGraph alg{"can_prop", 0.05};
  ArchitectureGraph arch{ArchitectureGraph::bus_architecture(2, 1e5, 0.0)};
  std::vector<OpId> senders, receivers;

  CanFixture(std::size_t n, std::uint64_t seed) {
    arch.set_can(0, 0.0);  // no background blocking: pure modeled contention
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> wcet(1e-4, 2e-3);
    std::uniform_real_distribution<double> size(4.0, 40.0);
    std::vector<std::size_t> prio(n);
    for (std::size_t i = 0; i < n; ++i) prio[i] = i;
    std::shuffle(prio.begin(), prio.end(), rng);
    for (std::size_t i = 0; i < n; ++i) {
      senders.push_back(alg.add_simple("s" + std::to_string(i),
                                       aaa::OpKind::kSensor, wcet(rng),
                                       "P0"));
      receivers.push_back(alg.add_simple("r" + std::to_string(i),
                                         aaa::OpKind::kActuator, 1e-4, "P1"));
      alg.add_dependency(senders[i], receivers[i], size(rng), prio[i]);
    }
  }
};

/// Runs the VM with below-WCET execution times and checks, frame by frame
/// along the bus timeline:
///   work conservation — every transfer starts at max(bus free, frame
///   ready); the bus never idles while a known frame is pending;
///   priority faithfulness — within an iteration, if a frame was already
///   ready when a later-transmitted frame started, the transmitted frame
///   carried the smaller CAN identifier (higher priority).
TEST(CanArbitrationProperty, WorkConservingAndPriorityFaithful) {
  constexpr double kEps = 1e-9;
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    CanFixture f(6, seed);
    const Schedule sched = adequate(f.alg, f.arch);
    sched.validate(f.alg, f.arch);
    const aaa::GeneratedCode code = generate_executives(f.alg, f.arch, sched);
    exec::VmOptions opts;
    opts.iterations = 8;
    opts.period = f.alg.period();
    opts.seed = seed * 7 + 1;
    opts.exec_time = exec::uniform_fraction_exec_time(0.3);
    const exec::VmResult vm =
        exec::run_executives(f.alg, f.arch, sched, code, opts);
    ASSERT_FALSE(vm.deadlock) << vm.deadlock_info;
    ASSERT_EQ(vm.comms.size(), 6u * 8u);

    // Frame ready instant = its sender's completion in that iteration (the
    // kSend executes at the op's end, advancing no time).
    const auto ready_of = [&](const exec::CommInstance& ci) {
      const OpId sender =
          f.alg.dependencies()[sched.comms()[ci.comm].dep_index].from;
      for (const exec::OpInstance& oi : vm.ops) {
        if (oi.op == sender && oi.iteration == ci.iteration) return oi.end;
      }
      ADD_FAILURE() << "no sender instance for comm " << ci.comm;
      return 0.0;
    };
    const auto prio_of = [&](const exec::CommInstance& ci) {
      return f.alg.dep_priority(sched.comms()[ci.comm].dep_index);
    };

    // vm.comms is in bus commit order for the single medium.
    double bus_free = 0.0;
    for (const exec::CommInstance& ci : vm.comms) {
      EXPECT_NEAR(ci.start, std::max(bus_free, ready_of(ci)), kEps)
          << "bus idled (or time-travelled) before comm " << ci.comm
          << " iter " << ci.iteration << " (seed " << seed << ")";
      EXPECT_GE(ci.start, bus_free - kEps) << "overlapping transfers";
      bus_free = ci.end;
    }
    for (std::size_t i = 0; i < vm.comms.size(); ++i) {
      for (std::size_t j = i + 1; j < vm.comms.size(); ++j) {
        const exec::CommInstance& won = vm.comms[i];
        const exec::CommInstance& lost = vm.comms[j];
        if (won.iteration != lost.iteration) continue;
        if (ready_of(lost) < won.start - kEps) {
          EXPECT_LT(prio_of(won), prio_of(lost))
              << "frame " << lost.comm << " was ready before frame "
              << won.comm << " started yet had higher priority (seed "
              << seed << ")";
        }
      }
    }
  }
}

/// The same message set on an immediate bus vs a CAN bus with zero
/// background blocking: CAN's dynamic arbitration is work conserving, so
/// its busy period can never end LATER than the static-order replay of the
/// immediate bus (which may leave gaps a pending frame did not fit into),
/// even though arbitration may reorder the frames in between.
TEST(CanArbitrationProperty, BusyPeriodNoWorseThanImmediateBusUnderWcet) {
  for (const std::uint64_t seed : {3u, 9u}) {
    CanFixture f(5, seed);
    const auto last_end = [](const AlgorithmGraph& alg,
                             const ArchitectureGraph& arch) {
      const Schedule sched = adequate(alg, arch);
      const aaa::GeneratedCode code = generate_executives(alg, arch, sched);
      exec::VmOptions opts;
      opts.iterations = 1;
      const exec::VmResult vm =
          exec::run_executives(alg, arch, sched, code, opts);
      EXPECT_FALSE(vm.deadlock);
      double end = 0.0;
      for (const exec::CommInstance& ci : vm.comms) {
        end = std::max(end, ci.end);
      }
      return end;
    };
    ArchitectureGraph immediate =
        ArchitectureGraph::bus_architecture(2, 1e5, 0.0);
    EXPECT_LE(last_end(f.alg, f.arch), last_end(f.alg, immediate) + 1e-9)
        << "CAN arbitration must not add idle time (seed " << seed << ")";
  }
}

/// Owner-slot TDMA chain: sense on P0 -> ctrl on P1 -> act on P0, frame
/// priorities 0 and 1 on a 2-slot round.
struct TdmaFixture {
  AlgorithmGraph alg{"tdma_prop", 0.02};  // period = 10 rounds of 2 * 1e-3
  ArchitectureGraph arch{ArchitectureGraph::bus_architecture(2, 1e5, 0.0)};
  OpId s, c, a;

  TdmaFixture() {
    arch.set_tdma(0, 1e-3, 2);
    s = alg.add_simple("sense", aaa::OpKind::kSensor, 1e-3, "P0");
    c = alg.add_simple("ctrl", aaa::OpKind::kCompute, 5e-4, "P1");
    a = alg.add_simple("act", aaa::OpKind::kActuator, 1e-4, "P0");
    alg.add_dependency(s, c, 8.0, /*priority=*/0);
    alg.add_dependency(c, a, 8.0, /*priority=*/1);
  }
};

TEST(TdmaOwnerSlotProperty, EveryTransferStartsOnItsOwnerInstant) {
  TdmaFixture f;
  const Schedule sched = adequate(f.alg, f.arch);
  sched.validate(f.alg, f.arch);
  const aaa::GeneratedCode code = generate_executives(f.alg, f.arch, sched);
  const double round = 2 * 1e-3;
  for (const std::uint64_t seed : {5u, 17u, 29u}) {
    exec::VmOptions opts;
    opts.iterations = 40;
    opts.period = f.alg.period();
    opts.seed = seed;
    opts.exec_time = exec::uniform_fraction_exec_time(0.25);
    const exec::VmResult vm =
        exec::run_executives(f.alg, f.arch, sched, code, opts);
    ASSERT_FALSE(vm.deadlock) << vm.deadlock_info;
    for (const exec::CommInstance& ci : vm.comms) {
      const std::size_t owner =
          f.alg.dep_priority(sched.comms()[ci.comm].dep_index) % 2;
      const double local =
          std::fmod(ci.start - static_cast<double>(owner) * 1e-3, round);
      EXPECT_TRUE(local < 1e-9 || local > round - 1e-9)
          << "transfer of owner " << owner << " started off its instant at "
          << ci.start << " (seed " << seed << ")";
    }
  }
}

/// Release exactly AT the owner instant boundary: the sense op's WCET is
/// exactly one round, so under exact-WCET execution its frame (owner 0,
/// instants k * 2e-3) becomes ready precisely at 2e-3 and must start there
/// — a boundary hit, not a full extra round of waiting.
TEST(TdmaOwnerSlotProperty, ReleaseExactlyAtOwnerInstantStartsImmediately) {
  TdmaFixture f;
  f.alg.op(f.s).wcet = {{"cpu", 2e-3}};  // one full round
  const Schedule sched = adequate(f.alg, f.arch);
  const aaa::GeneratedCode code = generate_executives(f.alg, f.arch, sched);
  exec::VmOptions opts;
  opts.iterations = 3;
  opts.period = f.alg.period();
  const exec::VmResult vm =
      exec::run_executives(f.alg, f.arch, sched, code, opts);
  ASSERT_FALSE(vm.deadlock);
  for (const exec::CommInstance& ci : vm.comms) {
    if (sched.comms()[ci.comm].dep_index != 0) continue;
    const double expect =
        2e-3 + f.alg.period() * static_cast<double>(ci.iteration);
    EXPECT_NEAR(ci.start, expect, 1e-12)
        << "boundary release must pass, not wait a round";
  }
  // And the static schedule agrees with the VM under WCET.
  const exec::ConformanceReport rep =
      exec::check_wcet_conformance(f.alg, f.arch, sched, vm, opts.period);
  EXPECT_TRUE(rep.ok) << rep.violations;
}

}  // namespace
}  // namespace ecsim
