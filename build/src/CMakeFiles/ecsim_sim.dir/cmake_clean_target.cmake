file(REMOVE_RECURSE
  "libecsim_sim.a"
)
