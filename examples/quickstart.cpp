// Quickstart: the paper's methodology in ~60 lines.
//
// 1. A control engineer designs an LQR position controller for the DC servo
//    G(s) = 1000/(s(s+1)) assuming the stroboscopic model (Fig. 2).
// 2. The implementation is a 2-processor architecture with a shared bus; the
//    AAA adequation schedules sense/ctrl/act and the schedule's temporal
//    behaviour is translated into a graph of delays (Fig. 3).
// 3. Both simulations run; the co-simulation reveals the latency-induced
//    performance degradation before any code touches hardware.
#include <cstdio>

#include "control/c2d.hpp"
#include "control/delay_compensation.hpp"
#include "control/lqr.hpp"
#include "latency/latency.hpp"
#include "plants/dc_servo.hpp"
#include "translate/cosim.hpp"

using namespace ecsim;

int main() {
  // -- Control design (Scicos side) ----------------------------------------
  const double ts = 0.01;
  control::StateSpace servo = plants::dc_servo();  // 1000/(s(s+1))
  servo.c = math::Matrix::identity(2);             // full state measurable
  servo.d = math::Matrix::zeros(2, 1);
  const control::StateSpace servo_d = control::c2d(servo, ts);
  const control::LqrResult lqr = control::dlqr(
      servo_d, math::Matrix::diag({100.0, 0.01}), math::Matrix{{1e-3}});
  control::StateSpace pos = servo_d;
  pos.c = math::Matrix{{1.0, 0.0}};
  pos.d = math::Matrix{{0.0}};
  const double nbar = control::reference_gain(pos, lqr.k);

  translate::LoopSpec spec;
  spec.plant = servo;
  spec.controller = control::state_feedback_controller(lqr.k, nbar, ts);
  spec.ts = ts;
  spec.t_end = 1.0;
  spec.ref = 1.0;
  spec.input = translate::ControllerInput::kStateRef;

  // -- Ideal (stroboscopic) simulation: what the designer believes ---------
  const translate::CosimOutcome ideal = translate::run_ideal_loop(spec);

  // -- Implementation-aware co-simulation (SynDEx -> graph of delays) ------
  translate::DistributedSpec dist;
  dist.arch = aaa::ArchitectureGraph::bus_architecture(2, 2e4, 2e-4);
  dist.wcet_sense = 3e-4;
  dist.wcet_ctrl = 3e-3;   // heavy control law
  dist.wcet_act = 3e-4;
  dist.bind_sense = "P0";  // I/O wired to P0
  dist.bind_act = "P0";
  dist.bind_ctrl = "P1";   // computation offloaded across the bus
  const translate::CosimOutcome impl = translate::run_distributed_loop(spec, dist);

  std::printf("== quickstart: DC servo LQR, ideal vs implementation ==\n\n");
  std::printf("%s\n", impl.schedule_text.c_str());
  std::printf("%-28s %12s %12s\n", "metric", "ideal", "implementation");
  std::printf("%-28s %12.5f %12.5f\n", "IAE", ideal.iae, impl.iae);
  std::printf("%-28s %12.5f %12.5f\n", "ISE", ideal.ise, impl.ise);
  std::printf("%-28s %12.2f %12.2f\n", "overshoot [%]",
              ideal.step.overshoot_pct, impl.step.overshoot_pct);
  std::printf("%-28s %12.4f %12.4f\n", "settling time [s]",
              ideal.step.settling_time, impl.step.settling_time);
  std::printf("%-28s %12.6f %12.6f\n", "mean sampling latency [s]",
              ideal.sense_latency.summary.mean, impl.sense_latency.summary.mean);
  std::printf("%-28s %12.6f %12.6f\n", "mean actuation latency [s]",
              ideal.act_latency.summary.mean, impl.act_latency.summary.mean);
  std::printf("\nLatency table of the implementation (eqs. 1-2):\n%s\n",
              latency::to_table(impl.act_latency, 5).c_str());
  std::printf("The co-simulation exposed a %.1f%% IAE degradation without any "
              "hardware in the loop.\n",
              100.0 * (impl.iae - ideal.iae) / ideal.iae);
  return 0;
}
