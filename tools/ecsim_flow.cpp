// ecsim_flow — command-line driver for the AAA flow on text specs:
//
//   ecsim_flow schedule  spec.txt   static schedule + makespan/utilization
//   ecsim_flow codegen   spec.txt   generated distributed executives (C-like)
//   ecsim_flow simulate  spec.txt   executive VM run: latencies + conformance
//   ecsim_flow validate  spec.txt   exit 0 iff schedulable within the period
//   ecsim_flow dot-alg   spec.txt   Graphviz DOT of the algorithm graph
//   ecsim_flow dot-arch  spec.txt   Graphviz DOT of the architecture
//   ecsim_flow dot-gantt spec.txt   Graphviz DOT of the schedule
//
// Observability flags (any command, order-free after the spec):
//   --trace-out=FILE    Chrome trace-event / Perfetto JSON: the adequation
//                       schedule as a proc/medium Gantt, executive-VM runs
//                       (simulate: "wcet/..." and "actual/..." tracks), and
//                       the wall-clock runtime spans of the flow itself.
//                       Load via https://ui.perfetto.dev or chrome://tracing.
//   --metrics-out=FILE  obs::MetricsRegistry snapshot; .csv extension
//                       selects CSV, anything else JSON.
//
// The spec format is documented in src/io/spec.hpp; see
// examples/specs/*.spec for ready-to-run inputs.
#include <cstdio>
#include <string>

#include "aaa/adequation.hpp"
#include "aaa/codegen.hpp"
#include "exec/conformance.hpp"
#include "io/dot.hpp"
#include "io/spec.hpp"
#include "latency/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_json.hpp"
#include "obs/tracer.hpp"
#include "translate/schedule_export.hpp"

using namespace ecsim;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: ecsim_flow <schedule|codegen|simulate|validate|"
               "dot-alg|dot-arch|dot-gantt> <spec-file>\n"
               "                  [--trace-out=FILE] [--metrics-out=FILE]\n");
  return 2;
}

struct Flow {
  io::ParsedSpec spec;
  aaa::Schedule sched{0, 0};
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  Flow(const std::string& path, obs::Tracer* tr, obs::MetricsRegistry* mx)
      : spec(io::load_spec(path)), tracer(tr), metrics(mx) {
    if (!spec.has_algorithm) {
      throw std::runtime_error("spec has no [algorithm] section");
    }
    if (!spec.has_architecture) {
      throw std::runtime_error("spec has no [architecture] section");
    }
    aaa::AdequationOptions opts;
    opts.tracer = tracer;
    opts.metrics = metrics;
    sched = aaa::adequate(spec.algorithm, spec.architecture, opts);
    sched.validate(spec.algorithm, spec.architecture);
  }
};

int cmd_schedule(const Flow& f) {
  std::printf("%s", f.sched.to_string(f.spec.algorithm, f.spec.architecture)
                        .c_str());
  const double period = f.spec.algorithm.period();
  if (period > 0.0) {
    std::printf("period %.6g, utilization %.1f%%%s\n", period,
                100.0 * f.sched.makespan() / period,
                f.sched.makespan() > period ? "  ** OVER PERIOD **" : "");
  }
  return 0;
}

int cmd_codegen(const Flow& f) {
  const aaa::GeneratedCode code =
      aaa::generate_executives(f.spec.algorithm, f.spec.architecture, f.sched);
  std::printf("%s", code.source.c_str());
  return 0;
}

int cmd_simulate(const Flow& f) {
  const aaa::GeneratedCode code =
      aaa::generate_executives(f.spec.algorithm, f.spec.architecture, f.sched);
  const double period = f.spec.algorithm.period() > 0.0
                            ? f.spec.algorithm.period()
                            : f.sched.makespan();
  exec::VmOptions opts;
  opts.iterations = 50;
  opts.period = period;
  opts.branch_chooser = exec::worst_case_branch_chooser();
  opts.tracer = f.tracer;
  opts.metrics = f.metrics;
  opts.track_prefix = "wcet/";
  const exec::VmResult wcet_run = exec::run_executives(
      f.spec.algorithm, f.spec.architecture, f.sched, code, opts);
  const exec::ConformanceReport conf = exec::check_wcet_conformance(
      f.spec.algorithm, f.spec.architecture, f.sched, wcet_run, period);
  std::printf("WCET run: deadlock=%s conformance=%s (max error %.2e)\n",
              wcet_run.deadlock ? "YES" : "no", conf.ok ? "exact" : "VIOLATED",
              conf.max_time_error);

  exec::VmOptions rnd = opts;
  rnd.exec_time = exec::uniform_fraction_exec_time(0.5);
  rnd.branch_chooser = exec::uniform_branch_chooser();
  rnd.track_prefix = "actual/";
  const exec::VmResult rnd_run = exec::run_executives(
      f.spec.algorithm, f.spec.architecture, f.sched, code, rnd);
  std::printf("random-times run: deadlock=%s, order preserved=%s\n",
              rnd_run.deadlock ? "YES" : "no",
              exec::check_order_preservation(f.spec.algorithm,
                                             f.spec.architecture, f.sched,
                                             rnd_run)
                      .ok
                  ? "yes"
                  : "NO");
  for (aaa::OpId op = 0; op < f.spec.algorithm.num_operations(); ++op) {
    const aaa::Operation& o = f.spec.algorithm.op(op);
    if (o.kind == aaa::OpKind::kCompute) continue;
    const auto series = latency::analyze_instants(
        o.name, rnd_run.completions(op), period);
    std::printf("%-12s %s latency: mean=%.6f max=%.6f jitter=%.6f\n",
                o.name.c_str(),
                o.kind == aaa::OpKind::kSensor ? "sampling " : "actuation",
                series.summary.mean, series.summary.max, series.jitter);
  }
  return 0;
}

int cmd_validate(const Flow& f) {
  const double period = f.spec.algorithm.period();
  if (period > 0.0 && f.sched.makespan() > period) {
    std::printf("INVALID: makespan %.6g exceeds period %.6g\n",
                f.sched.makespan(), period);
    return 1;
  }
  std::printf("OK: makespan %.6g within period %.6g\n", f.sched.makespan(),
              period);
  return 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string spec_path = argv[2];
  std::string trace_out, metrics_out;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(12);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(14);
    } else {
      return usage();
    }
  }

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  tracer.set_enabled(!trace_out.empty());
  obs::Tracer* tr = trace_out.empty() ? nullptr : &tracer;
  obs::MetricsRegistry* mx = metrics_out.empty() ? nullptr : &metrics;

  try {
    const Flow flow(spec_path, tr, mx);
    int rc;
    if (command == "schedule") {
      rc = cmd_schedule(flow);
    } else if (command == "codegen") {
      rc = cmd_codegen(flow);
    } else if (command == "simulate") {
      rc = cmd_simulate(flow);
    } else if (command == "validate") {
      rc = cmd_validate(flow);
    } else if (command == "dot-alg") {
      std::printf("%s", io::to_dot(flow.spec.algorithm).c_str());
      rc = 0;
    } else if (command == "dot-arch") {
      std::printf("%s", io::to_dot(flow.spec.architecture).c_str());
      rc = 0;
    } else if (command == "dot-gantt") {
      std::printf("%s", io::schedule_to_dot(flow.spec.algorithm,
                                            flow.spec.architecture, flow.sched)
                            .c_str());
      rc = 0;
    } else {
      return usage();
    }

    if (!trace_out.empty()) {
      obs::JsonTraceWriter w;
      // The static schedule Gantt (paper Figs. 3-4) plus whatever the run
      // recorded live (adequation span, VM op/comm instances).
      w.add_slices(translate::schedule_to_timeline(
          flow.spec.algorithm, flow.spec.architecture, flow.sched));
      w.add(tracer);
      if (!w.write(trace_out)) {
        std::fprintf(stderr, "ecsim_flow: cannot write %s\n",
                     trace_out.c_str());
        return 1;
      }
      std::fprintf(stderr, "trace: %s (%zu records)\n", trace_out.c_str(),
                   w.num_events());
    }
    if (!metrics_out.empty()) {
      const std::string doc = ends_with(metrics_out, ".csv")
                                  ? metrics.to_csv()
                                  : metrics.to_json();
      std::FILE* fp = std::fopen(metrics_out.c_str(), "w");
      if (fp == nullptr) {
        std::fprintf(stderr, "ecsim_flow: cannot write %s\n",
                     metrics_out.c_str());
        return 1;
      }
      std::fputs(doc.c_str(), fp);
      std::fclose(fp);
      std::fprintf(stderr, "metrics: %s\n", metrics_out.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ecsim_flow: %s\n", e.what());
    return 1;
  }
}
