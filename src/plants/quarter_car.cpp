#include "plants/quarter_car.hpp"

#include <stdexcept>

namespace ecsim::plants {

control::StateSpace quarter_car(const QuarterCarParams& p) {
  if (p.sprung_mass <= 0.0 || p.unsprung_mass <= 0.0) {
    throw std::invalid_argument("quarter_car: masses must be > 0");
  }
  const double ms = p.sprung_mass, mu = p.unsprung_mass;
  const double ks = p.spring, bs = p.damper, kt = p.tire_stiffness;
  // ms zs'' = -ks (zs - zu) - bs (zs' - zu') + u
  // mu zu'' =  ks (zs - zu) + bs (zs' - zu') - kt (zu - zr) - u
  control::StateSpace sys;
  sys.a = control::Matrix{
      {0.0, 1.0, 0.0, 0.0},
      {-ks / ms, -bs / ms, ks / ms, bs / ms},
      {0.0, 0.0, 0.0, 1.0},
      {ks / mu, bs / mu, -(ks + kt) / mu, -bs / mu}};
  sys.b = control::Matrix{
      {0.0, 0.0}, {1.0 / ms, 0.0}, {0.0, 0.0}, {-1.0 / mu, kt / mu}};
  sys.c = control::Matrix{{1.0, 0.0, 0.0, 0.0}, {1.0, 0.0, -1.0, 0.0}};
  sys.d = control::Matrix::zeros(2, 2);
  sys.validate();
  return sys;
}

}  // namespace ecsim::plants
