#!/usr/bin/env bash
# CI obs job (DESIGN.md §3.7, docs/architecture.md "Observability"): the
# backend-spanning telemetry of PR 7 must
#   1. pass the ABI v2 bit-identity suite — a native module with a Tracer +
#      MetricsRegistry attached reproduces the interpreter's trace, spans
#      and metrics exactly, with no interpreter fallback;
#   2. pass the ledger round-trip/diff suites and the tracer/metrics merge
#      edge cases (empty shards, duplicate interned names, self-merge);
#   3. hold the EXP-O2 perf guard (attached-but-disabled obs <= 2% overhead
#      on the native path, >= 1.5x interpreter events/s retained), run via
#      `ctest -C bench`;
#   4. gate regressions at the CLI: `ecsim_flow ledger diff` must exit 1
#      for a ledger whose newest chains_200 record is >10% below the
#      committed BENCH figure, and 0 for a healthy one;
#   5. survive with the obs callback table exercised under ASan+UBSan (the
#      generated .so inherits the sanitizer flags via ECSIM_NATIVE_FLAGS).
#
# Usage: scripts/run_obs_guard.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-obs"
asan_dir="${repo_root}/build-obs-asan"
JOBS="$(nproc 2>/dev/null || echo 2)"

OBS_TESTS="NativeObs|Ledger|MetricsMerge|TracerAppend|HistogramQuantile"
OBS_TESTS+="|CellMetrics|FaultPlan.Hash"

cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "${JOBS}" \
  --target test_backend test_obs test_par test_fault \
           bench_o2_native_obs ecsim_flow

# 1 + 2. Bit-identity, ledger and merge suites.
ctest --test-dir "${build_dir}" --output-on-failure -R "${OBS_TESTS}"

# 3. EXP-O2 perf guard (writes BENCH_o2.json into the build dir).
ctest --test-dir "${build_dir}" -C bench -R bench_o2_native_obs_guard \
  --output-on-failure

# 4. CLI regression gate on synthetic ledgers: a slow record must trip the
# diff (exit 1), a healthy one must pass (exit 0). The record format here
# mirrors obs/ledger.cpp to_json_line(); the ledger tests above guarantee
# the parser accepts it.
tmp="$(mktemp -d)"
trap 'rm -rf "${tmp}"' EXIT
hash="0xfeedc0de00000001"
cat > "${tmp}/bench.json" <<EOF
{
  "experiment": "EXP-O2-synthetic",
  "model_ir_hash_chains_200": "${hash}",
  "codegen": [
    {"scenario": "chains_200", "native_best_events_per_s": 1000000.0}
  ]
}
EOF
record() {  # $1 = events_per_s
  printf '{"schema_version": 1, "ir_hash": "%s", "model": "chains_200", ' \
    "${hash}"
  printf '"backend_requested": "native", "backend_used": "native", '
  printf '"fallback_reason": "", "seed": 1, "fault_plan_hash": 0, '
  printf '"threads": 1, "wall_s": 0.5, "events": 601000, '
  printf '"events_per_s": %s, "metrics": {}}\n' "$1"
}
record 850000.0 > "${tmp}/slow.jsonl"     # 15% below: beyond the 10% gate
record 990000.0 > "${tmp}/healthy.jsonl"  # 1% below: fine

rc=0
"${build_dir}/tools/ecsim_flow" ledger diff \
  --ledger="${tmp}/slow.jsonl" --bench="${tmp}/bench.json" || rc=$?
if [[ "${rc}" -ne 1 ]]; then
  echo "FAIL: ledger diff on a slow record exited ${rc}, expected 1"
  exit 1
fi
"${build_dir}/tools/ecsim_flow" ledger diff \
  --ledger="${tmp}/healthy.jsonl" --bench="${tmp}/bench.json"
echo "ledger diff gate: slow record trips (exit 1), healthy record passes"

# 5. The obs bridge under ASan+UBSan.
cmake -S "${repo_root}" -B "${asan_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DECSIM_SANITIZE=ON
cmake --build "${asan_dir}" -j "${JOBS}" --target test_backend test_obs
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_stack_use_after_return=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
ctest --test-dir "${asan_dir}" --output-on-failure \
  -R "NativeObs|Ledger|MetricsMerge|TracerAppend"

echo "run_obs_guard: OK"
