# Empty dependencies file for bench_a1_adequation.
# This may be replaced when dependencies are built.
