// Network medium kinds (CAN priority arbitration, TDMA owner slots,
// background-traffic contention): the Medium model's timing rules, their
// validation, and how the adequation charges them.
#include <gtest/gtest.h>

#include "aaa/adequation.hpp"
#include "aaa/routing.hpp"

namespace ecsim::aaa {
namespace {

TEST(CanMedium, EarliestStartIsImmediate) {
  // CAN has no slot grid: a frame may start the moment the bus is free.
  // The worst-case blocking charge lives in the adequation, not here.
  Medium m{"bus", 1e4, 0.0, Arbitration::kCanPriority};
  m.can_blocking = 2e-3;
  EXPECT_DOUBLE_EQ(m.earliest_start(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.earliest_start(0.00037), 0.00037);
  EXPECT_DOUBLE_EQ(m.earliest_start(0.00037, /*priority=*/0), 0.00037);
  EXPECT_DOUBLE_EQ(m.earliest_start(0.00037, /*priority=*/7), 0.00037);
}

TEST(CanMedium, SetCanValidation) {
  auto arch = ArchitectureGraph::bus_architecture(2, 1e4);
  EXPECT_THROW(arch.set_can(5, 1e-3), std::out_of_range);
  EXPECT_THROW(arch.set_can(0, -1e-3), std::invalid_argument);
  arch.set_can(0, 2e-3);
  EXPECT_EQ(arch.medium(0).arbitration, Arbitration::kCanPriority);
  EXPECT_DOUBLE_EQ(arch.medium(0).can_blocking, 2e-3);
}

TEST(BackgroundLoad, StretchesTransferTime) {
  auto arch = ArchitectureGraph::bus_architecture(2, 1e4, 1e-4);
  const double clean = arch.medium(0).transfer_time(8.0);
  arch.set_background_load(0, 0.5);
  const Medium& m = arch.medium(0);
  EXPECT_DOUBLE_EQ(m.effective_bandwidth(), 5e3);
  // Latency is propagation, not bandwidth: only the size term stretches.
  EXPECT_DOUBLE_EQ(m.transfer_time(8.0), 1e-4 + 8.0 / 5e3);
  EXPECT_GT(m.transfer_time(8.0), clean);
}

TEST(BackgroundLoad, Validation) {
  auto arch = ArchitectureGraph::bus_architecture(2, 1e4);
  EXPECT_THROW(arch.set_background_load(5, 0.1), std::out_of_range);
  EXPECT_THROW(arch.set_background_load(0, -0.1), std::invalid_argument);
  EXPECT_THROW(arch.set_background_load(0, 1.0), std::invalid_argument);
  arch.set_background_load(0, 0.0);  // explicit zero is a no-op, not an error
  EXPECT_DOUBLE_EQ(arch.medium(0).effective_bandwidth(), 1e4);
}

TEST(TdmaOwnerSlots, EarliestStartHitsOwnerInstants) {
  // 2 owner slots of 5e-4 s: owner 0 may start at k*1e-3, owner 1 at
  // k*1e-3 + 5e-4.
  Medium m{"bus", 1e5, 0.0, Arbitration::kTdma, 5e-4};
  m.tdma_slots = 2;
  // Release exactly AT an owner instant starts immediately (boundary hit).
  EXPECT_DOUBLE_EQ(m.earliest_start(0.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.earliest_start(1e-3, 0), 1e-3);
  EXPECT_DOUBLE_EQ(m.earliest_start(5e-4, 1), 5e-4);
  EXPECT_DOUBLE_EQ(m.earliest_start(1.5e-3, 1), 1.5e-3);
  // Release just past the instant waits a full round.
  EXPECT_DOUBLE_EQ(m.earliest_start(1e-3 + 1e-9, 0), 2e-3);
  EXPECT_DOUBLE_EQ(m.earliest_start(5e-4 + 1e-9, 1), 1.5e-3);
  // Transfers start only at the owner instant itself: a release mid-slot
  // (even inside the owner's own slot) waits for the next round, and a
  // release in a foreign slot snaps forward to the owner's next instant.
  EXPECT_DOUBLE_EQ(m.earliest_start(2e-4, 0), 1e-3);
  EXPECT_DOUBLE_EQ(m.earliest_start(2e-4, 1), 5e-4);
  // Release exactly at the owner slot's END (the next instant belongs to
  // the other owner) also waits for the next round.
  EXPECT_DOUBLE_EQ(m.earliest_start(5e-4, 0), 1e-3);
  // Owner is priority modulo the slot count.
  EXPECT_DOUBLE_EQ(m.earliest_start(2e-4, 3), m.earliest_start(2e-4, 1));
}

TEST(TdmaOwnerSlots, SingleSlotEqualsClassicGrid) {
  Medium m{"bus", 1e5, 0.0, Arbitration::kTdma, 1e-3};
  for (const double r : {0.0, 4e-4, 1e-3, 1.00001e-3, 2.7e-3}) {
    EXPECT_DOUBLE_EQ(m.earliest_start(r, 0), m.earliest_start(r));
    EXPECT_DOUBLE_EQ(m.earliest_start(r, 5), m.earliest_start(r));
  }
}

TEST(TdmaOwnerSlots, SetTdmaValidatesSlotCount) {
  auto arch = ArchitectureGraph::bus_architecture(2, 1e4);
  EXPECT_THROW(arch.set_tdma(0, 1e-3, 0), std::invalid_argument);
  arch.set_tdma(0, 1e-3, 4);
  EXPECT_EQ(arch.medium(0).tdma_slots, 4u);
}

TEST(DepPriority, DefaultsToDeclarationOrder) {
  AlgorithmGraph alg("prio", 0.01);
  const OpId a = alg.add_simple("a", OpKind::kSensor, 1e-4, "P0");
  const OpId b = alg.add_simple("b", OpKind::kCompute, 1e-4, "P1");
  const OpId c = alg.add_simple("c", OpKind::kActuator, 1e-4, "P0");
  alg.add_dependency(a, b, 8.0);            // default: dep index 0
  alg.add_dependency(b, c, 8.0, /*prio=*/0);  // explicit CAN identifier
  EXPECT_EQ(alg.dep_priority(0), 0u);
  EXPECT_EQ(alg.dep_priority(1), 0u);  // explicit wins over index 1
}

/// Two transfers across a CAN bus: the adequation must charge the
/// worst-case non-preemptive blocking once per frame, lengthening the
/// makespan by exactly 2 * blocking vs the immediate bus.
TEST(CanAdequation, ChargesBlockingPerFrame) {
  const auto build = [](double blocking) {
    AlgorithmGraph alg("chain", 0.05);
    const OpId s = alg.add_simple("sense", OpKind::kSensor, 1e-4, "P0");
    const OpId c = alg.add_simple("ctrl", OpKind::kCompute, 5e-4, "P1");
    const OpId a = alg.add_simple("act", OpKind::kActuator, 1e-4, "P0");
    alg.add_dependency(s, c, 8.0);
    alg.add_dependency(c, a, 8.0);
    auto arch = ArchitectureGraph::bus_architecture(2, 1e5, 1e-5);
    if (blocking >= 0.0) arch.set_can(0, blocking);
    const Schedule sched = adequate(alg, arch);
    sched.validate(alg, arch);
    return sched.makespan();
  };
  const double immediate = build(-1.0);
  EXPECT_NEAR(build(2e-3), immediate + 2 * 2e-3, 1e-12);
  EXPECT_NEAR(build(0.0), immediate, 1e-12);
}

TEST(WorstCaseTransfer, AccountsForMediumKind) {
  const auto wc = [](const ArchitectureGraph& arch) {
    return RouteTable(arch).worst_case_transfer_time(arch, 0, 1, 8.0);
  };
  auto arch = ArchitectureGraph::bus_architecture(2, 1e5, 0.0);
  const double plain = wc(arch);
  EXPECT_DOUBLE_EQ(plain, 8.0 / 1e5);

  auto can = ArchitectureGraph::bus_architecture(2, 1e5, 0.0);
  can.set_can(0, 2e-3);
  EXPECT_DOUBLE_EQ(wc(can), plain + 2e-3);

  auto tdma = ArchitectureGraph::bus_architecture(2, 1e5, 0.0);
  tdma.set_tdma(0, 5e-4, 2);
  EXPECT_DOUBLE_EQ(wc(tdma), plain + 2 * 5e-4);

  auto loaded = ArchitectureGraph::bus_architecture(2, 1e5, 0.0);
  loaded.set_background_load(0, 0.5);
  EXPECT_DOUBLE_EQ(wc(loaded), 2.0 * plain);
}

}  // namespace
}  // namespace ecsim::aaa
