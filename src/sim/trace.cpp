#include "sim/trace.hpp"

namespace ecsim::sim {

void Trace::record_event(Time t, std::size_t block, std::size_t event_in,
                         const std::string& name) {
  if (block >= names_.size()) names_.resize(block + 1);
  if (names_[block].empty()) names_[block] = name;
  events_.push_back(EventRecord{t, block, event_in});
}

void Trace::record_signal(Time t, std::size_t block,
                          std::vector<double> values) {
  signals_.push_back(SignalRecord{t, block, std::move(values)});
  reserve_pool();
}

void Trace::record_signal(Time t, std::size_t block,
                          std::span<const double> values) {
  SignalRecord& rec = signals_.emplace_back();
  rec.time = t;
  rec.block = block;
  if (!pool_.empty()) {
    rec.values = std::move(pool_.back());
    pool_.pop_back();
  } else {
    // Pool miss: a genuinely new slot (warm-up). Grow the pool's *capacity*
    // alongside, so the clear() that recycles every live buffer back — the
    // first thing a steady-state re-run does — never grows the pool vector
    // itself. Without this the warmed re-run still pays O(log n) pool
    // reallocations inside clear(), which the allocation guard counts.
    reserve_pool();
  }
  // assign() reuses the recycled capacity when it suffices — the common
  // steady-state case, since probes sample fixed-width signals.
  rec.values.assign(values.begin(), values.end());
}

void Trace::reserve_pool() {
  if (pool_.capacity() < pool_.size() + signals_.size()) {
    pool_.reserve(pool_.size() + signals_.capacity());
  }
}

void Trace::register_block_names(std::vector<std::string> names) {
  names_ = std::move(names);
}

void Trace::set_block_name(std::size_t block, std::string_view name) {
  if (block >= names_.size()) names_.resize(block + 1);
  names_[block] = name;
}

std::string_view Trace::block_name(std::size_t block) const {
  return block < names_.size() ? std::string_view(names_[block])
                               : std::string_view();
}

void Trace::reserve(std::size_t events, std::size_t signals) {
  events_.reserve(events);
  signals_.reserve(signals);
}

std::vector<Time> Trace::activation_times(std::size_t block,
                                          std::size_t event_in) const {
  std::vector<Time> out;
  for (const auto& e : events_) {
    if (e.block == block &&
        (event_in == static_cast<std::size_t>(-1) || e.event_in == event_in)) {
      out.push_back(e.time);
    }
  }
  return out;
}

std::vector<Time> Trace::activation_times_by_name(const std::string& name,
                                                  std::size_t event_in) const {
  std::vector<Time> out;
  for (const auto& e : events_) {
    if (block_name(e.block) == name &&
        (event_in == static_cast<std::size_t>(-1) || e.event_in == event_in)) {
      out.push_back(e.time);
    }
  }
  return out;
}

std::vector<std::pair<Time, double>> Trace::series(std::size_t block,
                                                   std::size_t component) const {
  std::vector<std::pair<Time, double>> out;
  for (const auto& s : signals_) {
    if (s.block == block && component < s.values.size()) {
      out.emplace_back(s.time, s.values[component]);
    }
  }
  return out;
}

std::vector<std::pair<Time, double>> Trace::series_by_name(
    const std::string& name, std::size_t component) const {
  std::vector<std::pair<Time, double>> out;
  for (const auto& s : signals_) {
    if (block_name(s.block) == name && component < s.values.size()) {
      out.emplace_back(s.time, s.values[component]);
    }
  }
  return out;
}

void Trace::clear() {
  events_.clear();
  // Recycle the signal value buffers: the next run's record_signal(span)
  // calls pop them back out and assign() within their capacity, so a warmed
  // trace re-records without touching the heap.
  for (SignalRecord& s : signals_) {
    if (s.values.capacity() > 0) pool_.push_back(std::move(s.values));
  }
  signals_.clear();
}

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

// Word-at-a-time FNV-1a variant: one xor-multiply round per 64-bit word
// instead of eight byte rounds, with a fold of the high half back down to
// restore the low-bit diffusion the byte loop provided. The digest sits on
// a serial dependency chain computed once per Monte Carlo trial inside the
// timed region, so its per-word latency is throughput-visible (EXP-P8).
void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
  h ^= h >> 32;
}

std::uint64_t bits_of(double d) {
  std::uint64_t u;
  static_assert(sizeof(u) == sizeof(d));
  __builtin_memcpy(&u, &d, sizeof(u));
  return u;
}

}  // namespace

std::uint64_t trace_digest(const Trace& trace) {
  // Four independent chains striped record-by-record, folded at the end:
  // one chain is pure xor-multiply latency (~7ns/record measured), and a
  // Monte Carlo trial hashes its whole trace inside the timed region
  // (EXP-P8). Record order and content still pin the digest — each record's
  // words stay in order inside one chain, and the fold keys on every chain.
  std::uint64_t h[4] = {kFnvOffset, kFnvOffset, kFnvOffset, kFnvOffset};
  for (std::uint64_t k = 0; k < 4; ++k) fnv_mix(h[k], k + 1);

  const auto& ev = trace.events();
  fnv_mix(h[0], ev.size());
  std::size_t i = 0;
  for (; i + 4 <= ev.size(); i += 4) {
    for (std::size_t k = 0; k < 4; ++k) {  // unrolled; chains run in parallel
      const EventRecord& e = ev[i + k];
      fnv_mix(h[k], bits_of(e.time));
      fnv_mix(h[k], e.block);
      fnv_mix(h[k], e.event_in);
    }
  }
  for (; i < ev.size(); ++i) {
    fnv_mix(h[0], bits_of(ev[i].time));
    fnv_mix(h[0], ev[i].block);
    fnv_mix(h[0], ev[i].event_in);
  }

  const auto& sg = trace.signals();
  fnv_mix(h[1], sg.size());
  for (std::size_t s = 0; s < sg.size(); ++s) {
    std::uint64_t& hs = h[s & 3];
    fnv_mix(hs, bits_of(sg[s].time));
    fnv_mix(hs, sg[s].block);
    fnv_mix(hs, sg[s].values.size());
    for (double v : sg[s].values) fnv_mix(hs, bits_of(v));
  }

  fnv_mix(h[0], h[1]);
  fnv_mix(h[0], h[2]);
  fnv_mix(h[0], h[3]);
  return h[0];
}

}  // namespace ecsim::sim
