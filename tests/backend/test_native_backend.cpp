// Native backend guards (DESIGN.md §3.6): the generated-code path must be
// bit-identical to the interpreter — same trace events, same signal doubles,
// same RNG consumption — on the canonical examples, on random hybrid
// diagrams, and with a fault gate armed; and a native request must degrade
// to the interpreter with a recorded reason (never an abort) when the
// toolchain or the model can't take the codegen path.
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "backend/backend.hpp"
#include "backend/kind.hpp"
#include "blocks/event_blocks.hpp"
#include "blocks/examples.hpp"
#include "blocks/sources.hpp"
#include "control/c2d.hpp"
#include "control/delay_compensation.hpp"
#include "control/lqr.hpp"
#include "fault/comm_gate.hpp"
#include "obs/metrics.hpp"
#include "plants/dc_servo.hpp"
#include "properties/random_graphs.hpp"
#include "sim/build_ir.hpp"
#include "translate/cosim.hpp"

namespace {

using namespace ecsim;

backend::RunOptions opts_for(backend::Kind k, double end_time = 1.0,
                             std::uint64_t seed = 1) {
  backend::RunOptions o;
  o.kind = k;
  o.sim.end_time = end_time;
  o.sim.seed = seed;
  return o;
}

/// Runs both backends and asserts the native one actually ran and produced
/// the interpreter's exact trace.
void expect_bit_identical(sim::Model& model, double end_time,
                          std::uint64_t seed = 1) {
  backend::RunResult interp =
      backend::run(model, opts_for(backend::Kind::kInterp, end_time, seed));
  backend::RunResult native =
      backend::run(model, opts_for(backend::Kind::kNative, end_time, seed));
  ASSERT_EQ(native.used, backend::Kind::kNative)
      << "fell back: " << native.fallback_reason;
  EXPECT_EQ(native.events_dispatched, interp.events_dispatched);
  EXPECT_TRUE(native.trace == interp.trace);
}

TEST(NativeBackend, ChainsTraceBitIdentical) {
  sim::Model m = blocks::examples::make_chains(8);
  expect_bit_identical(m, 0.25);
}

TEST(NativeBackend, ServoTraceBitIdentical) {
  sim::Model m = blocks::examples::make_servo();
  expect_bit_identical(m, 1.0);
}

TEST(NativeBackend, RandomHybridDiagramsBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    math::Rng rng(seed);
    sim::Model m = ecsim::testing::random_block_model(rng);
    SCOPED_TRACE("model seed " + std::to_string(seed));
    expect_bit_identical(m, 0.5, seed * 17 + 1);
  }
}

// A comm-gate fault chain (loss + delay + duplicate entries) is describable
// IR: the generated module must consume the gate's hash-derived decisions in
// the exact same order as the interpreter.
TEST(NativeBackend, FaultGateArmedBitIdentical) {
  sim::Model m;
  auto& clk = m.add<blocks::Clock>("clk", 1e-3);
  fault::CommGate gate;
  gate.seed = 42;
  gate.period = 1.0;
  gate.entries.push_back({0, fault::CommGateEntry::Kind::kLoss, 0.3, 0.0, 0,
                          0.0, 0.5});
  gate.entries.push_back({0, fault::CommGateEntry::Kind::kDelay, 0.4, 2e-4, 0,
                          0.2, 1.0});
  auto& gateblk = m.add<blocks::EventFault>("gate", gate);
  auto& d = m.add<blocks::EventDelay>("d", 1e-4);
  auto& n = m.add<blocks::EventCounter>("n");
  m.connect_event(clk, 0, gateblk, 0);
  m.connect_event(gateblk, 0, d, 0);
  m.connect_event(d, 0, n, 0);
  expect_bit_identical(m, 0.5);
}

TEST(NativeBackend, DisableEnvFallsBackWithReason) {
  ::setenv("ECSIM_NATIVE_DISABLE", "1", 1);
  sim::Model m = blocks::examples::make_chains(2);
  obs::MetricsRegistry reg;
  backend::RunOptions o = opts_for(backend::Kind::kNative, 0.1);
  o.metrics = &reg;
  backend::RunResult r = backend::run(m, o);
  ::unsetenv("ECSIM_NATIVE_DISABLE");
  EXPECT_EQ(r.used, backend::Kind::kInterp);
  EXPECT_EQ(r.fallback_reason.substr(0, 8), "disabled");
  EXPECT_EQ(reg.counter("backend.fallback.disabled").value(), 1u);
  EXPECT_GT(r.events_dispatched, 0u);
}

// Compiler missing: the run must still complete on the interpreter with an
// identical trace and a "toolchain" reason — never an abort. A fresh cache
// dir guarantees no cached .so can short-circuit the compile attempt.
TEST(NativeBackend, MissingCompilerFallsBackGracefully) {
  ::setenv("ECSIM_NATIVE_CXX", "/nonexistent/ecsim-no-such-cxx", 1);
  ::setenv("ECSIM_NATIVE_CACHE",
           (::testing::TempDir() + "ecsim_bogus_cxx_cache").c_str(), 1);
  sim::Model m = blocks::examples::make_chains(2);
  obs::MetricsRegistry reg;
  backend::RunOptions o = opts_for(backend::Kind::kNative, 0.1);
  o.metrics = &reg;
  backend::RunResult r = backend::run(m, o);
  ::unsetenv("ECSIM_NATIVE_CXX");
  ::unsetenv("ECSIM_NATIVE_CACHE");
  EXPECT_EQ(r.used, backend::Kind::kInterp);
  EXPECT_EQ(r.fallback_reason.substr(0, 9), "toolchain");
  EXPECT_EQ(reg.counter("backend.fallback.toolchain").value(), 1u);

  backend::RunResult interp =
      backend::run(m, opts_for(backend::Kind::kInterp, 0.1));
  EXPECT_TRUE(r.trace == interp.trace);
}

// Opaque blocks (user closures) cannot be regenerated: clean fallback, not
// a codegen crash.
TEST(NativeBackend, OpaqueModelFallsBack) {
  sim::Model m;
  auto& clk = m.add<blocks::Clock>("clk", 1e-2);
  auto& d = m.add<blocks::EventDelay>(
      "custom", blocks::custom_duration([](math::Rng& r) {
        return r.uniform(1e-4, 2e-4);
      }));
  m.connect_event(clk, 0, d, 0);
  obs::MetricsRegistry reg;
  backend::RunOptions o = opts_for(backend::Kind::kNative, 0.1);
  o.metrics = &reg;
  backend::RunResult r = backend::run(m, o);
  EXPECT_EQ(r.used, backend::Kind::kInterp);
  EXPECT_EQ(r.fallback_reason.substr(0, 6), "opaque");
  EXPECT_EQ(reg.counter("backend.fallback.opaque").value(), 1u);
}

// The IR-level entry point: identical result from the IR alone (interpreter
// path reconstructs the model with blocks::to_model).
TEST(NativeBackend, RunIrMatchesRunModel) {
  sim::Model m = blocks::examples::make_servo();
  const ir::Model irm = sim::build_ir(m, "servo");
  backend::RunResult a =
      backend::run(m, opts_for(backend::Kind::kInterp, 0.5));
  backend::RunResult b =
      backend::run_ir(irm, opts_for(backend::Kind::kInterp, 0.5));
  EXPECT_TRUE(a.trace == b.trace);
  backend::RunResult c =
      backend::run_ir(irm, opts_for(backend::Kind::kNative, 0.5));
  ASSERT_EQ(c.used, backend::Kind::kNative)
      << "fell back: " << c.fallback_reason;
  EXPECT_TRUE(a.trace == c.trace);
}

// Observability attached to the *sim* options rides through the ABI v2
// callback table since PR 7: the native engine runs anyway (no fallback)
// and reports the interpreter's exact metric values.
TEST(NativeBackend, SimMetricsStayNative) {
  sim::Model m = blocks::examples::make_chains(2);

  obs::MetricsRegistry interp_reg;
  backend::RunOptions oi = opts_for(backend::Kind::kInterp, 0.1);
  oi.sim.metrics = &interp_reg;
  backend::RunResult interp = backend::run(m, oi);

  obs::MetricsRegistry native_reg;
  backend::RunOptions on = opts_for(backend::Kind::kNative, 0.1);
  on.sim.metrics = &native_reg;
  backend::RunResult r = backend::run(m, on);
  ASSERT_EQ(r.used, backend::Kind::kNative)
      << "fell back: " << r.fallback_reason;
  EXPECT_TRUE(r.trace == interp.trace);
  EXPECT_GT(native_reg.counter("sim.events_dispatched").value(), 0u);
  EXPECT_EQ(native_reg.counter("sim.events_dispatched").value(),
            interp_reg.counter("sim.events_dispatched").value());
  EXPECT_EQ(native_reg.counter("sim.eval_calls").value(),
            interp_reg.counter("sim.eval_calls").value());
  EXPECT_EQ(native_reg.gauge("sim.queue_high_water").value(),
            interp_reg.gauge("sim.queue_high_water").value());
  EXPECT_EQ(native_reg.to_json(), interp_reg.to_json());
}

// ---- co-simulation routing (translate/cosim.hpp) ---------------------------

translate::LoopSpec servo_loop_spec() {
  const control::StateSpace servo_ct = [] {
    control::StateSpace s = plants::dc_servo();
    s.c = math::Matrix::identity(2);
    s.d = math::Matrix::zeros(2, 1);
    return s;
  }();
  const double ts = 0.01;
  const control::StateSpace servo_dt = control::c2d(servo_ct, ts);
  const control::LqrResult lqr = control::dlqr(
      servo_dt, math::Matrix::diag({100.0, 0.01}), math::Matrix{{1e-3}});
  control::StateSpace tracking = servo_dt;
  tracking.c = math::Matrix{{1.0, 0.0}};
  tracking.d = math::Matrix{{0.0}};
  const double nbar = control::reference_gain(tracking, lqr.k);

  translate::LoopSpec spec;
  spec.plant = servo_ct;
  spec.controller = control::state_feedback_controller(lqr.k, nbar, ts);
  spec.ts = ts;
  spec.t_end = 0.4;
  spec.ref = 1.0;
  spec.input = translate::ControllerInput::kStateRef;
  return spec;
}

// The co-simulation driver routed through the dispatcher: a native ideal
// loop must reproduce the interpreter's probe series bit for bit.
TEST(CosimBackend, IdealLoopNativeMatchesInterp) {
  translate::LoopSpec spec = servo_loop_spec();
  const translate::CosimOutcome interp = translate::run_ideal_loop(spec);
  spec.backend = backend::Kind::kNative;
  const translate::CosimOutcome native = translate::run_ideal_loop(spec);
  ASSERT_EQ(native.backend_used, backend::Kind::kNative)
      << "fell back: " << native.backend_fallback;
  EXPECT_EQ(native.y, interp.y);
  EXPECT_EQ(native.u, interp.u);
  EXPECT_EQ(native.cost, interp.cost);
  EXPECT_EQ(native.sense_latency.summary.max, interp.sense_latency.summary.max);
}

// A distributed run with a graph-of-delays is also codegen-eligible (the
// comm/op delays lower to describable EventDelay specs)...
TEST(CosimBackend, DistributedLoopNativeMatchesInterp) {
  translate::LoopSpec spec = servo_loop_spec();
  translate::DistributedSpec dist;
  dist.bind_ctrl = "P1";  // controller across the bus: real message traffic
  const translate::CosimOutcome interp =
      translate::run_distributed_loop(spec, dist);
  spec.backend = backend::Kind::kNative;
  const translate::CosimOutcome native =
      translate::run_distributed_loop(spec, dist);
  ASSERT_EQ(native.backend_used, backend::Kind::kNative)
      << "fell back: " << native.backend_fallback;
  EXPECT_EQ(native.y, interp.y);
  EXPECT_EQ(native.u, interp.u);
  EXPECT_EQ(native.cost, interp.cost);
}

// ...but arming a fault plan pins the interpreter: messages_lost/deferred
// read the gates' interpreter block counters after the run, and that must
// keep working (with the reason recorded, not silently).
TEST(CosimBackend, FaultedDistributedLoopPinsInterpWithReason) {
  translate::LoopSpec spec = servo_loop_spec();
  spec.backend = backend::Kind::kNative;
  translate::DistributedSpec dist;
  dist.bind_ctrl = "P1";
  dist.god.fault_plan.message_loss("bus", 0.3);
  const translate::CosimOutcome out =
      translate::run_distributed_loop(spec, dist);
  EXPECT_EQ(out.backend_used, backend::Kind::kInterp);
  EXPECT_EQ(out.backend_fallback.substr(0, 16), "fault_accounting");
  EXPECT_GT(out.messages_lost, 0u);
}

}  // namespace
