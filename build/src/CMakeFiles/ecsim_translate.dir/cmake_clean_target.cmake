file(REMOVE_RECURSE
  "libecsim_translate.a"
)
