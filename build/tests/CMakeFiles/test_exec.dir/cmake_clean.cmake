file(REMOVE_RECURSE
  "CMakeFiles/test_exec.dir/exec/test_conformance.cpp.o"
  "CMakeFiles/test_exec.dir/exec/test_conformance.cpp.o.d"
  "CMakeFiles/test_exec.dir/exec/test_deadlines.cpp.o"
  "CMakeFiles/test_exec.dir/exec/test_deadlines.cpp.o.d"
  "CMakeFiles/test_exec.dir/exec/test_executive_vm.cpp.o"
  "CMakeFiles/test_exec.dir/exec/test_executive_vm.cpp.o.d"
  "test_exec"
  "test_exec.pdb"
  "test_exec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
