# Empty compiler generated dependencies file for ecsim_flow.
# This may be replaced when dependencies are built.
