// EXP-P1 (supporting): throughput of the hybrid simulation engine — event
// dispatch rate, ODE integration cost, and scaling with model size. Not a
// paper figure; establishes that the co-simulation methodology is cheap
// enough to sit inside a design loop.
//
// The event-dispatch workload is measured under both refresh strategies:
// full_refresh=true re-evaluates the whole feedthrough network after every
// event (the pre-CompiledModel behaviour), the default incremental path
// refreshes only the dispatched block's feedthrough cone. Both numbers (and
// the bit-identical-trace check between them) go to BENCH_p1.json so the
// perf trajectory is machine-readable across PRs.
#include <chrono>
#include <utility>

#include "bench_common.hpp"
#include "blocks/continuous.hpp"
#include "blocks/discrete.hpp"
#include "blocks/event_blocks.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sources.hpp"
#include "sim/compiled_model.hpp"
#include "sim/simulator.hpp"

using namespace ecsim;

namespace {

/// The EXP-P1 event workload: one clock fanning out to `chains` independent
/// delay chains (clock -> d1 -> d2 -> counter), 1 ms tick over 1 s.
sim::Model make_chains(std::size_t chains) {
  sim::Model m;
  auto& clk = m.add<blocks::Clock>("clk", 1e-3);
  for (std::size_t c = 0; c < chains; ++c) {
    auto& d1 = m.add<blocks::EventDelay>("d1_" + std::to_string(c), 1e-4);
    auto& d2 = m.add<blocks::EventDelay>("d2_" + std::to_string(c), 2e-4);
    auto& n = m.add<blocks::EventCounter>("n_" + std::to_string(c));
    m.connect_event(clk, 0, d1, d1.event_in());
    m.connect_event(d1, d1.event_out(), d2, d2.event_in());
    m.connect_event(d2, d2.event_out(), n, 0);
  }
  return m;
}

struct ModeResult {
  std::size_t events = 0;
  double events_per_s = 0.0;
};

ModeResult timed_run(sim::Simulator& s) {
  const auto t0 = std::chrono::steady_clock::now();
  s.run();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return ModeResult{s.events_dispatched(),
                    static_cast<double>(s.events_dispatched()) / secs};
}

void experiment() {
  bench::banner("EXP-P1", "(engine throughput, supporting)",
                "Hybrid engine scaling: events/s under full-network refresh "
                "vs incremental cone refresh, vs model size.");
  bench::JsonReport report("EXP-P1");
  {
    sim::Model headline = make_chains(200);
    report.model_ir_hash("chains_200", headline);
  }
  report.begin_array("event_dispatch");
  std::printf("%8s %10s %15s %15s %9s %10s\n", "chains", "events",
              "full [ev/s]", "incr [ev/s]", "speedup", "traces");
  for (const std::size_t chains : {1u, 10u, 50u, 200u}) {
    sim::Model m = make_chains(chains);
    sim::CompiledModel compiled(m);
    sim::SimOptions full_opts{.end_time = 1.0, .full_refresh = true};
    sim::Simulator full(compiled, full_opts);
    const ModeResult fr = timed_run(full);
    const sim::Trace full_trace = full.trace();

    sim::Simulator incr(std::move(compiled), sim::SimOptions{.end_time = 1.0});
    const ModeResult ir = timed_run(incr);
    const bool identical = incr.trace() == full_trace;

    std::printf("%8zu %10zu %15.0f %15.0f %8.1fx %10s\n", chains, ir.events,
                fr.events_per_s, ir.events_per_s,
                ir.events_per_s / fr.events_per_s,
                identical ? "identical" : "DIVERGED");
    report.begin_object();
    report.field("chains", chains);
    report.field("events", ir.events);
    report.field("full_refresh_events_per_s", fr.events_per_s);
    report.field("incremental_events_per_s", ir.events_per_s);
    report.field("speedup", ir.events_per_s / fr.events_per_s);
    report.field("traces_identical", std::string(identical ? "yes" : "NO"));
    report.end_object();
  }
  report.end_array();
  std::printf("\n");
  report.write("BENCH_p1.json");
}

void BM_EventDispatch(benchmark::State& state) {
  const auto chains = static_cast<std::size_t>(state.range(0));
  const bool full_refresh = state.range(1) != 0;
  sim::Model m;
  auto& clk = m.add<blocks::Clock>("clk", 1e-3);
  for (std::size_t c = 0; c < chains; ++c) {
    auto& d = m.add<blocks::EventDelay>("d" + std::to_string(c), 1e-4);
    m.connect_event(clk, 0, d, d.event_in());
  }
  sim::SimOptions opts{.end_time = 1.0};
  opts.full_refresh = full_refresh;
  sim::Simulator s(sim::CompiledModel(m), opts);
  for (auto _ : state) {
    s.run();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(s.events_dispatched() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventDispatch)
    ->ArgsProduct({{1, 16, 64, 200}, {0, 1}})
    ->ArgNames({"chains", "full"})
    ->Unit(benchmark::kMillisecond);

void BM_OdeIntegration(benchmark::State& state) {
  const auto order = static_cast<std::size_t>(state.range(0));
  // Stable random-ish tridiagonal system.
  math::Matrix a(order, order);
  for (std::size_t i = 0; i < order; ++i) {
    a(i, i) = -2.0;
    if (i > 0) a(i, i - 1) = 0.5;
    if (i + 1 < order) a(i, i + 1) = 0.5;
  }
  math::Matrix b = math::Matrix::ones(order, 1);
  math::Matrix c = math::Matrix::ones(1, order);
  sim::Model m;
  auto& u = m.add<blocks::Sine>("u", 1.0, 5.0);
  auto& plant = m.add<blocks::StateSpaceCont>("p", a, b, c,
                                              math::Matrix::zeros(1, 1));
  m.connect(u, 0, plant, 0);
  sim::SimOptions opts;
  opts.end_time = 0.1;
  opts.integrator.max_step = 1e-4;
  sim::Simulator s(sim::CompiledModel(m), opts);
  for (auto _ : state) {
    s.run();
    benchmark::DoNotOptimize(s.output_value(plant, 0));
  }
  state.SetComplexityN(static_cast<int64_t>(order));
}
BENCHMARK(BM_OdeIntegration)->Arg(2)->Arg(8)->Arg(32)->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_CombinationalRefresh(benchmark::State& state) {
  // Long feedthrough chain: stresses topological evaluation.
  const auto depth = static_cast<std::size_t>(state.range(0));
  sim::Model m;
  auto& src = m.add<blocks::Sine>("src", 1.0, 1.0);
  const sim::Block* prev = &src;
  for (std::size_t i = 0; i < depth; ++i) {
    auto& g = m.add<blocks::Gain>("g" + std::to_string(i), 1.0001);
    m.connect(*prev, 0, g, 0);
    prev = &g;
  }
  auto& x = m.add<blocks::Integrator>("x", 0.0);
  m.connect(*prev, 0, x, 0);
  sim::SimOptions opts;
  opts.end_time = 0.01;
  opts.integrator.max_step = 1e-5;
  sim::Simulator s(sim::CompiledModel(m), opts);
  for (auto _ : state) {
    s.run();
    benchmark::DoNotOptimize(s.output_value(x, 0));
  }
}
BENCHMARK(BM_CombinationalRefresh)->Arg(8)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// Compile cost itself: flattening + cone construction for the chain
/// workload (must stay negligible next to a run).
void BM_Compile(benchmark::State& state) {
  const auto chains = static_cast<std::size_t>(state.range(0));
  sim::Model m = make_chains(chains);
  for (auto _ : state) {
    sim::CompiledModel compiled(m);
    benchmark::DoNotOptimize(compiled.arena_size());
  }
}
BENCHMARK(BM_Compile)->Arg(1)->Arg(64)->Arg(200)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  experiment();
  return bench::run_benchmarks(argc, argv);
}
