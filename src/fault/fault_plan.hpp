// Fault injection & robustness evaluation (DESIGN.md §3.5). The paper's
// methodology predicts *nominal* implementation behaviour — latencies,
// jitter, synchronization effects — before hardware exists; a real
// distributed ECU network additionally drops CAN frames, delays messages and
// loses nodes. A FaultPlan is a declarative schedule of such degradations
// that can be threaded through BOTH execution engines of this toolchain:
//   - the executive VM (exec::VmOptions::fault_plan): faults are applied at
//     comm/op dispatch while the generated executives run;
//   - the graph-of-delays translation (translate::GodOptions::fault_plan):
//     faults perturb or drop the completion events that drive the Sample/
//     Hold blocks, so the control-side co-simulation sees realistic
//     stale-data behaviour (ZOH holds the last sample) instead of crashing.
//
// Determinism contract (same recipe as par::BatchRunner, DESIGN.md §3.3):
// every injection decision is a PURE FUNCTION of
//   (plan seed, fault index, entity index, iteration index)
// — a per-instance math::Rng seeded by mixing those coordinates — never of
// the interpreter's interleaving, wall clock or thread count. Replaying a
// plan with the same seed therefore yields bit-identical traces, and fault
// sweeps on par::BatchRunner are serial-identical for any thread count.
// A second consequence used by the robustness benches: for one seed the
// decision value u drawn for an instance does not depend on the fault's
// probability p (injected iff u < p), so the set of instances lost at
// p1 < p2 is a SUBSET of the set lost at p2 — loss-rate sweeps degrade
// monotonically instead of re-rolling the dice per cell.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "aaa/algorithm_graph.hpp"
#include "aaa/architecture_graph.hpp"
#include "aaa/schedule.hpp"

namespace ecsim::fault {

struct CommGate;  // fault/comm_gate.hpp

using aaa::kNone;
using aaa::OpId;
using aaa::ProcId;
using aaa::Time;

/// The degradation modes a plan can schedule.
enum class FaultKind {
  kMessageLoss,       ///< a transfer never delivers (dropped/corrupted frame)
  kMessageDelay,      ///< delivery is late by FaultSpec::delay
  kMessageDuplicate,  ///< the frame occupies its medium for extra copies
  kOpOverrun,         ///< transient execution-time overrun (WCET inflation)
  kNodeStop,          ///< processor down during [t_start, t_stop): ops that
                      ///< would start inside the outage defer to the restart
};

/// One injectable fault. Message faults target a medium, kOpOverrun targets
/// an operation, kNodeStop targets a processor — all by name, resolved and
/// validated when the plan is armed against a schedule.
struct FaultSpec {
  FaultKind kind = FaultKind::kMessageLoss;
  /// Medium / operation / processor name; "" matches every candidate of the
  /// kind's target class. Unknown names throw at arming time (doc rot guard).
  std::string target;
  /// Per-instance Bernoulli injection probability (loss/delay/dup/overrun).
  /// kNodeStop ignores it: outages are window-deterministic.
  double probability = 1.0;
  /// kMessageDelay: extra delivery latency in seconds.
  Time delay = 0.0;
  /// kMessageDuplicate: number of extra copies occupying the medium.
  std::size_t extra_copies = 1;
  /// kOpOverrun: actual-execution-time multiplier (>= 1).
  double overrun_factor = 1.0;
  /// Active window. An instance is eligible iff its NOMINAL instant
  /// (iteration * period) lies in [t_start, t_stop) — nominal, not actual,
  /// so the executive VM and the translated simulation agree on which
  /// iterations are faulted.
  Time t_start = 0.0;
  Time t_stop = std::numeric_limits<Time>::infinity();
};

/// What a blocked receiver does when its message is reported lost.
enum class DegradationPolicy {
  /// Proceed at the would-be delivery instant with the held (stale) sample —
  /// the Sample/Hold boundary semantics of the translated model.
  kHoldLastSample,
  /// Skip the rest of the iteration's computations (the cycle is dropped);
  /// sends still fire with the stale buffer so downstream components stay
  /// live instead of deadlocking.
  kSkipCycle,
};

/// Declarative fault schedule. Empty plan == fault-free: every consumer
/// treats it as "no hooks installed" and the zero-fault path is bit-identical
/// to a run without any plan (guarded by bench_f1_fault_sweep).
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultSpec> faults;

  bool empty() const { return faults.empty(); }

  // Builder helpers (append and return *this for chaining).
  FaultPlan& message_loss(std::string medium, double p);
  FaultPlan& message_delay(std::string medium, double p, Time delay);
  FaultPlan& message_duplicate(std::string medium, double p,
                               std::size_t extra_copies = 1);
  FaultPlan& op_overrun(std::string op, double p, double factor);
  FaultPlan& node_stop(std::string proc, Time t_start, Time t_stop);

  /// Restrict the most recently added fault to [t_start, t_stop).
  FaultPlan& window(Time t_start, Time t_stop);
};

/// One applied fault instance, reported by the executive VM (and sortable
/// into a deterministic order independent of the interpreter interleaving).
struct Injection {
  FaultKind kind = FaultKind::kMessageLoss;
  std::size_t fault = kNone;  ///< index into FaultPlan::faults
  std::size_t comm = kNone;   ///< schedule comm index (message faults)
  OpId op = kNone;            ///< operation (overrun / node-stop deferrals)
  std::size_t iteration = 0;
  Time at = 0.0;  ///< when the effect materialized (sim time)
};

/// A FaultPlan resolved against one (algorithm, architecture, schedule)
/// triple: target names become comm/op/processor index sets and the nominal
/// iteration period is fixed, so the per-instance queries below are pure
/// and cheap. Copyable value type — sweep cells arm once and capture copies.
class ArmedFaultPlan {
 public:
  /// Inactive plan (no faults); all queries return neutral effects.
  ArmedFaultPlan() = default;

  /// Resolves and validates the plan. Throws std::invalid_argument on an
  /// unknown target name, probability outside [0,1], negative delay,
  /// overrun_factor < 1, extra_copies == 0 or an empty window.
  ArmedFaultPlan(const FaultPlan& plan, const aaa::AlgorithmGraph& alg,
                 const aaa::ArchitectureGraph& arch,
                 const aaa::Schedule& sched);

  bool active() const { return !faults_.empty(); }
  std::uint64_t seed() const { return seed_; }
  /// Nominal iteration length used for window checks (the algorithm period,
  /// falling back to the schedule makespan for aperiodic graphs).
  Time period() const { return period_; }

  /// Combined message-fault effect on one scheduled transfer instance.
  struct CommEffect {
    bool lost = false;
    Time extra_delay = 0.0;      ///< summed over triggered delay faults
    std::size_t extra_copies = 0;  ///< summed over triggered dup faults
    std::size_t loss_fault = kNone;   ///< plan index of the loss fault
    std::size_t delay_fault = kNone;  ///< first triggered delay fault
    std::size_t dup_fault = kNone;    ///< first triggered dup fault
    bool any() const { return lost || extra_delay > 0.0 || extra_copies > 0; }
  };
  CommEffect comm_effect(std::size_t comm_index, std::size_t iteration) const;

  /// Exports the message-fault entries applicable to one scheduled transfer
  /// as a self-contained, describable gate (fault/comm_gate.hpp):
  /// comm_gate_decide(comm_gate(ci, dur), k) reproduces comm_effect(ci, k)
  /// bit-exactly, without a reference back to this plan. `transfer_duration`
  /// is one copy's medium occupancy (converts duplicates into defer time).
  CommGate comm_gate(std::size_t comm_index, Time transfer_duration) const;

  /// Execution-time multiplier for one operation instance (product of the
  /// triggered overrun faults; 1.0 when none). `fault_out`, if non-null,
  /// receives the first triggered fault index (kNone when none).
  double op_factor(OpId op, std::size_t iteration,
                   std::size_t* fault_out = nullptr) const;

  /// True if any kNodeStop fault targets `proc` (lets callers skip the
  /// release query entirely on healthy processors).
  bool node_has_outages(ProcId proc) const;
  /// Earliest instant >= t at which `proc` may start an operation: t itself,
  /// or the end of the outage window containing t.
  Time node_release(ProcId proc, Time t) const;

  const std::vector<FaultSpec>& faults() const { return faults_; }

 private:
  double decision(std::size_t fault, std::size_t entity,
                  std::size_t iteration) const;
  bool in_window(const FaultSpec& f, std::size_t iteration) const;

  std::uint64_t seed_ = 0;
  Time period_ = 0.0;
  std::vector<FaultSpec> faults_;
  // Per-entity lists of applicable fault indices (resolved from names).
  std::vector<std::vector<std::size_t>> comm_faults_;  // by schedule comm idx
  std::vector<std::vector<std::size_t>> op_faults_;    // by OpId
  std::vector<std::vector<std::size_t>> node_faults_;  // by ProcId
};

/// Human-readable one-line-per-fault rendering (CLI / bench tables).
std::string to_string(const FaultPlan& plan);

/// Canonical FNV-1a fingerprint of a plan (seed + every fault field, doubles
/// serialized hexfloat-exact). 0 for the empty (fault-free) plan — the value
/// the run ledger stamps as fault_plan_hash, so two ledger records with the
/// same hash ran under the same injected degradations.
std::uint64_t hash(const FaultPlan& plan);

}  // namespace ecsim::fault
