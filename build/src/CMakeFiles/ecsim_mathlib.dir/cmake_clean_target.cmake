file(REMOVE_RECURSE
  "libecsim_mathlib.a"
)
