#include "par/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ecsim::par {
namespace {

TEST(TaskPool, ExecutesEveryTaskExactlyOnce) {
  TaskPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.for_each(1000, [&](std::size_t i, std::size_t) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskPool, WorkerIndexInRange) {
  TaskPool pool(3);
  std::atomic<bool> ok{true};
  pool.for_each(200, [&](std::size_t, std::size_t worker) {
    if (worker >= 3) ok = false;
  });
  EXPECT_TRUE(ok);
}

TEST(TaskPool, ReusableAcrossBatches) {
  TaskPool pool(2);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 50; ++batch) {
    pool.for_each(20, [&](std::size_t, std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 50 * 20);
}

TEST(TaskPool, EmptyBatchReturnsImmediately) {
  TaskPool pool(2);
  pool.for_each(0, [](std::size_t, std::size_t) { FAIL(); });
}

TEST(TaskPool, RethrowsLowestIndexedTaskException) {
  TaskPool pool(4);
  // Several tasks throw; the submitter must always see the lowest index,
  // independent of which worker hit its failure first.
  for (int round = 0; round < 5; ++round) {
    try {
      pool.for_each(100, [&](std::size_t i, std::size_t) {
        if (i % 13 == 4) {  // 4, 17, 30, ...
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
      FAIL() << "expected exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 4");
    }
  }
}

TEST(TaskPool, BatchDrainsDespiteExceptions) {
  TaskPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(pool.for_each(64,
                             [&](std::size_t i, std::size_t) {
                               ++hits[i];
                               if (i == 0) throw std::runtime_error("boom");
                             }),
               std::runtime_error);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskPool, StealingBalancesUnevenTasks) {
  // Shard 0 gets all the slow tasks (round-robin: tasks 0, 4, 8, ... with 4
  // workers). With stealing the batch finishes close to the serial-slow-work
  // / num_workers bound; without it, worker 0 would serialize them. We only
  // assert completion + a loose wall-clock sanity bound to stay robust on
  // loaded CI machines.
  TaskPool pool(4);
  std::atomic<int> done{0};
  pool.for_each(16, [&](std::size_t i, std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(i % 4 == 0 ? 20 : 1));
    ++done;
  });
  EXPECT_EQ(done.load(), 16);
}

TEST(TaskPool, NestedForEachRunsInline) {
  TaskPool pool(2);
  std::vector<std::atomic<int>> hits(8 * 8);
  pool.for_each(8, [&](std::size_t outer, std::size_t) {
    pool.for_each(8, [&](std::size_t inner, std::size_t worker) {
      EXPECT_EQ(worker, 0u);  // nested batches run inline
      ++hits[outer * 8 + inner];
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskPool, DefaultThreadsHonoursEnvOverride) {
  setenv("ECSIM_THREADS", "3", 1);
  EXPECT_EQ(TaskPool::default_threads(), 3u);
  setenv("ECSIM_THREADS", "garbage", 1);
  EXPECT_GE(TaskPool::default_threads(), 1u);
  unsetenv("ECSIM_THREADS");
  EXPECT_GE(TaskPool::default_threads(), 1u);
}

TEST(TaskPool, MoreWorkersThanTasks) {
  TaskPool pool(8);
  std::atomic<int> total{0};
  pool.for_each(3, [&](std::size_t, std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 3);
}

}  // namespace
}  // namespace ecsim::par
