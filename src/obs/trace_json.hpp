// Chrome trace-event (Perfetto / chrome://tracing loadable) JSON export.
//
// The emitted file is the JSON-object form of the trace-event format:
//   {"displayTimeUnit": "ms", "traceEvents": [ ... ]}
// with "M" metadata records naming processes and threads, "X" complete
// events for spans, "i" instants, and "C" counters. Two synthetic processes
// separate the clock domains (obs::Domain): pid 1 carries wall-clock runtime
// spans in real microseconds, pid 2 carries the simulated/scheduled timeline
// with sim seconds mapped to microseconds — so a schedule Gantt (paper
// Figs. 3-4), a VM run and a simulation event log all render as timelines.
//
// Sources: a Tracer ring (JsonTraceWriter::add) and/or plain TimelineSlice
// lists (add_slices) produced e.g. by translate::schedule_to_timeline.
#pragma once

#include <string>
#include <vector>

#include "obs/tracer.hpp"

namespace ecsim::obs {

/// One ready-made span on a named sim-time track — the exporter-agnostic
/// form used for static artifacts (adequation schedules, VM results) that
/// were not recorded through a live Tracer.
struct TimelineSlice {
  std::string track;  // e.g. "proc/P0" or "medium/can"
  std::string name;   // e.g. "ctrl" or "sense->ctrl"
  double start = 0.0;  // seconds (sim/schedule time)
  double end = 0.0;
  std::vector<std::pair<std::string, double>> args;
};

class JsonTraceWriter {
 public:
  /// Append every retained record of `tracer` (snapshot; call when no writer
  /// is active).
  void add(const Tracer& tracer);

  /// Append slices onto sim-domain tracks.
  void add_slices(const std::vector<TimelineSlice>& slices);

  /// Append one standalone instant (sim-domain track).
  void add_instant(const std::string& track, const std::string& name,
                   double t_seconds, double arg_value,
                   const std::string& arg_name);

  std::size_t num_events() const { return events_.size(); }

  /// Final document (includes process/thread metadata for every track seen).
  std::string str() const;

  /// Write to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  std::uint32_t track_id(const std::string& name, Domain domain);

  struct Track {
    std::string name;
    Domain domain = Domain::kWall;
  };
  std::vector<Track> tracks_;
  std::vector<std::string> events_;  // serialized record objects
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

}  // namespace ecsim::obs
