#include "blocks/probe.hpp"

#include <stdexcept>

namespace ecsim::blocks {

Probe::Probe(std::string name, std::size_t width, Time record_period)
    : Block(std::move(name)), period_(record_period) {
  if (width == 0) throw std::invalid_argument("Probe: width must be >= 1");
  if (record_period < 0.0) throw std::invalid_argument("Probe: negative period");
  add_input(width);
  add_event_input();  // trigger (self-scheduled in periodic mode)
}

void Probe::initialize(Context& ctx) {
  samples_ = 0;
  if (period_ > 0.0) ctx.schedule_self(0, 0.0);
}

void Probe::on_event(Context& ctx, std::size_t) {
  // Span overload: the trace recycles value buffers across runs, so
  // steady-state sampling stays allocation-free (DESIGN.md §3.4).
  ctx.trace().record_signal(ctx.time(), ctx.block_index(), ctx.input(0));
  ++samples_;
  if (period_ > 0.0) ctx.schedule_self(0, period_);
}


void Probe::describe(ir::BlockIr& out) const {
  out.kind = "Probe";
  out.attrs.push_back(ir::Attr::of_real("record_period", period_));
}

}  // namespace ecsim::blocks
