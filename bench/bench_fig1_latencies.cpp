// EXP-F1 (paper Fig. 1, eqs. 1-2): characterize the sampling latency
// Ls_j(k) = I_j(k) - kTs and actuation latency La_j(k) = O_j(k) - kTs of a
// distributed implementation, per period k, for several architectures.
// Expected shape: nonzero latencies, constant under the WCET schedule,
// La >= Ls, both < Ts.
#include "bench_common.hpp"
#include "latency/latency.hpp"

using namespace ecsim;

namespace {

void print_case(const char* name, const translate::CosimOutcome& out,
                double ts) {
  std::printf("-- %s (makespan %.4f ms, Ts %.1f ms) --\n", name,
              1e3 * out.makespan, 1e3 * ts);
  std::printf("%4s %14s %14s\n", "k", "Ls(k) [ms]", "La(k) [ms]");
  const std::size_t n =
      std::min<std::size_t>(8, out.sense_latency.latencies.size());
  for (std::size_t k = 0; k < n; ++k) {
    std::printf("%4zu %14.4f %14.4f\n", k,
                1e3 * out.sense_latency.latencies[k],
                1e3 * out.act_latency.latencies[k]);
  }
  std::printf("mean %14.4f %14.4f   (jitter p2p: %.4f / %.4f ms)\n\n",
              1e3 * out.sense_latency.summary.mean,
              1e3 * out.act_latency.summary.mean,
              1e3 * out.sense_latency.jitter, 1e3 * out.act_latency.jitter);
}

void experiment() {
  bench::banner("EXP-F1", "Fig. 1 / Section 2 (eqs. 1-2)",
                "Sampling and actuation latencies of SynDEx implementations "
                "of the DC-servo loop, per period k.");
  const translate::LoopSpec spec = bench::servo_loop();

  {
    translate::DistributedSpec dist;
    dist.arch = aaa::ArchitectureGraph::bus_architecture(1, 1.0);
    dist.wcet_sense = 2e-4;
    dist.wcet_ctrl = 1e-3;
    dist.wcet_act = 2e-4;
    print_case("single processor", translate::run_distributed_loop(spec, dist),
               spec.ts);
  }
  {
    translate::DistributedSpec dist;
    dist.arch = aaa::ArchitectureGraph::bus_architecture(2, 2e4, 2e-4);
    dist.wcet_sense = 2e-4;
    dist.wcet_ctrl = 3e-3;
    dist.wcet_act = 2e-4;
    dist.bind_sense = "P0";
    dist.bind_ctrl = "P1";
    dist.bind_act = "P0";
    print_case("2 processors + bus (controller remote)",
               translate::run_distributed_loop(spec, dist), spec.ts);
  }
  {
    translate::DistributedSpec dist;
    dist.arch = aaa::ArchitectureGraph::bus_architecture(2, 2e4, 2e-4);
    dist.wcet_sense = 2e-4;
    dist.wcet_ctrl = 3e-3;
    dist.wcet_act = 2e-4;
    dist.bind_sense = "P0";
    dist.bind_ctrl = "P1";
    dist.bind_act = "P0";
    dist.god.bcet_fraction = 0.4;  // execution-time variation => jitter
    print_case("same, with actual execution times in [0.4,1.0]*WCET",
               translate::run_distributed_loop(spec, dist), spec.ts);
  }
}

void BM_LatencyExtraction(benchmark::State& state) {
  const translate::LoopSpec spec = bench::servo_loop(0.01, 2.0);
  translate::DistributedSpec dist;
  dist.arch = aaa::ArchitectureGraph::bus_architecture(2, 2e4, 2e-4);
  const translate::CosimOutcome out = translate::run_distributed_loop(spec, dist);
  for (auto _ : state) {
    auto s = latency::analyze_instants("act", out.act_latency.instants, spec.ts);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_LatencyExtraction);

void BM_DistributedCosimFig1(benchmark::State& state) {
  const translate::LoopSpec spec = bench::servo_loop(0.01, 0.5);
  translate::DistributedSpec dist;
  dist.arch = aaa::ArchitectureGraph::bus_architecture(2, 2e4, 2e-4);
  for (auto _ : state) {
    auto out = translate::run_distributed_loop(spec, dist);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DistributedCosimFig1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  experiment();
  return bench::run_benchmarks(argc, argv);
}
